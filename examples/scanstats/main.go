// Scan statistics: the classic active storage workload. Reductions have
// an empty dependence pattern — the "desired situation" the paper's
// introduction describes — so offloading them is pure win: every storage
// server folds its local strips and only a 40-byte partial aggregate
// crosses the network, versus the whole raster under Traditional Storage.
// The DAS prediction core accepts such requests unconditionally (Σ aj = 0).
package main

import (
	"fmt"
	"log"

	das "github.com/hpcio/das"
	"github.com/hpcio/das/internal/metrics"
)

func main() {
	dem := das.Terrain(8192, 384, 21)
	fmt.Printf("raster: %dx%d, %.1f MiB\n\n", dem.W, dem.H, float64(dem.SizeBytes())/(1<<20))

	for _, scheme := range []das.Scheme{das.TS, das.DAS} {
		sys, err := das.NewSystem(das.DefaultClusterConfig())
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sys.IngestGrid("dem", dem, das.RoundRobin(sys.FS.Servers()), das.DefaultStripSize); err != nil {
			log.Fatal(err)
		}
		rep, err := sys.Reduce(das.ReduceRequest{Op: "stats", Input: "dem", Scheme: scheme})
		if err != nil {
			log.Fatal(err)
		}
		toClient := rep.Traffic[metrics.ServerToClient]
		fmt.Printf("%s: %v  offloaded=%v  bytes to compute nodes: %s\n",
			scheme, rep.ExecTime, rep.Offloaded, fmtBytes(toClient))
		fmt.Printf("   mean elevation %.2f, σ %.2f, range [%.2f, %.2f]\n\n",
			das.Mean(rep.Result), das.StdDev(rep.Result), rep.Result[3], rep.Result[4])
		sys.Close()
	}

	fmt.Println("Same aggregate either way — but offloading moves five numbers")
	fmt.Println("per server instead of the raster. No dependence, no catch: this")
	fmt.Println("is the workload active storage was invented for, and the DAS")
	fmt.Println("prediction core recognizes it without any layout change.")
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
