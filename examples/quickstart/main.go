// Quickstart: run one analysis kernel under all three schemes of the
// paper's evaluation — Traditional Storage, Normal Active Storage, and
// Dynamic Active Storage — on the same simulated platform, verify that
// every scheme computes the identical raster, and print the comparison
// the paper's Fig. 11 makes.
package main

import (
	"fmt"
	"log"

	das "github.com/hpcio/das"
)

func main() {
	// A small terrain: 8192-element rows so one row is one 64 KiB strip.
	dem := das.Terrain(8192, 96, 42)
	fmt.Printf("input: %dx%d DEM, %.1f MiB\n\n", dem.W, dem.H, float64(dem.SizeBytes())/(1<<20))

	reference := das.ApplyKernel(mustKernel("flow-routing"), dem)

	fmt.Printf("%-6s %-12s %-10s %-10s %s\n", "scheme", "exec time", "offloaded", "fetches", "output")
	for _, scheme := range []das.Scheme{das.TS, das.NAS, das.DAS} {
		sys, err := das.NewSystem(das.DefaultClusterConfig())
		if err != nil {
			log.Fatal(err)
		}

		// TS and NAS see the file as the PFS would place it by default;
		// DAS arranges the dependence-aware distribution at write time.
		lay := das.RoundRobin(sys.FS.Servers())
		if scheme == das.DAS {
			lay, err = sys.PlanLayout("flow-routing", dem.W, das.ElemSize,
				das.DefaultStripSize, dem.SizeBytes(), 0)
			if err != nil {
				log.Fatal(err)
			}
		}
		if _, err := sys.IngestGrid("dem", dem, lay, das.DefaultStripSize); err != nil {
			log.Fatal(err)
		}

		rep, err := sys.Execute(das.Request{
			Op: "flow-routing", Input: "dem", Output: "dirs", Scheme: scheme,
		})
		if err != nil {
			log.Fatal(err)
		}

		got, err := sys.FetchGrid("dirs")
		if err != nil {
			log.Fatal(err)
		}
		status := "MATCHES reference"
		if !got.Equal(reference) {
			status = "DIFFERS from reference"
		}
		fmt.Printf("%-6s %-12s %-10v %-10d %s\n",
			scheme, rep.ExecTime, rep.Offloaded, rep.Stats.RemoteFetches, status)
	}
}

func mustKernel(name string) das.Kernel {
	k, ok := das.DefaultKernels().Lookup(name)
	if !ok {
		log.Fatalf("unknown kernel %q", name)
	}
	return k
}
