// Medical image processing: the paper's second motivating domain. A
// speckled intensity raster is denoised with the median filter and then
// smoothed with the 2D Gaussian filter — both 8-neighbor-dependent
// operations — comparing Traditional Storage against DAS for the whole
// two-stage pipeline and reporting how much speckle each stage removed.
package main

import (
	"fmt"
	"log"

	das "github.com/hpcio/das"
)

func main() {
	const speckleFrac = 0.05
	img := das.Image(8192, 512, 9, speckleFrac)
	fmt.Printf("image: %dx%d, %.1f MiB, %.0f%% speckle\n\n",
		img.W, img.H, float64(img.SizeBytes())/(1<<20), 100*speckleFrac)

	for _, scheme := range []das.Scheme{das.TS, das.DAS} {
		sys, err := das.NewSystem(das.DefaultClusterConfig())
		if err != nil {
			log.Fatal(err)
		}
		lay := das.RoundRobin(sys.FS.Servers())
		if scheme == das.DAS {
			lay, err = sys.PlanLayout("median-filter", img.W, das.ElemSize,
				das.DefaultStripSize, img.SizeBytes(), 0)
			if err != nil {
				log.Fatal(err)
			}
		}
		if _, err := sys.IngestGrid("raw", img, lay, das.DefaultStripSize); err != nil {
			log.Fatal(err)
		}

		r1, err := sys.Execute(das.Request{Op: "median-filter", Input: "raw", Output: "denoised", Scheme: scheme})
		if err != nil {
			log.Fatal(err)
		}
		r2, err := sys.Execute(das.Request{Op: "gaussian-filter", Input: "denoised", Output: "smooth", Scheme: scheme})
		if err != nil {
			log.Fatal(err)
		}

		denoised, err := sys.FetchGrid("denoised")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s pipeline: median %v + gaussian %v = %v\n",
			scheme, r1.ExecTime, r2.ExecTime, r1.ExecTime+r2.ExecTime)
		fmt.Printf("   speckle pixels: %d before, %d after median (%.1f%% removed)\n\n",
			speckles(img), speckles(denoised),
			100*(1-float64(speckles(denoised))/float64(speckles(img))))
	}
}

// speckles counts saturated salt-and-pepper pixels.
func speckles(g *das.Grid) int {
	n := 0
	for _, v := range g.Data {
		if v == 0 || v == 255 {
			n++
		}
	}
	return n
}
