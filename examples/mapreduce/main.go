// MapReduce comparator: the paper's §II-C argues that MapReduce-style
// runtimes, although they also move computation to data, are less
// effective than DAS in HPC environments. This example runs the same
// flow-routing operation three ways on one collocated platform — the
// deployment model MapReduce assumes — and shows where the Hadoop-style
// execution spends its time: materialized intermediates, a global map
// barrier, a halo shuffle as voluminous as NAS's fetches, and replicated
// output.
package main

import (
	"fmt"
	"log"

	das "github.com/hpcio/das"
	"github.com/hpcio/das/internal/cluster"
	"github.com/hpcio/das/internal/mapred"
	"github.com/hpcio/das/internal/sim"
)

const nodes = 12

func main() {
	dem := das.Terrain(8192, 384, 31)
	fmt.Printf("terrain: %dx%d, %.1f MiB, %d collocated nodes\n\n",
		dem.W, dem.H, float64(dem.SizeBytes())/(1<<20), nodes)
	ref := das.ApplyKernel(mustKernel("flow-routing"), dem)

	// --- MapReduce over the DFS-style round-robin placement.
	mrSys := build(dem, das.RoundRobin(nodes))
	runner := mapred.NewRunner(mrSys.FS, mrSys.Registry)
	var stats mapred.Stats
	var mrErr error
	start := mrSys.Clu.Eng.Now()
	mrSys.Clu.Eng.Spawn("mapred", func(p *sim.Proc) {
		stats, mrErr = runner.Run(p, mapred.Job{Op: "flow-routing", Input: "dem", Output: "dirs"})
	})
	if err := mrSys.Clu.Eng.Run(); err != nil {
		log.Fatal(err)
	}
	if mrErr != nil {
		log.Fatal(mrErr)
	}
	mrTime := mrSys.Clu.Eng.Now() - start
	got, err := mrSys.FetchGrid("dirs")
	if err != nil {
		log.Fatal(err)
	}
	if !got.Equal(ref) {
		log.Fatal("MapReduce output differs from reference")
	}
	fmt.Printf("MapReduce: %v  (map %v + shuffle/reduce %v)\n", mrTime, stats.MapTime, stats.ReduceTime)
	fmt.Printf("   shuffled %.1f MiB of halo fragments, materialized %.1f MiB,\n",
		mib(stats.ShuffledBytes), mib(stats.MaterializedBytes))
	fmt.Printf("   replicated %.1f MiB of output (factor 2), result verified\n\n", mib(stats.OutputReplicaBytes))
	mrSys.Close()

	// --- DAS (planned layout) and TS (round-robin) on the same platform.
	for _, scheme := range []das.Scheme{das.DAS, das.TS} {
		var lay das.Layout = das.RoundRobin(nodes)
		if scheme == das.DAS {
			lay = nil // build plans the improved distribution
		}
		sys := build(dem, lay)
		rep, err := sys.Execute(das.Request{Op: "flow-routing", Input: "dem", Output: "dirs", Scheme: scheme})
		if err != nil {
			log.Fatal(err)
		}
		got, err := sys.FetchGrid("dirs")
		if err != nil {
			log.Fatal(err)
		}
		if !got.Equal(ref) {
			log.Fatalf("%v output differs from reference", scheme)
		}
		fmt.Printf("%-10s %v  offloaded=%v fetches=%d, result verified\n",
			scheme.String()+":", rep.ExecTime, rep.Offloaded, rep.Stats.RemoteFetches)
		sys.Close()
	}

	fmt.Println("\nSame bytes, same kernels, same nodes: DAS's dependence-aware layout")
	fmt.Println("turns the whole pipeline into local reads and local writes, where")
	fmt.Println("MapReduce must materialize, barrier, shuffle, and replicate.")
}

// build makes a collocated platform with the DEM ingested under lay; a nil
// layout asks the DAS planner for the improved distribution.
func build(dem *das.Grid, lay das.Layout) *das.System {
	cfg := cluster.Default()
	cfg.ComputeNodes, cfg.StorageNodes, cfg.Collocated = nodes, nodes, true
	sys, err := das.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if lay == nil {
		lay, err = sys.PlanLayout("flow-routing", dem.W, das.ElemSize, das.DefaultStripSize, dem.SizeBytes(), 0)
		if err != nil {
			log.Fatal(err)
		}
	}
	if _, err := sys.IngestGrid("dem", dem, lay, das.DefaultStripSize); err != nil {
		log.Fatal(err)
	}
	return sys
}

func mustKernel(name string) das.Kernel {
	k, ok := das.DefaultKernels().Lookup(name)
	if !ok {
		log.Fatalf("unknown kernel %q", name)
	}
	return k
}

func mib(n int64) float64 { return float64(n) / (1 << 20) }
