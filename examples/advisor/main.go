// Advisor: use the bandwidth prediction core standalone, the way the
// paper's Fig. 6 discusses stride dependence. For a sweep of strides the
// program checks the closed-form locality criterion (Eq. (17)), runs the
// full per-element analysis, and prints whether DAS would accept the
// offload under the default round-robin placement — demonstrating that
// "offloadable" is a property of the (pattern, layout) pair, not of the
// operation alone.
package main

import (
	"fmt"

	das "github.com/hpcio/das"
	"github.com/hpcio/das/internal/features"
)

func main() {
	const (
		servers   = 12
		stripSize = das.DefaultStripSize
		width     = 8192
		sizeGB    = 24
	)
	elemsPerStrip := int64(stripSize) / das.ElemSize
	params := das.PredictParams{
		ElemSize:     das.ElemSize,
		StripSize:    stripSize,
		FileSize:     sizeGB << 20,
		Width:        width,
		OutputFactor: 1,
	}
	lay := das.RoundRobin(servers)

	fmt.Printf("round-robin over %d servers, %d KiB strips (%d elements/strip)\n\n",
		servers, stripSize/1024, elemsPerStrip)
	fmt.Printf("%-16s %-10s %-14s %-16s %s\n",
		"pattern", "eq17", "remote deps", "offload bytes", "verdict")

	strides := []int64{
		1,                    // within-strip neighbor
		elemsPerStrip,        // exactly one strip
		elemsPerStrip * 3,    // three strips: never aligned
		elemsPerStrip * 12,   // D strips: aligned with round-robin
		elemsPerStrip * 24,   // 2D strips: also aligned
		elemsPerStrip*12 + 1, // one element off alignment
		elemsPerStrip * 6,    // half of D
	}
	for _, stride := range strides {
		pat := features.Pattern{
			Name:    fmt.Sprintf("stride-%d", stride),
			Offsets: features.Stride(stride),
		}
		report(pat, das.Eq17(stride, das.ElemSize, stripSize, 1, servers), params, lay)
	}
	// A multi-offset operator touching six distinct strips per element:
	// the offload traffic (≈6× the file) dwarfs normal I/O (2×) and the
	// prediction core rejects.
	multi := features.Pattern{Name: "multi-stride"}
	for _, k := range []int64{1, 2, 3} {
		multi.Offsets = append(multi.Offsets, features.Stride(k*elemsPerStrip)...)
	}
	report(multi, false, params, lay)

	fmt.Println("\nEq. 17 alignment (stride a multiple of D strips) is the free-offload")
	fmt.Println("case. A lone ±stride costs about what normal I/O costs (the two")
	fmt.Println("dependent strips ≈ the raster moved twice), so the verdict sits on")
	fmt.Println("the margin; patterns touching more strips are firmly rejected and")
	fmt.Println("need DAS's improved layout to offload.")
}

func report(pat features.Pattern, aligned bool, params das.PredictParams, lay das.Layout) {
	d, err := das.Decide(pat, params, lay)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	verdict := "REJECT (serve as normal I/O)"
	if d.Offload {
		verdict = "OFFLOAD"
	}
	fmt.Printf("%-16s %-10v %-14d %-16d %s\n",
		pat.Name, aligned, d.Analysis.RemoteDeps, d.OffloadNetBytes, verdict)
}
