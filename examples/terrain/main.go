// Terrain analysis: the paper's motivating GIS pipeline. Flow-routing
// produces an intermediate direction raster which flow-accumulation then
// consumes with the same 8-neighbor dependence (§I). Under DAS the
// intermediate is written in the same improved distribution as its input,
// so the successor operation offloads with zero dependent-data movement —
// the "successive operations" payoff the paper argues for.
package main

import (
	"fmt"
	"log"

	das "github.com/hpcio/das"
	"github.com/hpcio/das/internal/metrics"
)

func main() {
	dem := das.Terrain(8192, 192, 7)
	fmt.Printf("terrain: %dx%d, %.1f MiB\n\n", dem.W, dem.H, float64(dem.SizeBytes())/(1<<20))

	sys, err := das.NewSystem(das.DefaultClusterConfig())
	if err != nil {
		log.Fatal(err)
	}
	lay, err := sys.PlanLayout("flow-routing", dem.W, das.ElemSize, das.DefaultStripSize, dem.SizeBytes(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DAS arranged layout: %s\n", lay.Name())
	if _, err := sys.IngestGrid("dem", dem, lay, das.DefaultStripSize); err != nil {
		log.Fatal(err)
	}

	// Stage 1: flow routing, offloaded to the storage servers.
	r1, err := sys.Execute(das.Request{Op: "flow-routing", Input: "dem", Output: "dirs", Scheme: das.DAS})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flow-routing:      %v offloaded=%v fetches=%d server↔server=%s\n",
		r1.ExecTime, r1.Offloaded, r1.Stats.RemoteFetches,
		fmtBytes(r1.Traffic[metrics.ServerToServer]))

	// Stage 2: the successor consumes the intermediate in place.
	r2, err := sys.Execute(das.Request{Op: "flow-accumulation", Input: "dirs", Output: "acc", Scheme: das.DAS})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flow-accumulation: %v offloaded=%v fetches=%d reconfigured=%v\n\n",
		r2.ExecTime, r2.Offloaded, r2.Stats.RemoteFetches, r2.Reconfigured)

	// Pull the direction raster back for a full basin-wide accumulation —
	// the global analysis that runs client-side on the reduced data.
	dirs, err := sys.FetchGrid("dirs")
	if err != nil {
		log.Fatal(err)
	}
	basin := das.Accumulate(dirs)
	row, col, best := 0, 0, 0.0
	for r := 0; r < basin.H; r++ {
		for c := 0; c < basin.W; c++ {
			if v := basin.At(r, c); v > best {
				best, row, col = v, r, c
			}
		}
	}
	fmt.Printf("largest drainage: %.0f cells pass through (%d,%d)\n", best, row, col)

	// Sanity: the offloaded local step must match the sequential kernel.
	acc, err := sys.FetchGrid("acc")
	if err != nil {
		log.Fatal(err)
	}
	k, _ := das.DefaultKernels().Lookup("flow-accumulation")
	if !acc.Equal(das.ApplyKernel(k, dirs)) {
		log.Fatal("offloaded accumulation differs from sequential reference")
	}
	fmt.Println("offloaded results verified against sequential reference")
}

func fmtBytes(n int64) string {
	return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
}
