// Benchmarks regenerating the paper's evaluation: one benchmark per table
// and figure of §IV plus one per ablation from DESIGN.md. Each iteration
// re-runs the full experiment at the paper-mirroring scale (1 GB → 1 MiB);
// the reported custom metrics are *simulated* seconds — the numbers the
// paper's y-axes show — while the standard ns/op measures the wall cost of
// regenerating the experiment. Set DAS_BENCH_QUICK=1 to shrink the sweep
// for smoke runs.
package das_test

import (
	"os"
	"testing"

	"github.com/hpcio/das/internal/core"
	"github.com/hpcio/das/internal/experiments"
	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/workload"
)

func benchConfig() experiments.Config {
	cfg := experiments.Default()
	if os.Getenv("DAS_BENCH_QUICK") != "" {
		cfg.Nodes = 8
		cfg.SizesGB = []int{2, 4}
		cfg.NodeSweep = []int{8, 16}
	}
	return cfg
}

// BenchmarkTableIKernels measures the real per-element throughput of the
// Table I analysis kernels (plus the median filter) on in-memory rasters —
// the compute side every scheme shares.
func BenchmarkTableIKernels(b *testing.B) {
	const w, h = 1024, 512
	terrain := workload.Terrain(w, h, 1)
	image := workload.Image(w, h, 1, 0.05)
	cases := []struct {
		k  kernels.Kernel
		in *grid.Grid
	}{
		{kernels.FlowRouting{}, terrain},
		{kernels.FlowAccumulation{}, kernels.Apply(kernels.FlowRouting{}, terrain)},
		{kernels.Gaussian{}, image},
		{kernels.Median{}, image},
	}
	for _, c := range cases {
		c := c
		b.Run(c.k.Name(), func(b *testing.B) {
			band := grid.BandOf(c.in, 0, c.in.Len(), 0, c.in.Len())
			out := make([]float64, c.in.Len())
			b.SetBytes(c.in.SizeBytes())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.k.ApplyBand(band, out)
			}
		})
	}
}

// reportSeries publishes each series' value at the largest x as a custom
// metric in simulated seconds.
func reportSeries(b *testing.B, r *experiments.Result) {
	b.Helper()
	xs := r.Xs()
	if len(xs) == 0 {
		b.Fatal("empty result")
	}
	last := xs[len(xs)-1]
	for _, s := range r.Series() {
		if v, ok := r.Value(s, last); ok {
			b.ReportMetric(v, s+"_sim_s")
		}
	}
}

func benchFigure(b *testing.B, f func(experiments.Config) (*experiments.Result, error)) {
	cfg := benchConfig()
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := f(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	reportSeries(b, last)
}

// BenchmarkFig10 regenerates Fig. 10 (NAS vs TS, three kernels, growing
// data): the cost of ignoring data dependence.
func BenchmarkFig10(b *testing.B) {
	benchFigure(b, func(c experiments.Config) (*experiments.Result, error) { return c.Fig10() })
}

// BenchmarkFig11 regenerates Fig. 11 (NAS/DAS/TS on the smallest
// dataset): the paper's headline >30%/>60% improvements.
func BenchmarkFig11(b *testing.B) {
	cfg := benchConfig()
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := cfg.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	// Report the flow-routing margins the paper quotes.
	das, _ := last.Value("DAS", 0)
	ts, _ := last.Value("TS", 0)
	nas, _ := last.Value("NAS", 0)
	b.ReportMetric(das, "das_sim_s")
	b.ReportMetric(ts, "ts_sim_s")
	b.ReportMetric(nas, "nas_sim_s")
	if ts > 0 && nas > 0 {
		b.ReportMetric(100*(1-das/ts), "improves_vs_ts_%")
		b.ReportMetric(100*(1-das/nas), "improves_vs_nas_%")
	}
}

// BenchmarkFig12 regenerates Fig. 12 (all schemes, growing data).
func BenchmarkFig12(b *testing.B) {
	benchFigure(b, func(c experiments.Config) (*experiments.Result, error) { return c.Fig12() })
}

// BenchmarkFig13 regenerates Fig. 13 (DAS vs TS, growing node count).
func BenchmarkFig13(b *testing.B) {
	benchFigure(b, func(c experiments.Config) (*experiments.Result, error) { return c.Fig13() })
}

// BenchmarkFig14 regenerates Fig. 14 (normalized sustained bandwidth).
func BenchmarkFig14(b *testing.B) {
	benchFigure(b, func(c experiments.Config) (*experiments.Result, error) { return c.Fig14() })
}

// BenchmarkAblationGroupSize sweeps the replication group size r.
func BenchmarkAblationGroupSize(b *testing.B) {
	benchFigure(b, func(c experiments.Config) (*experiments.Result, error) { return c.AblationGroupSize() })
}

// BenchmarkAblationPredictor measures the accept/reject decision's value
// on a hostile multi-stride pattern.
func BenchmarkAblationPredictor(b *testing.B) {
	benchFigure(b, func(c experiments.Config) (*experiments.Result, error) { return c.AblationPredictor() })
}

// BenchmarkAblationReconfig measures migrate-in-place cost and its
// amortization over successive operations.
func BenchmarkAblationReconfig(b *testing.B) {
	benchFigure(b, func(c experiments.Config) (*experiments.Result, error) { return c.AblationReconfig() })
}

// BenchmarkAblationHaloFetch compares dependent-data transports.
func BenchmarkAblationHaloFetch(b *testing.B) {
	benchFigure(b, func(c experiments.Config) (*experiments.Result, error) { return c.AblationHaloFetch() })
}

// BenchmarkAblationMultiTenant measures concurrent-fleet makespans per
// scheme.
func BenchmarkAblationMultiTenant(b *testing.B) {
	benchFigure(b, func(c experiments.Config) (*experiments.Result, error) { return c.AblationMultiTenant() })
}

// BenchmarkAblationDeployment compares the §III-A deployment models.
func BenchmarkAblationDeployment(b *testing.B) {
	benchFigure(b, func(c experiments.Config) (*experiments.Result, error) { return c.AblationDeployment() })
}

// BenchmarkAblationComputeIntensity sweeps per-element kernel cost.
func BenchmarkAblationComputeIntensity(b *testing.B) {
	benchFigure(b, func(c experiments.Config) (*experiments.Result, error) { return c.AblationComputeIntensity() })
}

// BenchmarkAblationStripSize sweeps the PFS strip size.
func BenchmarkAblationStripSize(b *testing.B) {
	benchFigure(b, func(c experiments.Config) (*experiments.Result, error) { return c.AblationStripSize() })
}

// BenchmarkAblationMapReduce runs the §II-C MapReduce comparator.
func BenchmarkAblationMapReduce(b *testing.B) {
	benchFigure(b, func(c experiments.Config) (*experiments.Result, error) { return c.AblationMapReduce() })
}

// BenchmarkSchemeSingleRun times one full scheme execution at the largest
// paper size, per scheme — the building block every figure is made of.
func BenchmarkSchemeSingleRun(b *testing.B) {
	cfg := benchConfig()
	size := cfg.SizesGB[len(cfg.SizesGB)-1]
	for _, scheme := range []core.Scheme{core.TS, core.NAS, core.DAS} {
		scheme := scheme
		b.Run(scheme.String(), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				rep, err := cfg.RunOne(scheme, "flow-routing", size, cfg.Nodes)
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.ExecTime.Seconds()
			}
			b.ReportMetric(sim, "sim_s")
			b.ReportMetric(float64(size), "data_gb")
		})
	}
}
