// Command daslint runs the determinism/pooling analyzer suite from
// internal/lint over this repository.
//
// Usage:
//
//	daslint ./...                # standalone: lint the given packages
//	daslint -list                # print analyzer names and one-line docs
//	go vet -vettool=$(which daslint) ./...   # as a vet tool
//
// Standalone mode loads packages through `go list -export`, so it needs
// only the go toolchain. The binary also speaks the `go vet -vettool`
// driver protocol (-V=full, -flags, and a *.cfg compilation unit), which
// additionally covers _test.go files.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"github.com/hpcio/das/internal/cli"
	"github.com/hpcio/das/internal/lint"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("daslint: ")
	flag.Var(versionFlag{}, "V", "print version and exit (-V=full, for the go vet protocol)")
	printflags := flag.Bool("flags", false, "print analyzer flags in JSON (for the go vet protocol)")
	list := flag.Bool("list", false, "print analyzer names and one-line docs, then exit")
	flag.Parse()

	if *printflags {
		printFlagsJSON()
		return
	}
	args := flag.Args()
	if err := cli.CheckExclusive(
		[]cli.Flag{{Name: "-list", Set: *list}},
		[]cli.Flag{{Name: "package arguments", Set: len(args) > 0}},
	); err != nil {
		log.Fatal(err)
	}
	if *list {
		listAnalyzers(os.Stdout)
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(runStandalone(args))
}

func listAnalyzers(w io.Writer) {
	for _, a := range lint.All() {
		fmt.Fprintf(w, "%-12s %s\n", a.Name, a.Summary())
	}
}

func runStandalone(patterns []string) int {
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		log.Print(err)
		return 1
	}
	exit := 0
	for _, pkg := range pkgs {
		diags, err := lint.Check(pkg, lint.All())
		if err != nil {
			log.Print(err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
			exit = 1
		}
	}
	return exit
}

// printFlagsJSON tells go vet which flags this tool accepts, in the
// format the go command expects from a vet tool.
func printFlagsJSON() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// versionFlag implements the -V=full handshake go vet uses to fingerprint
// a vet tool for its build cache: print a version line that changes when
// the executable does.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }

func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("daslint version devel comments-go-here buildID=%02x\n", string(h.Sum(nil)))
	os.Exit(0)
	return nil
}
