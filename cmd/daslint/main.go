// Command daslint runs the determinism/pooling analyzer suite from
// internal/lint over this repository.
//
// Usage:
//
//	daslint ./...                # standalone: lint the given packages
//	daslint -list                # print analyzer names and one-line docs
//	go vet -vettool=$(which daslint) ./...   # as a vet tool
//
// Standalone mode loads packages through `go list -export`, so it needs
// only the go toolchain, and runs the whole suite — including the
// module-wide transfer and replies analyzers, which need every package of
// the load at once. The binary also speaks the `go vet -vettool` driver
// protocol (-V=full, -flags, and a *.cfg compilation unit), which
// additionally covers _test.go files but sees one compilation unit at a
// time and therefore runs only the per-package analyzers.
//
// -json prints findings as one JSON object per line on stdout (file,
// line, col, analyzer, message). When GITHUB_ACTIONS=true, findings are
// additionally emitted as ::error workflow annotations so CI attaches
// them to the offending lines.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"github.com/hpcio/das/internal/cli"
	"github.com/hpcio/das/internal/lint"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("daslint: ")
	flag.Var(versionFlag{}, "V", "print version and exit (-V=full, for the go vet protocol)")
	printflags := flag.Bool("flags", false, "print analyzer flags in JSON (for the go vet protocol)")
	list := flag.Bool("list", false, "print analyzer names and one-line docs, then exit")
	jsonOut := flag.Bool("json", false, "print findings as JSON lines on stdout instead of text on stderr")
	flag.Parse()

	if *printflags {
		printFlagsJSON()
		return
	}
	args := flag.Args()
	if err := cli.CheckExclusive(
		[]cli.Flag{{Name: "-list", Set: *list}},
		[]cli.Flag{{Name: "package arguments", Set: len(args) > 0}},
	); err != nil {
		log.Fatal(err)
	}
	if *list {
		listAnalyzers(os.Stdout)
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(runStandalone(args, *jsonOut))
}

func listAnalyzers(w io.Writer) {
	for _, a := range lint.All() {
		fmt.Fprintf(w, "%-12s %s\n", a.Name, a.Summary())
	}
}

func runStandalone(patterns []string, jsonOut bool) int {
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		log.Print(err)
		return 1
	}
	if len(pkgs) == 0 {
		return 0
	}
	diags, err := lint.CheckModule(pkgs, lint.All())
	if err != nil {
		log.Print(err)
		return 1
	}
	fset := pkgs[0].Fset
	annotate := os.Getenv("GITHUB_ACTIONS") == "true"
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if jsonOut {
			enc.Encode(jsonDiag{
				File:     relPath(pos.Filename),
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		} else {
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", pos, d.Analyzer, d.Message)
		}
		if annotate {
			// GitHub Actions workflow command: attaches the finding to the
			// line in the PR diff view.
			fmt.Printf("::error file=%s,line=%d,col=%d,title=daslint/%s::%s\n",
				relPath(pos.Filename), pos.Line, pos.Column, d.Analyzer, escapeAnnotation(d.Message))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// jsonDiag is the -json wire form of one finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// relPath makes filename relative to the working directory when possible;
// GitHub annotations and -json consumers want repo-relative paths.
func relPath(filename string) string {
	wd, err := os.Getwd()
	if err != nil {
		return filename
	}
	rel, err := filepath.Rel(wd, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filename
	}
	return rel
}

// escapeAnnotation encodes the characters the workflow-command grammar
// reserves in message data.
func escapeAnnotation(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// printFlagsJSON tells go vet which flags this tool accepts, in the
// format the go command expects from a vet tool.
func printFlagsJSON() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// versionFlag implements the -V=full handshake go vet uses to fingerprint
// a vet tool for its build cache: print a version line that changes when
// the executable does.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }

func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("daslint version devel comments-go-here buildID=%02x\n", string(h.Sum(nil)))
	os.Exit(0)
	return nil
}
