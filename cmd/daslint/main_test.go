package main

import (
	"strings"
	"testing"

	"github.com/hpcio/das/internal/lint"
)

func TestListAnalyzers(t *testing.T) {
	var sb strings.Builder
	listAnalyzers(&sb)
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if got, want := len(lines), len(lint.All()); got != want {
		t.Fatalf("listed %d analyzers, want %d:\n%s", got, want, out)
	}
	for _, a := range lint.All() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("missing analyzer %q in -list output:\n%s", a.Name, out)
		}
		if a.Summary() == "" {
			t.Errorf("analyzer %q has an empty one-line doc", a.Name)
		}
	}
}

// The standalone driver loads through `go list -export`; linting one of
// the real (and clean) pool packages end-to-end must succeed quietly.
func TestStandaloneCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go toolchain")
	}
	if code := runStandalone([]string{"../../internal/bufpool", "../../internal/grid"}, false); code != 0 {
		t.Fatalf("runStandalone = exit %d, want 0", code)
	}
}
