package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"

	"github.com/hpcio/das/internal/lint"
)

// The `go vet -vettool` driver protocol: the go command hands the tool a
// JSON .cfg describing one compilation unit (files, import map, export
// data for every dependency) and expects diagnostics on stderr, a
// facts file written to VetxOutput, and a non-zero exit iff something was
// reported. This mirrors x/tools' unitchecker, which this repo cannot
// depend on (offline build), minus analyzer facts — the das analyzers
// are all single-package.

// vetConfig is the subset of the unitchecker config daslint consumes.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVetUnit(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", cfgFile, err)
	}
	if len(cfg.GoFiles) == 0 {
		log.Fatalf("package has no files: %s", cfg.ImportPath)
	}

	// The das analyzers export no facts, but the protocol requires the
	// facts file to exist for dependents.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				log.Fatal(err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0 // the compiler will report it better
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	base := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return base.Import(path)
	})
	info := lint.NewTypesInfo()
	conf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(compiler, build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		log.Fatal(err)
	}

	pkg := &lint.Package{Fset: fset, Files: files, Types: tpkg, Info: info}
	diags, err := lint.Check(pkg, lint.All())
	if err != nil {
		log.Fatal(err)
	}
	writeVetx()
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
