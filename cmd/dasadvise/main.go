// Command dasadvise is the offline face of the DAS prediction core: given
// an operator's dependence pattern — either a built-in kernel name or a
// kernel-features description file (§III-B format) — and the system
// geometry, it reports whether the request should be offloaded, the
// predicted bandwidth cost of both choices, and the data distribution DAS
// would arrange.
//
// Usage:
//
//	dasadvise -op flow-routing -servers 12 -size-gb 24
//	dasadvise -features my-kernels.txt -servers 12 -size-gb 24
//	dasadvise -stride 8192 -servers 12 -size-gb 24     # ad-hoc ±stride
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/hpcio/das/internal/features"
	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/predict"
)

func main() {
	op := flag.String("op", "", "built-in operator name (flow-routing, flow-accumulation, gaussian-filter, median-filter)")
	featFile := flag.String("features", "", "kernel-features description file to analyze (all records)")
	stride := flag.Int64("stride", 0, "ad-hoc ±stride pattern in elements")
	servers := flag.Int("servers", 12, "number of storage servers (D)")
	width := flag.Int("width", 8192, "raster width in elements")
	stripSize := flag.Int64("strip-size", 64*1024, "strip size in bytes")
	sizeGB := flag.Int64("size-gb", 24, "file size in simulated GB (1 GB = 1 MiB at reproduction scale)")
	overhead := flag.Float64("max-overhead", 0.5, "replication capacity budget (2·halo/r)")
	flag.Parse()

	pats, err := patterns(*op, *featFile, *stride)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dasadvise:", err)
		os.Exit(1)
	}
	params := predict.Params{
		ElemSize:     grid.ElemSize,
		StripSize:    *stripSize,
		FileSize:     *sizeGB << 20,
		Width:        *width,
		OutputFactor: 1,
	}
	for _, pat := range pats {
		if err := advise(pat, params, *servers, *overhead); err != nil {
			fmt.Fprintln(os.Stderr, "dasadvise:", err)
			os.Exit(1)
		}
	}
}

func patterns(op, featFile string, stride int64) ([]features.Pattern, error) {
	switch {
	case featFile != "":
		f, err := os.Open(featFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		// §III-B allows both plain-text and XML databases; pick by suffix.
		if strings.HasSuffix(featFile, ".xml") {
			return features.ParseXML(f)
		}
		return features.Parse(f)
	case op != "":
		k, ok := kernels.Default().Lookup(op)
		if !ok {
			return nil, fmt.Errorf("unknown operator %q (known: %v)", op, kernels.Default().Names())
		}
		return []features.Pattern{kernels.Pattern(k)}, nil
	case stride != 0:
		return []features.Pattern{{Name: fmt.Sprintf("stride-%d", stride), Offsets: features.Stride(stride)}}, nil
	default:
		return nil, fmt.Errorf("one of -op, -features, or -stride is required")
	}
}

func advise(pat features.Pattern, params predict.Params, servers int, overhead float64) error {
	fmt.Printf("=== %s ===\n", pat.Name)
	fmt.Print(pat.String())
	fmt.Printf("max reach: %d elements at width %d\n\n", pat.MaxAbsOffset(params.Width), params.Width)

	rr := layout.NewRoundRobin(servers)
	d, err := predict.Decide(pat, params, rr)
	if err != nil {
		return err
	}
	fmt.Printf("under %s:\n", rr.Name())
	fmt.Printf("  element-level bwcost (Eq. 5): %d bytes (%.1f%% of dependencies remote)\n",
		d.Analysis.BWCostBytes, 100*d.Analysis.RemoteFrac)
	fmt.Printf("  strip-level offload traffic:  %d strips, %d bytes\n",
		d.Analysis.StripFetches, d.Analysis.StripFetchBytes)
	fmt.Printf("  normal I/O traffic:           %d bytes\n", d.NormalNetBytes)
	fmt.Printf("  verdict: offload=%v — %s\n\n", d.Offload, d.Reason)

	rec, ok, err := predict.RecommendLayout(pat, params, servers, overhead)
	if err != nil {
		return err
	}
	if !ok {
		fmt.Println("no layout change needed: pattern has no dependence")
		return nil
	}
	dRec, err := predict.Decide(pat, params, rec)
	if err != nil {
		return err
	}
	fmt.Printf("DAS would arrange %s (capacity overhead %.2f):\n", rec.Name(), layout.OverheadRatio(rec))
	fmt.Printf("  strip-level offload traffic:  %d strips, %d bytes\n",
		dRec.Analysis.StripFetches, dRec.Analysis.StripFetchBytes)
	fmt.Printf("  verdict: offload=%v — %s\n\n", dRec.Offload, dRec.Reason)
	return nil
}
