// Command dastrace runs one operation under a chosen scheme with the
// event recorder attached and prints where the time went: a per-actor
// phase summary and, with -full, the complete timeline. It makes the
// difference between the schemes visible at a glance — NAS servers
// dominated by "fetch", DAS servers by "local-read" and "compute", TS
// workers by "read" and "write-back".
//
// Usage:
//
//	dastrace -scheme NAS -op flow-routing -size-gb 4
//	dastrace -scheme DAS -op gaussian-filter -full
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/hpcio/das/internal/cluster"
	"github.com/hpcio/das/internal/core"
	"github.com/hpcio/das/internal/experiments"
	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/trace"
	"github.com/hpcio/das/internal/workload"
)

func main() {
	schemeName := flag.String("scheme", "DAS", "scheme: TS, NAS, or DAS")
	op := flag.String("op", "flow-routing", "operator to run")
	sizeGB := flag.Int("size-gb", 4, "dataset size in simulated GB (1 GB = 1 MiB)")
	nodes := flag.Int("nodes", 8, "total node count (half compute, half storage)")
	full := flag.Bool("full", false, "print the full event timeline, not just the summary")
	flag.Parse()

	if err := run(*schemeName, *op, *sizeGB, *nodes, *full); err != nil {
		fmt.Fprintln(os.Stderr, "dastrace:", err)
		os.Exit(1)
	}
}

func run(schemeName, op string, sizeGB, nodes int, full bool) error {
	var scheme core.Scheme
	switch strings.ToUpper(schemeName) {
	case "TS":
		scheme = core.TS
	case "NAS":
		scheme = core.NAS
	case "DAS":
		scheme = core.DAS
	default:
		return fmt.Errorf("unknown scheme %q", schemeName)
	}
	if nodes%2 != 0 || nodes <= 0 {
		return fmt.Errorf("node count must be positive and even")
	}
	cfg := cluster.Default()
	cfg.ComputeNodes, cfg.StorageNodes = nodes/2, nodes/2
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return err
	}
	defer sys.Close()

	width := 8192
	elems := int64(sizeGB) * experiments.BytesPerPaperGB / grid.ElemSize
	if elems%int64(width) != 0 {
		return fmt.Errorf("size %d GB does not tile width %d", sizeGB, width)
	}
	g := workload.Terrain(width, int(elems/int64(width)), 42)

	var lay layout.Layout = layout.NewRoundRobin(sys.FS.Servers())
	if scheme == core.DAS {
		lay, err = sys.PlanLayout(op, g.W, grid.ElemSize, 64*1024, g.SizeBytes(), 0)
		if err != nil {
			return err
		}
	}
	if _, err := sys.IngestGrid("input", g, lay, 64*1024); err != nil {
		return err
	}

	// Attach the recorder only for the operation itself, not the ingest.
	rec := trace.New(0)
	sys.Clu.Trace = rec
	rep, err := sys.Execute(core.Request{Op: op, Input: "input", Output: "output", Scheme: scheme})
	if err != nil {
		return err
	}
	fmt.Printf("%s %s over %d GB on %d nodes: %v (offloaded=%v, layout=%s)\n\n",
		scheme, op, sizeGB, nodes, rep.ExecTime, rep.Offloaded, lay.Name())
	fmt.Println(rec.SummaryTable())
	if full {
		fmt.Println(rec.Timeline())
	} else {
		fmt.Printf("(%d events recorded; -full prints the timeline)\n", rec.Len())
	}
	return nil
}
