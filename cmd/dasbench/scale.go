package main

import (
	"bufio"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/hpcio/das/internal/experiments"
	"github.com/hpcio/das/internal/sim"
)

// The -scale sweep is the PR's before/after instrument for the DES core:
// it runs the engine-scaling workload (internal/experiments.RunScale) on
// clusters from the paper's 24 nodes up to 5000, once per engine
// construction — the optimized default (fast dispatch + calendar queue)
// and the classic pre-PR construction (process-per-event + binary heap) —
// and records host-side cost: wall-clock, events/second, allocations,
// peak RSS. Per node count it also asserts the two constructions
// simulated byte-identically; any divergence is a non-zero exit, so the
// artifact doubles as a correctness gate.

// scaleSweepNodes is the standard sweep. 24 and 64 bracket the paper's
// testbed; 640 is the acceptance point; 1280 and 5000 probe beyond it.
var scaleSweepNodes = []int{24, 64, 160, 320, 640, 1280, 5000}

const (
	// 1024 ops per client keeps the 640-node acceptance point running for
	// hundreds of milliseconds even on the fast engine, long enough that
	// host-clock jitter stays small relative to the measurement.
	scaleOpsPerClient = 1024
	// The 5000-node smoke point trims per-client work so the classic
	// engine (the slow side of the comparison) finishes in reasonable time.
	scaleBigOpsPerClient = 64
	scaleBigNodes        = 5000
	scaleSeed            = 11
	// scaleReps is the best-of-N repetition count per (nodes, mode) row.
	// Shared-host wall-clock jitters by tens of percent run to run; the
	// minimum of a few runs is the standard scalar for "how fast can this
	// go", and determinism makes repeats free on the simulation side —
	// every repetition must reproduce the same ScaleStats.
	scaleReps = 3
)

// scaleRow is one (node count, engine construction) measurement.
type scaleRow struct {
	Nodes        int     `json:"nodes"`
	Mode         string  `json:"mode"` // "fast" or "classic"
	OpsPerClient int     `json:"ops_per_client"`
	Ops          int64   `json:"ops"`
	Events       uint64  `json:"events"`
	SimSeconds   float64 `json:"sim_seconds"`
	WallMs       float64 `json:"wall_ms"`
	EventsPerSec float64 `json:"events_per_sec"`
	Allocs       uint64  `json:"allocs"`
	PeakRSSKB    int64   `json:"peak_rss_kb"`
}

type scalePoint struct {
	Nodes     int      `json:"nodes"`
	Fast      scaleRow `json:"fast"`
	Classic   scaleRow `json:"classic"`
	Identical bool     `json:"identical"`
	// Speedup is classic wall-clock over fast wall-clock; EventRate gains
	// compare events_per_sec the same way.
	Speedup      float64 `json:"speedup"`
	EventSpeedup float64 `json:"event_speedup"`
}

type scaleReport struct {
	GoMaxProcs int          `json:"go_max_procs"`
	NumCPU     int          `json:"num_cpu"`
	Seed       uint64       `json:"seed"`
	Points     []scalePoint `json:"points"`
}

var scaleModes = map[string]sim.EngineOpts{
	"fast":    {},
	"classic": {ClassicDispatch: true, ClassicQueue: true},
}

// runScaleBest executes scaleReps measured runs and keeps the fastest.
// Each repetition builds the cluster outside the timer (PrepareScale) and
// times only ScaleRunner.Run — the simulation itself, which is what the
// events/second figure claims to measure; setup is milliseconds and not
// part of either engine construction. Wall-clock here is legitimate
// measurement (cmd/dasbench is the one place allowed to look at the host
// clock); everything the simulation reports stays virtual.
func runScaleBest(nodes, ops int, mode string) (scaleRow, experiments.ScaleStats, error) {
	var best scaleRow
	var stats experiments.ScaleStats
	for rep := 0; rep < scaleReps; rep++ {
		r, err := experiments.PrepareScale(experiments.ScaleOptions{
			Nodes:        nodes,
			OpsPerClient: ops,
			Seed:         scaleSeed,
			Engine:       scaleModes[mode],
		})
		if err != nil {
			return scaleRow{}, stats, err
		}
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		st, err := r.Run()
		wall := time.Since(start)
		if err != nil {
			return scaleRow{}, st, err
		}
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		if rep > 0 && !st.SameSimulation(stats) {
			return scaleRow{}, st, fmt.Errorf(
				"scale: %d-node %s simulation diverged between repetitions:\n rep 0  %+v\n rep %d  %+v",
				nodes, mode, stats, rep, st)
		}
		stats = st
		if rep == 0 || float64(wall.Nanoseconds())/1e6 < best.WallMs {
			best = scaleRow{
				Nodes:        nodes,
				Mode:         mode,
				OpsPerClient: ops,
				Ops:          st.Ops,
				Events:       st.Events,
				SimSeconds:   st.SimTime.Seconds(),
				WallMs:       float64(wall.Nanoseconds()) / 1e6,
				EventsPerSec: float64(st.Events) / wall.Seconds(),
				Allocs:       after.Mallocs - before.Mallocs,
			}
		}
	}
	best.PeakRSSKB = peakRSSKB()
	return best, stats, nil
}

// scaleSweep runs every node count under both constructions, verifies
// byte-identity per point, and writes the report.
func scaleSweep(path string, smoke bool) error {
	nodeCounts := scaleSweepNodes
	opsAt := func(n int) int {
		if n >= scaleBigNodes {
			return scaleBigOpsPerClient
		}
		return scaleOpsPerClient
	}
	if smoke {
		// Smoke: the acceptance-point node count with trimmed per-client
		// work, still comparing both constructions end to end.
		nodeCounts = []int{640}
		opsAt = func(int) int { return 32 }
	}
	rep := scaleReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Seed:       scaleSeed,
	}
	for _, n := range nodeCounts {
		ops := opsAt(n)
		fastRow, fastStats, err := runScaleBest(n, ops, "fast")
		if err != nil {
			return err
		}
		classicRow, classicStats, err := runScaleBest(n, ops, "classic")
		if err != nil {
			return err
		}
		pt := scalePoint{
			Nodes:        n,
			Fast:         fastRow,
			Classic:      classicRow,
			Identical:    fastStats.SameSimulation(classicStats),
			Speedup:      classicRow.WallMs / fastRow.WallMs,
			EventSpeedup: fastRow.EventsPerSec / classicRow.EventsPerSec,
		}
		fmt.Printf("scale %5d nodes: fast %8.1fms (%.2fM ev/s)  classic %8.1fms (%.2fM ev/s)  speedup %.2fx  identical=%v\n",
			n, fastRow.WallMs, fastRow.EventsPerSec/1e6,
			classicRow.WallMs, classicRow.EventsPerSec/1e6,
			pt.EventSpeedup, pt.Identical)
		if !pt.Identical {
			return fmt.Errorf("scale: %d-node simulations diverged between fast and classic engines:\n fast    %+v\n classic %+v",
				n, fastStats, classicStats)
		}
		rep.Points = append(rep.Points, pt)
	}
	if path == "" {
		return nil
	}
	return writeJSON(path, rep)
}

// peakRSSKB reads the process's resident high-water mark (VmHWM) from
// /proc/self/status; 0 on platforms without procfs.
func peakRSSKB() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb
	}
	return 0
}
