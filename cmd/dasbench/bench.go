package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"github.com/hpcio/das/internal/cache"
	"github.com/hpcio/das/internal/control"
	"github.com/hpcio/das/internal/core"
	"github.com/hpcio/das/internal/experiments"
	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/restripe"
	"github.com/hpcio/das/internal/workload"
)

// kernelBenchResult is one micro-benchmark row: a kernel applied to a full
// in-memory band, sequentially or through the parallel executor.
type kernelBenchResult struct {
	Kernel      string  `json:"kernel"`
	Mode        string  `json:"mode"` // "sequential" or "parallel"
	Shards      int     `json:"shards"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MBPerSec    float64 `json:"mb_per_sec"`
}

// schemeBenchResult measures regenerating one scheme run end to end: wall
// nanoseconds and allocations per run, plus the simulated execution time
// the run reports (the paper's metric).
type schemeBenchResult struct {
	Scheme      string  `json:"scheme"`
	Op          string  `json:"op"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	SimSeconds  float64 `json:"sim_seconds"`
}

// restripeBenchRow is one variant's migration counters from the short
// online-restripe run included in the micro-benchmark report.
type restripeBenchRow struct {
	Variant string `json:"variant"`
	experiments.RestripeMigrationReport
}

type benchReport struct {
	GoMaxProcs  int                          `json:"go_max_procs"`
	NumCPU      int                          `json:"num_cpu"`
	GridWidth   int                          `json:"grid_width"`
	GridHeight  int                          `json:"grid_height"`
	SchemeSize  int                          `json:"scheme_size_gb"`
	SchemeNodes int                          `json:"scheme_nodes"`
	Kernels     []kernelBenchResult          `json:"kernels"`
	Schemes     []schemeBenchResult          `json:"schemes"`
	Recovery    []experiments.SchemeRecovery `json:"recovery"`
	Restripe    []restripeBenchRow           `json:"restripe"`
}

// benchJSON runs the kernel and scheme micro-benchmarks and writes the
// results to path as JSON (the BENCH_kernels.json artifact).
func benchJSON(cfg experiments.Config, path string) error {
	const w, h = 1024, 512
	terrain := workload.Terrain(w, h, 1)
	image := workload.Image(w, h, 1, 0.05)
	cases := []struct {
		k  kernels.Kernel
		in *grid.Grid
	}{
		{kernels.FlowRouting{}, terrain},
		{kernels.FlowAccumulation{}, kernels.Apply(kernels.FlowRouting{}, terrain)},
		{kernels.Gaussian{}, image},
		{kernels.Median{}, image},
	}

	rep := benchReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GridWidth:  w,
		GridHeight: h,
	}

	for _, c := range cases {
		band := grid.BandOf(c.in, 0, c.in.Len(), 0, c.in.Len())
		out := make([]float64, c.in.Len())
		sizeBytes := c.in.SizeBytes()
		for _, mode := range []string{"sequential", "parallel"} {
			if mode == "sequential" {
				kernels.SetParallelism(1)
			} else {
				kernels.SetParallelism(0) // auto: GOMAXPROCS above the size threshold
			}
			r := testing.Benchmark(func(b *testing.B) {
				b.SetBytes(sizeBytes)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if mode == "sequential" {
						c.k.ApplyBand(band, out)
					} else {
						kernels.ParallelApplyBand(c.k, band, out)
					}
				}
			})
			rep.Kernels = append(rep.Kernels, kernelBenchResult{
				Kernel:      c.k.Name(),
				Mode:        mode,
				Shards:      kernels.Parallelism(c.in.Len()),
				NsPerOp:     r.NsPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				MBPerSec:    float64(sizeBytes) / 1e6 / (float64(r.NsPerOp()) / 1e9),
			})
		}
		kernels.SetParallelism(0)
	}

	// Scheme runs at the smallest configured size: wall cost and garbage of
	// regenerating one paper data point per scheme.
	size, nodes := cfg.SizesGB[0], cfg.Nodes
	rep.SchemeSize, rep.SchemeNodes = size, nodes
	const op = "flow-routing"
	for _, scheme := range []core.Scheme{core.TS, core.NAS, core.DAS} {
		var simSeconds float64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := cfg.RunOne(scheme, op, size, nodes)
				if err != nil {
					b.Fatal(err)
				}
				simSeconds = out.ExecTime.Seconds()
			}
		})
		rep.Schemes = append(rep.Schemes, schemeBenchResult{
			Scheme:      scheme.String(),
			Op:          op,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			SimSeconds:  simSeconds,
		})
	}

	// The crashed-run recovery counters: previously these appeared only in
	// the -faults human-readable notes, so the JSON trajectory lost the
	// degrade and failover events.
	_, recs, err := cfg.FaultFailoverRecovery()
	if err != nil {
		return err
	}
	rep.Recovery = recs

	// Migration counters from a short online-restripe run, so the JSON
	// trajectory tracks the background migrator alongside recovery.
	_, rr, err := cfg.RestripeExperiment(2, restripe.Config{})
	if err != nil {
		return err
	}
	for _, v := range rr.Variants {
		if v.Migration != nil {
			rep.Restripe = append(rep.Restripe, restripeBenchRow{Variant: v.Name, RestripeMigrationReport: *v.Migration})
		}
	}

	if err := writeJSON(path, rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d kernel rows, %d scheme rows, %d recovery rows, %d restripe rows)\n",
		path, len(rep.Kernels), len(rep.Schemes), len(rep.Recovery), len(rep.Restripe))
	return nil
}

// cacheJSON runs the halo-strip cache experiment and writes its report to
// path (the BENCH_cache.json artifact).
func cacheJSON(cfg experiments.Config, rounds int, path string) error {
	r, report, err := cfg.CacheExperiment(rounds, cache.Config{})
	if err != nil {
		return err
	}
	if err := writeJSON(path, report); err != nil {
		return err
	}
	fmt.Println(r.Table())
	fmt.Printf("wrote %s (%d variants)\n", path, len(report.Variants))
	return nil
}

// restripeJSON runs the online-restriping experiment and writes its report
// to path (the BENCH_restripe.json artifact).
func restripeJSON(cfg experiments.Config, rounds int, path string) error {
	r, report, err := cfg.RestripeExperiment(rounds, restripe.Config{})
	if err != nil {
		return err
	}
	if err := writeJSON(path, report); err != nil {
		return err
	}
	fmt.Println(r.Table())
	fmt.Printf("wrote %s (%d variants)\n", path, len(report.Variants))
	return nil
}

// p99JSON runs the unified p99 controller experiment and writes its
// report to path (the BENCH_p99.json artifact).
func p99JSON(cfg experiments.Config, rounds int, path string) error {
	r, report, err := cfg.P99Experiment(rounds, control.Config{})
	if err != nil {
		return err
	}
	if err := writeJSON(path, report); err != nil {
		return err
	}
	fmt.Println(r.Table())
	fmt.Printf("wrote %s (%d variants)\n", path, len(report.Variants))
	return nil
}

// tenantsRun runs the multi-tenant skewed-stream experiment (full scale,
// or the reduced smoke configuration) and optionally writes its report to
// path (the BENCH_tenants.json artifact).
func tenantsRun(cfg experiments.Config, smoke bool, path string, csv, chart bool) error {
	tcfg := experiments.DefaultTenantsConfig()
	if smoke {
		tcfg = experiments.SmokeTenantsConfig()
	}
	r, report, err := cfg.TenantsExperiment(tcfg)
	if err != nil {
		return err
	}
	if path != "" {
		if err := writeJSON(path, report); err != nil {
			return err
		}
	}
	if csv {
		fmt.Printf("# %s\n%s\n", r.ID, r.CSV())
	} else {
		fmt.Println(r.Table())
		if chart {
			fmt.Println(r.Chart(48))
		}
	}
	if path != "" {
		fmt.Printf("wrote %s (%d variants)\n", path, len(report.Variants))
	}
	return nil
}

// pipelineRun runs the kernel-DAG pushdown experiment (full scale, or
// the reduced smoke configuration) and optionally writes its report to
// path (the BENCH_pipeline.json artifact).
func pipelineRun(cfg experiments.Config, smoke bool, path string, csv, chart bool) error {
	r, report, err := cfg.PipelineExperiment(smoke)
	if err != nil {
		return err
	}
	if path != "" {
		if err := writeJSON(path, report); err != nil {
			return err
		}
	}
	if csv {
		fmt.Printf("# %s\n%s\n", r.ID, r.CSV())
	} else {
		fmt.Println(r.Table())
		if chart {
			fmt.Println(r.Chart(48))
		}
	}
	if path != "" {
		fmt.Printf("wrote %s (%d variants)\n", path, len(report.Variants))
	}
	return nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
