// Command dasbench regenerates the paper's evaluation: every figure and
// table of §IV plus the ablations described in DESIGN.md. By default it
// runs the paper-mirroring configuration (24–60 GB datasets scaled 1 GB →
// 1 MiB, 24–60 nodes); -quick runs a reduced sweep for smoke tests.
//
// Usage:
//
//	dasbench                  # everything, text tables
//	dasbench -exp fig12       # one experiment
//	dasbench -exp ablations   # the four ablations
//	dasbench -csv             # machine-readable output
//	dasbench -quick           # reduced sizes/nodes
//	dasbench -json BENCH_kernels.json   # kernel/scheme micro-benchmarks + recovery counters
//	dasbench -cache                     # halo-strip cache experiment, text table
//	dasbench -cache -json BENCH_cache.json   # same, JSON report
//	dasbench -restripe                  # online-restriping experiment, text table
//	dasbench -restripe -json BENCH_restripe.json   # same, JSON report
//	dasbench -p99                       # unified p99 controller experiment
//	dasbench -p99 -json BENCH_p99.json  # same, JSON report
//	dasbench -tenants                   # multi-tenant skewed-stream experiment
//	dasbench -tenants -json BENCH_tenants.json  # same, JSON report
//	dasbench -tenants -smoke            # reduced stream count for CI
//	dasbench -pipeline                  # kernel-DAG pushdown vs per-pass experiment
//	dasbench -pipeline -json BENCH_pipeline.json  # same, JSON report
//	dasbench -pipeline -smoke           # reduced dataset for CI
//	dasbench -cpuprofile cpu.out -exp fig11   # profile a run
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"github.com/hpcio/das/internal/cache"
	"github.com/hpcio/das/internal/cli"
	"github.com/hpcio/das/internal/control"
	"github.com/hpcio/das/internal/experiments"
	"github.com/hpcio/das/internal/restripe"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, tableI, fig10, fig11, fig12, fig13, fig14, faults, cache, restripe, p99, ablations")
	faults := flag.Bool("faults", false, "run the storage-server fault/failover comparison (shorthand for -exp faults)")
	cacheExp := flag.Bool("cache", false, "run the halo-strip cache experiment (shorthand for -exp cache; with -json, writes the cache report instead of micro-benchmarks)")
	cacheRounds := flag.Int("cache-rounds", 3, "rounds per variant in the cache experiment")
	restripeExp := flag.Bool("restripe", false, "run the online-restriping experiment (shorthand for -exp restripe; with -json, writes the restripe report instead of micro-benchmarks)")
	restripeRounds := flag.Int("restripe-rounds", 3, "rounds per variant in the restripe experiment")
	p99Exp := flag.Bool("p99", false, "run the unified p99 controller experiment (shorthand for -exp p99; with -json, writes the p99 report instead of micro-benchmarks)")
	p99Rounds := flag.Int("p99-rounds", 8, "rounds per variant in the p99 controller experiment")
	scaleExp := flag.Bool("scale", false, "run the engine-scaling sweep (24-5000 nodes, fast vs classic engine); writes BENCH_scale.json unless -json names another file")
	tenantsExp := flag.Bool("tenants", false, "run the multi-tenant skewed-stream experiment (admission control, fairness, adaptive stack); with -json, writes the tenants report")
	pipelineExp := flag.Bool("pipeline", false, "run the kernel-DAG pushdown experiment (per-pass vs pipelined under NAS and DAS); with -json, writes the pipeline report")
	smoke := flag.Bool("smoke", false, "with -scale, -tenants, or -pipeline: reduced configuration for CI smoke runs")
	csv := flag.Bool("csv", false, "emit CSV instead of text tables")
	chart := flag.Bool("chart", false, "append an ASCII bar chart to each table")
	quick := flag.Bool("quick", false, "reduced sweep (2-4 GB, 8-16 nodes) for smoke testing")
	nodes := flag.Int("nodes", 0, "override the default node count")
	benchJSONPath := flag.String("json", "", "run kernel/scheme micro-benchmarks and write JSON results to this file (e.g. BENCH_kernels.json)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	if err := checkExclusive(*exp, *faults, *cacheExp, *restripeExp, *p99Exp, *scaleExp, *tenantsExp, *pipelineExp, *smoke); err != nil {
		fmt.Fprintln(os.Stderr, "dasbench:", err)
		os.Exit(1)
	}

	cfg := experiments.Default()
	if *quick {
		cfg.Nodes = 8
		cfg.SizesGB = []int{2, 4}
		cfg.NodeSweep = []int{8, 16}
	}
	if *nodes != 0 {
		cfg.Nodes = *nodes
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dasbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "dasbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	err := func() error {
		if *scaleExp {
			path := *benchJSONPath
			if path == "" && !*smoke {
				path = "BENCH_scale.json"
			}
			return scaleSweep(path, *smoke)
		}
		if *tenantsExp {
			return tenantsRun(cfg, *smoke, *benchJSONPath, *csv, *chart)
		}
		if *pipelineExp {
			return pipelineRun(cfg, *smoke, *benchJSONPath, *csv, *chart)
		}
		if *benchJSONPath != "" {
			if *cacheExp {
				return cacheJSON(cfg, *cacheRounds, *benchJSONPath)
			}
			if *restripeExp {
				return restripeJSON(cfg, *restripeRounds, *benchJSONPath)
			}
			if *p99Exp {
				return p99JSON(cfg, *p99Rounds, *benchJSONPath)
			}
			return benchJSON(cfg, *benchJSONPath)
		}
		name := strings.ToLower(*exp)
		if *faults {
			name = "faults"
		}
		if *cacheExp {
			name = "cache"
		}
		if *restripeExp {
			name = "restripe"
		}
		if *p99Exp {
			name = "p99"
		}
		return run(cfg, name, *cacheRounds, *restripeRounds, *p99Rounds, *csv, *chart)
	}()

	if *memprofile != "" {
		f, ferr := os.Create(*memprofile)
		if ferr == nil {
			runtime.GC() // flush recent allocation stats into the profile
			ferr = pprof.Lookup("allocs").WriteTo(f, 0)
			f.Close()
		}
		if ferr != nil && err == nil {
			err = ferr
		}
	}

	if err != nil {
		fmt.Fprintln(os.Stderr, "dasbench:", err)
		if *cpuprofile != "" {
			pprof.StopCPUProfile()
		}
		os.Exit(1)
	}
}

// checkExclusive rejects flag combinations that would otherwise be
// silently ignored: each report mode owns the whole run, so modes
// exclude each other and a named -exp, and -smoke only modifies the
// modes that define a reduced configuration.
func checkExclusive(exp string, faults, cacheExp, restripeExp, p99Exp, scaleExp, tenantsExp, pipelineExp, smoke bool) error {
	if err := cli.CheckExclusive(
		[]cli.Flag{
			{Name: "-faults", Set: faults},
			{Name: "-cache", Set: cacheExp},
			{Name: "-restripe", Set: restripeExp},
			{Name: "-p99", Set: p99Exp},
			{Name: "-scale", Set: scaleExp},
			{Name: "-tenants", Set: tenantsExp},
			{Name: "-pipeline", Set: pipelineExp},
		},
		[]cli.Flag{{Name: "-exp", Set: exp != "" && strings.ToLower(exp) != "all"}},
	); err != nil {
		return err
	}
	if smoke && !scaleExp && !tenantsExp && !pipelineExp {
		return fmt.Errorf("-smoke applies only to -scale, -tenants, or -pipeline")
	}
	return nil
}

func run(cfg experiments.Config, exp string, cacheRounds, restripeRounds, p99Rounds int, csv, chart bool) error {
	emit := func(r *experiments.Result) {
		if csv {
			fmt.Printf("# %s\n%s\n", r.ID, r.CSV())
			return
		}
		fmt.Println(r.Table())
		if chart {
			fmt.Println(r.Chart(48))
		}
	}
	single := map[string]func() (*experiments.Result, error){
		"fig10":  cfg.Fig10,
		"fig11":  cfg.Fig11,
		"fig12":  cfg.Fig12,
		"fig13":  cfg.Fig13,
		"fig14":  cfg.Fig14,
		"faults": cfg.FaultFailover,
		"cache": func() (*experiments.Result, error) {
			r, _, err := cfg.CacheExperiment(cacheRounds, cache.Config{})
			return r, err
		},
		"restripe": func() (*experiments.Result, error) {
			r, _, err := cfg.RestripeExperiment(restripeRounds, restripe.Config{})
			return r, err
		},
		"p99": func() (*experiments.Result, error) {
			r, _, err := cfg.P99Experiment(p99Rounds, control.Config{})
			return r, err
		},
		"ablation-group-size":        cfg.AblationGroupSize,
		"ablation-predictor":         cfg.AblationPredictor,
		"ablation-reconfig":          cfg.AblationReconfig,
		"ablation-halo-fetch":        cfg.AblationHaloFetch,
		"ablation-multitenant":       cfg.AblationMultiTenant,
		"ablation-deployment":        cfg.AblationDeployment,
		"ablation-compute-intensity": cfg.AblationComputeIntensity,
		"ablation-strip-size":        cfg.AblationStripSize,
		"ablation-mapreduce":         cfg.AblationMapReduce,
	}
	switch exp {
	case "tablei":
		fmt.Println(experiments.TableI())
		return nil
	case "ablations":
		results, err := cfg.Ablations()
		if err != nil {
			return err
		}
		for _, r := range results {
			emit(r)
		}
		return nil
	case "all":
		fmt.Println(experiments.TableI())
		results, err := cfg.All()
		if err != nil {
			return err
		}
		for _, r := range results {
			emit(r)
		}
		results, err = cfg.Ablations()
		if err != nil {
			return err
		}
		for _, r := range results {
			emit(r)
		}
		return nil
	default:
		f, ok := single[exp]
		if !ok {
			return fmt.Errorf("unknown experiment %q", exp)
		}
		r, err := f()
		if err != nil {
			return err
		}
		emit(r)
		return nil
	}
}
