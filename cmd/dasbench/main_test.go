package main

import (
	"strings"
	"testing"
)

// TestCheckExclusive covers the flag-conflict error paths: every report
// mode owns the whole run, so combining two modes, or a mode with a
// named -exp, must fail loudly instead of silently ignoring one of them.
func TestCheckExclusive(t *testing.T) {
	type args struct {
		exp                                                             string
		faults, cacheExp, restripeExp, p99Exp, scale, tenants, pipeline bool
		smoke                                                           bool
	}
	cases := []struct {
		name    string
		a       args
		wantErr string // empty: combination must be accepted
	}{
		{name: "default run", a: args{exp: "all"}},
		{name: "named experiment", a: args{exp: "fig11"}},
		{name: "single mode", a: args{exp: "all", tenants: true}},
		{name: "tenants smoke", a: args{exp: "all", tenants: true, smoke: true}},
		{name: "scale smoke", a: args{exp: "all", scale: true, smoke: true}},
		{name: "pipeline smoke", a: args{exp: "all", pipeline: true, smoke: true}},
		{
			name:    "two modes",
			a:       args{exp: "all", cacheExp: true, tenants: true},
			wantErr: "-tenants cannot be combined with -cache",
		},
		{
			name:    "pipeline with another mode",
			a:       args{exp: "all", pipeline: true, scale: true},
			wantErr: "-pipeline cannot be combined with -scale",
		},
		{
			name:    "pipeline with named experiment",
			a:       args{exp: "fig10", pipeline: true},
			wantErr: "-pipeline cannot be combined with -exp",
		},
		{
			name:    "three modes",
			a:       args{exp: "all", faults: true, p99Exp: true, scale: true},
			wantErr: "-p99 or -scale cannot be combined with -faults",
		},
		{
			name:    "mode with named experiment",
			a:       args{exp: "fig12", tenants: true},
			wantErr: "-tenants cannot be combined with -exp",
		},
		{
			name:    "stray smoke",
			a:       args{exp: "all", smoke: true},
			wantErr: "-smoke applies only to -scale, -tenants, or -pipeline",
		},
		{
			name:    "smoke on wrong mode",
			a:       args{exp: "all", p99Exp: true, smoke: true},
			wantErr: "-smoke applies only to -scale, -tenants, or -pipeline",
		},
	}
	for _, tc := range cases {
		err := checkExclusive(tc.a.exp, tc.a.faults, tc.a.cacheExp, tc.a.restripeExp,
			tc.a.p99Exp, tc.a.scale, tc.a.tenants, tc.a.pipeline, tc.a.smoke)
		switch {
		case tc.wantErr == "" && err != nil:
			t.Errorf("%s: unexpected error %v", tc.name, err)
		case tc.wantErr != "" && err == nil:
			t.Errorf("%s: combination accepted, want %q", tc.name, tc.wantErr)
		case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.wantErr)
		}
	}
}
