// Command dasgen generates the synthetic rasters the reproduction's
// kernels consume — terrain DEMs for the GIS operators and speckled
// intensity images for the filters — and writes them in the flat
// little-endian element format the simulated PFS stripes (grid.ElemSize
// bytes per cell, row-major).
//
// Usage:
//
//	dasgen -kind terrain -width 8192 -height 384 -o dem.raw
//	dasgen -kind image -width 1024 -height 1024 -speckle 0.05 -o img.raw
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/workload"
)

func main() {
	kind := flag.String("kind", "terrain", "raster kind: terrain, image, ramp")
	width := flag.Int("width", 1024, "raster width in elements")
	height := flag.Int("height", 1024, "raster height in rows")
	seed := flag.Uint64("seed", 42, "generator seed")
	speckle := flag.Float64("speckle", 0.05, "speckle fraction for -kind image")
	out := flag.String("o", "", "output file (default stdout summary only)")
	flag.Parse()

	if err := run(*kind, *width, *height, *seed, *speckle, *out); err != nil {
		fmt.Fprintln(os.Stderr, "dasgen:", err)
		os.Exit(1)
	}
}

func run(kind string, width, height int, seed uint64, speckle float64, out string) error {
	if width <= 0 || height <= 0 {
		return fmt.Errorf("width and height must be positive")
	}
	var g *grid.Grid
	switch kind {
	case "terrain":
		g = workload.Terrain(width, height, seed)
	case "image":
		g = workload.Image(width, height, seed, speckle)
	case "ramp":
		g = workload.Ramp(width, height)
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	lo, hi := g.Data[0], g.Data[0]
	for _, v := range g.Data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	fmt.Printf("%s %dx%d: %d elements, %d bytes, value range [%.3f, %.3f]\n",
		kind, width, height, g.Len(), g.SizeBytes(), lo, hi)
	if out == "" {
		return nil
	}
	if err := os.WriteFile(out, g.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
