package main

import (
	"fmt"
	"io"

	"github.com/hpcio/das/internal/cache"
	"github.com/hpcio/das/internal/cluster"
	"github.com/hpcio/das/internal/control"
	"github.com/hpcio/das/internal/core"
	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/sim"
	"github.com/hpcio/das/internal/tenants"
)

// tenantsReport replays a small multi-tenant workload — Zipf-skewed
// closed-loop streams with a mid-run hot-set rotation — under admission
// control with the halo cache and unified controller live, and prints the
// per-tenant fairness picture, the per-server queue tails, and where the
// heat actually landed (engine, controller, and cache views side by
// side).
func tenantsReport(w io.Writer, servers int, streams int) error {
	if servers <= 0 {
		return fmt.Errorf("servers must be positive")
	}
	if streams < 1 {
		streams = 48
	}
	cfg := cluster.Default()
	cfg.ComputeNodes = servers
	cfg.StorageNodes = servers

	sys, err := core.NewSystem(cfg)
	if err != nil {
		return err
	}
	defer sys.Close()
	if err := sys.EnableCache(cache.Config{BudgetBytes: 512 << 10}); err != nil {
		return err
	}
	if err := sys.EnableControl(control.Config{
		SampleEvery: 5 * sim.Millisecond,
		LatencyHigh: 4 * sim.Millisecond,
		LatencyLow:  sim.Millisecond,
	}); err != nil {
		return err
	}

	tcfg := tenants.Config{
		Tenants:      streams,
		Files:        4 * servers,
		OpsPerTenant: 8,
		Seed:         42,
		Phases: []tenants.Phase{
			{FromOp: 4, Mix: tenants.Mix{Read: 60, Write: 25, Offload: 15}, Rotate: 2 * servers},
		},
		MaxQueueDepth: 12,
	}
	eng, err := tenants.New(sys.Clu, sys.FS, tcfg)
	if err != nil {
		return err
	}
	eng.SetFileObserver(sys.Control)
	if _, err := sys.RunProc("tenants-setup", eng.Setup); err != nil {
		return err
	}
	elapsed, err := sys.RunProc("tenants-run", eng.Run)
	if err != nil {
		return err
	}

	norm := eng.Config()
	tot := eng.Totals()
	fair := eng.Fairness()
	fmt.Fprintf(w, "multi-tenant demo: %d streams x %d ops over %d files (Zipf %.2f), %d servers, queue bound %d\n",
		norm.Tenants, norm.OpsPerTenant, norm.Files, norm.ZipfSkew, servers, norm.MaxQueueDepth)
	fmt.Fprintf(w, "elapsed %v: %d ops (%d reads, %d writes, %d offloads), %d shed, %d deferrals, %s moved\n",
		elapsed, tot.Ops, tot.Reads, tot.Writes, tot.Offloads, tot.Sheds, tot.Deferrals,
		metrics.FormatBytes(tot.Bytes))
	fmt.Fprintf(w, "fairness: %d tenants, per-tenant p99 %v .. %v (spread %v)\n\n",
		fair.Tenants, sim.Time(fair.MinP99Nanos), sim.Time(fair.MaxP99Nanos), sim.Time(fair.SpreadNanos))

	fmt.Fprintf(w, "per-server queue depth (sampled at arrival):\n")
	for _, q := range eng.QueueStats() {
		fmt.Fprintf(w, "  server %2d: %6d samples  p50 %3d  p99 %3d  max %3d  sheds %d\n",
			q.Server, q.Samples, q.P50, q.P99, q.Max, q.Sheds)
	}

	fmt.Fprintf(w, "\nhottest files (engine ops | controller p99 | cache bytes):\n")
	heat := make(map[string]cache.FileHeat)
	for _, h := range sys.Cache.TopFiles(0) {
		heat[h.File] = h
	}
	ctlStats := make(map[string]control.FileStat)
	for _, s := range sys.Control.FileStats() {
		ctlStats[s.File] = s
	}
	for _, f := range eng.TopFiles(5) {
		line := fmt.Sprintf("  %-12s %4d ops", f.File, f.Ops)
		if s, ok := ctlStats[f.File]; ok {
			line += fmt.Sprintf("  p99 %v", sim.Time(s.P99))
		}
		if h, ok := heat[f.File]; ok {
			line += fmt.Sprintf("  cache hit %s / miss %s",
				metrics.FormatBytes(h.HitBytes), metrics.FormatBytes(h.MissBytes))
		}
		fmt.Fprintln(w, line)
	}
	return nil
}
