package main

import (
	"fmt"
	"io"

	"github.com/hpcio/das/internal/cache"
	"github.com/hpcio/das/internal/cluster"
	"github.com/hpcio/das/internal/control"
	"github.com/hpcio/das/internal/core"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/sim"
	"github.com/hpcio/das/internal/workload"
)

// controlReport runs a short offloaded workload (flow-routing over a
// small synthetic terrain, round-robin placement, repeated rounds) with
// the halo-strip cache under the unified p99 controller, and prints each
// server's latency sketches, the controller's sample accounting, and the
// percentile-triggered tuning actions it took.
func controlReport(w io.Writer, servers int, rounds int) error {
	if servers <= 0 {
		return fmt.Errorf("servers must be positive")
	}
	if rounds < 1 {
		rounds = 1
	}
	cfg := cluster.Default()
	cfg.ComputeNodes = servers
	cfg.StorageNodes = servers

	sys, err := core.NewSystem(cfg)
	if err != nil {
		return err
	}
	defer sys.Close()
	// A deliberately small cache keeps fetch traffic flowing so the
	// controller has a tail to act on; thresholds bracket the simulated
	// platform's fetch-latency scale.
	if err := sys.EnableCache(cache.Config{BudgetBytes: 256 << 10}); err != nil {
		return err
	}
	// Thresholds bracket the demo terrain's fetch tail (~4-5 ms) so the
	// report shows the controller actually acting.
	ctlCfg := control.Config{
		SampleEvery: 10 * sim.Millisecond,
		LatencyHigh: 3 * sim.Millisecond,
		LatencyLow:  sim.Millisecond,
	}
	if err := sys.EnableControl(ctlCfg); err != nil {
		return err
	}

	const width, height = 512, 256
	g := workload.Terrain(width, height, 1)
	lay := layout.NewRoundRobin(servers)
	if _, err := sys.IngestGrid("demo", g, lay, 64*1024); err != nil {
		return err
	}
	for round := 0; round < rounds; round++ {
		out := fmt.Sprintf("demo.out.%d", round)
		if _, err := sys.Execute(core.Request{
			Op: "flow-routing", Input: "demo", Output: out, Scheme: core.NAS,
		}); err != nil {
			return fmt.Errorf("control demo round %d: %w", round, err)
		}
	}

	ctl := sys.Control
	norm := ctl.Config()
	fmt.Fprintf(w, "unified p99 controller demo: flow-routing on %dx%d terrain, %d servers, %d rounds\n",
		width, height, servers, rounds)
	fmt.Fprintf(w, "thresholds: high %v / low %v at p%d, window %v, cool-down %v\n",
		norm.LatencyHigh, norm.LatencyLow, norm.Percentile, norm.SampleEvery, norm.Cooldown)
	fmt.Fprintf(w, "cache budget %s per server\n\n", metrics.FormatBytes(sys.Cache.Config().BudgetBytes))

	for _, s := range ctl.Stats() {
		fmt.Fprintf(w, "%s\n", s.String())
	}
	fmt.Fprintf(w, "\ncluster fetch p%d: %v\n", norm.Percentile, ctl.ClusterP99())
	fmt.Fprintf(w, "samples: %d tuning, %d rpc, %d migration-excluded\n",
		ctl.TuningSamples(), ctl.RPCSamples(), ctl.MigrationSamplesExcluded())
	allowed, denied := ctl.Admissions()
	fmt.Fprintf(w, "control: %d ticks, %d actions, %d cool-down deferrals, restripe admissions %d/%d\n",
		ctl.Ticks(), len(ctl.Actions()), ctl.CooldownSuppressed(), allowed, allowed+denied)
	for _, a := range ctl.Actions() {
		fmt.Fprintf(w, "  %s\n", a.String())
	}
	return nil
}
