// Command dasctl inspects DAS data distributions: given a file and system
// geometry it prints the strip→server placement under the round-robin,
// grouped, and grouped-replicated policies, the replica sets, capacity
// overhead, and the dependent-strip fetch plan an active storage server
// would execute for a named operator.
//
// Usage:
//
//	dasctl -servers 12 -strips 24                        # placement maps
//	dasctl -servers 12 -op flow-routing -width 8192 \
//	       -size 25165824                                # fetch plan summary
//	dasctl -servers 4 -faults crash@10ms:s1              # crash coverage
//	dasctl -servers 4 -cache -cache-policy arc           # halo-strip cache stats
//	dasctl -servers 4 -restripe                          # online-restripe migration report
//	dasctl -servers 4 -control                           # unified p99 controller report
//	dasctl -servers 4 -tenants -streams 64               # multi-tenant fairness report
//	dasctl -kernels                                      # operator registry listing
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hpcio/das/internal/cli"
	"github.com/hpcio/das/internal/fault"
	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/predict"
)

func main() {
	servers := flag.Int("servers", 4, "number of storage servers (D)")
	strips := flag.Int64("strips", 16, "strips to display in placement maps")
	groupSize := flag.Int("r", 4, "strips per group for the improved distribution")
	halo := flag.Int("halo", 1, "boundary strips replicated per group side")
	stripSize := flag.Int64("strip-size", 64*1024, "strip size in bytes")
	op := flag.String("op", "", "operator whose fetch plan to analyze (e.g. flow-routing)")
	width := flag.Int("width", 8192, "raster width in elements")
	size := flag.Int64("size", 0, "file size in bytes (required with -op)")
	faults := flag.String("faults", "",
		"fault plan to analyze, e.g. 'crash@10ms:s1,restart@60ms:s1,loss@0:0.05' — reports which strips survive the servers the plan leaves down")
	cacheDemo := flag.Bool("cache", false,
		"run a short offloaded workload with the halo-strip cache enabled and report per-server cache stats")
	cachePolicy := flag.String("cache-policy", "lru", "cache eviction policy for -cache: lru or arc")
	cacheRounds := flag.Int("cache-rounds", 3, "offloaded rounds for -cache")
	restripeDemo := flag.Bool("restripe", false,
		"run a short offloaded workload with online restriping enabled and report the migration's progress and throttle behaviour")
	restripeRounds := flag.Int("restripe-rounds", 3, "offloaded rounds for -restripe")
	controlDemo := flag.Bool("control", false,
		"run a short offloaded workload under the unified p99 latency controller and report its sketches, sample accounting, and tuning actions")
	controlRounds := flag.Int("control-rounds", 4, "offloaded rounds for -control")
	tenantsDemo := flag.Bool("tenants", false,
		"replay a small multi-tenant Zipf workload under admission control and report per-tenant fairness, queue tails, and file heat")
	streams := flag.Int("streams", 48, "concurrent client streams for -tenants")
	kernelsList := flag.Bool("kernels", false,
		"list every registered operator (kernels, combiners, reducers) with dependence offsets and per-element weights")
	flag.Parse()

	err := checkExclusive(*op, *faults, *cacheDemo, *restripeDemo, *controlDemo, *tenantsDemo, *kernelsList)
	if err == nil {
		switch {
		case *kernelsList:
			err = kernelsReport(os.Stdout)
		case *cacheDemo:
			err = cacheReport(os.Stdout, *servers, *cachePolicy, *cacheRounds)
		case *restripeDemo:
			err = restripeReport(os.Stdout, *servers, *restripeRounds)
		case *controlDemo:
			err = controlReport(os.Stdout, *servers, *controlRounds)
		case *tenantsDemo:
			err = tenantsReport(os.Stdout, *servers, *streams)
		default:
			err = run(*servers, *strips, *groupSize, *halo, *stripSize, *op, *width, *size, *faults)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dasctl:", err)
		os.Exit(1)
	}
}

// checkExclusive rejects flag combinations that would otherwise be
// silently ignored: -cache, -restripe, -control, -tenants, and -kernels
// each produce their own report and compose with neither the fetch-plan
// (-op) nor the fault-coverage (-faults) analyses, nor with each other.
func checkExclusive(op, faultSpec string, cacheDemo, restripeDemo, controlDemo, tenantsDemo, kernelsList bool) error {
	return cli.CheckExclusive(
		[]cli.Flag{
			{Name: "-cache", Set: cacheDemo},
			{Name: "-restripe", Set: restripeDemo},
			{Name: "-control", Set: controlDemo},
			{Name: "-tenants", Set: tenantsDemo},
			{Name: "-kernels", Set: kernelsList},
		},
		[]cli.Flag{{Name: "-op", Set: op != ""}, {Name: "-faults", Set: faultSpec != ""}},
	)
}

func run(servers int, strips int64, r, halo int, stripSize int64, op string, width int, size int64, faultSpec string) error {
	if servers <= 0 || strips <= 0 {
		return fmt.Errorf("servers and strips must be positive")
	}
	layouts := []layout.Layout{
		layout.NewRoundRobin(servers),
		layout.NewGrouped(servers, r),
		layout.NewGroupedReplicated(servers, r, halo),
	}
	for _, lay := range layouts {
		fmt.Printf("%s  (capacity overhead %.2f)\n", lay.Name(), layout.OverheadRatio(lay))
		for s := int64(0); s < strips; s++ {
			reps := lay.Replicas(s)
			if len(reps) == 0 {
				fmt.Printf("  strip %3d → server %d\n", s, lay.Primary(s))
			} else {
				fmt.Printf("  strip %3d → server %d  (replicas %v)\n", s, lay.Primary(s), reps)
			}
		}
		fmt.Println()
	}

	var down func(srv int) bool
	if faultSpec != "" {
		plan, err := fault.ParsePlan(faultSpec)
		if err != nil {
			return err
		}
		if err := plan.Validate(servers); err != nil {
			return err
		}
		fmt.Printf("fault plan: %s\n", plan.String())
		// End-state liveness: a crash the plan never undoes leaves the
		// server down for good.
		downSet := make(map[int]bool)
		for _, ev := range plan.Sorted() {
			switch ev.Kind {
			case fault.Crash:
				downSet[ev.Server] = true
			case fault.Restart:
				delete(downSet, ev.Server)
			}
		}
		down = func(srv int) bool { return downSet[srv] }
		if len(downSet) == 0 {
			fmt.Println("no server stays down; every strip keeps its primary")
		} else {
			for _, lay := range layouts {
				var lost []int64
				for s := int64(0); s < strips; s++ {
					if _, ok := layout.FirstLiveHolder(lay, s, func(srv int) bool { return !downSet[srv] }); !ok {
						lost = append(lost, s)
					}
				}
				if len(lost) == 0 {
					fmt.Printf("%-40s all %d strips still have a live copy\n", lay.Name(), strips)
				} else {
					fmt.Printf("%-40s %d/%d strips with NO live copy: %v\n", lay.Name(), len(lost), strips, lost)
				}
			}
		}
		fmt.Println()
	}

	if op == "" {
		return nil
	}
	if size <= 0 {
		return fmt.Errorf("-op requires -size")
	}
	k, ok := kernels.Default().Lookup(op)
	if !ok {
		return fmt.Errorf("unknown operator %q (known: %v)", op, kernels.Default().Names())
	}
	pat := kernels.Pattern(k)
	fmt.Printf("operator %s, dependence record:\n%s\n", op, pat.String())

	params := predict.Params{
		ElemSize: grid.ElemSize, StripSize: stripSize, FileSize: size,
		Width: width, OutputFactor: 1,
	}
	for _, lay := range layouts {
		var d predict.Decision
		var err error
		if down != nil {
			d, err = predict.DecideDegraded(pat, params, lay, down)
		} else {
			d, err = predict.Decide(pat, params, lay)
		}
		if err != nil {
			return err
		}
		extra := ""
		if d.Analysis.UnservableStrips > 0 {
			extra = fmt.Sprintf("  unservable strips=%d", d.Analysis.UnservableStrips)
		}
		fmt.Printf("%-40s offload=%v  strip fetches=%d (%d bytes)%s  %s\n",
			lay.Name(), d.Offload, d.Analysis.StripFetches, d.Analysis.StripFetchBytes, extra, d.Reason)
	}
	rec, ok, err := predict.RecommendLayout(pat, params, servers, 0.5)
	if err != nil {
		return err
	}
	if ok {
		fmt.Printf("recommended: %s (overhead %.2f)\n", rec.Name(), layout.OverheadRatio(rec))
	} else {
		fmt.Println("recommended: keep round-robin (pattern has no dependence)")
	}
	return nil
}
