package main

import (
	"fmt"
	"io"

	"github.com/hpcio/das/internal/cluster"
	"github.com/hpcio/das/internal/core"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/restripe"
	"github.com/hpcio/das/internal/sim"
	"github.com/hpcio/das/internal/workload"
)

// restripeReport runs a short offloaded workload (flow-routing over a
// small synthetic terrain, round-robin placement) with the online
// restriping subsystem enabled, drains the background migration it
// triggers, and prints the migration's progress, throttle behaviour, and
// the per-round dependent-traffic trajectory.
func restripeReport(w io.Writer, servers int, rounds int) error {
	if servers <= 0 {
		return fmt.Errorf("servers must be positive")
	}
	if rounds < 2 {
		rounds = 2
	}
	cfg := cluster.Default()
	cfg.ComputeNodes = servers
	cfg.StorageNodes = servers

	sys, err := core.NewSystem(cfg)
	if err != nil {
		return err
	}
	defer sys.Close()
	if err := sys.EnableRestripe(restripe.Config{}); err != nil {
		return err
	}

	const width, height = 512, 256
	g := workload.Terrain(width, height, 1)
	lay := layout.NewRoundRobin(servers)
	if _, err := sys.IngestGrid("demo", g, lay, 64*1024); err != nil {
		return err
	}

	mcfg := sys.Restripe.Config()
	fmt.Fprintf(w, "online restripe demo: flow-routing on %dx%d terrain, %d servers, %d rounds\n",
		width, height, servers, rounds)
	fmt.Fprintf(w, "trigger threshold %s observed, throttle %s in flight per server, %d moves per tick\n\n",
		metrics.FormatBytes(mcfg.MinObservedBytes), metrics.FormatBytes(mcfg.MaxInFlightBytes), mcfg.MovesPerTick)

	for round := 0; round < rounds; round++ {
		out := fmt.Sprintf("demo.out.%d", round)
		rep, err := sys.Execute(core.Request{
			Op: "flow-routing", Input: "demo", Output: out, Scheme: core.NAS,
		})
		if err != nil {
			return fmt.Errorf("restripe demo round %d: %w", round, err)
		}
		fmt.Fprintf(w, "round %d: %s dependent-halo bytes fetched\n",
			round+1, metrics.FormatBytes(rep.Stats.RemoteBytes))
		if round == 0 {
			converged, dt, err := sys.DrainRestripe(60 * sim.Second)
			if err != nil {
				return err
			}
			if !converged {
				return fmt.Errorf("restripe demo: migration did not converge")
			}
			fmt.Fprintf(w, "  background migration converged in %v simulated\n", dt)
		}
	}

	fmt.Fprintln(w, "\nmigrations:")
	for _, st := range sys.Restripe.Status() {
		fmt.Fprintf(w, "  %s\n", st.String())
	}
	fmt.Fprintf(w, "\ncounters: %s\n", sys.Clu.RestripeStats.String())
	fmt.Fprintln(w, "events:")
	for _, ev := range sys.Restripe.Events() {
		fmt.Fprintf(w, "  %s\n", ev.String())
	}
	return nil
}
