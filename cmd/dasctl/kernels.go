package main

import (
	"fmt"
	"io"
	"strings"

	"github.com/hpcio/das/internal/features"
	"github.com/hpcio/das/internal/kernels"
)

// kernelsReport prints every registered operator — kernels, combiners,
// and reducers — with the metadata a client needs to author DAG specs:
// the symbolic dependence offsets (in units of the raster width w), the
// relative per-element compute weight, and reducer partial lengths.
func kernelsReport(w io.Writer) error {
	reg := kernels.Default()
	combs := kernels.DefaultCombiners()
	reds := kernels.DefaultReducers()

	infos := reg.List()
	infos = append(infos, combs.List()...)
	infos = append(infos, reds.List()...)
	if len(infos) == 0 {
		return fmt.Errorf("no operators registered")
	}

	fmt.Fprintf(w, "registered operators (%d kernels, %d combiners, %d reducers)\n",
		len(reg.List()), len(combs.List()), len(reds.List()))
	fmt.Fprintf(w, "dependence offsets are element distances with imgWidth = raster width\n\n")
	fmt.Fprintf(w, "%-20s %-8s %-11s %-8s %s\n", "name", "kind", "weight", "partial", "dependence offsets / description")
	for _, info := range infos {
		detail := info.Description
		if len(info.Offsets) > 0 {
			detail = fmt.Sprintf("{%s}  %s", offsetsString(info.Offsets), info.Description)
		}
		partial := "-"
		if info.PartialLen > 0 {
			partial = fmt.Sprintf("%d", info.PartialLen)
		}
		fmt.Fprintf(w, "%-20s %-8s %-11s %-8s %s\n",
			info.Name, info.Kind, fmt.Sprintf("%.2f f/el", info.Weight), partial, detail)
	}
	return nil
}

// offsetsString renders a dependence pattern compactly: symmetric 3×3
// windows print all nine offsets on one line in pattern order.
func offsetsString(offs []features.Offset) string {
	parts := make([]string, len(offs))
	for i, o := range offs {
		parts[i] = o.String()
	}
	return strings.Join(parts, ", ")
}
