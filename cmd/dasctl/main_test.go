package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestCheckExclusiveRejectsCacheWithOtherReports(t *testing.T) {
	cases := []struct {
		op, faults string
		cache      bool
		wantErr    string
	}{
		{"", "", false, ""},
		{"flow-routing", "", false, ""},
		{"flow-routing", "crash@10ms:s1", false, ""}, // -op and -faults compose
		{"", "", true, ""},
		{"flow-routing", "", true, "-op"},
		{"", "crash@10ms:s1", true, "-faults"},
		{"flow-routing", "crash@10ms:s1", true, "-op or -faults"},
	}
	for _, c := range cases {
		err := checkExclusive(c.op, c.faults, c.cache)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("checkExclusive(%q, %q, %v) = %v, want nil", c.op, c.faults, c.cache, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("checkExclusive(%q, %q, %v) accepted, want error naming %s", c.op, c.faults, c.cache, c.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("checkExclusive(%q, %q, %v) = %q, want mention of %s", c.op, c.faults, c.cache, err, c.wantErr)
		}
	}
}

func TestCacheReportRunsAndPrintsStats(t *testing.T) {
	var out bytes.Buffer
	if err := cacheReport(&out, 4, "arc", 2); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"policy arc", "server 0:", "server 3:", "cluster:", "hits="} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
}

func TestCacheReportRejectsBadInputs(t *testing.T) {
	var out bytes.Buffer
	if err := cacheReport(&out, 0, "lru", 1); err == nil {
		t.Error("zero servers accepted")
	}
	if err := cacheReport(&out, 4, "fifo", 1); err == nil {
		t.Error("unknown policy accepted")
	}
}
