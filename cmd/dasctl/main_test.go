package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"github.com/hpcio/das/internal/kernels"
)

func TestCheckExclusiveRejectsDemoWithOtherReports(t *testing.T) {
	cases := []struct {
		op, faults                                 string
		cache, restripe, control, tenants, kernels bool
		wantErr                                    string
	}{
		{"", "", false, false, false, false, false, ""},
		{"flow-routing", "", false, false, false, false, false, ""},
		{"flow-routing", "crash@10ms:s1", false, false, false, false, false, ""}, // -op and -faults compose
		{"", "", true, false, false, false, false, ""},
		{"flow-routing", "", true, false, false, false, false, "-op"},
		{"", "crash@10ms:s1", true, false, false, false, false, "-faults"},
		{"flow-routing", "crash@10ms:s1", true, false, false, false, false, "-op or -faults"},
		{"", "", false, true, false, false, false, ""},
		{"flow-routing", "", false, true, false, false, false, "-op"},
		{"", "crash@10ms:s1", false, true, false, false, false, "-faults"},
		{"flow-routing", "crash@10ms:s1", false, true, false, false, false, "-op or -faults"},
		{"", "", true, true, false, false, false, "-cache"},
		{"flow-routing", "crash@10ms:s1", true, true, false, false, false, "-cache"},
		{"", "", false, false, true, false, false, ""},
		{"flow-routing", "", false, false, true, false, false, "-op"},
		{"", "crash@10ms:s1", false, false, true, false, false, "-faults"},
		{"", "", true, false, true, false, false, "-cache"},
		{"", "", false, true, true, false, false, "-restripe"},
		{"", "", false, false, false, true, false, ""},
		{"flow-routing", "", false, false, false, true, false, "-op"},
		{"", "crash@10ms:s1", false, false, false, true, false, "-faults"},
		{"", "", true, false, false, true, false, "-cache"},
		{"", "", false, false, true, true, false, "-control"},
		{"", "", false, false, false, false, true, ""},
		{"flow-routing", "", false, false, false, false, true, "-op"},
		{"", "crash@10ms:s1", false, false, false, false, true, "-faults"},
		{"", "", false, false, false, true, true, "-tenants"},
		{"", "", true, false, false, false, true, "-cache"},
	}
	for _, c := range cases {
		err := checkExclusive(c.op, c.faults, c.cache, c.restripe, c.control, c.tenants, c.kernels)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("checkExclusive(%q, %q, %v, %v, %v, %v, %v) = %v, want nil", c.op, c.faults, c.cache, c.restripe, c.control, c.tenants, c.kernels, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("checkExclusive(%q, %q, %v, %v, %v, %v, %v) accepted, want error naming %s", c.op, c.faults, c.cache, c.restripe, c.control, c.tenants, c.kernels, c.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("checkExclusive(%q, %q, %v, %v, %v, %v, %v) = %q, want mention of %s", c.op, c.faults, c.cache, c.restripe, c.control, c.tenants, c.kernels, err, c.wantErr)
		}
	}
}

// TestKernelsReportListsEveryOperator checks the registry listing names
// every default kernel, combiner, and reducer with its dependence
// offsets, weight, and (for reducers) partial length.
func TestKernelsReportListsEveryOperator(t *testing.T) {
	var out bytes.Buffer
	if err := kernelsReport(&out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	reg := kernels.Default()
	for _, name := range reg.Names() {
		if !strings.Contains(got, name) {
			t.Errorf("listing missing kernel %q:\n%s", name, got)
		}
	}
	for _, info := range kernels.DefaultCombiners().List() {
		if !strings.Contains(got, info.Name) {
			t.Errorf("listing missing combiner %q:\n%s", info.Name, got)
		}
	}
	for _, info := range kernels.DefaultReducers().List() {
		if !strings.Contains(got, info.Name) {
			t.Errorf("listing missing reducer %q:\n%s", info.Name, got)
		}
		if info.PartialLen > 0 && !strings.Contains(got, fmt.Sprintf("%d", info.PartialLen)) {
			t.Errorf("listing missing partial length %d for %q", info.PartialLen, info.Name)
		}
	}
	for _, want := range []string{"kernel", "combine", "reduce", "f/el", "dependence offsets"} {
		if !strings.Contains(got, want) {
			t.Errorf("listing missing %q:\n%s", want, got)
		}
	}
	// A 3×3 stencil's reach is one row each way: the symbolic offsets
	// ±imgWidth±1 must appear for the stencil kernels.
	for _, want := range []string{"imgWidth+1", "-imgWidth-1"} {
		if !strings.Contains(got, want) {
			t.Errorf("listing missing symbolic offset %q:\n%s", want, got)
		}
	}
}

func TestRestripeReportRunsAndPrintsMigration(t *testing.T) {
	var out bytes.Buffer
	if err := restripeReport(&out, 4, 2); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"background migration converged",
		"migrations:",
		"round-robin", "grouped-replicated", "done",
		"counters:", "strips-moved=",
		"events:", "plan", "complete",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
	// Round 1 pays dependent fetches; round 2, after the drain, must not.
	if !strings.Contains(got, "round 2: 0B dependent-halo bytes fetched") {
		t.Errorf("post-migration round still fetched dependent bytes:\n%s", got)
	}
}

func TestRestripeReportRejectsBadInputs(t *testing.T) {
	var out bytes.Buffer
	if err := restripeReport(&out, 0, 2); err == nil {
		t.Error("zero servers accepted")
	}
}

func TestCacheReportRunsAndPrintsStats(t *testing.T) {
	var out bytes.Buffer
	if err := cacheReport(&out, 4, "arc", 2); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"policy arc", "server 0:", "server 3:", "cluster:", "hits="} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
}

func TestCacheReportRejectsBadInputs(t *testing.T) {
	var out bytes.Buffer
	if err := cacheReport(&out, 0, "lru", 1); err == nil {
		t.Error("zero servers accepted")
	}
	if err := cacheReport(&out, 4, "fifo", 1); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestControlReportRunsAndPrintsSketches(t *testing.T) {
	var out bytes.Buffer
	if err := controlReport(&out, 4, 3); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"unified p99 controller demo",
		"thresholds: high 3.000ms / low 1.000ms at p99",
		"fetch samples",
		"cluster fetch p99:",
		"samples:",
		"migration-excluded",
		"control:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("control report missing %q:\n%s", want, got)
		}
	}
}

func TestControlReportRejectsBadGeometry(t *testing.T) {
	var out bytes.Buffer
	if err := controlReport(&out, 0, 1); err == nil {
		t.Error("accepted zero servers")
	}
}

func TestTenantsReportRunsAndPrintsFairness(t *testing.T) {
	var out bytes.Buffer
	if err := tenantsReport(&out, 4, 32); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"multi-tenant demo: 32 streams",
		"fairness:",
		"spread",
		"per-server queue depth",
		"server  0:",
		"hottest files",
		"tfile-",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("tenants report missing %q:\n%s", want, got)
		}
	}
}

func TestTenantsReportRejectsBadGeometry(t *testing.T) {
	var out bytes.Buffer
	if err := tenantsReport(&out, 0, 8); err == nil {
		t.Error("accepted zero servers")
	}
}
