package main

import (
	"fmt"
	"io"

	"github.com/hpcio/das/internal/cache"
	"github.com/hpcio/das/internal/cluster"
	"github.com/hpcio/das/internal/core"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/workload"
)

// cacheReport runs a short offloaded workload (flow-routing over a small
// synthetic terrain, round-robin placement, repeated so the cache warms)
// with the halo-strip cache enabled and prints each server's cache stats,
// the cluster-wide counters, and the tuning actions the manager took.
func cacheReport(w io.Writer, servers int, policy string, rounds int) error {
	if servers <= 0 {
		return fmt.Errorf("servers must be positive")
	}
	if rounds < 1 {
		rounds = 1
	}
	cfg := cluster.Default()
	cfg.ComputeNodes = servers
	cfg.StorageNodes = servers

	sys, err := core.NewSystem(cfg)
	if err != nil {
		return err
	}
	defer sys.Close()
	if err := sys.EnableCache(cache.Config{Policy: policy}); err != nil {
		return err
	}

	const width, height = 512, 256
	g := workload.Terrain(width, height, 1)
	lay := layout.NewRoundRobin(servers)
	if _, err := sys.IngestGrid("demo", g, lay, 64*1024); err != nil {
		return err
	}
	for round := 0; round < rounds; round++ {
		out := fmt.Sprintf("demo.out.%d", round)
		if _, err := sys.Execute(core.Request{
			Op: "flow-routing", Input: "demo", Output: out, Scheme: core.NAS,
		}); err != nil {
			return fmt.Errorf("cache demo round %d: %w", round, err)
		}
	}

	mgrCfg := sys.Cache.Config()
	fmt.Fprintf(w, "halo-strip cache demo: flow-routing on %dx%d terrain, %d servers, %d rounds\n",
		width, height, servers, rounds)
	fmt.Fprintf(w, "budget %s per server, policy %s\n\n",
		metrics.FormatBytes(mgrCfg.BudgetBytes), mgrCfg.Policy)
	fmt.Fprintf(w, "input: %s in %d strips\n", metrics.FormatBytes(g.SizeBytes()),
		(g.SizeBytes()+64*1024-1)/(64*1024))

	for _, s := range sys.Cache.Stats() {
		fmt.Fprintf(w, "%s\n", s.String())
	}
	fmt.Fprintf(w, "\ncluster: %s\n", sys.Clu.CacheStats.String())
	fmt.Fprintf(w, "tuning: %d ticks, %d actions\n", sys.Cache.Ticks(), len(sys.Cache.Actions()))
	for _, a := range sys.Cache.Actions() {
		fmt.Fprintf(w, "  %-8v server %d %s %s strip %d\n", a.At, a.Server, a.Kind, a.File, a.Strip)
	}
	return nil
}
