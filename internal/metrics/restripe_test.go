package metrics

import (
	"strings"
	"testing"
)

func TestRestripeCounters(t *testing.T) {
	r := NewRestripe()
	if got := r.String(); got != "(no restripe activity)" {
		t.Errorf("empty String = %q", got)
	}

	r.AddPlanned()
	r.AddStripMoved(64 * 1024)
	r.AddStripMoved(0) // zero-copy flip
	r.AddThrottleStall()
	r.AddThrottleStall()
	r.AddResume()
	r.AddRecopy()
	r.AddCompleted()

	checks := []struct {
		name string
		got  int64
		want int64
	}{
		{"Planned", r.Planned(), 1},
		{"Completed", r.Completed(), 1},
		{"StripsMoved", r.StripsMoved(), 2},
		{"BytesCopied", r.BytesCopied(), 64 * 1024},
		{"ZeroCopyFlips", r.ZeroCopyFlips(), 1},
		{"ThrottleStalls", r.ThrottleStalls(), 2},
		{"Resumes", r.Resumes(), 1},
		{"Recopies", r.Recopies(), 1},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}

	s := r.String()
	for _, want := range []string{"planned=1", "strips-moved=2", "bytes-copied=65536", "throttle-stalls=2", "resumes=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}

	r.Reset()
	if r.StripsMoved() != 0 || r.BytesCopied() != 0 || r.Planned() != 0 {
		t.Error("Reset left counters non-zero")
	}
}
