package metrics

import (
	"math/bits"

	"github.com/hpcio/das/internal/sim"
)

// LatencySketch is a fixed-size, merge-able quantile sketch over DES
// latencies, the histogram behind the unified p99 control plane. It is an
// HDR-style log-linear histogram: values below 2^sketchSubBits land in
// exact unit buckets, larger values in one of 2^sketchSubBits linear
// sub-buckets per power of two, bounding the relative quantile error at
// 1/2^sketchSubBits (~3%).
//
// Determinism contract: the sketch holds only int64 counts indexed by
// integer bit math — no floats, no maps, no wall clock, no randomness —
// so two identical runs produce byte-identical sketches, and a quantile
// read is a pure function of the observations. Reported quantiles are
// bucket upper bounds, so Quantile never under-reports a threshold
// crossing. Merge is commutative and associative; Delta(prev) subtracts
// an earlier snapshot of the same sketch, giving exact per-window
// histograms from cumulative ones.
type LatencySketch struct {
	counts [sketchBuckets]int64
	total  int64
}

const (
	// sketchSubBits fixes the resolution: 2^sketchSubBits linear
	// sub-buckets per power of two.
	sketchSubBits = 5
	sketchSubs    = 1 << sketchSubBits
	// sketchBuckets covers the full non-negative int64 range: the exact
	// region [0, sketchSubs) plus one block of sketchSubs sub-buckets for
	// each major bit position from sketchSubBits to 62.
	sketchBuckets = (64 - sketchSubBits) * sketchSubs
)

// NewLatencySketch returns an empty sketch.
func NewLatencySketch() *LatencySketch { return new(LatencySketch) }

// sketchIndex maps a non-negative value to its bucket.
func sketchIndex(v int64) int {
	u := uint64(v)
	if u < sketchSubs {
		return int(u)
	}
	major := bits.Len64(u) - 1 // 2^major <= u < 2^(major+1)
	shift := uint(major - sketchSubBits)
	sub := int((u >> shift) & (sketchSubs - 1))
	return (major-sketchSubBits)*sketchSubs + sketchSubs + sub
}

// sketchUpper returns the largest value a bucket admits — the value
// Quantile reports for it.
func sketchUpper(i int) sim.Time {
	if i < sketchSubs {
		return sim.Time(i)
	}
	block := (i - sketchSubs) / sketchSubs
	sub := (i - sketchSubs) % sketchSubs
	major := block + sketchSubBits
	shift := uint(major - sketchSubBits)
	lo := uint64(1)<<uint(major) + uint64(sub)<<shift
	return sim.Time(lo + (uint64(1)<<shift - 1))
}

// Observe records one latency sample. Negative durations (impossible on
// the DES clock, but cheap to be safe about) clamp to zero.
func (s *LatencySketch) Observe(d sim.Time) {
	if d < 0 {
		d = 0
	}
	s.counts[sketchIndex(int64(d))]++
	s.total++
}

// Count returns how many samples the sketch holds.
func (s *LatencySketch) Count() int64 { return s.total }

// ObserveValue records a dimensionless non-negative sample — a queue
// depth, a byte count. The log-linear buckets are unit-agnostic; only
// the accessors name nanoseconds.
func (s *LatencySketch) ObserveValue(v int64) { s.Observe(sim.Time(v)) }

// QuantileValue is Quantile for dimensionless samples recorded with
// ObserveValue.
func (s *LatencySketch) QuantileValue(p int) int64 { return int64(s.Quantile(p)) }

// MaxValue is Max for dimensionless samples recorded with ObserveValue.
func (s *LatencySketch) MaxValue() int64 { return int64(s.Max()) }

// Quantile returns an upper bound for the p-th percentile (p in [0,100])
// of the observed samples: the upper edge of the bucket containing the
// rank-⌈total·p/100⌉ sample. An empty sketch reports 0. The rank is
// computed in integer arithmetic — no float enters the comparison, so a
// threshold check against the result is exact and reproducible.
func (s *LatencySketch) Quantile(p int) sim.Time {
	if s.total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := (s.total*int64(p) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range s.counts {
		seen += c
		if seen >= rank {
			return sketchUpper(i)
		}
	}
	return sketchUpper(sketchBuckets - 1)
}

// Max returns the upper bound of the highest occupied bucket, 0 when empty.
func (s *LatencySketch) Max() sim.Time {
	for i := sketchBuckets - 1; i >= 0; i-- {
		if s.counts[i] > 0 {
			return sketchUpper(i)
		}
	}
	return 0
}

// Merge adds another sketch's counts into s.
func (s *LatencySketch) Merge(o *LatencySketch) {
	if o == nil {
		return
	}
	for i, c := range o.counts {
		s.counts[i] += c
	}
	s.total += o.total
}

// Clone returns an independent copy.
func (s *LatencySketch) Clone() *LatencySketch {
	c := *s
	return &c
}

// Delta returns a new sketch holding the samples observed since prev, an
// earlier snapshot of the same sketch. Buckets where prev somehow exceeds
// s clamp to zero instead of going negative.
func (s *LatencySketch) Delta(prev *LatencySketch) *LatencySketch {
	out := new(LatencySketch)
	if prev == nil {
		*out = *s
		return out
	}
	for i := range s.counts {
		d := s.counts[i] - prev.counts[i]
		if d < 0 {
			d = 0
		}
		out.counts[i] = d
		out.total += d
	}
	return out
}

// Reset clears the sketch.
func (s *LatencySketch) Reset() {
	*s = LatencySketch{}
}

// Equal reports whether two sketches hold identical counts — the
// determinism tests' byte-identity check.
func (s *LatencySketch) Equal(o *LatencySketch) bool {
	if o == nil {
		return s.total == 0
	}
	return s.counts == o.counts
}
