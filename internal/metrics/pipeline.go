package metrics

import (
	"fmt"
	"strings"
	"sync"
)

// Pipeline counts server-side operator-DAG pushdown activity across a
// run: per-stage dispatch rounds, stages fused away (no exchange round of
// their own), intermediate halo-band exchanges between servers, input
// halo fetched by the fused prefix, final writebacks, crash-triggered
// catch-up recomputes, and the achieved-vs-lower-bound halo accounting.
// Like Traffic, the simulator core is single-threaded but collectors may
// be read from test goroutines, so access is guarded.
type Pipeline struct {
	mu            sync.Mutex
	runs          int64
	stages        int64
	fusedStages   int64
	rounds        int64
	exchangeOps   int64
	exchangeBytes int64
	fetchBytes    int64
	writebacks    int64
	reduceMerges  int64
	catchUps      int64
	redispatches  int64
	achievedBytes int64
	boundBytes    int64
}

// NewPipeline returns an empty collector.
func NewPipeline() *Pipeline { return &Pipeline{} }

// AddRun records one completed DAG execution: its stage count, how many
// stages fused, and the achieved halo bytes against the composed-offset
// lower bound.
func (p *Pipeline) AddRun(stages, fused int, achieved, bound int64) {
	p.mu.Lock()
	p.runs++
	p.stages += int64(stages)
	p.fusedStages += int64(fused)
	p.achievedBytes += achieved
	p.boundBytes += bound
	p.mu.Unlock()
}

// AddRound records one barrier-stepped dispatch round.
func (p *Pipeline) AddRound() { p.add(&p.rounds) }

// AddExchange records one intermediate halo-band pull and its bytes.
func (p *Pipeline) AddExchange(bytes int64) {
	p.mu.Lock()
	p.exchangeOps++
	p.exchangeBytes += bytes
	p.mu.Unlock()
}

// AddFetch records input halo bytes the fused prefix fetched remotely.
func (p *Pipeline) AddFetch(bytes int64) {
	p.mu.Lock()
	p.fetchBytes += bytes
	p.mu.Unlock()
}

// AddWriteback records one server committing final-output strips.
func (p *Pipeline) AddWriteback() { p.add(&p.writebacks) }

// AddReduceMerge records a terminal reduce folding its partials.
func (p *Pipeline) AddReduceMerge() { p.add(&p.reduceMerges) }

// AddCatchUp records a reassigned strip run recomputed from the durable
// input after a crash lost its in-memory intermediates.
func (p *Pipeline) AddCatchUp() { p.add(&p.catchUps) }

// AddRedispatch records a dispatch round retried after a crash.
func (p *Pipeline) AddRedispatch() { p.add(&p.redispatches) }

func (p *Pipeline) add(field *int64) {
	p.mu.Lock()
	*field++
	p.mu.Unlock()
}

// Runs returns the number of completed DAG executions.
func (p *Pipeline) Runs() int64 { return p.get(&p.runs) }

// Stages returns the total stages dispatched across runs.
func (p *Pipeline) Stages() int64 { return p.get(&p.stages) }

// FusedStages returns stages that needed no exchange round of their own.
func (p *Pipeline) FusedStages() int64 { return p.get(&p.fusedStages) }

// Rounds returns barrier-stepped dispatch rounds.
func (p *Pipeline) Rounds() int64 { return p.get(&p.rounds) }

// ExchangeOps returns intermediate band pulls.
func (p *Pipeline) ExchangeOps() int64 { return p.get(&p.exchangeOps) }

// ExchangeBytes returns intermediate band bytes moved server-to-server.
func (p *Pipeline) ExchangeBytes() int64 { return p.get(&p.exchangeBytes) }

// FetchBytes returns remote input-halo bytes the fused prefix fetched.
func (p *Pipeline) FetchBytes() int64 { return p.get(&p.fetchBytes) }

// Writebacks returns final-output commit operations.
func (p *Pipeline) Writebacks() int64 { return p.get(&p.writebacks) }

// ReduceMerges returns terminal reduce folds.
func (p *Pipeline) ReduceMerges() int64 { return p.get(&p.reduceMerges) }

// CatchUps returns crash-triggered lineage recomputes.
func (p *Pipeline) CatchUps() int64 { return p.get(&p.catchUps) }

// Redispatches returns dispatch rounds retried after crashes.
func (p *Pipeline) Redispatches() int64 { return p.get(&p.redispatches) }

// AchievedBytes returns the halo bytes runs actually moved.
func (p *Pipeline) AchievedBytes() int64 { return p.get(&p.achievedBytes) }

// BoundBytes returns the summed composed-offset lower bounds.
func (p *Pipeline) BoundBytes() int64 { return p.get(&p.boundBytes) }

func (p *Pipeline) get(field *int64) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return *field
}

// LowerBoundRatio returns achieved/bound halo bytes, or 0 before any
// bounded run. Unreplicated placements sit at or above 1; DAS layouts can
// dip below it because write-time replication prepaid part of the halo.
func (p *Pipeline) LowerBoundRatio() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.boundBytes == 0 {
		return 0
	}
	return float64(p.achievedBytes) / float64(p.boundBytes)
}

// Reset zeroes every counter. (Overwriting the whole struct would also
// zero the held mutex and panic on unlock.)
func (p *Pipeline) Reset() {
	p.mu.Lock()
	p.runs, p.stages, p.fusedStages, p.rounds = 0, 0, 0, 0
	p.exchangeOps, p.exchangeBytes, p.fetchBytes = 0, 0, 0
	p.writebacks, p.reduceMerges, p.catchUps, p.redispatches = 0, 0, 0, 0
	p.achievedBytes, p.boundBytes = 0, 0
	p.mu.Unlock()
}

// String renders the non-zero counters.
func (p *Pipeline) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var parts []string
	for _, f := range []struct {
		label string
		n     int64
	}{
		{"runs", p.runs},
		{"stages", p.stages},
		{"fused", p.fusedStages},
		{"rounds", p.rounds},
		{"exchanges", p.exchangeOps},
		{"exchange-bytes", p.exchangeBytes},
		{"fetch-bytes", p.fetchBytes},
		{"writebacks", p.writebacks},
		{"reduce-merges", p.reduceMerges},
		{"catch-ups", p.catchUps},
		{"redispatches", p.redispatches},
		{"achieved-bytes", p.achievedBytes},
		{"bound-bytes", p.boundBytes},
	} {
		if f.n != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", f.label, f.n))
		}
	}
	if len(parts) == 0 {
		return "(no pipeline activity)"
	}
	return strings.Join(parts, " ")
}
