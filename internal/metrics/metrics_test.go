package metrics

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAddAndBytes(t *testing.T) {
	tr := NewTraffic()
	tr.Add(ClientToServer, 100)
	tr.Add(ClientToServer, 50)
	tr.Add(ServerToServer, 7)
	if got := tr.Bytes(ClientToServer); got != 150 {
		t.Errorf("ClientToServer = %d, want 150", got)
	}
	if got := tr.Bytes(ServerToServer); got != 7 {
		t.Errorf("ServerToServer = %d, want 7", got)
	}
	if got := tr.Bytes(DiskRead); got != 0 {
		t.Errorf("DiskRead = %d, want 0", got)
	}
	if got := tr.Ops(ClientToServer); got != 2 {
		t.Errorf("Ops = %d, want 2", got)
	}
}

func TestNetworkBytesSumsNetworkClassesOnly(t *testing.T) {
	tr := NewTraffic()
	tr.Add(ClientToServer, 1)
	tr.Add(ServerToClient, 2)
	tr.Add(ServerToServer, 4)
	tr.Add(DiskRead, 100)
	tr.Add(DiskWrite, 100)
	if got := tr.NetworkBytes(); got != 7 {
		t.Errorf("NetworkBytes = %d, want 7", got)
	}
}

func TestNegativeAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative add")
		}
	}()
	NewTraffic().Add(DiskRead, -1)
}

func TestReset(t *testing.T) {
	tr := NewTraffic()
	tr.Add(DiskWrite, 10)
	tr.Reset()
	if tr.Bytes(DiskWrite) != 0 || tr.Ops(DiskWrite) != 0 {
		t.Error("Reset did not clear counters")
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	tr := NewTraffic()
	tr.Add(DiskRead, 5)
	snap := tr.Snapshot()
	snap[DiskRead] = 999
	if tr.Bytes(DiskRead) != 5 {
		t.Error("mutating snapshot affected collector")
	}
}

func TestStringMentionsNonZeroClasses(t *testing.T) {
	tr := NewTraffic()
	if got := tr.String(); got != "(no traffic)" {
		t.Errorf("empty String = %q", got)
	}
	tr.Add(ServerToServer, 1536)
	s := tr.String()
	if !strings.Contains(s, "server↔server") || !strings.Contains(s, "1.5KiB") {
		t.Errorf("String = %q", s)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{1536, "1.5KiB"},
		{3 << 20, "3.0MiB"},
		{5 << 30, "5.0GiB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.n); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestSortedClassesDescending(t *testing.T) {
	tr := NewTraffic()
	tr.Add(ClientToServer, 10)
	tr.Add(ServerToServer, 100)
	tr.Add(DiskRead, 50)
	got := tr.SortedClasses()
	want := []TrafficClass{ServerToServer, DiskRead, ClientToServer}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestClassesCoverAllNames(t *testing.T) {
	for _, c := range Classes() {
		if strings.HasPrefix(c.String(), "class(") {
			t.Errorf("class %d has no name", int(c))
		}
	}
}

// Property: total bytes equals the sum of per-class additions regardless
// of interleaving.
func TestAdditionConservationProperty(t *testing.T) {
	prop := func(adds []uint16) bool {
		tr := NewTraffic()
		var want int64
		for i, a := range adds {
			c := TrafficClass(i % int(numClasses))
			tr.Add(c, int64(a))
			want += int64(a)
		}
		var got int64
		for _, b := range tr.Snapshot() {
			got += b
		}
		return got == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
