package metrics

import (
	"fmt"
	"strings"
	"sync"
)

// Recovery counts fault-handling actions taken during a run: requests that
// timed out, retries issued, reads served from a replica because the
// primary was down, replica forwards skipped because the target was down,
// messages lost to injected faults, and offload dispatch rounds repeated
// after a server died mid-execution. Like Traffic, the simulator core is
// single-threaded but collectors may be read from test goroutines, so
// access is guarded.
type Recovery struct {
	mu              sync.Mutex
	timeouts        int64
	retries         int64
	failoverReads   int64
	skippedForwards int64
	droppedMessages int64
	execRetries     int64
}

// NewRecovery returns an empty collector.
func NewRecovery() *Recovery { return &Recovery{} }

// AddTimeout records a request that ran out its per-request timeout.
func (r *Recovery) AddTimeout() { r.add(&r.timeouts) }

// AddRetry records a request re-issued after a timeout or restart.
func (r *Recovery) AddRetry() { r.add(&r.retries) }

// AddFailoverRead records a strip read served by a replica holder because
// the primary was unavailable.
func (r *Recovery) AddFailoverRead() { r.add(&r.failoverReads) }

// AddSkippedForward records a replica forward skipped because its target
// server was down.
func (r *Recovery) AddSkippedForward() { r.add(&r.skippedForwards) }

// AddDroppedMessage records a message lost to an injected fault (crashed
// endpoint or random loss).
func (r *Recovery) AddDroppedMessage() { r.add(&r.droppedMessages) }

// AddExecRetry records an offload dispatch round repeated after a server
// failed mid-execution.
func (r *Recovery) AddExecRetry() { r.add(&r.execRetries) }

func (r *Recovery) add(field *int64) {
	r.mu.Lock()
	*field++
	r.mu.Unlock()
}

// Timeouts returns the number of per-request timeouts.
func (r *Recovery) Timeouts() int64 { return r.get(&r.timeouts) }

// Retries returns the number of re-issued requests.
func (r *Recovery) Retries() int64 { return r.get(&r.retries) }

// FailoverReads returns the number of reads served from a replica.
func (r *Recovery) FailoverReads() int64 { return r.get(&r.failoverReads) }

// SkippedForwards returns the number of replica forwards skipped.
func (r *Recovery) SkippedForwards() int64 { return r.get(&r.skippedForwards) }

// DroppedMessages returns the number of messages lost to faults.
func (r *Recovery) DroppedMessages() int64 { return r.get(&r.droppedMessages) }

// ExecRetries returns the number of repeated offload dispatch rounds.
func (r *Recovery) ExecRetries() int64 { return r.get(&r.execRetries) }

func (r *Recovery) get(field *int64) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return *field
}

// Reset zeroes every counter.
func (r *Recovery) Reset() {
	r.mu.Lock()
	*r = Recovery{}
	r.mu.Unlock()
}

// String renders the non-zero counters, e.g.
// "timeouts=2 retries=2 failover-reads=14".
func (r *Recovery) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var parts []string
	for _, c := range []struct {
		label string
		n     int64
	}{
		{"timeouts", r.timeouts},
		{"retries", r.retries},
		{"failover-reads", r.failoverReads},
		{"skipped-forwards", r.skippedForwards},
		{"dropped-messages", r.droppedMessages},
		{"exec-retries", r.execRetries},
	} {
		if c.n != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", c.label, c.n))
		}
	}
	if len(parts) == 0 {
		return "(no recovery actions)"
	}
	return strings.Join(parts, " ")
}

// FaultRecord is one fault event as it was applied to the cluster. AtNs is
// the simulated time in nanoseconds (metrics stays independent of the sim
// package's Time type).
type FaultRecord struct {
	AtNs   int64
	Kind   string
	Node   int // cluster node id, -1 when the fault is not node-scoped
	Detail string
}

// FaultLog records the fault events applied during a run, in order.
type FaultLog struct {
	mu   sync.Mutex
	recs []FaultRecord
}

// NewFaultLog returns an empty log.
func NewFaultLog() *FaultLog { return &FaultLog{} }

// Record appends one applied fault.
func (l *FaultLog) Record(rec FaultRecord) {
	l.mu.Lock()
	l.recs = append(l.recs, rec)
	l.mu.Unlock()
}

// Records returns a copy of the applied faults in application order.
func (l *FaultLog) Records() []FaultRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]FaultRecord, len(l.recs))
	copy(out, l.recs)
	return out
}

// Len returns the number of applied faults.
func (l *FaultLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// Reset clears the log.
func (l *FaultLog) Reset() {
	l.mu.Lock()
	l.recs = nil
	l.mu.Unlock()
}
