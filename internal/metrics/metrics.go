// Package metrics collects byte- and time-level accounting for a simulated
// DAS run. The counters deliberately distinguish the traffic classes the
// paper argues about: client↔server traffic (what Traditional Storage
// pays), server↔server traffic (what Normal Active Storage pays for
// dependent data), and disk traffic.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// TrafficClass labels a byte counter by which part of the system moved the
// bytes.
type TrafficClass int

const (
	// ClientToServer counts bytes written from compute nodes to storage
	// nodes (normal I/O writes, request payloads).
	ClientToServer TrafficClass = iota
	// ServerToClient counts bytes read from storage nodes to compute nodes
	// (normal I/O reads, active-storage results returned to clients).
	ServerToClient
	// ServerToServer counts bytes moved between storage nodes: dependent
	// strips under NAS, replica maintenance under DAS, reconfiguration.
	ServerToServer
	// DiskRead and DiskWrite count bytes through storage-node disks.
	DiskRead
	DiskWrite
	numClasses
)

var classNames = [...]string{
	ClientToServer: "client→server",
	ServerToClient: "server→client",
	ServerToServer: "server↔server",
	DiskRead:       "disk read",
	DiskWrite:      "disk write",
}

// String returns the human-readable class label.
func (c TrafficClass) String() string {
	if c < 0 || int(c) >= len(classNames) {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return classNames[c]
}

// Classes lists every traffic class in display order.
func Classes() []TrafficClass {
	out := make([]TrafficClass, numClasses)
	for i := range out {
		out[i] = TrafficClass(i)
	}
	return out
}

// Traffic accumulates bytes per class. The simulator core is
// single-threaded, but collectors may be read from test goroutines, so
// the counters are atomics — on the engine hot path that is one lock-free
// add per transfer where a mutex would cost a lock/unlock pair.
type Traffic struct {
	bytes [numClasses]atomic.Int64
	ops   [numClasses]atomic.Int64
}

// NewTraffic returns an empty collector.
func NewTraffic() *Traffic { return &Traffic{} }

// Add records n bytes of traffic in class c. Negative n panics: counters
// only grow.
func (t *Traffic) Add(c TrafficClass, n int64) {
	if n < 0 {
		panic(fmt.Sprintf("metrics: negative traffic %d for %v", n, c))
	}
	t.bytes[c].Add(n)
	t.ops[c].Add(1)
}

// Bytes returns the byte total for class c.
func (t *Traffic) Bytes(c TrafficClass) int64 {
	return t.bytes[c].Load()
}

// Ops returns the number of recorded operations for class c.
func (t *Traffic) Ops(c TrafficClass) int64 {
	return t.ops[c].Load()
}

// NetworkBytes returns the sum over the three network classes.
func (t *Traffic) NetworkBytes() int64 {
	return t.bytes[ClientToServer].Load() + t.bytes[ServerToClient].Load() + t.bytes[ServerToServer].Load()
}

// Reset zeroes every counter.
func (t *Traffic) Reset() {
	for c := range t.bytes {
		t.bytes[c].Store(0)
		t.ops[c].Store(0)
	}
}

// Snapshot returns a copy of all byte counters keyed by class.
func (t *Traffic) Snapshot() map[TrafficClass]int64 {
	out := make(map[TrafficClass]int64, numClasses)
	for c := TrafficClass(0); c < numClasses; c++ {
		out[c] = t.bytes[c].Load()
	}
	return out
}

// SnapshotsEqual reports whether two Snapshot results record identical
// byte counts for every class. Identity checks between engine
// constructions use it as the traffic leg of "byte-identical simulation".
func SnapshotsEqual(a, b map[TrafficClass]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for c, v := range a {
		if b[c] != v {
			return false
		}
	}
	return true
}

// String renders the non-zero counters, ordered by class, e.g.
// "client→server=24.0MiB server↔server=1.5MiB".
func (t *Traffic) String() string {
	snap := t.Snapshot()
	var parts []string
	for c := TrafficClass(0); c < numClasses; c++ {
		if snap[c] != 0 {
			parts = append(parts, fmt.Sprintf("%v=%s", c, FormatBytes(snap[c])))
		}
	}
	if len(parts) == 0 {
		return "(no traffic)"
	}
	return strings.Join(parts, " ")
}

// FormatBytes renders a byte count with a binary unit suffix.
func FormatBytes(n int64) string {
	const (
		kib = 1 << 10
		mib = 1 << 20
		gib = 1 << 30
	)
	switch {
	case n >= gib:
		return fmt.Sprintf("%.1fGiB", float64(n)/gib)
	case n >= mib:
		return fmt.Sprintf("%.1fMiB", float64(n)/mib)
	case n >= kib:
		return fmt.Sprintf("%.1fKiB", float64(n)/kib)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// SortedClasses returns the classes with non-zero byte counts, largest
// first — handy for reporting the dominant traffic class of a scheme.
func (t *Traffic) SortedClasses() []TrafficClass {
	snap := t.Snapshot()
	var classes []TrafficClass
	for c, b := range snap {
		if b > 0 {
			classes = append(classes, c)
		}
	}
	sort.Slice(classes, func(i, j int) bool {
		bi, bj := snap[classes[i]], snap[classes[j]]
		if bi != bj {
			return bi > bj
		}
		return classes[i] < classes[j]
	})
	return classes
}
