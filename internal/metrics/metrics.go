// Package metrics collects byte- and time-level accounting for a simulated
// DAS run. The counters deliberately distinguish the traffic classes the
// paper argues about: client↔server traffic (what Traditional Storage
// pays), server↔server traffic (what Normal Active Storage pays for
// dependent data), and disk traffic.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// TrafficClass labels a byte counter by which part of the system moved the
// bytes.
type TrafficClass int

const (
	// ClientToServer counts bytes written from compute nodes to storage
	// nodes (normal I/O writes, request payloads).
	ClientToServer TrafficClass = iota
	// ServerToClient counts bytes read from storage nodes to compute nodes
	// (normal I/O reads, active-storage results returned to clients).
	ServerToClient
	// ServerToServer counts bytes moved between storage nodes: dependent
	// strips under NAS, replica maintenance under DAS, reconfiguration.
	ServerToServer
	// DiskRead and DiskWrite count bytes through storage-node disks.
	DiskRead
	DiskWrite
	numClasses
)

var classNames = [...]string{
	ClientToServer: "client→server",
	ServerToClient: "server→client",
	ServerToServer: "server↔server",
	DiskRead:       "disk read",
	DiskWrite:      "disk write",
}

// String returns the human-readable class label.
func (c TrafficClass) String() string {
	if c < 0 || int(c) >= len(classNames) {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return classNames[c]
}

// Classes lists every traffic class in display order.
func Classes() []TrafficClass {
	out := make([]TrafficClass, numClasses)
	for i := range out {
		out[i] = TrafficClass(i)
	}
	return out
}

// Traffic accumulates bytes per class. The simulator core is
// single-threaded, but collectors may be read from test goroutines, so
// access is guarded.
type Traffic struct {
	mu    sync.Mutex
	bytes [numClasses]int64
	ops   [numClasses]int64
}

// NewTraffic returns an empty collector.
func NewTraffic() *Traffic { return &Traffic{} }

// Add records n bytes of traffic in class c. Negative n panics: counters
// only grow.
func (t *Traffic) Add(c TrafficClass, n int64) {
	if n < 0 {
		panic(fmt.Sprintf("metrics: negative traffic %d for %v", n, c))
	}
	t.mu.Lock()
	t.bytes[c] += n
	t.ops[c]++
	t.mu.Unlock()
}

// Bytes returns the byte total for class c.
func (t *Traffic) Bytes(c TrafficClass) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bytes[c]
}

// Ops returns the number of recorded operations for class c.
func (t *Traffic) Ops(c TrafficClass) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ops[c]
}

// NetworkBytes returns the sum over the three network classes.
func (t *Traffic) NetworkBytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bytes[ClientToServer] + t.bytes[ServerToClient] + t.bytes[ServerToServer]
}

// Reset zeroes every counter.
func (t *Traffic) Reset() {
	t.mu.Lock()
	t.bytes = [numClasses]int64{}
	t.ops = [numClasses]int64{}
	t.mu.Unlock()
}

// Snapshot returns a copy of all byte counters keyed by class.
func (t *Traffic) Snapshot() map[TrafficClass]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[TrafficClass]int64, numClasses)
	for c := TrafficClass(0); c < numClasses; c++ {
		out[c] = t.bytes[c]
	}
	return out
}

// String renders the non-zero counters, ordered by class, e.g.
// "client→server=24.0MiB server↔server=1.5MiB".
func (t *Traffic) String() string {
	snap := t.Snapshot()
	var parts []string
	for c := TrafficClass(0); c < numClasses; c++ {
		if snap[c] != 0 {
			parts = append(parts, fmt.Sprintf("%v=%s", c, FormatBytes(snap[c])))
		}
	}
	if len(parts) == 0 {
		return "(no traffic)"
	}
	return strings.Join(parts, " ")
}

// FormatBytes renders a byte count with a binary unit suffix.
func FormatBytes(n int64) string {
	const (
		kib = 1 << 10
		mib = 1 << 20
		gib = 1 << 30
	)
	switch {
	case n >= gib:
		return fmt.Sprintf("%.1fGiB", float64(n)/gib)
	case n >= mib:
		return fmt.Sprintf("%.1fMiB", float64(n)/mib)
	case n >= kib:
		return fmt.Sprintf("%.1fKiB", float64(n)/kib)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// SortedClasses returns the classes with non-zero byte counts, largest
// first — handy for reporting the dominant traffic class of a scheme.
func (t *Traffic) SortedClasses() []TrafficClass {
	snap := t.Snapshot()
	var classes []TrafficClass
	for c, b := range snap {
		if b > 0 {
			classes = append(classes, c)
		}
	}
	sort.Slice(classes, func(i, j int) bool {
		bi, bj := snap[classes[i]], snap[classes[j]]
		if bi != bj {
			return bi > bj
		}
		return classes[i] < classes[j]
	})
	return classes
}
