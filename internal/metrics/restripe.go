package metrics

import (
	"fmt"
	"strings"
	"sync"
)

// Restripe counts online-migration activity across a run: migrations
// planned and completed, strip moves committed (split into copies that
// shipped bytes and zero-copy flips where every target already held a
// replica), bytes copied between servers, throttle stalls (moves deferred
// because a server's in-flight byte budget was exhausted), resumes (moves
// that failed against a crashed server and later committed from the
// persisted cursor), and re-copies forced by writes landing on a strip
// mid-move. Like Cache, the simulator core is single-threaded but
// collectors may be read from test goroutines, so access is guarded.
type Restripe struct {
	mu             sync.Mutex
	planned        int64
	completed      int64
	stripsMoved    int64
	bytesCopied    int64
	zeroCopyFlips  int64
	throttleStalls int64
	resumes        int64
	recopies       int64
}

// NewRestripe returns an empty collector.
func NewRestripe() *Restripe { return &Restripe{} }

// AddPlanned records a migration admitted by the planner.
func (r *Restripe) AddPlanned() { r.add(&r.planned) }

// AddCompleted records a migration that converged to its target layout.
func (r *Restripe) AddCompleted() { r.add(&r.completed) }

// AddStripMoved records a committed strip move, with the bytes it copied
// (zero for a flip whose targets already held every copy).
func (r *Restripe) AddStripMoved(bytes int64) {
	r.mu.Lock()
	r.stripsMoved++
	r.bytesCopied += bytes
	if bytes == 0 {
		r.zeroCopyFlips++
	}
	r.mu.Unlock()
}

// AddThrottleStall records a move deferred by the in-flight byte budget.
func (r *Restripe) AddThrottleStall() { r.add(&r.throttleStalls) }

// AddResume records a move that failed against a down server and later
// committed after resuming from the migration cursor.
func (r *Restripe) AddResume() { r.add(&r.resumes) }

// AddRecopy records a strip re-copied because a write invalidated it
// mid-move.
func (r *Restripe) AddRecopy() { r.add(&r.recopies) }

func (r *Restripe) add(field *int64) {
	r.mu.Lock()
	*field++
	r.mu.Unlock()
}

// Planned returns the number of migrations the planner admitted.
func (r *Restripe) Planned() int64 { return r.get(&r.planned) }

// Completed returns the number of migrations that converged.
func (r *Restripe) Completed() int64 { return r.get(&r.completed) }

// StripsMoved returns the number of committed strip moves.
func (r *Restripe) StripsMoved() int64 { return r.get(&r.stripsMoved) }

// BytesCopied returns the bytes shipped between servers by moves.
func (r *Restripe) BytesCopied() int64 { return r.get(&r.bytesCopied) }

// ZeroCopyFlips returns the moves that committed without copying.
func (r *Restripe) ZeroCopyFlips() int64 { return r.get(&r.zeroCopyFlips) }

// ThrottleStalls returns the moves deferred by the byte budget.
func (r *Restripe) ThrottleStalls() int64 { return r.get(&r.throttleStalls) }

// Resumes returns the moves that recovered from a crashed server.
func (r *Restripe) Resumes() int64 { return r.get(&r.resumes) }

// Recopies returns the strips re-copied after mid-move writes.
func (r *Restripe) Recopies() int64 { return r.get(&r.recopies) }

func (r *Restripe) get(field *int64) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return *field
}

// Reset zeroes every counter.
func (r *Restripe) Reset() {
	r.mu.Lock()
	r.planned = 0
	r.completed = 0
	r.stripsMoved = 0
	r.bytesCopied = 0
	r.zeroCopyFlips = 0
	r.throttleStalls = 0
	r.resumes = 0
	r.recopies = 0
	r.mu.Unlock()
}

// String renders the non-zero counters, e.g. "strips-moved=12
// bytes-copied=786432 resumes=1".
func (r *Restripe) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var parts []string
	for _, f := range []struct {
		label string
		n     int64
	}{
		{"planned", r.planned},
		{"completed", r.completed},
		{"strips-moved", r.stripsMoved},
		{"bytes-copied", r.bytesCopied},
		{"zero-copy-flips", r.zeroCopyFlips},
		{"throttle-stalls", r.throttleStalls},
		{"resumes", r.resumes},
		{"recopies", r.recopies},
	} {
		if f.n != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", f.label, f.n))
		}
	}
	if len(parts) == 0 {
		return "(no restripe activity)"
	}
	return strings.Join(parts, " ")
}
