package metrics

import (
	"testing"

	"github.com/hpcio/das/internal/sim"
)

func TestSketchIndexUpperRoundTrip(t *testing.T) {
	// Every bucket's upper bound must map back to that bucket, and
	// consecutive values must land in non-decreasing buckets.
	for i := 0; i < sketchBuckets; i++ {
		up := sketchUpper(i)
		if got := sketchIndex(int64(up)); got != i {
			t.Fatalf("sketchIndex(sketchUpper(%d)=%d) = %d", i, up, got)
		}
	}
	prev := -1
	for v := int64(0); v < 4096; v++ {
		idx := sketchIndex(v)
		if idx < prev {
			t.Fatalf("bucket order regressed at value %d: %d < %d", v, idx, prev)
		}
		prev = idx
		if up := sketchUpper(idx); int64(up) < v {
			t.Fatalf("value %d above its bucket upper bound %d", v, up)
		}
	}
}

func TestSketchQuantileExactSmallValues(t *testing.T) {
	// Values below 2^sketchSubBits sit in exact unit buckets: quantiles
	// over them are exact order statistics.
	s := NewLatencySketch()
	for v := sim.Time(1); v <= 20; v++ {
		s.Observe(v)
	}
	if got := s.Quantile(50); got != 10 {
		t.Fatalf("p50 of 1..20 = %v, want 10", got)
	}
	if got := s.Quantile(100); got != 20 {
		t.Fatalf("p100 of 1..20 = %v, want 20", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("p0 of 1..20 = %v, want 1", got)
	}
}

func TestSketchQuantileRelativeError(t *testing.T) {
	// Large values must come back within the log-linear resolution: the
	// reported quantile is an upper bound no more than 1/2^sketchSubBits
	// above the true value.
	s := NewLatencySketch()
	for i := 0; i < 1000; i++ {
		s.Observe(sim.Time(i) * sim.Microsecond)
	}
	truev := int64(990 * sim.Microsecond) // rank 991 of 0..999µs
	got := int64(s.Quantile(99))
	if got < truev {
		t.Fatalf("p99 %d under-reports true value %d", got, truev)
	}
	if got > truev+truev/sketchSubs+1 {
		t.Fatalf("p99 %d exceeds error bound over true value %d", got, truev)
	}
}

func TestSketchEmptyNegativeAndReset(t *testing.T) {
	s := NewLatencySketch()
	if s.Quantile(99) != 0 || s.Max() != 0 || s.Count() != 0 {
		t.Fatal("empty sketch must report zeros")
	}
	s.Observe(-5)
	if s.Count() != 1 || s.Quantile(100) != 0 {
		t.Fatalf("negative sample must clamp to 0: count=%d q=%v", s.Count(), s.Quantile(100))
	}
	s.Observe(time(300))
	s.Reset()
	if s.Count() != 0 || s.Quantile(99) != 0 {
		t.Fatal("reset sketch must be empty")
	}
}

func time(us int64) sim.Time { return sim.Time(us) * sim.Microsecond }

func TestSketchMergeEqualsCombinedFeed(t *testing.T) {
	a, b, both := NewLatencySketch(), NewLatencySketch(), NewLatencySketch()
	for i := int64(0); i < 500; i++ {
		a.Observe(time(i))
		both.Observe(time(i))
	}
	for i := int64(500); i < 900; i++ {
		b.Observe(time(i))
		both.Observe(time(i))
	}
	a.Merge(b)
	if !a.Equal(both) {
		t.Fatal("merged sketch differs from combined feed")
	}
	if a.Count() != both.Count() {
		t.Fatalf("merged count %d != %d", a.Count(), both.Count())
	}
}

func TestSketchDeltaRecoversWindow(t *testing.T) {
	cum := NewLatencySketch()
	for i := int64(0); i < 100; i++ {
		cum.Observe(time(10))
	}
	snap := cum.Clone()
	for i := int64(0); i < 50; i++ {
		cum.Observe(time(1000))
	}
	win := cum.Delta(snap)
	if win.Count() != 50 {
		t.Fatalf("delta count %d, want 50", win.Count())
	}
	// The window holds only the 1000µs samples; its p50 must sit in that
	// bucket, far above the 10µs samples the snapshot absorbed.
	if q := win.Quantile(50); q < time(1000) {
		t.Fatalf("delta p50 %v includes pre-snapshot samples", q)
	}
	if d := cum.Delta(nil); !d.Equal(cum) {
		t.Fatal("delta against nil must copy the sketch")
	}
}

func TestSketchDeterministicAcrossIdenticalFeeds(t *testing.T) {
	a, b := NewLatencySketch(), NewLatencySketch()
	v := int64(1)
	for i := 0; i < 10000; i++ {
		v = (v*6364136223846793005 + 1442695040888963407) % (1 << 40)
		if v < 0 {
			v = -v
		}
		a.Observe(sim.Time(v))
	}
	v = int64(1)
	for i := 0; i < 10000; i++ {
		v = (v*6364136223846793005 + 1442695040888963407) % (1 << 40)
		if v < 0 {
			v = -v
		}
		b.Observe(sim.Time(v))
	}
	if !a.Equal(b) {
		t.Fatal("identical feeds produced different sketches")
	}
	for _, p := range []int{0, 50, 90, 99, 100} {
		if a.Quantile(p) != b.Quantile(p) {
			t.Fatalf("p%d differs across identical feeds", p)
		}
	}
}
