package metrics

import (
	"strings"
	"testing"
)

func TestPipelineCountersAndRatio(t *testing.T) {
	p := NewPipeline()
	if p.LowerBoundRatio() != 0 {
		t.Fatalf("empty ratio = %v", p.LowerBoundRatio())
	}
	if p.String() != "(no pipeline activity)" {
		t.Fatalf("empty String = %q", p.String())
	}
	p.AddRun(4, 2, 300, 200)
	p.AddRound()
	p.AddRound()
	p.AddExchange(128)
	p.AddExchange(64)
	p.AddFetch(32)
	p.AddWriteback()
	p.AddReduceMerge()
	p.AddCatchUp()
	p.AddRedispatch()
	if p.Runs() != 1 || p.Stages() != 4 || p.FusedStages() != 2 {
		t.Fatalf("run counters wrong: %s", p)
	}
	if p.Rounds() != 2 || p.ExchangeOps() != 2 || p.ExchangeBytes() != 192 || p.FetchBytes() != 32 {
		t.Fatalf("traffic counters wrong: %s", p)
	}
	if p.Writebacks() != 1 || p.ReduceMerges() != 1 || p.CatchUps() != 1 || p.Redispatches() != 1 {
		t.Fatalf("event counters wrong: %s", p)
	}
	if got := p.LowerBoundRatio(); got != 1.5 {
		t.Fatalf("ratio = %v, want 1.5", got)
	}
	if s := p.String(); !strings.Contains(s, "exchange-bytes=192") || !strings.Contains(s, "bound-bytes=200") {
		t.Fatalf("String = %q", s)
	}
	p.Reset()
	if p.Runs() != 0 || p.AchievedBytes() != 0 {
		t.Fatal("Reset left counters")
	}
}
