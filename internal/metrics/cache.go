package metrics

import (
	"fmt"
	"strings"
	"sync"
)

// Cache counts halo-strip cache activity across a run: lookups that hit or
// missed, bytes served from cache versus fetched remotely, evictions,
// write invalidations, restart purges (a crashed server loses its cache
// even though its disk survives), and the manager's replica-tuning actions
// (promotions pin a hot strip, demotions unpin a cold one). Like Traffic,
// the simulator core is single-threaded but collectors may be read from
// test goroutines, so access is guarded.
type Cache struct {
	mu            sync.Mutex
	hits          int64
	misses        int64
	hitBytes      int64
	missBytes     int64
	inserts       int64
	insertBytes   int64
	evictions     int64
	evictedBytes  int64
	invalidations int64
	restartPurges int64
	promotions    int64
	demotions     int64
}

// NewCache returns an empty collector.
func NewCache() *Cache { return &Cache{} }

// AddHit records a lookup served from cache, with the bytes it saved.
func (c *Cache) AddHit(bytes int64) {
	c.mu.Lock()
	c.hits++
	c.hitBytes += bytes
	c.mu.Unlock()
}

// AddMiss records a lookup that had to fetch remotely, with the bytes it
// moved.
func (c *Cache) AddMiss(bytes int64) {
	c.mu.Lock()
	c.misses++
	c.missBytes += bytes
	c.mu.Unlock()
}

// AddInsert records an entry admitted to a cache.
func (c *Cache) AddInsert(bytes int64) {
	c.mu.Lock()
	c.inserts++
	c.insertBytes += bytes
	c.mu.Unlock()
}

// AddEviction records an entry evicted to make room.
func (c *Cache) AddEviction(bytes int64) {
	c.mu.Lock()
	c.evictions++
	c.evictedBytes += bytes
	c.mu.Unlock()
}

// AddInvalidation records an entry dropped because its strip was written.
func (c *Cache) AddInvalidation() { c.add(&c.invalidations) }

// AddRestartPurge records a whole cache dropped because its server
// restarted (incarnation bump).
func (c *Cache) AddRestartPurge() { c.add(&c.restartPurges) }

// AddPromotion records a strip pinned by the replica-tuning loop.
func (c *Cache) AddPromotion() { c.add(&c.promotions) }

// AddDemotion records a strip unpinned by the replica-tuning loop.
func (c *Cache) AddDemotion() { c.add(&c.demotions) }

func (c *Cache) add(field *int64) {
	c.mu.Lock()
	*field++
	c.mu.Unlock()
}

// Hits returns the number of cache-served lookups.
func (c *Cache) Hits() int64 { return c.get(&c.hits) }

// Misses returns the number of lookups that fetched remotely.
func (c *Cache) Misses() int64 { return c.get(&c.misses) }

// HitBytes returns the bytes served from cache.
func (c *Cache) HitBytes() int64 { return c.get(&c.hitBytes) }

// MissBytes returns the bytes fetched remotely on misses.
func (c *Cache) MissBytes() int64 { return c.get(&c.missBytes) }

// Inserts returns the number of entries admitted.
func (c *Cache) Inserts() int64 { return c.get(&c.inserts) }

// InsertBytes returns the bytes admitted.
func (c *Cache) InsertBytes() int64 { return c.get(&c.insertBytes) }

// Evictions returns the number of entries evicted.
func (c *Cache) Evictions() int64 { return c.get(&c.evictions) }

// EvictedBytes returns the bytes evicted.
func (c *Cache) EvictedBytes() int64 { return c.get(&c.evictedBytes) }

// Invalidations returns the number of write-invalidated entries.
func (c *Cache) Invalidations() int64 { return c.get(&c.invalidations) }

// RestartPurges returns the number of restart-triggered cache purges.
func (c *Cache) RestartPurges() int64 { return c.get(&c.restartPurges) }

// Promotions returns the number of pinning actions.
func (c *Cache) Promotions() int64 { return c.get(&c.promotions) }

// Demotions returns the number of unpinning actions.
func (c *Cache) Demotions() int64 { return c.get(&c.demotions) }

func (c *Cache) get(field *int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return *field
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (c *Cache) HitRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hits+c.misses == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.hits+c.misses)
}

// ByteHitRate returns hitBytes/(hitBytes+missBytes), or 0 before any
// lookup — the fraction the prediction core discounts dependent traffic
// by.
func (c *Cache) ByteHitRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hitBytes+c.missBytes == 0 {
		return 0
	}
	return float64(c.hitBytes) / float64(c.hitBytes+c.missBytes)
}

// Reset zeroes every counter. (Overwriting the whole struct would also
// zero the held mutex and panic on unlock.)
func (c *Cache) Reset() {
	c.mu.Lock()
	c.hits, c.misses, c.hitBytes, c.missBytes = 0, 0, 0, 0
	c.inserts, c.insertBytes, c.evictions, c.evictedBytes = 0, 0, 0, 0
	c.invalidations, c.restartPurges, c.promotions, c.demotions = 0, 0, 0, 0
	c.mu.Unlock()
}

// String renders the non-zero counters, e.g. "hits=10 misses=4
// evictions=2".
func (c *Cache) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var parts []string
	for _, f := range []struct {
		label string
		n     int64
	}{
		{"hits", c.hits},
		{"misses", c.misses},
		{"hit-bytes", c.hitBytes},
		{"miss-bytes", c.missBytes},
		{"inserts", c.inserts},
		{"evictions", c.evictions},
		{"invalidations", c.invalidations},
		{"restart-purges", c.restartPurges},
		{"promotions", c.promotions},
		{"demotions", c.demotions},
	} {
		if f.n != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", f.label, f.n))
		}
	}
	if len(parts) == 0 {
		return "(no cache activity)"
	}
	return strings.Join(parts, " ")
}
