package active

import (
	"fmt"

	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/pfs"
	"github.com/hpcio/das/internal/sim"
	"github.com/hpcio/das/internal/simnet"
)

// reduceReq asks one server to fold its local strips of a file into a
// partial aggregate.
type reduceReq struct {
	Op    string
	Input string
}

// reduceResp carries one server's partial aggregate.
type reduceResp struct {
	Err      string
	Partial  []float64
	Elements int64
}

// ReduceStats aggregates a distributed reduction's execution.
type ReduceStats struct {
	Servers  int
	Elements int64
	// ReturnBytes is what actually crossed from servers to the client —
	// the whole point of offloading a reduction.
	ReturnBytes int64
}

// handleReduce folds every primary run of this server through the reducer
// and responds with the merged partial. Reductions have no dependence, so
// assembly needs no halo and no remote fetches.
func (svc *Service) handleReduce(p *sim.Proc, srv *pfs.Server, msg simnet.Message) {
	clu := svc.fs.Cluster()
	req := msg.Payload.(reduceReq)
	respond := func(r reduceResp, size int64) {
		clu.Net.Respond(p, msg, r, size, clu.ClassBetween(srv.NodeID(), msg.From))
	}
	red, ok := svc.reducers.Lookup(req.Op)
	if !ok {
		respond(reduceResp{Err: fmt.Sprintf("active: unknown reducer %q", req.Op)}, headerBytes)
		return
	}
	in, ok := svc.fs.Meta(req.Input)
	if !ok {
		respond(reduceResp{Err: fmt.Sprintf("active: unknown input %q", req.Input)}, headerBytes)
		return
	}
	if in.Width == 0 || in.ElemSize == 0 {
		respond(reduceResp{Err: fmt.Sprintf("active: input %q lacks raster metadata", req.Input)}, headerBytes)
		return
	}
	total := in.Size / in.ElemSize
	var partials [][]float64
	var elements int64
	for _, run := range PrimaryRuns(srv, in) {
		e0, e1 := run.Lo/in.ElemSize, run.Hi/in.ElemSize
		spans := make([]pfs.Span, 0, run.Last-run.First+1)
		for t := run.First; t <= run.Last; t++ {
			spans = append(spans, pfs.Span{Strip: t})
		}
		chunks, err := srv.LocalReadMany(p, req.Input, spans)
		if err != nil {
			respond(reduceResp{Err: err.Error()}, headerBytes)
			return
		}
		band := grid.NewBandPooled(in.Width, total, e0, e1, e0, e1)
		off := e0
		for _, chunk := range chunks {
			band.FillBytes(off, chunk)
			off += int64(len(chunk)) / in.ElemSize
			pfs.ReleaseBuffer(chunk)
		}
		partials = append(partials, red.ReduceBand(band))
		band.Release()
		p.Sleep(clu.ComputeTime(e1-e0, red.Weight()))
		elements += e1 - e0
	}
	partial := red.Merge(partials)
	respond(reduceResp{Partial: partial, Elements: elements},
		headerBytes+int64(len(partial))*grid.ElemSize)
}

// ExecReduce offloads a reduction: every server folds its local strips and
// returns only its partial aggregate; the client merges them. The returned
// slice is the full aggregate (identical to kernels.ReduceAll on the whole
// raster).
func (c *Client) ExecReduce(p *sim.Proc, red kernels.Reducer, input string) ([]float64, ReduceStats, error) {
	clu := c.fs.Cluster()
	sigs := make([]*sim.Signal[reduceResp], 0, c.fs.Servers())
	for s := 0; s < c.fs.Servers(); s++ {
		s := s
		done := sim.NewSignal[reduceResp](clu.Eng, fmt.Sprintf("as-reduce:%s:%d", red.Name(), s))
		sigs = append(sigs, done)
		p.Spawn(fmt.Sprintf("as-reduce-dispatch-%s-%d", red.Name(), s), func(d *sim.Proc) {
			resp := clu.Net.Call(d, simnet.Message{
				From:    c.nodeID,
				To:      clu.StorageID(s),
				Port:    Port,
				Size:    headerBytes,
				Class:   clu.ClassBetween(c.nodeID, clu.StorageID(s)),
				Payload: reduceReq{Op: red.Name(), Input: input},
			})
			done.Fire(resp.Payload.(reduceResp))
		})
	}
	var stats ReduceStats
	var partials [][]float64
	for _, resp := range sim.WaitAll(p, sigs) {
		if resp.Err != "" {
			return nil, ReduceStats{}, fmt.Errorf("active: %s", resp.Err)
		}
		// Guard against a client reducer parameterized differently from
		// the server-side registration of the same name (e.g. histograms
		// with different bin counts): merging mismatched partials would
		// silently corrupt the aggregate.
		if len(resp.Partial) != red.PartialLen() {
			return nil, ReduceStats{}, fmt.Errorf(
				"active: reducer %q returned %d-element partials, client expects %d (parameter mismatch with the server registration)",
				red.Name(), len(resp.Partial), red.PartialLen())
		}
		stats.Servers++
		stats.Elements += resp.Elements
		stats.ReturnBytes += int64(len(resp.Partial)) * grid.ElemSize
		if resp.Elements > 0 {
			partials = append(partials, resp.Partial)
		}
	}
	if len(partials) == 0 {
		return nil, ReduceStats{}, fmt.Errorf("active: no server held data for %q", input)
	}
	return red.Merge(partials), stats, nil
}
