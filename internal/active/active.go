// Package active implements the active storage layer of the DAS
// architecture (Fig. 2): an Active Storage Client on the compute side and
// an AS helper process on every storage server that invokes the processing
// kernels over the server's local strips through the local I/O API.
//
// The layer supports the fetch strategies the paper compares:
//
//   - FetchWholeStrips: when an element's dependence window leaves the
//     server's local holdings, the server requests the whole dependent
//     strips from their owners — the behaviour of existing ("normal")
//     active storage systems, whose cost §IV-B1 demonstrates.
//   - FetchRows: an optimized variant that requests only the byte range
//     actually needed from each dependent strip (the ablation showing DAS
//     wins even against a smarter NAS).
//   - LocalOnly: dependence must resolve from local strips and replicas;
//     reaching a missing element is an error. This is the mode DAS uses
//     after the prediction core has verified the layout (Eq. (17) or its
//     generalization), so any violation is a bug, not a fallback.
package active

import (
	"fmt"

	"github.com/hpcio/das/internal/cache"
	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/pfs"
	"github.com/hpcio/das/internal/predict"
	"github.com/hpcio/das/internal/sim"
	"github.com/hpcio/das/internal/simnet"
)

// Port is the mailbox active storage servers listen on.
const Port = "as"

const headerBytes = 128

// FetchMode selects how a server resolves dependent data it does not hold.
type FetchMode int

const (
	// FetchWholeStrips transfers entire dependent strips from their
	// owners, as existing active storage systems do.
	FetchWholeStrips FetchMode = iota
	// FetchRows transfers only the needed byte range of each dependent
	// strip.
	FetchRows
	// LocalOnly forbids remote fetches; dependence must be satisfied by
	// local strips and replicas.
	LocalOnly
)

// String names the mode for reports.
func (m FetchMode) String() string {
	switch m {
	case FetchWholeStrips:
		return "whole-strips"
	case FetchRows:
		return "rows"
	case LocalOnly:
		return "local-only"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// execReq asks one server to process its share of an offloaded operation.
type execReq struct {
	Op     string
	Input  string
	Output string
	Mode   FetchMode
	// Strips, when non-nil, is the explicit ascending set of input strips
	// this server must process — the degraded dispatch path assigns a dead
	// server's strips to their replica holders this way. Nil means "your
	// primary strips", the healthy-cluster contract.
	Strips []int64
}

// Phases breaks one worker's elapsed time into the pipeline stages the
// paper's analysis talks about. Durations are wall (simulated) time spent
// blocked in each stage, so queueing on a contended disk or NIC counts
// toward the stage that waited — exactly the "increased load" effect.
type Phases struct {
	LocalRead sim.Time // local strip + replica reads through the disk
	Fetch     sim.Time // waiting for dependent data from other servers
	Compute   sim.Time // kernel execution
	Write     sim.Time // local output writes
	Forward   sim.Time // waiting for replica forwarding to complete
}

// Add accumulates another worker's phases.
func (ph *Phases) Add(o Phases) {
	ph.LocalRead += o.LocalRead
	ph.Fetch += o.Fetch
	ph.Compute += o.Compute
	ph.Write += o.Write
	ph.Forward += o.Forward
}

// MaxWith keeps, per phase, the larger of the two — the critical-path view
// across workers.
func (ph *Phases) MaxWith(o Phases) {
	ph.LocalRead = maxTime(ph.LocalRead, o.LocalRead)
	ph.Fetch = maxTime(ph.Fetch, o.Fetch)
	ph.Compute = maxTime(ph.Compute, o.Compute)
	ph.Write = maxTime(ph.Write, o.Write)
	ph.Forward = maxTime(ph.Forward, o.Forward)
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

// execResp reports one server's execution statistics.
type execResp struct {
	Err           string
	Strips        int64 // primary strips processed
	Elements      int64 // elements produced
	RemoteFetches int64 // remote strip (or row-range) requests issued
	RemoteBytes   int64 // bytes fetched from other servers
	CacheHits     int64 // dependent ranges served by the halo-strip cache
	CacheHitBytes int64 // bytes those hits kept off the network
	Phases        Phases
}

// ExecStats aggregates the per-server results of one offloaded operation.
type ExecStats struct {
	Servers       int
	Strips        int64
	Elements      int64
	RemoteFetches int64
	RemoteBytes   int64
	CacheHits     int64
	CacheHitBytes int64
	// PhaseMax holds, per phase, the busiest server's time — the
	// critical-path decomposition of the operation.
	PhaseMax Phases
	// Rounds is the number of dispatch rounds the operation took: 1 on a
	// healthy cluster, more when mid-execution crashes forced strips to be
	// reassigned to replica holders.
	Rounds int
}

// Service runs the AS helper process on every storage server.
type Service struct {
	fs       *pfs.FileSystem
	registry *kernels.Registry
	reducers *kernels.ReducerRegistry
	// cache, when set, is the halo-strip cache subsystem: dependent
	// fetches consult the fetching server's cache first and feed every
	// miss back as a fresh entry plus a latency observation.
	cache *cache.Manager
}

// SetCache attaches the halo-strip cache manager (nil detaches).
func (svc *Service) SetCache(m *cache.Manager) { svc.cache = m }

// Deploy starts an AS helper daemon on each storage node of an existing
// file system. A nil reducer registry installs the defaults.
func Deploy(fs *pfs.FileSystem, registry *kernels.Registry, reducers *kernels.ReducerRegistry) *Service {
	if reducers == nil {
		reducers = kernels.DefaultReducers()
	}
	svc := &Service{fs: fs, registry: registry, reducers: reducers}
	for s := 0; s < fs.Servers(); s++ {
		srv := fs.Server(s)
		fs.Cluster().Eng.SpawnDaemon(fmt.Sprintf("as-server-%d", s), func(p *sim.Proc) {
			port := fs.Cluster().Net.Node(srv.NodeID()).Port(Port)
			reqs := 0
			for {
				msg := port.Get(p)
				reqs++
				p.Spawn(fmt.Sprintf("as-exec-%d-%d", s, reqs), func(h *sim.Proc) {
					svc.handle(h, srv, msg)
				})
			}
		})
	}
	return svc
}

func (svc *Service) handle(p *sim.Proc, srv *pfs.Server, msg simnet.Message) {
	clu := svc.fs.Cluster()
	switch req := msg.Payload.(type) {
	case execReq:
		respond := func(r execResp) {
			clu.Net.Respond(p, msg, r, headerBytes, clu.ClassBetween(srv.NodeID(), msg.From))
		}
		resp, err := svc.exec(p, srv, req)
		if err != nil {
			respond(execResp{Err: err.Error()})
			return
		}
		respond(resp)
	case reduceReq:
		svc.handleReduce(p, srv, msg)
	default:
		clu.Net.Respond(p, msg, execResp{Err: fmt.Sprintf("unknown request %T", msg.Payload)},
			headerBytes, clu.ClassBetween(srv.NodeID(), msg.From))
	}
}

// exec processes every run of consecutive primary strips this server owns:
// it assembles the run's band (local reads, replica reads, and — depending
// on the mode — remote fetches), invokes the kernel, and writes the output
// strips locally, forwarding output replicas as the output layout demands.
func (svc *Service) exec(p *sim.Proc, srv *pfs.Server, req execReq) (execResp, error) {
	clu := svc.fs.Cluster()
	in, ok := svc.fs.Meta(req.Input)
	if !ok {
		return execResp{}, fmt.Errorf("active: unknown input %q", req.Input)
	}
	out, ok := svc.fs.Meta(req.Output)
	if !ok {
		return execResp{}, fmt.Errorf("active: unknown output %q", req.Output)
	}
	if in.Width == 0 || in.ElemSize == 0 {
		return execResp{}, fmt.Errorf("active: input %q lacks raster metadata", req.Input)
	}
	if out.Size != in.Size || out.StripSize != in.StripSize {
		return execResp{}, fmt.Errorf("active: output geometry differs from input")
	}
	k, ok := svc.registry.Lookup(req.Op)
	if !ok {
		return execResp{}, fmt.Errorf("active: unknown operator %q", req.Op)
	}

	lc := in.Locator()
	total := in.Size / in.ElemSize
	maxAbs := kernels.Pattern(k).MaxAbsOffset(in.Width)

	var resp execResp
	var forwards []*sim.Signal[error]
	var pooledOut [][]byte // output encodings, released once forwards finish
	// fail unwinds an error return: replica forwards spawned by earlier
	// runs may still hold sub-slices of the pooled output buffers, so they
	// must drain before the pool reclaims anything.
	fail := func(err error) (execResp, error) {
		sim.WaitAll(p, forwards)
		for _, b := range pooledOut {
			pfs.ReleaseBuffer(b)
		}
		pooledOut = nil
		return execResp{}, err
	}
	for _, run := range assignedRuns(srv, in, req.Strips) {
		e0 := run.Lo / in.ElemSize
		e1 := run.Hi / in.ElemSize
		lo, hi := grid.HaloRange(e0, e1, maxAbs, total)
		band := grid.NewBandPooled(in.Width, total, e0, e1, lo, hi)

		// Assemble the band: all locally held strips (the run plus any
		// replicas) come in one batched disk pass; missing strips are
		// fetched from their owners per the request's mode. Only strips
		// the dependence pattern actually touches are read — a sparse
		// stride pattern skips the strips between its endpoints.
		offs := kernels.Pattern(k).Resolve(in.Width)
		var localSpans []pfs.Span
		var localLo []int64
		type remote struct{ strip, needLo, needHi int64 }
		var remotes []remote
		for _, t := range predict.NeededStrips(lc, offs, e0, e1, total) {
			tLo, tHi := in.StripBounds(t)
			needLo, needHi := lo*in.ElemSize, hi*in.ElemSize
			if needLo < tLo {
				needLo = tLo
			}
			if needHi > tHi {
				needHi = tHi
			}
			if needHi <= needLo {
				continue
			}
			if srv.Holds(req.Input, t) {
				localSpans = append(localSpans, pfs.Span{Strip: t, Lo: needLo - tLo, Hi: needHi - tLo})
				localLo = append(localLo, needLo)
			} else {
				remotes = append(remotes, remote{strip: t, needLo: needLo, needHi: needHi})
			}
		}
		if len(localSpans) > 0 {
			t0 := p.Now()
			chunks, err := srv.LocalReadMany(p, req.Input, localSpans)
			if err != nil {
				band.Release()
				return fail(err)
			}
			resp.Phases.LocalRead += p.Now() - t0
			clu.Trace.Record(t0, p.Now()-t0, actor(srv), "local-read",
				fmt.Sprintf("%d spans for strips %d-%d of %s", len(localSpans), run.First, run.Last, req.Input))
			for i, chunk := range chunks {
				band.FillBytes(localLo[i]/in.ElemSize, chunk)
				pfs.ReleaseBuffer(chunk)
			}
		}
		// Dependent-strip fetches for one run go out concurrently (the
		// requests target distinct owners); the run still cannot compute
		// until every response arrives, and the amplified traffic still
		// serializes on the NICs and disks it crosses.
		type fetched struct {
			data  []byte
			gotLo int64
			hit   bool
			err   error
		}
		fetchStart := p.Now()
		fetchSigs := make([]*sim.Signal[fetched], len(remotes))
		for i, rm := range remotes {
			rm := rm
			sig := sim.NewSignal[fetched](clu.Eng, fmt.Sprintf("as-fetch-%d-%d", srv.Index(), rm.strip))
			fetchSigs[i] = sig
			p.Spawn(fmt.Sprintf("as-fetch-%d-%d", srv.Index(), rm.strip), func(f *sim.Proc) {
				data, gotLo, hit, err := svc.fetchRemote(f, srv, in, req.Mode, rm.strip, rm.needLo, rm.needHi)
				sig.Fire(fetched{data: data, gotLo: gotLo, hit: hit, err: err})
			})
		}
		results := sim.WaitAll(p, fetchSigs)
		var fetchErr error
		for _, got := range results {
			if got.err != nil {
				fetchErr = got.err
				break
			}
		}
		if fetchErr != nil {
			// The sibling fetches still delivered pooled copies.
			for _, got := range results {
				pfs.ReleaseBuffer(got.data)
			}
			band.Release()
			return fail(fetchErr)
		}
		for _, got := range results {
			if got.hit {
				resp.CacheHits++
				resp.CacheHitBytes += int64(len(got.data))
			} else {
				resp.RemoteFetches++
				resp.RemoteBytes += int64(len(got.data))
			}
			band.FillBytes(got.gotLo/in.ElemSize, got.data)
			pfs.ReleaseBuffer(got.data)
		}
		resp.Phases.Fetch += p.Now() - fetchStart
		if len(remotes) > 0 {
			clu.Trace.Record(fetchStart, p.Now()-fetchStart, actor(srv), "fetch",
				fmt.Sprintf("%d dependent strips for strips %d-%d (%s)", len(remotes), run.First, run.Last, req.Mode))
		}

		// Run the kernel: real computation on real bytes, plus the
		// simulated CPU cost of processing the run's elements. The parallel
		// executor only spreads the host-CPU work across cores; the
		// simulated cost below is unchanged.
		outVals := grid.GetFloats(int(e1 - e0))
		kernels.ParallelApplyBand(k, band, outVals)
		band.Release()
		computeStart := p.Now()
		p.Sleep(clu.ComputeTime(e1-e0, k.Weight()))
		resp.Phases.Compute += p.Now() - computeStart
		clu.Trace.Record(computeStart, p.Now()-computeStart, actor(srv), "compute",
			fmt.Sprintf("%s over %d elements", req.Op, e1-e0))
		resp.Elements += e1 - e0

		// Write the run's output strips locally in one batched disk pass.
		// Replica copies demanded by the output layout are pushed lazily
		// on a child process, overlapping replication with the next run's
		// disk and compute work; the exec completes only after every
		// forward has been acknowledged.
		//das:transfer -- ownership joins pooledOut; released once the replica forwards acknowledge (fail() covers error paths)
		outBytes := grid.FloatsToBytesInto(pfs.AcquireBuffer((e1-e0)*in.ElemSize), outVals)
		grid.PutFloats(outVals)
		pooledOut = append(pooledOut, outBytes)
		strips := make([]int64, 0, run.Last-run.First+1)
		chunks := make([][]byte, 0, run.Last-run.First+1)
		for t := run.First; t <= run.Last; t++ {
			tLo, tHi := out.StripBounds(t)
			strips = append(strips, t)
			chunks = append(chunks, outBytes[tLo-run.Lo:tHi-run.Lo])
		}
		writeStart := p.Now()
		if err := srv.LocalWriteMany(p, req.Output, strips, chunks, false); err != nil {
			return fail(err)
		}
		resp.Phases.Write += p.Now() - writeStart
		clu.Trace.Record(writeStart, p.Now()-writeStart, actor(srv), "write",
			fmt.Sprintf("%d output strips of %s", len(strips), req.Output))
		done := sim.NewSignal[error](clu.Eng, fmt.Sprintf("as-forward-%d-%d", srv.Index(), run.First))
		forwards = append(forwards, done)
		p.Spawn(fmt.Sprintf("as-forward-%d-%d", srv.Index(), run.First), func(f *sim.Proc) {
			done.Fire(srv.ForwardReplicas(f, req.Output, strips, chunks))
		})
		resp.Strips += int64(len(strips))
	}
	forwardStart := p.Now()
	for _, err := range sim.WaitAll(p, forwards) {
		if err != nil {
			return fail(err)
		}
	}
	resp.Phases.Forward += p.Now() - forwardStart
	for _, b := range pooledOut {
		pfs.ReleaseBuffer(b) // replica forwards acknowledged: last references gone
	}
	if len(forwards) > 0 {
		clu.Trace.Record(forwardStart, p.Now()-forwardStart, actor(srv), "forward-wait",
			fmt.Sprintf("%d replica batches of %s", len(forwards), req.Output))
	}
	return resp, nil
}

// fetchRemote resolves a byte range of a strip this server does not hold.
// With the cache subsystem attached, the server's halo-strip cache is
// consulted first: a hit serves the range from local memory (free on the
// DES clock — the bytes already sit on this node, and the caller's copy
// into the band is the same work either way); a miss pays the remote
// fetch, then feeds the bytes and the observed latency back to the cache.
func (svc *Service) fetchRemote(p *sim.Proc, srv *pfs.Server, in *pfs.FileMeta, mode FetchMode, t, needLo, needHi int64) (data []byte, gotLo int64, hit bool, err error) {
	if mode == LocalOnly {
		return nil, 0, false, fmt.Errorf("active: server %d needs strip %d of %q but mode is local-only (layout violates the locality the predictor verified)",
			srv.Index(), t, in.Name)
	}
	owner := in.Layout.Primary(t)
	tLo, tHi := in.StripBounds(t)
	// The cached range is strip-relative: whole strips want [0, len),
	// row fetches want the needed slice.
	wantLo, wantHi := int64(0), tHi-tLo
	if mode == FetchRows {
		wantLo, wantHi = needLo-tLo, needHi-tLo
	}
	if svc.cache != nil {
		if cached, ok := svc.cache.Get(srv.Index(), in.Name, t, wantLo, wantHi); ok {
			return cached, tLo + wantLo, true, nil
		}
	}
	fetchStart := p.Now()
	switch mode {
	case FetchWholeStrips:
		data, err = svc.fs.ReadStripFrom(p, srv.NodeID(), owner, in.Name, t, 0, 0)
	case FetchRows:
		data, err = svc.fs.ReadStripFrom(p, srv.NodeID(), owner, in.Name, t, needLo-tLo, needHi-tLo)
	default:
		return nil, 0, false, fmt.Errorf("active: unsupported fetch mode %v", mode)
	}
	if err != nil {
		return nil, 0, false, err
	}
	if svc.cache != nil {
		svc.cache.RecordFetch(srv.Index(), in.Name, t, wantLo, data, p.Now()-fetchStart)
	}
	return data, tLo + wantLo, false, nil
}

// actor names a storage server for trace events.
func actor(srv *pfs.Server) string { return fmt.Sprintf("server-%d", srv.Index()) }

// StripRun is a maximal run of consecutive strips processed as one band,
// with its byte range [Lo, Hi). Both the AS exec path and the pipeline
// pushdown assemble their per-server work this way: one run reads shared
// halo data once instead of once per strip.
type StripRun struct {
	First, Last int64
	Lo, Hi      int64
}

// StripRuns splits an explicit ascending strip list into maximal
// consecutive runs under a file's geometry.
func StripRuns(m *pfs.FileMeta, strips []int64) []StripRun {
	var runs []StripRun
	for _, s := range strips {
		lo, hi := m.StripBounds(s)
		if n := len(runs); n > 0 && runs[n-1].Last == s-1 {
			runs[n-1].Last = s
			runs[n-1].Hi = hi
			continue
		}
		runs = append(runs, StripRun{First: s, Last: s, Lo: lo, Hi: hi})
	}
	return runs
}

// assignedRuns returns the strip runs this exec request covers: the
// explicitly assigned strips when the request carries them (degraded
// dispatch), the server's primary strips otherwise.
func assignedRuns(srv *pfs.Server, m *pfs.FileMeta, strips []int64) []StripRun {
	if strips == nil {
		return PrimaryRuns(srv, m)
	}
	return StripRuns(m, strips)
}

// PrimaryRuns enumerates the server's primary strips as consecutive runs:
// single strips under round-robin, whole groups under the improved
// distribution.
func PrimaryRuns(srv *pfs.Server, m *pfs.FileMeta) []StripRun {
	var strips []int64
	for s := int64(0); s < m.Strips(); s++ {
		if m.Layout.Primary(s) == srv.Index() {
			strips = append(strips, s)
		}
	}
	return StripRuns(m, strips)
}

// Client is the Active Storage Client from Fig. 2, bound to a compute
// node: it dispatches offloaded operations to every storage server and
// aggregates their statistics.
type Client struct {
	fs     *pfs.FileSystem
	nodeID int
}

// NewClient binds an active storage client to a node.
func NewClient(fs *pfs.FileSystem, nodeID int) *Client {
	return &Client{fs: fs, nodeID: nodeID}
}

// Exec offloads op over input, producing output (which must already be
// created with the same geometry). It returns once every server has
// finished its share. Once the cluster's fault layer is active, dispatch
// goes through the degraded path: strips are assigned to their first live
// holders and reassigned when a server crashes mid-execution.
func (c *Client) Exec(p *sim.Proc, op, input, output string, mode FetchMode) (ExecStats, error) {
	clu := c.fs.Cluster()
	if clu.Faults.Active() {
		return c.execDegraded(p, op, input, output, mode)
	}
	// With a stable input layout every server derives its own share ("your
	// primary strips", the nil-Strips contract). A mid-migration input's
	// placement keeps shifting while the dispatched servers consult it at
	// different simulated times, so a strip could be claimed twice or not
	// at all; instead the client fixes the assignment once, from the
	// output's frozen snapshot layout, and ships each server its explicit
	// strip list. The processing server then writes each output strip
	// locally exactly where the snapshot says readers will look for it.
	assign := migratingAssignment(c.fs, input, output)
	sigs := make([]*sim.Signal[execResp], 0, c.fs.Servers())
	for s := 0; s < c.fs.Servers(); s++ {
		s := s
		var strips []int64
		if assign != nil {
			strips = assign[s]
			if strips == nil {
				strips = []int64{} // explicitly nothing, not "your primaries"
			}
		}
		done := sim.NewSignal[execResp](clu.Eng, fmt.Sprintf("as-exec:%s:%d", op, s))
		sigs = append(sigs, done)
		p.Spawn(fmt.Sprintf("as-dispatch-%s-%d", op, s), func(d *sim.Proc) {
			resp := clu.Net.Call(d, simnet.Message{
				From:    c.nodeID,
				To:      clu.StorageID(s),
				Port:    Port,
				Size:    headerBytes,
				Class:   clu.ClassBetween(c.nodeID, clu.StorageID(s)),
				Payload: execReq{Op: op, Input: input, Output: output, Mode: mode, Strips: strips},
			})
			r, ok := resp.Payload.(execResp)
			if !ok {
				r = execResp{Err: fmt.Sprintf("unexpected response type %T", resp.Payload)}
			}
			done.Fire(r)
		})
	}
	var stats ExecStats
	stats.Rounds = 1
	for _, r := range sim.WaitAll(p, sigs) {
		if r.Err != "" {
			return ExecStats{}, fmt.Errorf("active: %s", r.Err)
		}
		stats.Servers++
		stats.Strips += r.Strips
		stats.Elements += r.Elements
		stats.RemoteFetches += r.RemoteFetches
		stats.RemoteBytes += r.RemoteBytes
		stats.CacheHits += r.CacheHits
		stats.CacheHitBytes += r.CacheHitBytes
		stats.PhaseMax.MaxWith(r.Phases)
	}
	return stats, nil
}

// migratingAssignment returns the explicit per-server strip assignment for
// an input whose layout is mid-migration, derived from the output file's
// frozen layout — nil when the input layout is stable and the healthy
// nil-Strips contract applies.
func migratingAssignment(fs *pfs.FileSystem, input, output string) map[int][]int64 {
	in, ok := fs.Meta(input)
	if !ok {
		return nil
	}
	if _, migrating := in.Layout.(*layout.Migrating); !migrating {
		return nil
	}
	out, ok := fs.Meta(output)
	if !ok {
		return nil
	}
	assign := make(map[int][]int64)
	for s := int64(0); s < in.Strips(); s++ {
		owner := out.Layout.Primary(s)
		assign[owner] = append(assign[owner], s)
	}
	return assign
}
