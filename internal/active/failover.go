package active

import (
	"fmt"
	"sort"
	"strings"

	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/pfs"
	"github.com/hpcio/das/internal/sim"
	"github.com/hpcio/das/internal/simnet"
)

// maxDispatchRounds bounds how many times the client reassigns strips
// after mid-execution crashes before giving up. Each round only touches
// the strips whose server died, so under any single-failure plan round
// two finishes the job.
const maxDispatchRounds = 4

// NoLiveCopyError reports that an offloaded operation cannot run because a
// strip of its input has no copy on any live server. It unwraps to
// pfs.ErrNoLiveCopy, so callers can match either the sentinel or the
// concrete strip. Strip is -1 when a server-side fetch hit the condition
// and only the message crossed the wire.
type NoLiveCopyError struct {
	File  string
	Strip int64
}

func (e *NoLiveCopyError) Error() string {
	if e.Strip < 0 {
		return fmt.Sprintf("active: %s: %v", e.File, pfs.ErrNoLiveCopy)
	}
	return fmt.Sprintf("active: %s strip %d: %v", e.File, e.Strip, pfs.ErrNoLiveCopy)
}

func (e *NoLiveCopyError) Unwrap() error { return pfs.ErrNoLiveCopy }

// execDegraded dispatches an offloaded operation while the fault layer is
// active. Every input strip is assigned to its first live holder (primary
// when up, else a replica holder), each engaged server receives its
// explicit strip list, and a server that crashes mid-execution gets its
// strips reassigned in the next round. A strip with no live copy fails the
// operation with NoLiveCopyError — the caller's cue to degrade to normal
// I/O.
func (c *Client) execDegraded(p *sim.Proc, op, input, output string, mode FetchMode) (ExecStats, error) {
	clu := c.fs.Cluster()
	in, ok := c.fs.Meta(input)
	if !ok {
		return ExecStats{}, fmt.Errorf("active: unknown input %q", input)
	}
	out, ok := c.fs.Meta(output)
	if !ok {
		return ExecStats{}, fmt.Errorf("active: unknown output %q", output)
	}
	f := clu.Faults
	quantum := c.fs.Retry.Quantum
	pending := make([]int64, 0, in.Strips())
	for s := int64(0); s < in.Strips(); s++ {
		pending = append(pending, s)
	}
	var stats ExecStats
	engaged := make(map[int]bool)
	for round := 0; len(pending) > 0; round++ {
		if round >= maxDispatchRounds {
			return ExecStats{}, fmt.Errorf("active: %d strips unprocessed after %d dispatch rounds: %w",
				len(pending), round, pfs.ErrTimeout)
		}
		stats.Rounds = round + 1
		// LocalOnly assumes the verified layout's placement, which a dead
		// server invalidates: a failover holder's halo can live off-node.
		// Escalate to whole-strip fetches so the run still completes.
		effMode := mode
		if effMode == LocalOnly && clu.AnyStorageDown() {
			effMode = FetchWholeStrips
		}
		assign := make(map[int][]int64)
		var order []int
		// Assignment follows the OUTPUT layout: identical to the input's
		// when the layouts agree, and the stable frozen snapshot when the
		// input is mid-migration (where the input's shifting placement
		// could double- or zero-assign a strip between rounds).
		for _, s := range pending {
			owner, ok := layout.FirstLiveHolder(out.Layout, s, func(srv int) bool { return !clu.ServerDown(srv) })
			if !ok {
				return ExecStats{}, &NoLiveCopyError{File: input, Strip: s}
			}
			if _, seen := assign[owner]; !seen {
				order = append(order, owner)
			}
			assign[owner] = append(assign[owner], s)
		}
		sort.Ints(order)
		type result struct {
			srv    int
			strips []int64
			resp   execResp
			ok     bool
		}
		sigs := make([]*sim.Signal[result], 0, len(order))
		for _, srv := range order {
			srv, strips := srv, assign[srv]
			done := sim.NewSignal[result](clu.Eng, "as-exec-degraded")
			sigs = append(sigs, done)
			p.Spawn("as-dispatch-degraded", func(d *sim.Proc) {
				toID := clu.StorageID(srv)
				inc := f.Incarnation(toID)
				crashed := func() bool { return f.Down(toID) || f.Incarnation(toID) != inc }
				resp, delivered := clu.Net.CallCancelable(d, simnet.Message{
					From:    c.nodeID,
					To:      toID,
					Port:    Port,
					Size:    headerBytes,
					Class:   clu.ClassBetween(c.nodeID, toID),
					Payload: execReq{Op: op, Input: input, Output: output, Mode: effMode, Strips: strips},
				}, quantum, 0, crashed)
				r := result{srv: srv, strips: strips}
				if delivered {
					r.resp, r.ok = resp.Payload.(execResp)
				}
				done.Fire(r)
			})
		}
		pending = pending[:0]
		for _, r := range sim.WaitAll(p, sigs) {
			if !r.ok {
				// The server crashed mid-execution (or replied garbage):
				// its strips return to the pool for the next round.
				clu.Recovery.AddExecRetry()
				pending = append(pending, r.strips...)
				continue
			}
			if r.resp.Err != "" {
				if strings.Contains(r.resp.Err, pfs.ErrNoLiveCopy.Error()) {
					// A server-side dependent-strip fetch found no live
					// holder; only the error string crossed the wire.
					return ExecStats{}, &NoLiveCopyError{File: input, Strip: -1}
				}
				return ExecStats{}, fmt.Errorf("active: %s", r.resp.Err)
			}
			if !engaged[r.srv] {
				engaged[r.srv] = true
				stats.Servers++
			}
			stats.Strips += r.resp.Strips
			stats.Elements += r.resp.Elements
			stats.RemoteFetches += r.resp.RemoteFetches
			stats.RemoteBytes += r.resp.RemoteBytes
			stats.CacheHits += r.resp.CacheHits
			stats.CacheHitBytes += r.resp.CacheHitBytes
			stats.PhaseMax.MaxWith(r.resp.Phases)
		}
		sort.Slice(pending, func(i, j int) bool { return pending[i] < pending[j] })
	}
	return stats, nil
}
