package active

import (
	"math"
	"testing"

	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/sim"
)

func TestExecReduceMatchesSequential(t *testing.T) {
	rig := newRig(t, layout.NewRoundRobin(4), testW, testH, testStrip)
	want := kernels.ReduceAll(kernels.Stats{}, rig.g)
	var got []float64
	var stats ReduceStats
	rig.run(t, func(p *sim.Proc) error {
		var err error
		got, stats, err = NewClient(rig.fs, rig.clu.ComputeID(0)).ExecReduce(p, kernels.Stats{}, "in")
		return err
	})
	if got[kernels.StatCount] != want[kernels.StatCount] ||
		got[kernels.StatMin] != want[kernels.StatMin] ||
		got[kernels.StatMax] != want[kernels.StatMax] ||
		math.Abs(got[kernels.StatSum]-want[kernels.StatSum]) > 1e-6 {
		t.Errorf("aggregate %v, want %v", got, want)
	}
	if stats.Servers != 4 || stats.Elements != rig.g.Len() {
		t.Errorf("stats %+v", stats)
	}
	// Only partial aggregates return: 5 values per server plus headers.
	if stats.ReturnBytes != int64(4*5*8) {
		t.Errorf("ReturnBytes = %d, want %d", stats.ReturnBytes, 4*5*8)
	}
	if rig.clu.Traffic.Bytes(metrics.ServerToClient) > 8192 {
		t.Errorf("reduction moved %d bytes to the client", rig.clu.Traffic.Bytes(metrics.ServerToClient))
	}
}

func TestExecReduceWorksOnReplicatedLayout(t *testing.T) {
	// Reductions fold primary strips only; replicas must not be counted
	// twice.
	rig := newRig(t, layout.NewGroupedReplicated(4, 8, 2), testW, testH, testStrip)
	var got []float64
	rig.run(t, func(p *sim.Proc) error {
		var err error
		got, _, err = NewClient(rig.fs, rig.clu.ComputeID(0)).ExecReduce(p, kernels.Stats{}, "in")
		return err
	})
	if got[kernels.StatCount] != float64(rig.g.Len()) {
		t.Errorf("count %v, want %d (replicas double-counted?)", got[kernels.StatCount], rig.g.Len())
	}
}

func TestExecReduceErrors(t *testing.T) {
	rig := newRig(t, layout.NewRoundRobin(4), testW, testH, testStrip)
	var errMismatch, errUnknownInput error
	var matched []float64
	rig.run(t, func(p *sim.Proc) error {
		c := NewClient(rig.fs, rig.clu.ComputeID(0))
		// The server registers histogram with 32 bins; a client handle
		// parameterized with 4 bins must be rejected, not silently merged.
		_, _, errMismatch = c.ExecReduce(p, kernels.Histogram{Bins: 4, Lo: 0, Hi: 1}, "in")
		_, _, errUnknownInput = c.ExecReduce(p, kernels.Stats{}, "missing")
		var err error
		matched, _, err = c.ExecReduce(p, kernels.Histogram{Bins: 32, Lo: 0, Hi: 256}, "in")
		return err
	})
	if errMismatch == nil {
		t.Error("mismatched reducer parametrization accepted")
	}
	if errUnknownInput == nil {
		t.Error("unknown input accepted")
	}
	if len(matched) != 32 {
		t.Errorf("matched histogram has %d bins", len(matched))
	}
}

func TestPhasesAddAndMax(t *testing.T) {
	a := Phases{LocalRead: 1, Fetch: 2, Compute: 3, Write: 4, Forward: 5}
	b := Phases{LocalRead: 5, Fetch: 1, Compute: 3, Write: 2, Forward: 9}
	sum := a
	sum.Add(b)
	if sum.LocalRead != 6 || sum.Fetch != 3 || sum.Compute != 6 || sum.Write != 6 || sum.Forward != 14 {
		t.Errorf("Add = %+v", sum)
	}
	m := a
	m.MaxWith(b)
	if m.LocalRead != 5 || m.Fetch != 2 || m.Compute != 3 || m.Write != 4 || m.Forward != 9 {
		t.Errorf("MaxWith = %+v", m)
	}
}
