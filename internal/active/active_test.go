package active

import (
	"testing"

	"github.com/hpcio/das/internal/cluster"
	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/pfs"
	"github.com/hpcio/das/internal/sim"
	"github.com/hpcio/das/internal/workload"
)

// testRig deploys a small platform with the AS service and one ingested
// raster under the given layout.
type testRig struct {
	clu *cluster.Cluster
	fs  *pfs.FileSystem
	g   *grid.Grid
}

func newRig(t *testing.T, lay layout.Layout, w, h int, stripSize int64) *testRig {
	t.Helper()
	cfg := cluster.Default()
	cfg.ComputeNodes, cfg.StorageNodes = 4, 4
	clu, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs := pfs.New(clu)
	Deploy(fs, kernels.Default(), nil)
	g := workload.Terrain(w, h, 11)
	if _, err := fs.Create("in", g.SizeBytes(), lay, pfs.CreateOptions{
		StripSize: stripSize, Width: w, Height: h, ElemSize: grid.ElemSize,
	}); err != nil {
		t.Fatal(err)
	}
	rig := &testRig{clu: clu, fs: fs, g: g}
	rig.run(t, func(p *sim.Proc) error {
		return fs.NewClient(clu.ComputeID(0)).WriteAll(p, "in", g.Bytes())
	})
	return rig
}

func (r *testRig) run(t *testing.T, fn func(p *sim.Proc) error) {
	t.Helper()
	var inner error
	r.clu.Eng.Spawn("test", func(p *sim.Proc) { inner = fn(p) })
	if err := r.clu.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if inner != nil {
		t.Fatal(inner)
	}
}

func (r *testRig) createOut(t *testing.T, name string) {
	t.Helper()
	m, _ := r.fs.Meta("in")
	if _, err := r.fs.Create(name, m.Size, m.Layout, pfs.CreateOptions{
		StripSize: m.StripSize, Width: m.Width, Height: m.Height, ElemSize: m.ElemSize,
	}); err != nil {
		t.Fatal(err)
	}
}

func (r *testRig) fetch(t *testing.T, name string) *grid.Grid {
	t.Helper()
	var data []byte
	r.run(t, func(p *sim.Proc) error {
		var err error
		data, err = r.fs.NewClient(r.clu.ComputeID(0)).ReadAll(p, name)
		return err
	})
	m, _ := r.fs.Meta(name)
	g, err := grid.FromBytes(m.Width, m.Height, data)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// Strips of 64 elements (512 bytes) on a width-64 raster: one row per
// strip, dependence spans exactly one strip each way.
const (
	testW     = 64
	testH     = 32
	testStrip = 64 * grid.ElemSize
)

func TestNASWholeStripsMatchesReference(t *testing.T) {
	rig := newRig(t, layout.NewRoundRobin(4), testW, testH, testStrip)
	rig.createOut(t, "out")
	var stats ExecStats
	rig.run(t, func(p *sim.Proc) error {
		var err error
		stats, err = NewClient(rig.fs, rig.clu.ComputeID(0)).Exec(p, "flow-routing", "in", "out", FetchWholeStrips)
		return err
	})
	want := kernels.Apply(kernels.FlowRouting{}, rig.g)
	if got := rig.fetch(t, "out"); !got.Equal(want) {
		t.Error("NAS output differs from sequential reference")
	}
	if stats.RemoteFetches == 0 || stats.RemoteBytes == 0 {
		t.Errorf("NAS over round-robin fetched nothing: %+v", stats)
	}
	if stats.Elements != rig.g.Len() {
		t.Errorf("processed %d elements, want %d", stats.Elements, rig.g.Len())
	}
	if rig.clu.Traffic.Bytes(metrics.ServerToServer) < stats.RemoteBytes {
		t.Error("server↔server traffic below reported fetch bytes")
	}
}

func TestDASLocalOnlyMatchesReferenceWithoutFetches(t *testing.T) {
	// Halo 2 because the ±(W+1) reach spans two strip boundaries; r = 8
	// keeps the replication overhead at the default 2·halo/r = 0.5.
	rig := newRig(t, layout.NewGroupedReplicated(4, 8, 2), testW, testH, testStrip)
	rig.createOut(t, "out")
	ssBefore := rig.clu.Traffic.Bytes(metrics.ServerToServer)
	var stats ExecStats
	rig.run(t, func(p *sim.Proc) error {
		var err error
		stats, err = NewClient(rig.fs, rig.clu.ComputeID(0)).Exec(p, "gaussian-filter", "in", "out", LocalOnly)
		return err
	})
	want := kernels.Apply(kernels.Gaussian{}, rig.g)
	if got := rig.fetch(t, "out"); !got.Equal(want) {
		t.Error("DAS output differs from sequential reference")
	}
	if stats.RemoteFetches != 0 {
		t.Errorf("local-only run fetched %d strips", stats.RemoteFetches)
	}
	// The only server↔server traffic is output replica forwarding: half
	// the output strips (plus request/ack headers) at overhead 0.5.
	ssDelta := rig.clu.Traffic.Bytes(metrics.ServerToServer) - ssBefore
	if ssDelta == 0 {
		t.Error("expected output replica forwarding traffic")
	}
	if ssDelta >= stats.Elements*grid.ElemSize {
		t.Errorf("replica traffic %d should be below full output size %d", ssDelta, stats.Elements*grid.ElemSize)
	}
}

func TestLocalOnlyFailsWhenLayoutInsufficient(t *testing.T) {
	rig := newRig(t, layout.NewRoundRobin(4), testW, testH, testStrip)
	rig.createOut(t, "out")
	var execErr error
	rig.run(t, func(p *sim.Proc) error {
		_, execErr = NewClient(rig.fs, rig.clu.ComputeID(0)).Exec(p, "flow-routing", "in", "out", LocalOnly)
		return nil
	})
	if execErr == nil {
		t.Fatal("local-only over round-robin should fail")
	}
}

func TestFetchRowsMovesFewerBytesThanWholeStrips(t *testing.T) {
	run := func(mode FetchMode) int64 {
		rig := newRig(t, layout.NewRoundRobin(4), testW, testH, testStrip)
		rig.createOut(t, "out")
		var stats ExecStats
		rig.run(t, func(p *sim.Proc) error {
			var err error
			stats, err = NewClient(rig.fs, rig.clu.ComputeID(0)).Exec(p, "median-filter", "in", "out", mode)
			return err
		})
		// Output must stay correct regardless of transport.
		want := kernels.Apply(kernels.Median{}, rig.g)
		if got := rig.fetch(t, "out"); !got.Equal(want) {
			t.Fatal("output differs from reference")
		}
		return stats.RemoteBytes
	}
	whole := run(FetchWholeStrips)
	rows := run(FetchRows)
	if rows >= whole {
		t.Errorf("row fetches moved %d bytes, whole strips %d", rows, whole)
	}
}

func TestExecUnknownOperatorFails(t *testing.T) {
	rig := newRig(t, layout.NewRoundRobin(4), testW, testH, testStrip)
	rig.createOut(t, "out")
	var execErr error
	rig.run(t, func(p *sim.Proc) error {
		_, execErr = NewClient(rig.fs, rig.clu.ComputeID(0)).Exec(p, "nope", "in", "out", FetchWholeStrips)
		return nil
	})
	if execErr == nil {
		t.Error("unknown operator accepted")
	}
}

func TestExecMissingOutputFails(t *testing.T) {
	rig := newRig(t, layout.NewRoundRobin(4), testW, testH, testStrip)
	var execErr error
	rig.run(t, func(p *sim.Proc) error {
		_, execErr = NewClient(rig.fs, rig.clu.ComputeID(0)).Exec(p, "flow-routing", "in", "missing", FetchWholeStrips)
		return nil
	})
	if execErr == nil {
		t.Error("missing output accepted")
	}
}

func TestFetchModeString(t *testing.T) {
	if FetchWholeStrips.String() != "whole-strips" || FetchRows.String() != "rows" || LocalOnly.String() != "local-only" {
		t.Error("mode names wrong")
	}
}
