package experiments

import (
	"fmt"

	"github.com/hpcio/das/internal/core"
	"github.com/hpcio/das/internal/fault"
	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/restripe"
	"github.com/hpcio/das/internal/sim"
)

// restripeDrainTimeout bounds how long a variant waits for background
// migrations; the small experiment converges in simulated milliseconds.
const restripeDrainTimeout = 60 * sim.Second

// RestripeMigrationReport is the migrator's counter snapshot for one
// variant, plus the simulated time the post-round drain consumed.
type RestripeMigrationReport struct {
	Planned         int64   `json:"planned"`
	Completed       int64   `json:"completed"`
	StripsMoved     int64   `json:"strips_moved"`
	BytesCopied     int64   `json:"bytes_copied"`
	ZeroCopyFlips   int64   `json:"zero_copy_flips"`
	ThrottleStalls  int64   `json:"throttle_stalls"`
	Resumes         int64   `json:"resumes"`
	Recopies        int64   `json:"recopies"`
	ConvergeSeconds float64 `json:"converge_seconds"`
	FinalLayout     string  `json:"final_layout"`
}

// RestripeVariantReport is one scheme's measurements across the repeated
// rounds of the restripe experiment.
type RestripeVariantReport struct {
	Name             string                   `json:"name"`
	Rounds           int                      `json:"rounds"`
	ExecTimeSeconds  []float64                `json:"exec_time_seconds"`
	RemoteBytes      []int64                  `json:"remote_bytes"`
	Offloaded        []bool                   `json:"offloaded"`
	TotalRemoteBytes int64                    `json:"total_remote_bytes"`
	Migration        *RestripeMigrationReport `json:"migration,omitempty"`
}

// RestripeCrashReport records the crash-resilience demonstration: a
// storage server crashes while the migration is copying and restarts
// later; the migration parks, resumes from its cursor, and converges with
// every output byte-identical.
type RestripeCrashReport struct {
	CrashServer     int     `json:"crash_server"`
	CrashAtSeconds  float64 `json:"crash_at_seconds"`
	RestartSeconds  float64 `json:"restart_at_seconds"`
	Resumes         int64   `json:"resumes"`
	Completed       int64   `json:"completed"`
	ConvergeSeconds float64 `json:"converge_seconds"`
	Verified        bool    `json:"outputs_verified"`
}

// RestripeRunReport is the JSON-able record of one restripe experiment
// (BENCH_restripe.json).
type RestripeRunReport struct {
	Op       string                  `json:"op"`
	SizeGB   int                     `json:"size_gb"`
	Nodes    int                     `json:"nodes"`
	Rounds   int                     `json:"rounds"`
	Variants []RestripeVariantReport `json:"variants"`
	Crash    *RestripeCrashReport    `json:"crash"`
	Verified bool                    `json:"outputs_verified"`
}

// RestripeExperiment compares NAS and DAS with and without the online
// restriping subsystem on the repeated dependent-kernel workload
// (flow-routing over the unimproved round-robin layout): round one pays
// the dependent-halo traffic that existing active storage systems always
// pay, the migrator notices and moves the file to the grouped-replicated
// distribution in the background, and every later round finds its
// dependence local — for DAS, the previously rejected offload flips to an
// accepted one. Every round of every variant is verified byte-identical
// to the sequential reference, and a final section demonstrates the
// crash-safe resume of a migration interrupted mid-copy.
func (c Config) RestripeExperiment(rounds int, rcfg restripe.Config) (*Result, *RestripeRunReport, error) {
	if rounds < 2 {
		rounds = 2
	}
	if _, err := rcfg.Normalize(); err != nil {
		return nil, nil, err
	}
	const op = "flow-routing"
	size := c.SizesGB[0]
	servers := c.Nodes / 2

	r := &Result{
		ID:     "restripe",
		Title:  fmt.Sprintf("Online restriping over %d rounds (%s, %d GB)", rounds, op, size),
		XLabel: "round",
		YLabel: "dependent-halo bytes fetched",
	}
	report := &RestripeRunReport{Op: op, SizeGB: size, Nodes: c.Nodes, Rounds: rounds}

	g, err := c.dataset(op, size)
	if err != nil {
		return nil, nil, err
	}
	k, ok := kernels.Default().Lookup(op)
	if !ok {
		return nil, nil, fmt.Errorf("experiments: %s kernel missing", op)
	}
	want := kernels.Apply(k, g)

	rr := layout.NewRoundRobin(servers)
	type variant struct {
		name      string
		scheme    core.Scheme
		restriped bool
	}
	variants := []variant{
		{"NAS", core.NAS, false},
		{"NAS+restripe", core.NAS, true},
		{"DAS-static", core.DAS, false},
		{"DAS+restripe", core.DAS, true},
	}
	for _, v := range variants {
		sys, err := c.buildSystem(c.Nodes, size, op, rr)
		if err != nil {
			return nil, nil, err
		}
		if v.restriped {
			if err := sys.EnableRestripe(rcfg); err != nil {
				sys.Close()
				return nil, nil, err
			}
		}
		vr := RestripeVariantReport{Name: v.name, Rounds: rounds}
		for round := 0; round < rounds; round++ {
			out := fmt.Sprintf("output.%d", round)
			rep, err := sys.Execute(core.Request{Op: op, Input: "input", Output: out, Scheme: v.scheme})
			if err != nil {
				sys.Close()
				return nil, nil, fmt.Errorf("restripe %s round %d: %w", v.name, round, err)
			}
			got, err := sys.FetchGrid(out)
			if err != nil {
				sys.Close()
				return nil, nil, fmt.Errorf("restripe %s round %d readback: %w", v.name, round, err)
			}
			if !got.Equal(want) {
				sys.Close()
				return nil, nil, fmt.Errorf("restripe %s round %d diverged from the sequential reference", v.name, round)
			}
			vr.ExecTimeSeconds = append(vr.ExecTimeSeconds, rep.ExecTime.Seconds())
			vr.RemoteBytes = append(vr.RemoteBytes, rep.Stats.RemoteBytes)
			vr.Offloaded = append(vr.Offloaded, rep.Offloaded)
			vr.TotalRemoteBytes += rep.Stats.RemoteBytes
			r.Add(v.name, float64(round+1), float64(rep.Stats.RemoteBytes))
			if v.restriped && round == 0 {
				// Let the background migration the first round triggered
				// converge before the post-migration rounds measure it.
				converged, dt, err := sys.DrainRestripe(restripeDrainTimeout)
				if err != nil {
					sys.Close()
					return nil, nil, fmt.Errorf("restripe %s drain: %w", v.name, err)
				}
				if !converged {
					sys.Close()
					return nil, nil, fmt.Errorf("restripe %s: migration did not converge within %v", v.name, restripeDrainTimeout)
				}
				m, _ := sys.FS.Meta("input")
				rs := sys.Clu.RestripeStats
				vr.Migration = &RestripeMigrationReport{
					Planned: rs.Planned(), Completed: rs.Completed(),
					StripsMoved: rs.StripsMoved(), BytesCopied: rs.BytesCopied(),
					ZeroCopyFlips: rs.ZeroCopyFlips(), ThrottleStalls: rs.ThrottleStalls(),
					Resumes: rs.Resumes(), Recopies: rs.Recopies(),
					ConvergeSeconds: dt.Seconds(),
					FinalLayout:     m.Layout.Name(),
				}
			}
		}
		// Re-verify the input itself: the migration must not have changed a
		// byte of it.
		in, err := sys.FetchGrid("input")
		if err != nil {
			sys.Close()
			return nil, nil, fmt.Errorf("restripe %s input readback: %w", v.name, err)
		}
		if !in.Equal(g) {
			sys.Close()
			return nil, nil, fmt.Errorf("restripe %s: migration corrupted the input", v.name)
		}
		report.Variants = append(report.Variants, vr)
		sys.Close()
	}
	report.Verified = true

	nas, nasRe := report.Variants[0], report.Variants[1]
	dasRe := report.Variants[3]
	last := rounds - 1
	if nasRe.RemoteBytes[last] != 0 {
		return nil, nil, fmt.Errorf("restripe: post-migration NAS round still fetched %d dependent bytes", nasRe.RemoteBytes[last])
	}
	if !dasRe.Offloaded[last] || dasRe.Offloaded[0] {
		return nil, nil, fmt.Errorf("restripe: DAS offload decision did not flip (round 0 %v, round %d %v)",
			dasRe.Offloaded[0], last, dasRe.Offloaded[last])
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("NAS fetches %s of dependent-halo bytes per round forever; with online restriping the first round's %s drop to zero after the background migration (%d strips, %s copied, converged in %.3fs simulated)",
			metrics.FormatBytes(nas.RemoteBytes[0]), metrics.FormatBytes(nasRe.RemoteBytes[0]),
			nasRe.Migration.StripsMoved, metrics.FormatBytes(nasRe.Migration.BytesCopied),
			nasRe.Migration.ConvergeSeconds),
		fmt.Sprintf("DAS over the static round-robin layout rejects the offload every round; after the online migration to %s the same request offloads with fully local dependence",
			dasRe.Migration.FinalLayout),
		"all rounds of all variants, and the migrated input itself, verified byte-identical to the sequential reference")

	crash, err := c.restripeCrash(op, size, rr, rcfg, want, g)
	if err != nil {
		return nil, nil, err
	}
	report.Crash = crash
	r.Notes = append(r.Notes,
		fmt.Sprintf("crash demo: server %d down mid-migration; %d parked moves resumed from the cursor after restart, migration completed, outputs byte-identical",
			crash.CrashServer, crash.Resumes))
	return r, report, nil
}

// restripeCrash interrupts a live migration with a storage-server crash
// and verifies the cursor-based resume: the migration parks while the
// server is down, resumes after the restart, and converges with the input
// and a concurrently executed round both byte-identical.
func (c Config) restripeCrash(op string, size int, rr layout.Layout, rcfg restripe.Config, want, g *grid.Grid) (*RestripeCrashReport, error) {
	sys, err := c.buildSystem(c.Nodes, size, op, rr)
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	// Small batches keep the migration slow enough for the crash to land
	// mid-copy.
	rcfg.MovesPerTick = 2
	rcfg.RetryDelay = 5 * sim.Millisecond
	if err := sys.EnableRestripe(rcfg); err != nil {
		return nil, err
	}
	if _, err := sys.Execute(core.Request{Op: op, Input: "input", Output: "crash.trigger", Scheme: core.NAS}); err != nil {
		return nil, fmt.Errorf("restripe crash trigger: %w", err)
	}
	if sys.Restripe.ActiveCount() == 0 {
		return nil, fmt.Errorf("restripe crash: no migration admitted")
	}
	crashAt := 200 * sim.Microsecond
	restartAt := 40 * sim.Millisecond
	rep := &RestripeCrashReport{
		CrashServer:    1,
		CrashAtSeconds: crashAt.Seconds(),
		RestartSeconds: restartAt.Seconds(),
	}
	plan := fault.Plan{Events: []fault.Event{
		{At: crashAt, Kind: fault.Crash, Server: rep.CrashServer},
		{At: restartAt, Kind: fault.Restart, Server: rep.CrashServer},
	}}
	if err := sys.Clu.InstallFaultPlan(plan); err != nil {
		return nil, err
	}
	// A foreground round executes while the crash interrupts both it and
	// the background migration.
	if _, err := sys.Execute(core.Request{Op: op, Input: "input", Output: "crash.during", Scheme: core.NAS}); err != nil {
		return nil, fmt.Errorf("restripe crash round: %w", err)
	}
	converged, dt, err := sys.DrainRestripe(restripeDrainTimeout)
	if err != nil {
		return nil, err
	}
	if !converged {
		return nil, fmt.Errorf("restripe crash: migration did not converge after the restart")
	}
	rs := sys.Clu.RestripeStats
	rep.Resumes = rs.Resumes()
	rep.Completed = rs.Completed()
	rep.ConvergeSeconds = dt.Seconds()
	if rep.Resumes == 0 {
		return nil, fmt.Errorf("restripe crash: migration completed without resuming a parked move")
	}
	for _, check := range []struct {
		file string
		want *grid.Grid
	}{{"crash.trigger", want}, {"crash.during", want}, {"input", g}} {
		got, err := sys.FetchGrid(check.file)
		if err != nil {
			return nil, fmt.Errorf("restripe crash %s readback: %w", check.file, err)
		}
		if !got.Equal(check.want) {
			return nil, fmt.Errorf("restripe crash: %s diverged from the reference", check.file)
		}
	}
	rep.Verified = true
	return rep, nil
}
