package experiments

import (
	"fmt"
	"strings"

	"github.com/hpcio/das/internal/core"
	"github.com/hpcio/das/internal/kernels"
)

// TableI reproduces Table I: the data analysis kernels and their roles.
// It is descriptive rather than measured, so it renders directly from the
// kernel registry.
func TableI() string {
	var b strings.Builder
	b.WriteString("TABLE I — Description of Data Analysis Kernels\n")
	reg := kernels.Default()
	for _, name := range []string{"flow-routing", "flow-accumulation", "gaussian-filter"} {
		k, _ := reg.Lookup(name)
		fmt.Fprintf(&b, "%-18s  %s\n", k.Name(), k.Description())
	}
	return b.String()
}

// Fig10 reproduces Fig. 10: execution time of the three kernels under NAS
// and TS as the data size grows, on the default 24-node platform. The
// paper's point: ignoring data dependence makes active storage *slower*
// than traditional storage.
func (c Config) Fig10() (*Result, error) {
	r := &Result{
		ID:     "fig10",
		Title:  "Performance impact of data dependence (NAS vs TS)",
		XLabel: "data size (GB)",
		YLabel: "execution time (s)",
	}
	for _, k := range paperKernels {
		for _, size := range c.SizesGB {
			for _, scheme := range []core.Scheme{core.NAS, core.TS} {
				rep, err := c.RunOne(scheme, k.op, size, c.Nodes)
				if err != nil {
					return nil, fmt.Errorf("fig10 %s/%v/%dGB: %w", k.op, scheme, size, err)
				}
				r.Add(fmt.Sprintf("%s_%s", k.label, scheme), float64(size), rep.ExecTime.Seconds())
			}
		}
	}
	r.Notes = append(r.Notes, ratioNote(r, c, "NAS", "TS"))
	return r, nil
}

// Fig11 reproduces Fig. 11: execution time of each scheme on the 24 GB
// dataset, 24 nodes. The paper reports DAS over 30% faster than TS and
// over 60% faster than NAS.
func (c Config) Fig11() (*Result, error) {
	size := c.SizesGB[0]
	r := &Result{
		ID:     "fig11",
		Title:  fmt.Sprintf("Execution time of each scheme (%d GB, %d nodes)", size, c.Nodes),
		XLabel: "kernel",
		YLabel: "execution time (s)",
	}
	for ki, k := range paperKernels {
		for _, scheme := range []core.Scheme{core.NAS, core.DAS, core.TS} {
			rep, err := c.RunOne(scheme, k.op, size, c.Nodes)
			if err != nil {
				return nil, fmt.Errorf("fig11 %s/%v: %w", k.op, scheme, err)
			}
			r.Add(scheme.String(), float64(ki), rep.ExecTime.Seconds())
		}
		r.Notes = append(r.Notes, fmt.Sprintf("x=%d is %s", ki, k.label))
	}
	for ki, k := range paperKernels {
		das, _ := r.Value("DAS", float64(ki))
		ts, _ := r.Value("TS", float64(ki))
		nas, _ := r.Value("NAS", float64(ki))
		r.Notes = append(r.Notes, fmt.Sprintf(
			"%s: DAS improves %.0f%% over TS, %.0f%% over NAS (paper: >30%%, >60%%)",
			k.label, 100*(1-das/ts), 100*(1-das/nas)))
	}
	return r, nil
}

// Fig12 reproduces Fig. 12: execution time of all three schemes as the
// data size grows from 24 to 60 GB. DAS is expected to show the smallest
// growth.
func (c Config) Fig12() (*Result, error) {
	r := &Result{
		ID:     "fig12",
		Title:  "Scalability with varied data set size",
		XLabel: "data size (GB)",
		YLabel: "execution time (s)",
	}
	for _, k := range paperKernels {
		for _, size := range c.SizesGB {
			for _, scheme := range []core.Scheme{core.NAS, core.DAS, core.TS} {
				rep, err := c.RunOne(scheme, k.op, size, c.Nodes)
				if err != nil {
					return nil, fmt.Errorf("fig12 %s/%v/%dGB: %w", k.op, scheme, size, err)
				}
				r.Add(fmt.Sprintf("%s_%s", k.label, scheme), float64(size), rep.ExecTime.Seconds())
			}
		}
	}
	r.Notes = append(r.Notes, growthNote(r, c))
	return r, nil
}

// Fig13 reproduces Fig. 13: execution time of DAS and TS with the node
// count growing from 24 to 60 at the largest data size. Both schemes are
// expected to scale.
func (c Config) Fig13() (*Result, error) {
	r := &Result{
		ID:     "fig13",
		Title:  "Scalability with varied number of nodes",
		XLabel: "nodes",
		YLabel: "execution time (s)",
	}
	size := c.SizesGB[len(c.SizesGB)-1]
	for _, k := range paperKernels {
		for _, nodes := range c.NodeSweep {
			for _, scheme := range []core.Scheme{core.DAS, core.TS} {
				rep, err := c.RunOne(scheme, k.op, size, nodes)
				if err != nil {
					return nil, fmt.Errorf("fig13 %s/%v/%d nodes: %w", k.op, scheme, nodes, err)
				}
				r.Add(fmt.Sprintf("%s_%s", k.label, scheme), float64(nodes), rep.ExecTime.Seconds())
			}
		}
	}
	return r, nil
}

// Fig14 reproduces Fig. 14: sustained bandwidth of the flow-routing
// operation under each scheme, normalized to TS. Sustained bandwidth is
// the dataset size over the operation's execution time.
func (c Config) Fig14() (*Result, error) {
	r := &Result{
		ID:     "fig14",
		Title:  "Normalized sustained bandwidth (flow-routing)",
		XLabel: "data size (GB)",
		YLabel: "bandwidth normalized to TS",
	}
	for _, size := range c.SizesGB {
		times := make(map[core.Scheme]float64)
		for _, scheme := range []core.Scheme{core.NAS, core.DAS, core.TS} {
			rep, err := c.RunOne(scheme, "flow-routing", size, c.Nodes)
			if err != nil {
				return nil, fmt.Errorf("fig14 %v/%dGB: %w", scheme, size, err)
			}
			times[scheme] = rep.ExecTime.Seconds()
		}
		for _, scheme := range []core.Scheme{core.NAS, core.DAS, core.TS} {
			// bandwidth ∝ size/time; normalized to TS the size cancels.
			r.Add(scheme.String(), float64(size), times[core.TS]/times[scheme])
		}
	}
	return r, nil
}

// ratioNote summarizes how much slower series suffixed a run than b,
// averaged across kernels and sizes.
func ratioNote(r *Result, c Config, a, b string) string {
	var sum float64
	var n int
	for _, k := range paperKernels {
		for _, size := range c.SizesGB {
			va, oka := r.Value(fmt.Sprintf("%s_%s", k.label, a), float64(size))
			vb, okb := r.Value(fmt.Sprintf("%s_%s", k.label, b), float64(size))
			if oka && okb && vb > 0 {
				sum += va / vb
				n++
			}
		}
	}
	if n == 0 {
		return "no data"
	}
	return fmt.Sprintf("%s averages %.2fx the execution time of %s (paper: NAS well above TS)", a, sum/float64(n), b)
}

// growthNote reports the average relative execution-time growth per size
// step for each scheme.
func growthNote(r *Result, c Config) string {
	var parts []string
	for _, scheme := range []core.Scheme{core.NAS, core.DAS, core.TS} {
		var sum float64
		var n int
		for _, k := range paperKernels {
			series := fmt.Sprintf("%s_%s", k.label, scheme)
			for i := 1; i < len(c.SizesGB); i++ {
				prev, okp := r.Value(series, float64(c.SizesGB[i-1]))
				cur, okc := r.Value(series, float64(c.SizesGB[i]))
				if okp && okc && prev > 0 {
					sum += cur/prev - 1
					n++
				}
			}
		}
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%s +%.0f%%", scheme, 100*sum/float64(n)))
		}
	}
	return "mean growth per +12GB step: " + strings.Join(parts, ", ") + " (paper: DAS ≈ +15%, others ≈ +30%)"
}

// All runs every figure and table in paper order.
func (c Config) All() ([]*Result, error) {
	var out []*Result
	for _, f := range []func() (*Result, error){c.Fig10, c.Fig11, c.Fig12, c.Fig13, c.Fig14} {
		r, err := f()
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
