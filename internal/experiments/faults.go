package experiments

import (
	"fmt"

	"github.com/hpcio/das/internal/core"
	"github.com/hpcio/das/internal/fault"
	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/sim"
)

// restartDelay is how long a crashed server stays down in the schemes that
// need it back: well inside the PFS down-retry budget, so blocked requests
// bridge the outage instead of failing.
const restartDelay = 80 * sim.Millisecond

// SchemeRecovery is one scheme's fault-handling counters from a crashed
// run, in JSON-able form so `dasbench -json` can carry the degrade and
// failover events the human-readable notes already report.
type SchemeRecovery struct {
	Scheme          string  `json:"scheme"`
	HealthySeconds  float64 `json:"healthy_sim_seconds"`
	CrashedSeconds  float64 `json:"crashed_sim_seconds"`
	Degraded        bool    `json:"degraded"`
	DegradedReason  string  `json:"degraded_reason,omitempty"`
	Timeouts        int64   `json:"timeouts"`
	Retries         int64   `json:"retries"`
	FailoverReads   int64   `json:"failover_reads"`
	SkippedForwards int64   `json:"skipped_forwards"`
	DroppedMessages int64   `json:"dropped_messages"`
	ExecRetries     int64   `json:"exec_retries"`
	FaultEvents     int     `json:"fault_events_applied"`
}

// FaultFailover compares the three schemes when a storage server is lost
// halfway through the run (flow-routing, smallest dataset). Each scheme
// keeps its natural placement, which dictates its survival story:
//
//   - TS reads round-robin data with no replicas; the server comes back
//     after restartDelay and the PFS retry layer bridges the outage.
//   - NAS offloads onto the same unreplicated placement; the crash aborts
//     the dead server's dispatch and its strips are re-dispatched once the
//     server returns (were it never to return, the run would degrade to
//     normal I/O instead — see the core fault tests).
//   - DAS uses the fully mirrored grouped layout (halo = r) and never gets
//     the server back: the dead server's strips are reassigned to replica
//     holders mid-run.
//
// Every faulted run's output is verified byte-identical to the sequential
// reference; the notes record the recovery actions each scheme needed.
func (c Config) FaultFailover() (*Result, error) {
	r, _, err := c.FaultFailoverRecovery()
	return r, err
}

// FaultFailoverRecovery is FaultFailover plus the per-scheme recovery
// counters as structured data.
func (c Config) FaultFailoverRecovery() (*Result, []SchemeRecovery, error) {
	r := &Result{
		ID:     "faults",
		Title:  "One storage-server loss mid-run (flow-routing)",
		XLabel: "scheme",
		YLabel: "execution time (s)",
	}
	size := c.SizesGB[0]
	servers := c.Nodes / 2

	g, err := c.dataset("flow-routing", size)
	if err != nil {
		return nil, nil, err
	}
	k, ok := kernels.Default().Lookup("flow-routing")
	if !ok {
		return nil, nil, fmt.Errorf("experiments: flow-routing kernel missing")
	}
	want := kernels.Apply(k, g)

	// The mirrored layout every strip survives one crash under. Full
	// mirroring always moves more replica-maintenance bytes than normal I/O
	// would, so the bandwidth predictor alone would reject it; the DAS runs
	// below force the offload to measure the failover machinery itself.
	probe := layout.NewLocator(grid.ElemSize, c.StripSize, layout.NewRoundRobin(servers))
	halo := probe.RequiredHalo(int64(c.Width) + 1)
	mirrored := layout.NewGroupedReplicated(servers, halo, halo)

	type variant struct {
		scheme  core.Scheme
		lay     layout.Layout
		force   bool // DisablePrediction
		restart bool // bring the crashed server back after restartDelay
	}
	variants := []variant{
		{core.TS, layout.NewRoundRobin(servers), false, true},
		{core.NAS, layout.NewRoundRobin(servers), false, true},
		{core.DAS, mirrored, true, false},
	}
	const crashed = 1
	recs := make([]SchemeRecovery, 0, len(variants))
	for si, v := range variants {
		req := core.Request{
			Op: "flow-routing", Input: "input", Output: "output",
			Scheme: v.scheme, DisablePrediction: v.force,
		}

		healthy, err := c.buildSystem(c.Nodes, size, "flow-routing", v.lay)
		if err != nil {
			return nil, nil, err
		}
		healthyRep, err := healthy.Execute(req)
		healthy.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("faults %v healthy: %w", v.scheme, err)
		}
		r.Add(v.scheme.String()+"_healthy", float64(si), healthyRep.ExecTime.Seconds())

		sys, err := c.buildSystem(c.Nodes, size, "flow-routing", v.lay)
		if err != nil {
			return nil, nil, err
		}
		crashAt := healthyRep.ExecTime / 2
		plan := fault.Plan{Events: []fault.Event{
			{At: crashAt, Kind: fault.Crash, Server: crashed},
		}}
		if v.restart {
			plan.Events = append(plan.Events,
				fault.Event{At: crashAt + restartDelay, Kind: fault.Restart, Server: crashed})
		}
		if err := sys.Clu.InstallFaultPlan(plan); err != nil {
			sys.Close()
			return nil, nil, err
		}
		rep, err := sys.Execute(req)
		if err != nil {
			sys.Close()
			return nil, nil, fmt.Errorf("faults %v crash: %w", v.scheme, err)
		}
		got, err := sys.FetchGrid("output")
		if err != nil {
			sys.Close()
			return nil, nil, fmt.Errorf("faults %v crash readback: %w", v.scheme, err)
		}
		if !got.Equal(want) {
			sys.Close()
			return nil, nil, fmt.Errorf("faults %v: crashed run diverged from the sequential reference", v.scheme)
		}
		r.Add(v.scheme.String()+"_crash", float64(si), rep.ExecTime.Seconds())

		rec := sys.Clu.Recovery
		note := fmt.Sprintf("%s: retries %d, timeouts %d, failover reads %d, exec retries %d, skipped forwards %d",
			v.scheme, rec.Retries(), rec.Timeouts(), rec.FailoverReads(), rec.ExecRetries(), rec.SkippedForwards())
		if rep.Degraded {
			note += "; degraded: " + rep.DegradedReason
		}
		r.Notes = append(r.Notes, note)
		recs = append(recs, SchemeRecovery{
			Scheme:          v.scheme.String(),
			HealthySeconds:  healthyRep.ExecTime.Seconds(),
			CrashedSeconds:  rep.ExecTime.Seconds(),
			Degraded:        rep.Degraded,
			DegradedReason:  rep.DegradedReason,
			Timeouts:        rec.Timeouts(),
			Retries:         rec.Retries(),
			FailoverReads:   rec.FailoverReads(),
			SkippedForwards: rec.SkippedForwards(),
			DroppedMessages: rec.DroppedMessages(),
			ExecRetries:     rec.ExecRetries(),
			FaultEvents:     sys.Clu.FaultLog.Len(),
		})
		sys.Close()
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("server %d crashes at half the scheme's healthy time; TS/NAS get it back %v later, DAS never does", crashed, restartDelay),
		"all crashed-run outputs verified byte-identical to the sequential reference",
		fmt.Sprintf("DAS rides grouped-replicated(r=halo=%d): full mirroring, forced offload (see DESIGN.md)", halo))
	return r, recs, nil
}
