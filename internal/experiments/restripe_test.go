package experiments

import (
	"testing"

	"github.com/hpcio/das/internal/restripe"
)

// TestRestripeExperimentKillsHaloTraffic is the PR's acceptance criterion:
// with online restriping enabled, the dependent-halo bytes the first round
// pays drop to zero after the background migration, the previously
// rejected DAS offload flips to accepted, every round of every variant is
// verified byte-identical (inside RestripeExperiment), and a migration
// interrupted by a mid-copy crash resumes from its cursor.
func TestRestripeExperimentKillsHaloTraffic(t *testing.T) {
	c := quick()
	r, report, err := c.RestripeExperiment(3, restripe.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Variants) != 4 {
		t.Fatalf("got %d variants, want 4", len(report.Variants))
	}
	nas, nasRe := report.Variants[0], report.Variants[1]
	if nas.Name != "NAS" || nasRe.Name != "NAS+restripe" {
		t.Fatalf("unexpected variant order: %s, %s", nas.Name, nasRe.Name)
	}
	// Plain NAS pays the halo every round; restriped NAS only in round 1.
	for round, b := range nas.RemoteBytes {
		if b == 0 {
			t.Errorf("plain NAS round %d moved no dependent bytes", round)
		}
	}
	if nasRe.RemoteBytes[0] == 0 {
		t.Error("restriped NAS round 1 moved no dependent bytes; nothing triggered the migration")
	}
	for round := 1; round < len(nasRe.RemoteBytes); round++ {
		if nasRe.RemoteBytes[round] != 0 {
			t.Errorf("restriped NAS round %d still fetched %d dependent bytes", round, nasRe.RemoteBytes[round])
		}
	}
	if nasRe.Migration == nil {
		t.Fatal("NAS+restripe carries no migration report")
	}
	if nasRe.Migration.Completed != 1 || nasRe.Migration.StripsMoved == 0 {
		t.Errorf("migration report %+v, want one completed migration with moved strips", nasRe.Migration)
	}
	dasStatic, dasRe := report.Variants[2], report.Variants[3]
	for round, off := range dasStatic.Offloaded {
		if off {
			t.Errorf("DAS-static round %d offloaded over round-robin", round)
		}
	}
	if dasRe.Offloaded[0] {
		t.Error("DAS+restripe round 1 offloaded before any migration")
	}
	if !dasRe.Offloaded[len(dasRe.Offloaded)-1] {
		t.Error("DAS+restripe never flipped to an accepted offload")
	}
	if !report.Verified {
		t.Error("report not marked verified")
	}
	if report.Crash == nil {
		t.Fatal("missing crash report")
	}
	if report.Crash.Resumes == 0 || !report.Crash.Verified {
		t.Errorf("crash report %+v, want resumed and verified", report.Crash)
	}
	if len(r.Notes) == 0 {
		t.Error("result carries no notes")
	}
}
