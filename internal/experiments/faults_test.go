package experiments

import (
	"strings"
	"testing"

	"github.com/hpcio/das/internal/core"
)

func TestFaultFailoverExperiment(t *testing.T) {
	c := quick()
	r, err := c.FaultFailover()
	if err != nil {
		t.Fatal(err)
	}
	for si, scheme := range []core.Scheme{core.TS, core.NAS, core.DAS} {
		healthy, ok1 := r.Value(scheme.String()+"_healthy", float64(si))
		crashed, ok2 := r.Value(scheme.String()+"_crash", float64(si))
		if !ok1 || !ok2 {
			t.Fatalf("%v: missing cells in %+v", scheme, r.Rows)
		}
		if healthy <= 0 || crashed <= 0 {
			t.Errorf("%v: non-positive times healthy=%g crashed=%g", scheme, healthy, crashed)
		}
		if crashed < healthy {
			t.Errorf("%v: crashed run %.4fs faster than healthy %.4fs", scheme, crashed, healthy)
		}
	}
	notes := strings.Join(r.Notes, "\n")
	if !strings.Contains(notes, "byte-identical") {
		t.Errorf("notes never claim verification:\n%s", notes)
	}
	// DAS loses its server for good: the run must have failed reads over to
	// replica holders, and the note records it.
	for _, line := range r.Notes {
		if strings.HasPrefix(line, "DAS: ") && strings.Contains(line, "failover reads 0,") {
			t.Errorf("DAS crash run recorded no failover reads: %s", line)
		}
	}
}
