package experiments

import (
	"fmt"

	"github.com/hpcio/das/internal/cache"
	"github.com/hpcio/das/internal/core"
	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/metrics"
)

// CacheVariantReport is one scheme's measurements across the repeated
// rounds of the cache experiment.
type CacheVariantReport struct {
	Name            string    `json:"name"`
	Rounds          int       `json:"rounds"`
	ExecTimeSeconds []float64 `json:"exec_time_seconds"`
	S2SBytes        []int64   `json:"s2s_bytes"`
	TotalS2SBytes   int64     `json:"total_s2s_bytes"`
	RemoteFetches   int64     `json:"remote_fetches"`
	RemoteBytes     int64     `json:"remote_bytes"`
	CacheHits       int64     `json:"cache_hits"`
	CacheHitBytes   int64     `json:"cache_hit_bytes"`
	ByteHitRate     float64   `json:"byte_hit_rate"`
	Evictions       int64     `json:"evictions"`
	Invalidations   int64     `json:"invalidations"`
	Promotions      int64     `json:"promotions"`
	Demotions       int64     `json:"demotions"`
}

// CacheFlipReport captures the decision-flip demonstration: the same DAS
// request over the unimproved round-robin layout, re-decided as the cache
// warms.
type CacheFlipReport struct {
	ColdOffload      bool    `json:"cold_offload"`
	ColdReason       string  `json:"cold_reason"`
	WarmOffload      bool    `json:"warm_offload"`
	WarmReason       string  `json:"warm_reason"`
	WarmHitFrac      float64 `json:"warm_hit_frac"`
	WarmRunHits      int64   `json:"warm_run_cache_hits"`
	WarmRunFetches   int64   `json:"warm_run_remote_fetches"`
	WarmRunS2SBytes  int64   `json:"warm_run_s2s_bytes"`
	WarmTimeSeconds  float64 `json:"warm_time_seconds"`
	ColdTimeSeconds  float64 `json:"cold_time_seconds"` // the rejected run, served as TS
	WarmupRounds     int     `json:"warmup_rounds"`
	WarmupTimeSecond float64 `json:"warmup_time_seconds"`
}

// CacheRunReport is the JSON-able record of one cache experiment
// (BENCH_cache.json).
type CacheRunReport struct {
	Op          string               `json:"op"`
	SizeGB      int                  `json:"size_gb"`
	Nodes       int                  `json:"nodes"`
	Rounds      int                  `json:"rounds"`
	Policy      string               `json:"policy"`
	BudgetBytes int64                `json:"budget_bytes"`
	Variants    []CacheVariantReport `json:"variants"`
	Flip        *CacheFlipReport     `json:"decision_flip"`
	Verified    bool                 `json:"outputs_verified"`
}

// CacheExperiment compares NAS, NAS+cache, DAS, and DAS+cache on the
// Fig. 11 dependent-kernel workload (flow-routing, smallest size), run
// for several rounds over the same input so the halo-strip cache warms:
// round one fills each server's cache with the dependent strips it
// fetched, later rounds serve them locally. Every round's output is
// verified byte-identical to the sequential reference. The experiment
// also demonstrates the decision flip: a DAS request over the unimproved
// round-robin layout that the cache-blind predictor rejects becomes an
// accepted offload once NAS warm-up rounds establish the hit rate.
func (c Config) CacheExperiment(rounds int, cacheCfg cache.Config) (*Result, *CacheRunReport, error) {
	if rounds < 2 {
		rounds = 2
	}
	normCfg, err := cacheCfg.Normalize()
	if err != nil {
		return nil, nil, err
	}
	const op = "flow-routing"
	size := c.SizesGB[0]
	servers := c.Nodes / 2

	r := &Result{
		ID:     "cache",
		Title:  fmt.Sprintf("Halo-strip cache over %d rounds (%s, %d GB)", rounds, op, size),
		XLabel: "round",
		YLabel: "server-to-server bytes",
	}
	report := &CacheRunReport{
		Op: op, SizeGB: size, Nodes: c.Nodes, Rounds: rounds,
		Policy:      normCfg.Policy,
		BudgetBytes: normCfg.BudgetBytes,
	}
	if report.Policy == "" {
		report.Policy = "lru"
	}

	g, err := c.dataset(op, size)
	if err != nil {
		return nil, nil, err
	}
	k, ok := kernels.Default().Lookup(op)
	if !ok {
		return nil, nil, fmt.Errorf("experiments: %s kernel missing", op)
	}
	want := kernels.Apply(k, g)

	rr := layout.NewRoundRobin(servers)
	type variant struct {
		name   string
		scheme core.Scheme
		lay    layout.Layout // nil = DAS-planned
		cached bool
	}
	variants := []variant{
		{"NAS", core.NAS, rr, false},
		{"NAS+cache", core.NAS, rr, true},
		{"DAS", core.DAS, nil, false},
		{"DAS+cache", core.DAS, nil, true},
	}
	for _, v := range variants {
		sys, err := c.buildSystem(c.Nodes, size, op, v.lay)
		if err != nil {
			return nil, nil, err
		}
		if v.cached {
			if err := sys.EnableCache(cacheCfg); err != nil {
				sys.Close()
				return nil, nil, err
			}
		}
		vr := CacheVariantReport{Name: v.name, Rounds: rounds}
		for round := 0; round < rounds; round++ {
			out := fmt.Sprintf("output.%d", round)
			rep, err := sys.Execute(core.Request{Op: op, Input: "input", Output: out, Scheme: v.scheme})
			if err != nil {
				sys.Close()
				return nil, nil, fmt.Errorf("cache %s round %d: %w", v.name, round, err)
			}
			got, err := sys.FetchGrid(out)
			if err != nil {
				sys.Close()
				return nil, nil, fmt.Errorf("cache %s round %d readback: %w", v.name, round, err)
			}
			if !got.Equal(want) {
				sys.Close()
				return nil, nil, fmt.Errorf("cache %s round %d diverged from the sequential reference", v.name, round)
			}
			s2s := rep.Traffic[metrics.ServerToServer]
			vr.ExecTimeSeconds = append(vr.ExecTimeSeconds, rep.ExecTime.Seconds())
			vr.S2SBytes = append(vr.S2SBytes, s2s)
			vr.TotalS2SBytes += s2s
			vr.RemoteFetches += rep.Stats.RemoteFetches
			vr.RemoteBytes += rep.Stats.RemoteBytes
			vr.CacheHits += rep.Stats.CacheHits
			vr.CacheHitBytes += rep.Stats.CacheHitBytes
			r.Add(v.name, float64(round+1), float64(s2s))
		}
		cs := sys.Clu.CacheStats
		vr.ByteHitRate = cs.ByteHitRate()
		vr.Evictions = cs.Evictions()
		vr.Invalidations = cs.Invalidations()
		vr.Promotions = cs.Promotions()
		vr.Demotions = cs.Demotions()
		report.Variants = append(report.Variants, vr)
		sys.Close()
	}
	report.Verified = true

	nas, nasCache := report.Variants[0], report.Variants[1]
	r.Notes = append(r.Notes,
		fmt.Sprintf("NAS moves %s server-to-server over %d rounds; NAS+cache moves %s (%.0f%% byte hit rate, %d promotions)",
			metrics.FormatBytes(nas.TotalS2SBytes), rounds,
			metrics.FormatBytes(nasCache.TotalS2SBytes), 100*nasCache.ByteHitRate, nasCache.Promotions),
		"all rounds of all variants verified byte-identical to the sequential reference",
		fmt.Sprintf("cache: %s per server, policy %s", metrics.FormatBytes(report.BudgetBytes), report.Policy))

	flip, err := c.cacheDecisionFlip(op, size, rr, cacheCfg, want)
	if err != nil {
		return nil, nil, err
	}
	report.Flip = flip
	if flip.ColdOffload || !flip.WarmOffload {
		return nil, nil, fmt.Errorf("cache flip demo: expected cold reject + warm accept, got cold=%v warm=%v",
			flip.ColdOffload, flip.WarmOffload)
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("decision flip on round-robin: cold DAS rejected (%s); after %d NAS warm-up rounds the same request offloads at %.0f%% predicted hit rate with %d of %d dependent ranges served from cache",
			flip.ColdReason, flip.WarmupRounds, 100*flip.WarmHitFrac, flip.WarmRunHits, flip.WarmRunHits+flip.WarmRunFetches))
	return r, report, nil
}

// cacheDecisionFlip runs the accept-after-warming demonstration on one
// system: the input stays on the unimproved round-robin layout, where
// whole-strip dependent fetches cost as much as normal I/O moves, so the
// cache-blind predictor rejects the offload. Two NAS rounds then warm the
// halo-strip caches (the second round's hits establish the observed hit
// rate), and the same DAS request re-decides: the discounted fetch term
// now beats normal I/O and the request offloads, serving its dependent
// ranges from cache.
func (c Config) cacheDecisionFlip(op string, size int, rr layout.Layout, cacheCfg cache.Config, want *grid.Grid) (*CacheFlipReport, error) {
	sys, err := c.buildSystem(c.Nodes, size, op, rr)
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	if err := sys.EnableCache(cacheCfg); err != nil {
		return nil, err
	}
	flip := &CacheFlipReport{WarmupRounds: 2}
	verify := func(out, stage string) error {
		got, err := sys.FetchGrid(out)
		if err != nil {
			return fmt.Errorf("cache flip %s readback: %w", stage, err)
		}
		if !got.Equal(want) {
			return fmt.Errorf("cache flip %s diverged from the sequential reference", stage)
		}
		return nil
	}

	// Cold: the cache-blind economics reject, and the request runs as
	// normal I/O per the workflow chart.
	cold, err := sys.Execute(core.Request{Op: op, Input: "input", Output: "flip.cold", Scheme: core.DAS})
	if err != nil {
		return nil, fmt.Errorf("cache flip cold: %w", err)
	}
	if cold.Decision != nil {
		flip.ColdOffload = cold.Decision.Offload
		flip.ColdReason = cold.Decision.Reason
	}
	flip.ColdTimeSeconds = cold.ExecTime.Seconds()
	if err := verify("flip.cold", "cold"); err != nil {
		return nil, err
	}

	// Warm-up: two offloaded rounds. The first fills the caches (all
	// misses), the second hits them, producing the observed hit rate the
	// cache-aware decision consumes.
	warmupStart := 0.0
	for round := 0; round < flip.WarmupRounds; round++ {
		out := fmt.Sprintf("flip.warm.%d", round)
		rep, err := sys.Execute(core.Request{Op: op, Input: "input", Output: out, Scheme: core.NAS})
		if err != nil {
			return nil, fmt.Errorf("cache flip warm-up %d: %w", round, err)
		}
		warmupStart += rep.ExecTime.Seconds()
		if err := verify(out, fmt.Sprintf("warm-up %d", round)); err != nil {
			return nil, err
		}
	}
	flip.WarmupTimeSecond = warmupStart

	// Warm: the same DAS request, re-decided with the hit rate in the
	// model.
	warm, err := sys.Execute(core.Request{Op: op, Input: "input", Output: "flip.warm", Scheme: core.DAS})
	if err != nil {
		return nil, fmt.Errorf("cache flip warm: %w", err)
	}
	if warm.Decision != nil {
		flip.WarmOffload = warm.Decision.Offload
		flip.WarmReason = warm.Decision.Reason
		flip.WarmHitFrac = warm.Decision.CacheHitFrac
	}
	flip.WarmRunHits = warm.Stats.CacheHits
	flip.WarmRunFetches = warm.Stats.RemoteFetches
	flip.WarmRunS2SBytes = warm.Traffic[metrics.ServerToServer]
	flip.WarmTimeSeconds = warm.ExecTime.Seconds()
	if err := verify("flip.warm", "warm"); err != nil {
		return nil, err
	}
	return flip, nil
}
