package experiments

import (
	"testing"
)

// TestTenantsExperimentSmoke runs the smoke-sized multi-tenant
// comparison end to end: all four variants complete, the report is
// byte-identical across two full replays (asserted inside
// TenantsExperiment), admission engages, and the adaptive variant's
// subsystems actually fire.
func TestTenantsExperimentSmoke(t *testing.T) {
	c := quick()
	r, report, err := c.TenantsExperiment(SmokeTenantsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !report.DeterministicReplay {
		t.Fatal("replay flag not set")
	}
	if len(report.Variants) != 4 {
		t.Fatalf("got %d variants, want 4", len(report.Variants))
	}
	byName := make(map[string]TenantsVariantReport)
	for _, v := range report.Variants {
		byName[v.Name] = v
	}
	for _, name := range []string{"nas-unbounded", "nas", "das-static", "das-adaptive"} {
		v, ok := byName[name]
		if !ok {
			t.Fatalf("variant %s missing", name)
		}
		if v.Ops == 0 || v.Reads == 0 || v.Writes == 0 || v.Offloads == 0 {
			t.Errorf("%s: some operation kind never ran: %+v", name, v)
		}
		if v.ThroughputMBps <= 0 {
			t.Errorf("%s: no throughput recorded", name)
		}
		if v.FairSpreadNanos < 0 || v.FairMaxP99Nanos < v.FairMinP99Nanos {
			t.Errorf("%s: degenerate fairness %+v", name, v)
		}
	}
	if byName["nas-unbounded"].Sheds != 0 {
		t.Error("unbounded variant shed operations")
	}
	if byName["nas"].Deferrals == 0 {
		t.Error("bounded NAS never deferred — admission never engaged")
	}
	adp := byName["das-adaptive"]
	if adp.CacheHitBytes == 0 {
		t.Error("adaptive variant: halo cache never hit")
	}
	if adp.Promotions == 0 {
		t.Error("adaptive variant: controller never promoted")
	}
	if len(r.Rows) == 0 || len(r.Notes) == 0 {
		t.Error("plot result empty")
	}
}
