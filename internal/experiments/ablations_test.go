package experiments

import (
	"testing"
)

func TestAblationGroupSize(t *testing.T) {
	c := quick()
	r, err := c.AblationGroupSize()
	if err != nil {
		t.Fatal(err)
	}
	xs := r.Xs()
	if len(xs) < 3 {
		t.Fatalf("too few group sizes swept: %v", xs)
	}
	// Capacity overhead must fall as r grows (2·halo/r).
	for i := 1; i < len(xs); i++ {
		prev, _ := r.Value("capacity_overhead", xs[i-1])
		cur, _ := r.Value("capacity_overhead", xs[i])
		if cur >= prev {
			t.Errorf("overhead did not fall: r=%v→%v gives %.3f→%.3f", xs[i-1], xs[i], prev, cur)
		}
	}
	// Execution stays sane (offloaded, locality) at every r: no value
	// should be wildly above the smallest.
	var minV, maxV float64
	for i, x := range xs {
		v, ok := r.Value("das_exec_seconds", x)
		if !ok || v <= 0 {
			t.Fatalf("missing exec time at r=%v", x)
		}
		if i == 0 || v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if maxV > 2*minV {
		t.Errorf("exec time varies too widely across r: %.4f..%.4f", minV, maxV)
	}
}

func TestAblationPredictorRejectionPays(t *testing.T) {
	c := quick()
	r, err := c.AblationPredictor()
	if err != nil {
		t.Fatal(err)
	}
	predicted, _ := r.Value("das_predicted", 0)
	blind, _ := r.Value("das_blind_offload", 1)
	ts, _ := r.Value("ts", 2)
	if predicted <= 0 || blind <= 0 || ts <= 0 {
		t.Fatalf("missing values: %v %v %v", predicted, blind, ts)
	}
	// The predictor must avoid the blind offload's penalty...
	if predicted >= blind {
		t.Errorf("prediction did not help: predicted %.4f vs blind %.4f", predicted, blind)
	}
	// ...by tracking TS (within 10%: same path, plus decision overhead).
	if predicted > ts*1.1 {
		t.Errorf("predicted DAS %.4f strays from TS %.4f", predicted, ts)
	}
	for _, n := range r.Notes {
		if n == "WARNING: predictor accepted the hostile pattern" {
			t.Error(n)
		}
	}
}

func TestAblationReconfigAmortizes(t *testing.T) {
	c := quick()
	r, err := c.AblationReconfig()
	if err != nil {
		t.Fatal(err)
	}
	pre, _ := r.Value("preplaced", 0)
	first, _ := r.Value("reconfigured_first_op", 1)
	cost, _ := r.Value("reconfig_cost_alone", 2)
	successor, _ := r.Value("successor_op", 3)
	if pre <= 0 || first <= 0 || cost <= 0 || successor <= 0 {
		t.Fatalf("missing values: %v %v %v %v", pre, first, cost, successor)
	}
	// The first migrated run pays the migration on top of execution.
	if first <= pre {
		t.Errorf("migration appears free: first %.4f vs preplaced %.4f", first, pre)
	}
	if first < cost {
		t.Errorf("first op %.4f below its own reconfig cost %.4f", first, cost)
	}
	// The successor runs at pre-placed speed (same layout, no migration):
	// allow 25% slack for differing input values.
	if successor > pre*1.25 {
		t.Errorf("successor %.4f did not amortize (preplaced %.4f)", successor, pre)
	}
}

func TestAblationMultiTenantOrdering(t *testing.T) {
	c := quick()
	r, err := c.AblationMultiTenant()
	if err != nil {
		t.Fatal(err)
	}
	get := func(series string) float64 {
		for _, row := range r.Rows {
			if row.Series == series {
				return row.Value
			}
		}
		t.Fatalf("missing series %s", series)
		return 0
	}
	nas, das, ts := get("NAS_makespan"), get("DAS_makespan"), get("TS_makespan")
	if !(das < ts && ts < nas) {
		t.Errorf("fleet makespans DAS=%.4f TS=%.4f NAS=%.4f, want DAS < TS < NAS", das, ts, nas)
	}
	// Mean job time can never exceed the makespan.
	for _, s := range []string{"NAS", "DAS", "TS"} {
		if get(s+"_mean_job") > get(s+"_makespan") {
			t.Errorf("%s mean job above makespan", s)
		}
	}
}

func TestAblationHaloFetchOrdering(t *testing.T) {
	c := quick()
	r, err := c.AblationHaloFetch()
	if err != nil {
		t.Fatal(err)
	}
	whole, _ := r.Value("nas_whole_strips", 0)
	rows, _ := r.Value("nas_row_fetch", 1)
	das, _ := r.Value("das_local_replicas", 2)
	if whole <= 0 || rows <= 0 || das <= 0 {
		t.Fatalf("missing values: %v %v %v", whole, rows, das)
	}
	if !(das < rows && rows < whole) {
		t.Errorf("want das < rows < whole, got %.4f / %.4f / %.4f", das, rows, whole)
	}
}

func TestAblationDeployment(t *testing.T) {
	c := quick()
	r, err := c.AblationDeployment()
	if err != nil {
		t.Fatal(err)
	}
	get := func(series string, x float64) float64 {
		v, ok := r.Value(series, x)
		if !ok {
			t.Fatalf("missing %s at %v", series, x)
		}
		return v
	}
	// DAS wins within each deployment model.
	for _, suffix := range []string{"_separated", "_collocated"} {
		nas, das, ts := get("NAS"+suffix, 0), get("DAS"+suffix, 1), get("TS"+suffix, 2)
		if !(das < ts && das < nas) {
			t.Errorf("%s: DAS=%.4f TS=%.4f NAS=%.4f, want DAS fastest", suffix, das, ts, nas)
		}
	}
	// Collocation doubles the server count at equal hardware, so DAS gets
	// faster (more parallel kernels over local data).
	if get("DAS_collocated", 1) >= get("DAS_separated", 1) {
		t.Errorf("collocated DAS %.4f not faster than separated %.4f",
			get("DAS_collocated", 1), get("DAS_separated", 1))
	}
}

func TestAblationComputeIntensity(t *testing.T) {
	c := quick()
	r, err := c.AblationComputeIntensity()
	if err != nil {
		t.Fatal(err)
	}
	xs := r.Xs()
	if len(xs) < 4 {
		t.Fatalf("sweep too short: %v", xs)
	}
	// DAS never loses, and its advantage at the I/O-bound end exceeds the
	// advantage at the compute-bound end.
	first, _ := r.Value("ts_over_das", xs[0])
	last, _ := r.Value("ts_over_das", xs[len(xs)-1])
	if first <= 1 {
		t.Errorf("I/O-bound speedup %.3f not above 1", first)
	}
	if last >= first {
		t.Errorf("speedup did not shrink with compute cost: %.3f → %.3f", first, last)
	}
	// Times grow monotonically with compute cost for both schemes.
	for _, series := range []string{"das_seconds", "ts_seconds"} {
		prev := 0.0
		for _, x := range xs {
			v, _ := r.Value(series, x)
			if v <= prev {
				t.Errorf("%s not increasing at %v ns", series, x)
			}
			prev = v
		}
	}
}

func TestAblationStripSize(t *testing.T) {
	c := quick()
	r, err := c.AblationStripSize()
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range r.Xs() {
		nas, ok1 := r.Value("NAS", x)
		das, ok2 := r.Value("DAS", x)
		ts, ok3 := r.Value("TS", x)
		if !ok1 || !ok2 || !ok3 {
			t.Fatalf("missing cells at %v KiB", x)
		}
		if !(das < ts && das < nas) {
			t.Errorf("%v KiB: DAS=%.4f TS=%.4f NAS=%.4f, want DAS fastest", x, das, ts, nas)
		}
	}
}

func TestAblationMapReduce(t *testing.T) {
	c := quick()
	r, err := c.AblationMapReduce()
	if err != nil {
		t.Fatal(err)
	}
	mr, ok1 := r.Value("mapreduce", 0)
	das, ok2 := r.Value("das", 3)
	nas, ok3 := r.Value("nas", 5)
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("missing series: %+v", r.Rows)
	}
	// The §II-C claim: DAS beats MapReduce on its own deployment model.
	if das >= mr {
		t.Errorf("DAS %.4f not faster than MapReduce %.4f", das, mr)
	}
	// MapReduce is a serious baseline, not a strawman: shuffling each halo
	// fragment once beats NAS re-fetching dependent strips per consumer.
	if mr >= nas {
		t.Errorf("MapReduce %.4f not faster than NAS %.4f (comparator too weak)", mr, nas)
	}
	mapS, _ := r.Value("mapreduce_map_s", 1)
	reduceS, _ := r.Value("mapreduce_reduce_s", 2)
	if mapS <= 0 || reduceS <= 0 || mapS+reduceS > mr+1e-9 {
		t.Errorf("phase times map=%.4f reduce=%.4f total=%.4f", mapS, reduceS, mr)
	}
}
