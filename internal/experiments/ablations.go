package experiments

import (
	"fmt"
	"strings"

	"github.com/hpcio/das/internal/active"
	"github.com/hpcio/das/internal/cluster"
	"github.com/hpcio/das/internal/core"
	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/mapred"
	"github.com/hpcio/das/internal/predict"
	"github.com/hpcio/das/internal/sim"
)

// buildSystem makes a fresh platform with an ingested dataset under the
// given layout, optionally registering extra kernels first.
func (c Config) buildSystem(nodes, sizeGB int, op string, lay layout.Layout, extra ...kernels.Kernel) (*core.System, error) {
	cfg, err := c.platform(nodes)
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	for _, k := range extra {
		sys.Registry.Register(k)
	}
	if len(extra) > 0 {
		sys.Features = sys.Registry.Features()
	}
	g, err := c.dataset(op, sizeGB)
	if err != nil {
		return nil, err
	}
	if lay == nil {
		lay, err = sys.PlanLayout(op, g.W, grid.ElemSize, c.StripSize, g.SizeBytes(), 0)
		if err != nil {
			return nil, err
		}
	}
	if _, err := sys.IngestGrid("input", g, lay, c.StripSize); err != nil {
		return nil, err
	}
	return sys, nil
}

// AblationGroupSize sweeps the replication group size r for DAS
// (flow-routing, smallest dataset): smaller r buys nothing once locality
// holds but pays replication traffic and capacity (2·halo/r), larger r
// amortizes it. Capacity overhead is reported as a second series.
func (c Config) AblationGroupSize() (*Result, error) {
	r := &Result{
		ID:     "ablation-group-size",
		Title:  "DAS replication group size r (flow-routing)",
		XLabel: "group size r",
		YLabel: "execution time (s) / capacity overhead",
	}
	size := c.SizesGB[0]
	servers := c.Nodes / 2
	// Halo required by the 8-neighbor pattern at this geometry.
	probe := layout.NewLocator(grid.ElemSize, c.StripSize, layout.NewRoundRobin(servers))
	halo := probe.RequiredHalo(int64(c.Width) + 1)
	for mult := 1; mult <= 16; mult *= 2 {
		rr := halo * mult
		lay := layout.NewGroupedReplicated(servers, rr, halo)
		sys, err := c.buildSystem(c.Nodes, size, "flow-routing", lay)
		if err != nil {
			return nil, err
		}
		rep, err := sys.Execute(core.Request{Op: "flow-routing", Input: "input", Output: "output", Scheme: core.DAS})
		sys.Close()
		if err != nil {
			return nil, fmt.Errorf("group size %d: %w", rr, err)
		}
		r.Add("das_exec_seconds", float64(rr), rep.ExecTime.Seconds())
		r.Add("capacity_overhead", float64(rr), layout.OverheadRatio(lay))
	}
	r.Notes = append(r.Notes, fmt.Sprintf("halo = %d strips at width %d; overhead = 2·halo/r (§III-D)", halo, c.Width))
	return r, nil
}

// AblationPredictor pits the prediction core against a hostile stride
// pattern that no round-robin placement serves locally: DAS (predicts,
// rejects, serves as TS) versus DAS with prediction disabled (blind
// offload, as NAS would) versus plain TS.
func (c Config) AblationPredictor() (*Result, error) {
	r := &Result{
		ID:     "ablation-predictor",
		Title:  "Value of the offload decision on a hostile stride pattern",
		XLabel: "variant",
		YLabel: "execution time (s)",
	}
	size := c.SizesGB[0]
	servers := c.Nodes / 2
	elemsPerStrip := c.StripSize / grid.ElemSize
	hostile := kernels.ScatterKernel{
		OpName:  "hostile-stride",
		Strides: []int64{elemsPerStrip, 2 * elemsPerStrip, 3 * elemsPerStrip},
		W:       1,
	}
	for _, st := range hostile.Strides {
		if predict.Eq17(st, grid.ElemSize, c.StripSize, 1, servers) {
			return nil, fmt.Errorf("ablation: stride %d accidentally aligned; pick another", st)
		}
	}
	variants := []struct {
		label string
		req   core.Request
	}{
		{"das_predicted", core.Request{Op: "hostile-stride", Scheme: core.DAS}},
		{"das_blind_offload", core.Request{Op: "hostile-stride", Scheme: core.DAS, DisablePrediction: true}},
		{"ts", core.Request{Op: "hostile-stride", Scheme: core.TS}},
	}
	for i, v := range variants {
		sys, err := c.buildSystem(c.Nodes, size, "hostile-stride", layout.NewRoundRobin(servers), hostile)
		if err != nil {
			return nil, err
		}
		v.req.Input, v.req.Output = "input", "output"
		rep, err := sys.Execute(v.req)
		sys.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.label, err)
		}
		r.Add(v.label, float64(i), rep.ExecTime.Seconds())
		if v.label == "das_predicted" && rep.Offloaded {
			r.Notes = append(r.Notes, "WARNING: predictor accepted the hostile pattern")
		}
	}
	r.Notes = append(r.Notes, "das_predicted must track ts; das_blind_offload pays the dependence traffic")
	return r, nil
}

// AblationReconfig compares write-time placement against migrate-in-place
// for DAS: (a) input pre-placed in the improved layout, (b) input placed
// round-robin and migrated by the workflow's reconfiguration step, with
// the migration cost charged to the run, then (c) the successor operation
// after reconfiguration, which runs at pre-placed speed — the
// amortization the paper's successive-operation argument relies on.
func (c Config) AblationReconfig() (*Result, error) {
	r := &Result{
		ID:     "ablation-reconfig",
		Title:  "Layout reconfiguration cost and amortization (gaussian)",
		XLabel: "variant",
		YLabel: "execution time (s)",
	}
	size := c.SizesGB[0]
	servers := c.Nodes / 2

	preSys, err := c.buildSystem(c.Nodes, size, "gaussian-filter", nil)
	if err != nil {
		return nil, err
	}
	pre, err := preSys.Execute(core.Request{Op: "gaussian-filter", Input: "input", Output: "output", Scheme: core.DAS})
	preSys.Close()
	if err != nil {
		return nil, err
	}
	r.Add("preplaced", 0, pre.ExecTime.Seconds())

	migSys, err := c.buildSystem(c.Nodes, size, "gaussian-filter", layout.NewRoundRobin(servers))
	if err != nil {
		return nil, err
	}
	mig, err := migSys.Execute(core.Request{Op: "gaussian-filter", Input: "input", Output: "out1", Scheme: core.DAS, Reconfigure: true})
	if err != nil {
		return nil, err
	}
	r.Add("reconfigured_first_op", 1, mig.ExecTime.Seconds())
	r.Add("reconfig_cost_alone", 2, mig.ReconfigTime.Seconds())

	successor, err := migSys.Execute(core.Request{Op: "gaussian-filter", Input: "out1", Output: "out2", Scheme: core.DAS})
	migSys.Close()
	if err != nil {
		return nil, err
	}
	r.Add("successor_op", 3, successor.ExecTime.Seconds())
	r.Notes = append(r.Notes,
		"successor_op pays no migration: DAS writes intermediates under the improved layout")
	return r, nil
}

// AblationHaloFetch compares dependent-data transports on the same
// round-robin placement: the paper's NAS (whole strips), an optimized NAS
// that fetches only the needed rows, and DAS with local replicas.
func (c Config) AblationHaloFetch() (*Result, error) {
	r := &Result{
		ID:     "ablation-halo-fetch",
		Title:  "Dependent-data transport (flow-routing)",
		XLabel: "variant",
		YLabel: "execution time (s)",
	}
	size := c.SizesGB[0]
	servers := c.Nodes / 2
	variants := []struct {
		label  string
		scheme core.Scheme
		mode   active.FetchMode
		lay    layout.Layout
	}{
		{"nas_whole_strips", core.NAS, active.FetchWholeStrips, layout.NewRoundRobin(servers)},
		{"nas_row_fetch", core.NAS, active.FetchRows, layout.NewRoundRobin(servers)},
		{"das_local_replicas", core.DAS, active.LocalOnly, nil},
	}
	for i, v := range variants {
		sys, err := c.buildSystem(c.Nodes, size, "flow-routing", v.lay)
		if err != nil {
			return nil, err
		}
		rep, err := sys.Execute(core.Request{
			Op: "flow-routing", Input: "input", Output: "output",
			Scheme: v.scheme, NASFetchMode: v.mode,
		})
		sys.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.label, err)
		}
		r.Add(v.label, float64(i), rep.ExecTime.Seconds())
	}
	r.Notes = append(r.Notes, "row fetches shrink NAS traffic but DAS still wins: locality beats any transport")
	return r, nil
}

// AblationMultiTenant runs a fleet of four concurrent flow-routing jobs on
// four different rasters under each scheme and compares makespans: the
// multi-application situation a shared HEC I/O system actually faces. DAS
// jobs leave the interconnect nearly idle, so a DAS fleet degrades far
// less under self-contention than TS or NAS fleets.
func (c Config) AblationMultiTenant() (*Result, error) {
	r := &Result{
		ID:     "ablation-multitenant",
		Title:  "Four concurrent jobs per scheme (flow-routing)",
		XLabel: "scheme",
		YLabel: "makespan / mean job time (s)",
	}
	const fleet = 4
	size := c.SizesGB[0]
	servers := c.Nodes / 2
	for si, scheme := range []core.Scheme{core.NAS, core.DAS, core.TS} {
		cfg, err := c.platform(c.Nodes)
		if err != nil {
			return nil, err
		}
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		reqs := make([]core.Request, fleet)
		for i := 0; i < fleet; i++ {
			g, err := c.dataset("flow-routing", size)
			if err != nil {
				sys.Close()
				return nil, err
			}
			var lay layout.Layout = layout.NewRoundRobin(servers)
			if scheme == core.DAS {
				lay, err = sys.PlanLayout("flow-routing", g.W, grid.ElemSize, c.StripSize, g.SizeBytes(), 0)
				if err != nil {
					sys.Close()
					return nil, err
				}
			}
			name := fmt.Sprintf("input%d", i)
			if _, err := sys.IngestGrid(name, g, lay, c.StripSize); err != nil {
				sys.Close()
				return nil, err
			}
			reqs[i] = core.Request{Op: "flow-routing", Input: name,
				Output: fmt.Sprintf("output%d", i), Scheme: scheme}
		}
		reports, err := sys.ExecuteConcurrent(reqs)
		sys.Close()
		if err != nil {
			return nil, fmt.Errorf("multitenant %v: %w", scheme, err)
		}
		var sum float64
		for _, rep := range reports {
			sum += rep.ExecTime.Seconds()
		}
		r.Add(scheme.String()+"_makespan", float64(si), core.Makespan(reports).Seconds())
		r.Add(scheme.String()+"_mean_job", float64(si), sum/fleet)
	}
	r.Notes = append(r.Notes, fmt.Sprintf("%d concurrent flow-routing jobs, %d GB each, %d nodes", fleet, size, c.Nodes))
	return r, nil
}

// AblationDeployment compares the paper's two deployment models (§III-A)
// at equal total hardware: N/2 compute + N/2 storage nodes (separated,
// the model the paper evaluates) versus N dual-role nodes (collocated,
// the MapReduce-style model it mentions). Collocation gives TS free
// node-local reads and doubles the number of active storage servers, but
// the dependence-aware layout decides the ranking in both.
func (c Config) AblationDeployment() (*Result, error) {
	r := &Result{
		ID:     "ablation-deployment",
		Title:  "Separated vs collocated deployment (flow-routing)",
		XLabel: "scheme",
		YLabel: "execution time (s)",
	}
	// The largest configured size keeps whole replication groups balanced
	// across the doubled server count of the collocated variant.
	size := c.SizesGB[len(c.SizesGB)-1]
	for si, scheme := range []core.Scheme{core.NAS, core.DAS, core.TS} {
		for _, collocated := range []bool{false, true} {
			cfg, err := c.platform(c.Nodes)
			if err != nil {
				return nil, err
			}
			if collocated {
				cfg.ComputeNodes = c.Nodes
				cfg.StorageNodes = c.Nodes
				cfg.Collocated = true
			}
			sys, err := core.NewSystem(cfg)
			if err != nil {
				return nil, err
			}
			g, err := c.dataset("flow-routing", size)
			if err != nil {
				sys.Close()
				return nil, err
			}
			var lay layout.Layout = layout.NewRoundRobin(sys.FS.Servers())
			if scheme == core.DAS {
				lay, err = sys.PlanLayout("flow-routing", g.W, grid.ElemSize, c.StripSize, g.SizeBytes(), 0)
				if err != nil {
					sys.Close()
					return nil, err
				}
			}
			if _, err := sys.IngestGrid("input", g, lay, c.StripSize); err != nil {
				sys.Close()
				return nil, err
			}
			rep, err := sys.Execute(core.Request{Op: "flow-routing", Input: "input", Output: "output", Scheme: scheme})
			sys.Close()
			if err != nil {
				return nil, fmt.Errorf("deployment %v collocated=%v: %w", scheme, collocated, err)
			}
			label := scheme.String() + "_separated"
			if collocated {
				label = scheme.String() + "_collocated"
			}
			r.Add(label, float64(si), rep.ExecTime.Seconds())
		}
	}
	r.Notes = append(r.Notes, fmt.Sprintf(
		"both variants use %d physical nodes; collocated makes each node both compute and storage", c.Nodes))
	return r, nil
}

// AblationComputeIntensity sweeps the per-element kernel cost: active
// storage is a bandwidth play, so DAS's advantage over TS is largest when
// the operation is I/O-bound and shrinks as computation dominates — the
// regime where both schemes wait on the same CPUs. The sweep locates that
// transition for the default platform.
func (c Config) AblationComputeIntensity() (*Result, error) {
	r := &Result{
		ID:     "ablation-compute-intensity",
		Title:  "DAS advantage vs per-element compute cost (flow-routing)",
		XLabel: "ns per element",
		YLabel: "execution time (s) / speedup",
	}
	size := c.SizesGB[0]
	for _, ns := range []float64{25, 50, 100, 200, 400, 800} {
		times := make(map[core.Scheme]float64)
		for _, scheme := range []core.Scheme{core.DAS, core.TS} {
			base := cluster.Default()
			if c.Platform != nil {
				base = *c.Platform
			}
			base.ComputeNsPerElem = ns
			cc := c
			cc.Platform = &base
			rep, err := cc.RunOne(scheme, "flow-routing", size, c.Nodes)
			if err != nil {
				return nil, fmt.Errorf("compute intensity %v ns %v: %w", ns, scheme, err)
			}
			times[scheme] = rep.ExecTime.Seconds()
		}
		r.Add("das_seconds", ns, times[core.DAS])
		r.Add("ts_seconds", ns, times[core.TS])
		r.Add("ts_over_das", ns, times[core.TS]/times[core.DAS])
	}
	r.Notes = append(r.Notes,
		"speedup falls toward 1 as compute dominates: offloading saves bandwidth, not cycles")
	return r, nil
}

// AblationStripSize sweeps the PFS strip size, which enters every
// placement equation: smaller strips mean more strip boundaries (more NAS
// fetches, larger DAS halos in strip count), larger strips amortize
// boundaries but coarsen placement. The paper's 64 KiB default sits in
// the flat part of the DAS curve.
func (c Config) AblationStripSize() (*Result, error) {
	r := &Result{
		ID:     "ablation-strip-size",
		Title:  "Strip size sweep (flow-routing)",
		XLabel: "strip KiB",
		YLabel: "execution time (s)",
	}
	// The largest size keeps at least one replication group per server
	// even at the coarsest strip setting.
	size := c.SizesGB[len(c.SizesGB)-1]
	for _, kib := range []int64{16, 32, 64, 128, 256} {
		cc := c
		cc.StripSize = kib << 10
		for _, scheme := range []core.Scheme{core.NAS, core.DAS, core.TS} {
			rep, err := cc.RunOne(scheme, "flow-routing", size, c.Nodes)
			if err != nil {
				return nil, fmt.Errorf("strip %dKiB %v: %w", kib, scheme, err)
			}
			r.Add(scheme.String(), float64(kib), rep.ExecTime.Seconds())
		}
	}
	r.Notes = append(r.Notes, "64 KiB is the PVFS2 default the paper quotes (§III-C)")
	return r, nil
}

// AblationMapReduce tests the paper's §II-C claim — that DAS "is more
// effective than MapReduce in HPC environments" — by running the same
// stencil kernel three ways on one collocated platform (MapReduce's
// native deployment): a Hadoop-style map/shuffle/reduce with materialized
// intermediates and replicated output, DAS, and TS.
func (c Config) AblationMapReduce() (*Result, error) {
	r := &Result{
		ID:     "ablation-mapreduce",
		Title:  "MapReduce comparator (flow-routing, collocated deployment)",
		XLabel: "variant",
		YLabel: "execution time (s)",
	}
	size := c.SizesGB[len(c.SizesGB)-1]

	build := func(lay layout.Layout) (*core.System, error) {
		cfg, err := c.platform(c.Nodes)
		if err != nil {
			return nil, err
		}
		cfg.ComputeNodes, cfg.StorageNodes, cfg.Collocated = c.Nodes, c.Nodes, true
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		g, err := c.dataset("flow-routing", size)
		if err != nil {
			sys.Close()
			return nil, err
		}
		if lay == nil {
			lay, err = sys.PlanLayout("flow-routing", g.W, grid.ElemSize, c.StripSize, g.SizeBytes(), 0)
			if err != nil {
				sys.Close()
				return nil, err
			}
		}
		if _, err := sys.IngestGrid("input", g, lay, c.StripSize); err != nil {
			sys.Close()
			return nil, err
		}
		return sys, nil
	}

	// MapReduce over the DFS-style round-robin placement.
	mrSys, err := build(layout.NewRoundRobin(c.Nodes))
	if err != nil {
		return nil, err
	}
	runner := mapred.NewRunner(mrSys.FS, mrSys.Registry)
	var mrStats mapred.Stats
	var mrErr error
	start := mrSys.Clu.Eng.Now()
	mrSys.Clu.Eng.Spawn("mapred-job", func(p *sim.Proc) {
		mrStats, mrErr = runner.Run(p, mapred.Job{Op: "flow-routing", Input: "input", Output: "output"})
	})
	if err := mrSys.Clu.Eng.Run(); err != nil {
		mrSys.Close()
		return nil, err
	}
	mrTime := (mrSys.Clu.Eng.Now() - start).Seconds()
	mrSys.Close()
	if mrErr != nil {
		return nil, mrErr
	}
	r.Add("mapreduce", 0, mrTime)
	r.Add("mapreduce_map_s", 1, mrStats.MapTime.Seconds())
	r.Add("mapreduce_reduce_s", 2, mrStats.ReduceTime.Seconds())

	for i, scheme := range []core.Scheme{core.DAS, core.TS, core.NAS} {
		var lay layout.Layout = layout.NewRoundRobin(c.Nodes)
		if scheme == core.DAS {
			lay = nil // planner decides
		}
		sys, err := build(lay)
		if err != nil {
			return nil, err
		}
		rep, err := sys.Execute(core.Request{Op: "flow-routing", Input: "input", Output: "output", Scheme: scheme})
		sys.Close()
		if err != nil {
			return nil, fmt.Errorf("mapreduce ablation %v: %w", scheme, err)
		}
		r.Add(strings.ToLower(scheme.String()), float64(3+i), rep.ExecTime.Seconds())
	}
	r.Notes = append(r.Notes,
		"MapReduce pays intermediate materialization, a map barrier, and replicated output; DAS pipelines local reads into local writes",
		"with strip-wide dependence reach MapReduce shuffles like NAS fetches; it lands between NAS and TS")
	return r, nil
}

// Ablations runs every ablation in DESIGN.md order.
func (c Config) Ablations() ([]*Result, error) {
	var out []*Result
	for _, f := range []func() (*Result, error){
		c.AblationGroupSize, c.AblationPredictor, c.AblationReconfig,
		c.AblationHaloFetch, c.AblationMultiTenant, c.AblationDeployment,
		c.AblationComputeIntensity, c.AblationStripSize, c.AblationMapReduce,
	} {
		r, err := f()
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
