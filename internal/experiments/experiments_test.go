package experiments

import (
	"strings"
	"testing"

	"github.com/hpcio/das/internal/core"
)

// quick returns a reduced configuration for test speed: the same geometry
// and cost model, smaller datasets and fewer nodes. All shape assertions
// (orderings, ratios) are scale-free.
func quick() Config {
	c := Default()
	c.Nodes = 8
	c.SizesGB = []int{2, 4}
	// 8 → 16 nodes doubles the servers with exact group divisibility at
	// these sizes, so the per-server critical path genuinely halves.
	c.NodeSweep = []int{8, 16}
	return c
}

func TestTableIListsThreeKernels(t *testing.T) {
	tbl := TableI()
	for _, name := range []string{"flow-routing", "flow-accumulation", "gaussian-filter"} {
		if !strings.Contains(tbl, name) {
			t.Errorf("Table I missing %s:\n%s", name, tbl)
		}
	}
}

func TestFig10NASSlowerThanTS(t *testing.T) {
	c := quick()
	r, err := c.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range paperKernels {
		for _, size := range c.SizesGB {
			nas, ok1 := r.Value(k.label+"_NAS", float64(size))
			ts, ok2 := r.Value(k.label+"_TS", float64(size))
			if !ok1 || !ok2 {
				t.Fatalf("missing cells for %s at %d GB", k.label, size)
			}
			if nas <= ts {
				t.Errorf("%s %dGB: NAS %.4fs not slower than TS %.4fs (the paper's Fig. 10 effect)",
					k.label, size, nas, ts)
			}
		}
	}
}

func TestFig11DASWinsWithPaperMargins(t *testing.T) {
	c := quick()
	r, err := c.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	for ki, k := range paperKernels {
		das, _ := r.Value("DAS", float64(ki))
		ts, _ := r.Value("TS", float64(ki))
		nas, _ := r.Value("NAS", float64(ki))
		if das <= 0 || ts <= 0 || nas <= 0 {
			t.Fatalf("%s: missing data", k.label)
		}
		if !(das < ts && ts < nas) {
			t.Errorf("%s: want DAS < TS < NAS, got %.4f / %.4f / %.4f", k.label, das, ts, nas)
		}
		// The paper reports >30% over TS and >60% over NAS at full scale;
		// at test scale fixed costs compress the margins, so assert the
		// directional thresholds at half strength.
		if 1-das/ts < 0.15 {
			t.Errorf("%s: DAS only %.0f%% over TS", k.label, 100*(1-das/ts))
		}
		if 1-das/nas < 0.30 {
			t.Errorf("%s: DAS only %.0f%% over NAS", k.label, 100*(1-das/nas))
		}
	}
}

func TestFig12GrowthOrdering(t *testing.T) {
	c := quick()
	r, err := c.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := float64(c.SizesGB[0]), float64(c.SizesGB[len(c.SizesGB)-1])
	for _, k := range paperKernels {
		// Execution time grows with data for every scheme...
		for _, scheme := range []core.Scheme{core.NAS, core.DAS, core.TS} {
			series := k.label + "_" + scheme.String()
			a, _ := r.Value(series, lo)
			b, _ := r.Value(series, hi)
			if b <= a {
				t.Errorf("%s: time did not grow with data (%.4f → %.4f)", series, a, b)
			}
		}
		// ...and DAS has the smallest absolute growth.
		growth := func(scheme core.Scheme) float64 {
			a, _ := r.Value(k.label+"_"+scheme.String(), lo)
			b, _ := r.Value(k.label+"_"+scheme.String(), hi)
			return b - a
		}
		if !(growth(core.DAS) < growth(core.TS) && growth(core.DAS) < growth(core.NAS)) {
			t.Errorf("%s: DAS growth %.4f not smallest (TS %.4f, NAS %.4f)",
				k.label, growth(core.DAS), growth(core.TS), growth(core.NAS))
		}
	}
}

func TestFig13BothSchemesScaleWithNodes(t *testing.T) {
	c := quick()
	r, err := c.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	few, many := float64(c.NodeSweep[0]), float64(c.NodeSweep[len(c.NodeSweep)-1])
	for _, k := range paperKernels {
		for _, scheme := range []core.Scheme{core.DAS, core.TS} {
			series := k.label + "_" + scheme.String()
			a, _ := r.Value(series, few)
			b, _ := r.Value(series, many)
			if b >= a {
				t.Errorf("%s: adding nodes did not help (%.4f @ %v → %.4f @ %v)", series, a, few, b, many)
			}
		}
	}
}

func TestFig14BandwidthOrdering(t *testing.T) {
	c := quick()
	r, err := c.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range c.SizesGB {
		ts, _ := r.Value("TS", float64(size))
		das, _ := r.Value("DAS", float64(size))
		nas, _ := r.Value("NAS", float64(size))
		if ts != 1 {
			t.Errorf("%dGB: TS normalization %.4f != 1", size, ts)
		}
		if !(das > 1 && nas < 1) {
			t.Errorf("%dGB: want DAS > 1 > NAS, got DAS=%.4f NAS=%.4f", size, das, nas)
		}
	}
}

func TestResultTableAndCSV(t *testing.T) {
	r := &Result{ID: "figX", Title: "demo", XLabel: "x", YLabel: "y"}
	r.Add("a", 1, 0.5)
	r.Add("b", 1, 0.25)
	r.Add("a", 2, 1.5)
	r.Notes = append(r.Notes, "hello")
	tbl := r.Table()
	for _, want := range []string{"FIGX", "demo", "a", "b", "0.5000", "note: hello"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
	csv := r.CSV()
	if !strings.Contains(csv, "a,1,0.5") || !strings.Contains(csv, "series,x,y") {
		t.Errorf("csv wrong:\n%s", csv)
	}
	// Missing cell renders as "-".
	if !strings.Contains(tbl, "-") {
		t.Errorf("missing cell not rendered:\n%s", tbl)
	}
}

func TestChartRendersBars(t *testing.T) {
	r := &Result{ID: "figX", Title: "demo", XLabel: "size", YLabel: "seconds"}
	r.Add("NAS", 24, 0.4)
	r.Add("DAS", 24, 0.1)
	r.Add("TS", 24, 0.2)
	chart := r.Chart(40)
	for _, want := range []string{"FIGX", "size = 24", "NAS", "DAS", "TS", "█"} {
		if !strings.Contains(chart, want) {
			t.Errorf("chart missing %q:\n%s", want, chart)
		}
	}
	// The largest value gets the longest bar.
	nasBars := strings.Count(lineOf(chart, "NAS"), "█")
	dasBars := strings.Count(lineOf(chart, "DAS"), "█")
	if nasBars != 40 || dasBars >= nasBars || dasBars < 1 {
		t.Errorf("bar lengths NAS=%d DAS=%d", nasBars, dasBars)
	}
	// Degenerate cases.
	if (&Result{ID: "e", Title: "t"}).Chart(40) != "" {
		t.Error("empty result should render no chart")
	}
}

func lineOf(s, substr string) string {
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			return line
		}
	}
	return ""
}

func TestRunOneRejectsOddNodes(t *testing.T) {
	c := quick()
	if _, err := c.RunOne(core.TS, "flow-routing", 2, 7); err == nil {
		t.Error("odd node count accepted")
	}
}

func TestDatasetGeometryValidation(t *testing.T) {
	c := quick()
	c.Width = 5000 // does not divide any power-of-two size
	if _, err := c.dataset("flow-routing", 2); err == nil {
		t.Error("untileable width accepted")
	}
}
