package experiments

import (
	"testing"

	"github.com/hpcio/das/internal/sim"
)

// The scale workload is the identity probe for the engine's fast paths:
// every construction — fast dispatch or classic, calendar queue or heap —
// must produce byte-identical simulation outputs (event count, virtual
// time, traffic bytes, data checksums, kernel results). These tests
// assert that at a small cluster for speed and at the paper-scale 640
// nodes the PR's acceptance criteria name.

func mustScale(t *testing.T, opts ScaleOptions) ScaleStats {
	t.Helper()
	st, err := RunScale(opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// engineModes enumerates every engine construction; all must simulate
// identically.
var engineModes = []struct {
	name string
	opts sim.EngineOpts
}{
	{"fast", sim.EngineOpts{}},
	{"classic-dispatch", sim.EngineOpts{ClassicDispatch: true}},
	{"classic-queue", sim.EngineOpts{ClassicQueue: true}},
	{"classic-both", sim.EngineOpts{ClassicDispatch: true, ClassicQueue: true}},
}

func TestScaleIdenticalAcrossEngineModes(t *testing.T) {
	base := ScaleOptions{Nodes: 64, OpsPerClient: 32, Seed: 7}
	ref := mustScale(t, ScaleOptions{Nodes: base.Nodes, OpsPerClient: base.OpsPerClient,
		Seed: base.Seed, Engine: engineModes[0].opts})
	if ref.Reads == 0 || ref.Writes == 0 {
		t.Fatalf("degenerate workload: %d reads, %d writes", ref.Reads, ref.Writes)
	}
	for _, m := range engineModes[1:] {
		st := mustScale(t, ScaleOptions{Nodes: base.Nodes, OpsPerClient: base.OpsPerClient,
			Seed: base.Seed, Engine: m.opts})
		if !st.SameSimulation(ref) {
			t.Errorf("%s diverged from fast:\n fast    %+v\n %s %+v", m.name, ref, m.name, st)
		}
	}
}

func TestScaleRunToRunDeterminism(t *testing.T) {
	opts := ScaleOptions{Nodes: 24, OpsPerClient: 24, Seed: 3}
	a := mustScale(t, opts)
	b := mustScale(t, opts)
	if !a.SameSimulation(b) {
		t.Fatalf("two identical runs diverged:\n a %+v\n b %+v", a, b)
	}
}

func TestScaleSeedChangesOutputs(t *testing.T) {
	a := mustScale(t, ScaleOptions{Nodes: 24, OpsPerClient: 24, Seed: 1})
	b := mustScale(t, ScaleOptions{Nodes: 24, OpsPerClient: 24, Seed: 2})
	if a.Checksum == b.Checksum {
		t.Fatal("different seeds produced the same checksum — the workload is not seed-driven")
	}
}

func TestScaleRejectsOddNodeCounts(t *testing.T) {
	if _, err := RunScale(ScaleOptions{Nodes: 25}); err == nil {
		t.Fatal("odd node count accepted")
	}
	if _, err := RunScale(ScaleOptions{Nodes: 0}); err == nil {
		t.Fatal("zero node count accepted")
	}
}

// TestScale640Determinism is the PR's named acceptance test: at 640 nodes,
// two runs of the fast engine are byte-identical, and the calendar queue
// matches the classic heap event for event.
func TestScale640Determinism(t *testing.T) {
	if testing.Short() {
		t.Skip("640-node run skipped with -short")
	}
	opts := ScaleOptions{Nodes: 640, OpsPerClient: 16, Seed: 11}
	a := mustScale(t, opts)
	b := mustScale(t, opts)
	if !a.SameSimulation(b) {
		t.Fatalf("two 640-node runs diverged:\n a %+v\n b %+v", a, b)
	}
	classic := mustScale(t, ScaleOptions{Nodes: opts.Nodes, OpsPerClient: opts.OpsPerClient,
		Seed: opts.Seed, Engine: sim.EngineOpts{ClassicDispatch: true, ClassicQueue: true}})
	if !classic.SameSimulation(a) {
		t.Fatalf("640-node classic engine diverged from fast:\n fast    %+v\n classic %+v", a, classic)
	}
	heapOnly := mustScale(t, ScaleOptions{Nodes: opts.Nodes, OpsPerClient: opts.OpsPerClient,
		Seed: opts.Seed, Engine: sim.EngineOpts{ClassicQueue: true}})
	if !heapOnly.SameSimulation(a) {
		t.Fatalf("640-node heap queue diverged from calendar:\n calendar %+v\n heap     %+v", a, heapOnly)
	}
}
