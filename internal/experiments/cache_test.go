package experiments

import (
	"testing"

	"github.com/hpcio/das/internal/cache"
)

// TestCacheExperimentNASCacheMovesFewerBytes is the PR's acceptance
// criterion: on the Fig. 11 dependent-kernel workload, NAS+cache moves
// measurably fewer server-to-server bytes than NAS, every round of every
// variant stays byte-identical to the sequential reference (verified
// inside CacheExperiment), and the decision-flip demo turns a rejected
// DAS request into an accepted one after warm-up.
func TestCacheExperimentNASCacheMovesFewerBytes(t *testing.T) {
	c := quick()
	r, report, err := c.CacheExperiment(3, cache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Variants) != 4 {
		t.Fatalf("got %d variants, want 4", len(report.Variants))
	}
	nas, nasCache := report.Variants[0], report.Variants[1]
	if nas.Name != "NAS" || nasCache.Name != "NAS+cache" {
		t.Fatalf("unexpected variant order: %s, %s", nas.Name, nasCache.Name)
	}
	if nasCache.TotalS2SBytes >= nas.TotalS2SBytes {
		t.Errorf("NAS+cache moved %d server-to-server bytes, not fewer than NAS's %d",
			nasCache.TotalS2SBytes, nas.TotalS2SBytes)
	}
	// The warm rounds should hit: the first round misses everything, the
	// later rounds serve the same halo strips from cache.
	if nasCache.CacheHits == 0 {
		t.Error("NAS+cache recorded no cache hits across warm rounds")
	}
	if nasCache.ByteHitRate <= 0 {
		t.Errorf("NAS+cache byte hit rate %v, want > 0", nasCache.ByteHitRate)
	}
	// Per-round shape: round 1 pays full fetch traffic, later rounds less.
	if len(nasCache.S2SBytes) != 3 {
		t.Fatalf("got %d rounds, want 3", len(nasCache.S2SBytes))
	}
	if nasCache.S2SBytes[1] >= nasCache.S2SBytes[0] {
		t.Errorf("round 2 s2s bytes %d not below round 1's %d", nasCache.S2SBytes[1], nasCache.S2SBytes[0])
	}
	if !report.Verified {
		t.Error("report not marked verified")
	}
	if report.Flip == nil {
		t.Fatal("missing decision-flip report")
	}
	if report.Flip.ColdOffload {
		t.Error("cold DAS request over round-robin should be rejected")
	}
	if !report.Flip.WarmOffload {
		t.Error("warm DAS request should be accepted")
	}
	if report.Flip.WarmHitFrac <= 0 {
		t.Errorf("warm decision hit fraction %v, want > 0", report.Flip.WarmHitFrac)
	}
	if report.Flip.WarmRunHits == 0 {
		t.Error("warm offloaded run served no dependent ranges from cache")
	}
	if len(r.Notes) == 0 {
		t.Error("result carries no notes")
	}
}

// TestCacheExperimentARCPolicy exercises the adaptive policy end-to-end.
func TestCacheExperimentARCPolicy(t *testing.T) {
	c := quick()
	_, report, err := c.CacheExperiment(2, cache.Config{Policy: "arc"})
	if err != nil {
		t.Fatal(err)
	}
	if report.Policy != "arc" {
		t.Fatalf("policy %q, want arc", report.Policy)
	}
	if report.Variants[1].CacheHits == 0 {
		t.Error("NAS+arc recorded no cache hits")
	}
}
