package experiments

import (
	"testing"
)

// TestPipelineExperimentSmoke runs the smoke-sized pushdown comparison
// end to end: all four variants complete with bitwise-verified output,
// the DAS pushdown moves strictly fewer bytes than its per-pass twin
// (asserted inside PipelineExperiment, checked again here), the fault
// run recovers, and the report is byte-identical across two replays.
func TestPipelineExperimentSmoke(t *testing.T) {
	c := quick()
	r, report, err := c.PipelineExperiment(true)
	if err != nil {
		t.Fatal(err)
	}
	if !report.DeterministicReplay {
		t.Fatal("replay flag not set")
	}
	if len(report.Variants) != 4 {
		t.Fatalf("got %d variants, want 4", len(report.Variants))
	}
	byName := make(map[string]PipelineVariantReport)
	for _, v := range report.Variants {
		byName[v.Name] = v
	}
	for _, name := range []string{"nas-per-pass", "nas-pipelined", "das-per-pass", "das-pipelined"} {
		v, ok := byName[name]
		if !ok {
			t.Fatalf("variant %s missing", name)
		}
		if !v.OutputVerified {
			t.Errorf("%s: output not verified", name)
		}
		if v.TotalBytes <= 0 || v.ElapsedSeconds <= 0 {
			t.Errorf("%s: degenerate counters %+v", name, v)
		}
		if len(v.Reduce) == 0 {
			t.Errorf("%s: terminal reduce missing", name)
		}
	}
	for _, name := range []string{"nas-pipelined", "das-pipelined"} {
		v := byName[name]
		if !v.Pipelined || v.Rounds == 0 || v.Stages == 0 {
			t.Errorf("%s: pushdown shape missing: %+v", name, v)
		}
		if v.AchievedHaloBytes <= 0 || v.LowerBoundBytes <= 0 || v.LowerBoundRatio <= 0 {
			t.Errorf("%s: lower-bound accounting missing: %+v", name, v)
		}
	}
	if nas := byName["nas-pipelined"]; nas.AchievedHaloBytes < nas.LowerBoundBytes {
		t.Errorf("round-robin pushdown beat the lower bound: %+v", nas)
	}
	if byName["das-pipelined"].TotalBytes >= byName["das-per-pass"].TotalBytes {
		t.Error("pushdown did not move fewer bytes than per-pass")
	}
	f := report.Fault
	if !f.OutputVerified || f.Redispatches+f.CatchUps == 0 || f.FaultEvents == 0 {
		t.Errorf("fault run did not exercise recovery: %+v", f)
	}
	if len(r.Rows) == 0 || len(r.Notes) == 0 {
		t.Error("plot result empty")
	}
}
