// Scale sweep: the engine-scaling benchmark behind `dasbench -scale`. It
// runs a fixed, fully deterministic PFS request mix on clusters from
// paper-size (24 nodes) to far beyond (5000), so the DES core's per-event
// cost — not the modeled system — dominates, and reports simulation
// outputs precise enough to assert byte-identity between engine
// constructions (fast vs classic dispatch, calendar vs heap queue).
package experiments

import (
	"fmt"
	"strconv"

	"github.com/hpcio/das/internal/cluster"
	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/pfs"
	"github.com/hpcio/das/internal/sim"
)

// ScaleOptions parameterizes one scale-benchmark run.
type ScaleOptions struct {
	// Nodes is the total node count, split 1:1 compute:storage.
	Nodes int
	// OpsPerClient is how many sequential PFS operations each compute node
	// issues. Zero selects the standard 256.
	OpsPerClient int
	// Seed drives the deterministic request mix and strip contents.
	Seed uint64
	// Engine selects the engine construction under test.
	Engine sim.EngineOpts
}

// Scale-workload geometry: one file striped round-robin over all servers,
// scaleStripsPerServer strips per server, small strips so request
// dispatch — not byte movement — dominates the event count.
const (
	scaleFile            = "scale"
	scaleStripSize       = 1024
	scaleStripsPerServer = 8
	scaleDefaultOps      = 256
)

// clientRng seeds client c's private operation stream.
func clientRng(seed uint64, c int) lcg {
	return lcg(seed + uint64(c)*0x9e3779b97f4a7c15 + 1)
}

// scaleRun is the state every client shares: the platform handles and the
// result accumulators.
type scaleRun struct {
	fs            *pfs.FileSystem
	lay           layout.Layout
	strips        int64
	ops           int
	sums          []uint64
	reads, writes int64
}

// scaleClient is one compute node's workload as a task chain: its start
// event stands in for the process client's spawn, each response
// continuation for the process's per-RPC wake-up. Both constructions draw
// the same operation stream and produce the same checksum.
type scaleClient struct {
	run  *scaleRun
	id   int
	node int
	rng  lcg
	sum  uint64
	i    int
	wbuf []byte
	// onRead/onWrite hold the bound continuation methods so per-op calls
	// allocate nothing.
	onRead  func(data []byte, err error)
	onWrite func(err error)
}

// RunTask is the client's start event: issue the first operation.
func (c *scaleClient) RunTask() { c.step() }

// step issues operation i, or records the final checksum when done.
func (c *scaleClient) step() {
	r := c.run
	if c.i == r.ops {
		r.sums[c.id] = c.sum
		return
	}
	i := c.i
	c.i++
	strip := int64(c.rng.next() % uint64(r.strips))
	target := r.lay.Primary(strip)
	if i%8 == 7 {
		fillStrip(c.wbuf, c.rng.next(), strip)
		r.fs.WriteStripToTask(c.node, target, scaleFile, strip, c.wbuf, true, c.onWrite)
		return
	}
	r.fs.ReadStripFromTask(c.node, target, scaleFile, strip, 0, 0, c.onRead)
}

func (c *scaleClient) readDone(data []byte, err error) {
	if err != nil {
		panic(err)
	}
	c.sum = fnvMix(c.sum, stripSum(data))
	pfs.ReleaseBuffer(data)
	c.run.reads++
	c.step()
}

func (c *scaleClient) writeDone(err error) {
	if err != nil {
		panic(err)
	}
	c.run.writes++
	c.step()
}

// ScaleStats is everything a scale run outputs. Every field except Nodes
// and Ops is a simulation output: two runs of the same options must match
// exactly, whatever engine construction they use, and SameSimulation
// asserts exactly that.
type ScaleStats struct {
	Nodes  int
	Ops    int64
	Reads  int64
	Writes int64
	// Events and SimTime are the engine's dispatch count and final clock.
	Events  uint64
	SimTime sim.Time
	// Traffic is the per-class byte count snapshot.
	Traffic map[metrics.TrafficClass]int64
	// Checksum folds every byte read by every client, in program order
	// within each client.
	Checksum uint64
	// KernelSum is a Gaussian-filter reduction over a grid derived from the
	// read data — a stand-in for "the kernel results" in identity checks.
	KernelSum float64
}

// SameSimulation reports whether two runs produced identical simulation
// outputs: event count, virtual time, traffic, data, and kernel result.
func (s ScaleStats) SameSimulation(o ScaleStats) bool {
	return s.Events == o.Events &&
		s.SimTime == o.SimTime &&
		s.Reads == o.Reads &&
		s.Writes == o.Writes &&
		s.Checksum == o.Checksum &&
		s.KernelSum == o.KernelSum &&
		metrics.SnapshotsEqual(s.Traffic, o.Traffic)
}

// lcg is the benchmark's deterministic random stream (64-bit LCG,
// Knuth/MMIX constants). Top bits only: the low bits of an LCG cycle
// short.
type lcg uint64

func (g *lcg) next() uint64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return uint64(*g) >> 16
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnvMix folds one 64-bit word into a running FNV-1a-style hash.
func fnvMix(h, w uint64) uint64 {
	return (h ^ w) * fnvPrime
}

// stripSum digests a strip: its length plus a stride of 8-byte words.
// Strip contents are pseudo-random functions of (seed, strip), so any
// stale or misrouted data diverges at essentially every word and a sparse
// sample catches it; hashing every byte would just move the benchmark's
// hot path from the engine into the checksum.
func stripSum(data []byte) uint64 {
	h := fnvMix(fnvOffset, uint64(len(data)))
	for i := 0; i+8 <= len(data); i += 64 {
		w := uint64(data[i]) | uint64(data[i+1])<<8 | uint64(data[i+2])<<16 | uint64(data[i+3])<<24 |
			uint64(data[i+4])<<32 | uint64(data[i+5])<<40 | uint64(data[i+6])<<48 | uint64(data[i+7])<<56
		h = fnvMix(h, w)
	}
	return h
}

// RunScale executes the scale workload once and returns its outputs.
func RunScale(opts ScaleOptions) (ScaleStats, error) {
	r, err := PrepareScale(opts)
	if err != nil {
		return ScaleStats{}, err
	}
	return r.Run()
}

// ScaleRunner is a scale benchmark with its cluster built, data preloaded,
// and clients scheduled, ready for its single Run. The two-phase API lets
// the dasbench harness time the engine's dispatch work alone — events only
// dispatch inside Run — rather than folding identical construction and
// preload costs into both sides of an engine comparison.
type ScaleRunner struct {
	opts ScaleOptions
	clu  *cluster.Cluster
	run  *scaleRun
}

// PrepareScale builds the cluster and workload for one scale run.
//
// The workload: every compute node runs a client issuing OpsPerClient
// sequential PFS requests against one round-robin file spanning all
// servers — mostly whole-strip reads (checksummed), every eighth
// operation a whole-strip write. The dataset is preloaded without
// simulated cost, so the measured region is pure request traffic.
func PrepareScale(opts ScaleOptions) (*ScaleRunner, error) {
	if opts.Nodes <= 0 || opts.Nodes%2 != 0 {
		return nil, fmt.Errorf("experiments: scale node count %d must be positive and even", opts.Nodes)
	}
	ops := opts.OpsPerClient
	if ops <= 0 {
		ops = scaleDefaultOps
	}
	cfg := cluster.Default()
	cfg.ComputeNodes = opts.Nodes / 2
	cfg.StorageNodes = opts.Nodes / 2
	cfg.Engine = opts.Engine
	clu, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	fs := pfs.New(clu)
	servers := fs.Servers()
	strips := int64(servers) * scaleStripsPerServer
	if _, err := fs.Create(scaleFile, strips*scaleStripSize, layout.NewRoundRobin(servers), pfs.CreateOptions{StripSize: scaleStripSize}); err != nil {
		return nil, err
	}

	// Preload every strip on its primary holder, contents drawn from the
	// seed. No simulated cost: the benchmark measures request traffic, not
	// ingest.
	lay := layout.NewRoundRobin(servers)
	buf := make([]byte, scaleStripSize)
	for s := int64(0); s < strips; s++ {
		fillStrip(buf, opts.Seed, s)
		fs.Server(lay.Primary(s)).Preload(scaleFile, s, buf)
	}

	clients := cfg.ComputeNodes
	run := &scaleRun{fs: fs, lay: lay, strips: strips, ops: ops, sums: make([]uint64, clients)}
	if fs.AsyncOK() {
		// Fast dispatch: each client is a task chain — its start event and
		// every per-op resume dispatch inline, touching no goroutine.
		for c := 0; c < clients; c++ {
			cl := &scaleClient{
				run:  run,
				id:   c,
				node: clu.ComputeID(c),
				rng:  clientRng(opts.Seed, c),
				sum:  fnvOffset,
				wbuf: make([]byte, scaleStripSize),
			}
			cl.onRead, cl.onWrite = cl.readDone, cl.writeDone
			clu.Eng.ScheduleTask(0, cl)
		}
	} else {
		// Classic dispatch: the same workload as a process per client, one
		// park per RPC. Byte-identical outputs either way (scale_test.go).
		for c := 0; c < clients; c++ {
			c := c
			nodeID := clu.ComputeID(c)
			clu.Eng.Spawn("scale-client-"+strconv.Itoa(c), func(p *sim.Proc) {
				rng := clientRng(opts.Seed, c)
				sum := uint64(fnvOffset)
				wbuf := make([]byte, scaleStripSize)
				for i := 0; i < ops; i++ {
					strip := int64(rng.next() % uint64(run.strips))
					target := lay.Primary(strip)
					if i%8 == 7 {
						fillStrip(wbuf, rng.next(), strip)
						if err := fs.WriteStripTo(p, nodeID, target, scaleFile, strip, wbuf, true); err != nil {
							panic(err)
						}
						run.writes++
						continue
					}
					data, err := fs.ReadStripFrom(p, nodeID, target, scaleFile, strip, 0, 0)
					if err != nil {
						panic(err)
					}
					sum = fnvMix(sum, stripSum(data))
					pfs.ReleaseBuffer(data)
					run.reads++
				}
				run.sums[c] = sum
			})
		}
	}
	return &ScaleRunner{opts: opts, clu: clu, run: run}, nil
}

// Run executes the prepared workload and returns its outputs. It may be
// called once.
func (r *ScaleRunner) Run() (ScaleStats, error) {
	opts, clu, run := r.opts, r.clu, r.run
	if err := clu.Eng.Run(); err != nil {
		return ScaleStats{}, err
	}
	reads, writes := run.reads, run.writes

	// Fold the per-client checksums in client order, then feed a small grid
	// derived from them through a real kernel: the "kernel result" leg of
	// the identity check.
	sum := uint64(fnvOffset)
	for _, s := range run.sums {
		sum = fnvMix(sum, s)
	}
	const kw, kh = 32, 32
	g := grid.New(kw, kh)
	kg := lcg(sum)
	for i := range g.Data {
		g.Data[i] = float64(kg.next()%1024) / 16
	}
	out := kernels.Apply(kernels.Gaussian{}, g)
	var ksum float64
	for _, v := range out.Data {
		ksum += v
	}

	stats := ScaleStats{
		Nodes:     opts.Nodes,
		Ops:       reads + writes,
		Reads:     reads,
		Writes:    writes,
		Events:    clu.Eng.Events(),
		SimTime:   clu.Eng.Now(),
		Traffic:   clu.Traffic.Snapshot(),
		Checksum:  sum,
		KernelSum: ksum,
	}
	clu.Eng.Shutdown()
	return stats, nil
}

// fillStrip fills buf with the deterministic contents of a strip: a
// function of (seed, strip) only, so writers regenerate what preload
// placed and checksums are reproducible. One LCG step fills eight bytes —
// the fill must stay cheap for the same reason stripSum samples.
func fillStrip(buf []byte, seed uint64, strip int64) {
	g := lcg(seed ^ uint64(strip)*0xd1342543de82ef95)
	for i := 0; i+8 <= len(buf); i += 8 {
		v := g.next()
		buf[i] = byte(v)
		buf[i+1] = byte(v >> 8)
		buf[i+2] = byte(v >> 16)
		buf[i+3] = byte(v >> 24)
		buf[i+4] = byte(v >> 32)
		buf[i+5] = byte(v >> 40)
		buf[i+6] = byte(v >> 48)
		buf[i+7] = byte(v >> 56)
	}
}
