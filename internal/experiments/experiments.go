// Package experiments regenerates the paper's evaluation (§IV): one
// runnable experiment per table and figure, each producing the same rows
// or series the paper reports, plus the ablations DESIGN.md calls out.
//
// Scale: the paper ran 24–60 GB datasets on a 24–60 node cluster; this
// reproduction maps 1 paper-GB to 1 simulated MiB and scales nothing else.
// Every scheme's cost is linear in bytes moved, so the scaling preserves
// every ratio and crossover while keeping a full sweep under a minute.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/hpcio/das/internal/cluster"
	"github.com/hpcio/das/internal/core"
	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/workload"
)

// BytesPerPaperGB is the simulated stand-in for one of the paper's
// gigabytes.
const BytesPerPaperGB = 1 << 20

// Config parameterizes a sweep. The defaults mirror §IV-A: 24 nodes with
// a 1:1 storage:compute split, 24–60 GB data, 64 KiB strips.
type Config struct {
	// Nodes is the default total node count (half storage, half compute).
	Nodes int
	// SizesGB are the paper-scale dataset sizes to sweep.
	SizesGB []int
	// NodeSweep are the total node counts for the scalability experiment.
	NodeSweep []int
	// Width is the raster width in elements. The default of 8192 makes
	// one row exactly one 64 KiB strip, the geometry of the paper's
	// Fig. 4.
	Width int
	// StripSize is the PFS strip size.
	StripSize int64
	// Seed feeds the workload generators.
	Seed uint64
	// Platform overrides the cluster cost model; nil uses
	// cluster.Default().
	Platform *cluster.Config
}

// Default returns the paper-mirroring configuration.
func Default() Config {
	return Config{
		Nodes:     24,
		SizesGB:   []int{24, 36, 48, 60},
		NodeSweep: []int{24, 36, 48, 60},
		Width:     8192,
		StripSize: 64 * 1024,
		Seed:      42,
	}
}

// Kernels evaluated by the paper's figures, in its naming.
var paperKernels = []struct {
	op    string
	label string
}{
	{"flow-routing", "flow_routing"},
	{"flow-accumulation", "flow_accumulation"},
	{"gaussian-filter", "gaussian"},
}

// dataset builds the input raster for a paper-scale size.
func (c Config) dataset(op string, sizeGB int) (*grid.Grid, error) {
	bytes := int64(sizeGB) * BytesPerPaperGB
	elems := bytes / grid.ElemSize
	if elems%int64(c.Width) != 0 {
		return nil, fmt.Errorf("experiments: %d GB does not tile width %d", sizeGB, c.Width)
	}
	h := int(elems / int64(c.Width))
	switch op {
	case "gaussian-filter", "median-filter":
		return workload.Image(c.Width, h, c.Seed, 0.05), nil
	default:
		return workload.Terrain(c.Width, h, c.Seed), nil
	}
}

func (c Config) platform(nodes int) (cluster.Config, error) {
	if nodes%2 != 0 || nodes <= 0 {
		return cluster.Config{}, fmt.Errorf("experiments: node count %d must be positive and even (1:1 split)", nodes)
	}
	cfg := cluster.Default()
	if c.Platform != nil {
		cfg = *c.Platform
	}
	cfg.ComputeNodes = nodes / 2
	cfg.StorageNodes = nodes / 2
	return cfg, nil
}

// RunOne executes one (scheme, op, size, nodes) cell on a fresh platform
// and returns the operation report. Inputs are pre-placed as each scheme
// expects: round-robin for TS and NAS, the DAS-planned improved layout for
// DAS (write-time arrangement; the reconfiguration ablation measures the
// migrate-in-place alternative).
func (c Config) RunOne(scheme core.Scheme, op string, sizeGB, nodes int) (core.Report, error) {
	cfg, err := c.platform(nodes)
	if err != nil {
		return core.Report{}, err
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return core.Report{}, err
	}
	defer sys.Close()
	g, err := c.dataset(op, sizeGB)
	if err != nil {
		return core.Report{}, err
	}
	var lay layout.Layout = layout.NewRoundRobin(sys.FS.Servers())
	if scheme == core.DAS {
		lay, err = sys.PlanLayout(op, g.W, grid.ElemSize, c.StripSize, g.SizeBytes(), 0)
		if err != nil {
			return core.Report{}, err
		}
	}
	if _, err := sys.IngestGrid("input", g, lay, c.StripSize); err != nil {
		return core.Report{}, err
	}
	return sys.Execute(core.Request{Op: op, Input: "input", Output: "output", Scheme: scheme})
}

// Row is one measured cell of a result series.
type Row struct {
	Series string
	X      float64
	Value  float64
}

// Result is one regenerated table or figure.
type Result struct {
	ID     string // "fig10", "tableI", ...
	Title  string
	XLabel string
	YLabel string
	Rows   []Row
	Notes  []string
}

// Add appends a measurement.
func (r *Result) Add(series string, x, value float64) {
	r.Rows = append(r.Rows, Row{Series: series, X: x, Value: value})
}

// Value looks up a cell.
func (r *Result) Value(series string, x float64) (float64, bool) {
	for _, row := range r.Rows {
		if row.Series == series && row.X == x {
			return row.Value, true
		}
	}
	return 0, false
}

// Series lists distinct series names in first-appearance order.
func (r *Result) Series() []string {
	var out []string
	seen := make(map[string]bool)
	for _, row := range r.Rows {
		if !seen[row.Series] {
			seen[row.Series] = true
			out = append(out, row.Series)
		}
	}
	return out
}

// Xs lists distinct x values in ascending order.
func (r *Result) Xs() []float64 {
	seen := make(map[float64]bool)
	var out []float64
	for _, row := range r.Rows {
		if !seen[row.X] {
			seen[row.X] = true
			out = append(out, row.X)
		}
	}
	sort.Float64s(out)
	return out
}

// Table renders the result as an aligned text table: one row per x value,
// one column per series, followed by the notes.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(r.ID), r.Title)
	series := r.Series()
	headers := append([]string{r.XLabel}, series...)
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	xs := r.Xs()
	cells := make([][]string, len(xs))
	for i, x := range xs {
		cells[i] = make([]string, len(headers))
		cells[i][0] = trimFloat(x)
		for j, s := range series {
			if v, ok := r.Value(s, x); ok {
				cells[i][j+1] = fmt.Sprintf("%.4f", v)
			} else {
				cells[i][j+1] = "-"
			}
		}
		for j, cell := range cells[i] {
			if len(cell) > widths[j] {
				widths[j] = len(cell)
			}
		}
	}
	writeRow := func(cols []string) {
		for j, cell := range cols {
			if j > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[j], cell)
		}
		b.WriteString("\n")
	}
	writeRow(headers)
	for _, row := range cells {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Chart renders an ASCII horizontal bar chart: one group per x value, one
// bar per series, scaled to the result's maximum value. It gives dasbench
// output the at-a-glance shape of the paper's figures.
func (r *Result) Chart(width int) string {
	if width < 10 {
		width = 10
	}
	var maxV float64
	for _, row := range r.Rows {
		if row.Value > maxV {
			maxV = row.Value
		}
	}
	if maxV <= 0 {
		return ""
	}
	series := r.Series()
	labelW := len(r.XLabel)
	for _, s := range series {
		if len(s) > labelW {
			labelW = len(s)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (bar = %s)\n", strings.ToUpper(r.ID), r.Title, r.YLabel)
	for _, x := range r.Xs() {
		fmt.Fprintf(&b, "%s = %s\n", r.XLabel, trimFloat(x))
		for _, s := range series {
			v, ok := r.Value(s, x)
			if !ok {
				continue
			}
			n := int(v / maxV * float64(width))
			if n < 1 && v > 0 {
				n = 1
			}
			fmt.Fprintf(&b, "  %-*s |%s %s\n", labelW, s, strings.Repeat("█", n), trimValue(v))
		}
	}
	return b.String()
}

func trimValue(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// CSV renders the raw rows for plotting.
func (r *Result) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "series,%s,%s\n", safeCSV(r.XLabel), safeCSV(r.YLabel))
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%s,%g\n", safeCSV(row.Series), trimFloat(row.X), row.Value)
	}
	return b.String()
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%.2f", x)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

func safeCSV(s string) string {
	return strings.NewReplacer(",", ";", "\n", " ").Replace(s)
}
