package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"

	"github.com/hpcio/das/internal/cache"
	"github.com/hpcio/das/internal/control"
	"github.com/hpcio/das/internal/core"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/restripe"
	"github.com/hpcio/das/internal/sim"
)

// p99CacheBudget sizes the per-server halo cache to 2× the server's
// share of the dataset — about half its dependent working set, which
// measures 3-4× the share for the 8-neighbor kernels (each owned strip
// pulls whole-strip ranges from both neighbors, and each strip is
// pulled by both sides). Keeping the budget well under the working set
// is what makes the curve meaningful: the unpinned remainder cycles
// through LRU without ever re-hitting (the access is one pass per
// round), so only controller-pinned strips are served locally, the hit
// rate tracks the pin count, and fetch traffic persists at every scale
// so the plateau is an equilibrium rather than an artifact of the
// working set fitting.
func p99CacheBudget(sizeGB, servers int) int64 {
	per := int64(sizeGB) * BytesPerPaperGB / int64(servers)
	if b := per * 2; b > 512<<10 {
		return b
	}
	return 512 << 10
}

// defaultP99Control returns thresholds calibrated to the simulated
// platform's fetch-latency scale (p50 ≈ 5 ms, tail ≈ 7 ms on the default
// cost model): windows wide enough to collect a quorum of samples, the
// hysteresis band bracketing the observed distribution.
func defaultP99Control() control.Config {
	return control.Config{
		SampleEvery: 25 * sim.Millisecond,
		LatencyHigh: 6 * sim.Millisecond,
		LatencyLow:  sim.Millisecond,
	}
}

// P99Round is one round's view of the controlled system.
type P99Round struct {
	Round           int     `json:"round"`
	ExecTimeSeconds float64 `json:"exec_time_seconds"`
	// P99Nanos is the round's fetch-latency tail: the delta of the merged
	// cumulative sketch against the previous round's snapshot.
	P99Nanos     int64 `json:"p99_ns"`
	FetchSamples int64 `json:"fetch_samples"`
	// PinnedReplicas is the cluster-wide count of controller-pinned cache
	// entries after the round — the "replica count" of the curve.
	PinnedReplicas int `json:"pinned_replicas"`
	// Actions is the cumulative controller action count after the round;
	// two equal consecutive values mean a quiet round.
	Actions         int   `json:"actions"`
	RestripePlanned int64 `json:"restripe_planned"`
	RestripeDone    int64 `json:"restripe_completed"`
}

// P99VariantReport is one controlled configuration across the rounds.
type P99VariantReport struct {
	Name   string     `json:"name"`
	Rounds []P99Round `json:"rounds"`
	// ConvergedRound is the first round after which no controller action
	// and no restripe activity occurred (1-based; 0 = never converged).
	ConvergedRound           int   `json:"converged_round"`
	Converged                bool  `json:"converged"`
	Promotions               int64 `json:"promotions"`
	Demotions                int64 `json:"demotions"`
	CooldownSuppressed       int64 `json:"cooldown_suppressed"`
	MigrationSamplesExcluded int64 `json:"migration_samples_excluded"`
	AdmissionsAllowed        int64 `json:"admissions_allowed"`
	AdmissionsDenied         int64 `json:"admissions_denied"`
	FinalP99Nanos            int64 `json:"final_cluster_p99_ns"`
}

// P99RunReport is the JSON-able record of one p99 controller experiment
// (BENCH_p99.json).
type P99RunReport struct {
	Op               string             `json:"op"`
	SizeGB           int                `json:"size_gb"`
	Nodes            int                `json:"nodes"`
	Rounds           int                `json:"rounds"`
	CacheBudgetBytes int64              `json:"cache_budget_bytes"`
	Percentile       int                `json:"percentile"`
	LatencyHighNanos int64              `json:"latency_high_ns"`
	LatencyLowNanos  int64              `json:"latency_low_ns"`
	CooldownNanos    int64              `json:"cooldown_ns"`
	Variants         []P99VariantReport `json:"variants"`
	Verified         bool               `json:"outputs_verified"`
	// DeterministicReplay records that a second full run of the experiment
	// produced a byte-identical report.
	DeterministicReplay bool `json:"deterministic_replay"`
}

// P99Experiment reproduces DynamicCache's replica-count-vs-p99 curve on
// the unified controller: a dependent kernel over round-robin, a halo
// cache too small for the working set, and the controller pinning
// replicas as the observed fetch tail crosses the threshold. Two variants
// run — the controlled cache alone, and the controlled cache with online
// restriping behind the controller's admission gate and cool-down. Both
// must CONVERGE: after some round, zero further controller actions and
// zero further restripe activity (no promote/demote or migrate/re-migrate
// oscillation). Every round's output is verified against the sequential
// reference, and the whole experiment runs twice to prove the report is
// byte-identical.
//
// A zero ctlCfg selects thresholds calibrated to the simulated platform
// (defaultP99Control); the paper-default 500µs thresholds sit far below
// this cost model's fetch floor and would read every window as hot.
func (c Config) P99Experiment(rounds int, ctlCfg control.Config) (*Result, *P99RunReport, error) {
	if rounds < 4 {
		rounds = 4
	}
	if ctlCfg == (control.Config{}) {
		ctlCfg = defaultP99Control()
	}
	normCtl, err := ctlCfg.Normalize()
	if err != nil {
		return nil, nil, err
	}

	first, err := c.p99Run(rounds, ctlCfg)
	if err != nil {
		return nil, nil, err
	}
	second, err := c.p99Run(rounds, ctlCfg)
	if err != nil {
		return nil, nil, fmt.Errorf("p99 replay: %w", err)
	}
	b1, err := json.Marshal(first)
	if err != nil {
		return nil, nil, err
	}
	b2, err := json.Marshal(second)
	if err != nil {
		return nil, nil, err
	}
	first.DeterministicReplay = bytes.Equal(b1, b2)
	if !first.DeterministicReplay {
		return nil, nil, fmt.Errorf("p99: replay diverged — the controller is not deterministic")
	}

	r := &Result{
		ID:     "p99",
		Title:  fmt.Sprintf("Unified p99 controller over %d rounds (%s, %d GB)", rounds, first.Op, first.SizeGB),
		XLabel: "round",
		YLabel: "fetch p99 (ms) / pinned replicas",
	}
	for _, v := range first.Variants {
		for _, rd := range v.Rounds {
			r.Add(v.Name+" p99(ms)", float64(rd.Round), sim.Time(rd.P99Nanos).Seconds()*1e3)
			r.Add(v.Name+" pinned", float64(rd.Round), float64(rd.PinnedReplicas))
		}
		if !v.Converged {
			return nil, nil, fmt.Errorf("p99 %s: controller never converged (%d actions across %d rounds)",
				v.Name, v.Promotions+v.Demotions, rounds)
		}
		r.Notes = append(r.Notes, fmt.Sprintf(
			"%s: converged after round %d (%d promotions, %d demotions, %d cool-down deferrals); final cluster p99 %v",
			v.Name, v.ConvergedRound, v.Promotions, v.Demotions, v.CooldownSuppressed, sim.Time(v.FinalP99Nanos)))
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("thresholds: high %v / low %v (p%d), cool-down %v, cache %s per server",
			normCtl.LatencyHigh, normCtl.LatencyLow, normCtl.Percentile, normCtl.Cooldown,
			metrics.FormatBytes(first.CacheBudgetBytes)),
		"all rounds of both variants verified byte-identical to the sequential reference",
		"report byte-identical across two full replays")
	return r, first, nil
}

// p99Run is one complete pass of the experiment; P99Experiment runs it
// twice and byte-compares the reports.
func (c Config) p99Run(rounds int, ctlCfg control.Config) (*P99RunReport, error) {
	const op = "flow-routing"
	size := c.SizesGB[0]
	servers := c.Nodes / 2

	normCtl, err := ctlCfg.Normalize()
	if err != nil {
		return nil, err
	}
	budget := p99CacheBudget(size, servers)
	report := &P99RunReport{
		Op: op, SizeGB: size, Nodes: c.Nodes, Rounds: rounds,
		CacheBudgetBytes: budget,
		Percentile:       normCtl.Percentile,
		LatencyHighNanos: int64(normCtl.LatencyHigh),
		LatencyLowNanos:  int64(normCtl.LatencyLow),
		CooldownNanos:    int64(normCtl.Cooldown),
	}

	g, err := c.dataset(op, size)
	if err != nil {
		return nil, err
	}
	k, ok := kernels.Default().Lookup(op)
	if !ok {
		return nil, fmt.Errorf("experiments: %s kernel missing", op)
	}
	want := kernels.Apply(k, g)
	rr := layout.NewRoundRobin(servers)

	for _, variant := range []struct {
		name      string
		restriped bool
	}{
		{"controlled", false},
		{"controlled+restripe", true},
	} {
		sys, err := c.buildSystem(c.Nodes, size, op, rr)
		if err != nil {
			return nil, err
		}
		if err := sys.EnableCache(cache.Config{BudgetBytes: budget}); err != nil {
			sys.Close()
			return nil, err
		}
		if variant.restriped {
			if err := sys.EnableRestripe(restripe.Config{}); err != nil {
				sys.Close()
				return nil, err
			}
		}
		// The controller is enabled last so it adopts both subsystems.
		if err := sys.EnableControl(ctlCfg); err != nil {
			sys.Close()
			return nil, err
		}

		vr := P99VariantReport{Name: variant.name}
		prev := sys.Control.MergedFetchSketch()
		for round := 0; round < rounds; round++ {
			out := fmt.Sprintf("output.%d", round)
			rep, err := sys.Execute(core.Request{Op: op, Input: "input", Output: out, Scheme: core.NAS})
			if err != nil {
				sys.Close()
				return nil, fmt.Errorf("p99 %s round %d: %w", variant.name, round, err)
			}
			got, err := sys.FetchGrid(out)
			if err != nil {
				sys.Close()
				return nil, fmt.Errorf("p99 %s round %d readback: %w", variant.name, round, err)
			}
			if !got.Equal(want) {
				sys.Close()
				return nil, fmt.Errorf("p99 %s round %d diverged from the sequential reference", variant.name, round)
			}
			if variant.restriped && sys.Restripe.ActiveCount() > 0 {
				// Let the in-flight migration finish inside the round
				// accounting, so its strip flips and cool-downs land in
				// this round's numbers, not the next one's.
				converged, _, err := sys.DrainRestripe(restripeDrainTimeout)
				if err != nil || !converged {
					sys.Close()
					return nil, fmt.Errorf("p99 %s round %d: migration did not converge: %v", variant.name, round, err)
				}
			}
			cum := sys.Control.MergedFetchSketch()
			delta := cum.Delta(prev)
			prev = cum
			pinned := 0
			for _, st := range sys.Cache.Stats() {
				pinned += st.PinnedEntries
			}
			rs := sys.Clu.RestripeStats
			vr.Rounds = append(vr.Rounds, P99Round{
				Round:           round + 1,
				ExecTimeSeconds: rep.ExecTime.Seconds(),
				P99Nanos:        int64(delta.Quantile(normCtl.Percentile)),
				FetchSamples:    delta.Count(),
				PinnedReplicas:  pinned,
				Actions:         len(sys.Control.Actions()),
				RestripePlanned: rs.Planned(),
				RestripeDone:    rs.Completed(),
			})
		}

		// Convergence: the last round that saw a controller action or any
		// restripe activity. Quiet tail of >= 2 rounds required.
		vr.ConvergedRound = 1
		for i := 1; i < len(vr.Rounds); i++ {
			cur, pre := vr.Rounds[i], vr.Rounds[i-1]
			if cur.Actions != pre.Actions || cur.RestripePlanned != pre.RestripePlanned || cur.RestripeDone != pre.RestripeDone {
				vr.ConvergedRound = cur.Round
			}
		}
		vr.Converged = rounds-vr.ConvergedRound >= 2
		for _, st := range sys.Control.Stats() {
			vr.Promotions += st.Promotions
			vr.Demotions += st.Demotions
		}
		vr.CooldownSuppressed = sys.Control.CooldownSuppressed()
		vr.MigrationSamplesExcluded = sys.Control.MigrationSamplesExcluded()
		vr.AdmissionsAllowed, vr.AdmissionsDenied = sys.Control.Admissions()
		vr.FinalP99Nanos = int64(sys.Control.ClusterP99())
		report.Variants = append(report.Variants, vr)
		sys.Close()
	}
	report.Verified = true
	return report, nil
}
