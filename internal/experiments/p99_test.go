package experiments

import (
	"testing"

	"github.com/hpcio/das/internal/control"
)

// TestP99ExperimentConverges is the PR's acceptance criterion: the
// unified controller pins replicas as the fetch tail crosses the
// threshold and then goes quiet — no promote/demote or migrate/re-migrate
// oscillation after convergence — and the whole report is byte-identical
// across two full replays (asserted inside P99Experiment).
func TestP99ExperimentConverges(t *testing.T) {
	c := quick()
	r, report, err := c.P99Experiment(7, control.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Variants) != 2 {
		t.Fatalf("got %d variants, want 2", len(report.Variants))
	}
	if !report.Verified || !report.DeterministicReplay {
		t.Fatalf("verified=%v replay=%v", report.Verified, report.DeterministicReplay)
	}
	ctl, res := report.Variants[0], report.Variants[1]
	if ctl.Name != "controlled" || res.Name != "controlled+restripe" {
		t.Fatalf("unexpected variant order: %s, %s", ctl.Name, res.Name)
	}
	for _, v := range report.Variants {
		if !v.Converged {
			t.Errorf("%s did not converge: %+v", v.Name, v)
		}
		if v.Promotions == 0 {
			t.Errorf("%s: the controller never promoted — the curve is flat", v.Name)
		}
		last := v.Rounds[len(v.Rounds)-1]
		if last.PinnedReplicas == 0 {
			t.Errorf("%s: no pinned replicas at the end", v.Name)
		}
	}
	// The restriped variant migrates exactly once and its copies are
	// tagged: excluded migration samples prove the tag path ran.
	if done := res.Rounds[len(res.Rounds)-1].RestripeDone; done != 1 {
		t.Errorf("restriped variant completed %d migrations, want 1", done)
	}
	if res.MigrationSamplesExcluded == 0 {
		t.Error("migration produced no excluded samples")
	}
	if len(r.Rows) == 0 || len(r.Notes) == 0 {
		t.Error("plot result empty")
	}
}
