package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"

	"github.com/hpcio/das/internal/cache"
	"github.com/hpcio/das/internal/control"
	"github.com/hpcio/das/internal/core"
	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/predict"
	"github.com/hpcio/das/internal/restripe"
	"github.com/hpcio/das/internal/sim"
	"github.com/hpcio/das/internal/tenants"
)

// DefaultTenantsConfig is the full-scale multi-tenant run: over a
// thousand concurrent Zipf-skewed streams across hundreds of files, with
// a hot-set rotation a third of the way in and a read-heavy to
// write-heavy flip two thirds in.
func DefaultTenantsConfig() tenants.Config {
	return tenants.Config{
		Tenants:          1024,
		Files:            256,
		StripsPerFileMin: 4,
		StripsPerFileMax: 12,
		OpsPerTenant:     15,
		ZipfSkew:         1.1,
		Seed:             42,
		Mix:              tenants.Mix{Read: 70, Write: 20, Offload: 10},
		Phases: []tenants.Phase{
			{FromOp: 5, Mix: tenants.Mix{Read: 70, Write: 20, Offload: 10}, Rotate: 128},
			{FromOp: 10, Mix: tenants.Mix{Read: 25, Write: 60, Offload: 15}, Rotate: 128},
		},
		MaxQueueDepth: 24,
		// A closed loop with over a thousand streams on twelve servers is
		// oversubscribed severalfold: deferral is the normal backpressure
		// path (streams wait out bursts at the gate), and shedding is the
		// last resort after ~100 ms of sustained saturation. Pacing the
		// loop with a think time keeps the offered load heavy but not
		// degenerate.
		ThinkTime:   sim.Millisecond,
		ShedBackoff: sim.Millisecond,
		ShedRetries: 96,
	}
}

// SmokeTenantsConfig is the CI-sized variant of the same shape: small
// enough for the race detector and the bench-smoke target, still
// exercising skew, phases, admission, and every subsystem.
func SmokeTenantsConfig() tenants.Config {
	cfg := DefaultTenantsConfig()
	cfg.Tenants = 96
	cfg.Files = 32
	cfg.OpsPerTenant = 8
	cfg.Phases = []tenants.Phase{
		{FromOp: 3, Mix: tenants.Mix{Read: 70, Write: 20, Offload: 10}, Rotate: 16},
		{FromOp: 6, Mix: tenants.Mix{Read: 25, Write: 60, Offload: 15}, Rotate: 16},
	}
	cfg.MaxQueueDepth = 12
	return cfg
}

// tenantsStrictScale is the stream count above which the experiment
// enforces its acceptance comparisons as hard errors; smoke-sized runs
// report the same numbers without failing on them.
const tenantsStrictScale = 512

// tenantsCacheBudget sizes the per-server halo cache for the adaptive
// variant: roughly the hot head of the Zipf distribution per server
// (128 strips ≈ a dozen hot files), a few percent of the full dataset.
func tenantsCacheBudget(tcfg tenants.Config) int64 {
	return 128 * tcfg.StripSize
}

// tenantsControlCfg calibrates the unified controller to the tenant
// operation-latency scale (strip reads ~1.5 ms, contended offloads far
// above): the per-file admission gate opens only for files whose
// operation tail actually crosses the congestion threshold.
func tenantsControlCfg() control.Config {
	return control.Config{
		SampleEvery: 5 * sim.Millisecond,
		LatencyHigh: 4 * sim.Millisecond,
		LatencyLow:  sim.Millisecond,
		Cooldown:    10 * sim.Millisecond,
	}
}

// tenantsRestripeCfg tunes the migrator for many small files: a modest
// evidence threshold (one hot offload's halo traffic crosses it) and an
// in-flight budget that keeps background copies from starving the
// foreground streams.
func tenantsRestripeCfg(tcfg tenants.Config) restripe.Config {
	return restripe.Config{
		MinObservedBytes: 4 * tcfg.StripSize,
		MaxInFlightBytes: 2 * tcfg.StripSize,
	}
}

// TenantsVariantReport is one configuration's view of the multi-tenant
// run.
type TenantsVariantReport struct {
	Name           string  `json:"name"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	Ops            int64   `json:"ops"`
	Reads          int64   `json:"reads"`
	Writes         int64   `json:"writes"`
	Offloads       int64   `json:"offloads"`
	Sheds          int64   `json:"sheds"`
	Deferrals      int64   `json:"deferrals"`
	Bytes          int64   `json:"bytes"`
	ThroughputMBps float64 `json:"throughput_mb_per_s"`
	// RemoteBytes is the dependent-halo traffic offloads moved between
	// servers — the cost adaptive placement exists to remove.
	RemoteBytes   int64 `json:"offload_remote_bytes"`
	CacheHitBytes int64 `json:"cache_hit_bytes"`
	// QueueP99 / QueueMax are the worst server's arrival-sampled depth
	// tail and maximum.
	QueueP99 int64 `json:"queue_depth_p99"`
	QueueMax int64 `json:"queue_depth_max"`
	// Fairness: the cross-tenant p99 spread.
	FairMinP99Nanos int64 `json:"fair_min_p99_ns"`
	FairMaxP99Nanos int64 `json:"fair_max_p99_ns"`
	FairSpreadNanos int64 `json:"fair_spread_ns"`
	// Adaptive-subsystem activity (zero for the static variants).
	RestripesPlanned   int64              `json:"restripes_planned"`
	RestripesCompleted int64              `json:"restripes_completed"`
	AdmissionsAllowed  int64              `json:"admissions_allowed"`
	AdmissionsDenied   int64              `json:"admissions_denied"`
	Promotions         int64              `json:"promotions"`
	Demotions          int64              `json:"demotions"`
	DrainSeconds       float64            `json:"restripe_drain_seconds"`
	TopFiles           []tenants.FileOps  `json:"top_files"`
	HotFiles           []control.FileStat `json:"hot_files,omitempty"`
}

// TenantsRunReport is the JSON-able record of one multi-tenant
// experiment (BENCH_tenants.json).
type TenantsRunReport struct {
	Tenants        int                    `json:"tenants"`
	Files          int                    `json:"files"`
	OpsPerTenant   int                    `json:"ops_per_tenant"`
	ZipfSkew       float64                `json:"zipf_skew"`
	StripSizeBytes int64                  `json:"strip_size_bytes"`
	MaxQueueDepth  int                    `json:"max_queue_depth"`
	Phases         []tenants.Phase        `json:"phases"`
	Op             string                 `json:"op"`
	Variants       []TenantsVariantReport `json:"variants"`
	// DeterministicReplay records that a second full run of the
	// experiment produced a byte-identical report.
	DeterministicReplay bool `json:"deterministic_replay"`
}

// tenantsVariant selects one configuration of the comparison.
type tenantsVariant struct {
	name     string
	bounded  bool // admission gate on
	planned  bool // static DAS-planned per-file layouts
	adaptive bool // cache + restripe + unified controller over round-robin
}

var tenantsVariants = []tenantsVariant{
	// Unbounded NAS first: the saturation baseline admission is judged
	// against.
	{name: "nas-unbounded"},
	{name: "nas", bounded: true},
	{name: "das-static", bounded: true, planned: true},
	{name: "das-adaptive", bounded: true, adaptive: true},
}

// TenantsExperiment runs the multi-tenant comparison: blind active
// storage over round-robin (bounded and unbounded admission), statically
// DAS-planned layouts, and the adaptive stack (halo cache + online
// restriping + unified p99 controller with per-file admission) reacting
// to the same skewed, phase-shifting streams. The whole experiment runs
// twice and the reports must be byte-identical. At full scale the
// acceptance comparisons are enforced: admission must bound the queue
// tail the unbounded run blows through, and the adaptive stack must beat
// bounded NAS on both aggregate throughput and cross-tenant p99 spread.
func (c Config) TenantsExperiment(tcfg tenants.Config) (*Result, *TenantsRunReport, error) {
	tcfg, err := tcfg.Normalize()
	if err != nil {
		return nil, nil, err
	}
	first, err := c.tenantsRun(tcfg)
	if err != nil {
		return nil, nil, err
	}
	second, err := c.tenantsRun(tcfg)
	if err != nil {
		return nil, nil, fmt.Errorf("tenants replay: %w", err)
	}
	b1, err := json.Marshal(first)
	if err != nil {
		return nil, nil, err
	}
	b2, err := json.Marshal(second)
	if err != nil {
		return nil, nil, err
	}
	first.DeterministicReplay = bytes.Equal(b1, b2)
	if !first.DeterministicReplay {
		return nil, nil, fmt.Errorf("tenants: replay diverged — the traffic engine is not deterministic")
	}

	byName := make(map[string]*TenantsVariantReport)
	for i := range first.Variants {
		byName[first.Variants[i].Name] = &first.Variants[i]
	}
	unb, nas := byName["nas-unbounded"], byName["nas"]
	adp := byName["das-adaptive"]
	strict := tcfg.Tenants >= tenantsStrictScale
	if strict {
		if nas.QueueP99 > 2*int64(tcfg.MaxQueueDepth) {
			return nil, nil, fmt.Errorf("tenants: admission failed to bound the queue tail: p99 depth %d vs bound %d",
				nas.QueueP99, tcfg.MaxQueueDepth)
		}
		if unb.QueueP99 <= nas.QueueP99 {
			return nil, nil, fmt.Errorf("tenants: unbounded queue p99 %d not above bounded %d — saturation never materialized",
				unb.QueueP99, nas.QueueP99)
		}
		if adp.ThroughputMBps <= nas.ThroughputMBps {
			return nil, nil, fmt.Errorf("tenants: adaptive throughput %.2f MB/s does not beat NAS %.2f MB/s",
				adp.ThroughputMBps, nas.ThroughputMBps)
		}
		if adp.FairSpreadNanos >= nas.FairSpreadNanos {
			return nil, nil, fmt.Errorf("tenants: adaptive p99 spread %v not below NAS %v",
				sim.Time(adp.FairSpreadNanos), sim.Time(nas.FairSpreadNanos))
		}
	}

	r := &Result{
		ID: "tenants",
		Title: fmt.Sprintf("Multi-tenant skewed streams (%d tenants, %d files, Zipf %.2f)",
			tcfg.Tenants, tcfg.Files, tcfg.ZipfSkew),
		XLabel: "variant",
		YLabel: "throughput (MB/s) / p99 spread (ms) / queue p99",
	}
	for i, v := range first.Variants {
		x := float64(i + 1)
		r.Add("throughput MB/s: "+v.Name, x, v.ThroughputMBps)
		r.Add("p99 spread ms: "+v.Name, x, sim.Time(v.FairSpreadNanos).Seconds()*1e3)
		r.Add("queue p99: "+v.Name, x, float64(v.QueueP99))
		r.Notes = append(r.Notes, fmt.Sprintf(
			"%s: %d ops (%d shed) in %.3fs, %.2f MB/s, queue p99 %d (max %d), tenant p99 spread %v",
			v.Name, v.Ops, v.Sheds, v.ElapsedSeconds, v.ThroughputMBps, v.QueueP99, v.QueueMax,
			sim.Time(v.FairSpreadNanos)))
	}
	if adp != nil && nas != nil {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"adaptive vs NAS: throughput x%.2f, spread x%.2f, halo bytes x%.2f (%d restripes, %d cache promotions)",
			safeRatio(adp.ThroughputMBps, nas.ThroughputMBps),
			safeRatio(float64(adp.FairSpreadNanos), float64(nas.FairSpreadNanos)),
			safeRatio(float64(adp.RemoteBytes), float64(nas.RemoteBytes)),
			adp.RestripesCompleted, adp.Promotions))
	}
	r.Notes = append(r.Notes, "report byte-identical across two full replays")
	return r, first, nil
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// tenantsRun is one complete pass over every variant; TenantsExperiment
// runs it twice and byte-compares the reports.
func (c Config) tenantsRun(tcfg tenants.Config) (*TenantsRunReport, error) {
	report := &TenantsRunReport{
		Tenants:        tcfg.Tenants,
		Files:          tcfg.Files,
		OpsPerTenant:   tcfg.OpsPerTenant,
		ZipfSkew:       tcfg.ZipfSkew,
		StripSizeBytes: tcfg.StripSize,
		MaxQueueDepth:  tcfg.MaxQueueDepth,
		Phases:         tcfg.Phases,
		Op:             tcfg.Op,
	}
	for _, v := range tenantsVariants {
		vr, err := c.tenantsVariantRun(v, tcfg)
		if err != nil {
			return nil, fmt.Errorf("tenants %s: %w", v.name, err)
		}
		report.Variants = append(report.Variants, vr)
	}
	return report, nil
}

// tenantsVariantRun deploys one fresh platform, wires the variant's
// subsystems, replays the streams, and reports.
func (c Config) tenantsVariantRun(v tenantsVariant, tcfg tenants.Config) (TenantsVariantReport, error) {
	cfg, err := c.platform(c.Nodes)
	if err != nil {
		return TenantsVariantReport{}, err
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return TenantsVariantReport{}, err
	}
	defer sys.Close()

	if !v.bounded {
		tcfg.MaxQueueDepth = 0
	}
	if v.adaptive {
		if err := sys.EnableCache(cache.Config{BudgetBytes: tenantsCacheBudget(tcfg)}); err != nil {
			return TenantsVariantReport{}, err
		}
		if err := sys.EnableRestripe(tenantsRestripeCfg(tcfg)); err != nil {
			return TenantsVariantReport{}, err
		}
		if err := sys.EnableControl(tenantsControlCfg()); err != nil {
			return TenantsVariantReport{}, err
		}
	}

	eng, err := tenants.New(sys.Clu, sys.FS, tcfg)
	if err != nil {
		return TenantsVariantReport{}, err
	}
	width := int(tcfg.StripSize / grid.ElemSize)
	if v.planned {
		eng.SetLayouts(func(i int, strips int64) layout.Layout {
			lay, perr := sys.PlanLayout(tcfg.Op, width, grid.ElemSize, tcfg.StripSize, strips*tcfg.StripSize, 0)
			if perr != nil {
				return layout.NewRoundRobin(sys.FS.Servers())
			}
			return lay
		})
	}
	if v.adaptive {
		eng.SetFileObserver(sys.Control)
		if pat, ok := sys.Features.Lookup(tcfg.Op); ok {
			eng.SetOffloadObserver(func(file string, remoteBytes int64) {
				m, ok := sys.FS.Meta(file)
				if !ok {
					return
				}
				sys.Restripe.Observe(file, pat, predict.Params{
					ElemSize:     m.ElemSize,
					StripSize:    m.StripSize,
					FileSize:     m.Size,
					Width:        m.Width,
					OutputFactor: 1,
				}, remoteBytes)
			})
		}
	}

	if _, err := sys.RunProc("tenants-setup", eng.Setup); err != nil {
		return TenantsVariantReport{}, err
	}
	elapsed, err := sys.RunProc("tenants-run", eng.Run)
	if err != nil {
		return TenantsVariantReport{}, err
	}
	var drain sim.Time
	if v.adaptive {
		converged, dt, derr := sys.DrainRestripe(restripeDrainTimeout)
		if derr != nil {
			return TenantsVariantReport{}, derr
		}
		if !converged {
			return TenantsVariantReport{}, fmt.Errorf("restripe drain did not converge within %v", restripeDrainTimeout)
		}
		drain = dt
	}

	tot := eng.Totals()
	fair := eng.Fairness()
	vr := TenantsVariantReport{
		Name:            v.name,
		ElapsedSeconds:  elapsed.Seconds(),
		Ops:             tot.Ops,
		Reads:           tot.Reads,
		Writes:          tot.Writes,
		Offloads:        tot.Offloads,
		Sheds:           tot.Sheds,
		Deferrals:       tot.Deferrals,
		Bytes:           tot.Bytes,
		RemoteBytes:     tot.RemoteBytes,
		FairMinP99Nanos: fair.MinP99Nanos,
		FairMaxP99Nanos: fair.MaxP99Nanos,
		FairSpreadNanos: fair.SpreadNanos,
		DrainSeconds:    drain.Seconds(),
		TopFiles:        eng.TopFiles(5),
	}
	if elapsed > 0 {
		vr.ThroughputMBps = float64(tot.Bytes) / elapsed.Seconds() / 1e6
	}
	for _, q := range eng.QueueStats() {
		if q.P99 > vr.QueueP99 {
			vr.QueueP99 = q.P99
		}
		if q.Max > vr.QueueMax {
			vr.QueueMax = q.Max
		}
	}
	if v.adaptive {
		vr.CacheHitBytes = sys.Clu.CacheStats.HitBytes()
		rs := sys.Clu.RestripeStats
		vr.RestripesPlanned = rs.Planned()
		vr.RestripesCompleted = rs.Completed()
		vr.AdmissionsAllowed, vr.AdmissionsDenied = sys.Control.Admissions()
		for _, st := range sys.Control.Stats() {
			vr.Promotions += st.Promotions
			vr.Demotions += st.Demotions
		}
		if hot := sys.Control.FileStats(); len(hot) > 0 {
			top := make([]control.FileStat, 0, 5)
			// FileStats sorts by name; keep the five hottest by ops for the
			// report instead.
			all := append([]control.FileStat(nil), hot...)
			for len(top) < 5 && len(all) > 0 {
				best := 0
				for i := range all {
					if all[i].Ops > all[best].Ops {
						best = i
					}
				}
				top = append(top, all[best])
				all = append(all[:best], all[best+1:]...)
			}
			vr.HotFiles = top
		}
	}
	return vr, nil
}
