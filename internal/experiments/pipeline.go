package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"github.com/hpcio/das/internal/core"
	"github.com/hpcio/das/internal/fault"
	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/workload"
)

// pipelineSmokeGB is the dataset size for the CI smoke variant of the
// pipeline experiment: small enough for the race detector, large enough
// that every strip still carries cross-server dependence bands.
const pipelineSmokeGB = 2

// PipelineDAG is the experiment's operator graph: the terrain chain the
// paper's evaluation kernels compose naturally into — smooth, route,
// accumulate — closed by a statistics reduction. Four stages, three
// intermediate rasters the per-pass reference writes back and the
// pushdown never materializes.
func PipelineDAG() kernels.DAG {
	return kernels.Chain("terrain4",
		[]string{"gaussian-filter", "flow-routing", "flow-accumulation"}, "stats")
}

// PipelineVariantReport is one (scheme × execution mode) cell of the
// pipeline experiment.
type PipelineVariantReport struct {
	Name           string  `json:"name"`
	Scheme         string  `json:"scheme"`
	Pipelined      bool    `json:"pipelined"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// TotalBytes is every byte the run moved over the interconnect
	// (input reads, inter-stage traffic, writeback, replication).
	TotalBytes int64 `json:"total_bytes"`
	// Pushdown-only counters (zero for the per-pass reference).
	Stages            int     `json:"stages,omitempty"`
	FusedStages       int     `json:"fused_stages,omitempty"`
	Rounds            int     `json:"rounds,omitempty"`
	FetchBytes        int64   `json:"fetch_bytes,omitempty"`
	ExchangeBytes     int64   `json:"exchange_bytes,omitempty"`
	AchievedHaloBytes int64   `json:"achieved_halo_bytes,omitempty"`
	LowerBoundBytes   int64   `json:"lower_bound_bytes,omitempty"`
	LowerBoundRatio   float64 `json:"lower_bound_ratio,omitempty"`
	// Reduce is the terminal statistics vector; identical across all
	// four variants up to the documented per-pass float merge order.
	Reduce []float64 `json:"reduce"`
	// OutputVerified records the bitwise comparison against the
	// sequential in-memory DAG reference.
	OutputVerified bool `json:"output_verified"`
}

// PipelineFaultReport is the crash-and-restart run of the pushdown: a
// storage server dies halfway through and returns shortly after with its
// in-memory pipeline state gone, so the client must redispatch its strips
// and the servers must catch lost lineage up from the durable input.
type PipelineFaultReport struct {
	HealthySeconds float64 `json:"healthy_seconds"`
	CrashedSeconds float64 `json:"crashed_seconds"`
	Redispatches   int64   `json:"redispatches"`
	CatchUps       int64   `json:"catch_ups"`
	FaultEvents    int     `json:"fault_events_applied"`
	OutputVerified bool    `json:"output_verified"`
}

// PipelineRunReport is the JSON-able record of one pipeline experiment
// (BENCH_pipeline.json).
type PipelineRunReport struct {
	DAG            string                  `json:"dag"`
	DAGStages      int                     `json:"dag_stages"`
	SizeGB         int                     `json:"size_gb"`
	Width          int                     `json:"width"`
	StripSizeBytes int64                   `json:"strip_size_bytes"`
	Variants       []PipelineVariantReport `json:"variants"`
	Fault          PipelineFaultReport     `json:"fault"`
	// DeterministicReplay records that a second full run of the
	// experiment produced a byte-identical report.
	DeterministicReplay bool `json:"deterministic_replay"`
}

// PipelineExperiment runs the kernel-DAG pushdown comparison: the
// four-stage terrain DAG executed per-pass (every intermediate raster
// written back and re-read) and pipelined (inter-stage traffic reduced
// to halo-boundary bands) under both NAS round-robin and DAS-planned
// placement, plus a crash-and-restart run of the DAS pushdown on a
// mirrored layout. Every run's grid output is verified bitwise against
// the sequential in-memory reference; the pipelined DAS run must move
// strictly fewer total bytes than its per-pass twin; the whole
// experiment runs twice and the reports must be byte-identical.
func (c Config) PipelineExperiment(smoke bool) (*Result, *PipelineRunReport, error) {
	sizeGB := c.SizesGB[0]
	if smoke {
		sizeGB = pipelineSmokeGB
	}
	first, err := c.pipelineRun(sizeGB)
	if err != nil {
		return nil, nil, err
	}
	second, err := c.pipelineRun(sizeGB)
	if err != nil {
		return nil, nil, fmt.Errorf("pipeline replay: %w", err)
	}
	b1, err := json.Marshal(first)
	if err != nil {
		return nil, nil, err
	}
	b2, err := json.Marshal(second)
	if err != nil {
		return nil, nil, err
	}
	first.DeterministicReplay = bytes.Equal(b1, b2)
	if !first.DeterministicReplay {
		return nil, nil, fmt.Errorf("pipeline: replay diverged — the pushdown is not deterministic")
	}

	r := &Result{
		ID: "pipeline",
		Title: fmt.Sprintf("Kernel-DAG pushdown vs per-pass (%s, %d GB)",
			first.DAG, sizeGB),
		XLabel: "variant",
		YLabel: "execution time (s) / interconnect MB",
	}
	for i, v := range first.Variants {
		x := float64(i + 1)
		r.Add("exec s: "+v.Name, x, v.ElapsedSeconds)
		r.Add("interconnect MB: "+v.Name, x, float64(v.TotalBytes)/1e6)
		note := fmt.Sprintf("%s: %.4fs, %.2f MB moved", v.Name, v.ElapsedSeconds, float64(v.TotalBytes)/1e6)
		if v.Pipelined {
			note += fmt.Sprintf("; %d/%d stages fused, %d rounds, halo %d B vs composed-offset bound %d B (ratio %.3f)",
				v.FusedStages, v.Stages, v.Rounds, v.AchievedHaloBytes, v.LowerBoundBytes, v.LowerBoundRatio)
		}
		r.Notes = append(r.Notes, note)
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("fault run: crash+restart mid-pushdown, %d redispatches, %d catch-ups, output still bitwise-identical",
			first.Fault.Redispatches, first.Fault.CatchUps),
		"all grid outputs verified bitwise against the sequential DAG reference",
		"report byte-identical across two full replays")
	return r, first, nil
}

// pipelineRun is one complete pass over the four variants and the fault
// run; PipelineExperiment runs it twice and byte-compares the reports.
func (c Config) pipelineRun(sizeGB int) (*PipelineRunReport, error) {
	d := PipelineDAG()
	elems := int64(sizeGB) * BytesPerPaperGB / grid.ElemSize
	if elems%int64(c.Width) != 0 {
		return nil, fmt.Errorf("pipeline: %d GB does not tile width %d", sizeGB, c.Width)
	}
	g := workload.Terrain(c.Width, int(elems/int64(c.Width)), c.Seed)
	want, err := kernels.ApplyDAG(d, kernels.Default(), kernels.DefaultCombiners(), g)
	if err != nil {
		return nil, err
	}
	wantRed := kernels.ReduceStriped(kernels.Stats{}, want, c.StripSize/grid.ElemSize)

	report := &PipelineRunReport{
		DAG:            d.Name,
		DAGStages:      len(d.Nodes),
		SizeGB:         sizeGB,
		Width:          c.Width,
		StripSizeBytes: c.StripSize,
	}
	variants := []struct {
		name    string
		scheme  core.Scheme
		perPass bool
	}{
		{"nas-per-pass", core.NAS, true},
		{"nas-pipelined", core.NAS, false},
		{"das-per-pass", core.DAS, true},
		{"das-pipelined", core.DAS, false},
	}
	for _, v := range variants {
		vr, err := c.pipelineVariantRun(v.name, v.scheme, v.perPass, d, g, want, wantRed)
		if err != nil {
			return nil, fmt.Errorf("pipeline %s: %w", v.name, err)
		}
		report.Variants = append(report.Variants, vr)
	}

	// The headline claim: the pushdown's whole point is removing the
	// intermediate writeback, so under the same DAS placement it must
	// move strictly fewer bytes than the per-pass reference.
	byName := make(map[string]*PipelineVariantReport)
	for i := range report.Variants {
		byName[report.Variants[i].Name] = &report.Variants[i]
	}
	piped, per := byName["das-pipelined"], byName["das-per-pass"]
	if piped.TotalBytes >= per.TotalBytes {
		return nil, fmt.Errorf("pipeline: pushdown moved %d bytes, per-pass %d — pushdown must move strictly fewer",
			piped.TotalBytes, per.TotalBytes)
	}
	// Round-robin grants no local halo, so the NAS pushdown's achieved
	// traffic is directly comparable to the unreplicated-placement
	// bound. (The DAS-planned layout prepays halos through replication
	// at ingest and may legitimately undercut it.)
	if rr := byName["nas-pipelined"]; rr.AchievedHaloBytes < rr.LowerBoundBytes {
		return nil, fmt.Errorf("pipeline: round-robin achieved halo bytes %d below the composed-offset bound %d",
			rr.AchievedHaloBytes, rr.LowerBoundBytes)
	}

	fr, err := c.pipelineFaultRun(d, g, want, wantRed)
	if err != nil {
		return nil, fmt.Errorf("pipeline fault run: %w", err)
	}
	report.Fault = fr
	return report, nil
}

// pipelineSystem deploys a fresh platform with the input raster placed
// under the given layout (nil plans the DAS improved layout for the
// chain's first kernel).
func (c Config) pipelineSystem(g *grid.Grid, lay layout.Layout) (*core.System, error) {
	cfg, err := c.platform(c.Nodes)
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	if lay == nil {
		lay, err = sys.PlanLayout("gaussian-filter", g.W, grid.ElemSize, c.StripSize, g.SizeBytes(), 0)
		if err != nil {
			sys.Close()
			return nil, err
		}
	}
	if _, err := sys.IngestGrid("input", g, lay, c.StripSize); err != nil {
		sys.Close()
		return nil, err
	}
	return sys, nil
}

// pipelineVariantRun executes the DAG once on a fresh platform and
// verifies its output against the sequential reference.
func (c Config) pipelineVariantRun(name string, scheme core.Scheme, perPass bool, d kernels.DAG, g, want *grid.Grid, wantRed []float64) (PipelineVariantReport, error) {
	var lay layout.Layout
	if scheme == core.NAS {
		lay = layout.NewRoundRobin(c.Nodes / 2)
	}
	sys, err := c.pipelineSystem(g, lay)
	if err != nil {
		return PipelineVariantReport{}, err
	}
	defer sys.Close()
	rep, err := sys.ExecuteDAG(core.DAGRequest{
		DAG: d, Input: "input", Output: "output",
		Scheme: scheme, PerPass: perPass, DisablePrediction: !perPass,
	})
	if err != nil {
		return PipelineVariantReport{}, err
	}
	if rep.Pipelined == perPass {
		return PipelineVariantReport{}, fmt.Errorf("Pipelined=%v with perPass=%v", rep.Pipelined, perPass)
	}
	got, err := sys.FetchGrid(rep.Output)
	if err != nil {
		return PipelineVariantReport{}, err
	}
	if !got.Equal(want) {
		return PipelineVariantReport{}, fmt.Errorf("grid output diverged from the sequential DAG reference")
	}
	if err := pipelineCheckReduce(rep.Reduce, wantRed, rep.Pipelined); err != nil {
		return PipelineVariantReport{}, err
	}
	vr := PipelineVariantReport{
		Name:           name,
		Scheme:         scheme.String(),
		Pipelined:      rep.Pipelined,
		ElapsedSeconds: rep.ExecTime.Seconds(),
		TotalBytes:     pipelineTotalBytes(rep.Traffic),
		Reduce:         rep.Reduce,
		OutputVerified: true,
	}
	if rep.Pipelined {
		vr.Stages = rep.Run.Stages
		vr.FusedStages = rep.Run.FusedStages
		vr.Rounds = rep.Run.Rounds
		vr.FetchBytes = rep.Run.FetchBytes
		vr.ExchangeBytes = rep.Run.ExchangeBytes
		vr.AchievedHaloBytes = rep.Run.AchievedHaloBytes
		vr.LowerBoundBytes = rep.Run.LowerBoundBytes
		vr.LowerBoundRatio = rep.Run.LowerBoundRatio()
	}
	return vr, nil
}

// pipelineFaultRun crashes a storage server halfway through the DAS
// pushdown and restarts it shortly after — the restart wipes the
// server's in-memory pipeline state, so recovery must both redispatch
// the dead server's strips and catch lost lineage up from the durable
// input. The input rides the fully mirrored grouped layout so every
// strip keeps a live copy throughout.
func (c Config) pipelineFaultRun(d kernels.DAG, g, want *grid.Grid, wantRed []float64) (PipelineFaultReport, error) {
	servers := c.Nodes / 2
	probe := layout.NewLocator(grid.ElemSize, c.StripSize, layout.NewRoundRobin(servers))
	halo := probe.RequiredHalo(int64(c.Width) + 1)
	mirrored := layout.NewGroupedReplicated(servers, halo, halo)
	req := core.DAGRequest{
		DAG: d, Input: "input", Output: "output",
		Scheme: core.DAS, DisablePrediction: true,
	}

	healthy, err := c.pipelineSystem(g, mirrored)
	if err != nil {
		return PipelineFaultReport{}, err
	}
	healthyRep, err := healthy.ExecuteDAG(req)
	healthy.Close()
	if err != nil {
		return PipelineFaultReport{}, fmt.Errorf("healthy: %w", err)
	}

	sys, err := c.pipelineSystem(g, mirrored)
	if err != nil {
		return PipelineFaultReport{}, err
	}
	defer sys.Close()
	const crashed = 1
	crashAt := healthyRep.ExecTime / 2
	plan := fault.Plan{Events: []fault.Event{
		{At: crashAt, Kind: fault.Crash, Server: crashed},
		{At: crashAt + restartDelay, Kind: fault.Restart, Server: crashed},
	}}
	if err := sys.Clu.InstallFaultPlan(plan); err != nil {
		return PipelineFaultReport{}, err
	}
	rep, err := sys.ExecuteDAG(req)
	if err != nil {
		return PipelineFaultReport{}, fmt.Errorf("crashed run: %w", err)
	}
	if !rep.Pipelined {
		return PipelineFaultReport{}, fmt.Errorf("crashed run fell back to per-pass: %s", rep.DegradedReason)
	}
	got, err := sys.FetchGrid(rep.Output)
	if err != nil {
		return PipelineFaultReport{}, err
	}
	if !got.Equal(want) {
		return PipelineFaultReport{}, fmt.Errorf("crashed run diverged from the sequential DAG reference")
	}
	if err := pipelineCheckReduce(rep.Reduce, wantRed, true); err != nil {
		return PipelineFaultReport{}, err
	}
	if rep.Run.Redispatches+rep.Run.CatchUps == 0 {
		return PipelineFaultReport{}, fmt.Errorf("crash at %v triggered no recovery — the fault never bit", crashAt)
	}
	return PipelineFaultReport{
		HealthySeconds: healthyRep.ExecTime.Seconds(),
		CrashedSeconds: rep.ExecTime.Seconds(),
		Redispatches:   rep.Run.Redispatches,
		CatchUps:       rep.Run.CatchUps,
		FaultEvents:    sys.Clu.FaultLog.Len(),
		OutputVerified: true,
	}, nil
}

// pipelineCheckReduce verifies the terminal statistics vector. The
// pushdown's canonical ascending-strip merge reproduces ReduceStriped
// exactly; the per-pass reference merges per-server partials, so its
// float sums agree only up to merge order (count/min/max stay exact).
func pipelineCheckReduce(got, want []float64, exact bool) error {
	if len(got) != len(want) {
		return fmt.Errorf("reduce length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] == want[i] {
			continue
		}
		if !exact && (i == kernels.StatSum || i == kernels.StatSumSq) &&
			math.Abs(got[i]-want[i]) <= 1e-9*math.Abs(want[i]) {
			continue
		}
		return fmt.Errorf("reduce[%d] = %v, want %v", i, got[i], want[i])
	}
	return nil
}

func pipelineTotalBytes(m map[metrics.TrafficClass]int64) int64 {
	var sum int64
	for _, b := range m {
		sum += b
	}
	return sum
}
