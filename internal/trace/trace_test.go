package trace

import (
	"strings"
	"testing"

	"github.com/hpcio/das/internal/sim"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(0, 0, "a", "b", "c")
	if r.Len() != 0 || r.Events() != nil || r.Truncated() {
		t.Error("nil recorder misbehaved")
	}
	r.Reset()
}

func TestRecordAndSortedEvents(t *testing.T) {
	r := New(0)
	r.Record(5*sim.Millisecond, sim.Millisecond, "b", "y", "later")
	r.Record(1*sim.Millisecond, sim.Millisecond, "a", "x", "earlier")
	r.Record(5*sim.Millisecond, 0, "a", "x", "tie broken by actor")
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("%d events", len(evs))
	}
	if evs[0].Note != "earlier" || evs[1].Actor != "a" || evs[2].Actor != "b" {
		t.Errorf("order wrong: %+v", evs)
	}
}

func TestCapAndTruncated(t *testing.T) {
	r := New(2)
	for i := 0; i < 5; i++ {
		r.Record(sim.Time(i), 0, "a", "p", "")
	}
	if r.Len() != 2 || !r.Truncated() {
		t.Errorf("Len=%d Truncated=%v", r.Len(), r.Truncated())
	}
	if !strings.Contains(r.Timeline(), "event cap reached") {
		t.Error("timeline does not flag truncation")
	}
}

func TestTimelineFormatting(t *testing.T) {
	r := New(0)
	r.Record(12*sim.Millisecond, 2*sim.Millisecond, "server-3", "fetch", "strip 17")
	tl := r.Timeline()
	for _, want := range []string{"12.000ms", "+2.000ms", "server-3", "fetch", "strip 17"} {
		if !strings.Contains(tl, want) {
			t.Errorf("timeline missing %q:\n%s", want, tl)
		}
	}
	if New(0).Timeline() != "(no events)\n" {
		t.Error("empty timeline wrong")
	}
}

func TestSummarizeAggregates(t *testing.T) {
	r := New(0)
	r.Record(0, 2*sim.Millisecond, "s0", "fetch", "")
	r.Record(5*sim.Millisecond, 3*sim.Millisecond, "s0", "fetch", "")
	r.Record(1*sim.Millisecond, 1*sim.Millisecond, "s0", "compute", "")
	r.Record(0, 4*sim.Millisecond, "s1", "compute", "")
	sums := r.Summarize()
	if len(sums) != 3 {
		t.Fatalf("%d summaries", len(sums))
	}
	// s0 first, its phases by descending total: fetch (5ms) then compute.
	if sums[0].Actor != "s0" || sums[0].Phase != "fetch" || sums[0].Total != 5*sim.Millisecond || sums[0].Count != 2 {
		t.Errorf("first summary %+v", sums[0])
	}
	if sums[1].Phase != "compute" || sums[2].Actor != "s1" {
		t.Errorf("order: %+v", sums)
	}
	tbl := r.SummaryTable()
	if !strings.Contains(tbl, "actor") || !strings.Contains(tbl, "s1") {
		t.Errorf("table:\n%s", tbl)
	}
}

func TestReset(t *testing.T) {
	r := New(0)
	r.Record(0, 0, "a", "p", "")
	r.Reset()
	if r.Len() != 0 {
		t.Error("reset failed")
	}
}
