// Package trace records a timeline of annotated events from a simulation
// run: which actor (a scheme worker, a storage server's AS helper, a PFS
// migration) did what, when, for how long. The DAS layers emit events when
// a Recorder is attached to the cluster, so a run can be replayed as a
// per-actor timeline — the quickest way to see why NAS spends its life
// waiting for dependent strips while DAS's servers stream local reads.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/hpcio/das/internal/sim"
)

// Event is one annotated interval (or instant, when Dur is zero).
type Event struct {
	At    sim.Time
	Dur   sim.Time
	Actor string // e.g. "server-3", "ts-worker-0"
	Phase string // e.g. "local-read", "fetch", "compute"
	Note  string // free-form detail
}

// Recorder collects events. It is safe for concurrent use (simulation
// callbacks are single-threaded, but tests may read while building).
// The zero value is unusable; create with New. A nil *Recorder is valid
// everywhere and records nothing, so call sites need no guards.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	limit  int
}

// New creates a recorder capping storage at limit events (0 = 1<<20).
// Beyond the cap new events are dropped and Truncated reports true.
func New(limit int) *Recorder {
	if limit <= 0 {
		limit = 1 << 20
	}
	return &Recorder{limit: limit}
}

// Record appends an event; nil recorders ignore it.
func (r *Recorder) Record(at, dur sim.Time, actor, phase, note string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.events) < r.limit {
		r.events = append(r.events, Event{At: at, Dur: dur, Actor: actor, Phase: phase, Note: note})
	}
	r.mu.Unlock()
}

// Len returns the number of stored events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Truncated reports whether the cap dropped events.
func (r *Recorder) Truncated() bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events) >= r.limit
}

// Events returns a copy sorted by (At, Actor, Phase).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Actor != b.Actor {
			return a.Actor < b.Actor
		}
		return a.Phase < b.Phase
	})
	return out
}

// Reset discards all events.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = r.events[:0]
	r.mu.Unlock()
}

// Timeline renders the events chronologically, one line each:
//
//	12.345ms +2.100ms  server-3      fetch        strip 17 from server 4
func (r *Recorder) Timeline() string {
	evs := r.Events()
	if len(evs) == 0 {
		return "(no events)\n"
	}
	actorW, phaseW := 0, 0
	for _, e := range evs {
		if len(e.Actor) > actorW {
			actorW = len(e.Actor)
		}
		if len(e.Phase) > phaseW {
			phaseW = len(e.Phase)
		}
	}
	var b strings.Builder
	for _, e := range evs {
		dur := ""
		if e.Dur > 0 {
			dur = "+" + e.Dur.String()
		}
		fmt.Fprintf(&b, "%12s %-12s %-*s %-*s %s\n",
			e.At.String(), dur, actorW, e.Actor, phaseW, e.Phase, e.Note)
	}
	if r.Truncated() {
		b.WriteString("... (event cap reached, tail dropped)\n")
	}
	return b.String()
}

// PhaseSummary aggregates total duration and count per (actor, phase).
type PhaseSummary struct {
	Actor, Phase string
	Total        sim.Time
	Count        int
}

// Summarize returns per-actor-per-phase totals, ordered by actor then by
// descending total duration — the "where did the time go" view.
func (r *Recorder) Summarize() []PhaseSummary {
	type key struct{ actor, phase string }
	acc := make(map[key]*PhaseSummary)
	for _, e := range r.Events() {
		k := key{e.Actor, e.Phase}
		s, ok := acc[k]
		if !ok {
			s = &PhaseSummary{Actor: e.Actor, Phase: e.Phase}
			acc[k] = s
		}
		s.Total += e.Dur
		s.Count++
	}
	out := make([]PhaseSummary, 0, len(acc))
	for _, s := range acc {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Actor != out[j].Actor {
			return out[i].Actor < out[j].Actor
		}
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}

// SummaryTable renders Summarize as aligned text.
func (r *Recorder) SummaryTable() string {
	sums := r.Summarize()
	if len(sums) == 0 {
		return "(no events)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-14s %12s %7s\n", "actor", "phase", "total", "count")
	for _, s := range sums {
		fmt.Fprintf(&b, "%-20s %-14s %12s %7d\n", s.Actor, s.Phase, s.Total.String(), s.Count)
	}
	return b.String()
}
