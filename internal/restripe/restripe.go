// Package restripe is the online restriping subsystem: it watches per-file
// offload decisions and observed dependent-halo traffic, asks the
// prediction core for the improved grouped-replicated distribution within
// a capacity budget, and migrates live files toward it in the background
// on the DES clock — without ever making a read see stale or missing data.
//
// The migration protocol per strip is copy-then-flip-then-retire: the
// strip's bytes are pushed to every target holder that lacks a copy, the
// shared move set bit flips (from then on the file's layout.Migrating
// dual layout resolves the strip under the target placement), and copies
// the target layout no longer places are dropped. Readers racing a flip
// either find the old copy still present or fail over to the new holders
// through the pfs replica-failover path; the strip-invalidation hook fires
// for every copy created or retired, so caches never serve stale bytes.
//
// The persisted migration cursor is the per-move done set plus the move
// set itself, held in the (crash-free) metadata service alongside the
// file's dual layout: a storage-server crash mid-migration fails the
// in-flight moves fast, parks the migration, and a later tick resumes it
// from exactly the strips that had not committed.
package restripe

import (
	"fmt"

	"github.com/hpcio/das/internal/cluster"
	"github.com/hpcio/das/internal/features"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/pfs"
	"github.com/hpcio/das/internal/predict"
	"github.com/hpcio/das/internal/sim"
)

// Config tunes the migrator. The zero value is usable: Normalize fills in
// defaults sized for the experiment cluster.
type Config struct {
	// MaxOverhead caps the target layout's replication capacity overhead
	// (the paper's 2·halo/r budget).
	MaxOverhead float64
	// MinObservedBytes is the dependent-traffic threshold: a file becomes
	// a migration candidate once its observed (or predicted, for rejected
	// offloads) dependent-halo bytes reach it.
	MinObservedBytes int64
	// SampleEvery is the background tick period on the DES clock.
	SampleEvery sim.Time
	// MovesPerTick bounds how many strip moves one tick may issue, keeping
	// the migration incremental.
	MovesPerTick int
	// MaxInFlightBytes bounds the migration bytes simultaneously in flight
	// against any one server (as copy source or target), so foreground I/O
	// is never starved by the copier. Moves that would exceed it stall to
	// the next tick.
	MaxInFlightBytes int64
	// RetryDelay is how long a migration parks after a move failed against
	// a crashed server before the cursor is retried.
	RetryDelay sim.Time
}

// Normalize fills zero fields with defaults and validates the rest.
func (c Config) Normalize() (Config, error) {
	if c.MaxOverhead == 0 {
		c.MaxOverhead = 0.5
	}
	if c.MaxOverhead < 0 || c.MaxOverhead > 2 {
		return c, fmt.Errorf("restripe: overhead budget %v outside (0,2]", c.MaxOverhead)
	}
	if c.MinObservedBytes == 0 {
		c.MinObservedBytes = 1
	}
	if c.MinObservedBytes < 0 {
		return c, fmt.Errorf("restripe: negative trigger threshold %d", c.MinObservedBytes)
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 500 * sim.Microsecond
	}
	if c.SampleEvery < 0 {
		return c, fmt.Errorf("restripe: negative sample period %v", c.SampleEvery)
	}
	if c.MovesPerTick == 0 {
		c.MovesPerTick = 8
	}
	if c.MovesPerTick < 0 {
		return c, fmt.Errorf("restripe: negative moves per tick %d", c.MovesPerTick)
	}
	if c.MaxInFlightBytes == 0 {
		c.MaxInFlightBytes = 256 * 1024
	}
	if c.MaxInFlightBytes < 0 {
		return c, fmt.Errorf("restripe: negative in-flight budget %d", c.MaxInFlightBytes)
	}
	if c.RetryDelay == 0 {
		c.RetryDelay = 20 * sim.Millisecond
	}
	if c.RetryDelay < 0 {
		return c, fmt.Errorf("restripe: negative retry delay %v", c.RetryDelay)
	}
	return c, nil
}

// State names a migration's position in its lifecycle.
type State int

const (
	// Running means the copier is working through the plan.
	Running State = iota
	// Waiting means a move failed against a crashed server and the
	// migration is parked until the retry delay elapses.
	Waiting
	// Done means the file converged and carries the target layout.
	Done
)

// String names the state for reports.
func (s State) String() string {
	switch s {
	case Running:
		return "running"
	case Waiting:
		return "waiting"
	case Done:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Migration is one file's live layout transition.
type Migration struct {
	file    string
	old     layout.Layout
	target  layout.GroupedReplicated
	dual    *layout.Migrating
	moves   *layout.MoveSet
	plan    []*move
	byStrip map[int64]*move
	// cursor is the first plan index whose move has not committed — with
	// the per-move done flags, the persisted resume point.
	cursor      int
	state       State
	nextRetryAt sim.Time
	startedAt   sim.Time
	finishedAt  sim.Time
}

// Status is a migration snapshot for progress reports.
type Status struct {
	File       string
	From, To   string
	State      string
	Moved      int64
	Total      int64
	StartedAt  sim.Time
	FinishedAt sim.Time // zero while in progress
}

func (st Status) String() string {
	if st.State == Done.String() {
		return fmt.Sprintf("%s: %s -> %s, %d/%d strips, done at %v",
			st.File, st.From, st.To, st.Moved, st.Total, st.FinishedAt)
	}
	return fmt.Sprintf("%s: %s -> %s, %d/%d strips, %s",
		st.File, st.From, st.To, st.Moved, st.Total, st.State)
}

// Event is one log entry of the migration lifecycle, for reports and the
// determinism tests.
type Event struct {
	At   sim.Time
	File string
	Kind string // "plan", "stall", "park", "resume", "complete"
}

func (e Event) String() string {
	return fmt.Sprintf("[%v] %s %s", e.At, e.Kind, e.File)
}

// Migrator owns every live migration and runs the throttled copier as a
// chain of daemon timers on the DES clock, like the cache manager's tuning
// loop: each tick spawns at most one batch process that issues a bounded
// set of moves, so an idle migrator never keeps Engine.Run alive, while an
// active one makes progress during whatever workload is running.
type Migrator struct {
	eng   *sim.Engine
	clu   *cluster.Cluster
	fs    *pfs.FileSystem
	cfg   Config
	stats *metrics.Restripe
	// inner is the chained strip-invalidation listener (the halo-strip
	// cache manager when both subsystems are enabled).
	inner pfs.StripInvalidator

	observed  map[string]int64
	active    map[string]*Migration
	order     []string
	completed []*Migration
	inflight  []int64 // per-server migration bytes currently in flight
	events    []Event

	fromNode int
	timer    *sim.Timer
	started  bool
	batching bool

	// watcher and admission are the p99 controller's hooks: lifecycle
	// notifications out, admission verdicts in.
	watcher   Watcher
	admission func(file string) bool
}

// NewMigrator builds the subsystem over a deployed file system. stats is
// the cluster-wide counter collector (nil allocates a private one).
func NewMigrator(clu *cluster.Cluster, fs *pfs.FileSystem, cfg Config, stats *metrics.Restripe) (*Migrator, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	if stats == nil {
		stats = metrics.NewRestripe()
	}
	return &Migrator{
		eng:      clu.Eng,
		clu:      clu,
		fs:       fs,
		cfg:      cfg,
		stats:    stats,
		observed: make(map[string]int64),
		active:   make(map[string]*Migration),
		inflight: make([]int64, fs.Servers()),
		fromNode: clu.ComputeID(0),
	}, nil
}

// Config returns the normalized configuration.
func (m *Migrator) Config() Config { return m.cfg }

// Counters returns the migration counter collector.
func (m *Migrator) Counters() *metrics.Restripe { return m.stats }

// SetInner chains a downstream strip-invalidation listener: the migrator
// forwards every notification to it before doing its own bookkeeping, so
// the halo-strip cache keeps seeing all strip mutations when both
// subsystems are enabled.
func (m *Migrator) SetInner(inv pfs.StripInvalidator) { m.inner = inv }

// Watcher observes migration lifecycle transitions. The unified p99
// controller implements it to start its post-restripe cool-down: every
// plan, strip flip, and completion restarts the quiet period during which
// replica tuning holds and no new migration is admitted.
type Watcher interface {
	MigrationPlanned(file string)
	StripFlipped(file string, strip int64)
	MigrationCompleted(file string)
}

// SetWatcher wires a migration lifecycle listener (nil disables).
func (m *Migrator) SetWatcher(w Watcher) { m.watcher = w }

// SetAdmission installs a gate consulted before a new migration is
// admitted (nil removes it). Observe still accumulates evidence while the
// gate refuses; the file is re-considered on later observations, so a
// migration deferred by a cool-down happens once the gate opens.
func (m *Migrator) SetAdmission(gate func(file string) bool) { m.admission = gate }

// Start arms the background tick. Ticks are daemon timers, so an idle
// system still terminates.
func (m *Migrator) Start() {
	if m.started || m.cfg.SampleEvery <= 0 {
		return
	}
	m.started = true
	m.timer = m.eng.AfterFuncDaemon(m.cfg.SampleEvery, m.tick)
}

// Stop disarms the background tick. In-flight batches finish.
func (m *Migrator) Stop() {
	if m.timer != nil {
		m.timer.Stop()
		m.timer = nil
	}
	m.started = false
}

// Observe feeds one executed operation's dependent-traffic evidence for a
// file: the bytes its halo fetches actually moved between servers, or —
// for an offload the predictor rejected — the bytes the analysis predicts
// an offload would move. Once the accumulated evidence crosses the
// configured threshold and the prediction core recommends a different
// layout within the overhead budget, the file is admitted for migration.
func (m *Migrator) Observe(file string, pat features.Pattern, p predict.Params, dependentBytes int64) {
	if dependentBytes > 0 {
		m.observed[file] += dependentBytes
	}
	if _, migrating := m.active[file]; migrating {
		return
	}
	if m.observed[file] < m.cfg.MinObservedBytes {
		return
	}
	meta, ok := m.fs.Meta(file)
	if !ok {
		return
	}
	if _, dual := meta.Layout.(*layout.Migrating); dual {
		return
	}
	target, ok, err := predict.RecommendLayout(pat, p, m.fs.Servers(), m.cfg.MaxOverhead)
	if err != nil || !ok {
		return
	}
	if target.Name() == meta.Layout.Name() {
		return
	}
	if m.admission != nil && !m.admission(meta.Name) {
		return // deferred: evidence is kept, a later Observe retries
	}
	m.admit(meta, target)
}

// admit plans a migration and installs the dual layout: from this moment
// every read of the file follows the move set.
func (m *Migrator) admit(meta *pfs.FileMeta, target layout.GroupedReplicated) {
	moves := layout.NewMoveSet(meta.Strips())
	dual := layout.NewMigrating(meta.Layout, target, moves)
	mig := &Migration{
		file:      meta.Name,
		old:       meta.Layout,
		target:    target,
		dual:      dual,
		moves:     moves,
		plan:      planMoves(meta, meta.Layout, target),
		byStrip:   make(map[int64]*move, meta.Strips()),
		state:     Running,
		startedAt: m.eng.Now(),
	}
	for _, mv := range mig.plan {
		mig.byStrip[mv.strip] = mv
	}
	if err := m.fs.SetLayout(meta.Name, dual); err != nil {
		return // layout span mismatch: leave the file alone
	}
	m.active[meta.Name] = mig
	m.order = append(m.order, meta.Name)
	m.stats.AddPlanned()
	m.logEvent(meta.Name, "plan")
	if m.watcher != nil {
		m.watcher.MigrationPlanned(meta.Name)
	}
}

// tick spawns one bounded copier batch when migrations are pending, then
// re-arms itself.
func (m *Migrator) tick() {
	if len(m.order) > 0 && !m.batching {
		m.batching = true
		m.eng.Spawn("restripe-batch", m.runBatch)
	}
	m.timer = m.eng.AfterFuncDaemon(m.cfg.SampleEvery, m.tick)
}

// runBatch issues up to MovesPerTick moves across the active migrations in
// admission order.
func (m *Migrator) runBatch(p *sim.Proc) {
	defer func() { m.batching = false }()
	budget := m.cfg.MovesPerTick
	for _, file := range append([]string(nil), m.order...) {
		if budget <= 0 {
			return
		}
		mig, ok := m.active[file]
		if !ok {
			continue
		}
		if mig.state == Waiting {
			if p.Now() < mig.nextRetryAt {
				continue
			}
			mig.state = Running
		}
		budget -= m.batchFile(p, mig, budget)
	}
}

// moveOutcome carries one move's result back to the batch.
type moveOutcome struct {
	mv      *move
	src     int
	targets []int
	bytes   int64
	err     error
}

// batchFile issues up to limit moves of one migration, waits for them, and
// advances the cursor. It returns how many moves it issued.
func (m *Migrator) batchFile(p *sim.Proc, mig *Migration, limit int) int {
	issued := 0
	stalled := false
	var sigs []*sim.Signal[moveOutcome]
	for i := mig.cursor; i < len(mig.plan) && issued < limit; i++ {
		mv := mig.plan[i]
		if mv.done || mv.inflight {
			continue
		}
		src, targets, bytes, live := m.resolve(mig, mv)
		if !live {
			// Fail fast without an RPC: the write path would bridge a
			// planned crash by waiting out the down-window, but a migration
			// must park and resume from its cursor instead of stalling a
			// foreground-adjacent process on a dead server.
			m.parkMove(mig, mv)
			break
		}
		if len(targets) == 0 {
			// Every target holder already stores a fresh copy (a halo
			// replica the old layout happened to place, kept fresh by the
			// write path's replica forwarding): the move is a pure metadata
			// flip. These commit even after the byte budget stalled a copy —
			// they cost nothing against it.
			m.commit(mig, mv, 0)
			issued++
			continue
		}
		if stalled {
			continue
		}
		if !m.reserve(src, targets, bytes) {
			// Out of in-flight budget for copies this batch; keep scanning
			// for zero-byte flips, which need no reservation.
			m.stats.AddThrottleStall()
			m.logEvent(mig.file, "stall")
			stalled = true
			continue
		}
		mv.inflight = true
		mv.expect = len(targets)
		issued++
		sig := sim.NewSignal[moveOutcome](m.eng, "restripe-move")
		sigs = append(sigs, sig)
		p.Spawn("restripe-move", func(c *sim.Proc) {
			err := m.fs.MigrateStrip(c, m.fromNode, src, mig.file, mv.strip, targets)
			sig.Fire(moveOutcome{mv: mv, src: src, targets: targets, bytes: bytes, err: err})
		})
	}
	for _, out := range sim.WaitAll(p, sigs) {
		m.release(out.src, out.targets, out.bytes)
		out.mv.inflight = false
		out.mv.expect = 0
		if out.err != nil || out.mv.dirty {
			// The attempt did not commit, but some of its targets may
			// already store its bytes — and any write landing before the
			// retry refreshes only the old placement's holders, so those
			// copies can silently go stale. Record them so resolve re-ships
			// them on retry instead of trusting Holds and committing the
			// move as a pure metadata flip over pre-write bytes.
			out.mv.markReship(out.targets)
			if out.mv.dirty {
				// A foreign write landed while the copy was in flight: the
				// shipped bytes may predate it. Discard the attempt; the
				// cursor re-copies the strip next batch.
				out.mv.dirty = false
				m.stats.AddRecopy()
			}
			if out.err != nil {
				m.parkMove(mig, out.mv)
			}
			continue
		}
		m.commit(mig, out.mv, out.bytes)
	}
	m.advance(mig)
	return issued
}

// resolve computes a move's current source holder and the target holders
// still lacking a trustworthy copy, against live server holdings — so a
// re-executed move never re-ships bytes a committed placement already
// covers, while targets a discarded attempt touched (mv.reship) are
// always re-shipped: their copies may predate a write that only reached
// the old placement. live is false when the source or any target server
// is down.
func (m *Migrator) resolve(mig *Migration, mv *move) (src int, targets []int, bytes int64, live bool) {
	src = -1
	for _, h := range layout.Holders(mig.dual, mv.strip) {
		if m.fs.Server(h).Holds(mig.file, mv.strip) {
			src = h
			break
		}
	}
	if src < 0 {
		// No current holder stores the strip (it vanished with a crashed
		// server before replication): park and hope a restart brings it
		// back.
		return 0, nil, 0, false
	}
	meta, ok := m.fs.Meta(mig.file)
	if !ok {
		return 0, nil, 0, false
	}
	lo, hi := meta.StripBounds(mv.strip)
	for _, h := range layout.Holders(mig.target, mv.strip) {
		if mv.reship[h] || !m.fs.Server(h).Holds(mig.file, mv.strip) {
			targets = append(targets, h)
		}
	}
	bytes = int64(len(targets)) * (hi - lo)
	if m.clu.ServerDown(src) {
		return src, targets, bytes, false
	}
	for _, t := range targets {
		if m.clu.ServerDown(t) {
			return src, targets, bytes, false
		}
	}
	return src, targets, bytes, true
}

// parkMove marks a move failed and parks its migration for the retry
// delay. The committed prefix is untouched: when the migration resumes,
// the cursor re-executes exactly the moves that had not committed.
func (m *Migrator) parkMove(mig *Migration, mv *move) {
	mv.failed = true
	if mig.state != Waiting {
		mig.state = Waiting
		m.logEvent(mig.file, "park")
	}
	mig.nextRetryAt = m.eng.Now() + m.cfg.RetryDelay
}

// commit flips the strip to the target placement and retires copies the
// target layout no longer places. The flip happens before the retire: a
// reader between the two sees both placements populated; a reader racing
// the retire fails over from the dropped copy to the target holders.
func (m *Migrator) commit(mig *Migration, mv *move, bytes int64) {
	mig.moves.Set(mv.strip)
	mv.done = true
	mv.inflight = false
	mv.expect = 0
	mv.reship = nil
	if mv.failed {
		mv.failed = false
		m.stats.AddResume()
		m.logEvent(mig.file, "resume")
	}
	m.stats.AddStripMoved(bytes)
	if m.watcher != nil {
		m.watcher.StripFlipped(mig.file, mv.strip)
	}
	for srv := 0; srv < m.fs.Servers(); srv++ {
		if m.fs.Server(srv).Holds(mig.file, mv.strip) && !layout.Holds(mig.target, mv.strip, srv) {
			m.fs.Server(srv).Drop(mig.file, mv.strip)
		}
	}
}

// advance pushes the cursor over the committed prefix and completes the
// migration when it reaches the end of the plan.
func (m *Migrator) advance(mig *Migration) {
	for mig.cursor < len(mig.plan) && mig.plan[mig.cursor].done {
		mig.cursor++
	}
	if mig.cursor < len(mig.plan) {
		return
	}
	if err := m.fs.SetLayout(mig.file, mig.target); err == nil {
		mig.state = Done
		mig.finishedAt = m.eng.Now()
		delete(m.active, mig.file)
		for i, f := range m.order {
			if f == mig.file {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
		m.completed = append(m.completed, mig)
		m.observed[mig.file] = 0
		m.stats.AddCompleted()
		m.logEvent(mig.file, "complete")
		if m.watcher != nil {
			m.watcher.MigrationCompleted(mig.file)
		}
	}
}

// reserve charges a move's bytes against the source and target servers'
// in-flight budgets. A server that already carries migration bytes
// refuses a charge that would push it over the cap, but an idle server
// admits its share unconditionally: a single move larger than the budget
// must still go through once its servers drain, or the migration would
// stall at every tick forever without converging.
func (m *Migrator) reserve(src int, targets []int, bytes int64) bool {
	per := bytes / int64(len(targets))
	if m.inflight[src] > 0 && m.inflight[src]+bytes > m.cfg.MaxInFlightBytes {
		return false
	}
	for _, t := range targets {
		if m.inflight[t] > 0 && m.inflight[t]+per > m.cfg.MaxInFlightBytes {
			return false
		}
	}
	m.inflight[src] += bytes
	for _, t := range targets {
		m.inflight[t] += per
	}
	return true
}

// release returns a finished move's bytes to the budgets.
func (m *Migrator) release(src int, targets []int, bytes int64) {
	if len(targets) == 0 {
		return
	}
	m.inflight[src] -= bytes
	per := bytes / int64(len(targets))
	for _, t := range targets {
		m.inflight[t] -= per
	}
}

// InvalidateStrip receives every strip mutation from the pfs write path.
// The migrator consumes the notifications its own target copies fire
// (expect tokens) and treats any excess as a foreign write racing the
// move, which dirties the copy so it is repeated with fresh bytes. All
// notifications are forwarded to the chained listener first.
func (m *Migrator) InvalidateStrip(file string, strip int64) {
	if m.inner != nil {
		m.inner.InvalidateStrip(file, strip)
	}
	mig, ok := m.active[file]
	if !ok {
		return
	}
	mv, ok := mig.byStrip[strip]
	if !ok || mv.done || !mv.inflight {
		return
	}
	if mv.expect > 0 {
		mv.expect--
		return
	}
	mv.dirty = true
}

// InvalidateFile cancels any migration of a deleted file and forwards the
// notification.
func (m *Migrator) InvalidateFile(file string) {
	if m.inner != nil {
		m.inner.InvalidateFile(file)
	}
	mig, ok := m.active[file]
	if !ok {
		return
	}
	mig.state = Done
	delete(m.active, file)
	for i, f := range m.order {
		if f == file {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	delete(m.observed, file)
}

// ActiveCount returns how many migrations are in progress.
func (m *Migrator) ActiveCount() int { return len(m.active) }

// Drain sleeps the calling process until every active migration completes
// or the timeout elapses, returning whether the migrator converged. The
// sleeping process keeps the engine running, so the daemon ticks keep
// firing batches.
func (m *Migrator) Drain(p *sim.Proc, timeout sim.Time) bool {
	deadline := p.Now() + timeout
	step := m.cfg.SampleEvery
	if step <= 0 {
		step = sim.Millisecond
	}
	for len(m.active) > 0 {
		if p.Now() >= deadline {
			return false
		}
		p.Sleep(step)
	}
	return true
}

// Status returns every migration's progress snapshot: active ones in
// admission order, then completed ones in completion order.
func (m *Migrator) Status() []Status {
	var out []Status
	for _, file := range m.order {
		if mig, ok := m.active[file]; ok {
			out = append(out, m.status(mig))
		}
	}
	for _, mig := range m.completed {
		out = append(out, m.status(mig))
	}
	return out
}

func (m *Migrator) status(mig *Migration) Status {
	moved, total := mig.moves.Count(), mig.moves.Len()
	return Status{
		File:       mig.file,
		From:       mig.old.Name(),
		To:         mig.target.Name(),
		State:      mig.state.String(),
		Moved:      moved,
		Total:      total,
		StartedAt:  mig.startedAt,
		FinishedAt: mig.finishedAt,
	}
}

// Events returns the migration lifecycle log in order.
func (m *Migrator) Events() []Event { return m.events }

func (m *Migrator) logEvent(file, kind string) {
	m.events = append(m.events, Event{At: m.eng.Now(), File: file, Kind: kind})
}
