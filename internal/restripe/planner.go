package restripe

import (
	"sort"

	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/pfs"
)

// move is one strip's migration step and the unit the persisted cursor
// counts in. A move is re-executed until it commits: failures against
// crashed servers mark it failed (the resume counter fires when it finally
// commits), and writes landing mid-copy mark it dirty (the copy is
// discarded and repeated).
type move struct {
	strip int64
	// estBytes is the planner's copy estimate, used only for ordering; the
	// copier recomputes actual bytes against live server holdings.
	estBytes int64
	done     bool
	failed   bool
	dirty    bool
	inflight bool
	// expect counts the strip-invalidations the move's own target writes
	// will fire; invalidations beyond it are foreign writes and dirty the
	// move.
	expect int
	// reship names target servers that received bytes from an attempt that
	// did not commit (dirtied by a foreign write, or failed mid-push).
	// Their copies may predate a later write — foreign writes to an
	// un-flipped strip refresh only the old placement's holders — so
	// resolve re-ships them even though they already hold the strip.
	reship map[int]bool
}

// markReship records targets of a discarded attempt for forced re-copy.
func (mv *move) markReship(targets []int) {
	if len(targets) == 0 {
		return
	}
	if mv.reship == nil {
		mv.reship = make(map[int]bool, len(targets))
	}
	for _, t := range targets {
		mv.reship[t] = true
	}
}

// planMoves orders a migration's strip moves to minimize cross-server
// traffic: moves whose target holders all already hold a copy (the halo
// replicas the old layout happened to place, or a previous interrupted
// run) are pure metadata flips and go first; the remaining copy moves are
// interleaved round-robin across their source servers so the copy traffic
// spreads over every NIC and disk instead of draining one server at a
// time. The order is fully deterministic.
func planMoves(meta *pfs.FileMeta, old layout.Layout, target layout.Layout) []*move {
	strips := meta.Strips()
	var flips []*move
	buckets := make(map[int][]*move)
	var srcs []int
	for s := int64(0); s < strips; s++ {
		lo, hi := meta.StripBounds(s)
		oldHolds := make(map[int]bool)
		for _, h := range layout.Holders(old, s) {
			oldHolds[h] = true
		}
		var est int64
		for _, h := range layout.Holders(target, s) {
			if !oldHolds[h] {
				est += hi - lo
			}
		}
		mv := &move{strip: s, estBytes: est}
		if est == 0 {
			flips = append(flips, mv)
			continue
		}
		src := old.Primary(s)
		if _, seen := buckets[src]; !seen {
			srcs = append(srcs, src)
		}
		buckets[src] = append(buckets[src], mv)
	}
	sort.Ints(srcs)
	plan := flips
	for {
		advanced := false
		for _, src := range srcs {
			if q := buckets[src]; len(q) > 0 {
				plan = append(plan, q[0])
				buckets[src] = q[1:]
				advanced = true
			}
		}
		if !advanced {
			return plan
		}
	}
}
