// End-to-end tests of the online restriping subsystem over the deployed
// platform. They live in an external test package because the core engine
// imports restripe; importing core back from package restripe would cycle.
package restripe_test

import (
	"testing"

	"github.com/hpcio/das/internal/cache"
	"github.com/hpcio/das/internal/cluster"
	"github.com/hpcio/das/internal/core"
	"github.com/hpcio/das/internal/fault"
	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/restripe"
	"github.com/hpcio/das/internal/sim"
	"github.com/hpcio/das/internal/workload"
)

// Test geometry: width 64, one row per 512-byte strip, 32 rows.
const (
	testW     = 64
	testH     = 32
	testStrip = int64(testW * grid.ElemSize)
)

const drainTimeout = 30 * sim.Second

// rig builds a 4x4 platform with the test terrain ingested round-robin —
// the layout the migrator should move away from once it sees dependent
// traffic.
func rig(t *testing.T, g *grid.Grid) *core.System {
	t.Helper()
	cfg := cluster.Default()
	cfg.ComputeNodes, cfg.StorageNodes = 4, 4
	s, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.IngestGrid("in", g, layout.NewRoundRobin(4), testStrip); err != nil {
		t.Fatal(err)
	}
	return s
}

func drain(t *testing.T, s *core.System) {
	t.Helper()
	ok, _, err := s.DrainRestripe(drainTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("migration did not converge within %v: %v", drainTimeout, s.Restripe.Status())
	}
}

func checkGrid(t *testing.T, s *core.System, name string, want *grid.Grid) {
	t.Helper()
	got, err := s.FetchGrid(name)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("%s diverged from the reference (max diff %g)", name, got.MaxAbsDiff(want))
	}
}

// TestMigrationConvergesAndKillsHaloTraffic is the tentpole e2e: a NAS
// round over round-robin pays dependent-halo fetches, the migrator notices
// and moves the file to the grouped-replicated layout in the background,
// and the post-migration round finds every dependent strip local — zero
// remote halo bytes — with all outputs and the input itself byte-identical
// to the sequential reference.
func TestMigrationConvergesAndKillsHaloTraffic(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	k, _ := kernels.Default().Lookup("flow-routing")
	want := kernels.Apply(k, g)

	s := rig(t, g)
	defer s.Close()
	if err := s.EnableRestripe(restripe.Config{}); err != nil {
		t.Fatal(err)
	}

	rep1, err := s.Execute(core.Request{Op: "flow-routing", Input: "in", Output: "o1", Scheme: core.NAS})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Stats.RemoteBytes == 0 {
		t.Fatal("round-robin NAS round moved no dependent bytes; nothing to trigger on")
	}
	if s.Restripe.ActiveCount() != 1 {
		t.Fatalf("after the first observed round, %d active migrations, want 1", s.Restripe.ActiveCount())
	}
	drain(t, s)

	m, _ := s.FS.Meta("in")
	if _, still := m.Layout.(*layout.Migrating); still {
		t.Fatal("file still carries the dual layout after convergence")
	}
	if _, ok := m.Layout.(layout.GroupedReplicated); !ok {
		t.Fatalf("converged layout is %s, want grouped-replicated", m.Layout.Name())
	}
	rs := s.Clu.RestripeStats
	if rs.Planned() != 1 || rs.Completed() != 1 {
		t.Errorf("planned=%d completed=%d, want 1/1", rs.Planned(), rs.Completed())
	}
	if rs.StripsMoved() != m.Strips() {
		t.Errorf("moved %d strips of %d", rs.StripsMoved(), m.Strips())
	}

	rep2, err := s.Execute(core.Request{Op: "flow-routing", Input: "in", Output: "o2", Scheme: core.NAS})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Stats.RemoteBytes != 0 {
		t.Errorf("post-migration round still fetched %d dependent bytes remotely", rep2.Stats.RemoteBytes)
	}
	checkGrid(t, s, "in", g)
	checkGrid(t, s, "o1", want)
	checkGrid(t, s, "o2", want)
}

// TestDASRejectedOffloadFlipsToAccepted: without reconfiguration, DAS over
// round-robin rejects the offload (dependence is remote) and serves the
// round as normal I/O — but the rejection's predicted dependent bytes feed
// the migrator, and after the background migration the same request is
// accepted with fully local dependence.
func TestDASRejectedOffloadFlipsToAccepted(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	k, _ := kernels.Default().Lookup("flow-routing")
	want := kernels.Apply(k, g)

	s := rig(t, g)
	defer s.Close()
	if err := s.EnableRestripe(restripe.Config{}); err != nil {
		t.Fatal(err)
	}

	rep1, err := s.Execute(core.Request{Op: "flow-routing", Input: "in", Output: "o1", Scheme: core.DAS})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Offloaded {
		t.Fatal("DAS offloaded over round-robin; the rejection path is untested")
	}
	if s.Restripe.ActiveCount() != 1 {
		t.Fatalf("rejected offload admitted %d migrations, want 1", s.Restripe.ActiveCount())
	}
	drain(t, s)

	rep2, err := s.Execute(core.Request{Op: "flow-routing", Input: "in", Output: "o2", Scheme: core.DAS})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Offloaded {
		t.Errorf("post-migration DAS still rejected: %+v", rep2.Decision)
	}
	if rep2.Stats.RemoteBytes != 0 {
		t.Errorf("accepted offload fetched %d dependent bytes remotely", rep2.Stats.RemoteBytes)
	}
	checkGrid(t, s, "o1", want)
	checkGrid(t, s, "o2", want)
}

// TestReadsStayCorrectMidMigration drives client reads of the whole file
// while the migration is in flight: each read interleaves with background
// copy batches, flips, and retires on the DES clock, and every one must
// return exactly the ingested bytes through the dual layout.
func TestReadsStayCorrectMidMigration(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	s := rig(t, g)
	defer s.Close()
	// One move per tick keeps the migration slow enough that reads overlap
	// it many times.
	if err := s.EnableRestripe(restripe.Config{MovesPerTick: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(core.Request{Op: "flow-routing", Input: "in", Output: "o1", Scheme: core.NAS}); err != nil {
		t.Fatal(err)
	}
	if s.Restripe.ActiveCount() == 0 {
		t.Fatal("no migration admitted")
	}
	midReads := 0
	for i := 0; i < 200 && s.Restripe.ActiveCount() > 0; i++ {
		checkGrid(t, s, "in", g)
		midReads++
	}
	if midReads == 0 {
		t.Fatal("migration finished before any mid-flight read")
	}
	drain(t, s)
	checkGrid(t, s, "in", g)
}

// TestCrashMidMigrationResumesFromCursor is the fault interaction: a
// server crashes while the migration is copying, the in-flight moves fail
// fast and park the migration, and after the restart the cursor resumes
// from exactly the uncommitted strips — converging with the file and a
// concurrently crashed NAS round both byte-identical to the reference.
func TestCrashMidMigrationResumesFromCursor(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	k, _ := kernels.Default().Lookup("flow-routing")
	want := kernels.Apply(k, g)

	s := rig(t, g)
	defer s.Close()
	if err := s.EnableRestripe(restripe.Config{MovesPerTick: 2, RetryDelay: 5 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(core.Request{Op: "flow-routing", Input: "in", Output: "o1", Scheme: core.NAS}); err != nil {
		t.Fatal(err)
	}
	if s.Restripe.ActiveCount() != 1 {
		t.Fatal("no migration admitted")
	}
	plan := fault.Plan{Events: []fault.Event{
		{At: 200 * sim.Microsecond, Kind: fault.Crash, Server: 1},
		{At: 40 * sim.Millisecond, Kind: fault.Restart, Server: 1},
	}}
	if err := s.Clu.InstallFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	// A foreground round runs while the crash interrupts the migration.
	if _, err := s.Execute(core.Request{Op: "flow-routing", Input: "in", Output: "o2", Scheme: core.NAS}); err != nil {
		t.Fatal(err)
	}
	drain(t, s)

	rs := s.Clu.RestripeStats
	if rs.Resumes() == 0 {
		t.Error("migration completed without resuming a parked move — the crash never interrupted it")
	}
	var parked, resumed bool
	for _, ev := range s.Restripe.Events() {
		parked = parked || ev.Kind == "park"
		resumed = resumed || ev.Kind == "resume"
	}
	if !parked || !resumed {
		t.Errorf("event log missing park/resume: %v", s.Restripe.Events())
	}
	if rs.Completed() != 1 {
		t.Errorf("completed=%d, want 1", rs.Completed())
	}
	m, _ := s.FS.Meta("in")
	if _, ok := m.Layout.(layout.GroupedReplicated); !ok {
		t.Errorf("post-crash layout is %s, want grouped-replicated", m.Layout.Name())
	}
	checkGrid(t, s, "in", g)
	checkGrid(t, s, "o1", want)
	checkGrid(t, s, "o2", want)
}

// TestForeignWriteDirtiesInFlightCopy: rewriting the input while its
// migration is copying must not let a stale pre-write copy win — the
// migrator discards dirtied attempts and re-copies, and the converged file
// reads back as the rewritten bytes.
func TestForeignWriteDirtiesInFlightCopy(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	s := rig(t, g)
	defer s.Close()
	if err := s.EnableRestripe(restripe.Config{MovesPerTick: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(core.Request{Op: "flow-routing", Input: "in", Output: "o1", Scheme: core.NAS}); err != nil {
		t.Fatal(err)
	}
	if s.Restripe.ActiveCount() != 1 {
		t.Fatal("no migration admitted")
	}
	// Rewrite the whole file mid-migration: the write runs the engine, so
	// copier batches race it strip by strip.
	g2 := workload.Terrain(testW, testH, 9)
	if _, err := s.RunProc("rewrite", func(p *sim.Proc) error {
		return s.FS.NewClient(s.Clu.ComputeID(0)).WriteAll(p, "in", g2.Bytes())
	}); err != nil {
		t.Fatal(err)
	}
	drain(t, s)
	checkGrid(t, s, "in", g2)
}

// TestThrottleBoundsInFlightBytes: a tight per-server budget forces copy
// moves to stall to later ticks; the migration still converges and the
// stalls are counted.
func TestThrottleBoundsInFlightBytes(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	s := rig(t, g)
	defer s.Close()
	// Budget of exactly one two-target strip copy: a batch that tries to
	// put a second move in flight against the same server must stall.
	if err := s.EnableRestripe(restripe.Config{MaxInFlightBytes: 2 * testStrip}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(core.Request{Op: "flow-routing", Input: "in", Output: "o1", Scheme: core.NAS}); err != nil {
		t.Fatal(err)
	}
	drain(t, s)
	if s.Clu.RestripeStats.ThrottleStalls() == 0 {
		t.Error("tight in-flight budget produced no throttle stalls")
	}
	checkGrid(t, s, "in", g)
}

// TestInvalidationsChainToCache: with both subsystems enabled the migrator
// owns the pfs invalidation hook and forwards to the halo-strip cache, so
// strips moved (and retired) under a warm cache never serve stale bytes.
func TestInvalidationsChainToCache(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	k, _ := kernels.Default().Lookup("flow-routing")
	want := kernels.Apply(k, g)

	s := rig(t, g)
	defer s.Close()
	// Cache first, restripe second — EnableRestripe must take over the
	// hook and chain the cache behind itself.
	if err := s.EnableCache(cache.Config{}); err != nil {
		t.Fatal(err)
	}
	if err := s.EnableRestripe(restripe.Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(core.Request{Op: "flow-routing", Input: "in", Output: "o1", Scheme: core.NAS}); err != nil {
		t.Fatal(err)
	}
	invalBefore := s.Clu.CacheStats.Invalidations()
	drain(t, s)
	if s.Clu.CacheStats.Invalidations() <= invalBefore {
		t.Error("migration moved strips without invalidating cached copies")
	}
	if _, err := s.Execute(core.Request{Op: "flow-routing", Input: "in", Output: "o2", Scheme: core.NAS}); err != nil {
		t.Fatal(err)
	}
	checkGrid(t, s, "o1", want)
	checkGrid(t, s, "o2", want)
}

// TestRestripeRunsDeterministic guards the DES contract: two identical
// systems running the identical migrating workload produce identical
// lifecycle events, counters, and engine event counts.
func TestRestripeRunsDeterministic(t *testing.T) {
	type outcome struct {
		planned, completed, moved, bytes, flips, stalls int64
		events                                          int
		engineEvents                                    uint64
		lastStatus                                      string
	}
	runOnce := func() outcome {
		g := workload.Terrain(testW, testH, 5)
		s := rig(t, g)
		defer s.Close()
		if err := s.EnableRestripe(restripe.Config{MovesPerTick: 3, MaxInFlightBytes: 2 * testStrip}); err != nil {
			t.Fatal(err)
		}
		for round, out := range []string{"a", "b"} {
			if _, err := s.Execute(core.Request{Op: "flow-routing", Input: "in", Output: out, Scheme: core.NAS}); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
		drain(t, s)
		rs := s.Clu.RestripeStats
		st := s.Restripe.Status()
		return outcome{
			planned: rs.Planned(), completed: rs.Completed(),
			moved: rs.StripsMoved(), bytes: rs.BytesCopied(),
			flips: rs.ZeroCopyFlips(), stalls: rs.ThrottleStalls(),
			events:       len(s.Restripe.Events()),
			engineEvents: s.Clu.Eng.Events(),
			lastStatus:   st[len(st)-1].String(),
		}
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Errorf("identical migrating runs diverged:\n  run 1: %+v\n  run 2: %+v", a, b)
	}
	if a.completed != 1 || a.moved == 0 {
		t.Errorf("workload did not exercise the migrator: %+v", a)
	}
}
