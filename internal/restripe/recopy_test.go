// Whitebox tests of the copier's retry correctness: discarded attempts
// must never let stale bytes commit, the throttle must never livelock a
// migration, and a stalled byte budget must not hold up zero-byte flips.
// They drive batchFile directly on the DES clock for exact interleavings
// the e2e tests cannot pin down.
package restripe

import (
	"bytes"
	"testing"

	"github.com/hpcio/das/internal/cluster"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/pfs"
	"github.com/hpcio/das/internal/sim"
)

const (
	wbStrip  = int64(1024)
	wbStrips = 16
)

// wbRig deploys 2 compute + 4 storage nodes with file "f" striped
// round-robin and filled with a deterministic pattern, and a migrator
// wired as the pfs invalidation listener (not started: tests drive
// batches by hand).
type wbRig struct {
	clu  *cluster.Cluster
	fs   *pfs.FileSystem
	m    *Migrator
	meta *pfs.FileMeta
	data []byte
}

func newWBRig(t *testing.T, cfg Config) *wbRig {
	t.Helper()
	ccfg := cluster.Default()
	ccfg.ComputeNodes, ccfg.StorageNodes = 2, 4
	clu, err := cluster.New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	fs := pfs.New(clu)
	m, err := NewMigrator(clu, fs, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs.SetInvalidator(m)
	meta, err := fs.Create("f", wbStrips*wbStrip, layout.NewRoundRobin(4), pfs.CreateOptions{StripSize: wbStrip})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, wbStrips*wbStrip)
	for i := range data {
		data[i] = byte(i*7 + i/997)
	}
	return &wbRig{clu: clu, fs: fs, m: m, meta: meta, data: data}
}

// run executes fn as the workload process and finishes the simulation.
func (r *wbRig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	r.clu.Eng.Spawn("workload", fn)
	if err := r.clu.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// admit ingests the pattern and starts a migration to the grouped target.
func (r *wbRig) admit(t *testing.T, p *sim.Proc) *Migration {
	t.Helper()
	if err := r.fs.NewClient(r.clu.ComputeID(0)).WriteAll(p, "f", r.data); err != nil {
		t.Error(err)
		return nil
	}
	r.m.admit(r.meta, layout.NewGroupedReplicated(4, 4, 1))
	mig := r.m.active["f"]
	if mig == nil {
		t.Error("admit installed no migration")
	}
	return mig
}

func nextPending(mig *Migration) *move {
	for i := mig.cursor; i < len(mig.plan); i++ {
		if !mig.plan[i].done {
			return mig.plan[i]
		}
	}
	return nil
}

// readStrip fetches strip s of "f" from one specific holder.
func (r *wbRig) readStrip(t *testing.T, p *sim.Proc, srv int, s int64) []byte {
	t.Helper()
	got, err := r.fs.ReadStripFrom(p, r.clu.ComputeID(0), srv, "f", s, 0, 0)
	if err != nil {
		t.Errorf("read strip %d from server %d: %v", s, srv, err)
	}
	return got
}

// TestDirtiedCopyReshipsStaleTargets is the regression for the stale
// flip-commit: a foreign write lands after the migrate proc snapshots the
// source strip, so the in-flight copy ships pre-write bytes to the target
// holders. The attempt is discarded as dirty — and the retry must re-ship
// those targets rather than see them Hold and commit the move as a pure
// metadata flip over stale data. The test measures an undisturbed copy's
// duration first, then lands the write deterministically mid-flight in a
// later copy of the same shape.
func TestDirtiedCopyReshipsStaleTargets(t *testing.T) {
	r := newWBRig(t, Config{})
	target := layout.NewGroupedReplicated(4, 4, 1)
	fresh := make([]byte, wbStrip)
	for i := range fresh {
		fresh[i] = byte(255 - i%251)
	}
	raced := int64(-1)
	r.run(t, func(p *sim.Proc) {
		mig := r.admit(t, p)
		if mig == nil {
			return
		}
		durations := make(map[int]sim.Time) // copy duration by target count
		for iter := 0; r.m.ActiveCount() > 0; iter++ {
			if iter > 10*wbStrips {
				t.Errorf("migration did not converge: %v", r.m.Status())
				return
			}
			mv := nextPending(mig)
			if mv == nil {
				t.Error("active migration with no pending move")
				return
			}
			src, targets, _, live := r.m.resolve(mig, mv)
			if !live {
				t.Error("server down in a healthy run")
				return
			}
			k := len(targets)
			if k > 0 && raced < 0 {
				if d, measured := durations[k]; measured {
					// Same shape as the measured copy: the source snapshot
					// (peek) happens near the start of the window, so a write
					// at 3/4 of the duration lands after it — the shipped
					// bytes are stale — and before the outcome is processed —
					// the move is dirtied.
					raced = mv.strip
					srv := r.fs.Server(src)
					p.Spawn("foreign-write", func(w *sim.Proc) {
						w.Sleep(3 * d / 4)
						if err := srv.LocalWrite(w, "f", raced, fresh, false); err != nil {
							t.Errorf("foreign write: %v", err)
						}
					})
				}
			}
			start := p.Now()
			r.m.batchFile(p, mig, 1)
			if k > 0 {
				if _, measured := durations[k]; !measured {
					durations[k] = p.Now() - start
				}
			}
		}
		if raced < 0 {
			t.Error("no second copy move of a measured shape; nothing was raced")
			return
		}
		if r.m.Counters().Recopies() == 0 {
			t.Error("the foreign write never dirtied the in-flight copy; the race was not constructed")
			return
		}
		if _, ok := r.meta.Layout.(layout.GroupedReplicated); !ok {
			t.Errorf("converged layout is %s, want grouped-replicated", r.meta.Layout.Name())
		}
		// Every target holder must serve the post-write bytes: a stale
		// shipped copy surviving the discarded attempt would fail here.
		for _, h := range layout.Holders(target, raced) {
			if got := r.readStrip(t, p, h, raced); !bytes.Equal(got, fresh) {
				t.Errorf("server %d serves stale bytes for raced strip %d", h, raced)
			}
		}
		// And the rest of the file is untouched.
		lo := raced * wbStrip
		copy(r.data[lo:lo+wbStrip], fresh)
		got, err := r.fs.NewClient(r.clu.ComputeID(0)).ReadAll(p, "f")
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, r.data) {
			t.Error("migrated file diverged from the written bytes")
		}
	})
}

// TestOversizedMoveStillMakesProgress is the livelock regression: with an
// in-flight byte budget smaller than any single strip copy, every
// reservation used to fail unconditionally and the migration stalled at
// every tick forever. An idle server must admit the move regardless.
func TestOversizedMoveStillMakesProgress(t *testing.T) {
	r := newWBRig(t, Config{MaxInFlightBytes: 1})
	r.run(t, func(p *sim.Proc) {
		mig := r.admit(t, p)
		if mig == nil {
			return
		}
		for iter := 0; r.m.ActiveCount() > 0; iter++ {
			if iter > 10*wbStrips {
				t.Errorf("oversized moves never converged: %v (stalls=%d)",
					r.m.Status(), r.m.Counters().ThrottleStalls())
				return
			}
			r.m.batchFile(p, mig, len(mig.plan))
		}
		if r.m.Counters().ThrottleStalls() == 0 {
			t.Error("a 1-byte budget produced no throttle stalls; the throttle was never exercised")
		}
		got, err := r.fs.NewClient(r.clu.ComputeID(0)).ReadAll(p, "f")
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, r.data) {
			t.Error("migrated file diverged from the written bytes")
		}
	})
}

// TestFlipsCommitPastAStalledBudget: when the byte budget refuses a copy,
// later zero-byte flips in the plan need no reservation and must still
// commit in the same batch instead of stalling to future ticks.
func TestFlipsCommitPastAStalledBudget(t *testing.T) {
	r := newWBRig(t, Config{MaxInFlightBytes: 1})
	r.run(t, func(p *sim.Proc) {
		mig := r.admit(t, p)
		if mig == nil {
			return
		}
		// Turn the plan's last copy move into a zero-byte flip: store the
		// current (correct) bytes on each of its target holders, the state a
		// pre-placed halo replica would be in.
		last := mig.plan[len(mig.plan)-1]
		if last.estBytes == 0 {
			t.Error("plan ends with a flip; pick a copy move to convert")
			return
		}
		lo, hi := r.meta.StripBounds(last.strip)
		for _, h := range layout.Holders(mig.target, last.strip) {
			if !r.fs.Server(h).Holds("f", last.strip) {
				if err := r.fs.Server(h).LocalWrite(p, "f", last.strip, r.data[lo:hi], false); err != nil {
					t.Error(err)
					return
				}
			}
		}
		r.m.batchFile(p, mig, len(mig.plan))
		if r.m.Counters().ThrottleStalls() == 0 {
			t.Error("the 1-byte budget never stalled a copy; the batch did not exercise the scan")
			return
		}
		if !last.done {
			t.Error("zero-byte flip behind a stalled copy did not commit in the same batch")
		}
		copiesPending := false
		for _, mv := range mig.plan {
			if !mv.done && mv.estBytes > 0 {
				copiesPending = true
			}
		}
		if !copiesPending {
			t.Error("every copy committed in one stalled batch; the stall skipped nothing")
		}
		for iter := 0; r.m.ActiveCount() > 0; iter++ {
			if iter > 10*wbStrips {
				t.Errorf("migration did not converge: %v", r.m.Status())
				return
			}
			r.m.batchFile(p, mig, len(mig.plan))
		}
		got, err := r.fs.NewClient(r.clu.ComputeID(0)).ReadAll(p, "f")
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, r.data) {
			t.Error("migrated file diverged from the written bytes")
		}
	})
}
