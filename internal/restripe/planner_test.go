package restripe

import (
	"reflect"
	"testing"

	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/pfs"
)

// TestPlanMovesCoversEveryStripOnce: the plan is a permutation of the
// file's strips — nothing skipped, nothing doubled.
func TestPlanMovesCoversEveryStripOnce(t *testing.T) {
	meta := &pfs.FileMeta{Name: "f", Size: 32 * 512, StripSize: 512}
	old := layout.NewRoundRobin(4)
	target := layout.NewGroupedReplicated(4, 4, 1)
	plan := planMoves(meta, old, target)
	if int64(len(plan)) != meta.Strips() {
		t.Fatalf("plan has %d moves for %d strips", len(plan), meta.Strips())
	}
	seen := make(map[int64]bool)
	for _, mv := range plan {
		if seen[mv.strip] {
			t.Errorf("strip %d planned twice", mv.strip)
		}
		seen[mv.strip] = true
	}
}

// TestPlanMovesFlipsLeadThenSourcesInterleave: zero-copy flips (every
// target holder already stores the strip) form a prefix of the plan, and
// the copy moves behind them alternate across their source servers rather
// than draining one server's queue at a time.
func TestPlanMovesFlipsLeadThenSourcesInterleave(t *testing.T) {
	meta := &pfs.FileMeta{Name: "f", Size: 32 * 512, StripSize: 512}
	old := layout.NewRoundRobin(4)
	target := layout.NewGroupedReplicated(4, 4, 1)
	plan := planMoves(meta, old, target)

	copies := -1
	for i, mv := range plan {
		if mv.estBytes == 0 && copies >= 0 {
			t.Fatalf("zero-copy flip of strip %d at %d, after copy moves began", mv.strip, i)
		}
		if mv.estBytes > 0 && copies < 0 {
			copies = i
		}
	}
	if copies < 0 {
		t.Fatal("RR -> grouped-replicated planned no copy moves")
	}
	// In the copy region, a source never appears twice before every other
	// pending source appeared once: runs of identical sources are length 1.
	for i := copies + 1; i < len(plan); i++ {
		a, b := old.Primary(plan[i-1].strip), old.Primary(plan[i].strip)
		if a == b {
			// Legal only once the other sources' queues drained; every
			// remaining move must then share this source.
			for j := i; j < len(plan); j++ {
				if old.Primary(plan[j].strip) != b {
					t.Fatalf("source %d repeated at plan[%d] while source %d still pending",
						b, i, old.Primary(plan[j].strip))
				}
			}
			break
		}
	}
}

// TestPlanMovesDeterministic guards the DES contract at the planning step.
func TestPlanMovesDeterministic(t *testing.T) {
	meta := &pfs.FileMeta{Name: "f", Size: 48 * 512, StripSize: 512}
	old := layout.NewRoundRobin(4)
	target := layout.NewGroupedReplicated(4, 4, 2)
	a, b := planMoves(meta, old, target), planMoves(meta, old, target)
	if !reflect.DeepEqual(a, b) {
		t.Error("identical planning inputs produced different plans")
	}
}

// TestConfigNormalize rejects out-of-range settings and fills defaults.
func TestConfigNormalize(t *testing.T) {
	c, err := Config{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxOverhead <= 0 || c.MovesPerTick <= 0 || c.MaxInFlightBytes <= 0 ||
		c.SampleEvery <= 0 || c.RetryDelay <= 0 || c.MinObservedBytes <= 0 {
		t.Errorf("zero config not fully defaulted: %+v", c)
	}
	for _, bad := range []Config{
		{MaxOverhead: -1},
		{MaxOverhead: 3},
		{MinObservedBytes: -1},
		{SampleEvery: -1},
		{MovesPerTick: -1},
		{MaxInFlightBytes: -1},
		{RetryDelay: -1},
	} {
		if _, err := bad.Normalize(); err == nil {
			t.Errorf("config %+v normalized without error", bad)
		}
	}
}
