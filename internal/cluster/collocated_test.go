package cluster

import (
	"testing"

	"github.com/hpcio/das/internal/metrics"
)

func TestCollocatedNodeIdentity(t *testing.T) {
	cfg := Default()
	cfg.ComputeNodes, cfg.StorageNodes = 4, 4
	cfg.Collocated = true
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if c.ComputeID(i) != c.StorageID(i) {
			t.Errorf("node %d: compute id %d != storage id %d", i, c.ComputeID(i), c.StorageID(i))
		}
		if !c.IsStorage(i) {
			t.Errorf("node %d not a storage node", i)
		}
		if c.Disk(i) == nil {
			t.Errorf("node %d missing disk", i)
		}
	}
	if c.IsStorage(4) {
		t.Error("node 4 should not exist")
	}
	if cfg.TotalNodes() != 4 {
		t.Errorf("TotalNodes = %d, want 4", cfg.TotalNodes())
	}
}

func TestCollocatedRequiresEqualSets(t *testing.T) {
	cfg := Default()
	cfg.ComputeNodes, cfg.StorageNodes = 3, 4
	cfg.Collocated = true
	if _, err := New(cfg); err == nil {
		t.Error("unequal collocated sets accepted")
	}
}

func TestCollocatedTrafficClassesCollapse(t *testing.T) {
	cfg := Default()
	cfg.ComputeNodes, cfg.StorageNodes = 4, 4
	cfg.Collocated = true
	c, _ := New(cfg)
	// Every node is a server, so every remote transfer is server↔server.
	if got := c.ClassBetween(0, 1); got != metrics.ServerToServer {
		t.Errorf("ClassBetween = %v, want server↔server", got)
	}
}

func TestSeparatedTotalNodes(t *testing.T) {
	cfg := Default()
	cfg.ComputeNodes, cfg.StorageNodes = 3, 5
	if cfg.TotalNodes() != 8 {
		t.Errorf("TotalNodes = %d, want 8", cfg.TotalNodes())
	}
}
