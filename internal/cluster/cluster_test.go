package cluster

import (
	"testing"

	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/sim"
)

func TestNodeIDPartitioning(t *testing.T) {
	cfg := Default()
	cfg.ComputeNodes, cfg.StorageNodes = 3, 4
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.ComputeID(0) != 0 || c.ComputeID(2) != 2 {
		t.Error("compute ids must start at 0")
	}
	if c.StorageID(0) != 3 || c.StorageID(3) != 6 {
		t.Error("storage ids must follow compute ids")
	}
	if c.IsStorage(2) || !c.IsStorage(3) || !c.IsStorage(6) || c.IsStorage(7) {
		t.Error("IsStorage boundaries wrong")
	}
}

func TestIndexRangePanics(t *testing.T) {
	c, _ := New(Default())
	for name, fn := range map[string]func(){
		"compute -1":   func() { c.ComputeID(-1) },
		"compute over": func() { c.ComputeID(c.Cfg.ComputeNodes) },
		"storage -1":   func() { c.StorageID(-1) },
		"storage over": func() { c.StorageID(c.Cfg.StorageNodes) },
		"no disk":      func() { c.Disk(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestEveryStorageNodeHasADisk(t *testing.T) {
	c, _ := New(Default())
	for s := 0; s < c.Cfg.StorageNodes; s++ {
		if c.Disk(c.StorageID(s)) == nil {
			t.Fatalf("storage %d missing disk", s)
		}
	}
}

func TestComputeTimeScalesWithWeight(t *testing.T) {
	c, _ := New(Default())
	base := c.ComputeTime(1000, 1.0)
	if base != sim.Time(1000*c.Cfg.ComputeNsPerElem) {
		t.Errorf("base compute time %v", base)
	}
	if c.ComputeTime(1000, 2.5) != sim.Time(2.5*float64(base)) {
		t.Error("weight not applied")
	}
}

func TestClassBetween(t *testing.T) {
	cfg := Default()
	cfg.ComputeNodes, cfg.StorageNodes = 2, 2
	c, _ := New(cfg)
	cases := []struct {
		from, to int
		want     metrics.TrafficClass
	}{
		{0, 2, metrics.ClientToServer},
		{2, 0, metrics.ServerToClient},
		{2, 3, metrics.ServerToServer},
		{0, 1, metrics.ClientToServer}, // client-to-client folds into the client class
	}
	for _, cse := range cases {
		if got := c.ClassBetween(cse.from, cse.to); got != cse.want {
			t.Errorf("ClassBetween(%d,%d) = %v, want %v", cse.from, cse.to, got, cse.want)
		}
	}
}

func TestUtilizationSnapshotAndDeltas(t *testing.T) {
	cfg := Default()
	cfg.ComputeNodes, cfg.StorageNodes = 1, 2
	c, _ := New(cfg)
	before := c.UtilizationSnapshot()
	c.Eng.Spawn("load", func(p *sim.Proc) {
		// Busy server 1's disk for a known duration; leave server 0 idle.
		c.Disk(c.StorageID(1)).Read(p, int64(cfg.Disk.ReadBytesPerSec)) // ≈1s
	})
	if err := c.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	delta := c.UtilizationSnapshot().Sub(before)
	if delta.Disk[0] != 0 {
		t.Errorf("idle server accrued disk time %v", delta.Disk[0])
	}
	if delta.Disk[1] <= 0 {
		t.Error("loaded server shows no disk time")
	}
	if got := delta.MaxDisk(); got != delta.Disk[1] {
		t.Errorf("MaxDisk = %v, want %v", got, delta.Disk[1])
	}
	if delta.MaxEgress() != 0 || delta.MaxIngress() != 0 {
		t.Error("no network activity expected")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.ComputeNodes = 0 },
		func(c *Config) { c.StorageNodes = -1 },
		func(c *Config) { c.Net.BytesPerSec = 0 },
		func(c *Config) { c.ComputeNsPerElem = -5 },
	}
	for i, mutate := range bad {
		cfg := Default()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
