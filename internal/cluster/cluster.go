// Package cluster assembles the simulated HEC platform the paper
// evaluates on (§IV-A): separate compute and storage node sets (the first
// deployment model from §III-A), an interconnect, one disk per storage
// node, and a CPU cost model for the analysis kernels. The default 1:1
// compute:storage ratio matches the paper's configuration, which gives the
// TS, NAS, and DAS schemes identical computational capability so that
// differences isolate data dependence and data transfer.
package cluster

import (
	"fmt"

	"github.com/hpcio/das/internal/fault"
	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/sim"
	"github.com/hpcio/das/internal/simdisk"
	"github.com/hpcio/das/internal/simnet"
	"github.com/hpcio/das/internal/trace"
)

// Config describes one simulated platform.
type Config struct {
	// ComputeNodes and StorageNodes size the two node sets.
	ComputeNodes int
	StorageNodes int
	// Collocated selects the second deployment model of §III-A: compute
	// and storage share the same nodes (the MapReduce/Hadoop-style
	// arrangement), so ComputeNodes must equal StorageNodes and node i
	// serves both roles. Data local to a node moves for free; every node's
	// NIC carries both its client and its server traffic.
	Collocated bool
	// Net is the interconnect model.
	Net simnet.Config
	// Disk is the per-storage-node drive model.
	Disk simdisk.Config
	// ComputeNsPerElem is the base per-element kernel cost in simulated
	// nanoseconds; a kernel's cost is this times its Weight. Compute and
	// storage nodes have identical CPUs (the paper's 1:1 capability).
	ComputeNsPerElem float64
	// Startup is a fixed per-run job-launch overhead (process spawn, MPI
	// init, metadata opens). It produces the sub-linear scaling the
	// paper's Figs. 12–13 exhibit.
	Startup sim.Time
	// FaultSeed seeds the fault layer's randomness (message-loss draws).
	// Zero means 1; fault-free runs never draw from it.
	FaultSeed int64
	// Engine selects the engine construction. The zero value is the
	// optimized default (fast dispatch, calendar queue); the classic flags
	// exist for before/after benchmarking and produce byte-identical
	// simulations.
	Engine sim.EngineOpts
}

// Default returns the parameters used throughout the reproduction. The
// absolute magnitudes are arbitrary (the substrate is a simulator, not the
// paper's Lustre testbed); their ratios — network slower than disk,
// compute comparable to a node's share of I/O — are what shape the
// results.
func Default() Config {
	return Config{
		ComputeNodes: 12,
		StorageNodes: 12,
		Net: simnet.Config{
			// The interconnect is the scarce resource the paper's whole
			// argument is about: per-NIC bandwidth sits well below the
			// local disk rate, as on bandwidth-starved HEC I/O fabrics.
			BytesPerSec: 60e6,
			Latency:     50 * sim.Microsecond,
		},
		Disk: simdisk.Config{
			ReadBytesPerSec:  300e6,
			WriteBytesPerSec: 250e6,
			SeekTime:         200 * sim.Microsecond,
		},
		ComputeNsPerElem: 100,
		Startup:          20 * sim.Millisecond,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.ComputeNodes <= 0:
		return fmt.Errorf("cluster: compute nodes %d", c.ComputeNodes)
	case c.StorageNodes <= 0:
		return fmt.Errorf("cluster: storage nodes %d", c.StorageNodes)
	case c.Net.BytesPerSec <= 0:
		return fmt.Errorf("cluster: network bandwidth %v", c.Net.BytesPerSec)
	case c.ComputeNsPerElem < 0:
		return fmt.Errorf("cluster: compute cost %v", c.ComputeNsPerElem)
	case c.Collocated && c.ComputeNodes != c.StorageNodes:
		return fmt.Errorf("cluster: collocated deployment needs equal node sets, got %d compute / %d storage",
			c.ComputeNodes, c.StorageNodes)
	}
	return nil
}

// TotalNodes returns the number of physical nodes the platform has.
func (c Config) TotalNodes() int {
	if c.Collocated {
		return c.StorageNodes
	}
	return c.ComputeNodes + c.StorageNodes
}

// Cluster is one instantiated platform. Node ids are dense: compute nodes
// occupy [0, ComputeNodes), storage nodes [ComputeNodes,
// ComputeNodes+StorageNodes).
type Cluster struct {
	Cfg     Config
	Eng     *sim.Engine
	Net     *simnet.Network
	Traffic *metrics.Traffic
	// Faults is the live fault state: which servers are down, degraded
	// NICs, message loss. It starts healthy and inactive; InstallFaultPlan
	// (or direct ApplyFault calls from tests) perturbs it at simulated
	// times.
	Faults *fault.State
	// Recovery counts fault-handling actions (timeouts, retries, failover
	// reads); FaultLog records every applied fault event.
	Recovery *metrics.Recovery
	FaultLog *metrics.FaultLog
	// CacheStats aggregates halo-strip cache activity across servers once
	// core.EnableCache wires the subsystem; it stays all-zero otherwise.
	CacheStats *metrics.Cache
	// RestripeStats aggregates online-migration activity once
	// core.EnableRestripe wires the migrator; it stays all-zero otherwise.
	RestripeStats *metrics.Restripe
	// PipelineStats aggregates operator-DAG pushdown activity (stage
	// rounds, halo exchanges, lower-bound accounting); it stays all-zero
	// until a pipeline runs.
	PipelineStats *metrics.Pipeline
	// Trace, when non-nil, receives annotated events from the DAS layers
	// (scheme workers, AS helpers); see the trace package and cmd/dastrace.
	Trace *trace.Recorder
	// disks is dense, indexed by node id (nil for compute nodes): the
	// per-request Disk lookup on storage servers is a slice index.
	disks []*simdisk.Disk
}

// New builds a cluster on a fresh engine.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngineWith(cfg.Engine)
	traffic := metrics.NewTraffic()
	net := simnet.New(eng, cfg.Net, traffic)
	recovery := metrics.NewRecovery()
	faultLog := metrics.NewFaultLog()
	c := &Cluster{
		Cfg:           cfg,
		Eng:           eng,
		Net:           net,
		Traffic:       traffic,
		Faults:        fault.NewState(cfg.FaultSeed, recovery, faultLog),
		Recovery:      recovery,
		FaultLog:      faultLog,
		CacheStats:    metrics.NewCache(),
		RestripeStats: metrics.NewRestripe(),
		PipelineStats: metrics.NewPipeline(),
		disks:         make([]*simdisk.Disk, cfg.TotalNodes()),
	}
	net.SetFaults(c.Faults)
	for i := 0; i < cfg.TotalNodes(); i++ {
		net.AddNode(i)
	}
	for s := 0; s < cfg.StorageNodes; s++ {
		id := c.StorageID(s)
		c.disks[id] = simdisk.NewIndexed(eng, id, cfg.Disk, traffic)
	}
	return c, nil
}

// ComputeID maps a dense compute index to a node id.
func (c *Cluster) ComputeID(i int) int {
	if i < 0 || i >= c.Cfg.ComputeNodes {
		panic(fmt.Sprintf("cluster: compute index %d out of range", i))
	}
	return i
}

// StorageID maps a dense storage-server index to a node id. Under the
// collocated deployment, storage server s and compute worker s are the
// same physical node.
func (c *Cluster) StorageID(s int) int {
	if s < 0 || s >= c.Cfg.StorageNodes {
		panic(fmt.Sprintf("cluster: storage index %d out of range", s))
	}
	if c.Cfg.Collocated {
		return s
	}
	return c.Cfg.ComputeNodes + s
}

// IsStorage reports whether a node id belongs to the storage set.
func (c *Cluster) IsStorage(nodeID int) bool {
	if c.Cfg.Collocated {
		return nodeID >= 0 && nodeID < c.Cfg.StorageNodes
	}
	return nodeID >= c.Cfg.ComputeNodes && nodeID < c.Cfg.ComputeNodes+c.Cfg.StorageNodes
}

// Disk returns the drive attached to a storage node id.
func (c *Cluster) Disk(nodeID int) *simdisk.Disk {
	if nodeID < 0 || nodeID >= len(c.disks) || c.disks[nodeID] == nil {
		panic(fmt.Sprintf("cluster: node %d has no disk", nodeID))
	}
	return c.disks[nodeID]
}

// ComputeTime returns the simulated time to run a kernel of the given
// relative weight over n elements on one node.
func (c *Cluster) ComputeTime(n int64, weight float64) sim.Time {
	return sim.Time(float64(n) * c.Cfg.ComputeNsPerElem * weight)
}

// Utilization is a snapshot of cumulative busy time per storage server,
// used to quantify the extra load offloading places on storage nodes (the
// paper's first explanation for NAS's slowdown: servers both compute and
// serve their neighbors' dependent-data requests).
type Utilization struct {
	Egress  []sim.Time // per storage server, cumulative NIC egress busy
	Ingress []sim.Time
	Disk    []sim.Time
}

// UtilizationSnapshot captures the storage servers' cumulative resource
// busy times. Subtract two snapshots to get one operation's load.
func (c *Cluster) UtilizationSnapshot() Utilization {
	u := Utilization{
		Egress:  make([]sim.Time, c.Cfg.StorageNodes),
		Ingress: make([]sim.Time, c.Cfg.StorageNodes),
		Disk:    make([]sim.Time, c.Cfg.StorageNodes),
	}
	for s := 0; s < c.Cfg.StorageNodes; s++ {
		id := c.StorageID(s)
		u.Egress[s] = c.Net.Node(id).EgressBusy()
		u.Ingress[s] = c.Net.Node(id).IngressBusy()
		u.Disk[s] = c.Disk(id).BusyTime()
	}
	return u
}

// Sub returns the per-server deltas u - prev.
func (u Utilization) Sub(prev Utilization) Utilization {
	out := Utilization{
		Egress:  make([]sim.Time, len(u.Egress)),
		Ingress: make([]sim.Time, len(u.Ingress)),
		Disk:    make([]sim.Time, len(u.Disk)),
	}
	for i := range u.Egress {
		out.Egress[i] = u.Egress[i] - prev.Egress[i]
		out.Ingress[i] = u.Ingress[i] - prev.Ingress[i]
		out.Disk[i] = u.Disk[i] - prev.Disk[i]
	}
	return out
}

// MaxEgress returns the busiest server's NIC egress time.
func (u Utilization) MaxEgress() sim.Time { return maxTime(u.Egress) }

// MaxIngress returns the busiest server's NIC ingress time.
func (u Utilization) MaxIngress() sim.Time { return maxTime(u.Ingress) }

// MaxDisk returns the busiest server's disk time.
func (u Utilization) MaxDisk() sim.Time { return maxTime(u.Disk) }

func maxTime(ts []sim.Time) sim.Time {
	var m sim.Time
	for _, t := range ts {
		if t > m {
			m = t
		}
	}
	return m
}

// ClassBetween returns the traffic class of a transfer between two nodes.
func (c *Cluster) ClassBetween(from, to int) metrics.TrafficClass {
	switch {
	case c.IsStorage(from) && c.IsStorage(to):
		return metrics.ServerToServer
	case c.IsStorage(from):
		return metrics.ServerToClient
	default:
		return metrics.ClientToServer
	}
}
