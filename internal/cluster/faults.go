package cluster

import (
	"fmt"

	"github.com/hpcio/das/internal/fault"
	"github.com/hpcio/das/internal/metrics"
)

// ServerDown reports whether dense storage server s is currently crashed.
func (c *Cluster) ServerDown(s int) bool {
	return c.Faults.Down(c.StorageID(s))
}

// AnyStorageDown reports whether any storage server is currently crashed.
// It is the cheap gate the offload layers use before switching to their
// degraded paths.
func (c *Cluster) AnyStorageDown() bool {
	if !c.Faults.Active() {
		return false
	}
	for s := 0; s < c.Cfg.StorageNodes; s++ {
		if c.Faults.Down(c.StorageID(s)) {
			return true
		}
	}
	return false
}

// ApplyFault applies one fault event to the cluster immediately and
// records it in the fault log. Event times are ignored here; scheduling is
// InstallFaultPlan's job.
func (c *Cluster) ApplyFault(ev fault.Event) error {
	rec := metrics.FaultRecord{AtNs: int64(c.Eng.Now()), Kind: ev.Kind.String(), Node: -1}
	switch ev.Kind {
	case fault.Crash:
		id := c.StorageID(ev.Server)
		c.Faults.SetDown(id, true)
		rec.Node = id
		rec.Detail = fmt.Sprintf("server %d", ev.Server)
	case fault.Restart:
		id := c.StorageID(ev.Server)
		c.Faults.SetDown(id, false)
		rec.Node = id
		rec.Detail = fmt.Sprintf("server %d", ev.Server)
	case fault.SlowDisk:
		id := c.StorageID(ev.Server)
		c.Disk(id).SetSpeedFactor(ev.Factor)
		c.Faults.MarkActive()
		rec.Node = id
		rec.Detail = fmt.Sprintf("server %d ×%g", ev.Server, ev.Factor)
	case fault.SlowNIC:
		id := c.StorageID(ev.Server)
		c.Faults.SetNICFactor(id, ev.Factor)
		rec.Node = id
		rec.Detail = fmt.Sprintf("server %d ×%g", ev.Server, ev.Factor)
	case fault.Loss:
		c.Faults.SetLoss(ev.Frac, ev.Delay)
		rec.Detail = fmt.Sprintf("frac %g delay %v", ev.Frac, ev.Delay)
	default:
		return fmt.Errorf("cluster: unknown fault kind in %v", ev)
	}
	c.FaultLog.Record(rec)
	return nil
}

// InstallFaultPlan validates the plan against this cluster and schedules
// its events at their offsets from the current simulated time. The events
// ride daemon timers, so a plan whose tail outlives the workload never
// extends a measured run — trailing events simply don't fire. When the
// plan carries a seed, the fault randomness is reseeded so message-loss
// draws are a pure function of (plan, traffic).
func (c *Cluster) InstallFaultPlan(plan fault.Plan) error {
	if err := plan.Validate(c.Cfg.StorageNodes); err != nil {
		return err
	}
	if plan.Seed != 0 {
		c.Faults.Reseed(plan.Seed)
	}
	if len(plan.Events) > 0 {
		// Arm the fault paths now, not at the first event: a run that
		// starts before the first crash must already be using cancelable
		// waits, or the crash would strand it on the fast path's blocking
		// RPCs.
		c.Faults.MarkActive()
	}
	for _, ev := range plan.Sorted() {
		ev := ev
		c.Eng.AfterFuncDaemon(ev.At, func() {
			// Validate ran above; application cannot fail.
			_ = c.ApplyFault(ev)
		})
	}
	return nil
}
