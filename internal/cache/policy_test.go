package cache

import "testing"

func key(s string, n int64) Key { return Key{File: s, Strip: n} }

func TestNewPolicyNames(t *testing.T) {
	for _, name := range []string{"", "lru", "arc"} {
		p, err := NewPolicy(name, 1024)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
		if p.Name() != "lru" && p.Name() != "arc" {
			t.Errorf("NewPolicy(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := NewPolicy("clock", 1024); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestLRUVictimOrder(t *testing.T) {
	l := NewLRU()
	l.Insert(key("f", 1), 10)
	l.Insert(key("f", 2), 10)
	l.Insert(key("f", 3), 10)
	l.Touch(key("f", 1)) // order (MRU→LRU): 1, 3, 2

	all := func(Key) bool { return true }
	v, ok := l.Victim(all)
	if !ok || v != key("f", 2) {
		t.Fatalf("victim = %v, want f/2", v)
	}
	// Skipping non-evictable keys walks toward MRU.
	v, ok = l.Victim(func(k Key) bool { return k != key("f", 2) })
	if !ok || v != key("f", 3) {
		t.Fatalf("filtered victim = %v, want f/3", v)
	}
	l.Remove(key("f", 2))
	l.Remove(key("f", 3))
	v, ok = l.Victim(all)
	if !ok || v != key("f", 1) {
		t.Fatalf("victim after removals = %v, want f/1", v)
	}
	l.Remove(key("f", 1))
	if _, ok := l.Victim(all); ok {
		t.Error("empty LRU produced a victim")
	}
}

func TestARCTouchPromotesToFrequentSide(t *testing.T) {
	a := NewARC(100)
	a.Insert(key("f", 1), 10)
	a.Insert(key("f", 2), 10)
	if a.t1Bytes != 20 || a.t2Bytes != 0 {
		t.Fatalf("after inserts t1=%d t2=%d", a.t1Bytes, a.t2Bytes)
	}
	a.Touch(key("f", 1))
	if a.t1Bytes != 10 || a.t2Bytes != 10 {
		t.Fatalf("after touch t1=%d t2=%d, want 10/10", a.t1Bytes, a.t2Bytes)
	}
}

func TestARCGhostHitGrowsRecencyTarget(t *testing.T) {
	a := NewARC(100)
	a.Insert(key("f", 1), 40)
	all := func(Key) bool { return true }
	v, ok := a.Victim(all)
	if !ok || v != key("f", 1) {
		t.Fatalf("victim = %v, want f/1", v)
	}
	a.Evicted(v) // moves to B1 ghost
	if a.b1Bytes != 40 || a.t1Bytes != 0 {
		t.Fatalf("after eviction b1=%d t1=%d", a.b1Bytes, a.t1Bytes)
	}
	p0 := a.TargetT1Bytes()
	a.Insert(key("f", 1), 40) // ghost hit in B1
	if a.TargetT1Bytes() <= p0 {
		t.Errorf("B1 ghost hit did not grow p: %d -> %d", p0, a.TargetT1Bytes())
	}
	// The re-entered key sits in T2 now.
	if a.t2Bytes != 40 {
		t.Errorf("re-entered key not on frequent side: t2=%d", a.t2Bytes)
	}
}

func TestARCGhostHitShrinksRecencyTarget(t *testing.T) {
	a := NewARC(100)
	a.Insert(key("f", 1), 40)
	a.Touch(key("f", 1)) // T2 resident
	a.p = 80             // force T2 to be the victim side
	v, ok := a.Victim(func(Key) bool { return true })
	if !ok || v != key("f", 1) {
		t.Fatalf("victim = %v, want f/1", v)
	}
	a.Evicted(v)
	if a.b2Bytes != 40 {
		t.Fatalf("evicted T2 key not in B2: b2=%d", a.b2Bytes)
	}
	p0 := a.TargetT1Bytes()
	a.Insert(key("f", 1), 40) // ghost hit in B2
	if a.TargetT1Bytes() >= p0 {
		t.Errorf("B2 ghost hit did not shrink p: %d -> %d", p0, a.TargetT1Bytes())
	}
}

func TestARCGhostListsBounded(t *testing.T) {
	a := NewARC(100)
	for i := int64(0); i < 50; i++ {
		a.Insert(key("f", i), 10)
		if v, ok := a.Victim(func(Key) bool { return true }); ok {
			a.Evicted(v)
		}
	}
	if a.b1Bytes > 100 || a.b2Bytes > 100 {
		t.Errorf("ghost lists exceed one budget: b1=%d b2=%d", a.b1Bytes, a.b2Bytes)
	}
}

func TestARCRemoveForgetsResidentAndGhost(t *testing.T) {
	a := NewARC(100)
	a.Insert(key("f", 1), 10)
	a.Remove(key("f", 1))
	if a.t1Bytes != 0 || len(a.elems) != 0 {
		t.Fatalf("resident remove left state: t1=%d elems=%d", a.t1Bytes, len(a.elems))
	}
	a.Insert(key("f", 2), 10)
	v, _ := a.Victim(func(Key) bool { return true })
	a.Evicted(v)
	a.Remove(key("f", 2))
	if a.b1Bytes != 0 || len(a.elems) != 0 {
		t.Fatalf("ghost remove left state: b1=%d elems=%d", a.b1Bytes, len(a.elems))
	}
}
