// Package cache implements the adaptive halo-strip cache subsystem: a
// bounded, byte-budgeted cache per storage server holding copies of the
// *remote* strips the server fetched to satisfy dependence halos during
// offloaded execution, plus a cluster-wide manager (manager.go) that
// watches per-server hit rates and observed fetch latencies on the DES
// clock and tunes which strips stay pinned.
//
// The paper's improved distribution (Eqs. 14–17) fixes group size r and
// the boundary replicas at file-creation time; a workload whose hotspot
// drifts still pays remote fetches for dependent strips — the
// server↔server traffic Fig. 6 shows killing NAS. The cache absorbs that
// traffic after the first pass, and the manager's latency-threshold loop
// (after DynamicCache's shard manager, recast onto strips) turns the
// hottest cached boundary strips into pinned replicas on the dependent
// server.
//
// Correctness rules:
//
//   - Entries are copies; the cache never aliases pfs buffers. Get
//     returns a pool-backed copy the consumer releases as usual.
//   - A write to a strip invalidates every cached copy of it cluster-wide
//     (the pfs write path calls Manager.InvalidateStrip from storePut).
//   - A server restart purges its cache: caches are memory, and PR 2's
//     incarnation counters make the purge lazy and deterministic — the
//     first access after a bump drops everything.
//   - All state is engine-goroutine state keyed and ordered by lists, not
//     map iteration, and all timestamps are DES times: two identical runs
//     produce identical stats and identical victims.
package cache

import (
	"fmt"
	"sort"

	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/pfs"
	"github.com/hpcio/das/internal/sim"
)

// Key addresses one cached strip of one file.
type Key struct {
	File  string
	Strip int64
}

// entry is one resident strip range: bytes [Lo, Hi) of the strip,
// relative to the strip's start.
type entry struct {
	data     []byte
	lo, hi   int64
	pinned   bool
	winHits  int64 // hits since the manager's last sample
	winFetch int64 // remote fetches that (re)admitted it this window
	hits     int64 // lifetime hits
}

// Stats is a point-in-time snapshot of one server cache.
type Stats struct {
	Server        int     `json:"server"`
	Entries       int     `json:"entries"`
	UsedBytes     int64   `json:"used_bytes"`
	PinnedEntries int     `json:"pinned_entries"`
	PinnedBytes   int64   `json:"pinned_bytes"`
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	HitBytes      int64   `json:"hit_bytes"`
	MissBytes     int64   `json:"miss_bytes"`
	Evictions     int64   `json:"evictions"`
	Invalidations int64   `json:"invalidations"`
	RestartPurges int64   `json:"restart_purges"`
	Promotions    int64   `json:"promotions"`
	Demotions     int64   `json:"demotions"`
	HitRate       float64 `json:"hit_rate"`
}

// ServerCache is the bounded halo-strip cache of one storage server. It
// is engine-goroutine state: no locks, no wall clock, no map-order
// iteration on any decision path.
type ServerCache struct {
	srv    int
	budget int64
	pol    Policy
	// maxPinned caps pinned bytes so the tuning loop cannot starve the
	// adaptive part of the cache.
	maxPinned int64

	entries map[Key]*entry
	used    int64
	pinned  int64

	// incarnation gate: incFn reports the server's current incarnation;
	// a change since the last access means the server restarted and its
	// cache memory is gone.
	incFn func() uint64
	inc   uint64

	// local counters (the cluster-wide metrics.Cache aggregates across
	// servers; these feed per-server reports and the manager's sampling).
	stats Stats
	agg   *metrics.Cache

	// sampling window for the manager: fetch observations since last tick.
	winFetches  int64
	winFetchLat sim.Time
	winHits     int64
}

// newServerCache builds one server's cache. agg may be nil.
func newServerCache(srv int, budget, maxPinned int64, pol Policy, incFn func() uint64, agg *metrics.Cache) *ServerCache {
	if incFn == nil {
		incFn = func() uint64 { return 0 }
	}
	if agg == nil {
		agg = metrics.NewCache()
	}
	c := &ServerCache{
		srv:       srv,
		budget:    budget,
		maxPinned: maxPinned,
		pol:       pol,
		entries:   make(map[Key]*entry),
		incFn:     incFn,
		agg:       agg,
	}
	c.stats.Server = srv
	c.inc = incFn()
	return c
}

// checkIncarnation lazily purges the cache when the server restarted
// since the last access: cache memory does not survive a crash, even
// though the simulated disk does.
func (c *ServerCache) checkIncarnation() {
	cur := c.incFn()
	if cur == c.inc {
		return
	}
	c.inc = cur
	// The pre-restart sampling window died with the server's memory:
	// discard it outright rather than letting the tuning loop average
	// stale pre-crash latencies into the post-restart sample.
	c.winFetches, c.winFetchLat, c.winHits = 0, 0, 0
	if len(c.entries) == 0 {
		return
	}
	for k, e := range c.entries {
		c.pol.Remove(k)
		c.release(e)
		delete(c.entries, k)
	}
	c.used, c.pinned = 0, 0
	c.stats.RestartPurges++
	c.agg.AddRestartPurge()
}

// Get looks up bytes [lo, hi) of a strip (relative to the strip start)
// and, on a hit, returns a pool-backed copy the caller releases with
// pfs.ReleaseBuffer. A resident entry only hits when it covers the whole
// requested range.
func (c *ServerCache) Get(file string, strip, lo, hi int64) ([]byte, bool) {
	c.checkIncarnation()
	k := Key{File: file, Strip: strip}
	e, ok := c.entries[k]
	if !ok || lo < e.lo || hi > e.hi {
		return nil, false
	}
	out := pfs.AcquireBuffer(hi - lo)
	copy(out, e.data[lo-e.lo:hi-e.lo])
	e.winHits++
	e.hits++
	c.winHits++
	c.pol.Touch(k)
	c.stats.Hits++
	c.stats.HitBytes += hi - lo
	c.agg.AddHit(hi - lo)
	//das:transfer -- hit copies leave with the caller, who releases them like a fetched strip
	return out, true
}

// RecordMiss accounts a lookup the cache could not serve; bytes is what
// the remote fetch moved, lat what it cost. The manager samples the
// latency window to drive its tuning loop.
func (c *ServerCache) RecordMiss(bytes int64, lat sim.Time) {
	// Apply a pending restart purge before accumulating, not after: the
	// purge resets the sampling window, and this first post-restart sample
	// belongs to the new incarnation's window, not the discarded one.
	c.checkIncarnation()
	c.stats.Misses++
	c.stats.MissBytes += bytes
	c.agg.AddMiss(bytes)
	c.winFetches++
	c.winFetchLat += lat
}

// Put admits a copy of bytes [lo, hi) of a strip (relative to the strip
// start). The cache copies data; the caller keeps ownership of its slice.
// Entries larger than the budget are not admitted. An existing entry for
// the key is replaced only when the new range covers more bytes.
func (c *ServerCache) Put(file string, strip, lo int64, data []byte) {
	c.checkIncarnation()
	size := int64(len(data))
	if size == 0 || size > c.budget {
		return
	}
	k := Key{File: file, Strip: strip}
	if old, ok := c.entries[k]; ok {
		if size <= old.hi-old.lo {
			return // resident range already covers at least as much
		}
		c.removeEntry(k, old, false)
	}
	for c.used+size > c.budget {
		vk, ok := c.pol.Victim(func(k Key) bool { return !c.entries[k].pinned })
		if !ok {
			return // everything evictable is pinned; do not admit
		}
		ve := c.entries[vk]
		c.removeEntry(vk, ve, true)
		c.stats.Evictions++
		c.agg.AddEviction(ve.hi - ve.lo)
	}
	cp := make([]byte, size)
	copy(cp, data)
	c.entries[k] = &entry{data: cp, lo: lo, hi: lo + size, winFetch: 1}
	c.used += size
	c.pol.Insert(k, size)
	c.agg.AddInsert(size)
}

// removeEntry drops a resident entry. evicted selects the policy's
// ghost-remembering path (ARC) over plain removal.
func (c *ServerCache) removeEntry(k Key, e *entry, evicted bool) {
	if ge, ok := c.pol.(ghostEvicter); ok && evicted {
		ge.Evicted(k)
	} else {
		c.pol.Remove(k)
	}
	c.release(e)
	delete(c.entries, k)
}

func (c *ServerCache) release(e *entry) {
	c.used -= e.hi - e.lo
	if e.pinned {
		c.pinned -= e.hi - e.lo
	}
	e.data = nil
}

// Invalidate drops any cached copy of a strip (its data changed).
func (c *ServerCache) Invalidate(file string, strip int64) {
	c.checkIncarnation()
	k := Key{File: file, Strip: strip}
	if e, ok := c.entries[k]; ok {
		c.removeEntry(k, e, false)
		c.stats.Invalidations++
		c.agg.AddInvalidation()
	}
}

// InvalidateFile drops every cached strip of a file (file deleted or
// migrated). Keys are collected and sorted before removal so the policy
// sees a deterministic order.
func (c *ServerCache) InvalidateFile(file string) {
	c.checkIncarnation()
	var keys []Key
	for k := range c.entries {
		if k.File == file {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Strip < keys[j].Strip })
	for _, k := range keys {
		c.removeEntry(k, c.entries[k], false)
		c.stats.Invalidations++
		c.agg.AddInvalidation()
	}
}

// Pin protects a resident strip from eviction — the "pinned replica on
// the dependent server" the tuning loop promotes hot boundary strips to.
// It reports whether the strip was resident and is now pinned.
func (c *ServerCache) Pin(file string, strip int64) bool {
	c.checkIncarnation()
	e, ok := c.entries[Key{File: file, Strip: strip}]
	if !ok {
		return false
	}
	if e.pinned {
		return true
	}
	size := e.hi - e.lo
	if c.pinned+size > c.maxPinned {
		return false
	}
	e.pinned = true
	c.pinned += size
	c.stats.Promotions++
	c.agg.AddPromotion()
	return true
}

// Unpin releases a pinned strip back to the eviction policy.
func (c *ServerCache) Unpin(file string, strip int64) bool {
	c.checkIncarnation()
	e, ok := c.entries[Key{File: file, Strip: strip}]
	if !ok || !e.pinned {
		return false
	}
	e.pinned = false
	c.pinned -= e.hi - e.lo
	c.stats.Demotions++
	c.agg.AddDemotion()
	return true
}

// Pinned reports whether a resident strip is pinned.
func (c *ServerCache) Pinned(file string, strip int64) bool {
	e, ok := c.entries[Key{File: file, Strip: strip}]
	return ok && e.pinned
}

// Holds reports whether the cache currently covers any bytes of a strip.
func (c *ServerCache) Holds(file string, strip int64) bool {
	c.checkIncarnation()
	_, ok := c.entries[Key{File: file, Strip: strip}]
	return ok
}

// UsedBytes returns the resident byte total.
func (c *ServerCache) UsedBytes() int64 { return c.used }

// Snapshot returns the server's current statistics.
func (c *ServerCache) Snapshot() Stats {
	s := c.stats
	s.Entries = len(c.entries)
	s.UsedBytes = c.used
	s.PinnedBytes = c.pinned
	for _, e := range c.entries {
		if e.pinned {
			s.PinnedEntries++
		}
	}
	if s.Hits+s.Misses > 0 {
		s.HitRate = float64(s.Hits) / float64(s.Hits+s.Misses)
	}
	return s
}

// String renders a one-line summary for reports.
func (s Stats) String() string {
	return fmt.Sprintf("server %d: %d entries (%d pinned), %s used, hits=%d misses=%d (%.0f%%), evict=%d inval=%d purge=%d promo=%d demo=%d",
		s.Server, s.Entries, s.PinnedEntries, metrics.FormatBytes(s.UsedBytes),
		s.Hits, s.Misses, 100*s.HitRate, s.Evictions, s.Invalidations, s.RestartPurges, s.Promotions, s.Demotions)
}
