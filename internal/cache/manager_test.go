package cache

import (
	"testing"

	"github.com/hpcio/das/internal/sim"
)

func testConfig() Config {
	return Config{
		BudgetBytes:          1024,
		SampleEvery:          sim.Millisecond,
		LatencyHigh:          100 * sim.Microsecond,
		LatencyLow:           10 * sim.Microsecond,
		MaxPromotionsPerTick: 2,
	}
}

func TestConfigNormalizeDefaultsAndErrors(t *testing.T) {
	cfg, err := Config{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.BudgetBytes <= 0 || cfg.SampleEvery <= 0 || cfg.LatencyHigh <= cfg.LatencyLow {
		t.Errorf("bad defaults: %+v", cfg)
	}
	for _, bad := range []Config{
		{BudgetBytes: -1},
		{MaxPinnedFrac: 1.5},
		{LatencyLow: 2 * sim.Millisecond, LatencyHigh: sim.Millisecond},
		{Policy: "fifo"},
	} {
		if _, err := bad.Normalize(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
}

func TestManagerPromotesHotStripsOnSlowFetches(t *testing.T) {
	eng := sim.NewEngine()
	m, err := NewManager(eng, 2, testConfig(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	buf := make([]byte, 64)
	eng.Spawn("workload", func(p *sim.Proc) {
		// Server 0 pays slow fetches for three strips, then hits two of
		// them — strip 2 twice, strip 1 once.
		for s := int64(1); s <= 3; s++ {
			m.RecordFetch(0, "f", s, 0, buf, 200*sim.Microsecond)
		}
		for _, s := range []int64{2, 2, 1} {
			if _, ok := m.Get(0, "f", s, 0, 64); !ok {
				t.Errorf("warm lookup for strip %d missed", s)
			}
		}
		p.Sleep(1500 * sim.Microsecond) // past the first tick
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Ticks() == 0 {
		t.Fatal("tuning loop never ticked")
	}
	acts := m.Actions()
	if len(acts) != 2 {
		t.Fatalf("actions = %v, want 2 promotions", acts)
	}
	// MaxPromotionsPerTick = 2: the two hottest strips, hit-count order.
	if acts[0].Kind != "promote" || acts[0].Strip != 2 {
		t.Errorf("first action %v, want promote strip 2", acts[0])
	}
	if acts[1].Kind != "promote" || acts[1].Strip != 1 {
		t.Errorf("second action %v, want promote strip 1", acts[1])
	}
	if !m.Server(0).Pinned("f", 2) || !m.Server(0).Pinned("f", 1) {
		t.Error("promoted strips not pinned")
	}
	if m.Server(0).Pinned("f", 3) {
		t.Error("cold strip pinned")
	}
	if m.Server(1).UsedBytes() != 0 {
		t.Error("idle server's cache touched")
	}
}

func TestManagerDemotesIdlePinsWhenFetchesRunFast(t *testing.T) {
	eng := sim.NewEngine()
	m, err := NewManager(eng, 1, testConfig(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	buf := make([]byte, 64)
	eng.Spawn("workload", func(p *sim.Proc) {
		// Window 1: slow fetch + hit → promotion at the first tick.
		m.RecordFetch(0, "f", 1, 0, buf, 500*sim.Microsecond)
		m.Get(0, "f", 1, 0, 64)
		p.Sleep(1500 * sim.Microsecond)
		if !m.Server(0).Pinned("f", 1) {
			t.Error("strip not pinned after slow window")
		}
		// Window 2: fast fetch traffic elsewhere, the pinned strip idle →
		// demotion at the next tick.
		m.RecordFetch(0, "f", 9, 0, buf, sim.Microsecond)
		p.Sleep(sim.Millisecond)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Server(0).Pinned("f", 1) {
		t.Error("idle pin survived a fast window")
	}
	acts := m.Actions()
	if len(acts) != 2 || acts[1].Kind != "demote" {
		t.Errorf("actions = %v, want promote then demote", acts)
	}
}

func TestManagerHitRateEstimatePerFile(t *testing.T) {
	eng := sim.NewEngine()
	m, err := NewManager(eng, 1, testConfig(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.HitRateEstimate("f") != 0 {
		t.Error("estimate nonzero before observations")
	}
	buf := make([]byte, 100)
	m.RecordFetch(0, "f", 1, 0, buf, sim.Microsecond)
	if m.HitRateEstimate("f") != 0 {
		t.Error("estimate nonzero after a miss only")
	}
	m.Get(0, "f", 1, 0, 100)
	if got := m.HitRateEstimate("f"); got != 0.5 {
		t.Errorf("estimate = %v, want 0.5", got)
	}
	if m.HitRateEstimate("g") != 0 {
		t.Error("another file's estimate leaked")
	}
}

func TestManagerInvalidateBroadcasts(t *testing.T) {
	eng := sim.NewEngine()
	m, err := NewManager(eng, 3, testConfig(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	for srv := 0; srv < 3; srv++ {
		m.RecordFetch(srv, "f", 1, 0, buf, sim.Microsecond)
		m.RecordFetch(srv, "f", 2, 0, buf, sim.Microsecond)
	}
	m.InvalidateStrip("f", 1)
	for srv := 0; srv < 3; srv++ {
		if m.Server(srv).Holds("f", 1) {
			t.Errorf("server %d kept the invalidated strip", srv)
		}
		if !m.Server(srv).Holds("f", 2) {
			t.Errorf("server %d lost an unrelated strip", srv)
		}
	}
	m.InvalidateFile("f")
	for srv := 0; srv < 3; srv++ {
		if m.Server(srv).UsedBytes() != 0 {
			t.Errorf("server %d kept bytes after file invalidation", srv)
		}
	}
}

func TestManagerRestartPurgeViaIncarnation(t *testing.T) {
	eng := sim.NewEngine()
	incs := []uint64{1, 1}
	m, err := NewManager(eng, 2, testConfig(), func(srv int) uint64 { return incs[srv] }, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	m.RecordFetch(0, "f", 1, 0, buf, sim.Microsecond)
	m.RecordFetch(1, "f", 2, 0, buf, sim.Microsecond)
	incs[0] = 2 // server 0 restarts
	if m.Server(0).Holds("f", 1) {
		t.Error("server 0's cache survived its restart")
	}
	if !m.Server(1).Holds("f", 2) {
		t.Error("server 1's cache purged by server 0's restart")
	}
}

func TestManagerStopHaltsTicks(t *testing.T) {
	eng := sim.NewEngine()
	m, err := NewManager(eng, 1, testConfig(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	eng.Spawn("workload", func(p *sim.Proc) {
		p.Sleep(1500 * sim.Microsecond)
		m.Stop()
		p.Sleep(3 * sim.Millisecond)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Ticks() != 1 {
		t.Errorf("ticks = %d after Stop, want 1", m.Ticks())
	}
}
