package cache

import (
	"testing"

	"github.com/hpcio/das/internal/sim"
)

func testConfig() Config {
	return Config{
		BudgetBytes:          1024,
		SampleEvery:          sim.Millisecond,
		LatencyHigh:          100 * sim.Microsecond,
		LatencyLow:           10 * sim.Microsecond,
		MaxPromotionsPerTick: 2,
	}
}

func TestConfigNormalizeDefaultsAndErrors(t *testing.T) {
	cfg, err := Config{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.BudgetBytes <= 0 || cfg.SampleEvery <= 0 || cfg.LatencyHigh <= cfg.LatencyLow {
		t.Errorf("bad defaults: %+v", cfg)
	}
	for _, bad := range []Config{
		{BudgetBytes: -1},
		{MaxPinnedFrac: 1.5},
		{LatencyLow: 2 * sim.Millisecond, LatencyHigh: sim.Millisecond},
		{Policy: "fifo"},
	} {
		if _, err := bad.Normalize(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
}

func TestManagerPromotesHotStripsOnSlowFetches(t *testing.T) {
	eng := sim.NewEngine()
	m, err := NewManager(eng, 2, testConfig(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	buf := make([]byte, 64)
	eng.Spawn("workload", func(p *sim.Proc) {
		// Server 0 pays slow fetches for three strips, then hits two of
		// them — strip 2 twice, strip 1 once.
		for s := int64(1); s <= 3; s++ {
			m.RecordFetch(0, "f", s, 0, buf, 200*sim.Microsecond)
		}
		for _, s := range []int64{2, 2, 1} {
			if _, ok := m.Get(0, "f", s, 0, 64); !ok {
				t.Errorf("warm lookup for strip %d missed", s)
			}
		}
		p.Sleep(1500 * sim.Microsecond) // past the first tick
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Ticks() == 0 {
		t.Fatal("tuning loop never ticked")
	}
	acts := m.Actions()
	if len(acts) != 2 {
		t.Fatalf("actions = %v, want 2 promotions", acts)
	}
	// MaxPromotionsPerTick = 2: the two hottest strips, hit-count order.
	if acts[0].Kind != "promote" || acts[0].Strip != 2 {
		t.Errorf("first action %v, want promote strip 2", acts[0])
	}
	if acts[1].Kind != "promote" || acts[1].Strip != 1 {
		t.Errorf("second action %v, want promote strip 1", acts[1])
	}
	if !m.Server(0).Pinned("f", 2) || !m.Server(0).Pinned("f", 1) {
		t.Error("promoted strips not pinned")
	}
	if m.Server(0).Pinned("f", 3) {
		t.Error("cold strip pinned")
	}
	if m.Server(1).UsedBytes() != 0 {
		t.Error("idle server's cache touched")
	}
}

func TestManagerDemotesIdlePinsWhenFetchesRunFast(t *testing.T) {
	eng := sim.NewEngine()
	m, err := NewManager(eng, 1, testConfig(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	buf := make([]byte, 64)
	eng.Spawn("workload", func(p *sim.Proc) {
		// Window 1: slow fetch + hit → promotion at the first tick.
		m.RecordFetch(0, "f", 1, 0, buf, 500*sim.Microsecond)
		m.Get(0, "f", 1, 0, 64)
		p.Sleep(1500 * sim.Microsecond)
		if !m.Server(0).Pinned("f", 1) {
			t.Error("strip not pinned after slow window")
		}
		// Window 2: fast fetch traffic elsewhere, the pinned strip idle →
		// demotion at the next tick.
		m.RecordFetch(0, "f", 9, 0, buf, sim.Microsecond)
		p.Sleep(sim.Millisecond)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Server(0).Pinned("f", 1) {
		t.Error("idle pin survived a fast window")
	}
	acts := m.Actions()
	if len(acts) != 2 || acts[1].Kind != "demote" {
		t.Errorf("actions = %v, want promote then demote", acts)
	}
}

func TestManagerHitRateEstimatePerFile(t *testing.T) {
	eng := sim.NewEngine()
	m, err := NewManager(eng, 1, testConfig(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.HitRateEstimate("f") != 0 {
		t.Error("estimate nonzero before observations")
	}
	buf := make([]byte, 100)
	m.RecordFetch(0, "f", 1, 0, buf, sim.Microsecond)
	if m.HitRateEstimate("f") != 0 {
		t.Error("estimate nonzero after a miss only")
	}
	m.Get(0, "f", 1, 0, 100)
	if got := m.HitRateEstimate("f"); got != 0.5 {
		t.Errorf("estimate = %v, want 0.5", got)
	}
	if m.HitRateEstimate("g") != 0 {
		t.Error("another file's estimate leaked")
	}
}

func TestManagerInvalidateBroadcasts(t *testing.T) {
	eng := sim.NewEngine()
	m, err := NewManager(eng, 3, testConfig(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	for srv := 0; srv < 3; srv++ {
		m.RecordFetch(srv, "f", 1, 0, buf, sim.Microsecond)
		m.RecordFetch(srv, "f", 2, 0, buf, sim.Microsecond)
	}
	m.InvalidateStrip("f", 1)
	for srv := 0; srv < 3; srv++ {
		if m.Server(srv).Holds("f", 1) {
			t.Errorf("server %d kept the invalidated strip", srv)
		}
		if !m.Server(srv).Holds("f", 2) {
			t.Errorf("server %d lost an unrelated strip", srv)
		}
	}
	m.InvalidateFile("f")
	for srv := 0; srv < 3; srv++ {
		if m.Server(srv).UsedBytes() != 0 {
			t.Errorf("server %d kept bytes after file invalidation", srv)
		}
	}
}

func TestManagerRestartPurgeViaIncarnation(t *testing.T) {
	eng := sim.NewEngine()
	incs := []uint64{1, 1}
	m, err := NewManager(eng, 2, testConfig(), func(srv int) uint64 { return incs[srv] }, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	m.RecordFetch(0, "f", 1, 0, buf, sim.Microsecond)
	m.RecordFetch(1, "f", 2, 0, buf, sim.Microsecond)
	incs[0] = 2 // server 0 restarts
	if m.Server(0).Holds("f", 1) {
		t.Error("server 0's cache survived its restart")
	}
	if !m.Server(1).Holds("f", 2) {
		t.Error("server 1's cache purged by server 0's restart")
	}
}

func TestManagerStopHaltsTicks(t *testing.T) {
	eng := sim.NewEngine()
	m, err := NewManager(eng, 1, testConfig(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	eng.Spawn("workload", func(p *sim.Proc) {
		p.Sleep(1500 * sim.Microsecond)
		m.Stop()
		p.Sleep(3 * sim.Millisecond)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Ticks() != 1 {
		t.Errorf("ticks = %d after Stop, want 1", m.Ticks())
	}
}

func TestConfigNormalizeRejectsEmptyHysteresisBand(t *testing.T) {
	// LatencyHigh == LatencyLow used to pass validation, letting one tick
	// run promoteHot and demoteIdle on the same server.
	bad := Config{LatencyHigh: 50 * sim.Microsecond, LatencyLow: 50 * sim.Microsecond}
	if _, err := bad.Normalize(); err == nil {
		t.Fatal("LatencyHigh == LatencyLow accepted")
	}
	inverted := Config{LatencyHigh: 10 * sim.Microsecond, LatencyLow: 20 * sim.Microsecond}
	if _, err := inverted.Normalize(); err == nil {
		t.Fatal("LatencyHigh < LatencyLow accepted")
	}
	if _, err := NewManager(sim.NewEngine(), 1, bad, nil, nil); err == nil {
		t.Fatal("NewManager accepted an empty hysteresis band")
	}
}

func TestManagerTickThresholdBoundaries(t *testing.T) {
	// The window mean used truncating integer division: with two fetches
	// summing to 2·LatencyLow+1 the true mean is a hair over LatencyLow,
	// but 21µs/2 truncated to 10µs and still demoted. The cross-multiplied
	// comparison must keep the pin. The exact boundary (sum == 2·Low) must
	// still demote, and the promote side must stay exact too.
	cfg := testConfig() // High = 100µs, Low = 10µs
	run := func(fn func(p *sim.Proc, m *Manager)) *Manager {
		eng := sim.NewEngine()
		m, err := NewManager(eng, 1, cfg, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		m.Start()
		eng.Spawn("workload", func(p *sim.Proc) { fn(p, m) })
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return m
	}
	buf := make([]byte, 64)
	pinOne := func(p *sim.Proc, m *Manager) {
		// Window 1: promote strip 1 so later windows have a pin to protect.
		m.RecordFetch(0, "f", 1, 0, buf, 500*sim.Microsecond)
		m.Get(0, "f", 1, 0, 64)
		p.Sleep(1500 * sim.Microsecond)
		if !m.Server(0).Pinned("f", 1) {
			t.Fatal("setup promotion did not happen")
		}
	}

	// Demote boundary: sum = 2·Low+1 → true mean over Low → keep the pin.
	m := run(func(p *sim.Proc, m *Manager) {
		pinOne(p, m)
		m.RecordFetch(0, "f", 8, 0, buf, 10*sim.Microsecond)
		m.RecordFetch(0, "f", 9, 0, buf, 11*sim.Microsecond)
		p.Sleep(sim.Millisecond)
	})
	if !m.Server(0).Pinned("f", 1) {
		t.Error("mean a hair over LatencyLow demoted (truncating-division bug)")
	}

	// Demote boundary: sum = 2·Low → mean exactly Low → demote.
	m = run(func(p *sim.Proc, m *Manager) {
		pinOne(p, m)
		m.RecordFetch(0, "f", 8, 0, buf, 10*sim.Microsecond)
		m.RecordFetch(0, "f", 9, 0, buf, 10*sim.Microsecond)
		p.Sleep(sim.Millisecond)
	})
	if m.Server(0).Pinned("f", 1) {
		t.Error("mean exactly LatencyLow kept the idle pin")
	}

	// Promote boundary: sum = 2·High−1 → true mean under High → no promote.
	m = run(func(p *sim.Proc, m *Manager) {
		m.RecordFetch(0, "f", 1, 0, buf, 100*sim.Microsecond)
		m.RecordFetch(0, "f", 2, 0, buf, 99*sim.Microsecond+999*sim.Nanosecond)
		m.Get(0, "f", 1, 0, 64)
		p.Sleep(1500 * sim.Microsecond)
	})
	if m.Server(0).Pinned("f", 1) {
		t.Error("mean under LatencyHigh promoted")
	}

	// Promote boundary: sum = 2·High → mean exactly High → promote.
	m = run(func(p *sim.Proc, m *Manager) {
		m.RecordFetch(0, "f", 1, 0, buf, 100*sim.Microsecond)
		m.RecordFetch(0, "f", 2, 0, buf, 100*sim.Microsecond)
		m.Get(0, "f", 1, 0, 64)
		p.Sleep(1500 * sim.Microsecond)
	})
	if !m.Server(0).Pinned("f", 1) {
		t.Error("mean exactly LatencyHigh did not promote")
	}
}

func TestManagerDiscardsWindowAcrossRestart(t *testing.T) {
	// A crash+restart mid-window must discard the pre-crash samples, not
	// average them into the post-restart window: one huge pre-crash fetch
	// plus one fast post-restart fetch used to look like a slow window and
	// promote on a server that is actually healthy.
	eng := sim.NewEngine()
	incs := []uint64{1}
	m, err := NewManager(eng, 1, testConfig(), func(int) uint64 { return incs[0] }, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	buf := make([]byte, 64)
	eng.Spawn("workload", func(p *sim.Proc) {
		m.RecordFetch(0, "f", 1, 0, buf, 10*sim.Millisecond) // slow, pre-crash
		incs[0] = 2                                          // crash + restart mid-window
		m.RecordFetch(0, "f", 2, 0, buf, sim.Microsecond)    // fast, post-restart
		m.Get(0, "f", 2, 0, 64)                              // promote candidate if the window looks slow
		c := m.Server(0)
		if c.winFetches != 1 || c.winFetchLat != sim.Microsecond {
			t.Errorf("window after restart = %d fetches / %v, want only the post-restart sample",
				c.winFetches, c.winFetchLat)
		}
		p.Sleep(1500 * sim.Microsecond)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for _, a := range m.Actions() {
		if a.Kind == "promote" {
			t.Fatalf("stale pre-crash window triggered %v", a)
		}
	}
	if m.Server(0).Pinned("f", 2) {
		t.Error("post-restart strip pinned off the stale window")
	}
}

func TestManagerExternalTuningHandsOverTrigger(t *testing.T) {
	eng := sim.NewEngine()
	m, err := NewManager(eng, 1, testConfig(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sunk []sim.Time
	m.SetLatencySink(func(srv int, lat sim.Time) { sunk = append(sunk, lat) })
	m.SetExternalTuning(true)
	m.Start() // must be a no-op while external
	buf := make([]byte, 64)
	eng.Spawn("workload", func(p *sim.Proc) {
		m.RecordFetch(0, "f", 1, 0, buf, 500*sim.Microsecond)
		m.Get(0, "f", 1, 0, 64)
		p.Sleep(2 * sim.Millisecond) // would cover two internal ticks
		if m.Ticks() != 0 {
			t.Error("internal tick ran while external tuning owns the trigger")
		}
		if m.WindowHits(0) != 1 {
			t.Errorf("WindowHits = %d, want 1", m.WindowHits(0))
		}
		// The external controller drives the same deterministic passes.
		if n := m.PromoteHotServer(0); n != 1 {
			t.Errorf("PromoteHotServer = %d, want 1", n)
		}
		m.ResetWindows()
		if m.WindowHits(0) != 0 {
			t.Error("ResetWindows left window hits behind")
		}
		if n := m.DemoteIdleServer(0); n != 1 {
			t.Errorf("DemoteIdleServer = %d, want 1", n)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sunk) != 1 || sunk[0] != 500*sim.Microsecond {
		t.Errorf("latency sink saw %v, want one 500µs sample", sunk)
	}
	acts := m.Actions()
	if len(acts) != 2 || acts[0].Kind != "promote" || acts[1].Kind != "demote" {
		t.Errorf("actions = %v, want externally driven promote then demote", acts)
	}
}

func TestManagerBandHeatRanksFiles(t *testing.T) {
	eng := sim.NewEngine()
	m, err := NewManager(eng, 1, testConfig(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 100)
	m.RecordFetch(0, "cold", 1, 0, buf, sim.Microsecond)
	m.AddBandHeat("piped", 500)
	m.AddBandHeat("piped", 250)
	m.AddBandHeat("piped", 0)  // no-op
	m.AddBandHeat("piped", -8) // no-op
	if got := m.FileBandBytes("piped"); got != 750 {
		t.Errorf("FileBandBytes = %d, want 750", got)
	}
	// Band heat ranks files but never biases the predictor's hit fraction.
	if m.HitRateEstimate("piped") != 0 {
		t.Error("band heat leaked into the hit-rate estimate")
	}
	top := m.TopFiles(0)
	if len(top) != 2 || top[0].File != "piped" || top[0].BandBytes != 750 || top[1].File != "cold" {
		t.Errorf("TopFiles = %+v, want piped (750 band bytes) ahead of cold", top)
	}
}
