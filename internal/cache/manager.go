package cache

import (
	"fmt"
	"sort"

	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/sim"
)

// Config tunes the halo-strip cache subsystem. The zero value is usable:
// Normalize fills in defaults sized for the experiment cluster.
type Config struct {
	// BudgetBytes is each server's resident byte budget.
	BudgetBytes int64
	// MaxPinnedFrac bounds pinned bytes as a fraction of the budget so
	// the tuning loop cannot starve the adaptive part of the cache.
	MaxPinnedFrac float64
	// Policy names the eviction policy: "lru" (default) or "arc".
	Policy string
	// SampleEvery is the manager's tuning-tick period on the DES clock.
	SampleEvery sim.Time
	// LatencyHigh promotes: when a server's mean halo-fetch latency over
	// a window exceeds it, the server's hottest cached strips get pinned.
	LatencyHigh sim.Time
	// LatencyLow demotes: when the mean latency falls below it, pinned
	// strips that saw no hits in the window get unpinned.
	LatencyLow sim.Time
	// MaxPromotionsPerTick bounds how many strips one tick may pin on one
	// server, keeping the loop incremental like DynamicCache's.
	MaxPromotionsPerTick int
}

// Normalize fills zero fields with defaults and validates the rest.
func (c Config) Normalize() (Config, error) {
	if c.BudgetBytes == 0 {
		c.BudgetBytes = 8 << 20 // 8 MiB per server
	}
	if c.BudgetBytes < 0 {
		return c, fmt.Errorf("cache: negative budget %d", c.BudgetBytes)
	}
	if c.MaxPinnedFrac == 0 {
		c.MaxPinnedFrac = 0.5
	}
	if c.MaxPinnedFrac < 0 || c.MaxPinnedFrac > 1 {
		return c, fmt.Errorf("cache: MaxPinnedFrac %v outside [0,1]", c.MaxPinnedFrac)
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 5 * sim.Millisecond
	}
	if c.SampleEvery < 0 {
		return c, fmt.Errorf("cache: negative sample period %v", c.SampleEvery)
	}
	if c.LatencyHigh == 0 {
		c.LatencyHigh = 500 * sim.Microsecond
	}
	if c.LatencyLow == 0 {
		c.LatencyLow = 100 * sim.Microsecond
	}
	if c.LatencyLow >= c.LatencyHigh {
		// Equality is as broken as inversion: a window mean sitting on the
		// shared threshold would promote and demote the same server in one
		// tick, silently thrashing pins.
		return c, fmt.Errorf("cache: LatencyLow %v >= LatencyHigh %v (hysteresis band is empty)", c.LatencyLow, c.LatencyHigh)
	}
	if c.MaxPromotionsPerTick == 0 {
		c.MaxPromotionsPerTick = 4
	}
	if _, err := NewPolicy(c.Policy, c.BudgetBytes); err != nil {
		return c, err
	}
	return c, nil
}

// Action is one replica-tuning decision, logged for reports and the
// determinism tests.
type Action struct {
	At     sim.Time
	Server int
	Kind   string // "promote" or "demote"
	File   string
	Strip  int64
}

func (a Action) String() string {
	return fmt.Sprintf("[%v] server %d %s %s strip %d", a.At, a.Server, a.Kind, a.File, a.Strip)
}

// Manager owns one ServerCache per storage server and runs the
// latency-driven replica-tuning loop as a goroutine-free chain of daemon
// timers on the DES clock: each tick samples every server's fetch-latency
// and hit window, pins the hottest strips on servers whose halo fetches
// run slow, unpins idle strips on servers whose fetches run fast, and
// reschedules itself. Daemon timers do not keep Engine.Run alive, so an
// idle manager never deadlocks a finished workload.
type Manager struct {
	eng     *sim.Engine
	cfg     Config
	servers []*ServerCache
	agg     *metrics.Cache

	// per-file byte hit/miss windows feed HitRateEstimate for predict.
	fileHit  map[string]int64
	fileMiss map[string]int64
	// fileBand accounts intermediate halo-band bytes pipeline pushdowns
	// exchanged server-to-server on a file's behalf. Those bands never pass
	// through a ServerCache (they are transient per-stage state), but they
	// are dependence traffic all the same, so the heat ranking counts them.
	fileBand map[string]int64

	actions []Action
	ticks   int64
	timer   *sim.Timer
	started bool

	// external marks the manager as driven by the unified p99 controller:
	// the mean-window tick stops scheduling and promote/demote happen only
	// through PromoteHotServer / DemoteIdleServer.
	external bool
	// latSink, when set, receives every halo-fetch latency sample the
	// manager records — the controller's per-server tuning feed.
	latSink func(srv int, lat sim.Time)
}

// NewManager builds the subsystem: one cache per storage server. incFn
// reports a server's current incarnation (nil means "never restarts");
// agg is the cluster-wide counter collector (nil allocates a private one).
func NewManager(eng *sim.Engine, nServers int, cfg Config, incFn func(srv int) uint64, agg *metrics.Cache) (*Manager, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	if agg == nil {
		agg = metrics.NewCache()
	}
	m := &Manager{
		eng:      eng,
		cfg:      cfg,
		agg:      agg,
		fileHit:  make(map[string]int64),
		fileMiss: make(map[string]int64),
		fileBand: make(map[string]int64),
	}
	maxPinned := int64(float64(cfg.BudgetBytes) * cfg.MaxPinnedFrac)
	for i := 0; i < nServers; i++ {
		i := i
		var fn func() uint64
		if incFn != nil {
			fn = func() uint64 { return incFn(i) }
		}
		pol, _ := NewPolicy(cfg.Policy, cfg.BudgetBytes) // validated by Normalize
		m.servers = append(m.servers, newServerCache(i, cfg.BudgetBytes, maxPinned, pol, fn, agg))
	}
	return m, nil
}

// Config returns the normalized configuration.
func (m *Manager) Config() Config { return m.cfg }

// Server returns the cache of storage server i, or nil out of range.
func (m *Manager) Server(i int) *ServerCache {
	if i < 0 || i >= len(m.servers) {
		return nil
	}
	return m.servers[i]
}

// NumServers returns the number of per-server caches.
func (m *Manager) NumServers() int { return len(m.servers) }

// Counters returns the cluster-wide counter collector.
func (m *Manager) Counters() *metrics.Cache { return m.agg }

// Start arms the tuning loop. Safe to call once per engine run; ticks are
// daemon timers, so an idle system still terminates.
func (m *Manager) Start() {
	if m.started || m.external || m.cfg.SampleEvery <= 0 {
		return
	}
	m.started = true
	m.timer = m.eng.AfterFuncDaemon(m.cfg.SampleEvery, m.tick)
}

// Stop disarms the tuning loop.
func (m *Manager) Stop() {
	if m.timer != nil {
		m.timer.Stop()
		m.timer = nil
	}
	m.started = false
}

// Get serves bytes [lo, hi) of a strip from server srv's cache. Hits are
// free on the DES clock: the data already sits in the server's memory, so
// the simulated cost is the in-memory copy the caller performs anyway.
func (m *Manager) Get(srv int, file string, strip, lo, hi int64) ([]byte, bool) {
	c := m.Server(srv)
	if c == nil {
		return nil, false
	}
	data, ok := c.Get(file, strip, lo, hi)
	if ok {
		m.fileHit[file] += hi - lo
	}
	return data, ok
}

// RecordFetch accounts a remote halo fetch server srv had to perform —
// a cache miss — and admits a copy of the fetched bytes. lat is the
// observed DES latency of the fetch, which drives the tuning loop.
func (m *Manager) RecordFetch(srv int, file string, strip, lo int64, data []byte, lat sim.Time) {
	c := m.Server(srv)
	if c == nil {
		return
	}
	c.RecordMiss(int64(len(data)), lat)
	m.fileMiss[file] += int64(len(data))
	c.Put(file, strip, lo, data)
	if m.latSink != nil {
		m.latSink(srv, lat)
	}
}

// InvalidateStrip drops every server's cached copy of a strip. The pfs
// write path calls this from storePut so a write anywhere kills stale
// halo copies everywhere.
func (m *Manager) InvalidateStrip(file string, strip int64) {
	for _, c := range m.servers {
		c.Invalidate(file, strip)
	}
}

// InvalidateFile drops every server's cached strips of a file.
func (m *Manager) InvalidateFile(file string) {
	for _, c := range m.servers {
		c.InvalidateFile(file)
	}
}

// HitRateEstimate returns the observed byte hit fraction for a file's
// halo fetches, 0 before any observation — the discount predict applies
// to dependent bytes in the cache-aware offload decision.
func (m *Manager) HitRateEstimate(file string) float64 {
	h, ms := m.fileHit[file], m.fileMiss[file]
	if h+ms == 0 {
		return 0
	}
	return float64(h) / float64(h+ms)
}

// FileMissBytes returns the dependent bytes a file's halo fetches moved
// over the interconnect (cache misses) so far — the observed-traffic
// signal the online restriper watches to decide a file is worth migrating.
func (m *Manager) FileMissBytes(file string) int64 { return m.fileMiss[file] }

// AddBandHeat accounts intermediate halo-band bytes a pipeline pushdown
// exchanged server-to-server while executing a DAG over the file. The
// bands hold transient stage output, so no cache entry is admitted, but
// the bytes join the file's heat so TopFiles and the restriper evidence
// see the dependence traffic a pipelined workload actually generates.
func (m *Manager) AddBandHeat(file string, bytes int64) {
	if bytes <= 0 {
		return
	}
	m.fileBand[file] += bytes
}

// FileBandBytes returns the intermediate band bytes recorded for a file.
func (m *Manager) FileBandBytes(file string) int64 { return m.fileBand[file] }

// FileHeat is one file's aggregate halo-fetch traffic through the cache,
// the per-file view multi-tenant reports rank files by.
type FileHeat struct {
	File      string `json:"file"`
	HitBytes  int64  `json:"hit_bytes"`
	MissBytes int64  `json:"miss_bytes"`
	// BandBytes is pipeline intermediate-band traffic attributed to the
	// file by AddBandHeat.
	BandBytes int64 `json:"band_bytes,omitempty"`
}

// TopFiles returns the n hottest files by total halo traffic (hit + miss
// + intermediate-band bytes), ties broken by file name — deterministic
// regardless of map iteration order. n <= 0 or n beyond the population
// returns everything.
func (m *Manager) TopFiles(n int) []FileHeat {
	names := make(map[string]bool, len(m.fileHit)+len(m.fileMiss))
	for f := range m.fileHit {
		names[f] = true
	}
	for f := range m.fileMiss {
		names[f] = true
	}
	for f := range m.fileBand {
		names[f] = true
	}
	out := make([]FileHeat, 0, len(names))
	for f := range names {
		out = append(out, FileHeat{File: f, HitBytes: m.fileHit[f], MissBytes: m.fileMiss[f], BandBytes: m.fileBand[f]})
	}
	sort.Slice(out, func(i, j int) bool {
		ti := out[i].HitBytes + out[i].MissBytes + out[i].BandBytes
		tj := out[j].HitBytes + out[j].MissBytes + out[j].BandBytes
		if ti != tj {
			return ti > tj
		}
		return out[i].File < out[j].File
	})
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// Actions returns the replica-tuning log in decision order.
func (m *Manager) Actions() []Action { return m.actions }

// Ticks returns how many tuning ticks have run.
func (m *Manager) Ticks() int64 { return m.ticks }

// Stats returns per-server snapshots in server order.
func (m *Manager) Stats() []Stats {
	out := make([]Stats, 0, len(m.servers))
	for _, c := range m.servers {
		out = append(out, c.Snapshot())
	}
	return out
}

// tick is one pass of the tuning loop: servers in index order, candidate
// strips in (hits desc, file asc, strip asc) order — fully deterministic.
// Threshold checks compare the window sum against threshold×n instead of
// dividing: the truncating mean rounded toward promote-never/demote-always
// at the boundaries (a true mean a hair over LatencyLow truncated down to
// it and still demoted).
func (m *Manager) tick() {
	if m.external {
		return // an external controller owns the trigger now
	}
	m.ticks++
	for _, c := range m.servers {
		c.checkIncarnation()
		n := sim.Time(c.winFetches)
		if c.winFetches > 0 {
			if c.winFetchLat >= m.cfg.LatencyHigh*n {
				m.promoteHot(c, false)
			}
		} else if c.winHits > 0 {
			// No fetches but hits: the cache already absorbs the halo
			// traffic cheaply; release pins that went idle.
			m.demoteIdle(c)
		}
		if c.winFetches > 0 && c.winFetchLat <= m.cfg.LatencyLow*n {
			m.demoteIdle(c)
		}
		// reset the sampling window
		c.winFetches, c.winFetchLat, c.winHits = 0, 0, 0
		for _, e := range c.entries {
			e.winHits, e.winFetch = 0, 0
		}
	}
	m.timer = m.eng.AfterFuncDaemon(m.cfg.SampleEvery, m.tick)
}

// promoteHot pins the most-hit unpinned strips of a slow server,
// returning how many strips it pinned. With includeFetched, strips the
// server (re)fetched this window rank behind the re-hit candidates: in a
// window whose tail is already over threshold, the just-fetched strips
// are precisely the ones whose next access repeats the slow fetch, so
// pinning them is how a cold, thrashing cache bootstraps — under a
// cyclic access pattern wider than the budget no entry ever survives to
// be re-hit, and a hits-only candidate set can never act.
func (m *Manager) promoteHot(c *ServerCache, includeFetched bool) int {
	type cand struct {
		k    Key
		hits int64
	}
	var cands []cand
	for k, e := range c.entries {
		if !e.pinned && e.winHits > 0 {
			cands = append(cands, cand{k, e.winHits})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].hits != cands[j].hits {
			return cands[i].hits > cands[j].hits
		}
		if cands[i].k.File != cands[j].k.File {
			return cands[i].k.File < cands[j].k.File
		}
		return cands[i].k.Strip < cands[j].k.Strip
	})
	if includeFetched {
		var fetched []cand
		for k, e := range c.entries {
			if !e.pinned && e.winHits == 0 && e.winFetch > 0 {
				fetched = append(fetched, cand{k, e.winFetch})
			}
		}
		sort.Slice(fetched, func(i, j int) bool {
			if fetched[i].hits != fetched[j].hits {
				return fetched[i].hits > fetched[j].hits
			}
			if fetched[i].k.File != fetched[j].k.File {
				return fetched[i].k.File < fetched[j].k.File
			}
			return fetched[i].k.Strip < fetched[j].k.Strip
		})
		cands = append(cands, fetched...)
	}
	n := 0
	for _, cd := range cands {
		if n >= m.cfg.MaxPromotionsPerTick {
			break
		}
		if c.Pin(cd.k.File, cd.k.Strip) {
			m.actions = append(m.actions, Action{At: m.eng.Now(), Server: c.srv, Kind: "promote", File: cd.k.File, Strip: cd.k.Strip})
			n++
		}
	}
	return n
}

// demoteIdle unpins pinned strips that saw no hits in the window,
// returning how many strips it unpinned.
func (m *Manager) demoteIdle(c *ServerCache) int {
	var keys []Key
	for k, e := range c.entries {
		if e.pinned && e.winHits == 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].File != keys[j].File {
			return keys[i].File < keys[j].File
		}
		return keys[i].Strip < keys[j].Strip
	})
	n := 0
	for _, k := range keys {
		if c.Unpin(k.File, k.Strip) {
			m.actions = append(m.actions, Action{At: m.eng.Now(), Server: c.srv, Kind: "demote", File: k.File, Strip: k.Strip})
			n++
		}
	}
	return n
}

// --- External-controller interface -----------------------------------
//
// The unified p99 controller (internal/control) replaces the mean-window
// trigger above: it keeps its own quantile sketches over the latency
// samples forwarded by SetLatencySink and calls the exported promote/
// demote entry points when a percentile threshold with hysteresis says
// so. The manager stays the owner of the caches, the pin budget, the
// candidate ordering, and the action log, so a controlled run and a
// standalone run produce the same kinds of deterministic decisions.

// SetExternalTuning hands the promote/demote trigger to an external
// controller (or back). While external, Start is a no-op, any armed tick
// stops, and promotions/demotions happen only through PromoteHotServer /
// DemoteIdleServer; sampling state still accumulates so the controller
// can inspect and reset it with ResetWindows.
func (m *Manager) SetExternalTuning(on bool) {
	m.external = on
	if on {
		m.Stop()
	}
}

// SetLatencySink registers a listener for every halo-fetch latency sample
// (nil disables). Called from RecordFetch with the fetching server.
func (m *Manager) SetLatencySink(fn func(srv int, lat sim.Time)) { m.latSink = fn }

// PromoteHotServer runs one promote pass on server srv — pin its most-hit
// unpinned strips, then the strips it fetched this window, bounded by
// MaxPromotionsPerTick and the pin budget — and returns how many strips
// were pinned. Only the external controller takes the fetched-candidate
// path: its percentile trigger has already attributed the window's tail
// to this server, so the strips that window fetched are the ones a
// replica would have served locally.
func (m *Manager) PromoteHotServer(srv int) int {
	c := m.Server(srv)
	if c == nil {
		return 0
	}
	c.checkIncarnation()
	return m.promoteHot(c, true)
}

// DemoteIdleServer runs one demote pass on server srv — unpin its pinned
// strips that saw no hits this window — and returns how many strips were
// unpinned.
func (m *Manager) DemoteIdleServer(srv int) int {
	c := m.Server(srv)
	if c == nil {
		return 0
	}
	c.checkIncarnation()
	return m.demoteIdle(c)
}

// WindowHits returns how many cache hits server srv served since the last
// window reset — the controller's idle-pin signal for windows with no
// fetches at all.
func (m *Manager) WindowHits(srv int) int64 {
	c := m.Server(srv)
	if c == nil {
		return 0
	}
	return c.winHits
}

// ResetWindows closes the current sampling window on every server: it
// applies pending incarnation purges and clears the per-server fetch/hit
// counters and per-entry hit windows. The external controller calls it at
// the end of each tuning tick; the manager's own tick does the equivalent
// inline.
func (m *Manager) ResetWindows() {
	for _, c := range m.servers {
		c.checkIncarnation()
		c.winFetches, c.winFetchLat, c.winHits = 0, 0, 0
		for _, e := range c.entries {
			e.winHits, e.winFetch = 0, 0
		}
	}
}
