package cache

import (
	"fmt"
	"sort"

	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/sim"
)

// Config tunes the halo-strip cache subsystem. The zero value is usable:
// Normalize fills in defaults sized for the experiment cluster.
type Config struct {
	// BudgetBytes is each server's resident byte budget.
	BudgetBytes int64
	// MaxPinnedFrac bounds pinned bytes as a fraction of the budget so
	// the tuning loop cannot starve the adaptive part of the cache.
	MaxPinnedFrac float64
	// Policy names the eviction policy: "lru" (default) or "arc".
	Policy string
	// SampleEvery is the manager's tuning-tick period on the DES clock.
	SampleEvery sim.Time
	// LatencyHigh promotes: when a server's mean halo-fetch latency over
	// a window exceeds it, the server's hottest cached strips get pinned.
	LatencyHigh sim.Time
	// LatencyLow demotes: when the mean latency falls below it, pinned
	// strips that saw no hits in the window get unpinned.
	LatencyLow sim.Time
	// MaxPromotionsPerTick bounds how many strips one tick may pin on one
	// server, keeping the loop incremental like DynamicCache's.
	MaxPromotionsPerTick int
}

// Normalize fills zero fields with defaults and validates the rest.
func (c Config) Normalize() (Config, error) {
	if c.BudgetBytes == 0 {
		c.BudgetBytes = 8 << 20 // 8 MiB per server
	}
	if c.BudgetBytes < 0 {
		return c, fmt.Errorf("cache: negative budget %d", c.BudgetBytes)
	}
	if c.MaxPinnedFrac == 0 {
		c.MaxPinnedFrac = 0.5
	}
	if c.MaxPinnedFrac < 0 || c.MaxPinnedFrac > 1 {
		return c, fmt.Errorf("cache: MaxPinnedFrac %v outside [0,1]", c.MaxPinnedFrac)
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 5 * sim.Millisecond
	}
	if c.SampleEvery < 0 {
		return c, fmt.Errorf("cache: negative sample period %v", c.SampleEvery)
	}
	if c.LatencyHigh == 0 {
		c.LatencyHigh = 500 * sim.Microsecond
	}
	if c.LatencyLow == 0 {
		c.LatencyLow = 100 * sim.Microsecond
	}
	if c.LatencyLow > c.LatencyHigh {
		return c, fmt.Errorf("cache: LatencyLow %v > LatencyHigh %v", c.LatencyLow, c.LatencyHigh)
	}
	if c.MaxPromotionsPerTick == 0 {
		c.MaxPromotionsPerTick = 4
	}
	if _, err := NewPolicy(c.Policy, c.BudgetBytes); err != nil {
		return c, err
	}
	return c, nil
}

// Action is one replica-tuning decision, logged for reports and the
// determinism tests.
type Action struct {
	At     sim.Time
	Server int
	Kind   string // "promote" or "demote"
	File   string
	Strip  int64
}

func (a Action) String() string {
	return fmt.Sprintf("[%v] server %d %s %s strip %d", a.At, a.Server, a.Kind, a.File, a.Strip)
}

// Manager owns one ServerCache per storage server and runs the
// latency-driven replica-tuning loop as a goroutine-free chain of daemon
// timers on the DES clock: each tick samples every server's fetch-latency
// and hit window, pins the hottest strips on servers whose halo fetches
// run slow, unpins idle strips on servers whose fetches run fast, and
// reschedules itself. Daemon timers do not keep Engine.Run alive, so an
// idle manager never deadlocks a finished workload.
type Manager struct {
	eng     *sim.Engine
	cfg     Config
	servers []*ServerCache
	agg     *metrics.Cache

	// per-file byte hit/miss windows feed HitRateEstimate for predict.
	fileHit  map[string]int64
	fileMiss map[string]int64

	actions []Action
	ticks   int64
	timer   *sim.Timer
	started bool
}

// NewManager builds the subsystem: one cache per storage server. incFn
// reports a server's current incarnation (nil means "never restarts");
// agg is the cluster-wide counter collector (nil allocates a private one).
func NewManager(eng *sim.Engine, nServers int, cfg Config, incFn func(srv int) uint64, agg *metrics.Cache) (*Manager, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	if agg == nil {
		agg = metrics.NewCache()
	}
	m := &Manager{
		eng:      eng,
		cfg:      cfg,
		agg:      agg,
		fileHit:  make(map[string]int64),
		fileMiss: make(map[string]int64),
	}
	maxPinned := int64(float64(cfg.BudgetBytes) * cfg.MaxPinnedFrac)
	for i := 0; i < nServers; i++ {
		i := i
		var fn func() uint64
		if incFn != nil {
			fn = func() uint64 { return incFn(i) }
		}
		pol, _ := NewPolicy(cfg.Policy, cfg.BudgetBytes) // validated by Normalize
		m.servers = append(m.servers, newServerCache(i, cfg.BudgetBytes, maxPinned, pol, fn, agg))
	}
	return m, nil
}

// Config returns the normalized configuration.
func (m *Manager) Config() Config { return m.cfg }

// Server returns the cache of storage server i, or nil out of range.
func (m *Manager) Server(i int) *ServerCache {
	if i < 0 || i >= len(m.servers) {
		return nil
	}
	return m.servers[i]
}

// NumServers returns the number of per-server caches.
func (m *Manager) NumServers() int { return len(m.servers) }

// Counters returns the cluster-wide counter collector.
func (m *Manager) Counters() *metrics.Cache { return m.agg }

// Start arms the tuning loop. Safe to call once per engine run; ticks are
// daemon timers, so an idle system still terminates.
func (m *Manager) Start() {
	if m.started || m.cfg.SampleEvery <= 0 {
		return
	}
	m.started = true
	m.timer = m.eng.AfterFuncDaemon(m.cfg.SampleEvery, m.tick)
}

// Stop disarms the tuning loop.
func (m *Manager) Stop() {
	if m.timer != nil {
		m.timer.Stop()
		m.timer = nil
	}
	m.started = false
}

// Get serves bytes [lo, hi) of a strip from server srv's cache. Hits are
// free on the DES clock: the data already sits in the server's memory, so
// the simulated cost is the in-memory copy the caller performs anyway.
func (m *Manager) Get(srv int, file string, strip, lo, hi int64) ([]byte, bool) {
	c := m.Server(srv)
	if c == nil {
		return nil, false
	}
	data, ok := c.Get(file, strip, lo, hi)
	if ok {
		m.fileHit[file] += hi - lo
	}
	return data, ok
}

// RecordFetch accounts a remote halo fetch server srv had to perform —
// a cache miss — and admits a copy of the fetched bytes. lat is the
// observed DES latency of the fetch, which drives the tuning loop.
func (m *Manager) RecordFetch(srv int, file string, strip, lo int64, data []byte, lat sim.Time) {
	c := m.Server(srv)
	if c == nil {
		return
	}
	c.RecordMiss(int64(len(data)), lat)
	m.fileMiss[file] += int64(len(data))
	c.Put(file, strip, lo, data)
}

// InvalidateStrip drops every server's cached copy of a strip. The pfs
// write path calls this from storePut so a write anywhere kills stale
// halo copies everywhere.
func (m *Manager) InvalidateStrip(file string, strip int64) {
	for _, c := range m.servers {
		c.Invalidate(file, strip)
	}
}

// InvalidateFile drops every server's cached strips of a file.
func (m *Manager) InvalidateFile(file string) {
	for _, c := range m.servers {
		c.InvalidateFile(file)
	}
}

// HitRateEstimate returns the observed byte hit fraction for a file's
// halo fetches, 0 before any observation — the discount predict applies
// to dependent bytes in the cache-aware offload decision.
func (m *Manager) HitRateEstimate(file string) float64 {
	h, ms := m.fileHit[file], m.fileMiss[file]
	if h+ms == 0 {
		return 0
	}
	return float64(h) / float64(h+ms)
}

// FileMissBytes returns the dependent bytes a file's halo fetches moved
// over the interconnect (cache misses) so far — the observed-traffic
// signal the online restriper watches to decide a file is worth migrating.
func (m *Manager) FileMissBytes(file string) int64 { return m.fileMiss[file] }

// Actions returns the replica-tuning log in decision order.
func (m *Manager) Actions() []Action { return m.actions }

// Ticks returns how many tuning ticks have run.
func (m *Manager) Ticks() int64 { return m.ticks }

// Stats returns per-server snapshots in server order.
func (m *Manager) Stats() []Stats {
	out := make([]Stats, 0, len(m.servers))
	for _, c := range m.servers {
		out = append(out, c.Snapshot())
	}
	return out
}

// tick is one pass of the tuning loop: servers in index order, candidate
// strips in (hits desc, file asc, strip asc) order — fully deterministic.
func (m *Manager) tick() {
	m.ticks++
	for _, c := range m.servers {
		c.checkIncarnation()
		if c.winFetches > 0 {
			mean := c.winFetchLat / sim.Time(c.winFetches)
			if mean >= m.cfg.LatencyHigh {
				m.promoteHot(c)
			}
		} else if c.winHits > 0 {
			// No fetches but hits: the cache already absorbs the halo
			// traffic cheaply; release pins that went idle.
			m.demoteIdle(c)
		}
		if c.winFetches > 0 {
			mean := c.winFetchLat / sim.Time(c.winFetches)
			if mean <= m.cfg.LatencyLow {
				m.demoteIdle(c)
			}
		}
		// reset the sampling window
		c.winFetches, c.winFetchLat, c.winHits = 0, 0, 0
		for _, e := range c.entries {
			e.winHits = 0
		}
	}
	m.timer = m.eng.AfterFuncDaemon(m.cfg.SampleEvery, m.tick)
}

// promoteHot pins the most-hit unpinned strips of a slow server.
func (m *Manager) promoteHot(c *ServerCache) {
	type cand struct {
		k    Key
		hits int64
	}
	var cands []cand
	for k, e := range c.entries {
		if !e.pinned && e.winHits > 0 {
			cands = append(cands, cand{k, e.winHits})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].hits != cands[j].hits {
			return cands[i].hits > cands[j].hits
		}
		if cands[i].k.File != cands[j].k.File {
			return cands[i].k.File < cands[j].k.File
		}
		return cands[i].k.Strip < cands[j].k.Strip
	})
	n := 0
	for _, cd := range cands {
		if n >= m.cfg.MaxPromotionsPerTick {
			break
		}
		if c.Pin(cd.k.File, cd.k.Strip) {
			m.actions = append(m.actions, Action{At: m.eng.Now(), Server: c.srv, Kind: "promote", File: cd.k.File, Strip: cd.k.Strip})
			n++
		}
	}
}

// demoteIdle unpins pinned strips that saw no hits in the window.
func (m *Manager) demoteIdle(c *ServerCache) {
	var keys []Key
	for k, e := range c.entries {
		if e.pinned && e.winHits == 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].File != keys[j].File {
			return keys[i].File < keys[j].File
		}
		return keys[i].Strip < keys[j].Strip
	})
	for _, k := range keys {
		if c.Unpin(k.File, k.Strip) {
			m.actions = append(m.actions, Action{At: m.eng.Now(), Server: c.srv, Kind: "demote", File: k.File, Strip: k.Strip})
		}
	}
}
