package cache

import (
	"container/list"
	"fmt"
)

// Policy orders a ServerCache's resident entries for eviction. Policies
// track keys and sizes only; the cache owns the bytes. All bookkeeping
// structures are lists and maps keyed by insertion/access order, never
// iterated by map order, so identical call sequences produce identical
// victims — the determinism the DES contract demands.
type Policy interface {
	// Name identifies the policy for reports and configs.
	Name() string
	// Touch records a hit on a resident key.
	Touch(k Key)
	// Insert records a newly admitted resident entry of the given size.
	Insert(k Key, size int64)
	// Remove forgets a resident entry (invalidation, purge, or eviction
	// decided by the cache itself).
	Remove(k Key)
	// Victim proposes the next resident entry to evict, skipping keys the
	// filter rejects (pinned entries). ok is false when nothing evictable
	// remains.
	Victim(evictable func(Key) bool) (Key, bool)
}

// NewPolicy builds a policy by name: "lru" or "arc". The budget is the
// cache's byte budget; ARC uses it to bound its ghost lists.
func NewPolicy(name string, budget int64) (Policy, error) {
	switch name {
	case "", "lru":
		return NewLRU(), nil
	case "arc":
		return NewARC(budget), nil
	default:
		return nil, fmt.Errorf("cache: unknown policy %q (known: lru, arc)", name)
	}
}

// LRU is the classic least-recently-used order: hits and inserts move a
// key to the front, the victim is the rearmost evictable key.
type LRU struct {
	order *list.List // front = most recent; values are Key
	elems map[Key]*list.Element
}

// NewLRU returns an empty LRU policy.
func NewLRU() *LRU {
	return &LRU{order: list.New(), elems: make(map[Key]*list.Element)}
}

// Name returns "lru".
func (l *LRU) Name() string { return "lru" }

// Touch moves the key to the most-recent position.
func (l *LRU) Touch(k Key) {
	if e, ok := l.elems[k]; ok {
		l.order.MoveToFront(e)
	}
}

// Insert admits a key at the most-recent position.
func (l *LRU) Insert(k Key, size int64) {
	if e, ok := l.elems[k]; ok {
		l.order.MoveToFront(e)
		return
	}
	l.elems[k] = l.order.PushFront(k)
}

// Remove forgets the key.
func (l *LRU) Remove(k Key) {
	if e, ok := l.elems[k]; ok {
		l.order.Remove(e)
		delete(l.elems, k)
	}
}

// Victim returns the least-recent evictable key.
func (l *LRU) Victim(evictable func(Key) bool) (Key, bool) {
	for e := l.order.Back(); e != nil; e = e.Prev() {
		k := e.Value.(Key)
		if evictable(k) {
			return k, true
		}
	}
	return Key{}, false
}

// ARC is a byte-weighted adaptation of the ARC (Adaptive Replacement
// Cache) policy: resident entries live in T1 (seen once, recency) or T2
// (seen more than once, frequency), and two ghost lists B1/B2 remember
// the keys (not the bytes) of recent evictions from each side. A miss
// that hits a ghost steers the adaptation target p — ghost hits in B1
// grow p (favor recency), ghost hits in B2 shrink it (favor frequency) —
// which is what lets the policy track a drifting halo workload without a
// tuning knob.
type ARC struct {
	budget int64 // byte budget the cache enforces; bounds ghosts too
	p      int64 // adaptation target: desired T1 bytes

	t1, t2 *list.List // resident; front = most recent; values are Key
	b1, b2 *list.List // ghosts: keys of recent evictions

	elems map[Key]*arcElem
	// ghost byte accounting uses the evicted entry's size so the ghost
	// window covers roughly one budget's worth of history per side.
	t1Bytes, t2Bytes, b1Bytes, b2Bytes int64
}

type arcElem struct {
	where *list.List // which of t1/t2/b1/b2 holds the key
	elem  *list.Element
	size  int64
}

// NewARC returns an empty adaptive policy for the given byte budget.
func NewARC(budget int64) *ARC {
	if budget <= 0 {
		budget = 1
	}
	return &ARC{
		budget: budget,
		t1:     list.New(), t2: list.New(),
		b1: list.New(), b2: list.New(),
		elems: make(map[Key]*arcElem),
	}
}

// Name returns "arc".
func (a *ARC) Name() string { return "arc" }

// TargetT1Bytes exposes the adaptation target for tests and reports.
func (a *ARC) TargetT1Bytes() int64 { return a.p }

// Touch promotes a resident key to the frequent side.
func (a *ARC) Touch(k Key) {
	ae, ok := a.elems[k]
	if !ok || (ae.where != a.t1 && ae.where != a.t2) {
		return
	}
	if ae.where == a.t1 {
		a.t1.Remove(ae.elem)
		a.t1Bytes -= ae.size
		ae.where = a.t2
		ae.elem = a.t2.PushFront(k)
		a.t2Bytes += ae.size
		return
	}
	a.t2.MoveToFront(ae.elem)
}

// Insert admits a key. A key remembered by a ghost list re-enters on the
// frequent side and moves the adaptation target toward the side that
// proved useful; a cold key enters the recency side.
func (a *ARC) Insert(k Key, size int64) {
	if ae, ok := a.elems[k]; ok {
		switch ae.where {
		case a.t1, a.t2:
			a.Touch(k)
			return
		case a.b1:
			// Ghost hit on the recency side: recency deserved more room.
			a.p = minInt64(a.budget, a.p+maxInt64(size, a.b2Bytes/maxInt64(int64(a.b1.Len()), 1)))
			a.b1.Remove(ae.elem)
			a.b1Bytes -= ae.size
		case a.b2:
			// Ghost hit on the frequency side: frequency deserved more room.
			a.p = maxInt64(0, a.p-maxInt64(size, a.b1Bytes/maxInt64(int64(a.b2.Len()), 1)))
			a.b2.Remove(ae.elem)
			a.b2Bytes -= ae.size
		}
		ae.where = a.t2
		ae.elem = a.t2.PushFront(k)
		ae.size = size
		a.t2Bytes += size
		return
	}
	a.elems[k] = &arcElem{where: a.t1, elem: a.t1.PushFront(k), size: size}
	a.t1Bytes += size
	a.trimGhosts()
}

// Remove forgets a key wherever it lives, resident or ghost.
func (a *ARC) Remove(k Key) {
	ae, ok := a.elems[k]
	if !ok {
		return
	}
	switch ae.where {
	case a.t1:
		a.t1Bytes -= ae.size
	case a.t2:
		a.t2Bytes -= ae.size
	case a.b1:
		a.b1Bytes -= ae.size
	case a.b2:
		a.b2Bytes -= ae.size
	}
	ae.where.Remove(ae.elem)
	delete(a.elems, k)
}

// Victim proposes the LRU key of whichever resident side exceeds its
// adaptation share — T1 when it holds more than p bytes, T2 otherwise —
// and remembers the choice in the matching ghost list when the cache
// confirms the eviction by calling Evicted.
func (a *ARC) Victim(evictable func(Key) bool) (Key, bool) {
	pick := func(side *list.List) (Key, bool) {
		for e := side.Back(); e != nil; e = e.Prev() {
			k := e.Value.(Key)
			if evictable(k) {
				return k, true
			}
		}
		return Key{}, false
	}
	if a.t1Bytes > a.p {
		if k, ok := pick(a.t1); ok {
			return k, true
		}
		return pick(a.t2)
	}
	if k, ok := pick(a.t2); ok {
		return k, true
	}
	return pick(a.t1)
}

// Evicted tells the policy the cache dropped a resident key to make room
// (as opposed to an invalidation): the key moves to the matching ghost
// list so a near-future re-reference steers the adaptation.
func (a *ARC) Evicted(k Key) {
	ae, ok := a.elems[k]
	if !ok || (ae.where != a.t1 && ae.where != a.t2) {
		return
	}
	ghost := a.b1
	if ae.where == a.t2 {
		ghost = a.b2
	}
	ae.where.Remove(ae.elem)
	if ghost == a.b1 {
		a.t1Bytes -= ae.size
		a.b1Bytes += ae.size
	} else {
		a.t2Bytes -= ae.size
		a.b2Bytes += ae.size
	}
	ae.where = ghost
	ae.elem = ghost.PushFront(k)
	a.trimGhosts()
}

// trimGhosts bounds each ghost list to one budget's worth of history.
func (a *ARC) trimGhosts() {
	for a.b1Bytes > a.budget {
		e := a.b1.Back()
		if e == nil {
			break
		}
		k := e.Value.(Key)
		a.b1Bytes -= a.elems[k].size
		a.b1.Remove(e)
		delete(a.elems, k)
	}
	for a.b2Bytes > a.budget {
		e := a.b2.Back()
		if e == nil {
			break
		}
		k := e.Value.(Key)
		a.b2Bytes -= a.elems[k].size
		a.b2.Remove(e)
		delete(a.elems, k)
	}
}

// ghostEvicter is implemented by policies that want to be told when the
// cache confirms an eviction (ARC's ghost-list bookkeeping). The cache
// calls Evicted instead of Remove for capacity evictions.
type ghostEvicter interface {
	Evicted(k Key)
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
