package cache

import (
	"bytes"
	"testing"

	"github.com/hpcio/das/internal/sim"
)

func newTestCache(budget int64, incFn func() uint64) *ServerCache {
	pol, _ := NewPolicy("lru", budget)
	return newServerCache(0, budget, budget/2, pol, incFn, nil)
}

func TestCacheGetReturnsCopyOfCoveredRange(t *testing.T) {
	c := newTestCache(1024, nil)
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	c.Put("f", 3, 0, data)
	data[0] = 99 // the cache must have copied

	got, ok := c.Get("f", 3, 0, 8)
	if !ok {
		t.Fatal("whole-range lookup missed")
	}
	if got[0] != 1 {
		t.Error("cache aliased the caller's buffer")
	}
	got[7] = 42 // the returned copy must not alias the cache
	again, _ := c.Get("f", 3, 6, 8)
	if again[1] != 8 {
		t.Error("returned buffer aliased the cached bytes")
	}
	if sub, ok := c.Get("f", 3, 2, 5); !ok || !bytes.Equal(sub, []byte{3, 4, 5}) {
		t.Errorf("sub-range = %v, %v", sub, ok)
	}
}

func TestCacheGetMissesOutsideResidentRange(t *testing.T) {
	c := newTestCache(1024, nil)
	c.Put("f", 3, 16, []byte{1, 2, 3, 4}) // covers [16, 20)
	if _, ok := c.Get("f", 3, 0, 4); ok {
		t.Error("hit below the resident range")
	}
	if _, ok := c.Get("f", 3, 18, 24); ok {
		t.Error("hit past the resident range")
	}
	if _, ok := c.Get("f", 4, 16, 20); ok {
		t.Error("hit on a different strip")
	}
	if got, ok := c.Get("f", 3, 16, 20); !ok || !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Errorf("covered range = %v, %v", got, ok)
	}
}

func TestCacheEvictsWithinBudget(t *testing.T) {
	c := newTestCache(32, nil)
	buf := make([]byte, 16)
	c.Put("f", 1, 0, buf)
	c.Put("f", 2, 0, buf)
	c.Put("f", 3, 0, buf) // evicts f/1 (LRU)
	if c.UsedBytes() != 32 {
		t.Fatalf("used %d, want 32", c.UsedBytes())
	}
	if c.Holds("f", 1) {
		t.Error("LRU entry survived over-budget insert")
	}
	if !c.Holds("f", 2) || !c.Holds("f", 3) {
		t.Error("recent entries evicted")
	}
	if s := c.Snapshot(); s.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions)
	}
	// An entry larger than the whole budget is not admitted.
	c.Put("f", 9, 0, make([]byte, 64))
	if c.Holds("f", 9) {
		t.Error("oversize entry admitted")
	}
}

func TestCachePinnedEntriesSurviveEviction(t *testing.T) {
	c := newTestCache(32, nil)
	buf := make([]byte, 16)
	c.Put("f", 1, 0, buf)
	if !c.Pin("f", 1) {
		t.Fatal("pin failed")
	}
	c.Put("f", 2, 0, buf)
	c.Put("f", 3, 0, buf) // must evict f/2, not pinned f/1
	if !c.Holds("f", 1) {
		t.Error("pinned entry evicted")
	}
	if c.Holds("f", 2) {
		t.Error("unpinned entry survived over the pinned one")
	}
	// The pinned-byte cap (budget/2 = 16) rejects a second pin.
	if c.Pin("f", 3) {
		t.Error("pin accepted past the pinned-byte cap")
	}
	if !c.Unpin("f", 1) {
		t.Error("unpin failed")
	}
	if !c.Pin("f", 3) {
		t.Error("pin rejected after cap freed")
	}
}

func TestCacheInvalidation(t *testing.T) {
	c := newTestCache(1024, nil)
	c.Put("f", 1, 0, []byte{1})
	c.Put("f", 2, 0, []byte{2})
	c.Put("g", 1, 0, []byte{3})
	c.Invalidate("f", 1)
	if c.Holds("f", 1) {
		t.Error("invalidated strip still resident")
	}
	c.InvalidateFile("f")
	if c.Holds("f", 2) {
		t.Error("file invalidation missed a strip")
	}
	if !c.Holds("g", 1) {
		t.Error("file invalidation hit another file")
	}
	if s := c.Snapshot(); s.Invalidations != 2 {
		t.Errorf("invalidations = %d, want 2", s.Invalidations)
	}
}

func TestCacheIncarnationBumpPurges(t *testing.T) {
	inc := uint64(1)
	c := newTestCache(1024, func() uint64 { return inc })
	c.Put("f", 1, 0, []byte{1, 2, 3})
	c.Pin("f", 1)
	inc = 2 // the server restarted: memory is gone
	if _, ok := c.Get("f", 1, 0, 3); ok {
		t.Error("cache survived a restart")
	}
	if c.UsedBytes() != 0 {
		t.Errorf("used %d after purge", c.UsedBytes())
	}
	s := c.Snapshot()
	if s.RestartPurges != 1 {
		t.Errorf("restart purges = %d, want 1", s.RestartPurges)
	}
	if s.PinnedBytes != 0 {
		t.Errorf("pinned bytes %d after purge", s.PinnedBytes)
	}
	// The cache works again at the new incarnation.
	c.Put("f", 1, 0, []byte{9})
	if !c.Holds("f", 1) {
		t.Error("cache dead after purge")
	}
}

func TestCachePutKeepsWiderRange(t *testing.T) {
	c := newTestCache(1024, nil)
	c.Put("f", 1, 0, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	c.Put("f", 1, 2, []byte{9, 9}) // narrower: ignored
	if got, ok := c.Get("f", 1, 0, 8); !ok || got[2] != 3 {
		t.Errorf("narrow re-put replaced wider entry: %v, %v", got, ok)
	}
	c.Put("f", 1, 0, make([]byte, 16)) // wider: replaces
	if _, ok := c.Get("f", 1, 0, 16); !ok {
		t.Error("wider re-put not admitted")
	}
}

func TestCacheRecordMissFeedsWindow(t *testing.T) {
	c := newTestCache(1024, nil)
	c.RecordMiss(64, 10*sim.Microsecond)
	c.RecordMiss(64, 30*sim.Microsecond)
	if c.winFetches != 2 || c.winFetchLat != 40*sim.Microsecond {
		t.Errorf("window = %d fetches / %v", c.winFetches, c.winFetchLat)
	}
	s := c.Snapshot()
	if s.Misses != 2 || s.MissBytes != 128 {
		t.Errorf("misses = %d / %d bytes", s.Misses, s.MissBytes)
	}
}
