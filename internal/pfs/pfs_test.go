package pfs

import (
	"bytes"
	"testing"

	"github.com/hpcio/das/internal/cluster"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/sim"
)

// testFS builds a small platform: 2 compute, 4 storage, tiny strips so
// placement effects show up with little data.
func testFS(t *testing.T) (*cluster.Cluster, *FileSystem) {
	t.Helper()
	cfg := cluster.Default()
	cfg.ComputeNodes, cfg.StorageNodes = 2, 4
	clu, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return clu, New(clu)
}

func pattern(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i*31 + i/257)
	}
	return data
}

// run executes fn as the workload process and finishes the simulation.
func run(t *testing.T, clu *cluster.Cluster, fn func(p *sim.Proc)) {
	t.Helper()
	clu.Eng.Spawn("workload", fn)
	if err := clu.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateValidation(t *testing.T) {
	_, fs := testFS(t)
	lay := layout.NewRoundRobin(4)
	if _, err := fs.Create("", 100, lay, CreateOptions{}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := fs.Create("f", 0, lay, CreateOptions{}); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := fs.Create("f", 100, layout.NewRoundRobin(3), CreateOptions{}); err == nil {
		t.Error("mismatched server count accepted")
	}
	if _, err := fs.Create("f", 100, lay, CreateOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("f", 100, lay, CreateOptions{}); err == nil {
		t.Error("duplicate create accepted")
	}
	m, ok := fs.Meta("f")
	if !ok || m.StripSize != DefaultStripSize {
		t.Errorf("meta %+v", m)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	clu, fs := testFS(t)
	lay := layout.NewRoundRobin(4)
	data := pattern(1000)
	if _, err := fs.Create("f", 1000, lay, CreateOptions{StripSize: 256}); err != nil {
		t.Fatal(err)
	}
	run(t, clu, func(p *sim.Proc) {
		c := fs.NewClient(clu.ComputeID(0))
		if err := c.WriteAll(p, "f", data); err != nil {
			t.Error(err)
			return
		}
		got, err := c.ReadAll(p, "f")
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("round trip corrupted data")
		}
	})
	if clu.Eng.Now() == 0 {
		t.Error("I/O consumed no simulated time")
	}
}

func TestPartialReadArbitraryRanges(t *testing.T) {
	clu, fs := testFS(t)
	data := pattern(1000)
	if _, err := fs.Create("f", 1000, layout.NewRoundRobin(4), CreateOptions{StripSize: 256}); err != nil {
		t.Fatal(err)
	}
	run(t, clu, func(p *sim.Proc) {
		c := fs.NewClient(clu.ComputeID(1))
		if err := c.WriteAll(p, "f", data); err != nil {
			t.Fatal(err)
		}
		for _, r := range [][2]int64{{0, 1}, {255, 2}, {100, 500}, {999, 1}, {0, 1000}, {300, 0}} {
			got, err := c.Read(p, "f", r[0], r[1])
			if err != nil {
				t.Errorf("Read(%d,%d): %v", r[0], r[1], err)
				continue
			}
			if !bytes.Equal(got, data[r[0]:r[0]+r[1]]) {
				t.Errorf("Read(%d,%d) corrupted", r[0], r[1])
			}
		}
		if _, err := c.Read(p, "f", 999, 2); err == nil {
			t.Error("out-of-range read accepted")
		}
	})
}

func TestStripPlacementFollowsLayout(t *testing.T) {
	clu, fs := testFS(t)
	lay := layout.NewRoundRobin(4)
	data := pattern(1024)
	if _, err := fs.Create("f", 1024, lay, CreateOptions{StripSize: 256}); err != nil {
		t.Fatal(err)
	}
	run(t, clu, func(p *sim.Proc) {
		c := fs.NewClient(clu.ComputeID(0))
		if err := c.WriteAll(p, "f", data); err != nil {
			t.Fatal(err)
		}
	})
	for s := int64(0); s < 4; s++ {
		owner := lay.Primary(s)
		for srv := 0; srv < 4; srv++ {
			holds := fs.Server(srv).Holds("f", s)
			if holds != (srv == owner) {
				t.Errorf("server %d holds strip %d = %v, owner is %d", srv, s, holds, owner)
			}
		}
	}
}

func TestReplicatedWritePlacesBoundaryCopies(t *testing.T) {
	clu, fs := testFS(t)
	lay := layout.NewGroupedReplicated(4, 2, 1)
	data := pattern(8 * 64)
	if _, err := fs.Create("f", 8*64, lay, CreateOptions{StripSize: 64}); err != nil {
		t.Fatal(err)
	}
	run(t, clu, func(p *sim.Proc) {
		c := fs.NewClient(clu.ComputeID(0))
		if err := c.WriteAll(p, "f", data); err != nil {
			t.Fatal(err)
		}
	})
	for s := int64(0); s < 8; s++ {
		for _, holder := range layout.Holders(lay, s) {
			if !fs.Server(holder).Holds("f", s) {
				t.Errorf("server %d missing copy of strip %d", holder, s)
			}
		}
	}
	// Replica forwarding is server↔server traffic.
	if clu.Traffic.Bytes(metrics.ServerToServer) == 0 {
		t.Error("replica forwarding produced no server↔server traffic")
	}
	// Capacity overhead: every strip is at a group boundary with r=2, so
	// stored bytes are double the file size.
	var stored int64
	for srv := 0; srv < 4; srv++ {
		stored += fs.Server(srv).StoredBytes()
	}
	if stored != 2*8*64 {
		t.Errorf("stored %d bytes, want %d", stored, 2*8*64)
	}
}

func TestReconfigureMigratesAndPreservesContent(t *testing.T) {
	clu, fs := testFS(t)
	data := pattern(16 * 64)
	if _, err := fs.Create("f", 16*64, layout.NewRoundRobin(4), CreateOptions{StripSize: 64}); err != nil {
		t.Fatal(err)
	}
	newLay := layout.NewGroupedReplicated(4, 4, 1)
	run(t, clu, func(p *sim.Proc) {
		c := fs.NewClient(clu.ComputeID(0))
		if err := c.WriteAll(p, "f", data); err != nil {
			t.Fatal(err)
		}
		if err := c.Reconfigure(p, "f", newLay); err != nil {
			t.Fatal(err)
		}
		got, err := c.ReadAll(p, "f")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Error("reconfiguration corrupted data")
		}
	})
	m, _ := fs.Meta("f")
	if m.Layout.Name() != newLay.Name() {
		t.Errorf("layout after reconfig: %s", m.Layout.Name())
	}
	for s := int64(0); s < 16; s++ {
		for srv := 0; srv < 4; srv++ {
			want := layout.Holds(newLay, s, srv)
			if got := fs.Server(srv).Holds("f", s); got != want {
				t.Errorf("strip %d on server %d: holds=%v want=%v", s, srv, got, want)
			}
		}
	}
}

func TestLocalReadAvoidsNetwork(t *testing.T) {
	clu, fs := testFS(t)
	data := pattern(4 * 64)
	if _, err := fs.Create("f", 4*64, layout.NewRoundRobin(4), CreateOptions{StripSize: 64}); err != nil {
		t.Fatal(err)
	}
	run(t, clu, func(p *sim.Proc) {
		c := fs.NewClient(clu.ComputeID(0))
		if err := c.WriteAll(p, "f", data); err != nil {
			t.Fatal(err)
		}
	})
	before := clu.Traffic.NetworkBytes()
	run(t, clu, func(p *sim.Proc) {
		srv := fs.Server(layout.NewRoundRobin(4).Primary(2))
		got, err := srv.LocalRead(p, "f", 2, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data[2*64:3*64]) {
			t.Error("local read returned wrong bytes")
		}
		if _, err := srv.LocalRead(p, "f", 3, 0, 0); err == nil {
			t.Error("local read of a strip held elsewhere succeeded")
		}
	})
	if clu.Traffic.NetworkBytes() != before {
		t.Error("local read moved network bytes")
	}
}

func TestLocalReadSubRange(t *testing.T) {
	clu, fs := testFS(t)
	data := pattern(64)
	if _, err := fs.Create("f", 64, layout.NewRoundRobin(4), CreateOptions{StripSize: 64}); err != nil {
		t.Fatal(err)
	}
	run(t, clu, func(p *sim.Proc) {
		c := fs.NewClient(clu.ComputeID(0))
		if err := c.WriteAll(p, "f", data); err != nil {
			t.Fatal(err)
		}
		srv := fs.Server(0)
		got, err := srv.LocalRead(p, "f", 0, 10, 20)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data[10:20]) {
			t.Error("sub-range read wrong")
		}
		if _, err := srv.LocalRead(p, "f", 0, 20, 10); err == nil {
			t.Error("inverted range accepted")
		}
		if _, err := srv.LocalRead(p, "f", 0, 0, 100); err == nil {
			t.Error("over-long range accepted")
		}
	})
}

func TestReadStripFromRemoteServerChargesServerTraffic(t *testing.T) {
	clu, fs := testFS(t)
	data := pattern(4 * 64)
	if _, err := fs.Create("f", 4*64, layout.NewRoundRobin(4), CreateOptions{StripSize: 64}); err != nil {
		t.Fatal(err)
	}
	run(t, clu, func(p *sim.Proc) {
		c := fs.NewClient(clu.ComputeID(0))
		if err := c.WriteAll(p, "f", data); err != nil {
			t.Fatal(err)
		}
	})
	before := clu.Traffic.Bytes(metrics.ServerToServer)
	run(t, clu, func(p *sim.Proc) {
		// Server 0 fetches strip 1 (owned by server 1), as NAS would.
		got, err := fs.ReadStripFrom(p, clu.StorageID(0), 1, "f", 1, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data[64:128]) {
			t.Error("remote strip fetch returned wrong bytes")
		}
	})
	moved := clu.Traffic.Bytes(metrics.ServerToServer) - before
	if moved < 64 {
		t.Errorf("server↔server traffic %d, want ≥ strip size", moved)
	}
}

func TestWriteSizeMismatchRejected(t *testing.T) {
	clu, fs := testFS(t)
	if _, err := fs.Create("f", 100, layout.NewRoundRobin(4), CreateOptions{}); err != nil {
		t.Fatal(err)
	}
	run(t, clu, func(p *sim.Proc) {
		c := fs.NewClient(clu.ComputeID(0))
		if err := c.WriteAll(p, "f", make([]byte, 99)); err == nil {
			t.Error("short write accepted")
		}
		if err := c.WriteAll(p, "nope", make([]byte, 1)); err == nil {
			t.Error("write to unknown file accepted")
		}
		if _, err := c.ReadAll(p, "nope"); err == nil {
			t.Error("read of unknown file accepted")
		}
	})
}

func TestDeleteDropsDataEverywhere(t *testing.T) {
	clu, fs := testFS(t)
	data := pattern(4 * 64)
	if _, err := fs.Create("f", 4*64, layout.NewRoundRobin(4), CreateOptions{StripSize: 64}); err != nil {
		t.Fatal(err)
	}
	run(t, clu, func(p *sim.Proc) {
		c := fs.NewClient(clu.ComputeID(0))
		if err := c.WriteAll(p, "f", data); err != nil {
			t.Fatal(err)
		}
	})
	fs.Delete("f")
	if _, ok := fs.Meta("f"); ok {
		t.Error("meta survived delete")
	}
	for srv := 0; srv < 4; srv++ {
		if fs.Server(srv).StoredBytes() != 0 {
			t.Errorf("server %d still stores bytes", srv)
		}
	}
}

func TestWriteIsolationFromCallerBuffer(t *testing.T) {
	clu, fs := testFS(t)
	data := pattern(64)
	if _, err := fs.Create("f", 64, layout.NewRoundRobin(4), CreateOptions{StripSize: 64}); err != nil {
		t.Fatal(err)
	}
	run(t, clu, func(p *sim.Proc) {
		c := fs.NewClient(clu.ComputeID(0))
		if err := c.WriteAll(p, "f", data); err != nil {
			t.Fatal(err)
		}
		data[0] ^= 0xFF // mutate the caller's buffer after the write
		got, err := c.ReadAll(p, "f")
		if err != nil {
			t.Fatal(err)
		}
		if got[0] == data[0] {
			t.Error("server aliases the caller's buffer")
		}
	})
}

func TestDeterministicTiming(t *testing.T) {
	elapsed := func() sim.Time {
		clu, fs := testFS(t)
		data := pattern(16 * 64)
		if _, err := fs.Create("f", 16*64, layout.NewGroupedReplicated(4, 2, 1), CreateOptions{StripSize: 64}); err != nil {
			t.Fatal(err)
		}
		run(t, clu, func(p *sim.Proc) {
			c := fs.NewClient(clu.ComputeID(0))
			if err := c.WriteAll(p, "f", data); err != nil {
				t.Fatal(err)
			}
			if _, err := c.ReadAll(p, "f"); err != nil {
				t.Fatal(err)
			}
		})
		return clu.Eng.Now()
	}
	if a, b := elapsed(), elapsed(); a != b {
		t.Errorf("nondeterministic timing: %v vs %v", a, b)
	}
}
