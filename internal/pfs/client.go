package pfs

import (
	"fmt"

	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/sim"
)

// Client is the parallel-file-system client library bound to one node
// (usually a compute node). All data operations run inside the calling
// process and charge that node's NICs; independent strip transfers are
// pipelined on child processes the way a striping PFS client overlaps
// requests to different servers.
type Client struct {
	fs     *FileSystem
	nodeID int
}

// NewClient binds a client to a node.
func (fs *FileSystem) NewClient(nodeID int) *Client {
	return &Client{fs: fs, nodeID: nodeID}
}

// NodeID returns the node this client issues requests from.
func (c *Client) NodeID() int { return c.nodeID }

// FS returns the file system the client talks to.
func (c *Client) FS() *FileSystem { return c.fs }

// WriteAll stripes data over the file's layout: the strips bound for each
// primary server travel in one batched request (as a striping PFS client
// coalesces them), and each server forwards replica copies if the layout
// requires them. Requests to distinct servers overlap.
func (c *Client) WriteAll(p *sim.Proc, name string, data []byte) error {
	m, ok := c.fs.meta[name]
	if !ok {
		return fmt.Errorf("pfs: unknown file %q", name)
	}
	if int64(len(data)) != m.Size {
		return fmt.Errorf("pfs: file %q is %d bytes, got %d", name, m.Size, len(data))
	}
	type batch struct {
		strips []int64
		chunks [][]byte
	}
	batches := make(map[int]*batch)
	var order []int
	for s := int64(0); s < m.Strips(); s++ {
		lo, hi := m.StripBounds(s)
		srv := m.Layout.Primary(s)
		b, ok := batches[srv]
		if !ok {
			b = &batch{}
			batches[srv] = b
			order = append(order, srv)
		}
		b.strips = append(b.strips, s)
		b.chunks = append(b.chunks, data[lo:hi])
	}
	sigs := make([]*sim.Signal[error], 0, len(order))
	for _, srv := range order {
		srv := srv
		b := batches[srv]
		done := sim.NewSignal[error](c.fs.clu.Eng, "pfs-write")
		sigs = append(sigs, done)
		p.Spawn("pfs-write", func(w *sim.Proc) {
			done.Fire(c.fs.WriteStripsTo(w, c.nodeID, srv, name, b.strips, b.chunks, true))
		})
	}
	for _, err := range sim.WaitAll(p, sigs) {
		if err != nil {
			return err
		}
	}
	return nil
}

// Write updates bytes [off, off+len(data)) of the file. Whole strips are
// replaced directly; partially covered strips are updated read-modify-
// write, as striped file systems do for unaligned writes. Replicas are
// re-forwarded for every touched strip so copies never diverge.
func (c *Client) Write(p *sim.Proc, name string, off int64, data []byte) error {
	m, ok := c.fs.meta[name]
	if !ok {
		return fmt.Errorf("pfs: unknown file %q", name)
	}
	end := off + int64(len(data))
	if off < 0 || end > m.Size {
		return fmt.Errorf("pfs: write [%d,%d) outside file %q of %d bytes", off, end, name, m.Size)
	}
	if len(data) == 0 {
		return nil
	}
	for s := off / m.StripSize; s*m.StripSize < end; s++ {
		sLo, sHi := m.StripBounds(s)
		lo, hi := off, end
		if lo < sLo {
			lo = sLo
		}
		if hi > sHi {
			hi = sHi
		}
		chunk := data[lo-off : hi-off]
		if lo == sLo && hi == sHi {
			if err := c.fs.WriteStripTo(p, c.nodeID, m.Layout.Primary(s), name, s, chunk, true); err != nil {
				return err
			}
			continue
		}
		// Unaligned: read-modify-write the strip.
		full, err := c.fs.ReadStripFrom(p, c.nodeID, m.Layout.Primary(s), name, s, 0, 0)
		if err != nil {
			return err
		}
		copy(full[lo-sLo:], chunk)
		if err := c.fs.WriteStripTo(p, c.nodeID, m.Layout.Primary(s), name, s, full, true); err != nil {
			return err
		}
	}
	return nil
}

// Read returns bytes [off, off+length) of the file, assembling per-strip
// reads from the primary holders in parallel. The returned slice is
// freshly allocated and owned by the caller; hot paths that can recycle
// the destination should use ReadInto with a pooled buffer instead.
func (c *Client) Read(p *sim.Proc, name string, off, length int64) ([]byte, error) {
	out := make([]byte, length)
	if err := c.ReadInto(p, name, off, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadInto fills out with bytes [off, off+len(out)) of the file,
// assembling per-strip reads from the primary holders in parallel. The
// per-strip transfer buffers are recycled through the package buffer pool,
// so a steady-state read allocates nothing proportional to its size.
func (c *Client) ReadInto(p *sim.Proc, name string, off int64, out []byte) error {
	m, ok := c.fs.meta[name]
	if !ok {
		return fmt.Errorf("pfs: unknown file %q", name)
	}
	length := int64(len(out))
	if off < 0 || off+length > m.Size {
		return fmt.Errorf("pfs: read [%d,%d) outside file %q of %d bytes", off, off+length, name, m.Size)
	}
	if length == 0 {
		return nil
	}
	// Group strips by primary server with a counting sort over the dense
	// server index (exact-size allocations, no maps): cur[srv] counts spans,
	// becomes the fill cursor after a prefix sum, and ends as the exclusive
	// end offset of srv's group — so group k spans spans[cur[k-1]:cur[k]].
	firstStrip := off / m.StripSize
	lastStrip := (off + length - 1) / m.StripSize
	nSpans := int(lastStrip - firstStrip + 1)
	cur := make([]int, c.fs.Servers())
	for s := firstStrip; s <= lastStrip; s++ {
		cur[m.Layout.Primary(s)]++
	}
	sum := 0
	for srv, n := range cur {
		cur[srv] = sum
		sum += n
	}
	starts := make([]int, len(cur))
	copy(starts, cur)
	spans := make([]Span, nSpans)
	outOffs := make([]int64, nSpans)
	sigs := make([]*sim.Signal[error], 0, len(cur))
	for s := firstStrip; s <= lastStrip; s++ {
		sLo, sHi := m.StripBounds(s)
		lo, hi := off, off+length
		if lo < sLo {
			lo = sLo
		}
		if hi > sHi {
			hi = sHi
		}
		srv := m.Layout.Primary(s)
		i := cur[srv]
		spans[i] = Span{Strip: s, Lo: lo - sLo, Hi: hi - sLo}
		outOffs[i] = lo - off
		cur[srv]++
		if i != starts[srv] {
			continue
		}
		// First strip owned by srv: fork its batch read here so servers are
		// engaged in first-encounter order, exactly as issuing requests
		// strip by strip would. The group's later spans are filled before
		// the child can run (spawn only schedules; children run once this
		// process parks in WaitAll). Static diagnostic names: formatted
		// per-server names were a leading allocation source on this path.
		end := nSpans
		if srv+1 < len(starts) {
			end = starts[srv+1]
		}
		srv, bSpans, bOffs := srv, spans[i:end], outOffs[i:end]
		done := sim.NewSignal[error](c.fs.clu.Eng, "pfs-read")
		sigs = append(sigs, done)
		p.Spawn("pfs-read", func(r *sim.Proc) {
			data, err := c.fs.ReadSpansFrom(r, c.nodeID, srv, name, bSpans)
			if err == nil {
				for i, d := range data {
					copy(out[bOffs[i]:], d)
					ReleaseBuffer(d) // the assembled copy is the only consumer
				}
			}
			done.Fire(err)
		})
	}
	for _, err := range sim.WaitAll(p, sigs) {
		if err != nil {
			return err
		}
	}
	return nil
}

// ReadAll returns the whole file.
func (c *Client) ReadAll(p *sim.Proc, name string) ([]byte, error) {
	m, ok := c.fs.meta[name]
	if !ok {
		return nil, fmt.Errorf("pfs: unknown file %q", name)
	}
	return c.Read(p, name, 0, m.Size)
}

// Reconfigure migrates a file to a new layout (the "Reconfig Parallel File
// System" step of the DAS workflow, Fig. 3). For every strip, each new
// holder that lacks a copy receives one from the current primary
// (server↔server traffic); holders that are no longer part of the new
// placement drop their copies. Strip migrations overlap.
func (c *Client) Reconfigure(p *sim.Proc, name string, newLay layout.Layout) error {
	m, ok := c.fs.meta[name]
	if !ok {
		return fmt.Errorf("pfs: unknown file %q", name)
	}
	if newLay.Servers() != len(c.fs.servers) {
		return fmt.Errorf("pfs: layout spans %d servers, file system has %d", newLay.Servers(), len(c.fs.servers))
	}
	oldLay := m.Layout
	var sigs []*sim.Signal[error]
	for s := int64(0); s < m.Strips(); s++ {
		s := s
		src := oldLay.Primary(s)
		var targets []int
		for _, holder := range layout.Holders(newLay, s) {
			if !c.fs.servers[holder].Holds(name, s) {
				targets = append(targets, holder)
			}
		}
		if len(targets) == 0 {
			continue
		}
		done := sim.NewSignal[error](c.fs.clu.Eng, fmt.Sprintf("migrate:%s:%d", name, s))
		sigs = append(sigs, done)
		p.Spawn(fmt.Sprintf("pfs-migrate-%s-%d", name, s), func(mp *sim.Proc) {
			done.Fire(c.fs.MigrateStrip(mp, c.nodeID, src, name, s, targets))
		})
	}
	for _, err := range sim.WaitAll(p, sigs) {
		if err != nil {
			return err
		}
	}
	// Retire copies that the new layout does not place.
	for s := int64(0); s < m.Strips(); s++ {
		for _, holder := range layout.Holders(oldLay, s) {
			if !layout.Holds(newLay, s, holder) {
				c.fs.servers[holder].Drop(name, s)
			}
		}
	}
	m.Layout = newLay
	return nil
}
