package pfs

import (
	"errors"

	"github.com/hpcio/das/internal/sim"
)

// Sentinel errors for the RPC and failover paths. Callers match them with
// errors.Is; the concrete errors wrap them with request context.
var (
	// ErrUnexpectedResponse marks a reply whose payload type does not
	// belong to the request — a malformed RPC. It fails the request
	// instead of panicking the engine.
	ErrUnexpectedResponse = errors.New("pfs: unexpected response type")
	// ErrServerDown marks a request aimed at (or issued from) a crashed
	// server.
	ErrServerDown = errors.New("pfs: storage server down")
	// ErrTimeout marks a request that got no response within the retry
	// policy's budget.
	ErrTimeout = errors.New("pfs: request timed out")
	// ErrStripNotHeld marks a read of a strip the addressed server has no
	// copy of.
	ErrStripNotHeld = errors.New("pfs: strip not held")
	// ErrNoLiveCopy marks a read whose strip has no copy on any live
	// server — the point where failover gives up and the request becomes
	// an I/O error.
	ErrNoLiveCopy = errors.New("pfs: no live copy")
)

// errNotHeld classifies server-local lookup misses so the wire protocol
// can tag them (codeNotFound) and clients can fail over instead of
// treating them as fatal.
var errNotHeld = errors.New("not held")

// errCode classifies an errResp so the client can tell transport-ish
// failures (worth failing over) from semantic ones (caller bugs).
type errCode int

const (
	codeInternal   errCode = iota
	codeNotFound           // the server has no copy of the requested strip
	codeBadRequest         // malformed request: failing over cannot help
)

// failoverEligible reports whether a read error may be cured by asking a
// different holder (or the same one after a restart).
func failoverEligible(err error) bool {
	return errors.Is(err, ErrServerDown) ||
		errors.Is(err, ErrTimeout) ||
		errors.Is(err, ErrStripNotHeld)
}

// RetryPolicy bounds how hard the file system tries before surfacing an
// I/O error. It only engages once the cluster's fault layer is active;
// fault-free runs take the zero-overhead direct path.
type RetryPolicy struct {
	// Timeout is the per-attempt response deadline.
	Timeout sim.Time
	// Quantum is how often a waiting request re-checks its target's
	// liveness, so a crash aborts the wait early instead of running out
	// the full timeout.
	Quantum sim.Time
	// Retries is how many times a timed-out request is re-sent.
	Retries int
	// Backoff is the delay before the first re-send, doubling per retry.
	Backoff sim.Time
	// DownRetries and DownBackoff govern the failover loop when no live
	// server holds a strip: the read waits DownBackoff (doubling) and
	// re-scans the holders up to DownRetries times — enough to bridge a
	// planned crash+restart window — before returning ErrNoLiveCopy.
	DownRetries int
	DownBackoff sim.Time
}

// DefaultRetryPolicy returns the policy installed on new file systems.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		Timeout:     250 * sim.Millisecond,
		Quantum:     sim.Millisecond,
		Retries:     2,
		Backoff:     2 * sim.Millisecond,
		DownRetries: 3,
		DownBackoff: 20 * sim.Millisecond,
	}
}
