package pfs

import (
	"errors"

	"github.com/hpcio/das/internal/sim"
	"github.com/hpcio/das/internal/simnet"
)

// This file is the fast-path construction of a PFS request handler: a
// pooled task chain standing in for the per-request child process the
// classic server spawns. The chain pins each step to the exact (at, seq)
// the classic construction would schedule — spawn, disk grant, disk
// completion, response transfer — so both servers simulate identically
// (DESIGN.md §11 traces one read RPC hop by hop).
//
// Only request types whose classic handler is straight-line — validate,
// one disk pass, respond — run as chains: reads always, writes when they
// forward no foreign replicas. Replica-forwarding writes, migrations, and
// unknown requests keep the classic child process, as does everything once
// faults activate; the dispatcher decides per message.

// reqTask chain states, named for what RunTask does when dispatched.
const (
	rsStart       = iota // spawn stand-in: validate and contend for the disk
	rsDiskGranted        // drive held: schedule the service time
	rsDiskDone           // service over: release drive, account, respond
)

type reqTask struct {
	s     *Server
	state int
	msg   simnet.Message

	diskDur  sim.Time
	isRead   bool  // which Finish* accounts the disk pass
	diskSize int64 // bytes through the disk; 0 skips the disk entirely

	payload  any   // prepared response
	respSize int64 // wire size of the response
}

func (x *reqTask) RunTask() {
	switch x.state {
	case rsStart:
		x.begin()
	case rsDiskGranted:
		x.state = rsDiskDone
		x.s.fs.clu.Eng.ScheduleTask(x.diskDur, x)
	case rsDiskDone:
		d := x.s.fs.clu.Disk(x.s.nodeID)
		if x.isRead {
			d.FinishRead(x.diskSize)
		} else {
			d.FinishWrite(x.diskSize)
		}
		x.respond()
	}
}

// begin validates the request and prepares the response, exactly as the
// classic handler does before its first disk sleep, then contends for the
// drive. Requests that touch no disk bytes (validation errors, empty
// ranges) respond directly from this event — matching the classic handler,
// whose zero-size disk calls schedule nothing.
func (x *reqTask) begin() {
	s := x.s
	switch req := x.msg.Payload.(type) {
	case *readReq:
		file, strip, lo, hi := req.File, req.Strip, req.Lo, req.Hi
		s.fs.readReqPut(req)
		data, err := s.peek(file, strip, lo, hi)
		if err != nil {
			x.fail(err)
			return
		}
		x.isRead, x.diskSize = true, int64(len(data))
		r := s.fs.readRespGet()
		r.Data = data
		x.payload, x.respSize = r, headerBytes+int64(len(data))
	case readManyReq:
		data := make([][]byte, len(req.Spans))
		var total int64
		for i, sp := range req.Spans {
			d, err := s.peek(req.File, sp.Strip, sp.Lo, sp.Hi)
			if err != nil {
				x.fail(err)
				return
			}
			data[i] = d
			total += int64(len(d))
		}
		x.isRead, x.diskSize = true, total
		x.payload, x.respSize = readManyResp{Data: data}, headerBytes+total
	case *writeReq:
		file, strip, data := req.File, req.Strip, req.Data
		s.fs.writeReqPut(req)
		if err := s.validateWrite(file, strip, data); err != nil {
			x.fail(err)
			return
		}
		s.storePut(file, strip, data)
		x.isRead, x.diskSize = false, int64(len(data))
		x.payload, x.respSize = ackResp{}, headerBytes
	case writeManyReq:
		total, err := s.validateWriteMany(req.File, req.Strips, req.Data)
		if err != nil {
			x.fail(err)
			return
		}
		for i, strip := range req.Strips {
			s.storePut(req.File, strip, req.Data[i])
		}
		x.isRead, x.diskSize = false, total
		x.payload, x.respSize = ackResp{}, headerBytes
	default:
		// The dispatcher only routes the four types above here.
		panic("pfs: ineligible request on the fast handler")
	}
	if x.diskSize <= 0 {
		x.respond()
		return
	}
	d := s.fs.clu.Disk(s.nodeID)
	if x.isRead {
		x.diskDur = d.ReadTime(x.diskSize)
	} else {
		x.diskDur = d.WriteTime(x.diskSize)
	}
	x.state = rsDiskGranted
	if d.AcquireTask(x) {
		x.RunTask()
	}
}

func (x *reqTask) fail(err error) {
	code := codeInternal
	if errors.Is(err, errNotHeld) {
		code = codeNotFound
	}
	x.payload, x.respSize = errResp{Err: err.Error(), Code: code}, headerBytes
	x.respond()
}

// respond launches the response transfer and pools the chain. RespondTask
// ends in the same event the classic handler's post-Respond return would.
func (x *reqTask) respond() {
	s, msg, payload, size := x.s, x.msg, x.payload, x.respSize
	s.taskPut(x)
	s.fs.clu.Net.RespondTask(msg, payload, size, s.fs.clu.ClassBetween(s.nodeID, msg.From))
}

// dispatch is the port's inline message handler: the fast-path stand-in
// for the classic service loop's body. Per message it either schedules a
// reqTask chain or spawns the classic handler child — both at the (at, seq)
// the classic loop's Spawn would allocate.
func (s *Server) dispatch(msg simnet.Message) {
	s.reqs++
	if s.fs.clu.Net.FastOK() && s.fastEligible(msg.Payload) {
		x := s.taskGet()
		x.msg = msg
		x.state = rsStart
		s.fs.clu.Eng.ScheduleTask(0, x)
		return
	}
	s.fs.clu.Eng.Spawn(s.handlerName(), func(h *sim.Proc) {
		s.handle(h, msg)
	})
}

// fastEligible reports whether a request's classic handler is
// straight-line (validate → one disk pass → respond) and can therefore run
// as a task chain.
func (s *Server) fastEligible(payload any) bool {
	switch req := payload.(type) {
	case *readReq, readManyReq:
		return true
	case *writeReq:
		return !req.Forward || s.replicasAllLocal(req.File, req.Strip)
	case writeManyReq:
		if !req.Forward {
			return true
		}
		for _, strip := range req.Strips {
			if !s.replicasAllLocal(req.File, strip) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// replicasAllLocal reports whether a strip's replica set names no server
// but this one, i.e. a Forward write would push nothing. Unknown files
// count as local: their writes fail validation before forwarding.
func (s *Server) replicasAllLocal(file string, strip int64) bool {
	m, ok := s.fs.meta[file]
	if !ok {
		return true
	}
	for _, rep := range m.Layout.Replicas(strip) {
		if rep != s.srv {
			return false
		}
	}
	return true
}

func (s *Server) taskGet() *reqTask {
	if k := len(s.taskFree); k > 0 {
		x := s.taskFree[k-1]
		s.taskFree[k-1] = nil
		s.taskFree = s.taskFree[:k-1]
		return x
	}
	return &reqTask{s: s}
}

// taskPut zeroes the chain (dropping payload references) and pools it.
func (s *Server) taskPut(x *reqTask) {
	*x = reqTask{s: s}
	s.taskFree = append(s.taskFree, x)
}
