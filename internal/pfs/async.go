package pfs

import (
	"fmt"

	"github.com/hpcio/das/internal/simnet"
)

// Task-based client calls: the caller-side counterpart of the fast
// request handler. A process client pays a goroutine park per RPC even
// under fast dispatch — the one event a fused Call leaves as a process
// wake-up. ReadStripFromTask and WriteStripToTask move that last event to
// a task too: the continuation runs inline when the response lands, in
// exactly the (at, seq) the process caller's wake-up would occupy, so a
// task-based client simulates byte-identically to a process client while
// touching no goroutine at all.
//
// These are fast-path-only, fault-free primitives: no retry, no failover,
// no timeout. Callers check AsyncOK first and fall back to the process
// APIs when it reports false (classic dispatch, or faults have activated).

// AsyncOK reports whether task-based client calls are available.
func (fs *FileSystem) AsyncOK() bool {
	return fs.clu.Net.FastOK() && !fs.clu.Faults.Active()
}

// readCall is one in-flight ReadStripFromTask; pooled on the filesystem.
type readCall struct {
	fs    *FileSystem
	file  string
	strip int64
	srv   int
	cont  func(data []byte, err error)
}

func (rc *readCall) OnResponse(resp simnet.Message) {
	fs, cont := rc.fs, rc.cont
	file, strip, srv := rc.file, rc.strip, rc.srv
	rc.file, rc.cont = "", nil
	fs.readCallFree = append(fs.readCallFree, rc)
	switch r := resp.Payload.(type) {
	case *readResp:
		data := r.Data
		r.Data = nil
		fs.readRespPut(r)
		cont(data, nil)
	case errResp:
		cont(nil, respError(r, fmt.Sprintf("pfs: read %s strip %d from server %d", file, strip, srv)))
	default:
		cont(nil, unexpectedResponse(resp.Payload, fmt.Sprintf("pfs: read %s strip %d from server %d", file, strip, srv)))
	}
}

// ReadStripFromTask is the task-based ReadStripFrom: it issues the read
// RPC as a transfer chain and runs cont inline when the response lands.
// The caller should pass a long-lived cont (a stored method value), not a
// fresh closure per call, to keep the per-RPC path allocation-free.
func (fs *FileSystem) ReadStripFromTask(fromID, srv int, file string, strip, lo, hi int64, cont func(data []byte, err error)) {
	rc := fs.readCallGet()
	rc.file, rc.strip, rc.srv, rc.cont = file, strip, srv, cont
	req := fs.readReqGet()
	*req = readReq{File: file, Strip: strip, Lo: lo, Hi: hi}
	fs.callTask(fromID, srv, req, headerBytes, rc)
}

// writeCall is one in-flight WriteStripToTask; pooled on the filesystem.
type writeCall struct {
	fs    *FileSystem
	file  string
	strip int64
	srv   int
	cont  func(err error)
}

func (wc *writeCall) OnResponse(resp simnet.Message) {
	fs, cont := wc.fs, wc.cont
	file, strip, srv := wc.file, wc.strip, wc.srv
	wc.file, wc.cont = "", nil
	fs.writeCallFree = append(fs.writeCallFree, wc)
	switch r := resp.Payload.(type) {
	case ackResp:
		cont(nil)
	case errResp:
		cont(respError(r, fmt.Sprintf("pfs: write %s strip %d to server %d", file, strip, srv)))
	default:
		cont(unexpectedResponse(resp.Payload, fmt.Sprintf("pfs: write %s strip %d to server %d", file, strip, srv)))
	}
}

// WriteStripToTask is the task-based WriteStripTo: it issues the write
// RPC as a transfer chain and runs cont inline when the ack lands. Same
// continuation discipline as ReadStripFromTask.
func (fs *FileSystem) WriteStripToTask(fromID, srv int, file string, strip int64, data []byte, forward bool, cont func(err error)) {
	wc := fs.writeCallGet()
	wc.file, wc.strip, wc.srv, wc.cont = file, strip, srv, cont
	req := fs.writeReqGet()
	*req = writeReq{File: file, Strip: strip, Data: data, Forward: forward}
	fs.callTask(fromID, srv, req, headerBytes+int64(len(data)), wc)
}

// callTask builds the request message exactly as the process-based call
// does and hands it to the network's task-based fused call.
func (fs *FileSystem) callTask(fromID, srv int, payload any, size int64, r simnet.Responder) {
	toID := fs.clu.StorageID(srv)
	fs.clu.Net.CallTask(simnet.Message{
		From:    fromID,
		To:      toID,
		Port:    Port,
		Size:    size,
		Class:   fs.clu.ClassBetween(fromID, toID),
		Payload: payload,
	}, r)
}

func (fs *FileSystem) readCallGet() *readCall {
	if k := len(fs.readCallFree); k > 0 {
		rc := fs.readCallFree[k-1]
		fs.readCallFree[k-1] = nil
		fs.readCallFree = fs.readCallFree[:k-1]
		return rc
	}
	return &readCall{fs: fs}
}

func (fs *FileSystem) readReqGet() *readReq {
	if k := len(fs.readReqFree); k > 0 {
		r := fs.readReqFree[k-1]
		fs.readReqFree[k-1] = nil
		fs.readReqFree = fs.readReqFree[:k-1]
		return r
	}
	return new(readReq)
}

func (fs *FileSystem) readReqPut(r *readReq) {
	*r = readReq{}
	fs.readReqFree = append(fs.readReqFree, r)
}

func (fs *FileSystem) writeReqGet() *writeReq {
	if k := len(fs.writeReqFree); k > 0 {
		r := fs.writeReqFree[k-1]
		fs.writeReqFree[k-1] = nil
		fs.writeReqFree = fs.writeReqFree[:k-1]
		return r
	}
	return new(writeReq)
}

func (fs *FileSystem) writeReqPut(r *writeReq) {
	*r = writeReq{}
	fs.writeReqFree = append(fs.writeReqFree, r)
}

func (fs *FileSystem) readRespGet() *readResp {
	if k := len(fs.readRespFree); k > 0 {
		r := fs.readRespFree[k-1]
		fs.readRespFree[k-1] = nil
		fs.readRespFree = fs.readRespFree[:k-1]
		return r
	}
	return new(readResp)
}

func (fs *FileSystem) readRespPut(r *readResp) {
	r.Data = nil
	fs.readRespFree = append(fs.readRespFree, r)
}

func (fs *FileSystem) writeCallGet() *writeCall {
	if k := len(fs.writeCallFree); k > 0 {
		wc := fs.writeCallFree[k-1]
		fs.writeCallFree[k-1] = nil
		fs.writeCallFree = fs.writeCallFree[:k-1]
		return wc
	}
	return &writeCall{fs: fs}
}
