package pfs

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/hpcio/das/internal/cluster"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/sim"
)

// TestPartialWriteReadModifyWrite covers the unaligned write path.
func TestPartialWriteReadModifyWrite(t *testing.T) {
	clu, fs := testFS(t)
	data := pattern(4 * 64)
	if _, err := fs.Create("f", 4*64, layout.NewGroupedReplicated(4, 2, 1), CreateOptions{StripSize: 64}); err != nil {
		t.Fatal(err)
	}
	run(t, clu, func(p *sim.Proc) {
		c := fs.NewClient(clu.ComputeID(0))
		if err := c.WriteAll(p, "f", data); err != nil {
			t.Fatal(err)
		}
		// Overwrite an unaligned range spanning three strips.
		patch := bytes.Repeat([]byte{0xAB}, 140)
		if err := c.Write(p, "f", 30, patch); err != nil {
			t.Fatal(err)
		}
		copy(data[30:], patch)
		got, err := c.ReadAll(p, "f")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Error("partial write corrupted file")
		}
		// Replicas must have been refreshed too: read the replica copy of
		// a touched boundary strip directly.
		m, _ := fs.Meta("f")
		for s := int64(0); s < m.Strips(); s++ {
			for _, holder := range layout.Holders(m.Layout, s) {
				lo, hi := m.StripBounds(s)
				copyData, err := fs.Server(holder).LocalRead(p, "f", s, 0, 0)
				if err != nil {
					t.Fatalf("holder %d strip %d: %v", holder, s, err)
				}
				if !bytes.Equal(copyData, data[lo:hi]) {
					t.Errorf("holder %d has stale strip %d", holder, s)
				}
			}
		}
		// Bounds checks.
		if err := c.Write(p, "f", -1, patch); err == nil {
			t.Error("negative offset accepted")
		}
		if err := c.Write(p, "f", 4*64-10, patch); err == nil {
			t.Error("overflowing write accepted")
		}
		if err := c.Write(p, "f", 10, nil); err != nil {
			t.Errorf("empty write: %v", err)
		}
	})
}

// TestModelBasedOperations drives the PFS with random operation sequences
// and checks every read against a flat byte-slice reference model. The
// file is also migrated between layouts mid-sequence: contents must be
// invariant under reconfiguration.
func TestModelBasedOperations(t *testing.T) {
	type op struct {
		Kind uint8  // 0 = write, 1 = read, 2 = reconfigure
		Off  uint16 // scaled into range
		Len  uint8
		Fill byte
	}
	const fileSize = 16 * 64
	layouts := []layout.Layout{
		layout.NewRoundRobin(4),
		layout.NewGrouped(4, 2),
		layout.NewGroupedReplicated(4, 4, 1),
		layout.NewGroupedReplicated(4, 2, 2),
	}
	prop := func(ops []op) bool {
		if len(ops) > 24 {
			ops = ops[:24]
		}
		cfg := cluster.Default()
		cfg.ComputeNodes, cfg.StorageNodes = 2, 4
		clu, err := cluster.New(cfg)
		if err != nil {
			return false
		}
		fs := New(clu)
		if _, err := fs.Create("f", fileSize, layouts[0], CreateOptions{StripSize: 64}); err != nil {
			return false
		}
		model := make([]byte, fileSize)
		okAll := true
		clu.Eng.Spawn("driver", func(p *sim.Proc) {
			c := fs.NewClient(clu.ComputeID(0))
			if err := c.WriteAll(p, "f", model); err != nil {
				okAll = false
				return
			}
			layoutIdx := 0
			for i, o := range ops {
				off := int64(o.Off) % fileSize
				n := int64(o.Len)
				if off+n > fileSize {
					n = fileSize - off
				}
				switch o.Kind % 3 {
				case 0:
					buf := bytes.Repeat([]byte{o.Fill}, int(n))
					if err := c.Write(p, "f", off, buf); err != nil {
						okAll = false
						return
					}
					copy(model[off:], buf)
				case 1:
					got, err := c.Read(p, "f", off, n)
					if err != nil || !bytes.Equal(got, model[off:off+n]) {
						okAll = false
						return
					}
				case 2:
					layoutIdx = (layoutIdx + 1 + i) % len(layouts)
					if err := c.Reconfigure(p, "f", layouts[layoutIdx]); err != nil {
						okAll = false
						return
					}
				}
			}
			got, err := c.ReadAll(p, "f")
			if err != nil || !bytes.Equal(got, model) {
				okAll = false
			}
		})
		if err := clu.Eng.Run(); err != nil {
			return false
		}
		clu.Eng.Shutdown()
		return okAll
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestReconfigureCycleReturnsToStart migrates a file through every layout
// and back, verifying placement converges to exactly the final layout's
// holder sets (no stale copies accumulate).
func TestReconfigureCycleReturnsToStart(t *testing.T) {
	clu, fs := testFS(t)
	data := pattern(16 * 64)
	start := layout.NewRoundRobin(4)
	if _, err := fs.Create("f", 16*64, start, CreateOptions{StripSize: 64}); err != nil {
		t.Fatal(err)
	}
	cycle := []layout.Layout{
		layout.NewGroupedReplicated(4, 4, 1),
		layout.NewGrouped(4, 2),
		layout.NewGroupedReplicated(4, 2, 2),
		start,
	}
	run(t, clu, func(p *sim.Proc) {
		c := fs.NewClient(clu.ComputeID(0))
		if err := c.WriteAll(p, "f", data); err != nil {
			t.Fatal(err)
		}
		for _, lay := range cycle {
			if err := c.Reconfigure(p, "f", lay); err != nil {
				t.Fatalf("reconfigure to %s: %v", lay.Name(), err)
			}
		}
		got, err := c.ReadAll(p, "f")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Error("content changed over reconfiguration cycle")
		}
	})
	for s := int64(0); s < 16; s++ {
		for srv := 0; srv < 4; srv++ {
			want := layout.Holds(start, s, srv)
			if got := fs.Server(srv).Holds("f", s); got != want {
				t.Errorf("strip %d server %d: holds=%v want=%v", s, srv, got, want)
			}
		}
	}
	var stored int64
	for srv := 0; srv < 4; srv++ {
		stored += fs.Server(srv).StoredBytes()
	}
	if stored != 16*64 {
		t.Errorf("stored %d bytes after cycle, want exactly the file size", stored)
	}
}
