// Package pfs implements the striped parallel file system substrate the
// DAS architecture runs on: a PVFS2-like system with a metadata service,
// one data server process per storage node, 64 KiB default strips, and
// pluggable data distributions (layout.Layout). Unlike stock PVFS2, the
// placement policy is per-file and replica-aware, and a file can be
// migrated between layouts in place — the two extensions §III-A of the
// paper relies on ("Parallel file systems such as PVFS2 provide the
// required APIs").
package pfs

import (
	"errors"
	"fmt"

	"github.com/hpcio/das/internal/cluster"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/sim"
	"github.com/hpcio/das/internal/simnet"
)

// DefaultStripSize is the PVFS2 default the paper quotes (§III-C).
const DefaultStripSize = 64 * 1024

// Port is the mailbox name data servers listen on.
const Port = "pfs"

// headerBytes approximates the wire overhead of one request or response.
const headerBytes = 128

// FileMeta is the metadata service's record for one file.
type FileMeta struct {
	Name      string
	Size      int64
	StripSize int64
	Layout    layout.Layout
	// Raster annotations consumed by the active storage layer; zero for
	// plain byte files.
	Width, Height int
	ElemSize      int64
}

// Strips returns the number of strips the file occupies.
func (m *FileMeta) Strips() int64 {
	return (m.Size + m.StripSize - 1) / m.StripSize
}

// StripBounds returns the byte range [lo, hi) of strip s.
func (m *FileMeta) StripBounds(s int64) (lo, hi int64) {
	lo = s * m.StripSize
	hi = lo + m.StripSize
	if hi > m.Size {
		hi = m.Size
	}
	return lo, hi
}

// Locator builds the element locator for a raster file.
func (m *FileMeta) Locator() layout.Locator {
	elem := m.ElemSize
	if elem == 0 {
		elem = 1
	}
	return layout.NewLocator(elem, m.StripSize, m.Layout)
}

// FileSystem is the deployed parallel file system: metadata plus one
// running server per storage node.
type FileSystem struct {
	clu     *cluster.Cluster
	servers []*Server
	meta    map[string]*FileMeta
	// Retry bounds timeouts, re-sends, and failover waiting once the
	// cluster's fault layer is active; healthy runs never consult it.
	Retry RetryPolicy
	// invalidator, when set, is told about every strip mutation so stale
	// halo-cache copies die with the data they shadow. Declared as a
	// narrow interface so pfs does not depend on the cache package.
	invalidator StripInvalidator
	// latObs, when set, receives per-RPC latency samples from the client
	// call paths, tagged migration/non-migration (see LatencyObserver).
	latObs LatencyObserver
	// readCallFree and writeCallFree recycle task-based client call state
	// (async.go).
	readCallFree  []*readCall
	writeCallFree []*writeCall

	// inflight counts, per server, the client RPCs currently outstanding
	// against it — queued at its NIC or disk, or in service. It is the
	// queue-depth signal the multi-tenant admission control sheds on: the
	// offered load a new request would join. Counters move on the engine
	// goroutine only (one process runs at a time), so plain ints suffice.
	inflight []int
	// queueObs, when set, receives one (server, depth) sample per client
	// RPC as it is issued, with the depth including the new request —
	// queue length as seen by arrivals.
	queueObs func(srv, depth int)

	// readReqFree and readRespFree recycle the read protocol payloads.
	// Boxing a readReq or readResp value into a message's Payload field
	// allocates on every RPC — the dominant allocation at scale — so the
	// wire types travel as pooled pointers instead. The producer fills
	// one, the consumer copies the fields out and re-pools it; payloads
	// dropped on fault paths fall to the GC, which only costs a pool miss.
	readReqFree  []*readReq
	writeReqFree []*writeReq
	readRespFree []*readResp
}

// StripInvalidator receives strip-mutation notifications from the write
// path. The halo-strip cache manager implements it; the hook fires after
// the store accepts the new bytes, before the write completes.
type StripInvalidator interface {
	InvalidateStrip(file string, strip int64)
	InvalidateFile(file string)
}

// SetInvalidator wires a strip-mutation listener (nil disables).
func (fs *FileSystem) SetInvalidator(inv StripInvalidator) { fs.invalidator = inv }

// LatencyObserver receives one sample per successful client-side data RPC:
// the server that served it, whether the RPC moved restripe-migration
// traffic, and its observed DES latency. The unified p99 controller
// implements it; migration-tagged samples must never enter tuning
// decisions — background copies inflating the latency signal is exactly
// the feedback loop the controller exists to break. Declared as a narrow
// interface, like StripInvalidator, so pfs does not depend on the control
// package.
//
// The task-based fast-path calls (async.go) are not sampled: they are
// used only by the scale experiment, which runs without the controller.
type LatencyObserver interface {
	ObserveRPCLatency(srv int, migration bool, lat sim.Time)
}

// SetLatencyObserver wires an RPC-latency listener (nil disables).
func (fs *FileSystem) SetLatencyObserver(o LatencyObserver) { fs.latObs = o }

// QueueDepth returns the number of client RPCs currently outstanding
// against server srv — the deterministic saturation signal admission
// control consults before committing a tenant's operation to a server.
// The task-based fast-path calls (async.go) are not counted, matching
// the latency observer's scope.
func (fs *FileSystem) QueueDepth(srv int) int {
	if srv < 0 || srv >= len(fs.inflight) {
		return 0
	}
	return fs.inflight[srv]
}

// SetQueueObserver wires a per-RPC queue-depth listener (nil disables):
// it fires once per client RPC at issue time with the post-arrival depth,
// so a sketch over the samples is the queue-length distribution seen by
// arriving requests.
func (fs *FileSystem) SetQueueObserver(fn func(srv, depth int)) { fs.queueObs = fn }

// New deploys the file system on a cluster: one data server process per
// storage node, started immediately.
func New(clu *cluster.Cluster) *FileSystem {
	fs := &FileSystem{
		clu:      clu,
		meta:     make(map[string]*FileMeta),
		Retry:    DefaultRetryPolicy(),
		inflight: make([]int, clu.Cfg.StorageNodes),
	}
	for s := 0; s < clu.Cfg.StorageNodes; s++ {
		srv := newServer(fs, s)
		fs.servers = append(fs.servers, srv)
		srv.start()
	}
	return fs
}

// Cluster returns the platform the file system runs on.
func (fs *FileSystem) Cluster() *cluster.Cluster { return fs.clu }

// Servers returns the number of data servers (the D of the layout math).
func (fs *FileSystem) Servers() int { return len(fs.servers) }

// Server returns the data server with dense index s.
func (fs *FileSystem) Server(s int) *Server { return fs.servers[s] }

// CreateOptions carries optional raster annotations for Create.
type CreateOptions struct {
	StripSize     int64 // 0 → DefaultStripSize
	Width, Height int
	ElemSize      int64
}

// Create registers a file with a layout. Metadata operations are modeled
// as free: the paper's traffic argument is entirely about data strips, and
// metadata messages are orders of magnitude smaller.
func (fs *FileSystem) Create(name string, size int64, lay layout.Layout, opts CreateOptions) (*FileMeta, error) {
	if name == "" {
		return nil, fmt.Errorf("pfs: empty file name")
	}
	if size <= 0 {
		return nil, fmt.Errorf("pfs: file %q size %d", name, size)
	}
	if _, exists := fs.meta[name]; exists {
		return nil, fmt.Errorf("pfs: file %q already exists", name)
	}
	if lay.Servers() != len(fs.servers) {
		return nil, fmt.Errorf("pfs: layout spans %d servers, file system has %d", lay.Servers(), len(fs.servers))
	}
	stripSize := opts.StripSize
	if stripSize == 0 {
		stripSize = DefaultStripSize
	}
	if stripSize <= 0 {
		return nil, fmt.Errorf("pfs: strip size %d", stripSize)
	}
	m := &FileMeta{
		Name:      name,
		Size:      size,
		StripSize: stripSize,
		Layout:    lay,
		Width:     opts.Width,
		Height:    opts.Height,
		ElemSize:  opts.ElemSize,
	}
	fs.meta[name] = m
	return m, nil
}

// Meta looks a file up in the metadata service.
func (fs *FileSystem) Meta(name string) (*FileMeta, bool) {
	m, ok := fs.meta[name]
	return m, ok
}

// Delete drops a file's metadata and its strips on every server. Like
// Create, it is a metadata-scale operation modeled as free.
func (fs *FileSystem) Delete(name string) {
	delete(fs.meta, name)
	for _, s := range fs.servers {
		delete(s.store, name)
	}
	if fs.invalidator != nil {
		fs.invalidator.InvalidateFile(name)
	}
}

// SetLayout replaces a file's layout record. Callers that move the actual
// strips use Client.Reconfigure; this is the bare metadata update.
func (fs *FileSystem) SetLayout(name string, lay layout.Layout) error {
	m, ok := fs.meta[name]
	if !ok {
		return fmt.Errorf("pfs: unknown file %q", name)
	}
	if lay.Servers() != len(fs.servers) {
		return fmt.Errorf("pfs: layout spans %d servers, file system has %d", lay.Servers(), len(fs.servers))
	}
	m.Layout = lay
	return nil
}

// call sends a request to server srv on behalf of a process running on
// node fromID and returns the response payload. On a healthy cluster it
// is a plain blocking RPC. Once the fault layer is active it fails fast
// against crashed endpoints, bounds each attempt by the retry policy's
// timeout (polling target liveness every quantum), and re-sends with
// doubling backoff — returning ErrServerDown or ErrTimeout when the
// budget runs out.
func (fs *FileSystem) call(p *sim.Proc, fromID, srv int, payload any, size int64) (any, error) {
	toID := fs.clu.StorageID(srv)
	msg := simnet.Message{
		From:    fromID,
		To:      toID,
		Port:    Port,
		Size:    size,
		Class:   fs.clu.ClassBetween(fromID, toID),
		Payload: payload,
	}
	// The request joins srv's queue for its whole lifetime — queued,
	// in service, or awaiting the response — so the counter is the
	// offered-load depth admission control and the tenants engine sample.
	fs.inflight[srv]++
	if fs.queueObs != nil {
		fs.queueObs(srv, fs.inflight[srv])
	}
	defer func() { fs.inflight[srv]-- }()
	f := fs.clu.Faults
	if !f.Active() {
		return fs.clu.Net.Call(p, msg).Payload, nil
	}
	if f.Down(fromID) {
		// A crashed node's frozen processes cannot issue RPCs; their
		// in-flight work fails instantly instead of hanging the handler.
		return nil, fmt.Errorf("pfs: request from node %d: %w", fromID, ErrServerDown)
	}
	pol := fs.Retry
	backoff := pol.Backoff
	for attempt := 0; ; attempt++ {
		if f.Down(toID) {
			return nil, fmt.Errorf("pfs: server %d: %w", srv, ErrServerDown)
		}
		inc := f.Incarnation(toID)
		crashed := func() bool { return f.Down(toID) || f.Incarnation(toID) != inc }
		resp, ok := fs.clu.Net.CallCancelable(p, msg, pol.Quantum, pol.Timeout, crashed)
		if ok {
			return resp.Payload, nil
		}
		if !crashed() {
			fs.clu.Recovery.AddTimeout()
		}
		// A crash+restart while waiting means the request (or its
		// response) died with the old incarnation; re-send like a timeout.
		if attempt >= pol.Retries {
			return nil, fmt.Errorf("pfs: server %d: no response after %d attempts: %w", srv, attempt+1, ErrTimeout)
		}
		fs.clu.Recovery.AddRetry()
		p.Sleep(backoff)
		backoff *= 2
	}
}

// callWrite issues a write-path request. Writes never fail over — a
// strip's primary is its single write point — but they do wait out the
// retry policy's down-window for a crashed target to restart before
// surfacing ErrServerDown, so a planned crash+restart bridges instead of
// killing an otherwise healthy run. A permanently dead target still fails.
func (fs *FileSystem) callWrite(p *sim.Proc, fromID, srv int, payload any, size int64) (any, error) {
	f := fs.clu.Faults
	if !f.Active() {
		return fs.call(p, fromID, srv, payload, size)
	}
	pol := fs.Retry
	backoff := pol.DownBackoff
	for round := 0; ; round++ {
		resp, err := fs.call(p, fromID, srv, payload, size)
		if err == nil || !errors.Is(err, ErrServerDown) || f.Down(fromID) {
			return resp, err
		}
		if round >= pol.DownRetries {
			return nil, err
		}
		fs.clu.Recovery.AddRetry()
		p.Sleep(backoff)
		backoff *= 2
	}
}

// respError converts an errResp into a typed client-side error.
func respError(r errResp, context string) error {
	if r.Code == codeNotFound {
		return fmt.Errorf("%s: %s: %w", context, r.Err, ErrStripNotHeld)
	}
	return fmt.Errorf("%s: %s", context, r.Err)
}

// unexpectedResponse reports a reply payload of the wrong type. It is an
// error, never a panic: a malformed reply fails one request, not the
// engine.
func unexpectedResponse(resp any, context string) error {
	return fmt.Errorf("%s: got %T: %w", context, resp, ErrUnexpectedResponse)
}

// ReadStripFrom reads bytes [lo, hi) of strip (relative to the strip
// start) from server srv, as a process on node fromID. It is the
// transport used by clients and by active storage servers fetching
// dependent strips from their peers.
//
// When the addressed server is down, times out, or lost its copy, the
// read fails over to the strip's other holders under the file's layout,
// and — per the retry policy — waits for a possible restart before giving
// up with ErrNoLiveCopy.
func (fs *FileSystem) ReadStripFrom(p *sim.Proc, fromID, srv int, file string, strip, lo, hi int64) ([]byte, error) {
	data, err := fs.readStripOnce(p, fromID, srv, file, strip, lo, hi)
	if err == nil || !failoverEligible(err) {
		return data, err
	}
	return fs.readStripFailover(p, fromID, srv, file, strip, lo, hi, err)
}

// readStripOnce is one read attempt against one server, no failover.
func (fs *FileSystem) readStripOnce(p *sim.Proc, fromID, srv int, file string, strip, lo, hi int64) ([]byte, error) {
	// Pooled request pointers are single-consumption: under faults,
	// fs.call may resend the same message after the server has already
	// consumed and re-pooled the payload, so fault-time calls box a value
	// instead. Fault activation cannot change between here and the call
	// entry — no event dispatches on this straight-line path.
	var payload any
	if fs.clu.Faults.Active() {
		payload = readReq{File: file, Strip: strip, Lo: lo, Hi: hi}
	} else {
		req := fs.readReqGet()
		*req = readReq{File: file, Strip: strip, Lo: lo, Hi: hi}
		payload = req
	}
	var start sim.Time
	if fs.latObs != nil {
		start = p.Now()
	}
	resp, err := fs.call(p, fromID, srv, payload, headerBytes)
	if err != nil {
		return nil, err
	}
	switch r := resp.(type) {
	case *readResp:
		data := r.Data
		r.Data = nil
		fs.readRespPut(r)
		if fs.latObs != nil {
			fs.latObs.ObserveRPCLatency(srv, false, p.Now()-start)
		}
		return data, nil
	case errResp:
		return nil, respError(r, fmt.Sprintf("pfs: read %s strip %d from server %d", file, strip, srv))
	default:
		return nil, unexpectedResponse(resp, fmt.Sprintf("pfs: read %s strip %d from server %d", file, strip, srv))
	}
}

// readStripFailover scans the strip's holders for a live copy after the
// preferred server failed, retrying with backoff to bridge a planned
// restart before surfacing ErrNoLiveCopy.
func (fs *FileSystem) readStripFailover(p *sim.Proc, fromID, preferred int, file string, strip, lo, hi int64, cause error) ([]byte, error) {
	m, ok := fs.meta[file]
	if !ok {
		return nil, cause
	}
	pol := fs.Retry
	backoff := pol.DownBackoff
	for round := 0; ; round++ {
		for _, holder := range layout.Holders(m.Layout, strip) {
			if round == 0 && holder == preferred {
				continue // just failed above
			}
			if fs.clu.ServerDown(holder) {
				continue
			}
			data, err := fs.readStripOnce(p, fromID, holder, file, strip, lo, hi)
			if err == nil {
				if holder != preferred {
					fs.clu.Recovery.AddFailoverRead()
				}
				return data, nil
			}
			if !failoverEligible(err) {
				return nil, err
			}
			cause = err
		}
		if round >= pol.DownRetries {
			return nil, fmt.Errorf("pfs: read %s strip %d: %w (last: %v)", file, strip, ErrNoLiveCopy, cause)
		}
		fs.clu.Recovery.AddRetry()
		p.Sleep(backoff)
		backoff *= 2
	}
}

// WriteStripTo writes a full or partial strip to server srv. When forward
// is set, the receiving server forwards copies to the strip's replica
// holders (server↔server traffic), implementing the replica-maintaining
// write path of the improved distribution. Writes do not fail over: a
// strip's primary is its write point, and a primary that never comes back
// is an error the caller must see — though a crashed one is waited on for
// the retry policy's down-window first (see callWrite).
func (fs *FileSystem) WriteStripTo(p *sim.Proc, fromID, srv int, file string, strip int64, data []byte, forward bool) error {
	return fs.writeStrip(p, fromID, srv, file, strip, data, forward, false)
}

// writeStrip is WriteStripTo with the latency sample's migration tag
// explicit: restripe copy pushes (server.migrate) flow through here with
// migration set so the controller can exclude them from tuning.
func (fs *FileSystem) writeStrip(p *sim.Proc, fromID, srv int, file string, strip int64, data []byte, forward, migration bool) error {
	// Same single-consumption rule as the read path: pooled pointer when
	// fault-free, boxed value when a retry could resend it.
	var payload any
	if fs.clu.Faults.Active() {
		payload = writeReq{File: file, Strip: strip, Data: data, Forward: forward}
	} else {
		req := fs.writeReqGet()
		*req = writeReq{File: file, Strip: strip, Data: data, Forward: forward}
		payload = req
	}
	var start sim.Time
	if fs.latObs != nil {
		start = p.Now()
	}
	resp, err := fs.callWrite(p, fromID, srv, payload,
		headerBytes+int64(len(data)))
	if err != nil {
		return err
	}
	switch r := resp.(type) {
	case ackResp:
		if fs.latObs != nil {
			fs.latObs.ObserveRPCLatency(srv, migration, p.Now()-start)
		}
		return nil
	case errResp:
		return respError(r, fmt.Sprintf("pfs: write %s strip %d to server %d", file, strip, srv))
	default:
		return unexpectedResponse(resp, fmt.Sprintf("pfs: write %s strip %d to server %d", file, strip, srv))
	}
}

// ReadSpansFrom fetches several spans of one file from server srv in a
// single request (one disk pass, one response message). If the batch
// fails for a failover-eligible reason, each span is re-fetched
// individually through ReadStripFrom's replica failover.
func (fs *FileSystem) ReadSpansFrom(p *sim.Proc, fromID, srv int, file string, spans []Span) ([][]byte, error) {
	var start sim.Time
	if fs.latObs != nil {
		start = p.Now()
	}
	resp, err := fs.call(p, fromID, srv, readManyReq{File: file, Spans: spans}, headerBytes)
	if err == nil {
		switch r := resp.(type) {
		case readManyResp:
			if fs.latObs != nil {
				fs.latObs.ObserveRPCLatency(srv, false, p.Now()-start)
			}
			return r.Data, nil
		case errResp:
			err = respError(r, fmt.Sprintf("pfs: readMany %s from server %d", file, srv))
		default:
			err = unexpectedResponse(resp, fmt.Sprintf("pfs: readMany %s from server %d", file, srv))
		}
	}
	if !failoverEligible(err) {
		return nil, err
	}
	// Degraded path: the batch's server is gone; recover span by span from
	// whatever live holders exist. Slower (one request per span), but this
	// only runs once a fault has already disrupted the batch.
	out := make([][]byte, len(spans))
	for i, sp := range spans {
		data, rerr := fs.ReadStripFrom(p, fromID, srv, file, sp.Strip, sp.Lo, sp.Hi)
		if rerr != nil {
			for j := 0; j < i; j++ {
				ReleaseBuffer(out[j])
			}
			return nil, rerr
		}
		out[i] = data
	}
	return out, nil
}

// WriteStripsTo writes several whole strips to server srv in a single
// request. With forward set, the server pushes replica copies per strip.
func (fs *FileSystem) WriteStripsTo(p *sim.Proc, fromID, srv int, file string, strips []int64, data [][]byte, forward bool) error {
	var size int64 = headerBytes
	for _, d := range data {
		size += int64(len(d))
	}
	var start sim.Time
	if fs.latObs != nil {
		start = p.Now()
	}
	resp, err := fs.callWrite(p, fromID, srv, writeManyReq{File: file, Strips: strips, Data: data, Forward: forward}, size)
	if err != nil {
		return err
	}
	switch r := resp.(type) {
	case ackResp:
		if fs.latObs != nil {
			fs.latObs.ObserveRPCLatency(srv, false, p.Now()-start)
		}
		return nil
	case errResp:
		return respError(r, fmt.Sprintf("pfs: writeMany %s to server %d", file, srv))
	default:
		return unexpectedResponse(resp, fmt.Sprintf("pfs: writeMany %s to server %d", file, srv))
	}
}

// MigrateStrip asks server srv (a current holder) to push its copy of a
// strip to the given target servers. The control RPC and the copy pushes
// it triggers are migration-tagged for the latency observer: they are
// background traffic, not tuning signal.
func (fs *FileSystem) MigrateStrip(p *sim.Proc, fromID, srv int, file string, strip int64, targets []int) error {
	var start sim.Time
	if fs.latObs != nil {
		start = p.Now()
	}
	resp, err := fs.callWrite(p, fromID, srv, migrateReq{File: file, Strip: strip, Targets: targets}, headerBytes)
	if err != nil {
		return err
	}
	switch r := resp.(type) {
	case ackResp:
		if fs.latObs != nil {
			fs.latObs.ObserveRPCLatency(srv, true, p.Now()-start)
		}
		return nil
	case errResp:
		return respError(r, fmt.Sprintf("pfs: migrate %s strip %d via server %d", file, strip, srv))
	default:
		return unexpectedResponse(resp, fmt.Sprintf("pfs: migrate %s strip %d via server %d", file, strip, srv))
	}
}
