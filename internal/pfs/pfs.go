// Package pfs implements the striped parallel file system substrate the
// DAS architecture runs on: a PVFS2-like system with a metadata service,
// one data server process per storage node, 64 KiB default strips, and
// pluggable data distributions (layout.Layout). Unlike stock PVFS2, the
// placement policy is per-file and replica-aware, and a file can be
// migrated between layouts in place — the two extensions §III-A of the
// paper relies on ("Parallel file systems such as PVFS2 provide the
// required APIs").
package pfs

import (
	"fmt"

	"github.com/hpcio/das/internal/cluster"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/sim"
	"github.com/hpcio/das/internal/simnet"
)

// DefaultStripSize is the PVFS2 default the paper quotes (§III-C).
const DefaultStripSize = 64 * 1024

// Port is the mailbox name data servers listen on.
const Port = "pfs"

// headerBytes approximates the wire overhead of one request or response.
const headerBytes = 128

// FileMeta is the metadata service's record for one file.
type FileMeta struct {
	Name      string
	Size      int64
	StripSize int64
	Layout    layout.Layout
	// Raster annotations consumed by the active storage layer; zero for
	// plain byte files.
	Width, Height int
	ElemSize      int64
}

// Strips returns the number of strips the file occupies.
func (m *FileMeta) Strips() int64 {
	return (m.Size + m.StripSize - 1) / m.StripSize
}

// StripBounds returns the byte range [lo, hi) of strip s.
func (m *FileMeta) StripBounds(s int64) (lo, hi int64) {
	lo = s * m.StripSize
	hi = lo + m.StripSize
	if hi > m.Size {
		hi = m.Size
	}
	return lo, hi
}

// Locator builds the element locator for a raster file.
func (m *FileMeta) Locator() layout.Locator {
	elem := m.ElemSize
	if elem == 0 {
		elem = 1
	}
	return layout.NewLocator(elem, m.StripSize, m.Layout)
}

// FileSystem is the deployed parallel file system: metadata plus one
// running server per storage node.
type FileSystem struct {
	clu     *cluster.Cluster
	servers []*Server
	meta    map[string]*FileMeta
}

// New deploys the file system on a cluster: one data server process per
// storage node, started immediately.
func New(clu *cluster.Cluster) *FileSystem {
	fs := &FileSystem{
		clu:  clu,
		meta: make(map[string]*FileMeta),
	}
	for s := 0; s < clu.Cfg.StorageNodes; s++ {
		srv := newServer(fs, s)
		fs.servers = append(fs.servers, srv)
		srv.start()
	}
	return fs
}

// Cluster returns the platform the file system runs on.
func (fs *FileSystem) Cluster() *cluster.Cluster { return fs.clu }

// Servers returns the number of data servers (the D of the layout math).
func (fs *FileSystem) Servers() int { return len(fs.servers) }

// Server returns the data server with dense index s.
func (fs *FileSystem) Server(s int) *Server { return fs.servers[s] }

// CreateOptions carries optional raster annotations for Create.
type CreateOptions struct {
	StripSize     int64 // 0 → DefaultStripSize
	Width, Height int
	ElemSize      int64
}

// Create registers a file with a layout. Metadata operations are modeled
// as free: the paper's traffic argument is entirely about data strips, and
// metadata messages are orders of magnitude smaller.
func (fs *FileSystem) Create(name string, size int64, lay layout.Layout, opts CreateOptions) (*FileMeta, error) {
	if name == "" {
		return nil, fmt.Errorf("pfs: empty file name")
	}
	if size <= 0 {
		return nil, fmt.Errorf("pfs: file %q size %d", name, size)
	}
	if _, exists := fs.meta[name]; exists {
		return nil, fmt.Errorf("pfs: file %q already exists", name)
	}
	if lay.Servers() != len(fs.servers) {
		return nil, fmt.Errorf("pfs: layout spans %d servers, file system has %d", lay.Servers(), len(fs.servers))
	}
	stripSize := opts.StripSize
	if stripSize == 0 {
		stripSize = DefaultStripSize
	}
	if stripSize <= 0 {
		return nil, fmt.Errorf("pfs: strip size %d", stripSize)
	}
	m := &FileMeta{
		Name:      name,
		Size:      size,
		StripSize: stripSize,
		Layout:    lay,
		Width:     opts.Width,
		Height:    opts.Height,
		ElemSize:  opts.ElemSize,
	}
	fs.meta[name] = m
	return m, nil
}

// Meta looks a file up in the metadata service.
func (fs *FileSystem) Meta(name string) (*FileMeta, bool) {
	m, ok := fs.meta[name]
	return m, ok
}

// Delete drops a file's metadata and its strips on every server. Like
// Create, it is a metadata-scale operation modeled as free.
func (fs *FileSystem) Delete(name string) {
	delete(fs.meta, name)
	for _, s := range fs.servers {
		delete(s.store, name)
	}
}

// SetLayout replaces a file's layout record. Callers that move the actual
// strips use Client.Reconfigure; this is the bare metadata update.
func (fs *FileSystem) SetLayout(name string, lay layout.Layout) error {
	m, ok := fs.meta[name]
	if !ok {
		return fmt.Errorf("pfs: unknown file %q", name)
	}
	if lay.Servers() != len(fs.servers) {
		return fmt.Errorf("pfs: layout spans %d servers, file system has %d", lay.Servers(), len(fs.servers))
	}
	m.Layout = lay
	return nil
}

// call sends a request to server srv on behalf of a process running on
// node fromID and returns the response payload.
func (fs *FileSystem) call(p *sim.Proc, fromID, srv int, payload any, size int64) any {
	toID := fs.clu.StorageID(srv)
	resp := fs.clu.Net.Call(p, simnet.Message{
		From:    fromID,
		To:      toID,
		Port:    Port,
		Size:    size,
		Class:   fs.clu.ClassBetween(fromID, toID),
		Payload: payload,
	})
	return resp.Payload
}

// ReadStripFrom reads bytes [lo, hi) of strip (relative to the strip
// start) from server srv, as a process on node fromID. It is the
// transport used by clients and by active storage servers fetching
// dependent strips from their peers.
func (fs *FileSystem) ReadStripFrom(p *sim.Proc, fromID, srv int, file string, strip, lo, hi int64) ([]byte, error) {
	resp := fs.call(p, fromID, srv, readReq{File: file, Strip: strip, Lo: lo, Hi: hi}, headerBytes)
	switch r := resp.(type) {
	case readResp:
		return r.Data, nil
	case errResp:
		return nil, fmt.Errorf("pfs: read %s strip %d from server %d: %s", file, strip, srv, r.Err)
	default:
		panic("pfs: unexpected response type")
	}
}

// WriteStripTo writes a full or partial strip to server srv. When forward
// is set, the receiving server forwards copies to the strip's replica
// holders (server↔server traffic), implementing the replica-maintaining
// write path of the improved distribution.
func (fs *FileSystem) WriteStripTo(p *sim.Proc, fromID, srv int, file string, strip int64, data []byte, forward bool) error {
	resp := fs.call(p, fromID, srv, writeReq{File: file, Strip: strip, Data: data, Forward: forward},
		headerBytes+int64(len(data)))
	switch r := resp.(type) {
	case ackResp:
		return nil
	case errResp:
		return fmt.Errorf("pfs: write %s strip %d to server %d: %s", file, strip, srv, r.Err)
	default:
		_ = r
		panic("pfs: unexpected response type")
	}
}

// ReadSpansFrom fetches several spans of one file from server srv in a
// single request (one disk pass, one response message).
func (fs *FileSystem) ReadSpansFrom(p *sim.Proc, fromID, srv int, file string, spans []Span) ([][]byte, error) {
	resp := fs.call(p, fromID, srv, readManyReq{File: file, Spans: spans}, headerBytes)
	switch r := resp.(type) {
	case readManyResp:
		return r.Data, nil
	case errResp:
		return nil, fmt.Errorf("pfs: readMany %s from server %d: %s", file, srv, r.Err)
	default:
		panic("pfs: unexpected response type")
	}
}

// WriteStripsTo writes several whole strips to server srv in a single
// request. With forward set, the server pushes replica copies per strip.
func (fs *FileSystem) WriteStripsTo(p *sim.Proc, fromID, srv int, file string, strips []int64, data [][]byte, forward bool) error {
	var size int64 = headerBytes
	for _, d := range data {
		size += int64(len(d))
	}
	resp := fs.call(p, fromID, srv, writeManyReq{File: file, Strips: strips, Data: data, Forward: forward}, size)
	switch r := resp.(type) {
	case ackResp:
		return nil
	case errResp:
		return fmt.Errorf("pfs: writeMany %s to server %d: %s", file, srv, r.Err)
	default:
		_ = r
		panic("pfs: unexpected response type")
	}
}

// MigrateStrip asks server srv (a current holder) to push its copy of a
// strip to the given target servers.
func (fs *FileSystem) MigrateStrip(p *sim.Proc, fromID, srv int, file string, strip int64, targets []int) error {
	resp := fs.call(p, fromID, srv, migrateReq{File: file, Strip: strip, Targets: targets}, headerBytes)
	switch r := resp.(type) {
	case ackResp:
		return nil
	case errResp:
		return fmt.Errorf("pfs: migrate %s strip %d via server %d: %s", file, strip, srv, r.Err)
	default:
		_ = r
		panic("pfs: unexpected response type")
	}
}
