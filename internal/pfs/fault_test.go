package pfs

import (
	"bytes"
	"errors"
	"testing"

	"github.com/hpcio/das/internal/cluster"
	"github.com/hpcio/das/internal/fault"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/sim"
)

// crash downs dense storage server s immediately.
func crash(t *testing.T, clu *cluster.Cluster, s int) {
	t.Helper()
	if err := clu.ApplyFault(fault.Event{Kind: fault.Crash, Server: s}); err != nil {
		t.Fatal(err)
	}
}

// writeHealthy creates the file and writes data before any fault is applied.
func writeHealthy(t *testing.T, clu *cluster.Cluster, fs *FileSystem, lay layout.Layout, data []byte, stripSize int64) {
	t.Helper()
	if _, err := fs.Create("f", int64(len(data)), lay, CreateOptions{StripSize: stripSize}); err != nil {
		t.Fatal(err)
	}
	run(t, clu, func(p *sim.Proc) {
		c := fs.NewClient(clu.ComputeID(0))
		if err := c.WriteAll(p, "f", data); err != nil {
			t.Fatal(err)
		}
	})
}

func TestReadFailsOverToReplica(t *testing.T) {
	clu, fs := testFS(t)
	lay := layout.NewReplicatedRoundRobin(4, 2)
	data := pattern(8 * 64)
	writeHealthy(t, clu, fs, lay, data, 64)

	// Server 2 is primary for strips 2 and 6; their replicas live on 3.
	crash(t, clu, 2)
	run(t, clu, func(p *sim.Proc) {
		c := fs.NewClient(clu.ComputeID(0))
		got, err := c.ReadAll(p, "f")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Error("failover read corrupted data")
		}
	})
	if clu.Recovery.FailoverReads() == 0 {
		t.Error("crash of a primary produced no failover reads")
	}
}

func TestReadWithoutReplicasReturnsNoLiveCopy(t *testing.T) {
	clu, fs := testFS(t)
	data := pattern(4 * 64)
	writeHealthy(t, clu, fs, layout.NewRoundRobin(4), data, 64)

	crash(t, clu, 1)
	run(t, clu, func(p *sim.Proc) {
		c := fs.NewClient(clu.ComputeID(0))
		_, err := c.ReadAll(p, "f")
		if err == nil {
			t.Fatal("read of a crashed, unreplicated strip succeeded")
		}
		if !errors.Is(err, ErrNoLiveCopy) {
			t.Errorf("error %v, want ErrNoLiveCopy", err)
		}
		// Strips on live servers are still individually readable.
		got, rerr := c.Read(p, "f", 0, 64)
		if rerr != nil {
			t.Fatal(rerr)
		}
		if !bytes.Equal(got, data[:64]) {
			t.Error("healthy strip corrupted after failed read")
		}
	})
}

func TestReadBridgesPlannedRestart(t *testing.T) {
	clu, fs := testFS(t)
	data := pattern(4 * 64)
	writeHealthy(t, clu, fs, layout.NewRoundRobin(4), data, 64)

	// Crash immediately, restart 50 ms later: inside the failover loop's
	// DownBackoff budget (20+40 ms), so the read should wait it out.
	plan := fault.Plan{Events: []fault.Event{
		{At: 0, Kind: fault.Crash, Server: 1},
		{At: 50 * sim.Millisecond, Kind: fault.Restart, Server: 1},
	}}
	if err := clu.InstallFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	run(t, clu, func(p *sim.Proc) {
		c := fs.NewClient(clu.ComputeID(0))
		got, err := c.ReadAll(p, "f")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Error("read after restart corrupted data")
		}
	})
	if clu.Recovery.Retries() == 0 {
		t.Error("bridging a restart recorded no retries")
	}
}

func TestLossWindowTimesOutThenRecovers(t *testing.T) {
	clu, fs := testFS(t)
	data := pattern(64)
	writeHealthy(t, clu, fs, layout.NewRoundRobin(4), data, 64)

	// Drop every message for 260 ms — past one request timeout (250 ms) —
	// then heal. The first attempt times out, a retry lands after the
	// window closes.
	plan := fault.Plan{Events: []fault.Event{
		{At: 0, Kind: fault.Loss, Server: -1, Frac: 1},
		{At: 260 * sim.Millisecond, Kind: fault.Loss, Server: -1, Frac: 0},
	}}
	if err := clu.InstallFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	run(t, clu, func(p *sim.Proc) {
		c := fs.NewClient(clu.ComputeID(0))
		got, err := c.ReadAll(p, "f")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Error("read after loss window corrupted data")
		}
	})
	if clu.Recovery.Timeouts() == 0 {
		t.Error("total loss window produced no timeouts")
	}
	if clu.Recovery.Retries() == 0 {
		t.Error("total loss window produced no retries")
	}
	if clu.Recovery.DroppedMessages() == 0 {
		t.Error("total loss window dropped no messages")
	}
}

func TestDelayedMessagesStillDeliver(t *testing.T) {
	healthy := func(delay sim.Time) sim.Time {
		clu, fs := testFS(t)
		data := pattern(4 * 64)
		writeHealthy(t, clu, fs, layout.NewRoundRobin(4), data, 64)
		if delay > 0 {
			if err := clu.ApplyFault(fault.Event{Kind: fault.Loss, Server: -1, Frac: 1, Delay: delay}); err != nil {
				t.Fatal(err)
			}
		}
		start := clu.Eng.Now()
		run(t, clu, func(p *sim.Proc) {
			c := fs.NewClient(clu.ComputeID(0))
			got, err := c.ReadAll(p, "f")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Error("delayed read corrupted data")
			}
		})
		if clu.Recovery.DroppedMessages() != 0 {
			t.Error("delayed messages were counted as dropped")
		}
		return clu.Eng.Now() - start
	}
	if fast, slow := healthy(0), healthy(2*sim.Millisecond); slow <= fast {
		t.Errorf("delayed run took %v, healthy %v", slow, fast)
	}
}

func TestLateReplyNeverCrossesCalls(t *testing.T) {
	clu, fs := testFS(t)
	data := pattern(4 * 64)
	writeHealthy(t, clu, fs, layout.NewRoundRobin(4), data, 64)

	// Delay every message past the request timeout: responses always arrive
	// after their caller gave up, parking in abandoned reply mailboxes.
	if err := clu.ApplyFault(fault.Event{Kind: fault.Loss, Server: -1, Frac: 1, Delay: 300 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	run(t, clu, func(p *sim.Proc) {
		if _, err := fs.ReadStripFrom(p, clu.ComputeID(0), 0, "f", 0, 0, 0); err == nil {
			t.Error("read with all replies late succeeded")
		}
	})
	// Heal and read a different strip. If any parked late reply (strip 0
	// data) leaked into a recycled mailbox, this read would return the
	// wrong bytes or a mismatched payload.
	if err := clu.ApplyFault(fault.Event{Kind: fault.Loss, Server: -1, Frac: 0}); err != nil {
		t.Fatal(err)
	}
	run(t, clu, func(p *sim.Proc) {
		got, err := fs.ReadStripFrom(p, clu.ComputeID(0), 1, "f", 1, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data[64:128]) {
			t.Error("late reply crossed into a later call")
		}
	})
}

func TestWriteSkipsDownReplicaTarget(t *testing.T) {
	clu, fs := testFS(t)
	lay := layout.NewReplicatedRoundRobin(4, 2)
	data := pattern(64) // one strip: primary 0, replica 1
	if _, err := fs.Create("f", 64, lay, CreateOptions{StripSize: 64}); err != nil {
		t.Fatal(err)
	}
	crash(t, clu, 1)
	run(t, clu, func(p *sim.Proc) {
		c := fs.NewClient(clu.ComputeID(0))
		if err := c.WriteAll(p, "f", data); err != nil {
			t.Fatal(err)
		}
		got, err := c.ReadAll(p, "f")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Error("write with down replica corrupted data")
		}
	})
	if clu.Recovery.SkippedForwards() == 0 {
		t.Error("down replica target was not skipped")
	}
}

func TestWriteToDownPrimaryFails(t *testing.T) {
	clu, fs := testFS(t)
	data := pattern(4 * 64)
	if _, err := fs.Create("f", 4*64, layout.NewRoundRobin(4), CreateOptions{StripSize: 64}); err != nil {
		t.Fatal(err)
	}
	crash(t, clu, 0)
	run(t, clu, func(p *sim.Proc) {
		c := fs.NewClient(clu.ComputeID(0))
		err := c.WriteAll(p, "f", data)
		if err == nil {
			t.Fatal("write to a crashed primary succeeded")
		}
		if !errors.Is(err, ErrServerDown) {
			t.Errorf("error %v, want ErrServerDown", err)
		}
	})
}

func TestFaultPlanTimingIsDeterministic(t *testing.T) {
	elapsed := func() (sim.Time, int64, string) {
		clu, fs := testFS(t)
		data := pattern(16 * 64)
		writeHealthy(t, clu, fs, layout.NewReplicatedRoundRobin(4, 2), data, 64)
		plan := fault.Plan{Seed: 7, Events: []fault.Event{
			{At: 0, Kind: fault.Loss, Server: -1, Frac: 0.2},
			{At: 10 * sim.Millisecond, Kind: fault.Crash, Server: 3},
		}}
		if err := clu.InstallFaultPlan(plan); err != nil {
			t.Fatal(err)
		}
		var errStr string
		start := clu.Eng.Now()
		run(t, clu, func(p *sim.Proc) {
			c := fs.NewClient(clu.ComputeID(0))
			if _, err := c.ReadAll(p, "f"); err != nil {
				errStr = err.Error()
			}
		})
		return clu.Eng.Now() - start, clu.Recovery.DroppedMessages(), errStr
	}
	t1, d1, e1 := elapsed()
	t2, d2, e2 := elapsed()
	if t1 != t2 || d1 != d2 || e1 != e2 {
		t.Errorf("nondeterministic faulted run: (%v,%d,%q) vs (%v,%d,%q)", t1, d1, e1, t2, d2, e2)
	}
}
