package pfs

import (
	"testing"

	"github.com/hpcio/das/internal/cluster"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/sim"
)

// TestClientReadAllocs is the alloc-regression guard for the client read
// hot path. Before the buffer-pool pass, every ReadInto cost one server-
// side copy per strip plus a client-side assembly buffer — allocation
// counts proportional to strips × iterations. With pooling, the per-
// iteration count must stay a small constant (engine bookkeeping: spawned
// processes, signals, batch maps), independent of how many strips move.
func TestClientReadAllocs(t *testing.T) {
	cfg := cluster.Default()
	cfg.ComputeNodes, cfg.StorageNodes = 1, 4
	clu, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer clu.Eng.Shutdown()
	fs := New(clu)

	const stripSize = 4096
	const strips = 64
	const size = stripSize * strips
	if _, err := fs.Create("f", size, layout.NewRoundRobin(4), CreateOptions{StripSize: stripSize}); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i)
	}
	client := fs.NewClient(clu.ComputeID(0))
	clu.Eng.Spawn("seed-write", func(p *sim.Proc) {
		if err := client.WriteAll(p, "f", data); err != nil {
			t.Error(err)
		}
	})
	if err := clu.Eng.Run(); err != nil {
		t.Fatal(err)
	}

	dst := AcquireBuffer(size)
	defer ReleaseBuffer(dst)
	readOnce := func() {
		clu.Eng.Spawn("read", func(p *sim.Proc) {
			if err := client.ReadInto(p, "f", 0, dst); err != nil {
				t.Error(err)
			}
		})
		if err := clu.Eng.Run(); err != nil {
			t.Fatal(err)
		}
	}
	readOnce() // warm the pools

	allocs := testing.AllocsPerRun(20, readOnce)

	// One read spawns 1 + servers processes (goroutine, Proc, channel,
	// name) and a signal each, plus batch maps/slices: ~2 dozen small
	// allocations on this 4-server geometry. The unpooled path added ≥ 2
	// allocations per strip (64 strips → ≥ 128 more); 60 is comfortably
	// above engine bookkeeping noise and far below any per-strip regime.
	const maxAllocs = 60
	if allocs > maxAllocs {
		t.Errorf("client read path: %.0f allocs/op, want ≤ %d (per-strip buffers must come from the pool)", allocs, maxAllocs)
	}
	t.Logf("client read path: %.1f allocs/op over %d strips", allocs, strips)
}
