package pfs

import (
	"errors"
	"fmt"

	"github.com/hpcio/das/internal/sim"
	"github.com/hpcio/das/internal/simnet"
)

// Protocol payloads exchanged on the pfs port. Responses travel back over
// the Reply mailbox embedded in the request message.
type (
	readReq struct {
		File   string
		Strip  int64
		Lo, Hi int64 // byte sub-range within the strip; Hi == 0 → whole strip
	}
	// readManyReq fetches several spans of one file in a single request.
	// The server charges its disk one sequential read for the whole batch:
	// a data server stores its strips of a file contiguously, so a bulk
	// read pays one positioning cost, not one per strip.
	readManyReq struct {
		File  string
		Spans []Span
	}
	writeReq struct {
		File    string
		Strip   int64
		Data    []byte
		Forward bool // forward copies to the strip's replica holders
	}
	// writeManyReq stores several whole strips in a single request, with
	// one sequential disk write, forwarding replicas per strip if asked.
	writeManyReq struct {
		File    string
		Strips  []int64
		Data    [][]byte
		Forward bool
	}
	migrateReq struct {
		File    string
		Strip   int64
		Targets []int
	}
	readResp     struct{ Data []byte }
	readManyResp struct{ Data [][]byte }
	ackResp      struct{}
	errResp      struct {
		Err  string
		Code errCode
	}
)

// Span addresses bytes [Lo, Hi) within one strip (relative to the strip's
// start). Hi == 0 selects the whole strip.
type Span struct {
	Strip  int64
	Lo, Hi int64
}

// Server is one PFS data server: a process on a storage node that owns a
// disk and an in-memory strip store and serves the pfs port. Each request
// is handled on its own child process (a thread-pool model), so a slow
// disk or a busy NIC queues requests on the physical resource rather than
// on the service loop — the contention the paper's NAS analysis is about.
type Server struct {
	fs     *FileSystem
	srv    int // dense server index
	nodeID int
	store  map[string]map[int64][]byte
	reqs   uint64

	// lastFile/lastStrips cache the most recent store hit: requests on a
	// busy server overwhelmingly name the same file, and the string-keyed
	// map lookup (hash + compare per request) is measurable at scale.
	// Inner maps are created once and mutated in place, never replaced,
	// so a cached reference stays valid.
	lastFile   string
	lastStrips map[int64][]byte

	// hname is the handler diagnostic name, formatted on first use.
	hname string
	// taskFree recycles fast-path request chains (fasthandler.go).
	taskFree []*reqTask
}

func newServer(fs *FileSystem, srv int) *Server {
	return &Server{
		fs:     fs,
		srv:    srv,
		nodeID: fs.clu.StorageID(srv),
		store:  make(map[string]map[int64][]byte),
	}
}

// Index returns the server's dense index.
func (s *Server) Index() int { return s.srv }

// NodeID returns the cluster node the server runs on.
func (s *Server) NodeID() int { return s.nodeID }

// Requests returns the number of requests received so far.
func (s *Server) Requests() uint64 { return s.reqs }

// handlerName returns the per-server handler diagnostic name, formatted
// once on first use: a per-request formatted name would allocate on every
// message, and even per-server formatting is deferred so building a
// five-thousand-server cluster pays nothing for names diagnostics may
// never read.
func (s *Server) handlerName() string {
	if s.hname == "" {
		s.hname = fmt.Sprintf("pfs-server-%d-req", s.srv)
	}
	return s.hname
}

func (s *Server) start() {
	port := s.fs.clu.Net.Node(s.nodeID).Port(Port)
	if s.fs.clu.Eng.FastDispatch() {
		// Fast dispatch: the port drives the dispatcher inline instead of a
		// daemon process looping over Get. SetDispatcher's initial task
		// stands in for the daemon's start event, and each delivered
		// message reaches dispatch at the event the daemon's wake would be.
		port.SetDispatcher(s.dispatch)
		return
	}
	s.fs.clu.Eng.SpawnDaemon(fmt.Sprintf("pfs-server-%d", s.srv), func(p *sim.Proc) {
		for {
			msg := port.Get(p)
			s.reqs++
			p.Spawn(s.handlerName(), func(h *sim.Proc) {
				s.handle(h, msg)
			})
		}
	})
}

// serveRead and serveWrite are the classic handler bodies for the two
// single-strip requests, shared between the value and pooled-pointer
// payload forms (the pointer form arrives from fault-free clients).
func (s *Server) serveRead(p *sim.Proc, respond func(any, int64), fail func(error), file string, strip, lo, hi int64) {
	data, err := s.LocalRead(p, file, strip, lo, hi)
	if err != nil {
		fail(err)
		return
	}
	r := s.fs.readRespGet()
	r.Data = data
	respond(r, headerBytes+int64(len(data)))
}

func (s *Server) serveWrite(p *sim.Proc, respond func(any, int64), fail func(error), file string, strip int64, data []byte, forward bool) {
	if err := s.LocalWrite(p, file, strip, data, forward); err != nil {
		fail(err)
		return
	}
	respond(ackResp{}, headerBytes)
}

func (s *Server) handle(p *sim.Proc, msg simnet.Message) {
	respond := func(payload any, size int64) {
		s.fs.clu.Net.Respond(p, msg, payload, size, s.fs.clu.ClassBetween(s.nodeID, msg.From))
	}
	fail := func(err error) {
		code := codeInternal
		if errors.Is(err, errNotHeld) {
			code = codeNotFound
		}
		respond(errResp{Err: err.Error(), Code: code}, headerBytes)
	}
	switch req := msg.Payload.(type) {
	case readReq:
		s.serveRead(p, respond, fail, req.File, req.Strip, req.Lo, req.Hi)
	case *readReq:
		file, strip, lo, hi := req.File, req.Strip, req.Lo, req.Hi
		s.fs.readReqPut(req)
		s.serveRead(p, respond, fail, file, strip, lo, hi)
	case readManyReq:
		data, err := s.LocalReadMany(p, req.File, req.Spans)
		if err != nil {
			fail(err)
			return
		}
		var total int64
		for _, d := range data {
			total += int64(len(d))
		}
		respond(readManyResp{Data: data}, headerBytes+total)
	case writeManyReq:
		if err := s.LocalWriteMany(p, req.File, req.Strips, req.Data, req.Forward); err != nil {
			fail(err)
			return
		}
		respond(ackResp{}, headerBytes)
	case writeReq:
		s.serveWrite(p, respond, fail, req.File, req.Strip, req.Data, req.Forward)
	case *writeReq:
		file, strip, data, forward := req.File, req.Strip, req.Data, req.Forward
		s.fs.writeReqPut(req)
		s.serveWrite(p, respond, fail, file, strip, data, forward)
	case migrateReq:
		if err := s.migrate(p, req); err != nil {
			fail(err)
			return
		}
		respond(ackResp{}, headerBytes)
	default:
		respond(errResp{Err: fmt.Sprintf("unknown request %T", msg.Payload), Code: codeBadRequest}, headerBytes)
	}
}

// stripsOf returns the strip map for file, through the one-entry cache.
func (s *Server) stripsOf(file string) (map[int64][]byte, bool) {
	if file == s.lastFile && s.lastStrips != nil {
		return s.lastStrips, true
	}
	strips, ok := s.store[file]
	if ok {
		s.lastFile, s.lastStrips = file, strips
	}
	return strips, ok
}

// Holds reports whether the server currently stores a copy of the strip.
func (s *Server) Holds(file string, strip int64) bool {
	strips, ok := s.stripsOf(file)
	if !ok {
		return false
	}
	_, ok = strips[strip]
	return ok
}

// peek copies bytes [lo, hi) of a locally held strip without charging the
// disk; callers batch the disk charge.
func (s *Server) peek(file string, strip, lo, hi int64) ([]byte, error) {
	strips, ok := s.stripsOf(file)
	if !ok {
		return nil, fmt.Errorf("server %d holds no strips of %q: %w", s.srv, file, errNotHeld)
	}
	data, ok := strips[strip]
	if !ok {
		return nil, fmt.Errorf("server %d does not hold %q strip %d: %w", s.srv, file, strip, errNotHeld)
	}
	if hi == 0 {
		hi = int64(len(data))
	}
	if lo < 0 || hi > int64(len(data)) || lo > hi {
		return nil, fmt.Errorf("range [%d,%d) outside strip of %d bytes", lo, hi, len(data))
	}
	out := AcquireBuffer(hi - lo)
	copy(out, data[lo:hi])
	//das:transfer -- the strip copy rides the response message; the final consumer releases it
	return out, nil
}

// LocalRead is the local I/O API from the paper's architecture (Fig. 2):
// it reads bytes [lo, hi) of a locally held strip through the node's disk,
// without touching the network. Hi == 0 selects the whole strip. The
// returned slice is a pool-backed copy: the final consumer may hand it to
// ReleaseBuffer to recycle it.
func (s *Server) LocalRead(p *sim.Proc, file string, strip, lo, hi int64) ([]byte, error) {
	data, err := s.peek(file, strip, lo, hi)
	if err != nil {
		return nil, err
	}
	s.fs.clu.Disk(s.nodeID).Read(p, int64(len(data)))
	return data, nil
}

// LocalReadMany reads several spans of one file with a single sequential
// disk pass: one positioning cost plus the batch's total bytes. A data
// server keeps its strips of a file contiguous on disk, so this is how a
// bulk read actually behaves. Each returned chunk is a pool-backed copy
// the final consumer may pass to ReleaseBuffer.
func (s *Server) LocalReadMany(p *sim.Proc, file string, spans []Span) ([][]byte, error) {
	out := make([][]byte, len(spans))
	var total int64
	for i, sp := range spans {
		data, err := s.peek(file, sp.Strip, sp.Lo, sp.Hi)
		if err != nil {
			return nil, err
		}
		out[i] = data
		total += int64(len(data))
	}
	s.fs.clu.Disk(s.nodeID).Read(p, total)
	return out, nil
}

// LocalWrite stores a strip copy through the node's disk. With forward
// set, the server pushes copies to the strip's replica holders under the
// file's current layout — the write path that materializes the improved
// distribution's boundary replicas.
func (s *Server) LocalWrite(p *sim.Proc, file string, strip int64, data []byte, forward bool) error {
	if err := s.validateWrite(file, strip, data); err != nil {
		return err
	}
	m := s.fs.meta[file]
	s.storePut(file, strip, data)
	s.fs.clu.Disk(s.nodeID).Write(p, int64(len(data)))
	if !forward {
		return nil
	}
	for _, rep := range m.Layout.Replicas(strip) {
		if rep == s.srv {
			continue
		}
		if err := s.fs.WriteStripTo(p, s.nodeID, rep, file, strip, data, false); err != nil {
			if errors.Is(err, ErrServerDown) || errors.Is(err, ErrTimeout) {
				// Best-effort replication under faults: a down replica
				// target loses this copy rather than failing the write. The
				// primary copy is durable; DESIGN.md documents the
				// divergence window.
				s.fs.clu.Recovery.AddSkippedForward()
				continue
			}
			return err
		}
	}
	return nil
}

// LocalWriteMany stores several whole strips with one sequential disk
// write, then forwards replica copies batched per target server.
func (s *Server) LocalWriteMany(p *sim.Proc, file string, strips []int64, data [][]byte, forward bool) error {
	total, err := s.validateWriteMany(file, strips, data)
	if err != nil {
		return err
	}
	for i, strip := range strips {
		s.storePut(file, strip, data[i])
	}
	s.fs.clu.Disk(s.nodeID).Write(p, total)
	if !forward {
		return nil
	}
	return s.ForwardReplicas(p, file, strips, data)
}

// ForwardReplicas pushes copies of the given strips to their replica
// holders under the file's current layout, batched per target server. It
// is called synchronously from replica-maintaining writes; active storage
// runs call it on a child process to overlap replication with the next
// run's disk and compute work (lazy replication).
func (s *Server) ForwardReplicas(p *sim.Proc, file string, strips []int64, data [][]byte) error {
	m, ok := s.fs.meta[file]
	if !ok {
		return fmt.Errorf("unknown file %q", file)
	}
	byTarget := make(map[int][]int)
	var order []int
	for i, strip := range strips {
		for _, rep := range m.Layout.Replicas(strip) {
			if rep == s.srv {
				continue
			}
			if _, seen := byTarget[rep]; !seen {
				order = append(order, rep)
			}
			byTarget[rep] = append(byTarget[rep], i)
		}
	}
	for _, target := range order {
		idxs := byTarget[target]
		fwd := writeManyReq{File: file, Strips: make([]int64, len(idxs)), Data: make([][]byte, len(idxs))}
		for j, i := range idxs {
			fwd.Strips[j], fwd.Data[j] = strips[i], data[i]
		}
		var size int64 = headerBytes
		for _, d := range fwd.Data {
			size += int64(len(d))
		}
		resp, err := s.fs.call(p, s.nodeID, target, fwd, size)
		if err != nil {
			if errors.Is(err, ErrServerDown) || errors.Is(err, ErrTimeout) {
				// Best-effort replication under faults: skip the down
				// target instead of failing the whole batch.
				s.fs.clu.Recovery.AddSkippedForward()
				continue
			}
			return err
		}
		if e, isErr := resp.(errResp); isErr {
			return fmt.Errorf("replica forward to server %d: %s", target, e.Err)
		}
	}
	return nil
}

// Drop discards a local strip copy without timing cost (a metadata-scale
// truncation). Reconfiguration uses it to retire stale placements.
func (s *Server) Drop(file string, strip int64) {
	if strips, ok := s.stripsOf(file); ok {
		delete(strips, strip)
	}
	if s.fs.invalidator != nil {
		s.fs.invalidator.InvalidateStrip(file, strip)
	}
}

// validateWrite checks a single-strip write against the file's metadata.
// Shared by the classic handler and the fast request chain so both reject
// exactly the same requests with the same messages.
func (s *Server) validateWrite(file string, strip int64, data []byte) error {
	m, ok := s.fs.meta[file]
	if !ok {
		return fmt.Errorf("unknown file %q", file)
	}
	lo, hi := m.StripBounds(strip)
	if hi <= lo {
		return fmt.Errorf("strip %d outside file %q", strip, file)
	}
	if int64(len(data)) != hi-lo {
		return fmt.Errorf("strip %d of %q is %d bytes, got %d", strip, file, hi-lo, len(data))
	}
	return nil
}

// validateWriteMany checks a batched write and returns its total bytes.
func (s *Server) validateWriteMany(file string, strips []int64, data [][]byte) (int64, error) {
	m, ok := s.fs.meta[file]
	if !ok {
		return 0, fmt.Errorf("unknown file %q", file)
	}
	if len(strips) != len(data) {
		return 0, fmt.Errorf("writeMany: %d strips but %d buffers", len(strips), len(data))
	}
	var total int64
	for i, strip := range strips {
		lo, hi := m.StripBounds(strip)
		if hi <= lo {
			return 0, fmt.Errorf("strip %d outside file %q", strip, file)
		}
		if int64(len(data[i])) != hi-lo {
			return 0, fmt.Errorf("strip %d of %q is %d bytes, got %d", strip, file, hi-lo, len(data[i]))
		}
		total += hi - lo
	}
	return total, nil
}

// Preload installs a strip copy directly into the server's store, with no
// simulated disk or network cost. Benchmark bootstrap uses it to populate
// paper-scale datasets without simulating the ingest; it must not be
// called while a simulation is measuring.
func (s *Server) Preload(file string, strip int64, data []byte) {
	s.storePut(file, strip, data)
}

func (s *Server) storePut(file string, strip int64, data []byte) {
	strips, ok := s.stripsOf(file)
	if !ok {
		strips = make(map[int64][]byte)
		s.store[file] = strips
		s.lastFile, s.lastStrips = file, strips
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	strips[strip] = cp
	if s.fs.invalidator != nil {
		s.fs.invalidator.InvalidateStrip(file, strip)
	}
}

// migrate pushes the local copy of a strip to each target server. The
// pushes are migration-tagged writes: restripe copy traffic must not leak
// into the latency observer's tuning samples.
func (s *Server) migrate(p *sim.Proc, req migrateReq) error {
	data, err := s.LocalRead(p, req.File, req.Strip, 0, 0)
	if err != nil {
		return err
	}
	// The strip copy is pool-backed; writeStrip is synchronous and the
	// receiving server stores its own copy, so the buffer is dead on every
	// exit from the push loop.
	defer ReleaseBuffer(data)
	for _, target := range req.Targets {
		if target == s.srv {
			continue
		}
		if err := s.fs.writeStrip(p, s.nodeID, target, req.File, req.Strip, data, false, true); err != nil {
			return err
		}
	}
	return nil
}

// StoredBytes returns the bytes of all strips the server currently holds,
// the quantity behind the layout capacity-overhead accounting.
func (s *Server) StoredBytes() int64 {
	var total int64
	for _, strips := range s.store {
		for _, d := range strips {
			total += int64(len(d))
		}
	}
	return total
}
