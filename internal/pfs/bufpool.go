package pfs

import "github.com/hpcio/das/internal/bufpool"

// Strip buffer pool. Every server read copies strip bytes out of the
// store (LocalRead/LocalReadMany via peek) and every client read assembles
// those copies into a contiguous result; at steady state the simulator
// churns through identically sized buffers millions of times per
// experiment. The pool recycles them. Buffers flow one way — server copy →
// response message → consumer — so the consumer that finishes with a
// buffer releases it; buffers that escape (stored payloads are copied by
// storePut, so none do) are simply collected by the GC.

var bufPool bufpool.Pool[byte]

// AcquireBuffer returns a byte slice of length n whose contents are
// arbitrary (callers overwrite it). Release it with ReleaseBuffer when no
// reference remains.
func AcquireBuffer(n int64) []byte {
	//das:transfer -- this wrapper is the pool's hand-out point; the caller owns the buffer
	return bufPool.Get(int(n))
}

// ReleaseBuffer recycles a buffer obtained from AcquireBuffer (releasing a
// foreign slice is also safe). The caller must not use it afterwards.
func ReleaseBuffer(b []byte) {
	bufPool.Put(b)
}
