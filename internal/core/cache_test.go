package core

import (
	"testing"

	"github.com/hpcio/das/internal/cache"
	"github.com/hpcio/das/internal/fault"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/sim"
	"github.com/hpcio/das/internal/workload"
)

// TestCacheWarmsAcrossNASRounds is the core e2e: the second offloaded
// round over the same input serves its dependent strips from the
// halo-strip cache instead of refetching them, and both rounds stay
// byte-identical to the sequential reference.
func TestCacheWarmsAcrossNASRounds(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	k, _ := kernels.Default().Lookup("flow-routing")
	want := kernels.Apply(k, g)

	s := ingested(t, g, layout.NewRoundRobin(4))
	defer s.Close()
	if err := s.EnableCache(cache.Config{}); err != nil {
		t.Fatal(err)
	}
	req := Request{Op: "flow-routing", Input: "in", Scheme: NAS}

	req.Output = "out1"
	rep1, err := s.Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	// The cold round may already hit on halo strips shared between a
	// server's runs (flow-routing's dependence spans two strips), but it
	// must pay remote fetches for everything else.
	if rep1.Stats.RemoteFetches == 0 {
		t.Fatal("cold round fetched nothing; workload has no dependence to cache")
	}

	req.Output = "out2"
	rep2, err := s.Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Stats.CacheHits <= rep1.Stats.CacheHits {
		t.Errorf("warm round hit %d times, not more than cold round's %d",
			rep2.Stats.CacheHits, rep1.Stats.CacheHits)
	}
	if rep2.Stats.RemoteBytes >= rep1.Stats.RemoteBytes {
		t.Errorf("warm round fetched %d bytes, not fewer than cold round's %d",
			rep2.Stats.RemoteBytes, rep1.Stats.RemoteBytes)
	}
	for _, out := range []string{"out1", "out2"} {
		got, err := s.FetchGrid(out)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("%s diverged from the sequential reference", out)
		}
	}
	if s.Clu.CacheStats.Hits() == 0 {
		t.Error("cluster-wide cache counters saw no hits")
	}
}

// TestCacheInvalidatedByWrites: rewriting the input kills every cached
// copy of its strips, so the next round misses instead of serving stale
// bytes.
func TestCacheInvalidatedByWrites(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	s := ingested(t, g, layout.NewRoundRobin(4))
	defer s.Close()
	if err := s.EnableCache(cache.Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(Request{Op: "flow-routing", Input: "in", Output: "o1", Scheme: NAS}); err != nil {
		t.Fatal(err)
	}
	warm := int64(0)
	for srv := 0; srv < s.Cache.NumServers(); srv++ {
		warm += s.Cache.Server(srv).UsedBytes()
	}
	if warm == 0 {
		t.Fatal("no cached bytes after the warm-up round")
	}

	// Rewrite the input in place: every strip write must invalidate.
	g2 := workload.Terrain(testW, testH, 6)
	if _, err := s.run("rewrite", func(p *sim.Proc) error {
		return s.FS.NewClient(s.Clu.ComputeID(0)).WriteAll(p, "in", g2.Bytes())
	}); err != nil {
		t.Fatal(err)
	}
	for srv := 0; srv < s.Cache.NumServers(); srv++ {
		if used := s.Cache.Server(srv).UsedBytes(); used != 0 {
			t.Errorf("server %d kept %d cached bytes of the rewritten file", srv, used)
		}
	}
	if s.Clu.CacheStats.Invalidations() == 0 {
		t.Error("no invalidations recorded")
	}

	// The next round recomputes from the new bytes.
	k, _ := kernels.Default().Lookup("flow-routing")
	want := kernels.Apply(k, g2)
	if _, err := s.Execute(Request{Op: "flow-routing", Input: "in", Output: "o2", Scheme: NAS}); err != nil {
		t.Fatal(err)
	}
	got, err := s.FetchGrid("o2")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("post-rewrite output diverged: stale cache bytes served")
	}
}

// TestCacheCrashPurgesPinnedStrips is the cache × fault interaction: a
// server whose cache holds hot pinned strips crashes mid-run and
// restarts; the incarnation bump purges its cache (memory does not
// survive a crash even though the simulated disk does), the pins are
// gone, and the interrupted run still finishes byte-identical to the
// sequential reference.
func TestCacheCrashPurgesPinnedStrips(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	k, _ := kernels.Default().Lookup("flow-routing")
	want := kernels.Apply(k, g)

	s := ingested(t, g, layout.NewRoundRobin(4))
	defer s.Close()
	// LatencyHigh beyond any simulated fetch keeps the tuning loop from
	// re-promoting after the purge, so the pin assertions stay sharp.
	if err := s.EnableCache(cache.Config{LatencyHigh: 3600 * sim.Second, LatencyLow: sim.Microsecond}); err != nil {
		t.Fatal(err)
	}

	// Warm round: server 1's cache fills with the halo strips it fetched.
	rep1, err := s.Execute(Request{Op: "flow-routing", Input: "in", Output: "warm", Scheme: NAS})
	if err != nil {
		t.Fatal(err)
	}
	const crashed = 1
	sc := s.Cache.Server(crashed)
	in, _ := s.FS.Meta("in")
	pinnedStrip := int64(-1)
	for strip := int64(0); strip < in.Strips(); strip++ {
		if sc.Holds("in", strip) {
			if !sc.Pin("in", strip) {
				t.Fatalf("pin of resident strip %d failed", strip)
			}
			pinnedStrip = strip
			break
		}
	}
	if pinnedStrip < 0 {
		t.Fatal("server 1 cached nothing in the warm round")
	}

	// Crash server 1 mid-run and bring it back: the run bridges the
	// outage via dispatch retries, and the restart bumps the incarnation.
	plan := fault.Plan{Events: []fault.Event{
		{At: rep1.ExecTime / 2, Kind: fault.Crash, Server: crashed},
		{At: rep1.ExecTime/2 + 50*sim.Millisecond, Kind: fault.Restart, Server: crashed},
	}}
	if err := s.Clu.InstallFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(Request{Op: "flow-routing", Input: "in", Output: "crashed", Scheme: NAS}); err != nil {
		t.Fatal(err)
	}
	got, err := s.FetchGrid("crashed")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("crashed run diverged from the sequential reference")
	}
	if sc.Pinned("in", pinnedStrip) {
		t.Error("pinned strip survived the restart")
	}
	if s.Clu.CacheStats.RestartPurges() == 0 {
		t.Error("no restart purge recorded after the incarnation bump")
	}
	if snap := sc.Snapshot(); snap.PinnedBytes != 0 {
		t.Errorf("server %d still accounts %d pinned bytes", crashed, snap.PinnedBytes)
	}
}

// TestCacheRunsDeterministic guards the DES contract (satellite): two
// identical systems running the identical cached workload produce
// identical cache statistics and identical engine event counts — any
// map-iteration-order or wall-clock leak in the cache or its tuning loop
// breaks this.
func TestCacheRunsDeterministic(t *testing.T) {
	type outcome struct {
		hits, misses, inserts, evict, inval, promo, demo int64
		events                                           uint64
		actions                                          int
	}
	runOnce := func() outcome {
		g := workload.Terrain(testW, testH, 5)
		s := ingested(t, g, layout.NewRoundRobin(4))
		defer s.Close()
		// A small budget forces evictions; the adaptive policy plus tight
		// latency thresholds force promote/demote traffic.
		if err := s.EnableCache(cache.Config{
			BudgetBytes: 4 * testStrip,
			Policy:      "arc",
			LatencyHigh: 10 * sim.Microsecond,
			LatencyLow:  sim.Microsecond,
			SampleEvery: 500 * sim.Microsecond,
		}); err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 3; round++ {
			out := []string{"a", "b", "c"}[round]
			if _, err := s.Execute(Request{Op: "flow-routing", Input: "in", Output: out, Scheme: NAS}); err != nil {
				t.Fatal(err)
			}
		}
		cs := s.Clu.CacheStats
		return outcome{
			hits: cs.Hits(), misses: cs.Misses(), inserts: cs.Inserts(),
			evict: cs.Evictions(), inval: cs.Invalidations(),
			promo: cs.Promotions(), demo: cs.Demotions(),
			events:  s.Clu.Eng.Events(),
			actions: len(s.Cache.Actions()),
		}
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Errorf("identical cached runs diverged:\n  run 1: %+v\n  run 2: %+v", a, b)
	}
	if a.hits == 0 || a.evict == 0 {
		t.Errorf("workload did not exercise the cache (hits=%d evictions=%d)", a.hits, a.evict)
	}
}
