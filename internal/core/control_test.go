package core

import (
	"strings"
	"testing"

	"github.com/hpcio/das/internal/cache"
	"github.com/hpcio/das/internal/control"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/restripe"
	"github.com/hpcio/das/internal/sim"
	"github.com/hpcio/das/internal/workload"
)

// TestControlIgnoresMigrationTraffic is the regression test for the old
// dueling-loops bug: a background migration used to flood the tuning
// window with its own copy latencies, the cache manager read that as a
// hot server and pinned strips, and the migrator promptly invalidated
// them. Now migration traffic is tagged at the pfs layer and excluded
// from tuning — so a migration on an otherwise-idle system must cause
// ZERO controller actions and ZERO cache manager actions.
func TestControlIgnoresMigrationTraffic(t *testing.T) {
	g := workload.Terrain(testW, testH, 7)
	s, err := NewSystem(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Ingest before the controller exists so the setup writes are not
	// sampled: the controller then sees ONLY the migration's traffic.
	if _, err := s.IngestGrid("in", g, layout.NewRoundRobin(s.FS.Servers()), testStrip); err != nil {
		t.Fatal(err)
	}
	if err := s.EnableCache(cache.Config{BudgetBytes: 64 << 10}); err != nil {
		t.Fatal(err)
	}
	if err := s.EnableControl(control.Config{}); err != nil {
		t.Fatal(err)
	}
	// Restriping is enabled AFTER the controller on purpose: no admission
	// gate and no cool-down watcher, so the migration runs unconditionally
	// and the only defense left is the migration tag itself.
	if err := s.EnableRestripe(restripe.Config{MinObservedBytes: 1}); err != nil {
		t.Fatal(err)
	}

	pat, ok := s.Features.Lookup("flow-routing")
	if !ok {
		t.Fatal("flow-routing pattern missing")
	}
	m, ok := s.FS.Meta("in")
	if !ok {
		t.Fatal("ingested file missing")
	}
	s.Restripe.Observe("in", pat, predictParams(m), 1<<20)
	if s.Restripe.ActiveCount() == 0 {
		t.Fatal("migration was not admitted — the test exercises nothing")
	}
	converged, _, err := s.DrainRestripe(60 * sim.Second)
	if err != nil || !converged {
		t.Fatalf("migration did not converge: %v", err)
	}

	ctl := s.Control
	if got := ctl.MigrationSamplesExcluded(); got == 0 {
		t.Fatal("migration produced no tagged samples — the tag is not wired")
	}
	if got := ctl.TuningSamples(); got != 0 {
		t.Errorf("migration leaked %d samples into the tuning sketches", got)
	}
	if got := ctl.RPCSamples(); got != 0 {
		t.Errorf("migration produced %d untagged RPC samples", got)
	}
	if acts := ctl.Actions(); len(acts) != 0 {
		t.Errorf("controller acted on migration traffic: %v", acts)
	}
	if acts := s.Cache.Actions(); len(acts) != 0 {
		t.Errorf("cache manager acted on migration traffic: %v", acts)
	}
}

// TestControlTailTiersTheDecision: with the controller attached, a
// congested observed tail must be able to veto an offload the byte model
// alone would accept — exercised end-to-end through Execute.
func TestControlTailTiersTheDecision(t *testing.T) {
	g := workload.Terrain(testW, testH, 7)
	s, err := NewSystem(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.IngestGrid("in", g, layout.NewRoundRobin(s.FS.Servers()), testStrip); err != nil {
		t.Fatal(err)
	}
	if err := s.EnableCache(cache.Config{BudgetBytes: 64 << 10}); err != nil {
		t.Fatal(err)
	}
	if err := s.EnableControl(control.Config{}); err != nil {
		t.Fatal(err)
	}
	// Poison the observed tail directly: every server far past LatencyHigh.
	for srv := 0; srv < s.FS.Servers(); srv++ {
		for i := 0; i < 8; i++ {
			s.Control.ObserveFetch(srv, 10*sim.Millisecond)
		}
	}
	rep, err := s.Execute(Request{Op: "flow-routing", Input: "in", Output: "out", Scheme: DAS})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decision == nil {
		t.Fatal("no decision recorded")
	}
	// Flow-routing on round-robin pays dependent fetches, so the 20x tail
	// overshoot must flow through DecideTail and show up in the decision's
	// reasoning (and in the inflated offload byte count).
	if rep.Decision.Analysis.LocalByLayout {
		t.Fatal("fixture resolved locally; the tail path was never exercised")
	}
	if !strings.Contains(rep.Decision.Reason, "p99") {
		t.Errorf("decision ignored the observed tail: %q", rep.Decision.Reason)
	}
	if s.Control.ClusterP99() < 10*sim.Millisecond {
		t.Errorf("cluster p99 = %v, want >= 10ms", s.Control.ClusterP99())
	}
}
