package core

import (
	"fmt"

	"github.com/hpcio/das/internal/active"
	"github.com/hpcio/das/internal/features"
	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/pfs"
	"github.com/hpcio/das/internal/predict"
	"github.com/hpcio/das/internal/sim"
	"github.com/hpcio/das/internal/simnet"
)

// ReduceRequest submits a data-reducing scan (stats, histogram) over a
// raster file.
type ReduceRequest struct {
	Op     string
	Input  string
	Scheme Scheme
}

// ReduceReport is the outcome of one reduction.
type ReduceReport struct {
	Scheme    Scheme
	Op        string
	Offloaded bool
	Decision  *predict.Decision
	Result    []float64
	ExecTime  sim.Time
	Stats     active.ReduceStats
	Traffic   map[metrics.TrafficClass]int64
}

// Reduce runs a reduction under the selected scheme. Reductions are the
// dependence-free workload classic active storage was built for: under
// NAS and DAS every server folds its local strips and only the partial
// aggregates cross the network; under TS the raster itself does. The DAS
// scheme still consults the prediction core — which accepts trivially,
// since an empty dependence pattern has Σ aj = 0 and a near-zero output
// factor.
func (s *System) Reduce(req ReduceRequest) (ReduceReport, error) {
	m, ok := s.FS.Meta(req.Input)
	if !ok {
		return ReduceReport{}, fmt.Errorf("core: unknown input %q", req.Input)
	}
	if m.Width == 0 || m.ElemSize == 0 {
		return ReduceReport{}, fmt.Errorf("core: input %q lacks raster metadata", req.Input)
	}
	red, ok := s.Reducers.Lookup(req.Op)
	if !ok {
		return ReduceReport{}, fmt.Errorf("core: unknown reducer %q", req.Op)
	}
	before := s.Clu.Traffic.Snapshot()
	rep := ReduceReport{Scheme: req.Scheme, Op: req.Op}
	var err error
	switch req.Scheme {
	case TS:
		err = s.reduceTS(&rep, red, m)
	case NAS:
		err = s.reduceActive(&rep, red, m)
	case DAS:
		// The workflow still runs: pattern (empty), prediction, accept.
		pat := features.Pattern{Name: red.Name()}
		params := predictParams(m)
		params.OutputFactor = float64(red.PartialLen()*grid.ElemSize) / float64(m.Size)
		decision, derr := predict.Decide(pat, params, m.Layout)
		if derr != nil {
			return ReduceReport{}, derr
		}
		rep.Decision = &decision
		if decision.Offload {
			err = s.reduceActive(&rep, red, m)
		} else {
			err = s.reduceTS(&rep, red, m)
		}
	default:
		err = fmt.Errorf("core: unknown scheme %v", req.Scheme)
	}
	if err != nil {
		return ReduceReport{}, err
	}
	after := s.Clu.Traffic.Snapshot()
	rep.Traffic = make(map[metrics.TrafficClass]int64, len(after))
	for c, b := range after {
		rep.Traffic[c] = b - before[c]
	}
	return rep, nil
}

// reduceActive offloads the fold to the storage servers.
func (s *System) reduceActive(rep *ReduceReport, red kernels.Reducer, in *pfs.FileMeta) error {
	var err error
	rep.Offloaded = true
	rep.ExecTime, err = s.run("reduce-"+red.Name(), func(p *sim.Proc) error {
		s.startup(p)
		result, stats, err := active.NewClient(s.FS, s.Clu.ComputeID(0)).ExecReduce(p, red, in.Name)
		rep.Result, rep.Stats = result, stats
		return err
	})
	return err
}

// reduceTS reads the raster to the compute nodes and folds there: each
// worker reduces a contiguous strip block, then ships its partial to the
// coordinating client, which merges.
func (s *System) reduceTS(rep *ReduceReport, red kernels.Reducer, in *pfs.FileMeta) error {
	strips := in.Strips()
	workers := s.Clu.Cfg.ComputeNodes
	perWorker := (strips + int64(workers) - 1) / int64(workers)
	total := in.Size / in.ElemSize
	partialBytes := int64(red.PartialLen()) * grid.ElemSize

	var err error
	rep.ExecTime, err = s.run("reduce-ts-"+red.Name(), func(p *sim.Proc) error {
		gather := sim.NewMailbox[reducePartial](s.Clu.Eng, "reduce-gather")
		launched := 0
		for w := 0; w < workers; w++ {
			w := w
			first := int64(w) * perWorker
			last := first + perWorker - 1
			if last >= strips {
				last = strips - 1
			}
			if first > last {
				continue
			}
			launched++
			p.Spawn(fmt.Sprintf("reduce-ts-worker-%d", w), func(c *sim.Proc) {
				partial, elements, werr := s.reduceWorker(c, red, in, first, last, total, w)
				if werr != nil {
					gather.Put(reducePartial{err: werr})
					return
				}
				// Ship the partial to the coordinator (compute node 0);
				// workers on node 0 hand it over locally for free.
				s.Clu.Net.Send(c, simnet.Message{
					From: s.Clu.ComputeID(w), To: s.Clu.ComputeID(0), Port: "reduce-sink",
					Size: partialBytes, Class: metrics.ClientToServer,
				})
				gather.Put(reducePartial{vals: partial, elements: elements})
			})
		}
		var partials [][]float64
		for i := 0; i < launched; i++ {
			got := gather.Get(p)
			if got.err != nil {
				return got.err
			}
			partials = append(partials, got.vals)
			rep.Stats.Elements += got.elements
			rep.Stats.Servers++
		}
		rep.Result = red.Merge(partials)
		return nil
	})
	return err
}

type reducePartial struct {
	vals     []float64
	elements int64
	err      error
}

func (s *System) reduceWorker(p *sim.Proc, red kernels.Reducer, in *pfs.FileMeta, first, last, total int64, w int) ([]float64, int64, error) {
	s.startup(p)
	client := s.FS.NewClient(s.Clu.ComputeID(w))
	byteLo, _ := in.StripBounds(first)
	_, byteHi := in.StripBounds(last)
	data := pfs.AcquireBuffer(byteHi - byteLo)
	if err := client.ReadInto(p, in.Name, byteLo, data); err != nil {
		pfs.ReleaseBuffer(data)
		return nil, 0, err
	}
	e0, e1 := byteLo/in.ElemSize, byteHi/in.ElemSize
	band := grid.NewBandPooled(in.Width, total, e0, e1, e0, e1)
	band.FillBytes(e0, data)
	pfs.ReleaseBuffer(data)
	partial := red.ReduceBand(band)
	band.Release()
	p.Sleep(s.Clu.ComputeTime(e1-e0, red.Weight()))
	return partial, e1 - e0, nil
}
