package core

import (
	"errors"
	"fmt"

	"github.com/hpcio/das/internal/active"
	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/pfs"
	"github.com/hpcio/das/internal/predict"
	"github.com/hpcio/das/internal/sim"
)

// outputLayout returns the placement a new output file should be created
// with: the input's layout, frozen into a per-strip snapshot when the
// input is mid-migration. An output sharing a live dual layout would keep
// shifting under its writers — strips would land where the placement
// pointed at write time but be read back where it points later. The
// snapshot pins one consistent placement for the output's whole life.
func outputLayout(in *pfs.FileMeta) layout.Layout {
	return layout.Concrete(in.Layout, in.Strips())
}

// startup charges the per-run job-launch overhead on every participating
// node's worker process.
func (s *System) startup(p *sim.Proc) { p.Sleep(s.Clu.Cfg.Startup) }

// runTS executes the operation under Traditional Storage: compute nodes
// read contiguous blocks of the input (plus halo), run the kernel locally,
// and write the output strips back to the servers.
func (s *System) runTS(rep *Report, req Request, in *pfs.FileMeta) error {
	job, err := s.tsJob(rep, req, in)
	if err != nil {
		return err
	}
	rep.ExecTime, err = s.run("ts-"+req.Op, job)
	return err
}

// tsJob prepares the TS execution as a job function that can run either
// standalone (runTS) or alongside other jobs (ExecuteConcurrent). Output
// creation happens at preparation time, so concurrent jobs fail fast on
// name collisions.
func (s *System) tsJob(rep *Report, req Request, in *pfs.FileMeta) (func(p *sim.Proc) error, error) {
	k, _ := s.Registry.Lookup(req.Op)
	out, err := s.FS.Create(req.Output, in.Size, outputLayout(in), pfs.CreateOptions{
		StripSize: in.StripSize, Width: in.Width, Height: in.Height, ElemSize: in.ElemSize,
	})
	if err != nil {
		return nil, err
	}
	total := in.Size / in.ElemSize
	maxAbs := kernels.Pattern(k).MaxAbsOffset(in.Width)
	strips := in.Strips()
	workers := s.Clu.Cfg.ComputeNodes
	perWorker := (strips + int64(workers) - 1) / int64(workers)

	return func(p *sim.Proc) error {
		type workerResult struct {
			phases active.Phases
			err    error
		}
		sigs := make([]*sim.Signal[workerResult], 0, workers)
		for w := 0; w < workers; w++ {
			w := w
			first := int64(w) * perWorker
			last := first + perWorker - 1
			if last >= strips {
				last = strips - 1
			}
			if first > last {
				continue
			}
			done := sim.NewSignal[workerResult](s.Clu.Eng, fmt.Sprintf("ts-worker-%s-%d", req.Output, w))
			sigs = append(sigs, done)
			p.Spawn(fmt.Sprintf("ts-worker-%s-%d", req.Output, w), func(c *sim.Proc) {
				ph, err := s.tsWorker(c, k, in, out, first, last, maxAbs, total, w)
				done.Fire(workerResult{phases: ph, err: err})
			})
		}
		for _, r := range sim.WaitAll(p, sigs) {
			if r.err != nil {
				return r.err
			}
			rep.Stats.Servers++
			rep.Stats.PhaseMax.MaxWith(r.phases)
		}
		return nil
	}, nil
}

// tsWorker processes strips [first, last] of the input on compute node w,
// returning its per-phase time decomposition. Under TS the "Fetch" phase
// is the client's read of the input from the storage servers and "Write"
// is the output write-back — the client↔server traffic DAS eliminates.
func (s *System) tsWorker(p *sim.Proc, k kernels.Kernel, in, out *pfs.FileMeta, first, last, maxAbs, total int64, w int) (active.Phases, error) {
	var phases active.Phases
	s.startup(p)
	client := s.FS.NewClient(s.Clu.ComputeID(w))
	byteLo, _ := in.StripBounds(first)
	_, byteHi := in.StripBounds(last)
	e0, e1 := byteLo/in.ElemSize, byteHi/in.ElemSize
	lo, hi := grid.HaloRange(e0, e1, maxAbs, total)

	readStart := p.Now()
	data := pfs.AcquireBuffer((hi - lo) * in.ElemSize)
	if err := client.ReadInto(p, in.Name, lo*in.ElemSize, data); err != nil {
		pfs.ReleaseBuffer(data)
		return phases, err
	}
	phases.Fetch = p.Now() - readStart
	s.Clu.Trace.Record(readStart, phases.Fetch, tsActor(w), "read",
		fmt.Sprintf("%d bytes of %s", (hi-lo)*in.ElemSize, in.Name))
	band := grid.NewBandPooled(in.Width, total, e0, e1, lo, hi)
	band.FillBytes(lo, data)
	pfs.ReleaseBuffer(data)

	outVals := grid.GetFloats(int(e1 - e0))
	kernels.ParallelApplyBand(k, band, outVals)
	band.Release()
	computeStart := p.Now()
	p.Sleep(s.Clu.ComputeTime(e1-e0, k.Weight()))
	phases.Compute = p.Now() - computeStart
	s.Clu.Trace.Record(computeStart, phases.Compute, tsActor(w), "compute",
		fmt.Sprintf("%s over %d elements", k.Name(), e1-e0))

	// Write the output back, batching the strips bound for each server.
	outBytes := grid.FloatsToBytesInto(pfs.AcquireBuffer((e1-e0)*in.ElemSize), outVals)
	grid.PutFloats(outVals)
	type batch struct {
		strips []int64
		chunks [][]byte
	}
	batches := make(map[int]*batch)
	var order []int
	for t := first; t <= last; t++ {
		tLo, tHi := out.StripBounds(t)
		srv := out.Layout.Primary(t)
		b, ok := batches[srv]
		if !ok {
			b = &batch{}
			batches[srv] = b
			order = append(order, srv)
		}
		b.strips = append(b.strips, t)
		b.chunks = append(b.chunks, outBytes[tLo-byteLo:tHi-byteLo])
	}
	sigs := make([]*sim.Signal[error], 0, len(order))
	for _, srv := range order {
		srv := srv
		b := batches[srv]
		done := sim.NewSignal[error](s.Clu.Eng, fmt.Sprintf("ts-out-srv%d", srv))
		sigs = append(sigs, done)
		p.Spawn(fmt.Sprintf("ts-write-srv%d", srv), func(wp *sim.Proc) {
			done.Fire(s.FS.WriteStripsTo(wp, client.NodeID(), srv, out.Name, b.strips, b.chunks, true))
		})
	}
	writeStart := p.Now()
	for _, e := range sim.WaitAll(p, sigs) {
		if e != nil {
			// All writers have fired, so nothing still references the
			// output encoding.
			pfs.ReleaseBuffer(outBytes)
			return phases, e
		}
	}
	pfs.ReleaseBuffer(outBytes) // writes acknowledged: stores hold copies
	phases.Write = p.Now() - writeStart
	s.Clu.Trace.Record(writeStart, phases.Write, tsActor(w), "write-back",
		fmt.Sprintf("strips %d-%d of %s", first, last, out.Name))
	return phases, nil
}

// tsActor names a TS compute worker for trace events.
func tsActor(w int) string { return fmt.Sprintf("ts-worker-%d", w) }

// runNAS executes the operation as existing active storage systems do:
// offload unconditionally, each server processing its local strips and
// fetching dependent strips from its peers. When server faults leave a
// strip with no live copy the offload degrades to normal I/O.
func (s *System) runNAS(rep *Report, req Request, in *pfs.FileMeta) error {
	job, err := s.offloadJob(rep, req, in, req.NASFetchMode)
	if err != nil {
		return err
	}
	rep.Offloaded = true
	attemptStart := s.Clu.Eng.Now()
	rep.ExecTime, err = s.run("nas-"+req.Op, job)
	if err != nil {
		return s.degradeToTS(rep, req, in, err, s.Clu.Eng.Now()-attemptStart)
	}
	return nil
}

// degradeToTS serves a request as normal I/O after an offload attempt
// failed because input strips lost their last live copy. The partially
// produced output is deleted (the TS job re-creates it), the abandoned
// attempt's simulated time is charged to the report, and any error that is
// not the no-live-copy condition propagates unchanged.
func (s *System) degradeToTS(rep *Report, req Request, in *pfs.FileMeta, cause error, wasted sim.Time) error {
	if !errors.Is(cause, pfs.ErrNoLiveCopy) {
		return cause
	}
	s.FS.Delete(req.Output)
	rep.Stats = active.ExecStats{}
	rep.Offloaded = false
	rep.Degraded = true
	rep.DegradedReason = cause.Error()
	if err := s.runTS(rep, req, in); err != nil {
		return err
	}
	rep.ExecTime += wasted
	return nil
}

// offloadJob prepares an active storage execution (used by both NAS and
// accepted DAS requests) as a composable job function.
func (s *System) offloadJob(rep *Report, req Request, in *pfs.FileMeta, mode active.FetchMode) (func(p *sim.Proc) error, error) {
	if _, err := s.FS.Create(req.Output, in.Size, outputLayout(in), pfs.CreateOptions{
		StripSize: in.StripSize, Width: in.Width, Height: in.Height, ElemSize: in.ElemSize,
	}); err != nil {
		return nil, err
	}
	return func(p *sim.Proc) error {
		s.startup(p)
		stats, err := active.NewClient(s.FS, s.Clu.ComputeID(0)).
			Exec(p, req.Op, req.Input, req.Output, mode)
		rep.Stats = stats
		return err
	}, nil
}

// runDAS executes the full dynamic workflow of Fig. 3.
func (s *System) runDAS(rep *Report, req Request, in *pfs.FileMeta) error {
	// 1. Get the data dependence pattern from the kernel features.
	pat, ok := s.Features.Lookup(req.Op)
	if !ok {
		return fmt.Errorf("core: no kernel features for %q", req.Op)
	}
	params := predictParams(in)
	anyDown := s.Clu.AnyStorageDown()
	_, migrating := in.Layout.(*layout.Migrating)

	// 2–3. Get the file distribution; if the workload allows
	// redistribution, find a reasonable distribution and reconfigure.
	// Migration needs every strip's primary alive, so a degraded cluster
	// keeps the layout it has. A file the online restriper is already
	// migrating keeps its dual layout — the background migration owns it.
	targetLay := in.Layout
	if req.Reconfigure && !anyDown && !migrating {
		planned, err := s.PlanLayout(req.Op, in.Width, in.ElemSize, in.StripSize, in.Size, req.MaxOverhead)
		if err != nil {
			return err
		}
		if planned.Name() != in.Layout.Name() {
			// Only migrate when the prediction says the migrated layout
			// would be accepted; otherwise the migration cost buys nothing.
			if d, err := predict.Decide(pat, params, planned); err != nil {
				return err
			} else if d.Offload {
				rt, err := s.run("das-reconfig-"+req.Input, func(p *sim.Proc) error {
					return s.FS.NewClient(s.Clu.ComputeID(0)).Reconfigure(p, req.Input, planned)
				})
				if err != nil {
					return err
				}
				rep.Reconfigured, rep.ReconfigTime = true, rt
				targetLay = planned
			}
		}
	}

	// 4. Predict the bandwidth cost against the (possibly new) layout.
	// With servers down the degraded analysis runs instead: strips are
	// costed at their first live holder, and any strip without a live copy
	// vetoes offloading outright.
	var decision predict.Decision
	var err error
	switch {
	case anyDown:
		decision, err = predict.DecideDegraded(pat, params, targetLay, s.Clu.ServerDown)
	case s.Control != nil && s.Cache != nil:
		// The controller's observed fetch tail tiers the decision: a
		// congested p99 inflates the dependent-fetch term before the
		// accept/reject compare.
		decision, err = predict.DecideTail(pat, params, targetLay,
			s.Cache.HitRateEstimate(req.Input), s.Control.ClusterP99(), s.Control.Config().LatencyHigh)
	case s.Cache != nil:
		decision, err = predict.DecideCached(pat, params, targetLay, s.Cache.HitRateEstimate(req.Input))
	default:
		decision, err = predict.Decide(pat, params, targetLay)
	}
	if err != nil {
		return err
	}
	rep.Decision = &decision

	// 5. Accept or reject.
	if !decision.Offload && !req.DisablePrediction {
		// Rejected: serve as normal I/O (TS path), as the workflow chart
		// prescribes.
		if decision.Analysis.UnservableStrips > 0 {
			rep.Degraded = true
			rep.DegradedReason = decision.Reason
		}
		if err := s.runTS(rep, req, in); err != nil {
			return err
		}
		rep.ExecTime += rep.ReconfigTime
		rep.Offloaded = false
		return nil
	}

	mode := active.LocalOnly
	if !decision.Analysis.LocalByLayout || migrating {
		// Accepted on cost grounds without full locality (possible when
		// prediction is disabled or dependence is cheap): fall back to
		// fetching what is missing. A mid-migration input also loses the
		// local-only guarantee — strips keep flipping between placements
		// while servers execute, so missing halo data must stay fetchable.
		mode = active.FetchWholeStrips
	}
	job, err := s.offloadJob(rep, req, in, mode)
	if err != nil {
		return err
	}
	attemptStart := s.Clu.Eng.Now()
	execTime, err := s.run("das-"+req.Op, job)
	if err != nil {
		// A crash racing the execution can strand strips with no live
		// copy mid-run; scrap the partial output and serve as normal I/O.
		if derr := s.degradeToTS(rep, req, in, err, s.Clu.Eng.Now()-attemptStart); derr != nil {
			return derr
		}
		rep.ExecTime += rep.ReconfigTime
		return nil
	}
	rep.Offloaded = true
	rep.ExecTime = execTime + rep.ReconfigTime
	return nil
}
