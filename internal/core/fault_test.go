package core

import (
	"errors"
	"testing"

	"github.com/hpcio/das/internal/fault"
	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/pfs"
	"github.com/hpcio/das/internal/sim"
	"github.com/hpcio/das/internal/workload"
)

// crashSurvivableLayout is a grouped-replicated layout with halo == r:
// every strip is mirrored to both neighboring servers, so any single
// server crash leaves a live copy of everything. (The paper's halo < r
// configurations trade that coverage for capacity: their interior strips
// have no replicas.)
func crashSurvivableLayout(d int) layout.Layout {
	return layout.NewGroupedReplicated(d, 2, 2)
}

// ingested builds a system and ingests the test terrain under lay.
func ingested(t *testing.T, g *grid.Grid, lay layout.Layout) *System {
	t.Helper()
	s, err := NewSystem(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.IngestGrid("in", g, lay, testStrip); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDASSurvivesMidRunCrashByteIdentical is the headline fault e2e: one
// storage server crashes in the middle of an offloaded DAS run under the
// fully replicated layout, the dead server's strips are reassigned to
// their replica holders, and the output matches the sequential reference
// byte for byte.
func TestDASSurvivesMidRunCrashByteIdentical(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	k, _ := kernels.Default().Lookup("flow-routing")
	want := kernels.Apply(k, g)

	// Fault-free baseline on the same layout, to aim the crash mid-run.
	// Full mirroring pays more replica-maintenance bytes than normal I/O
	// moves, so the bandwidth criterion alone would reject it — the
	// availability layout is chosen for coverage, and the run forces the
	// offload the way the ablation flag exists for.
	base := ingested(t, g, crashSurvivableLayout(4))
	baseRep, err := base.Execute(Request{
		Op: "flow-routing", Input: "in", Output: "out", Scheme: DAS, DisablePrediction: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !baseRep.Offloaded {
		t.Fatalf("baseline DAS did not offload: %+v", baseRep.Decision)
	}

	s := ingested(t, g, crashSurvivableLayout(4))
	plan := fault.Plan{Events: []fault.Event{
		{At: baseRep.ExecTime / 2, Kind: fault.Crash, Server: 1},
	}}
	if err := s.Clu.InstallFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Execute(Request{
		Op: "flow-routing", Input: "in", Output: "out", Scheme: DAS, DisablePrediction: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Offloaded {
		t.Errorf("DAS under crash did not offload: %+v", rep.Decision)
	}
	got, err := s.FetchGrid("out")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("crashed run output differs from reference (max diff %g)", got.MaxAbsDiff(want))
	}
	if s.Clu.FaultLog.Len() != 1 {
		t.Errorf("fault log has %d records, want 1", s.Clu.FaultLog.Len())
	}
	if s.Clu.Recovery.ExecRetries() == 0 && s.Clu.Recovery.FailoverReads() == 0 {
		t.Error("mid-run crash triggered no recovery actions at all")
	}
}

// TestNASDegradesToTSWhenStripsLoseTheirServer: under round-robin there
// are no replicas, so a crashed server makes offloading impossible — the
// NAS request must fall back to normal I/O, which bridges the planned
// restart and still produces the right answer.
func TestNASDegradesToTSWhenStripsLoseTheirServer(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	s := ingested(t, g, layout.NewRoundRobin(4))
	plan := fault.Plan{Events: []fault.Event{
		{At: 0, Kind: fault.Crash, Server: 1},
		{At: 80 * sim.Millisecond, Kind: fault.Restart, Server: 1},
	}}
	if err := s.Clu.InstallFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Execute(Request{Op: "flow-routing", Input: "in", Output: "out", Scheme: NAS})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offloaded {
		t.Error("NAS offloaded with a dead unreplicated server")
	}
	if !rep.Degraded || rep.DegradedReason == "" {
		t.Errorf("report not marked degraded: %+v", rep)
	}
	k, _ := kernels.Default().Lookup("flow-routing")
	want := kernels.Apply(k, g)
	got, err := s.FetchGrid("out")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("degraded run output differs from reference")
	}
}

// TestDASPermanentCrashWithoutReplicasFailsTyped: no replicas and no
// restart means the data is simply unreachable. The run must fail with the
// typed no-live-copy error — never a panic — after the degraded decision
// already routed it away from offloading.
func TestDASPermanentCrashWithoutReplicasFailsTyped(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	s := ingested(t, g, layout.NewRoundRobin(4))
	plan := fault.Plan{Events: []fault.Event{
		{At: 0, Kind: fault.Crash, Server: 2},
	}}
	if err := s.Clu.InstallFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	_, err := s.Execute(Request{Op: "flow-routing", Input: "in", Output: "out", Scheme: DAS})
	if err == nil {
		t.Fatal("DAS run with permanently lost strips succeeded")
	}
	if !errors.Is(err, pfs.ErrNoLiveCopy) {
		t.Errorf("error %v, want ErrNoLiveCopy", err)
	}
}

// TestDegradedDecisionVetoesOffload checks the prediction side on its own:
// with a server down under round-robin, DecideDegraded must reject and
// count the unservable strips.
func TestDegradedDecisionVetoesOffload(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	s := ingested(t, g, layout.NewRoundRobin(4))
	plan := fault.Plan{Events: []fault.Event{{At: 0, Kind: fault.Crash, Server: 1}}}
	if err := s.Clu.InstallFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	// Fire the plan's events by running an empty workload.
	if _, err := s.run("tick", func(p *sim.Proc) error { p.Sleep(sim.Millisecond); return nil }); err != nil {
		t.Fatal(err)
	}
	m, _ := s.FS.Meta("in")
	pat, _ := s.Features.Lookup("flow-routing")
	d, err := s.DecideDegraded(pat, m)
	if err != nil {
		t.Fatal(err)
	}
	if d.Offload {
		t.Errorf("degraded decision offloaded: %+v", d)
	}
	if d.Analysis.UnservableStrips == 0 {
		t.Error("no unservable strips counted with a dead round-robin server")
	}
	if !d.Analysis.Approximated {
		t.Error("degraded analysis not marked approximated")
	}
}

// TestFaultedDASIsDeterministic: the same plan against the same workload
// reproduces the same simulated completion time and recovery counts.
func TestFaultedDASIsDeterministic(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	run := func() (sim.Time, int64) {
		s := ingested(t, g, crashSurvivableLayout(4))
		plan := fault.Plan{Seed: 11, Events: []fault.Event{
			{At: 5 * sim.Millisecond, Kind: fault.Crash, Server: 1},
			{At: 60 * sim.Millisecond, Kind: fault.Restart, Server: 1},
		}}
		if err := s.Clu.InstallFaultPlan(plan); err != nil {
			t.Fatal(err)
		}
		rep, err := s.Execute(Request{
			Op: "flow-routing", Input: "in", Output: "out", Scheme: DAS, DisablePrediction: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.ExecTime, s.Clu.Recovery.ExecRetries() + s.Clu.Recovery.FailoverReads()
	}
	t1, r1 := run()
	t2, r2 := run()
	if t1 != t2 || r1 != r2 {
		t.Errorf("nondeterministic faulted run: (%v,%d) vs (%v,%d)", t1, r1, t2, r2)
	}
}
