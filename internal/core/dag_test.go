package core

import (
	"math"
	"strings"
	"testing"

	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/workload"
)

func dagChain3() kernels.DAG {
	return kernels.Chain("terrain3", []string{"gaussian-filter", "flow-routing", "flow-accumulation"}, "")
}

func TestExecuteDAGPushdownMatchesPerPassBitwise(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	d := dagChain3()
	want, err := kernels.ApplyDAG(d, kernels.Default(), kernels.DefaultCombiners(), g)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []Scheme{NAS, DAS} {
		for _, perPass := range []bool{false, true} {
			s := newSystem(t, scheme, g)
			rep, err := s.ExecuteDAG(DAGRequest{DAG: d, Input: "in", Output: "out",
				Scheme: scheme, PerPass: perPass, DisablePrediction: true})
			if err != nil {
				t.Fatalf("%v perPass=%v: %v", scheme, perPass, err)
			}
			if rep.Pipelined == perPass {
				t.Errorf("%v perPass=%v: Pipelined=%v", scheme, perPass, rep.Pipelined)
			}
			got, err := s.FetchGrid(rep.Output)
			if err != nil {
				t.Fatalf("%v perPass=%v: %v", scheme, perPass, err)
			}
			if !got.Equal(want) {
				t.Errorf("%v perPass=%v: output differs from sequential DAG reference", scheme, perPass)
			}
			s.Close()
		}
	}
}

func TestExecuteDAGPushdownMovesFewerBytes(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	d := dagChain3()
	total := func(m map[metrics.TrafficClass]int64) int64 {
		var sum int64
		for _, b := range m {
			sum += b
		}
		return sum
	}
	s1 := newSystem(t, DAS, g)
	per, err := s1.ExecuteDAG(DAGRequest{DAG: d, Input: "in", Output: "out", Scheme: DAS, PerPass: true})
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()
	s2 := newSystem(t, DAS, g)
	piped, err := s2.ExecuteDAG(DAGRequest{DAG: d, Input: "in", Output: "out", Scheme: DAS, DisablePrediction: true})
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()
	if !piped.Pipelined {
		t.Fatal("pushdown did not run pipelined")
	}
	pb, ppb := total(piped.Traffic), total(per.Traffic)
	if pb >= ppb {
		t.Errorf("pipelined moved %d bytes, per-pass %d — pushdown should move strictly fewer", pb, ppb)
	}
	if piped.Run.LowerBoundBytes <= 0 {
		t.Errorf("no lower bound reported: %+v", piped.Run)
	}
	// Under the DAS grouped-replicated layout the achieved halo traffic
	// may legitimately undercut the bound: the bound prices an
	// unreplicated placement, while replica-prepaid halos were paid at
	// ingest. The ratio just has to be reported.
	if piped.Run.LowerBoundRatio() <= 0 {
		t.Errorf("no lower-bound ratio: %+v", piped.Run)
	}
}

func TestExecuteDAGReduceAgreesAcrossPaths(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	d := kernels.Chain("terrain-stats", []string{"gaussian-filter", "flow-routing"}, "stats")
	want, err := kernels.ApplyDAG(d, kernels.Default(), kernels.DefaultCombiners(), g)
	if err != nil {
		t.Fatal(err)
	}
	wantRed := kernels.ReduceStriped(kernels.Stats{}, want, testStrip/grid.ElemSize)

	s := newSystem(t, DAS, g)
	piped, err := s.ExecuteDAG(DAGRequest{DAG: d, Input: "in", Output: "out", Scheme: DAS, DisablePrediction: true})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	// The pipelined reduce is the canonical ascending-strip merge:
	// exactly ReduceStriped on the reference grid.
	if len(piped.Reduce) != len(wantRed) {
		t.Fatalf("pipelined reduce len %d, want %d", len(piped.Reduce), len(wantRed))
	}
	for i := range wantRed {
		if piped.Reduce[i] != wantRed[i] {
			t.Errorf("pipelined reduce[%d] = %v, want %v", i, piped.Reduce[i], wantRed[i])
		}
	}

	s2 := newSystem(t, DAS, g)
	per, err := s2.ExecuteDAG(DAGRequest{DAG: d, Input: "in", Output: "out", Scheme: DAS, PerPass: true})
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()
	if per.ReduceReport == nil || len(per.Reduce) != len(wantRed) {
		t.Fatalf("per-pass reduce missing: %+v", per.Reduce)
	}
	// The per-pass reduction merges per-server partials, not per-strip:
	// count/min/max agree exactly, the float sums within tolerance.
	for _, i := range []int{kernels.StatCount, kernels.StatMin, kernels.StatMax} {
		if per.Reduce[i] != wantRed[i] {
			t.Errorf("per-pass reduce[%d] = %v, want %v", i, per.Reduce[i], wantRed[i])
		}
	}
	for _, i := range []int{kernels.StatSum, kernels.StatSumSq} {
		if diff := math.Abs(per.Reduce[i] - wantRed[i]); diff > 1e-9*math.Abs(wantRed[i]) {
			t.Errorf("per-pass reduce[%d] = %v vs %v", i, per.Reduce[i], wantRed[i])
		}
	}
}

func TestExecuteDAGDecisionGateFallsBackToPerPass(t *testing.T) {
	// Round-robin grants no local halo, so the whole-DAG exchange is
	// priced at full cost; with the default small geometry the decision
	// can go either way, so force the reject by requesting a chain on a
	// system whose predictor sees TS as cheaper — validated structurally:
	// when the decision rejects and prediction is enabled, the chain runs
	// per-pass and the report says so.
	g := workload.Terrain(testW, testH, 5)
	s := newSystem(t, DAS, g)
	defer s.Close()
	d := dagChain3()
	rep, err := s.ExecuteDAG(DAGRequest{DAG: d, Input: "in", Output: "out", Scheme: DAS})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decision == nil {
		t.Fatal("DAS pushdown skipped the whole-DAG decision")
	}
	if rep.Decision.Offload != rep.Pipelined {
		t.Errorf("decision Offload=%v but Pipelined=%v", rep.Decision.Offload, rep.Pipelined)
	}
	if !rep.Pipelined && len(rep.StageReports) == 0 {
		t.Error("rejected pushdown did not run per-pass stages")
	}
}

func TestExecuteDAGRejectsBadRequests(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	s := newSystem(t, NAS, g)
	defer s.Close()
	d := dagChain3()
	if _, err := s.ExecuteDAG(DAGRequest{DAG: d, Input: "in", Output: "out", Scheme: TS}); err == nil || !strings.Contains(err.Error(), "no DAG executor") {
		t.Errorf("TS scheme error: %v", err)
	}
	if _, err := s.ExecuteDAG(DAGRequest{DAG: d, Input: "nope", Output: "out", Scheme: NAS}); err == nil {
		t.Error("unknown input accepted")
	}
	diamond := kernels.DAG{Name: "diamond", Nodes: []kernels.Node{
		{ID: "a", Kind: kernels.KindKernel, Op: "gaussian-filter"},
		{ID: "b", Kind: kernels.KindKernel, Op: "surface-slope"},
		{ID: "c", Kind: kernels.KindCombine, Op: "add", Parents: []string{"a", "b"}},
	}}
	if _, err := s.ExecuteDAG(DAGRequest{DAG: diamond, Input: "in", Output: "out2", Scheme: NAS, PerPass: true}); err == nil || !strings.Contains(err.Error(), "linear chain") {
		t.Errorf("per-pass diamond error: %v", err)
	}
	bad := kernels.Chain("bad", []string{"no-such"}, "")
	if _, err := s.ExecuteDAG(DAGRequest{DAG: bad, Input: "in", Output: "out3", Scheme: NAS}); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestExecuteDAGDiamondPushdown(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	d := kernels.DAG{Name: "diamond", Nodes: []kernels.Node{
		{ID: "a", Kind: kernels.KindKernel, Op: "gaussian-filter"},
		{ID: "b", Kind: kernels.KindKernel, Op: "surface-slope"},
		{ID: "c", Kind: kernels.KindCombine, Op: "add", Parents: []string{"a", "b"}},
	}}
	want, err := kernels.ApplyDAG(d, kernels.Default(), kernels.DefaultCombiners(), g)
	if err != nil {
		t.Fatal(err)
	}
	s := newSystem(t, NAS, g)
	defer s.Close()
	rep, err := s.ExecuteDAG(DAGRequest{DAG: d, Input: "in", Output: "out", Scheme: NAS})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pipelined {
		t.Error("diamond did not push down")
	}
	got, err := s.FetchGrid("out")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("diamond pushdown differs from sequential DAG reference")
	}
}
