package core

import (
	"strings"
	"testing"

	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/workload"
)

func TestExecutePipelineNamesAndResults(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	s := newSystem(t, DAS, g)
	ops := []string{"flow-routing", "flow-accumulation"}
	reports, err := s.ExecutePipeline(DAS, "in", ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports", len(reports))
	}
	for i, rep := range reports {
		if !rep.Offloaded {
			t.Errorf("stage %d not offloaded", i+1)
		}
		if rep.Stats.RemoteFetches != 0 {
			t.Errorf("stage %d fetched %d strips", i+1, rep.Stats.RemoteFetches)
		}
	}
	out := PipelineOutput("in", ops)
	got, err := s.FetchGrid(out)
	if err != nil {
		t.Fatalf("final output %q: %v", out, err)
	}
	want := kernels.Apply(kernels.FlowAccumulation{}, kernels.Apply(kernels.FlowRouting{}, g))
	if !got.Equal(want) {
		t.Error("pipeline output differs from sequential composition")
	}
}

func TestExecutePipelineEmptyAndFailing(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	s := newSystem(t, TS, g)
	if _, err := s.ExecutePipeline(TS, "in", nil); err == nil {
		t.Error("empty pipeline accepted")
	}
	reports, err := s.ExecutePipeline(TS, "in", []string{"flow-routing", "no-such-op"})
	if err == nil {
		t.Fatal("unknown stage accepted")
	}
	if len(reports) != 1 {
		t.Errorf("expected the completed first stage to be reported, got %d", len(reports))
	}
}

// TestWorkflowLayoutServesMixedPatterns plans one layout for a workflow
// whose stages have different dependence patterns (8-neighbor routing and
// a 1-D blur) and verifies both stages offload with zero fetches.
func TestWorkflowLayoutServesMixedPatterns(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	s, err := NewSystem(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Registry.Register(kernels.HorizontalBlur{Radius: 2})
	s.Features = s.Registry.Features()
	ops := []string{"flow-routing", "horizontal-blur"}
	lay, err := s.PlanLayoutForWorkflow(ops, g.W, 8, testStrip, g.SizeBytes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.IngestGrid("in", g, lay, testStrip); err != nil {
		t.Fatal(err)
	}
	reports, err := s.ExecutePipeline(DAS, "in", ops)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reports {
		if !rep.Offloaded || rep.Stats.RemoteFetches != 0 {
			t.Errorf("stage %d: offloaded=%v fetches=%d", i, rep.Offloaded, rep.Stats.RemoteFetches)
		}
	}
	want := kernels.Apply(kernels.HorizontalBlur{Radius: 2}, kernels.Apply(kernels.FlowRouting{}, g))
	got, err := s.FetchGrid(PipelineOutput("in", ops))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("mixed-pattern pipeline differs from sequential composition")
	}
}

func TestPlanLayoutForWorkflowValidation(t *testing.T) {
	s, err := NewSystem(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PlanLayoutForWorkflow(nil, testW, 8, testStrip, 1<<20, 0); err == nil {
		t.Error("empty workflow accepted")
	}
	if _, err := s.PlanLayoutForWorkflow([]string{"nope"}, testW, 8, testStrip, 1<<20, 0); err == nil {
		t.Error("unknown op accepted")
	}
}

// TestLoadFeaturesOverridesPattern exercises the file-based Kernel
// Features component in both directions: a conservative over-declaration
// (wider reach than the kernel) is safe and simply sizes a bigger halo,
// while an under-declaration is caught at execution time — the server,
// which knows the kernel's real dependence, refuses to fabricate missing
// data.
func TestLoadFeaturesOverridesPattern(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)

	// Over-declare: claim ±(2W+1) reach for flow-routing. The planner must
	// size the halo for the declared pattern, and execution still works
	// (the kernel reads less than declared).
	over, err := NewSystem(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	n, err := over.LoadFeatures(strings.NewReader(
		"Name:flow-routing\nDependence: -2*imgWidth-1, -1, 1, 2*imgWidth+1\n"))
	if err != nil || n != 1 {
		t.Fatalf("LoadFeatures: n=%d err=%v", n, err)
	}
	lay, err := over.PlanLayout("flow-routing", g.W, grid.ElemSize, testStrip, g.SizeBytes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	gl, ok := lay.(layout.GroupedReplicated)
	if !ok {
		t.Fatalf("planned layout %T", lay)
	}
	// ±(2W+1) elements = 2 strips + 1 element at this geometry → halo 3.
	if gl.Halo != 3 {
		t.Errorf("halo = %d, want 3 for the over-declared reach", gl.Halo)
	}
	if _, err := over.IngestGrid("in", g, lay, testStrip); err != nil {
		t.Fatal(err)
	}
	rep, err := over.Execute(Request{Op: "flow-routing", Input: "in", Output: "out", Scheme: DAS})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Offloaded || rep.Stats.RemoteFetches != 0 {
		t.Errorf("over-declared run: %+v", rep)
	}
	want := kernels.Apply(kernels.FlowRouting{}, g)
	got, err := over.FetchGrid("out")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("over-declared run produced wrong output")
	}

	// Under-declare: claim flow-routing is independent. The predictor then
	// wrongly accepts a round-robin offload, and the server must fail
	// loudly rather than compute with missing data.
	under, err := NewSystem(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := under.LoadFeatures(strings.NewReader("Name:flow-routing\nDependence: 0\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := under.IngestGrid("in", g, layout.NewRoundRobin(under.FS.Servers()), testStrip); err != nil {
		t.Fatal(err)
	}
	if _, err := under.Execute(Request{Op: "flow-routing", Input: "in", Output: "out", Scheme: DAS}); err == nil {
		t.Error("under-declared dependence executed silently")
	}

	// Malformed databases are rejected cleanly.
	if _, err := under.LoadFeatures(strings.NewReader("Dependence: before name\n")); err == nil {
		t.Error("malformed database accepted")
	}
}

// TestPhaseBreakdownExplainsSchemes checks the per-phase decomposition
// tells the paper's story: NAS's critical path is dominated by waiting
// for dependent data; DAS never fetches; TS's cost sits in moving the
// raster between clients and servers.
func TestPhaseBreakdownExplainsSchemes(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	phases := make(map[Scheme]Report)
	for _, scheme := range []Scheme{TS, NAS, DAS} {
		s := newSystem(t, scheme, g)
		rep, err := s.Execute(Request{Op: "flow-routing", Input: "in", Output: "out", Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		phases[scheme] = rep
	}
	nas := phases[NAS].Stats.PhaseMax
	das := phases[DAS].Stats.PhaseMax
	ts := phases[TS].Stats.PhaseMax
	if das.Fetch != 0 {
		t.Errorf("DAS fetch phase %v, want 0 (all dependence local)", das.Fetch)
	}
	if nas.Fetch <= das.LocalRead {
		t.Errorf("NAS fetch phase %v suspiciously small", nas.Fetch)
	}
	if nas.Fetch <= nas.Compute {
		t.Errorf("NAS fetch %v should dominate compute %v at this geometry", nas.Fetch, nas.Compute)
	}
	if ts.Fetch == 0 || ts.Write == 0 {
		t.Errorf("TS must spend time reading (%v) and writing back (%v)", ts.Fetch, ts.Write)
	}
	if das.Compute == 0 || nas.Compute == 0 || ts.Compute == 0 {
		t.Error("every scheme computes")
	}
}

// TestNASLoadsServersMoreThanDAS verifies the paper's load argument: the
// busiest storage server's NIC time under NAS far exceeds DAS's, because
// NAS servers both compute and serve their neighbors' dependent strips.
func TestNASLoadsServersMoreThanDAS(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)

	nasSys := newSystem(t, NAS, g)
	nasRep, err := nasSys.Execute(Request{Op: "flow-routing", Input: "in", Output: "out", Scheme: NAS})
	if err != nil {
		t.Fatal(err)
	}
	dasSys := newSystem(t, DAS, g)
	dasRep, err := dasSys.Execute(Request{Op: "flow-routing", Input: "in", Output: "out", Scheme: DAS})
	if err != nil {
		t.Fatal(err)
	}
	nasEgress := nasRep.ServerLoad.MaxEgress()
	dasEgress := dasRep.ServerLoad.MaxEgress()
	if nasEgress <= 2*dasEgress {
		t.Errorf("NAS max server egress %v not well above DAS %v", nasEgress, dasEgress)
	}
	if nasRep.ServerLoad.MaxDisk() <= dasRep.ServerLoad.MaxDisk() {
		t.Errorf("NAS max server disk %v not above DAS %v (serving amplifies reads)",
			nasRep.ServerLoad.MaxDisk(), dasRep.ServerLoad.MaxDisk())
	}
}
