package core

import (
	"testing"

	"github.com/hpcio/das/internal/cluster"
	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/workload"
)

func collocatedConfig() cluster.Config {
	cfg := cluster.Default()
	cfg.ComputeNodes, cfg.StorageNodes = 4, 4
	cfg.Collocated = true
	return cfg
}

// newCollocatedSystem mirrors newSystem for the second deployment model.
func newCollocatedSystem(t *testing.T, scheme Scheme, g *grid.Grid) *System {
	t.Helper()
	s, err := NewSystem(collocatedConfig())
	if err != nil {
		t.Fatal(err)
	}
	var lay layout.Layout = layout.NewRoundRobin(s.FS.Servers())
	if scheme == DAS {
		lay, err = s.PlanLayout("flow-routing", g.W, grid.ElemSize, testStrip, g.SizeBytes(), 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.IngestGrid("in", g, lay, testStrip); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCollocatedSchemesStayCorrect runs the three schemes on the
// collocated deployment (§III-A's second model): outputs must still match
// the sequential reference exactly.
func TestCollocatedSchemesStayCorrect(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	want := kernels.Apply(kernels.FlowRouting{}, g)
	for _, scheme := range []Scheme{TS, NAS, DAS} {
		s := newCollocatedSystem(t, scheme, g)
		rep, err := s.Execute(Request{Op: "flow-routing", Input: "in", Output: "out", Scheme: scheme})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		got, err := s.FetchGrid("out")
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("%v collocated output differs from reference", scheme)
		}
		if rep.ExecTime <= 0 {
			t.Errorf("%v: no exec time", scheme)
		}
	}
}

// TestCollocationGivesTSFreeLocalReads checks the physical effect of the
// second model: a TS worker collocated with a storage server reads its
// node-local strips over loopback, so total network bytes drop versus the
// separated deployment at equal server count.
func TestCollocationGivesTSFreeLocalReads(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)

	sep := newSystem(t, TS, g) // 4 compute + 4 storage, separated
	sepRep, err := sep.Execute(Request{Op: "flow-routing", Input: "in", Output: "out", Scheme: TS})
	if err != nil {
		t.Fatal(err)
	}
	col := newCollocatedSystem(t, TS, g) // 4 nodes, each both roles
	colRep, err := col.Execute(Request{Op: "flow-routing", Input: "in", Output: "out", Scheme: TS})
	if err != nil {
		t.Fatal(err)
	}
	sepNet := sepRep.Traffic[metrics.ClientToServer] + sepRep.Traffic[metrics.ServerToClient] + sepRep.Traffic[metrics.ServerToServer]
	colNet := colRep.Traffic[metrics.ClientToServer] + colRep.Traffic[metrics.ServerToClient] + colRep.Traffic[metrics.ServerToServer]
	if colNet >= sepNet {
		t.Errorf("collocated TS moved %d network bytes, separated %d — collocation should save the local share", colNet, sepNet)
	}
	// With D=4 servers and contiguous per-worker blocks over round-robin
	// strips, roughly 1/4 of reads are node-local; require a visible dent.
	if float64(colNet) > 0.95*float64(sepNet) {
		t.Errorf("collocation saved under 5%%: %d vs %d", colNet, sepNet)
	}
}

// TestCollocatedDASStillWins: dependence-aware layout helps in either
// deployment model.
func TestCollocatedDASStillWins(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	times := make(map[Scheme]float64)
	for _, scheme := range []Scheme{TS, NAS, DAS} {
		s := newCollocatedSystem(t, scheme, g)
		rep, err := s.Execute(Request{Op: "flow-routing", Input: "in", Output: "out", Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		times[scheme] = rep.ExecTime.Seconds()
	}
	if !(times[DAS] < times[TS] && times[DAS] < times[NAS]) {
		t.Errorf("collocated: DAS=%.4f TS=%.4f NAS=%.4f, want DAS fastest",
			times[DAS], times[TS], times[NAS])
	}
}
