package core

import (
	"errors"
	"fmt"

	"github.com/hpcio/das/internal/cluster"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/pfs"
	"github.com/hpcio/das/internal/pipeline"
	"github.com/hpcio/das/internal/predict"
	"github.com/hpcio/das/internal/sim"
)

// EnsurePipeline deploys the server-side pipeline service on first use
// (lazily, so systems that never submit DAGs — scale sweeps, tenant
// benchmarks — pay nothing for it) and returns it.
func (s *System) EnsurePipeline() *pipeline.Service {
	if s.Pipeline == nil {
		s.Pipeline = pipeline.Deploy(s.FS, s.Registry, s.Combiners, s.Reducers)
		if s.Cache != nil {
			s.Pipeline.SetCache(s.Cache)
		}
	}
	return s.Pipeline
}

// DAGRequest submits an operator DAG for execution.
type DAGRequest struct {
	// DAG is the operator graph; its single sink's raster commits to
	// Output, and a terminal reduce's aggregate returns in the report.
	DAG kernels.DAG
	// Input names an existing raster file. Output is created with the
	// input's geometry and layout (ignored by the per-pass path, which
	// names intermediates itself — see Report.Output for the actual file).
	Input, Output string
	// Scheme selects NAS (unconditional pushdown) or DAS (the prediction
	// core prices the whole DAG first). TS is rejected: traditional
	// storage has no DAG executor — use PerPass with per-stage TS.
	Scheme Scheme
	// PerPass forces the one-kernel-per-pass reference path: each stage
	// runs as a normal Execute writing its full intermediate raster back,
	// then the next stage reads it. Requires a linear chain.
	PerPass bool
	// DisablePrediction makes DAS push down unconditionally (ablation).
	DisablePrediction bool
}

// DAGReport is the outcome of one DAG execution.
type DAGReport struct {
	Scheme Scheme
	DAG    string
	// Pipelined is true when the kernel-DAG pushdown ran (no intermediate
	// writeback); false when the per-pass path served the request.
	Pipelined bool
	// Output is the file holding the DAG's grid output: Request.Output
	// when pipelined, the per-pass naming scheme's final stage otherwise.
	Output string
	// Decision is the prediction core's whole-DAG verdict (DAS pushdown
	// only; advisory for non-chain DAGs, which have no per-pass fallback).
	Decision *predict.PipelineDecision
	ExecTime sim.Time
	// Run carries the pushdown execution's statistics, including the
	// achieved-vs-lower-bound halo accounting.
	Run pipeline.RunResult
	// StageReports carries the per-pass path's per-stage reports.
	StageReports []Report
	// ReduceReport carries the per-pass path's terminal reduction.
	ReduceReport *ReduceReport
	// Reduce is the terminal reduce aggregate, nil when the DAG has none.
	Reduce []float64
	// Degraded notes the pushdown lost strips to faults and fell back to
	// the per-pass path (which can degrade further to normal I/O).
	Degraded       bool
	DegradedReason string
	Traffic        map[metrics.TrafficClass]int64
	ServerLoad     cluster.Utilization
}

// ExecuteDAG runs an operator DAG to completion under the selected
// scheme. The pushdown path executes the whole DAG on the storage
// servers, streaming only halo-boundary bands between stages and
// committing only the final raster; the per-pass path is the classic
// alternative that writes every intermediate back. Both commit
// byte-identical grid output.
func (s *System) ExecuteDAG(req DAGRequest) (DAGReport, error) {
	m, ok := s.FS.Meta(req.Input)
	if !ok {
		return DAGReport{}, fmt.Errorf("core: unknown input %q", req.Input)
	}
	if m.Width == 0 || m.ElemSize == 0 {
		return DAGReport{}, fmt.Errorf("core: input %q lacks raster metadata", req.Input)
	}
	if err := req.DAG.Validate(s.Registry, s.Combiners, s.Reducers); err != nil {
		return DAGReport{}, err
	}
	if req.Scheme != NAS && req.Scheme != DAS {
		return DAGReport{}, fmt.Errorf("core: scheme %v has no DAG executor (use PerPass per-stage schemes)", req.Scheme)
	}
	before := s.Clu.Traffic.Snapshot()
	loadBefore := s.Clu.UtilizationSnapshot()
	rep := DAGReport{Scheme: req.Scheme, DAG: req.DAG.Name}
	var err error
	if req.PerPass {
		err = s.runDAGPerPass(&rep, req)
	} else {
		err = s.runDAGPushdown(&rep, req, m)
	}
	if err != nil {
		return DAGReport{}, err
	}
	after := s.Clu.Traffic.Snapshot()
	rep.Traffic = make(map[metrics.TrafficClass]int64, len(after))
	for c, b := range after {
		rep.Traffic[c] = b - before[c]
	}
	rep.ServerLoad = s.Clu.UtilizationSnapshot().Sub(loadBefore)
	return rep, nil
}

// runDAGPushdown executes the DAG on the storage servers. DAS prices the
// whole DAG first — fetch + exchange + final writeback against both the
// per-pass offload and traditional storage — unless the cluster is
// degraded, where the catch-up machinery (not the healthy-cluster cost
// model) is the relevant authority. A pushdown that fails because strips
// lost their last live copy falls back to the per-pass path for chains.
func (s *System) runDAGPushdown(rep *DAGReport, req DAGRequest, in *pfs.FileMeta) error {
	if req.Scheme == DAS && !s.Clu.AnyStorageDown() {
		pl, err := pipeline.Compile(req.DAG, s.Registry, s.Combiners, s.Reducers,
			in.Width, pipeline.LocalHaloOf(in.Layout, in.Locator()))
		if err != nil {
			return err
		}
		var hitFrac float64
		var p99, latHigh sim.Time
		if s.Cache != nil {
			hitFrac = s.Cache.HitRateEstimate(req.Input)
		}
		if s.Control != nil && s.Cache != nil {
			p99, latHigh = s.Control.ClusterP99(), s.Control.Config().LatencyHigh
		}
		decision, err := predict.DecidePipeline(pl.Spec(), predictParams(in), in.Layout, hitFrac, p99, latHigh)
		if err != nil {
			return err
		}
		rep.Decision = &decision
		if !decision.Offload && !req.DisablePrediction {
			if _, _, chain := chainOps(req.DAG); chain {
				// Rejected: the per-pass path serves the request, each
				// stage running its own accept/reject workflow.
				return s.runDAGPerPass(rep, req)
			}
			// A branching DAG has no per-pass executor; the decision
			// stays advisory and the pushdown runs regardless.
		}
	}
	if _, err := s.FS.Create(req.Output, in.Size, outputLayout(in), pfs.CreateOptions{
		StripSize: in.StripSize, Width: in.Width, Height: in.Height, ElemSize: in.ElemSize,
	}); err != nil {
		return err
	}
	s.EnsurePipeline()
	attemptStart := s.Clu.Eng.Now()
	execTime, err := s.run("dag-"+req.DAG.Name, func(p *sim.Proc) error {
		s.startup(p)
		res, err := pipeline.NewClient(s.FS, s.Clu.ComputeID(0), s.Registry, s.Combiners, s.Reducers).
			Run(p, req.DAG, req.Input, req.Output)
		rep.Run = res
		return err
	})
	if err != nil {
		wasted := s.Clu.Eng.Now() - attemptStart
		if _, _, chain := chainOps(req.DAG); chain && errors.Is(err, pfs.ErrNoLiveCopy) {
			// Strips lost their last live copy mid-pushdown: scrap the
			// partial output and serve per-pass, whose stages degrade
			// further to normal I/O as needed.
			s.FS.Delete(req.Output)
			rep.Run = pipeline.RunResult{}
			rep.Degraded = true
			rep.DegradedReason = err.Error()
			if perr := s.runDAGPerPass(rep, req); perr != nil {
				return perr
			}
			rep.ExecTime += wasted
			return nil
		}
		return err
	}
	rep.Pipelined = true
	rep.Output = req.Output
	rep.Reduce = rep.Run.Reduce
	rep.ExecTime = execTime
	return nil
}

// runDAGPerPass executes a chain DAG one kernel per pass: every stage is
// a normal Execute materializing its full intermediate raster, plus a
// terminal Reduce scan when the chain ends in one. This is the reference
// the pushdown is priced — and byte-compared — against.
func (s *System) runDAGPerPass(rep *DAGReport, req DAGRequest) error {
	ops, reduceOp, ok := chainOps(req.DAG)
	if !ok {
		return fmt.Errorf("core: per-pass execution requires a linear chain, dag %q branches", req.DAG.Name)
	}
	reports, err := s.ExecutePipeline(req.Scheme, req.Input, ops)
	rep.StageReports = reports
	if err != nil {
		return err
	}
	rep.Pipelined = false
	rep.Output = PipelineOutput(req.Input, ops)
	for _, r := range reports {
		rep.ExecTime += r.ExecTime
	}
	if reduceOp != "" {
		rrep, err := s.Reduce(ReduceRequest{Op: reduceOp, Input: rep.Output, Scheme: req.Scheme})
		if err != nil {
			return err
		}
		rep.ReduceReport = &rrep
		rep.Reduce = rrep.Result
		rep.ExecTime += rrep.ExecTime
	}
	return nil
}

// chainOps extracts the kernel sequence (and optional terminal reduce)
// from a DAG when it is a linear chain; ok=false when it branches.
func chainOps(d kernels.DAG) (ops []string, reduce string, ok bool) {
	order, err := d.TopoOrder()
	if err != nil {
		return nil, "", false
	}
	prev := ""
	for i, oi := range order {
		n := d.Nodes[oi]
		switch n.Kind {
		case kernels.KindKernel:
			if reduce != "" {
				return nil, "", false
			}
			if i == 0 {
				if len(n.Parents) != 0 {
					return nil, "", false
				}
			} else if len(n.Parents) != 1 || n.Parents[0] != prev {
				return nil, "", false
			}
			ops = append(ops, n.Op)
		case kernels.KindReduce:
			if i != len(order)-1 || len(n.Parents) != 1 || n.Parents[0] != prev {
				return nil, "", false
			}
			reduce = n.Op
		default:
			return nil, "", false
		}
		prev = n.ID
	}
	if len(ops) == 0 {
		return nil, "", false
	}
	return ops, reduce, true
}
