package core

import (
	"fmt"
	"testing"

	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/workload"
)

// newMultiSystem ingests n rasters ("in0".."in{n-1}") under the layout the
// scheme expects.
func newMultiSystem(t *testing.T, scheme Scheme, n int) (*System, []*workloadGrid) {
	t.Helper()
	s, err := NewSystem(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	grids := make([]*workloadGrid, n)
	for i := 0; i < n; i++ {
		g := workload.Terrain(testW, testH, uint64(100+i))
		var lay layout.Layout = layout.NewRoundRobin(s.FS.Servers())
		if scheme == DAS {
			lay, err = s.PlanLayout("flow-routing", g.W, grid.ElemSize, testStrip, g.SizeBytes(), 0)
			if err != nil {
				t.Fatal(err)
			}
		}
		name := fmt.Sprintf("in%d", i)
		if _, err := s.IngestGrid(name, g, lay, testStrip); err != nil {
			t.Fatal(err)
		}
		grids[i] = &workloadGrid{name: name, g: g}
	}
	return s, grids
}

type workloadGrid struct {
	name string
	g    *grid.Grid
}

func TestConcurrentBatchCorrectness(t *testing.T) {
	const n = 3
	s, grids := newMultiSystem(t, DAS, n)
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{
			Op: "flow-routing", Input: grids[i].name,
			Output: fmt.Sprintf("out%d", i), Scheme: DAS,
		}
	}
	reports, err := s.ExecuteConcurrent(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reports {
		if !rep.Offloaded {
			t.Errorf("job %d not offloaded", i)
		}
		if rep.ExecTime <= 0 {
			t.Errorf("job %d has no exec time", i)
		}
		got, err := s.FetchGrid(fmt.Sprintf("out%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(kernels.Apply(kernels.FlowRouting{}, grids[i].g)) {
			t.Errorf("job %d output differs from reference", i)
		}
	}
	if Makespan(reports) < reports[0].ExecTime {
		t.Error("makespan below a member's exec time")
	}
}

func TestConcurrentContentionSlowsJobs(t *testing.T) {
	// One job alone must be at least as fast as the same job co-running
	// with three others on the same servers.
	solo, grids := newMultiSystem(t, TS, 1)
	soloReports, err := solo.ExecuteConcurrent([]Request{
		{Op: "flow-routing", Input: grids[0].name, Output: "o", Scheme: TS},
	})
	if err != nil {
		t.Fatal(err)
	}
	crowd, cgrids := newMultiSystem(t, TS, 4)
	reqs := make([]Request, 4)
	for i := range reqs {
		reqs[i] = Request{Op: "flow-routing", Input: cgrids[i].name, Output: fmt.Sprintf("o%d", i), Scheme: TS}
	}
	crowdReports, err := crowd.ExecuteConcurrent(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if Makespan(crowdReports) <= soloReports[0].ExecTime {
		t.Errorf("4-way contention makespan %v not above solo %v",
			Makespan(crowdReports), soloReports[0].ExecTime)
	}
}

func TestConcurrentDASFleetBeatsTSAndNAS(t *testing.T) {
	// The multi-tenant payoff: a fleet of DAS jobs finishes before the
	// same fleet under TS, which finishes before it under NAS.
	const n = 4
	makespan := make(map[Scheme]float64)
	for _, scheme := range []Scheme{TS, NAS, DAS} {
		s, grids := newMultiSystem(t, scheme, n)
		reqs := make([]Request, n)
		for i := range reqs {
			reqs[i] = Request{Op: "flow-routing", Input: grids[i].name,
				Output: fmt.Sprintf("out%d", i), Scheme: scheme}
		}
		reports, err := s.ExecuteConcurrent(reqs)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		makespan[scheme] = Makespan(reports).Seconds()
	}
	if !(makespan[DAS] < makespan[TS] && makespan[TS] < makespan[NAS]) {
		t.Errorf("fleet makespans: DAS=%.4f TS=%.4f NAS=%.4f, want DAS < TS < NAS",
			makespan[DAS], makespan[TS], makespan[NAS])
	}
}

func TestConcurrentValidation(t *testing.T) {
	s, grids := newMultiSystem(t, TS, 1)
	if _, err := s.ExecuteConcurrent(nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := s.ExecuteConcurrent([]Request{
		{Op: "flow-routing", Input: "nope", Output: "o", Scheme: TS},
	}); err == nil {
		t.Error("unknown input accepted")
	}
	if _, err := s.ExecuteConcurrent([]Request{
		{Op: "flow-routing", Input: grids[0].name, Output: "o", Scheme: DAS, Reconfigure: true},
	}); err == nil {
		t.Error("reconfiguration in a batch accepted")
	}
}
