package core

import (
	"fmt"

	"github.com/hpcio/das/internal/active"
	"github.com/hpcio/das/internal/predict"
	"github.com/hpcio/das/internal/sim"
)

// ExecuteConcurrent runs several operations simultaneously on the shared
// platform — the multi-application situation an HEC I/O system actually
// faces. All jobs start at the same instant; each report's ExecTime is
// that job's own completion time, so the slowest report is the makespan.
//
// Because the operations share NICs, disks, and servers, per-operation
// traffic cannot be attributed: the Traffic and ServerLoad fields of the
// returned reports are nil/zero. DAS requests follow the normal workflow
// (pattern → prediction → accept/reject) but may not request
// reconfiguration here: migrating a file while other jobs run would
// serialize the batch and belongs in a separate planning step.
func (s *System) ExecuteConcurrent(reqs []Request) ([]Report, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("core: empty request batch")
	}
	reports := make([]Report, len(reqs))
	jobs := make([]func(p *sim.Proc) error, len(reqs))

	for i, req := range reqs {
		i, req := i, req
		in, ok := s.FS.Meta(req.Input)
		if !ok {
			return nil, fmt.Errorf("core: unknown input %q", req.Input)
		}
		if in.Width == 0 || in.ElemSize == 0 {
			return nil, fmt.Errorf("core: input %q lacks raster metadata", req.Input)
		}
		if _, ok := s.Registry.Lookup(req.Op); !ok {
			return nil, fmt.Errorf("core: unknown operator %q", req.Op)
		}
		if req.Reconfigure {
			return nil, fmt.Errorf("core: reconfiguration is not supported in concurrent batches")
		}
		reports[i] = Report{Scheme: req.Scheme, Op: req.Op}

		var job func(p *sim.Proc) error
		var err error
		switch req.Scheme {
		case TS:
			job, err = s.tsJob(&reports[i], req, in)
		case NAS:
			reports[i].Offloaded = true
			job, err = s.offloadJob(&reports[i], req, in, req.NASFetchMode)
		case DAS:
			pat, ok := s.Features.Lookup(req.Op)
			if !ok {
				return nil, fmt.Errorf("core: no kernel features for %q", req.Op)
			}
			decision, derr := predict.Decide(pat, predictParams(in), in.Layout)
			if derr != nil {
				return nil, derr
			}
			reports[i].Decision = &decision
			if decision.Offload || req.DisablePrediction {
				mode := active.LocalOnly
				if !decision.Analysis.LocalByLayout {
					mode = active.FetchWholeStrips
				}
				reports[i].Offloaded = true
				job, err = s.offloadJob(&reports[i], req, in, mode)
			} else {
				job, err = s.tsJob(&reports[i], req, in)
			}
		default:
			return nil, fmt.Errorf("core: unknown scheme %v", req.Scheme)
		}
		if err != nil {
			return nil, err
		}
		jobs[i] = job
	}

	_, err := s.run("concurrent-batch", func(p *sim.Proc) error {
		start := p.Now()
		sigs := make([]*sim.Signal[error], len(jobs))
		for i, job := range jobs {
			i, job := i, job
			sigs[i] = sim.NewSignal[error](s.Clu.Eng, fmt.Sprintf("batch-job-%d", i))
			p.Spawn(fmt.Sprintf("batch-job-%d-%s", i, reqs[i].Op), func(c *sim.Proc) {
				err := job(c)
				reports[i].ExecTime = c.Now() - start
				sigs[i].Fire(err)
			})
		}
		for i, e := range sim.WaitAll(p, sigs) {
			if e != nil {
				return fmt.Errorf("job %d (%s): %w", i, reqs[i].Op, e)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return reports, nil
}

// Makespan returns the completion time of the slowest report in a batch.
func Makespan(reports []Report) sim.Time {
	var m sim.Time
	for _, r := range reports {
		if r.ExecTime > m {
			m = r.ExecTime
		}
	}
	return m
}
