package core

import (
	"fmt"
	"testing"

	"github.com/hpcio/das/internal/active"
	"github.com/hpcio/das/internal/cluster"
	"github.com/hpcio/das/internal/features"
	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/predict"
	"github.com/hpcio/das/internal/workload"
)

// Test geometry: width 64, one row per 512-byte strip, 32 rows.
const (
	testW     = 64
	testH     = 32
	testStrip = int64(testW * grid.ElemSize)
)

func smallConfig() cluster.Config {
	cfg := cluster.Default()
	cfg.ComputeNodes, cfg.StorageNodes = 4, 4
	return cfg
}

// newSystem builds a platform and ingests the test terrain under the
// layout appropriate for the scheme: round-robin for TS and NAS, the
// DAS-planned layout for DAS.
func newSystem(t *testing.T, scheme Scheme, g *grid.Grid) *System {
	t.Helper()
	s, err := NewSystem(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var lay layout.Layout = layout.NewRoundRobin(s.FS.Servers())
	if scheme == DAS {
		lay, err = s.PlanLayout("flow-routing", g.W, grid.ElemSize, testStrip, g.SizeBytes(), 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.IngestGrid("in", g, lay, testStrip); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSchemesProduceIdenticalOutputs is the headline functional invariant:
// all three schemes compute exactly the sequential reference.
func TestSchemesProduceIdenticalOutputs(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	for _, op := range []string{"flow-routing", "flow-accumulation", "gaussian-filter", "median-filter", "surface-slope", "diffusion"} {
		op := op
		t.Run(op, func(t *testing.T) {
			k, _ := kernels.Default().Lookup(op)
			want := kernels.Apply(k, g)
			for _, scheme := range []Scheme{TS, NAS, DAS} {
				s := newSystem(t, scheme, g)
				rep, err := s.Execute(Request{Op: op, Input: "in", Output: "out", Scheme: scheme})
				if err != nil {
					t.Fatalf("%v: %v", scheme, err)
				}
				got, err := s.FetchGrid("out")
				if err != nil {
					t.Fatalf("%v: %v", scheme, err)
				}
				if !got.Equal(want) {
					t.Errorf("%v output differs from sequential reference (max diff %g)",
						scheme, got.MaxAbsDiff(want))
				}
				if rep.ExecTime <= 0 {
					t.Errorf("%v reported non-positive exec time", scheme)
				}
			}
		})
	}
}

func TestTSNeverOffloads(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	s := newSystem(t, TS, g)
	rep, err := s.Execute(Request{Op: "flow-routing", Input: "in", Output: "out", Scheme: TS})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offloaded {
		t.Error("TS offloaded")
	}
	// TS moves the input over client links and no dependent strips
	// between servers.
	if rep.Traffic[metrics.ServerToClient] < g.SizeBytes() {
		t.Errorf("TS read only %d bytes to clients, want ≥ %d",
			rep.Traffic[metrics.ServerToClient], g.SizeBytes())
	}
	if rep.Traffic[metrics.ServerToServer] != 0 {
		t.Errorf("TS moved %d bytes between servers", rep.Traffic[metrics.ServerToServer])
	}
}

func TestNASMovesDependentStripsBetweenServers(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	s := newSystem(t, NAS, g)
	rep, err := s.Execute(Request{Op: "flow-routing", Input: "in", Output: "out", Scheme: NAS})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Offloaded {
		t.Error("NAS did not offload")
	}
	if rep.Stats.RemoteBytes == 0 {
		t.Error("NAS fetched nothing despite round-robin dependence")
	}
	// The input never crosses to the clients.
	if rep.Traffic[metrics.ServerToClient] > g.SizeBytes()/4 {
		t.Errorf("NAS moved %d bytes to clients", rep.Traffic[metrics.ServerToClient])
	}
}

// TestPredictedTrafficMatchesMeasured ties the prediction core to the
// implementation: the strip-level fetch bytes Analyze computes for a
// round-robin placement must equal, byte for byte, what the NAS servers
// actually transfer for dependent data.
func TestPredictedTrafficMatchesMeasured(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	s := newSystem(t, NAS, g)
	m, _ := s.FS.Meta("in")
	pat, _ := s.Features.Lookup("flow-routing")
	analysis, err := predict.Analyze(pat, predict.Params{
		ElemSize: m.ElemSize, StripSize: m.StripSize, FileSize: m.Size,
		Width: m.Width, OutputFactor: 1,
	}, m.Layout)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Execute(Request{Op: "flow-routing", Input: "in", Output: "out", Scheme: NAS})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.RemoteBytes != analysis.StripFetchBytes {
		t.Errorf("measured NAS fetch bytes %d != predicted %d",
			rep.Stats.RemoteBytes, analysis.StripFetchBytes)
	}
	if rep.Stats.RemoteFetches != analysis.StripFetches {
		t.Errorf("measured fetches %d != predicted %d",
			rep.Stats.RemoteFetches, analysis.StripFetches)
	}
}

func TestDASOffloadsLocallyAndBeatsBothSchemes(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	times := make(map[Scheme]float64)
	for _, scheme := range []Scheme{TS, NAS, DAS} {
		s := newSystem(t, scheme, g)
		rep, err := s.Execute(Request{Op: "flow-routing", Input: "in", Output: "out", Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		times[scheme] = rep.ExecTime.Seconds()
		if scheme == DAS {
			if !rep.Offloaded {
				t.Error("DAS rejected a fully local stencil")
			}
			if rep.Decision == nil || !rep.Decision.Analysis.LocalByLayout {
				t.Errorf("DAS decision: %+v", rep.Decision)
			}
			if rep.Stats.RemoteFetches != 0 {
				t.Errorf("DAS fetched %d strips remotely", rep.Stats.RemoteFetches)
			}
		}
	}
	if !(times[DAS] < times[TS] && times[TS] < times[NAS]) {
		t.Errorf("expected DAS < TS < NAS, got DAS=%.4fs TS=%.4fs NAS=%.4fs",
			times[DAS], times[TS], times[NAS])
	}
}

func TestDASRejectsHostilePatternAndFallsBackToTS(t *testing.T) {
	// Register a synthetic kernel that touches six distinct strips per
	// element (strides of 1, 2, and 3 strips): under round-robin with no
	// reconfiguration allowed, offloading moves ~6× the file size between
	// servers versus 2× for normal I/O, and the prediction core must
	// reject it — the workflow's "Reject the request" branch.
	g := workload.Ramp(testW, testH)
	s, err := NewSystem(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	hostile := kernels.ScatterKernel{OpName: "hostile", Strides: []int64{64, 128, 192}}
	s.Registry.Register(hostile)
	s.Features = s.Registry.Features()
	if _, err := s.IngestGrid("in", g, layout.NewRoundRobin(s.FS.Servers()), testStrip); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Execute(Request{Op: "hostile", Input: "in", Output: "out", Scheme: DAS})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offloaded {
		t.Fatalf("DAS offloaded a hostile pattern: %+v", rep.Decision)
	}
	if rep.Decision == nil || rep.Decision.Offload {
		t.Errorf("decision: %+v", rep.Decision)
	}
	// The fallback path must still produce the right answer.
	want := kernels.Apply(hostile, g)
	got, err := s.FetchGrid("out")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("rejected request served incorrectly")
	}
}

func TestDASReconfigureMigratesThenOffloads(t *testing.T) {
	// Input ingested round-robin (as a foreign writer would); DAS with
	// Reconfigure migrates it to the improved layout and then offloads.
	g := workload.Terrain(testW, testH, 5)
	s, err := NewSystem(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.IngestGrid("in", g, layout.NewRoundRobin(s.FS.Servers()), testStrip); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Execute(Request{Op: "gaussian-filter", Input: "in", Output: "out", Scheme: DAS, Reconfigure: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reconfigured || rep.ReconfigTime <= 0 {
		t.Errorf("expected reconfiguration: %+v", rep)
	}
	if !rep.Offloaded || rep.Stats.RemoteFetches != 0 {
		t.Errorf("expected local offload after reconfiguration: %+v", rep)
	}
	want := kernels.Apply(kernels.Gaussian{}, g)
	got, err := s.FetchGrid("out")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("output differs from reference after reconfiguration")
	}
}

func TestDASWithoutReconfigureRejectsMisplacedInput(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	s, err := NewSystem(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.IngestGrid("in", g, layout.NewRoundRobin(s.FS.Servers()), testStrip); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Execute(Request{Op: "flow-routing", Input: "in", Output: "out", Scheme: DAS})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offloaded {
		t.Error("DAS offloaded over a hostile round-robin placement without reconfiguring")
	}
	if rep.Reconfigured {
		t.Error("reconfigured without permission")
	}
}

func TestPipelineSuccessiveOperationsStayLocal(t *testing.T) {
	// The paper's motivating pipeline: flow-accumulation consumes
	// flow-routing's intermediate image. Because DAS writes the output
	// under the same improved layout, the successor offloads with zero
	// remote fetches and no further reconfiguration.
	g := workload.Terrain(testW, testH, 5)
	s := newSystem(t, DAS, g)
	r1, err := s.Execute(Request{Op: "flow-routing", Input: "in", Output: "dirs", Scheme: DAS})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Execute(Request{Op: "flow-accumulation", Input: "dirs", Output: "acc", Scheme: DAS})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Offloaded || !r2.Offloaded {
		t.Error("pipeline stages not offloaded")
	}
	if r2.Stats.RemoteFetches != 0 || r2.Reconfigured {
		t.Errorf("successor was not free: %+v", r2)
	}
	want := kernels.Apply(kernels.FlowAccumulation{}, kernels.Apply(kernels.FlowRouting{}, g))
	got, err := s.FetchGrid("acc")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("pipeline output differs from reference")
	}
}

func TestDisablePredictionForcesOffload(t *testing.T) {
	g := workload.Ramp(testW, testH)
	s, err := NewSystem(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	hostile := kernels.ScatterKernel{OpName: "hostile", Strides: []int64{64, 128, 192}}
	s.Registry.Register(hostile)
	s.Features = s.Registry.Features()
	if _, err := s.IngestGrid("in", g, layout.NewRoundRobin(s.FS.Servers()), testStrip); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Execute(Request{
		Op: "hostile", Input: "in", Output: "out", Scheme: DAS, DisablePrediction: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Offloaded {
		t.Error("prediction-disabled DAS did not offload")
	}
	if rep.Stats.RemoteBytes == 0 {
		t.Error("forced offload should have paid remote fetches")
	}
	want := kernels.Apply(hostile, g)
	got, err := s.FetchGrid("out")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("forced offload produced wrong output")
	}
}

func TestExecuteValidation(t *testing.T) {
	s, err := NewSystem(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(Request{Op: "flow-routing", Input: "nope", Output: "out", Scheme: TS}); err == nil {
		t.Error("unknown input accepted")
	}
	g := workload.Ramp(testW, testH)
	if _, err := s.IngestGrid("in", g, layout.NewRoundRobin(s.FS.Servers()), testStrip); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(Request{Op: "nope", Input: "in", Output: "out", Scheme: TS}); err == nil {
		t.Error("unknown operator accepted")
	}
	if _, err := s.Execute(Request{Op: "flow-routing", Input: "in", Output: "out", Scheme: Scheme(42)}); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestSchemeAndModeStrings(t *testing.T) {
	if TS.String() != "TS" || NAS.String() != "NAS" || DAS.String() != "DAS" {
		t.Error("scheme names wrong")
	}
	if Scheme(9).String() == "" {
		t.Error("unknown scheme has empty name")
	}
	_ = active.FetchWholeStrips
	_ = features.Pattern{}
	_ = fmt.Sprintf
}

func TestExecutionIsDeterministic(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	run := func() (float64, int64) {
		s := newSystem(t, DAS, g)
		rep, err := s.Execute(Request{Op: "flow-routing", Input: "in", Output: "out", Scheme: DAS})
		if err != nil {
			t.Fatal(err)
		}
		return rep.ExecTime.Seconds(), rep.Traffic[metrics.ServerToServer]
	}
	t1, b1 := run()
	t2, b2 := run()
	if t1 != t2 || b1 != b2 {
		t.Errorf("nondeterministic execution: (%v,%d) vs (%v,%d)", t1, b1, t2, b2)
	}
}
