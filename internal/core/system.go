// Package core is the Dynamic Active Storage engine: it ties the
// substrates together and implements the workflow of the paper's Fig. 3 —
// look up the operator's dependence pattern, obtain the file's
// distribution, plan an improved distribution when the workload announces
// successive operations, predict the bandwidth cost, and accept the
// request as active storage or reject it back to normal I/O.
//
// It also provides the three evaluation schemes of §IV-A1 as runnable
// configurations over the same simulated platform:
//
//   - TS (Traditional Storage): servers serve normal I/O, the analysis
//     kernels execute on the compute nodes.
//   - NAS (Normal Active Storage): kernels execute on the storage nodes
//     over the default round-robin distribution, fetching dependent strips
//     from neighbor servers.
//   - DAS (Dynamic Active Storage): the prediction core decides, and the
//     improved dependence-aware distribution makes dependence local.
package core

import (
	"fmt"
	"io"

	"github.com/hpcio/das/internal/active"
	"github.com/hpcio/das/internal/cache"
	"github.com/hpcio/das/internal/cluster"
	"github.com/hpcio/das/internal/control"
	"github.com/hpcio/das/internal/features"
	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/pfs"
	"github.com/hpcio/das/internal/pipeline"
	"github.com/hpcio/das/internal/predict"
	"github.com/hpcio/das/internal/restripe"
	"github.com/hpcio/das/internal/sim"
)

// Scheme selects one of the paper's three evaluation configurations.
type Scheme int

const (
	// TS is Traditional Storage: data moves to the compute nodes.
	TS Scheme = iota
	// NAS is Normal Active Storage: blind offloading over round-robin.
	NAS
	// DAS is Dynamic Active Storage: predicted offloading over the
	// improved distribution.
	DAS
)

// String names the scheme as the paper abbreviates it.
func (s Scheme) String() string {
	switch s {
	case TS:
		return "TS"
	case NAS:
		return "NAS"
	case DAS:
		return "DAS"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// DefaultMaxOverhead is the replication capacity budget (2·halo/r) the DAS
// layout planner targets: with the paper's halo of one strip this yields
// the "2/r" overhead of §III-D at r = 4.
const DefaultMaxOverhead = 0.5

// System is one deployed platform: cluster, parallel file system, active
// storage service, kernel and feature registries.
type System struct {
	Clu       *cluster.Cluster
	FS        *pfs.FileSystem
	AS        *active.Service
	Registry  *kernels.Registry
	Reducers  *kernels.ReducerRegistry
	Combiners *kernels.CombinerRegistry
	Features  *features.Registry
	// Pipeline is the server-side operator-pipeline service, deployed
	// lazily on the first ExecuteDAG (see EnsurePipeline).
	Pipeline *pipeline.Service
	// Cache is the halo-strip cache subsystem, nil until EnableCache.
	Cache *cache.Manager
	// Restripe is the online restriping subsystem, nil until
	// EnableRestripe.
	Restripe *restripe.Migrator
	// Control is the unified p99 latency controller, nil until
	// EnableControl.
	Control *control.Controller
}

// EnableCache deploys the halo-strip cache subsystem: one byte-budgeted
// cache per storage server consulted by dependent fetches, the pfs write
// path invalidating cached strips, the tuning manager sampling on the DES
// clock, and the DAS accept/reject step discounting dependent bytes by
// the observed hit rate. Server restarts purge via the fault layer's
// incarnation counters.
func (s *System) EnableCache(cfg cache.Config) error {
	mgr, err := cache.NewManager(s.Clu.Eng, s.FS.Servers(), cfg,
		func(srv int) uint64 { return s.Clu.Faults.Incarnation(s.Clu.StorageID(srv)) },
		s.Clu.CacheStats)
	if err != nil {
		return err
	}
	s.Cache = mgr
	if s.Restripe != nil {
		// The migrator already owns the pfs invalidation hook; chain the
		// cache behind it so both subsystems see every strip mutation.
		s.Restripe.SetInner(mgr)
	} else {
		s.FS.SetInvalidator(mgr)
	}
	s.AS.SetCache(mgr)
	if s.Pipeline != nil {
		s.Pipeline.SetCache(mgr)
	}
	mgr.Start()
	return nil
}

// EnableRestripe deploys the online restriping subsystem: the migrator
// watches every Execute's offload decision and dependent-halo traffic,
// plans grouped-replicated migrations within the overhead budget, and
// copies strips in the background on the DES clock. When the cache
// subsystem is also enabled (in either order), strip invalidations flow
// through the migrator to the cache, so moved strips never serve stale
// cached bytes.
func (s *System) EnableRestripe(cfg restripe.Config) error {
	mgr, err := restripe.NewMigrator(s.Clu, s.FS, cfg, s.Clu.RestripeStats)
	if err != nil {
		return err
	}
	if s.Cache != nil {
		mgr.SetInner(s.Cache)
	}
	s.Restripe = mgr
	s.FS.SetInvalidator(mgr)
	mgr.Start()
	return nil
}

// EnableControl deploys the unified p99 latency controller: one control
// plane owning every adaptive trigger in the system. It subscribes the
// pfs client RPC latencies (migration traffic tagged and excluded), takes
// over the cache manager's promote/demote trigger when the cache is
// enabled (percentile thresholds with hysteresis and streaks instead of
// the old mean window), and gates + watches the restripe migrator when
// restriping is enabled (admission only on a congested tail, cool-down
// after any strip flip so the two loops can no longer duel). Enable it
// AFTER the subsystems it coordinates; subsystems enabled later are not
// adopted retroactively.
func (s *System) EnableControl(cfg control.Config) error {
	ctl, err := control.New(s.Clu.Eng, s.FS.Servers(), cfg)
	if err != nil {
		return err
	}
	s.Control = ctl
	s.FS.SetLatencyObserver(ctl)
	if s.Cache != nil {
		ctl.AttachCache(s.Cache)
	}
	if s.Restripe != nil {
		s.Restripe.SetWatcher(ctl)
		s.Restripe.SetAdmission(ctl.AllowRestripe)
	}
	ctl.Start()
	return nil
}

// DrainRestripe runs the engine until every active migration completes or
// the timeout elapses, returning whether the migrator converged and the
// simulated time the drain consumed. A system without the restripe
// subsystem converges trivially.
func (s *System) DrainRestripe(timeout sim.Time) (bool, sim.Time, error) {
	if s.Restripe == nil || s.Restripe.ActiveCount() == 0 {
		return true, 0, nil
	}
	converged := false
	t, err := s.run("restripe-drain", func(p *sim.Proc) error {
		converged = s.Restripe.Drain(p, timeout)
		return nil
	})
	return converged, t, err
}

// NewSystem builds a platform with the default kernel and reducer
// registries deployed.
func NewSystem(cfg cluster.Config) (*System, error) {
	clu, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	fs := pfs.New(clu)
	reg := kernels.Default()
	reducers := kernels.DefaultReducers()
	return &System{
		Clu:       clu,
		FS:        fs,
		AS:        active.Deploy(fs, reg, reducers),
		Registry:  reg,
		Reducers:  reducers,
		Combiners: kernels.DefaultCombiners(),
		Features:  reg.Features(),
	}, nil
}

// Close tears the platform down: every server daemon's goroutine exits
// and the system's memory becomes collectible. Required when creating
// many systems in one process (sweeps, benchmarks); a closed system must
// not be used again.
func (s *System) Close() {
	s.Clu.Eng.Shutdown()
}

// RunProc executes fn as a named workload process and drives the engine
// until all non-daemon work completes, returning the elapsed simulated
// time. It is the exported door for callers (tools, tests) that need raw
// file-system access against the deployed platform — client writes racing
// a live migration, custom read probes — without reaching into the engine.
func (s *System) RunProc(name string, fn func(p *sim.Proc) error) (sim.Time, error) {
	return s.run(name, fn)
}

// run executes fn as a workload process and drives the engine until all
// non-daemon work completes, returning the elapsed simulated time.
func (s *System) run(name string, fn func(p *sim.Proc) error) (sim.Time, error) {
	start := s.Clu.Eng.Now()
	var inner error
	s.Clu.Eng.Spawn(name, func(p *sim.Proc) { inner = fn(p) })
	if err := s.Clu.Eng.Run(); err != nil {
		return 0, err
	}
	if inner != nil {
		return 0, inner
	}
	return s.Clu.Eng.Now() - start, nil
}

// predictParams derives prediction parameters from a raster file's
// metadata.
func predictParams(m *pfs.FileMeta) predict.Params {
	return predict.Params{
		ElemSize:     m.ElemSize,
		StripSize:    m.StripSize,
		FileSize:     m.Size,
		Width:        m.Width,
		OutputFactor: 1,
	}
}

// DecideDegraded runs the fault-aware accept/reject decision for a raster
// file against the cluster's current fault state: strips are costed at
// their first live holder and any strip without a live copy vetoes
// offloading.
func (s *System) DecideDegraded(pat features.Pattern, m *pfs.FileMeta) (predict.Decision, error) {
	return predict.DecideDegraded(pat, predictParams(m), m.Layout, s.Clu.ServerDown)
}

// LoadFeatures merges kernel-features records (§III-B, text format) into
// the system's feature registry, overriding derived patterns for
// operators that appear in the stream. This is the file-based Kernel
// Features component of the paper's architecture: operators keep their
// executable kernels, but the dependence description the prediction core
// consults comes from the database.
func (s *System) LoadFeatures(r io.Reader) (int, error) {
	pats, err := features.Parse(r)
	if err != nil {
		return 0, err
	}
	for _, p := range pats {
		if err := s.Features.Register(p); err != nil {
			return 0, err
		}
	}
	return len(pats), nil
}

// PlanLayout returns the data distribution DAS would arrange for an
// operator over a raster of the given geometry: the improved grouped-
// replicated distribution when the operator has dependence, round-robin
// otherwise.
func (s *System) PlanLayout(op string, width int, elemSize, stripSize, fileSize int64, maxOverhead float64) (layout.Layout, error) {
	pat, ok := s.Features.Lookup(op)
	if !ok {
		return nil, fmt.Errorf("core: no kernel features for %q", op)
	}
	if maxOverhead == 0 {
		maxOverhead = DefaultMaxOverhead
	}
	p := predict.Params{ElemSize: elemSize, StripSize: stripSize, FileSize: fileSize, Width: width, OutputFactor: 1}
	lay, ok, err := predict.RecommendLayout(pat, p, s.FS.Servers(), maxOverhead)
	if err != nil {
		return nil, err
	}
	if !ok {
		return layout.NewRoundRobin(s.FS.Servers()), nil
	}
	return lay, nil
}

// PlanLayoutForWorkflow returns one data distribution serving every
// operator in a workflow over the same raster: the halo is sized for the
// union of their dependence patterns, so each stage offloads with local
// dependence. This generalizes the paper's successive-operation argument
// to stages with different patterns.
func (s *System) PlanLayoutForWorkflow(ops []string, width int, elemSize, stripSize, fileSize int64, maxOverhead float64) (layout.Layout, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("core: empty workflow")
	}
	pats := make([]features.Pattern, 0, len(ops))
	for _, op := range ops {
		pat, ok := s.Features.Lookup(op)
		if !ok {
			return nil, fmt.Errorf("core: no kernel features for %q", op)
		}
		pats = append(pats, pat)
	}
	merged := features.Union("workflow", pats...)
	if maxOverhead == 0 {
		maxOverhead = DefaultMaxOverhead
	}
	p := predict.Params{ElemSize: elemSize, StripSize: stripSize, FileSize: fileSize, Width: width, OutputFactor: 1}
	lay, ok, err := predict.RecommendLayout(merged, p, s.FS.Servers(), maxOverhead)
	if err != nil {
		return nil, err
	}
	if !ok {
		return layout.NewRoundRobin(s.FS.Servers()), nil
	}
	return lay, nil
}

// IngestGrid creates a raster file under the given layout and writes the
// grid's bytes from compute node 0. It returns the simulated ingest time,
// which experiment reports keep separate from operation time.
func (s *System) IngestGrid(name string, g *grid.Grid, lay layout.Layout, stripSize int64) (sim.Time, error) {
	if stripSize == 0 {
		stripSize = pfs.DefaultStripSize
	}
	_, err := s.FS.Create(name, g.SizeBytes(), lay, pfs.CreateOptions{
		StripSize: stripSize,
		Width:     g.W,
		Height:    g.H,
		ElemSize:  grid.ElemSize,
	})
	if err != nil {
		return 0, err
	}
	data := g.Bytes()
	return s.run("ingest-"+name, func(p *sim.Proc) error {
		return s.FS.NewClient(s.Clu.ComputeID(0)).WriteAll(p, name, data)
	})
}

// FetchGrid reads a raster file back into memory (for verification).
func (s *System) FetchGrid(name string) (*grid.Grid, error) {
	m, ok := s.FS.Meta(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown file %q", name)
	}
	var data []byte
	_, err := s.run("fetch-"+name, func(p *sim.Proc) error {
		var err error
		data, err = s.FS.NewClient(s.Clu.ComputeID(0)).ReadAll(p, name)
		return err
	})
	if err != nil {
		return nil, err
	}
	return grid.FromBytes(m.Width, m.Height, data)
}

// Request describes one operation submission.
type Request struct {
	// Op is the operator name (must exist in the kernel registry).
	Op string
	// Input names an existing raster file; Output will be created with the
	// input's geometry and layout.
	Input, Output string
	// Scheme selects TS, NAS, or DAS.
	Scheme Scheme
	// NASFetchMode selects the NAS dependent-data transport
	// (FetchWholeStrips by default; FetchRows for the optimized ablation).
	NASFetchMode active.FetchMode
	// MaxOverhead caps the DAS replication overhead (0 → default 0.5).
	MaxOverhead float64
	// Reconfigure lets DAS migrate the input to the planned layout before
	// executing (the workflow's "Reconfig Parallel File System" box). When
	// false, DAS requires the input to already be laid out appropriately
	// (the successive-operation fast path) and otherwise rejects.
	Reconfigure bool
	// DisablePrediction makes DAS skip the accept/reject step and offload
	// unconditionally (ablation).
	DisablePrediction bool
}

// Report is the outcome of one operation.
type Report struct {
	Scheme    Scheme
	Op        string
	Offloaded bool
	// Decision is the prediction core's verdict (DAS only).
	Decision *predict.Decision
	// Reconfigured notes that DAS migrated the input layout, and
	// ReconfigTime is what the migration cost (included in ExecTime).
	Reconfigured bool
	ReconfigTime sim.Time
	ExecTime     sim.Time
	Stats        active.ExecStats
	// Degraded notes that storage-server faults forced the request off its
	// preferred path — an offload that fell back to normal I/O, or a DAS
	// decision vetoed because strips had no live copy. DegradedReason says
	// why; ExecTime includes any time the abandoned attempt consumed.
	Degraded       bool
	DegradedReason string
	// Traffic holds the byte deltas this operation moved, per class.
	Traffic map[metrics.TrafficClass]int64
	// ServerLoad holds the per-storage-server resource busy time this
	// operation added — the load the paper says blind offloading inflates.
	ServerLoad cluster.Utilization
}

// Execute runs one operation to completion and reports what happened.
func (s *System) Execute(req Request) (Report, error) {
	m, ok := s.FS.Meta(req.Input)
	if !ok {
		return Report{}, fmt.Errorf("core: unknown input %q", req.Input)
	}
	if m.Width == 0 || m.ElemSize == 0 {
		return Report{}, fmt.Errorf("core: input %q lacks raster metadata", req.Input)
	}
	if _, ok := s.Registry.Lookup(req.Op); !ok {
		return Report{}, fmt.Errorf("core: unknown operator %q", req.Op)
	}
	before := s.Clu.Traffic.Snapshot()
	loadBefore := s.Clu.UtilizationSnapshot()
	rep := Report{Scheme: req.Scheme, Op: req.Op}
	var err error
	switch req.Scheme {
	case TS:
		err = s.runTS(&rep, req, m)
	case NAS:
		err = s.runNAS(&rep, req, m)
	case DAS:
		err = s.runDAS(&rep, req, m)
	default:
		err = fmt.Errorf("core: unknown scheme %v", req.Scheme)
	}
	if err != nil {
		return Report{}, err
	}
	after := s.Clu.Traffic.Snapshot()
	rep.Traffic = make(map[metrics.TrafficClass]int64, len(after))
	for c, b := range after {
		rep.Traffic[c] = b - before[c]
	}
	rep.ServerLoad = s.Clu.UtilizationSnapshot().Sub(loadBefore)
	s.observeRestripe(req, m, &rep)
	return rep, nil
}

// observeRestripe feeds the finished operation's dependent-traffic
// evidence to the online restriper: the halo bytes an offload actually
// fetched between servers, or — when the predictor rejected the offload —
// the dependent bytes the analysis says an offload would have moved. The
// migrator accumulates the evidence per input file and plans a migration
// once it crosses the trigger threshold.
func (s *System) observeRestripe(req Request, m *pfs.FileMeta, rep *Report) {
	if s.Restripe == nil {
		return
	}
	pat, ok := s.Features.Lookup(req.Op)
	if !ok {
		return
	}
	observed := rep.Stats.RemoteBytes
	if !rep.Offloaded && rep.Decision != nil && !rep.Decision.Offload {
		observed += rep.Decision.Analysis.StripFetchBytes
	}
	s.Restripe.Observe(req.Input, pat, predictParams(m), observed)
}

// ExecutePipeline runs a sequence of operators, each consuming the
// previous stage's output — the paper's successive-operation workload
// (flow-routing → flow-accumulation). Intermediates are named
// "<input>.<op>.<stage>"; the final output carries the last stage's name.
// Under DAS every intermediate inherits the improved layout, so
// successors offload without reconfiguration or dependent-data movement.
func (s *System) ExecutePipeline(scheme Scheme, input string, ops []string) ([]Report, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("core: empty pipeline")
	}
	reports := make([]Report, 0, len(ops))
	cur := input
	for i, op := range ops {
		out := fmt.Sprintf("%s.%s.%d", input, op, i+1)
		rep, err := s.Execute(Request{Op: op, Input: cur, Output: out, Scheme: scheme})
		if err != nil {
			return reports, fmt.Errorf("core: pipeline stage %d (%s): %w", i+1, op, err)
		}
		reports = append(reports, rep)
		cur = out
	}
	return reports, nil
}

// PipelineOutput returns the file name ExecutePipeline gave its final
// stage's output.
func PipelineOutput(input string, ops []string) string {
	return fmt.Sprintf("%s.%s.%d", input, ops[len(ops)-1], len(ops))
}
