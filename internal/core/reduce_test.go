package core

import (
	"math"
	"testing"

	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/workload"
)

func TestReduceSchemesAgreeWithSequential(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	want := kernels.ReduceAll(kernels.Stats{}, g)
	for _, scheme := range []Scheme{TS, NAS, DAS} {
		s := newSystem(t, scheme, g)
		rep, err := s.Reduce(ReduceRequest{Op: "stats", Input: "in", Scheme: scheme})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if rep.Result[kernels.StatCount] != want[kernels.StatCount] ||
			rep.Result[kernels.StatMin] != want[kernels.StatMin] ||
			rep.Result[kernels.StatMax] != want[kernels.StatMax] ||
			math.Abs(rep.Result[kernels.StatSum]-want[kernels.StatSum]) > 1e-6 {
			t.Errorf("%v: aggregate %v, want %v", scheme, rep.Result, want)
		}
		if rep.Stats.Elements != g.Len() {
			t.Errorf("%v: folded %d elements, want %d", scheme, rep.Stats.Elements, g.Len())
		}
	}
}

func TestReduceOffloadAvoidsBulkTraffic(t *testing.T) {
	// Large enough (4 MiB) that data movement, not job startup, dominates.
	g := workload.Terrain(1024, 512, 5)

	ts := newSystem(t, TS, g)
	tsRep, err := ts.Reduce(ReduceRequest{Op: "stats", Input: "in", Scheme: TS})
	if err != nil {
		t.Fatal(err)
	}
	das := newSystem(t, DAS, g)
	dasRep, err := das.Reduce(ReduceRequest{Op: "stats", Input: "in", Scheme: DAS})
	if err != nil {
		t.Fatal(err)
	}
	if !dasRep.Offloaded {
		t.Fatal("DAS did not offload a dependence-free reduction")
	}
	if dasRep.Decision == nil || !dasRep.Decision.Offload {
		t.Errorf("decision: %+v", dasRep.Decision)
	}
	// TS hauls the raster to the clients; the offloaded fold returns only
	// tiny partials.
	if tsRep.Traffic[metrics.ServerToClient] < g.SizeBytes() {
		t.Errorf("TS moved %d bytes to clients, want ≥ raster size", tsRep.Traffic[metrics.ServerToClient])
	}
	if dasRep.Traffic[metrics.ServerToClient] > 64*1024 {
		t.Errorf("offloaded reduction moved %d bytes to clients", dasRep.Traffic[metrics.ServerToClient])
	}
	if dasRep.ExecTime >= tsRep.ExecTime {
		t.Errorf("offloaded reduction %v not faster than TS %v", dasRep.ExecTime, tsRep.ExecTime)
	}
	// The classic active storage win: comfortably faster even with the
	// fixed startup cost both schemes share.
	if tsRep.ExecTime.Seconds()/dasRep.ExecTime.Seconds() < 1.3 {
		t.Errorf("reduction speedup only %.2fx", tsRep.ExecTime.Seconds()/dasRep.ExecTime.Seconds())
	}
}

func TestReduceHistogramAcrossSchemes(t *testing.T) {
	g := workload.Image(testW, testH, 3, 0.1)
	h := kernels.Histogram{Bins: 32, Lo: 0, Hi: 256}
	want := kernels.ReduceAll(h, g)
	for _, scheme := range []Scheme{TS, DAS} {
		s := newSystem(t, scheme, g)
		rep, err := s.Reduce(ReduceRequest{Op: "histogram", Input: "in", Scheme: scheme})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		for i := range want {
			if rep.Result[i] != want[i] {
				t.Fatalf("%v: bin %d = %v, want %v", scheme, i, rep.Result[i], want[i])
			}
		}
	}
}

func TestReduceValidation(t *testing.T) {
	g := workload.Ramp(testW, testH)
	s := newSystem(t, TS, g)
	if _, err := s.Reduce(ReduceRequest{Op: "stats", Input: "nope", Scheme: TS}); err == nil {
		t.Error("unknown input accepted")
	}
	if _, err := s.Reduce(ReduceRequest{Op: "nope", Input: "in", Scheme: TS}); err == nil {
		t.Error("unknown reducer accepted")
	}
	if _, err := s.Reduce(ReduceRequest{Op: "stats", Input: "in", Scheme: Scheme(9)}); err == nil {
		t.Error("unknown scheme accepted")
	}
}
