// Package tenants is the multi-tenant traffic engine: thousands of
// closed-loop client streams replayed over hundreds of files on the DES
// clock. Each tenant draws files from a Zipf popularity distribution
// (the YCSB-style skew of ScaleStore's evaluation), issues a weighted
// mix of strip reads, strip writes, and active-storage offloads, and
// switches workload mid-run at configured phase boundaries (hot-set
// rotation, read-heavy to write-heavy). A per-server admission gate
// bounds queue depth with deterministic deferral and shedding, and
// per-tenant latency sketches make cross-tenant fairness — the spread
// of per-tenant p99 — a first-class measurement.
//
// The engine deliberately depends only on the substrate layers (cluster,
// pfs, active, workload, metrics): the adaptive subsystems observe it
// through two narrow outbound hooks — a per-file operation-latency
// observer (the control plane's per-file heat signal) and a per-offload
// dependent-bytes observer (the restriper's migration evidence) — wired
// up by the experiment harness. Everything runs on the DES clock through
// explicitly seeded splitmix64 RNGs; two equally configured runs are
// byte-identical.
package tenants

import (
	"fmt"
	"sort"

	"github.com/hpcio/das/internal/active"
	"github.com/hpcio/das/internal/cluster"
	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/pfs"
	"github.com/hpcio/das/internal/sim"
	"github.com/hpcio/das/internal/workload"
)

// Mix weighs the operation kinds a tenant stream draws from. Weights are
// relative; a zero weight disables the kind.
type Mix struct {
	Read    int `json:"read"`
	Write   int `json:"write"`
	Offload int `json:"offload"`
}

func (m Mix) total() int { return m.Read + m.Write + m.Offload }

func (m Mix) validate() error {
	if m.Read < 0 || m.Write < 0 || m.Offload < 0 {
		return fmt.Errorf("tenants: negative mix weight %+v", m)
	}
	if m.total() == 0 {
		return fmt.Errorf("tenants: empty operation mix")
	}
	return nil
}

// Phase is one mid-run workload change: from tenant-local operation index
// FromOp onward, the stream uses Mix and adds Rotate to the rank-to-file
// mapping — rotating the Zipf head onto a different set of files (the
// hot-set rotation that forces adaptive placement to re-converge).
type Phase struct {
	FromOp int `json:"from_op"`
	Mix    Mix `json:"mix"`
	Rotate int `json:"rotate"`
}

// Config sizes one multi-tenant run. The zero value is not usable;
// Normalize fills defaults sized for tests and validates the rest.
type Config struct {
	// Tenants is the number of concurrent closed-loop client streams.
	Tenants int
	// Files is the number of distinct files the streams draw from.
	Files int
	// StripsPerFileMin/Max bound the per-file strip counts; each file's
	// actual count is a deterministic draw from the seed.
	StripsPerFileMin int
	StripsPerFileMax int
	// StripSize is the PFS strip size; one strip is one raster row, so
	// the row width is StripSize / grid.ElemSize elements.
	StripSize int64
	// OpsPerTenant is how many operations each stream issues.
	OpsPerTenant int
	// ZipfSkew is the file-popularity exponent (1.1 ≈ heavily skewed).
	ZipfSkew float64
	// Seed feeds every RNG in the run (file sizes, contents, per-tenant
	// streams).
	Seed uint64
	// Mix is the initial operation mix; Phases may replace it mid-run.
	Mix Mix
	// Phases are mid-run workload changes, ascending by FromOp.
	Phases []Phase
	// ThinkTime is the mean idle gap between a tenant's operations
	// (jittered per tenant); zero means a tight closed loop.
	ThinkTime sim.Time
	// MaxQueueDepth bounds the per-server outstanding-RPC depth the
	// admission gate tolerates; 0 disables admission (unbounded).
	MaxQueueDepth int
	// ShedBackoff and ShedRetries shape deferral: an operation finding
	// its servers saturated sleeps ShedBackoff and retries, up to
	// ShedRetries times, before the operation is shed.
	ShedBackoff sim.Time
	ShedRetries int
	// Op is the operator offload operations run.
	Op string
}

// Normalize fills zero fields with defaults and validates the rest.
func (c Config) Normalize() (Config, error) {
	if c.Tenants == 0 {
		c.Tenants = 64
	}
	if c.Files == 0 {
		c.Files = 32
	}
	if c.StripsPerFileMin == 0 {
		c.StripsPerFileMin = 4
	}
	if c.StripsPerFileMax == 0 {
		c.StripsPerFileMax = 12
	}
	if c.StripSize == 0 {
		c.StripSize = 64 * 1024
	}
	if c.OpsPerTenant == 0 {
		c.OpsPerTenant = 8
	}
	if c.ZipfSkew == 0 {
		c.ZipfSkew = 1.1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Mix == (Mix{}) {
		c.Mix = Mix{Read: 70, Write: 20, Offload: 10}
	}
	if c.ThinkTime == 0 {
		c.ThinkTime = 200 * sim.Microsecond
	}
	if c.ShedBackoff == 0 {
		c.ShedBackoff = 500 * sim.Microsecond
	}
	if c.ShedRetries == 0 {
		c.ShedRetries = 3
	}
	if c.Op == "" {
		c.Op = "gaussian-filter"
	}
	switch {
	case c.Tenants < 0, c.Files < 0, c.OpsPerTenant < 0:
		return c, fmt.Errorf("tenants: negative population (%d tenants, %d files, %d ops)", c.Tenants, c.Files, c.OpsPerTenant)
	case c.StripsPerFileMin < 1 || c.StripsPerFileMax < c.StripsPerFileMin:
		return c, fmt.Errorf("tenants: strips per file [%d,%d] invalid", c.StripsPerFileMin, c.StripsPerFileMax)
	case c.StripSize < grid.ElemSize || c.StripSize%grid.ElemSize != 0:
		return c, fmt.Errorf("tenants: strip size %d not a positive multiple of the element size", c.StripSize)
	case c.ZipfSkew <= 0:
		return c, fmt.Errorf("tenants: Zipf skew %v must be positive", c.ZipfSkew)
	case c.ThinkTime < 0 || c.ShedBackoff < 0:
		return c, fmt.Errorf("tenants: negative think time or backoff")
	case c.MaxQueueDepth < 0:
		return c, fmt.Errorf("tenants: negative queue-depth bound %d", c.MaxQueueDepth)
	case c.ShedRetries < 0:
		return c, fmt.Errorf("tenants: negative shed retries %d", c.ShedRetries)
	}
	if err := c.Mix.validate(); err != nil {
		return c, err
	}
	for i, ph := range c.Phases {
		if err := ph.Mix.validate(); err != nil {
			return c, fmt.Errorf("tenants: phase %d: %w", i, err)
		}
		if ph.FromOp <= 0 {
			return c, fmt.Errorf("tenants: phase %d starts at op %d (must be > 0)", i, ph.FromOp)
		}
		if i > 0 && ph.FromOp <= c.Phases[i-1].FromOp {
			return c, fmt.Errorf("tenants: phases out of order at index %d", i)
		}
		if ph.Rotate < 0 {
			return c, fmt.Errorf("tenants: phase %d negative rotation %d", i, ph.Rotate)
		}
	}
	return c, nil
}

// FileObserver receives one sample per completed tenant operation against
// the file it touched. control.Controller implements it.
type FileObserver interface {
	ObserveFileOp(file string, lat sim.Time)
}

// fileInfo is one generated file's fixed identity.
type fileInfo struct {
	name   string
	out    string
	strips int64
	size   int64
}

// tenantState is one closed-loop stream. All fields are engine-goroutine
// state: the DES engine runs one process at a time, so plain ints are
// safe even under the race detector.
type tenantState struct {
	id   int
	rng  *workload.RNG
	zipf *workload.Zipf
	lat  *metrics.LatencySketch

	client *pfs.Client
	as     *active.Client

	rbuf []byte // reusable strip read buffer
	wbuf []byte // pre-encoded strip write payload (valid float64 cells)

	ops, reads, writes, offloads int64
	sheds, deferrals             int64
	bytes                        int64
	remoteBytes                  int64
}

// Engine is one multi-tenant run over a deployed platform.
type Engine struct {
	clu *cluster.Cluster
	fs  *pfs.FileSystem
	cfg Config

	layoutFor  func(i int, strips int64) layout.Layout
	fileObs    FileObserver
	offloadObs func(file string, remoteBytes int64)

	files   []fileInfo
	perm    []int // rank -> file index, rotated by the active phase
	tenants []*tenantState
	fileOps []int64 // per-file completed operations

	queues []*metrics.LatencySketch // per-server arrival queue depths
	// tickets counts admitted, not-yet-completed operations per server:
	// the reservation half of the admission gate. The sampled RPC depth
	// alone cannot bound a herd — every stream checking between another's
	// admission and its first RPC would see an empty queue — so admission
	// holds a ticket from the admit decision to operation completion.
	tickets  []int
	shedsBy  []int64 // per-server shed attribution
	setupRan bool
	runRan   bool
}

// New builds an engine over a deployed cluster and file system. Offload
// operations additionally require the active-storage helpers (deployed by
// core.NewSystem or active.Deploy) to be listening.
func New(clu *cluster.Cluster, fs *pfs.FileSystem, cfg Config) (*Engine, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	e := &Engine{
		clu: clu,
		fs:  fs,
		cfg: cfg,
		layoutFor: func(int, int64) layout.Layout {
			return layout.NewRoundRobin(fs.Servers())
		},
		fileOps: make([]int64, cfg.Files),
	}
	for s := 0; s < fs.Servers(); s++ {
		e.queues = append(e.queues, metrics.NewLatencySketch())
	}
	e.tickets = make([]int, fs.Servers())
	e.shedsBy = make([]int64, fs.Servers())
	return e, nil
}

// Config returns the normalized configuration.
func (e *Engine) Config() Config { return e.cfg }

// SetLayouts overrides the per-file layout policy (round-robin by
// default). Called before Setup.
func (e *Engine) SetLayouts(fn func(i int, strips int64) layout.Layout) { e.layoutFor = fn }

// SetFileObserver wires the per-file operation-latency sink (the control
// plane's heat signal). Nil disables.
func (e *Engine) SetFileObserver(o FileObserver) { e.fileObs = o }

// SetOffloadObserver wires the per-offload dependent-bytes sink (the
// restriper's migration evidence). Nil disables.
func (e *Engine) SetOffloadObserver(fn func(file string, remoteBytes int64)) { e.offloadObs = fn }

// FileName returns the i-th file's name (files are created by Setup).
func (e *Engine) FileName(i int) string { return fmt.Sprintf("tfile-%03d", i) }

// Setup creates and ingests every file: deterministic per-file strip
// counts drawn from the seed, raster contents from the workload image
// generator, the layout from the configured policy, plus a same-geometry
// output file per input for offload results. Ingest writes run
// concurrently, one child process per file.
func (e *Engine) Setup(p *sim.Proc) error {
	if e.setupRan {
		return fmt.Errorf("tenants: Setup already ran")
	}
	e.setupRan = true
	rng := workload.NewRNG(e.cfg.Seed)
	width := int(e.cfg.StripSize / grid.ElemSize)
	for i := 0; i < e.cfg.Files; i++ {
		strips := int64(e.cfg.StripsPerFileMin)
		if span := e.cfg.StripsPerFileMax - e.cfg.StripsPerFileMin; span > 0 {
			strips += rng.Intn(int64(span) + 1)
		}
		e.files = append(e.files, fileInfo{
			name:   e.FileName(i),
			out:    e.FileName(i) + ".out",
			strips: strips,
			size:   strips * e.cfg.StripSize,
		})
	}
	// Rank-to-file permutation: which files are popular is itself a
	// deterministic draw, so popularity does not correlate with file index
	// (and hence with layout placement).
	e.perm = make([]int, e.cfg.Files)
	for i := range e.perm {
		e.perm[i] = i
	}
	for i := int64(len(e.perm)) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		e.perm[i], e.perm[j] = e.perm[j], e.perm[i]
	}
	sigs := make([]*sim.Signal[error], 0, len(e.files))
	for i := range e.files {
		f := &e.files[i]
		lay := e.layoutFor(i, f.strips)
		opts := pfs.CreateOptions{
			StripSize: e.cfg.StripSize,
			Width:     width,
			Height:    int(f.strips),
			ElemSize:  grid.ElemSize,
		}
		if _, err := e.fs.Create(f.name, f.size, lay, opts); err != nil {
			return err
		}
		if _, err := e.fs.Create(f.out, f.size, lay, opts); err != nil {
			return err
		}
		g := workload.Image(width, int(f.strips), e.cfg.Seed^(uint64(i+1)*0x9e3779b97f4a7c15), 0.05)
		data := g.Bytes()
		node := e.clu.ComputeID(i % e.clu.Cfg.ComputeNodes)
		done := sim.NewSignal[error](e.clu.Eng, "tenants-ingest")
		sigs = append(sigs, done)
		p.Spawn("tenants-ingest", func(w *sim.Proc) {
			done.Fire(e.fs.NewClient(node).WriteAll(w, f.name, data))
		})
	}
	for _, err := range sim.WaitAll(p, sigs) {
		if err != nil {
			return err
		}
	}
	return nil
}

// Run replays every tenant stream to completion. Queue-depth sampling is
// active only while the streams run, so ingest traffic never pollutes the
// saturation measurement.
func (e *Engine) Run(p *sim.Proc) error {
	if !e.setupRan {
		return fmt.Errorf("tenants: Run before Setup")
	}
	if e.runRan {
		return fmt.Errorf("tenants: Run already ran")
	}
	e.runRan = true
	e.fs.SetQueueObserver(func(srv, depth int) {
		if srv >= 0 && srv < len(e.queues) {
			e.queues[srv].ObserveValue(int64(depth))
		}
	})
	sigs := make([]*sim.Signal[error], 0, e.cfg.Tenants)
	for i := 0; i < e.cfg.Tenants; i++ {
		t := e.newTenant(i)
		e.tenants = append(e.tenants, t)
		done := sim.NewSignal[error](e.clu.Eng, "tenant")
		sigs = append(sigs, done)
		p.Spawn("tenant", func(tp *sim.Proc) {
			done.Fire(e.runTenant(tp, t))
		})
	}
	var first error
	for _, err := range sim.WaitAll(p, sigs) {
		if err != nil && first == nil {
			first = err
		}
	}
	e.fs.SetQueueObserver(nil)
	return first
}

// newTenant builds one stream's state: its own RNG (derived from the run
// seed and the tenant id), Zipf sampler, latency sketch, clients bound to
// a compute node, and a write payload pre-encoded as valid float64 cells
// — raw random bytes could decode to platform-dependent NaN patterns and
// break byte-identity once a kernel processes them.
func (e *Engine) newTenant(id int) *tenantState {
	rng := workload.NewRNG(e.cfg.Seed ^ (uint64(id+1) * 0xbf58476d1ce4e5b9))
	z, err := workload.NewZipf(rng, e.cfg.Files, e.cfg.ZipfSkew)
	if err != nil {
		panic(err) // Normalize validated Files and ZipfSkew
	}
	node := e.clu.ComputeID(id % e.clu.Cfg.ComputeNodes)
	vals := make([]float64, e.cfg.StripSize/grid.ElemSize)
	for i := range vals {
		vals[i] = rng.Float()
	}
	return &tenantState{
		id:     id,
		rng:    rng,
		zipf:   z,
		lat:    metrics.NewLatencySketch(),
		client: e.fs.NewClient(node),
		as:     active.NewClient(e.fs, node),
		rbuf:   make([]byte, e.cfg.StripSize),
		wbuf:   grid.FloatsToBytes(vals),
	}
}

// phaseAt returns the mix and hot-set rotation in effect at a
// tenant-local operation index.
func (e *Engine) phaseAt(op int) (Mix, int) {
	mix, rotate := e.cfg.Mix, 0
	for _, ph := range e.cfg.Phases {
		if op >= ph.FromOp {
			mix, rotate = ph.Mix, ph.Rotate
		}
	}
	return mix, rotate
}

// pickKind draws an operation kind from the mix weights.
func pickKind(rng *workload.RNG, mix Mix) int {
	x := rng.Intn(int64(mix.total()))
	switch {
	case x < int64(mix.Read):
		return opRead
	case x < int64(mix.Read+mix.Write):
		return opWrite
	default:
		return opOffload
	}
}

const (
	opRead = iota
	opWrite
	opOffload
)

// runTenant is one stream's closed loop: draw a file from the Zipf
// distribution under the active phase, pass admission, issue the
// operation, record its latency, think, repeat.
func (e *Engine) runTenant(p *sim.Proc, t *tenantState) error {
	if e.cfg.ThinkTime > 0 {
		// Stagger stream starts so the run does not open with a lockstep
		// burst from every tenant at t=0.
		p.Sleep(sim.Time(t.rng.Intn(int64(e.cfg.ThinkTime) * 8)))
	}
	for op := 0; op < e.cfg.OpsPerTenant; op++ {
		mix, rotate := e.phaseAt(op)
		kind := pickKind(t.rng, mix)
		rank := int(t.zipf.Sample())
		fi := e.perm[(rank+rotate)%len(e.perm)]
		f := &e.files[fi]
		strip := t.rng.Intn(f.strips)

		held, ok := e.admit(p, t, f, kind, strip)
		if !ok {
			t.sheds++
			continue
		}
		start := p.Now()
		var err error
		switch kind {
		case opRead:
			off := strip * e.cfg.StripSize
			err = t.client.ReadInto(p, f.name, off, t.rbuf)
			t.reads++
			t.bytes += e.cfg.StripSize
		case opWrite:
			off := strip * e.cfg.StripSize
			err = t.client.Write(p, f.name, off, t.wbuf)
			t.writes++
			t.bytes += e.cfg.StripSize
		default:
			var stats active.ExecStats
			stats, err = t.as.Exec(p, e.cfg.Op, f.name, f.out, active.FetchWholeStrips)
			t.offloads++
			t.bytes += f.size
			t.remoteBytes += stats.RemoteBytes
			if err == nil && e.offloadObs != nil {
				e.offloadObs(f.name, stats.RemoteBytes)
			}
		}
		e.release(held)
		if err != nil {
			return fmt.Errorf("tenants: tenant %d op %d on %s: %w", t.id, op, f.name, err)
		}
		lat := p.Now() - start
		t.lat.Observe(lat)
		t.ops++
		e.fileOps[fi]++
		if e.fileObs != nil {
			e.fileObs.ObserveFileOp(f.name, lat)
		}
		if e.cfg.ThinkTime > 0 {
			p.Sleep(e.cfg.ThinkTime + sim.Time(t.rng.Intn(int64(e.cfg.ThinkTime))))
		}
	}
	return nil
}

// admit is the per-server admission gate. A read or write targets one
// server — the strip's primary — and that queue, measured as the larger
// of the reservation count and the sampled in-flight RPC depth, must sit
// below the bound. An offload dispatches cluster-wide and spreads its
// work across every server, so it is gated on the mean depth across the
// cluster instead: judging global work by the single hottest queue would
// starve offloads entirely whenever any one server runs hot, while the
// point-operation gate is already shedding load off that server. An
// admitted operation reserves its expected per-server RPC footprint in
// tickets — one for a point operation, roughly two halo fetches per
// resident strip for an offload — and holds them until it completes.
// The reservation closes the check-to-arrival gap (a herd of streams
// checking in the same simulated instant cannot all slip past an empty
// queue) and makes concurrent offloads self-limit instead of stacking
// their fetch fan-in onto queues that looked empty at dispatch. A
// saturated target defers the operation (bounded backoff sleeps); an
// operation still blocked after the retries is shed — the caller skips
// it entirely, so a saturated server receives less work instead of more.
// Returns the reserved tickets as server ids (one entry per ticket, nil
// when admission is unbounded) and whether the operation may proceed.
func (e *Engine) admit(p *sim.Proc, t *tenantState, f *fileInfo, kind int, strip int64) ([]int, bool) {
	if e.cfg.MaxQueueDepth <= 0 {
		return nil, true
	}
	var targets []int
	weight := 1
	if kind == opOffload {
		targets = make([]int, e.fs.Servers())
		for s := range targets {
			targets[s] = s
		}
		n := int64(len(targets))
		weight = int((2*f.strips + n - 1) / n)
		if weight < 1 {
			weight = 1
		}
	} else {
		m, ok := e.fs.Meta(f.name)
		if !ok {
			return nil, true // unknown file: let the operation surface the error
		}
		targets = []int{m.Layout.Primary(strip)}
	}
	for try := 0; ; try++ {
		hot, depth := e.hottest(targets)
		gate := depth
		if kind == opOffload {
			gate = e.meanDepth(targets)
		}
		if gate < e.cfg.MaxQueueDepth {
			held := make([]int, 0, len(targets)*weight)
			for _, s := range targets {
				e.tickets[s] += weight
				for k := 0; k < weight; k++ {
					held = append(held, s)
				}
			}
			return held, true
		}
		if try >= e.cfg.ShedRetries {
			e.shedsBy[hot]++
			return nil, false
		}
		t.deferrals++
		p.Sleep(e.cfg.ShedBackoff)
	}
}

// release returns an admitted operation's tickets.
func (e *Engine) release(held []int) {
	for _, s := range held {
		e.tickets[s]--
	}
}

// hottest returns the busiest of the target servers and its effective
// depth: max(reserved tickets, sampled in-flight RPCs).
func (e *Engine) hottest(targets []int) (int, int) {
	hot, depth := targets[0], -1
	for _, s := range targets {
		d := e.tickets[s]
		if q := e.fs.QueueDepth(s); q > d {
			d = q
		}
		if d > depth {
			hot, depth = s, d
		}
	}
	return hot, depth
}

// meanDepth returns the average effective depth across the target
// servers — the admission signal for cluster-wide operations.
func (e *Engine) meanDepth(targets []int) int {
	sum := 0
	for _, s := range targets {
		d := e.tickets[s]
		if q := e.fs.QueueDepth(s); q > d {
			d = q
		}
		sum += d
	}
	return sum / len(targets)
}

// TenantStats is one stream's accounting.
type TenantStats struct {
	Tenant    int   `json:"tenant"`
	Ops       int64 `json:"ops"`
	Reads     int64 `json:"reads"`
	Writes    int64 `json:"writes"`
	Offloads  int64 `json:"offloads"`
	Sheds     int64 `json:"sheds"`
	Deferrals int64 `json:"deferrals"`
	Bytes     int64 `json:"bytes"`
	P50Nanos  int64 `json:"p50_ns"`
	P99Nanos  int64 `json:"p99_ns"`
	MaxNanos  int64 `json:"max_ns"`
}

// TenantStats returns per-stream accounting in tenant order.
func (e *Engine) TenantStats() []TenantStats {
	out := make([]TenantStats, 0, len(e.tenants))
	for _, t := range e.tenants {
		out = append(out, TenantStats{
			Tenant:    t.id,
			Ops:       t.ops,
			Reads:     t.reads,
			Writes:    t.writes,
			Offloads:  t.offloads,
			Sheds:     t.sheds,
			Deferrals: t.deferrals,
			Bytes:     t.bytes,
			P50Nanos:  int64(t.lat.Quantile(50)),
			P99Nanos:  int64(t.lat.Quantile(99)),
			MaxNanos:  int64(t.lat.Max()),
		})
	}
	return out
}

// QueueStats is one server's arrival-sampled queue-depth distribution.
type QueueStats struct {
	Server  int   `json:"server"`
	Samples int64 `json:"samples"`
	P50     int64 `json:"p50"`
	P99     int64 `json:"p99"`
	Max     int64 `json:"max"`
	Sheds   int64 `json:"sheds"`
}

// QueueStats returns per-server queue-depth distributions in server order.
func (e *Engine) QueueStats() []QueueStats {
	out := make([]QueueStats, 0, len(e.queues))
	for s, q := range e.queues {
		out = append(out, QueueStats{
			Server:  s,
			Samples: q.Count(),
			P50:     q.QuantileValue(50),
			P99:     q.QuantileValue(99),
			Max:     q.MaxValue(),
			Sheds:   e.shedsBy[s],
		})
	}
	return out
}

// Totals aggregates the run.
type Totals struct {
	Ops         int64 `json:"ops"`
	Reads       int64 `json:"reads"`
	Writes      int64 `json:"writes"`
	Offloads    int64 `json:"offloads"`
	Sheds       int64 `json:"sheds"`
	Deferrals   int64 `json:"deferrals"`
	Bytes       int64 `json:"bytes"`
	RemoteBytes int64 `json:"offload_remote_bytes"`
}

// Totals returns the run's aggregate accounting.
func (e *Engine) Totals() Totals {
	var tot Totals
	for _, t := range e.tenants {
		tot.Ops += t.ops
		tot.Reads += t.reads
		tot.Writes += t.writes
		tot.Offloads += t.offloads
		tot.Sheds += t.sheds
		tot.Deferrals += t.deferrals
		tot.Bytes += t.bytes
		tot.RemoteBytes += t.remoteBytes
	}
	return tot
}

// Fairness is the cross-tenant p99 spread: how far apart the
// best-treated and worst-treated streams' tails sit. Only streams that
// completed at least one operation count.
type Fairness struct {
	Tenants     int   `json:"tenants"`
	MinP99Nanos int64 `json:"min_p99_ns"`
	MaxP99Nanos int64 `json:"max_p99_ns"`
	SpreadNanos int64 `json:"spread_ns"`
}

// Fairness returns the cross-tenant p99 spread.
func (e *Engine) Fairness() Fairness {
	var f Fairness
	for _, t := range e.tenants {
		if t.lat.Count() == 0 {
			continue
		}
		p99 := int64(t.lat.Quantile(99))
		if f.Tenants == 0 || p99 < f.MinP99Nanos {
			f.MinP99Nanos = p99
		}
		if p99 > f.MaxP99Nanos {
			f.MaxP99Nanos = p99
		}
		f.Tenants++
	}
	f.SpreadNanos = f.MaxP99Nanos - f.MinP99Nanos
	return f
}

// FileOps is one file's completed-operation count.
type FileOps struct {
	File string `json:"file"`
	Ops  int64  `json:"ops"`
}

// TopFiles returns the n most-operated files (ops descending, name
// ascending on ties); n <= 0 returns every file with at least one
// operation.
func (e *Engine) TopFiles(n int) []FileOps {
	out := make([]FileOps, 0, len(e.files))
	for i := range e.files {
		if e.fileOps[i] == 0 {
			continue
		}
		out = append(out, FileOps{File: e.files[i].name, Ops: e.fileOps[i]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ops != out[j].Ops {
			return out[i].Ops > out[j].Ops
		}
		return out[i].File < out[j].File
	})
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}
