package tenants

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/hpcio/das/internal/active"
	"github.com/hpcio/das/internal/cluster"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/pfs"
	"github.com/hpcio/das/internal/sim"
)

// testPlatform deploys a small platform with live AS helpers.
func testPlatform(t *testing.T) (*cluster.Cluster, *pfs.FileSystem) {
	t.Helper()
	cfg := cluster.Default()
	cfg.ComputeNodes = 4
	cfg.StorageNodes = 4
	clu, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs := pfs.New(clu)
	active.Deploy(fs, kernels.Default(), nil)
	return clu, fs
}

// testConfig is a run small enough for the race detector but big enough
// to exercise skew, phases, offloads, and admission.
func testConfig() Config {
	return Config{
		Tenants:      32,
		Files:        16,
		OpsPerTenant: 6,
		Seed:         7,
		Phases: []Phase{
			{FromOp: 2, Mix: Mix{Read: 70, Write: 20, Offload: 10}, Rotate: 8},
			{FromOp: 4, Mix: Mix{Read: 20, Write: 70, Offload: 10}, Rotate: 8},
		},
		MaxQueueDepth: 8,
	}
}

// runReport is the byte-compared determinism artifact.
type runReport struct {
	Elapsed  sim.Time      `json:"elapsed"`
	Tenants  []TenantStats `json:"tenants"`
	Queues   []QueueStats  `json:"queues"`
	Totals   Totals        `json:"totals"`
	Fairness Fairness      `json:"fairness"`
	Top      []FileOps     `json:"top_files"`
}

// runOnce executes one full Setup+Run on a fresh platform and returns the
// serialized report.
func runOnce(t *testing.T, cfg Config) ([]byte, *Engine) {
	t.Helper()
	clu, fs := testPlatform(t)
	defer clu.Eng.Shutdown()
	e, err := New(clu, fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var inner error
	var start sim.Time
	clu.Eng.Spawn("tenants-test", func(p *sim.Proc) {
		if inner = e.Setup(p); inner != nil {
			return
		}
		start = p.Now()
		inner = e.Run(p)
	})
	if err := clu.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if inner != nil {
		t.Fatal(inner)
	}
	rep := runReport{
		Elapsed:  clu.Eng.Now() - start,
		Tenants:  e.TenantStats(),
		Queues:   e.QueueStats(),
		Totals:   e.Totals(),
		Fairness: e.Fairness(),
		Top:      e.TopFiles(5),
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return b, e
}

// TestReplayDeterminism runs the same configuration twice on fresh
// platforms and requires byte-identical reports — the engine's core
// contract.
func TestReplayDeterminism(t *testing.T) {
	b1, _ := runOnce(t, testConfig())
	b2, _ := runOnce(t, testConfig())
	if !bytes.Equal(b1, b2) {
		t.Fatalf("replay diverged:\n%s\n%s", b1, b2)
	}
}

// TestStreamsComplete checks the accounting adds up: every stream issues
// its configured operations (completed plus shed), all three kinds occur,
// and latency sketches hold exactly the completed operations.
func TestStreamsComplete(t *testing.T) {
	_, e := runOnce(t, testConfig())
	tot := e.Totals()
	want := int64(testConfig().Tenants * testConfig().OpsPerTenant)
	if tot.Ops+tot.Sheds != want {
		t.Fatalf("ops %d + sheds %d != issued %d", tot.Ops, tot.Sheds, want)
	}
	if tot.Reads == 0 || tot.Writes == 0 || tot.Offloads == 0 {
		t.Fatalf("some operation kind never ran: %+v", tot)
	}
	if tot.Ops != tot.Reads+tot.Writes+tot.Offloads {
		t.Fatalf("kind counts %d+%d+%d disagree with ops %d", tot.Reads, tot.Writes, tot.Offloads, tot.Ops)
	}
	var fileOps int64
	for _, f := range e.TopFiles(0) {
		fileOps += f.Ops
	}
	if fileOps != tot.Ops {
		t.Fatalf("per-file ops %d != total %d", fileOps, tot.Ops)
	}
	fair := e.Fairness()
	if fair.Tenants == 0 || fair.MaxP99Nanos < fair.MinP99Nanos {
		t.Fatalf("degenerate fairness %+v", fair)
	}
}

// TestAdmissionBoundsQueueDepth compares an unbounded run against a
// bounded one: the admission gate must keep the arrival-sampled depth
// tail near the bound while the unbounded run exceeds it.
func TestAdmissionBoundsQueueDepth(t *testing.T) {
	cfg := testConfig()
	cfg.ThinkTime = 1 // near-lockstep closed loop: maximum pressure
	cfg.Tenants = 64

	unb := cfg
	unb.MaxQueueDepth = 0
	_, eu := runOnce(t, unb)

	bnd := cfg
	bnd.MaxQueueDepth = 6
	_, eb := runOnce(t, bnd)

	maxP99 := func(qs []QueueStats) int64 {
		var m int64
		for _, q := range qs {
			if q.P99 > m {
				m = q.P99
			}
		}
		return m
	}
	up, bp := maxP99(eu.QueueStats()), maxP99(eb.QueueStats())
	if up <= int64(bnd.MaxQueueDepth) {
		t.Skipf("unbounded run never saturated (p99 depth %d): config too small to compare", up)
	}
	// The gate samples depth at admission, so in-flight gaps allow a small
	// overshoot — but the tail must sit well under the unbounded run's and
	// within 2x the configured bound.
	if bp > 2*int64(bnd.MaxQueueDepth) {
		t.Fatalf("bounded queue p99 %d exceeds 2x bound %d", bp, bnd.MaxQueueDepth)
	}
	if bp >= up {
		t.Fatalf("bounded queue p99 %d not below unbounded %d", bp, up)
	}
	if eb.Totals().Deferrals == 0 {
		t.Fatal("bounded run never deferred — the gate never engaged")
	}
}

// TestHotSetRotation checks that a rotation phase actually moves the Zipf
// head: with rotation the most-popular file's share shrinks versus the
// same run without phases.
func TestHotSetRotation(t *testing.T) {
	base := testConfig()
	base.Phases = nil
	base.MaxQueueDepth = 0
	base.Mix = Mix{Read: 70, Write: 20, Offload: 10}
	_, eStatic := runOnce(t, base)

	rot := base
	rot.Phases = []Phase{{FromOp: 3, Mix: base.Mix, Rotate: base.Files / 2}}
	_, eRot := runOnce(t, rot)

	topStatic := eStatic.TopFiles(1)
	topRot := eRot.TopFiles(1)
	if len(topStatic) == 0 || len(topRot) == 0 {
		t.Fatal("no file operations recorded")
	}
	if topRot[0].Ops >= topStatic[0].Ops {
		t.Fatalf("rotation did not spread the hot set: top file %d ops with rotation vs %d without",
			topRot[0].Ops, topStatic[0].Ops)
	}
}

// TestConfigValidation covers Normalize's rejection paths.
func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{StripsPerFileMin: 8, StripsPerFileMax: 4},
		{StripSize: 12},
		{ZipfSkew: -1},
		{MaxQueueDepth: -1},
		{Mix: Mix{Read: -1, Write: 2, Offload: 0}},
		{Phases: []Phase{{FromOp: 0, Mix: Mix{Read: 1}}}},
		{Phases: []Phase{{FromOp: 3, Mix: Mix{Read: 1}}, {FromOp: 2, Mix: Mix{Read: 1}}}},
	}
	for i, cfg := range bad {
		if _, err := cfg.Normalize(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := (Config{}).Normalize(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}

// TestLifecycleGuards covers the Setup/Run ordering contract.
func TestLifecycleGuards(t *testing.T) {
	clu, fs := testPlatform(t)
	defer clu.Eng.Shutdown()
	e, err := New(clu, fs, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var runErr error
	clu.Eng.Spawn("guards", func(p *sim.Proc) {
		runErr = e.Run(p)
	})
	if err := clu.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if runErr == nil {
		t.Fatal("Run before Setup accepted")
	}
}
