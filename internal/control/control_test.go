package control

import (
	"testing"

	"github.com/hpcio/das/internal/cache"
	"github.com/hpcio/das/internal/sim"
)

func testConfig() Config {
	return Config{
		SampleEvery:      sim.Millisecond,
		Percentile:       99,
		LatencyHigh:      100 * sim.Microsecond,
		LatencyLow:       10 * sim.Microsecond,
		MinWindowSamples: 2,
		UpStreak:         2,
		DownStreak:       2,
		Cooldown:         5 * sim.Millisecond,
	}
}

func testCacheConfig() cache.Config {
	return cache.Config{
		BudgetBytes:          1024,
		SampleEvery:          sim.Millisecond,
		LatencyHigh:          100 * sim.Microsecond,
		LatencyLow:           10 * sim.Microsecond,
		MaxPromotionsPerTick: 2,
	}
}

func TestConfigNormalizeDefaultsAndErrors(t *testing.T) {
	cfg, err := Config{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SampleEvery <= 0 || cfg.Percentile != 99 || cfg.LatencyHigh <= cfg.LatencyLow ||
		cfg.MinWindowSamples <= 0 || cfg.UpStreak < 1 || cfg.DownStreak < 1 || cfg.Cooldown <= 0 {
		t.Errorf("bad defaults: %+v", cfg)
	}
	for _, bad := range []Config{
		{SampleEvery: -sim.Millisecond},
		{Percentile: 101},
		{Percentile: -1},
		{LatencyLow: sim.Millisecond, LatencyHigh: sim.Millisecond},
		{LatencyLow: 2 * sim.Millisecond, LatencyHigh: sim.Millisecond},
		{MinWindowSamples: -1},
		{UpStreak: -1},
		{Cooldown: -sim.Second},
	} {
		if _, err := bad.Normalize(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
	eng := sim.NewEngine()
	if _, err := New(eng, 0, Config{}); err == nil {
		t.Error("zero-server controller accepted")
	}
}

// TestControllerHysteresisStreaks drives one server hot: the first hot
// window must NOT act (UpStreak = 2), the second must promote.
func TestControllerHysteresisStreaks(t *testing.T) {
	eng := sim.NewEngine()
	mgr, err := cache.NewManager(eng, 1, testCacheConfig(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := New(eng, 1, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctl.AttachCache(mgr)
	ctl.Start()
	buf := make([]byte, 64)
	hotWindow := func(p *sim.Proc) {
		// Two slow fetches (>= MinWindowSamples) and a hit so the promote
		// pass has a candidate.
		mgr.RecordFetch(0, "f", 1, 0, buf, 200*sim.Microsecond)
		mgr.RecordFetch(0, "f", 2, 0, buf, 200*sim.Microsecond)
		mgr.Get(0, "f", 1, 0, 64)
	}
	eng.Spawn("load", func(p *sim.Proc) {
		hotWindow(p)
		p.Sleep(1100 * sim.Microsecond) // window 1 closes: streak 1, no action
		if got := len(ctl.Actions()); got != 0 {
			t.Errorf("acted after one hot window: %v", ctl.Actions())
		}
		hotWindow(p)
		p.Sleep(sim.Millisecond) // window 2 closes: streak 2, promote
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	acts := ctl.Actions()
	if len(acts) != 1 || acts[0].Kind != "promote" || acts[0].Server != 0 || acts[0].Count < 1 {
		t.Fatalf("actions = %v, want one promote on server 0", acts)
	}
	if acts[0].P99 < testConfig().LatencyHigh {
		t.Errorf("promote logged tail %v below threshold", acts[0].P99)
	}
	if !mgr.Server(0).Pinned("f", 1) {
		t.Error("hot strip not pinned after promote")
	}
	if mgr.Ticks() != 0 {
		t.Errorf("manager's own loop ticked %d times under external tuning", mgr.Ticks())
	}
}

// TestControllerInBandWindowsResetStreaks: hot, in-band, hot must not
// act — the band breaks the streak.
func TestControllerInBandWindowsResetStreaks(t *testing.T) {
	eng := sim.NewEngine()
	mgr, err := cache.NewManager(eng, 1, testCacheConfig(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := New(eng, 1, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctl.AttachCache(mgr)
	ctl.Start()
	buf := make([]byte, 64)
	window := func(lat sim.Time) {
		mgr.RecordFetch(0, "f", 1, 0, buf, lat)
		mgr.RecordFetch(0, "f", 2, 0, buf, lat)
		mgr.Get(0, "f", 1, 0, 64)
	}
	eng.Spawn("load", func(p *sim.Proc) {
		window(200 * sim.Microsecond) // hot
		p.Sleep(1100 * sim.Microsecond)
		window(50 * sim.Microsecond) // in-band: resets both streaks
		p.Sleep(sim.Millisecond)
		window(200 * sim.Microsecond) // hot again: streak back to 1
		p.Sleep(sim.Millisecond)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if acts := ctl.Actions(); len(acts) != 0 {
		t.Fatalf("band-interrupted streak still acted: %v", acts)
	}
}

// TestControllerCooldownDefersAction: a restripe event between the
// second hot window and the tick suppresses the promote, but the streak
// survives and the action fires on the first post-cool-down tick.
func TestControllerCooldownDefersAction(t *testing.T) {
	eng := sim.NewEngine()
	mgr, err := cache.NewManager(eng, 1, testCacheConfig(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Cooldown = 2500 * sim.Microsecond
	ctl, err := New(eng, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl.AttachCache(mgr)
	ctl.Start()
	buf := make([]byte, 64)
	hotWindow := func() {
		mgr.RecordFetch(0, "f", 1, 0, buf, 200*sim.Microsecond)
		mgr.RecordFetch(0, "f", 2, 0, buf, 200*sim.Microsecond)
		mgr.Get(0, "f", 1, 0, 64)
	}
	eng.Spawn("load", func(p *sim.Proc) {
		hotWindow()
		p.Sleep(1100 * sim.Microsecond)
		hotWindow()
		ctl.StripFlipped("input", 3) // restripe activity: cool-down opens
		p.Sleep(sim.Millisecond)     // tick 2: streak reached, suppressed
		if len(ctl.Actions()) != 0 {
			t.Errorf("acted during cool-down: %v", ctl.Actions())
		}
		if ctl.CooldownSuppressed() == 0 {
			t.Error("suppression not recorded")
		}
		if !ctl.InCooldown() {
			t.Error("cool-down not running right after restripe event")
		}
		// Wait out the cool-down (ends at 3.6ms), then one more hot
		// window. The held streak is already past threshold, so the very
		// next tick acts — no second confirmation window needed.
		p.Sleep(1600 * sim.Microsecond)
		hotWindow()
		p.Sleep(sim.Millisecond)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	acts := ctl.Actions()
	if len(acts) != 1 || acts[0].Kind != "promote" {
		t.Fatalf("actions = %v, want the deferred promote after cool-down", acts)
	}
	if acts[0].At < 1100*sim.Microsecond+cfg.Cooldown {
		t.Errorf("promote at %v, inside the cool-down", acts[0].At)
	}
}

// TestControllerDemotesIdleServer: a pinned strip on a server that stops
// fetching but keeps hitting is released after DownStreak windows.
func TestControllerDemotesIdleServer(t *testing.T) {
	eng := sim.NewEngine()
	mgr, err := cache.NewManager(eng, 1, testCacheConfig(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := New(eng, 1, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctl.AttachCache(mgr)
	ctl.Start()
	buf := make([]byte, 64)
	eng.Spawn("load", func(p *sim.Proc) {
		// Pin strip 1 by hand, and cache (but don't pin) strip 2. The
		// in-band setup latencies leave the streaks at zero.
		mgr.RecordFetch(0, "f", 1, 0, buf, 50*sim.Microsecond)
		mgr.Get(0, "f", 1, 0, 64)
		if mgr.PromoteHotServer(0) == 0 {
			t.Fatal("manual promote pinned nothing")
		}
		mgr.RecordFetch(0, "f", 2, 0, buf, 50*sim.Microsecond)
		mgr.ResetWindows()
		// Windows 2 and 3: hits on strip 2 only, zero fetches — the
		// hits-without-fetches path builds the cold streak while the pin
		// on strip 1 sits idle. Demote on the second cold window.
		p.Sleep(1100 * sim.Microsecond)
		mgr.Get(0, "f", 2, 0, 64)
		p.Sleep(sim.Millisecond)
		mgr.Get(0, "f", 2, 0, 64)
		p.Sleep(sim.Millisecond)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	acts := ctl.Actions()
	if len(acts) != 1 || acts[0].Kind != "demote" || acts[0].Count < 1 {
		t.Fatalf("actions = %v, want one demote", acts)
	}
	if mgr.Server(0).Pinned("f", 1) {
		t.Error("idle pin survived the demote")
	}
}

// TestControllerExcludesMigrationSamples: migration-tagged RPC samples
// are counted but never reach any sketch.
func TestControllerExcludesMigrationSamples(t *testing.T) {
	eng := sim.NewEngine()
	ctl, err := New(eng, 2, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		ctl.ObserveRPCLatency(0, true, sim.Second) // huge, but migration
	}
	ctl.ObserveRPCLatency(1, false, 3*sim.Microsecond)
	if got := ctl.MigrationSamplesExcluded(); got != 10 {
		t.Errorf("excluded = %d, want 10", got)
	}
	if got := ctl.RPCSamples(); got != 1 {
		t.Errorf("rpc samples = %d, want 1", got)
	}
	if got := ctl.TuningSamples(); got != 0 {
		t.Errorf("tuning samples = %d, want 0", got)
	}
	st := ctl.Stats()
	if st[0].RPCCount != 0 || st[0].RPCP99 != 0 {
		t.Errorf("migration samples leaked into server 0 sketch: %+v", st[0])
	}
	if st[1].RPCCount != 1 {
		t.Errorf("clean sample lost: %+v", st[1])
	}
}

// TestControllerAdmissionGate: restripes are denied while the cluster
// tail is healthy or a cool-down runs, and allowed once the cumulative
// tail crosses the scale-up threshold.
func TestControllerAdmissionGate(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	ctl, err := New(eng, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ctl.AllowRestripe("input") {
		t.Error("cold cluster admitted a restripe")
	}
	for i := 0; i < 4; i++ {
		ctl.ObserveFetch(0, 200*sim.Microsecond)
	}
	if !ctl.AllowRestripe("input") {
		t.Error("hot cluster denied a restripe")
	}
	ctl.MigrationPlanned("input")
	if ctl.AllowRestripe("input") {
		t.Error("admitted during cool-down")
	}
	allowed, denied := ctl.Admissions()
	if allowed != 1 || denied != 2 {
		t.Errorf("admissions = (%d, %d), want (1, 2)", allowed, denied)
	}
	if got := ctl.ClusterP99(); got < 200*sim.Microsecond {
		t.Errorf("cluster p99 = %v, want >= 200µs", got)
	}
	if sk := ctl.MergedFetchSketch(); sk.Count() != 4 {
		t.Errorf("merged sketch count = %d, want 4", sk.Count())
	}
}
