// Package control is the unified p99 latency control plane: one
// controller that replaces the two independent feedback loops which used
// to fight each other — the cache Manager pinning replicas from mean
// fetch-latency windows while the restripe Migrator invalidated the very
// strips the Manager just pinned.
//
// The controller subscribes per-server latency samples from two sources:
// halo-fetch latencies forwarded by the cache manager's latency sink
// (the tuning signal) and raw data-RPC latencies from the pfs client
// paths (observability). Each sample lands in a deterministic quantile
// sketch (metrics.LatencySketch); decisions key on a configurable
// percentile — p99 by default — never on the mean, following
// DynamicCache's shard manager and ScaleStore's observation that
// tail-latency thresholds with hysteresis are what make adaptive
// placement converge.
//
// Convergence machinery, in order of defense:
//
//   - Hysteresis band: scale up only above LatencyHigh, scale down only
//     below LatencyLow; windows landing inside the band hold.
//   - Streaks: a threshold crossing must persist for UpStreak (resp.
//     DownStreak) consecutive windows before acting, so one noisy window
//     moves nothing.
//   - Cool-down: any restripe lifecycle event (plan, strip flip,
//     completion) opens a quiet period during which replica tuning is
//     suppressed and no new migration is admitted. Migration shuffles
//     placements and invalidates cached strips; tuning on its wake would
//     be tuning on noise.
//   - Migration-traffic exclusion: RPC samples tagged as restripe copy
//     traffic are counted but never enter a sketch that feeds decisions.
//
// Everything runs on the DES clock as a chain of daemon timers, exactly
// like the subsystems it coordinates: no wall clock, no goroutines, no
// floats in any decision path, byte-identical across runs.
package control

import (
	"fmt"
	"sort"

	"github.com/hpcio/das/internal/cache"
	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/sim"
)

// Config tunes the controller. The zero value is usable: Normalize fills
// in defaults sized for the experiment cluster.
type Config struct {
	// SampleEvery is the controller's tick period on the DES clock; each
	// tick closes one sampling window per server.
	SampleEvery sim.Time
	// Percentile is the tail quantile decisions key on (default 99).
	Percentile int
	// LatencyHigh is the scale-up threshold: a server whose window
	// percentile sits at or above it for UpStreak windows gets its hottest
	// cached strips pinned.
	LatencyHigh sim.Time
	// LatencyLow is the scale-down threshold: at or below it for
	// DownStreak windows, idle pins are released. LatencyLow must be
	// strictly below LatencyHigh — the gap is the hysteresis band.
	LatencyLow sim.Time
	// MinWindowSamples is the minimum number of fetch samples a window
	// needs before its percentile counts as a verdict.
	MinWindowSamples int64
	// UpStreak / DownStreak are how many consecutive verdict windows a
	// threshold crossing must persist before the controller acts.
	UpStreak   int
	DownStreak int
	// Cooldown is the quiet period a restripe lifecycle event opens:
	// while it runs, tuning actions are suppressed (streaks keep
	// accumulating) and no new migration is admitted.
	Cooldown sim.Time
}

// Normalize fills zero fields with defaults and validates the rest.
func (c Config) Normalize() (Config, error) {
	if c.SampleEvery == 0 {
		c.SampleEvery = sim.Millisecond
	}
	if c.SampleEvery < 0 {
		return c, fmt.Errorf("control: negative sample period %v", c.SampleEvery)
	}
	if c.Percentile == 0 {
		c.Percentile = 99
	}
	if c.Percentile < 1 || c.Percentile > 100 {
		return c, fmt.Errorf("control: percentile %d outside [1,100]", c.Percentile)
	}
	if c.LatencyHigh == 0 {
		c.LatencyHigh = 500 * sim.Microsecond
	}
	if c.LatencyLow == 0 {
		c.LatencyLow = 100 * sim.Microsecond
	}
	if c.LatencyLow >= c.LatencyHigh {
		return c, fmt.Errorf("control: LatencyLow %v >= LatencyHigh %v (hysteresis band is empty)", c.LatencyLow, c.LatencyHigh)
	}
	if c.LatencyLow < 0 {
		return c, fmt.Errorf("control: negative LatencyLow %v", c.LatencyLow)
	}
	if c.MinWindowSamples == 0 {
		c.MinWindowSamples = 4
	}
	if c.MinWindowSamples < 0 {
		return c, fmt.Errorf("control: negative MinWindowSamples %d", c.MinWindowSamples)
	}
	if c.UpStreak == 0 {
		c.UpStreak = 2
	}
	if c.DownStreak == 0 {
		c.DownStreak = 2
	}
	if c.UpStreak < 1 || c.DownStreak < 1 {
		return c, fmt.Errorf("control: streaks must be >= 1 (up %d, down %d)", c.UpStreak, c.DownStreak)
	}
	if c.Cooldown == 0 {
		c.Cooldown = 20 * sim.Millisecond
	}
	if c.Cooldown < 0 {
		return c, fmt.Errorf("control: negative cooldown %v", c.Cooldown)
	}
	return c, nil
}

// Action is one controller decision, logged for reports and the
// determinism tests.
type Action struct {
	At     sim.Time
	Server int
	Kind   string // "promote" or "demote"
	P99    sim.Time
	Count  int // strips the pass actually pinned/unpinned
}

func (a Action) String() string {
	return fmt.Sprintf("[%v] server %d %s x%d (window tail=%v)", a.At, a.Server, a.Kind, a.Count, a.P99)
}

// serverState is one server's view inside the controller.
type serverState struct {
	win *metrics.LatencySketch // fetch latencies this window (tuning)
	cum *metrics.LatencySketch // lifetime fetch latencies
	rpc *metrics.LatencySketch // lifetime non-migration data-RPC latencies

	hotStreak  int
	coldStreak int
	lastP99    sim.Time // last verdict window's percentile

	promotions int64 // strips pinned by this controller
	demotions  int64 // strips unpinned by this controller
}

// fileState is one file's operation-latency heat: every tenant operation
// touching the file lands one sample here, so a skewed workload makes hot
// files visibly hot instead of smearing their latency across per-server
// aggregates.
type fileState struct {
	sketch *metrics.LatencySketch
	ops    int64
}

// Controller is the unified p99 latency controller. It is engine-
// goroutine state driven by daemon timers, like the subsystems it
// coordinates.
type Controller struct {
	eng     *sim.Engine
	cfg     Config
	servers []*serverState
	files   map[string]*fileState // per-file heat, fed by ObserveFileOp
	mgr     *cache.Manager        // nil until AttachCache: pure observer mode

	// cool-down state: the last restripe lifecycle event seen.
	restripeSeen   bool
	lastRestripeAt sim.Time

	// sample accounting, for reports and the exclusion regression tests.
	tuningSamples    int64 // fetch samples admitted into tuning sketches
	rpcSamples       int64 // non-migration RPC samples
	migrationSamples int64 // migration-tagged RPC samples (excluded)

	cooldownSuppressed int64 // tuning actions deferred by a cool-down
	admitsAllowed      int64
	admitsDenied       int64

	actions []Action
	ticks   int64
	timer   *sim.Timer
	started bool
}

// New builds a controller over nServers storage servers.
func New(eng *sim.Engine, nServers int, cfg Config) (*Controller, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	if nServers <= 0 {
		return nil, fmt.Errorf("control: server count %d", nServers)
	}
	c := &Controller{eng: eng, cfg: cfg, files: make(map[string]*fileState)}
	for i := 0; i < nServers; i++ {
		c.servers = append(c.servers, &serverState{
			win: metrics.NewLatencySketch(),
			cum: metrics.NewLatencySketch(),
			rpc: metrics.NewLatencySketch(),
		})
	}
	return c, nil
}

// Config returns the normalized configuration.
func (c *Controller) Config() Config { return c.cfg }

// AttachCache hands the cache manager's promote/demote trigger to this
// controller: the manager's own mean-window tick stops, its latency
// samples flow into the controller's sketches, and pins move only when a
// percentile threshold with hysteresis says so.
func (c *Controller) AttachCache(mgr *cache.Manager) {
	c.mgr = mgr
	mgr.SetExternalTuning(true)
	mgr.SetLatencySink(c.ObserveFetch)
}

// Start arms the control loop. Ticks are daemon timers, so an idle system
// still terminates.
func (c *Controller) Start() {
	if c.started || c.cfg.SampleEvery <= 0 {
		return
	}
	c.started = true
	c.timer = c.eng.AfterFuncDaemon(c.cfg.SampleEvery, c.tick)
}

// Stop disarms the control loop.
func (c *Controller) Stop() {
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	c.started = false
}

// ObserveFetch records one halo-fetch latency sample for a server — the
// tuning signal, forwarded by the cache manager's latency sink.
func (c *Controller) ObserveFetch(srv int, lat sim.Time) {
	if srv < 0 || srv >= len(c.servers) {
		return
	}
	s := c.servers[srv]
	s.win.Observe(lat)
	s.cum.Observe(lat)
	c.tuningSamples++
}

// ObserveRPCLatency implements pfs.LatencyObserver: raw data-RPC samples
// from the client call paths. Migration-tagged samples are counted and
// dropped — background restripe copies must never look like foreground
// load — and the rest feed per-server observability sketches, not the
// tuning windows (the fetch sink is the tuning signal).
func (c *Controller) ObserveRPCLatency(srv int, migration bool, lat sim.Time) {
	if migration {
		c.migrationSamples++
		return
	}
	c.rpcSamples++
	if srv >= 0 && srv < len(c.servers) {
		c.servers[srv].rpc.Observe(lat)
	}
}

// ObserveFileOp records one completed operation's latency against the
// file it touched — the per-file heat signal. The multi-tenant engine
// feeds it once per tenant operation; single-file experiments never call
// it and keep the per-server admission semantics unchanged.
func (c *Controller) ObserveFileOp(file string, lat sim.Time) {
	st, ok := c.files[file]
	if !ok {
		st = &fileState{sketch: metrics.NewLatencySketch()}
		c.files[file] = st
	}
	st.sketch.Observe(lat)
	st.ops++
}

// FileP99 returns a file's operation-latency tail at the configured
// percentile and its sample count; (0, 0) for a file never observed.
func (c *Controller) FileP99(file string) (sim.Time, int64) {
	st, ok := c.files[file]
	if !ok {
		return 0, 0
	}
	return st.sketch.Quantile(c.cfg.Percentile), st.sketch.Count()
}

// FileStat is one file's heat snapshot for reports.
type FileStat struct {
	File  string   `json:"file"`
	Ops   int64    `json:"ops"`
	P50   sim.Time `json:"p50"`
	P99   sim.Time `json:"p99"`
	MaxNS sim.Time `json:"max"`
}

// FileStats returns per-file heat snapshots sorted by file name — a
// deterministic order regardless of map iteration.
func (c *Controller) FileStats() []FileStat {
	names := make([]string, 0, len(c.files))
	for name := range c.files {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]FileStat, 0, len(names))
	for _, name := range names {
		st := c.files[name]
		out = append(out, FileStat{
			File:  name,
			Ops:   st.ops,
			P50:   st.sketch.Quantile(50),
			P99:   st.sketch.Quantile(c.cfg.Percentile),
			MaxNS: st.sketch.Max(),
		})
	}
	return out
}

// noteRestripe restarts the cool-down clock.
func (c *Controller) noteRestripe() {
	c.restripeSeen = true
	c.lastRestripeAt = c.eng.Now()
}

// MigrationPlanned implements restripe.Watcher.
func (c *Controller) MigrationPlanned(string) { c.noteRestripe() }

// StripFlipped implements restripe.Watcher.
func (c *Controller) StripFlipped(string, int64) { c.noteRestripe() }

// MigrationCompleted implements restripe.Watcher.
func (c *Controller) MigrationCompleted(string) { c.noteRestripe() }

// InCooldown reports whether a restripe lifecycle event's quiet period is
// still running.
func (c *Controller) InCooldown() bool {
	return c.restripeSeen && c.eng.Now() < c.lastRestripeAt+c.cfg.Cooldown
}

// AllowRestripe is the migrator's admission gate: a new migration starts
// only when no cool-down is running and the latency evidence says the
// named file is actually worth moving.
//
// With per-file heat available (ObserveFileOp has been fed — the
// multi-tenant path), the verdict is per file: the file itself must have
// a sample quorum with its operation tail at or above the scale-up
// threshold. Under real skew this is what stops one hot file's congestion
// from admitting a migration for every lukewarm file on the same servers
// — the failure mode of the per-server aggregate.
//
// Without per-file observations (the single-file experiments), the gate
// falls back to the original per-server rule: some server's cumulative
// fetch tail at or above the threshold. A cold or already-converged
// cluster keeps its layout; a deferred file is retried on later
// observations.
func (c *Controller) AllowRestripe(file string) bool {
	if c.InCooldown() {
		c.admitsDenied++
		return false
	}
	if len(c.files) > 0 {
		st, ok := c.files[file]
		if ok && st.sketch.Count() >= c.cfg.MinWindowSamples && st.sketch.Quantile(c.cfg.Percentile) >= c.cfg.LatencyHigh {
			c.admitsAllowed++
			return true
		}
		c.admitsDenied++
		return false
	}
	for _, s := range c.servers {
		if s.cum.Count() >= c.cfg.MinWindowSamples && s.cum.Quantile(c.cfg.Percentile) >= c.cfg.LatencyHigh {
			c.admitsAllowed++
			return true
		}
	}
	c.admitsDenied++
	return false
}

// tick closes one sampling window per server: verdict from the window
// percentile against the hysteresis band, streak bookkeeping, then the
// promote/demote passes — unless a cool-down holds them, in which case
// streaks persist so the deferred action fires right after the quiet
// period. Servers are visited in index order; all state is engine-
// goroutine state — fully deterministic.
func (c *Controller) tick() {
	c.ticks++
	cool := c.InCooldown()
	for i, s := range c.servers {
		n := s.win.Count()
		switch {
		case n >= c.cfg.MinWindowSamples:
			p := s.win.Quantile(c.cfg.Percentile)
			s.lastP99 = p
			switch {
			case p >= c.cfg.LatencyHigh:
				s.hotStreak++
				s.coldStreak = 0
			case p <= c.cfg.LatencyLow:
				s.coldStreak++
				s.hotStreak = 0
			default: // inside the band: hold
				s.hotStreak, s.coldStreak = 0, 0
			}
		case n == 0 && c.mgr != nil && c.mgr.WindowHits(i) > 0:
			// No fetches but cache hits: the cache absorbs the halo traffic
			// at zero fetch cost — the strongest possible scale-down signal.
			s.lastP99 = 0
			s.coldStreak++
			s.hotStreak = 0
		default:
			// Too few samples for a verdict: hold streaks as they are.
		}
		if c.mgr == nil {
			continue
		}
		if s.hotStreak >= c.cfg.UpStreak {
			if cool {
				c.cooldownSuppressed++
			} else {
				s.hotStreak = 0
				if k := c.mgr.PromoteHotServer(i); k > 0 {
					s.promotions += int64(k)
					c.actions = append(c.actions, Action{At: c.eng.Now(), Server: i, Kind: "promote", P99: s.lastP99, Count: k})
				}
			}
		}
		if s.coldStreak >= c.cfg.DownStreak {
			if cool {
				c.cooldownSuppressed++
			} else {
				s.coldStreak = 0
				if k := c.mgr.DemoteIdleServer(i); k > 0 {
					s.demotions += int64(k)
					c.actions = append(c.actions, Action{At: c.eng.Now(), Server: i, Kind: "demote", P99: s.lastP99, Count: k})
				}
			}
		}
	}
	for _, s := range c.servers {
		s.win.Reset()
	}
	if c.mgr != nil {
		c.mgr.ResetWindows()
	}
	c.timer = c.eng.AfterFuncDaemon(c.cfg.SampleEvery, c.tick)
}

// MergedFetchSketch returns a copy of the cluster-wide cumulative fetch
// sketch: every server's lifetime halo-fetch samples merged. Callers may
// snapshot it and Delta later snapshots against it for per-interval
// quantiles.
func (c *Controller) MergedFetchSketch() *metrics.LatencySketch {
	out := metrics.NewLatencySketch()
	for _, s := range c.servers {
		out.Merge(s.cum)
	}
	return out
}

// ClusterP99 returns the configured percentile of the merged cumulative
// fetch sketch — the observed-tail signal the prediction core tiers the
// offload decision on.
func (c *Controller) ClusterP99() sim.Time {
	return c.MergedFetchSketch().Quantile(c.cfg.Percentile)
}

// ServerStat is one server's controller-eye view for reports.
type ServerStat struct {
	Server     int      `json:"server"`
	FetchCount int64    `json:"fetch_samples"`
	FetchP50   sim.Time `json:"fetch_p50"`
	FetchP99   sim.Time `json:"fetch_p99"`
	RPCCount   int64    `json:"rpc_samples"`
	RPCP99     sim.Time `json:"rpc_p99"`
	Promotions int64    `json:"promotions"`
	Demotions  int64    `json:"demotions"`
}

func (s ServerStat) String() string {
	return fmt.Sprintf("server %d: %d fetch samples (p50=%v p99=%v), %d rpc samples (p99=%v), promo=%d demo=%d",
		s.Server, s.FetchCount, s.FetchP50, s.FetchP99, s.RPCCount, s.RPCP99, s.Promotions, s.Demotions)
}

// Stats returns per-server snapshots in server order.
func (c *Controller) Stats() []ServerStat {
	out := make([]ServerStat, 0, len(c.servers))
	for i, s := range c.servers {
		out = append(out, ServerStat{
			Server:     i,
			FetchCount: s.cum.Count(),
			FetchP50:   s.cum.Quantile(50),
			FetchP99:   s.cum.Quantile(c.cfg.Percentile),
			RPCCount:   s.rpc.Count(),
			RPCP99:     s.rpc.Quantile(c.cfg.Percentile),
			Promotions: s.promotions,
			Demotions:  s.demotions,
		})
	}
	return out
}

// Actions returns the controller's decision log in order.
func (c *Controller) Actions() []Action { return c.actions }

// Ticks returns how many control ticks have run.
func (c *Controller) Ticks() int64 { return c.ticks }

// TuningSamples returns how many fetch samples entered tuning sketches.
func (c *Controller) TuningSamples() int64 { return c.tuningSamples }

// RPCSamples returns how many non-migration RPC samples were observed.
func (c *Controller) RPCSamples() int64 { return c.rpcSamples }

// MigrationSamplesExcluded returns how many migration-tagged RPC samples
// were counted and excluded from every decision sketch.
func (c *Controller) MigrationSamplesExcluded() int64 { return c.migrationSamples }

// CooldownSuppressed returns how many tuning actions a cool-down deferred.
func (c *Controller) CooldownSuppressed() int64 { return c.cooldownSuppressed }

// Admissions returns the restripe admission gate's allowed/denied counts.
func (c *Controller) Admissions() (allowed, denied int64) {
	return c.admitsAllowed, c.admitsDenied
}
