package simnet

import (
	"testing"

	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/sim"
)

// TestCallCancelableAbandonedReplyReclaimed checks the abandoned-reply
// contract end to end: a call that gives up leaves its reply mailbox
// armed, the late response is dropped unobserved when it finally lands,
// the mailbox rejoins the pool, and a later RPC reusing that mailbox
// never sees the stale response.
func TestCallCancelableAbandonedReplyReclaimed(t *testing.T) {
	eng, net := newNet(t, 2, 1e9, 0)
	eng.SpawnDaemon("server", func(p *sim.Proc) {
		port := net.Node(1).Port("rpc")
		for {
			req := port.Get(p)
			if req.Payload.(string) == "slow" {
				p.Sleep(sim.Millisecond) // respond long after the caller gave up
				net.Respond(p, req, "late", 10, metrics.ServerToClient)
				continue
			}
			net.Respond(p, req, "fresh", 10, metrics.ServerToClient)
		}
	})
	var gaveUp bool
	var second Message
	eng.Spawn("client", func(p *sim.Proc) {
		_, ok := net.CallCancelable(p,
			Message{From: 0, To: 1, Port: "rpc", Size: 10, Payload: "slow", Class: metrics.ClientToServer},
			0, 100*sim.Microsecond, nil)
		gaveUp = !ok
		// Wait past the late response's arrival, then issue a fresh RPC: it
		// reuses the reclaimed mailbox and must get its own answer.
		p.Sleep(2 * sim.Millisecond)
		second = net.Call(p,
			Message{From: 0, To: 1, Port: "rpc", Size: 10, Payload: "quick", Class: metrics.ClientToServer})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !gaveUp {
		t.Fatal("first call did not give up at its deadline")
	}
	if got := second.Payload.(string); got != "fresh" {
		t.Fatalf("second call saw %q — the abandoned response leaked through", got)
	}
	// Both RPCs rode the single pooled mailbox: the abandoned one was
	// reclaimed (not leaked), and nothing spurious joined the pool.
	if len(net.replyFree) != 1 {
		t.Fatalf("reply pool holds %d mailboxes after run, want 1", len(net.replyFree))
	}
	eng.Shutdown()
}

// TestCallCancelableAbortReclaims covers the abort-driven give-up path:
// the reply mailbox is likewise reclaimed once the response lands.
func TestCallCancelableAbortReclaims(t *testing.T) {
	eng, net := newNet(t, 2, 1e9, 0)
	eng.SpawnDaemon("server", func(p *sim.Proc) {
		port := net.Node(1).Port("rpc")
		for {
			req := port.Get(p)
			p.Sleep(sim.Millisecond)
			net.Respond(p, req, "late", 10, metrics.ServerToClient)
		}
	})
	eng.Spawn("client", func(p *sim.Proc) {
		_, ok := net.CallCancelable(p,
			Message{From: 0, To: 1, Port: "rpc", Size: 10, Payload: "x", Class: metrics.ClientToServer},
			50*sim.Microsecond, 0, func() bool { return true })
		if ok {
			t.Error("call succeeded despite aborting")
		}
		p.Sleep(2 * sim.Millisecond) // let the late response land and reclaim
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(net.replyFree) != 1 {
		t.Fatalf("reply pool holds %d mailboxes after run, want 1", len(net.replyFree))
	}
	eng.Shutdown()
}

// TestFastAndClassicNetworkIdentical runs the same mixed Send/Call/
// SendAsync workload under the fast default and the classic construction
// and checks the simulations are byte-identical: event count, clock, and
// traffic counters.
func TestFastAndClassicNetworkIdentical(t *testing.T) {
	run := func(opts sim.EngineOpts) (uint64, sim.Time, map[metrics.TrafficClass]int64) {
		eng := sim.NewEngineWith(opts)
		traffic := metrics.NewTraffic()
		net := New(eng, Config{BytesPerSec: 1e6, Latency: 50 * sim.Microsecond}, traffic)
		for i := 0; i < 4; i++ {
			net.AddNode(i)
		}
		eng.SpawnDaemon("server", func(p *sim.Proc) {
			port := net.Node(3).Port("rpc")
			for {
				req := port.Get(p)
				net.Respond(p, req, "ok", 2048, metrics.ServerToClient)
			}
		})
		for c := 0; c < 3; c++ {
			c := c
			eng.Spawn("client", func(p *sim.Proc) {
				for i := 0; i < 5; i++ {
					net.Call(p, Message{From: c, To: 3, Port: "rpc", Size: 4096,
						Payload: "req", Class: metrics.ClientToServer})
					done := net.SendAsync(p, Message{From: c, To: (c + 1) % 3, Port: "peer",
						Size: 1024, Class: metrics.ServerToServer})
					net.Send(p, Message{From: c, To: 3, Port: "oneway", Size: 512,
						Class: metrics.ClientToServer})
					done.Wait(p)
				}
			})
		}
		// Sinks for the one-way and peer traffic.
		eng.SpawnDaemon("sink", func(p *sim.Proc) {
			port := net.Node(3).Port("oneway")
			for {
				port.Get(p)
			}
		})
		for c := 0; c < 3; c++ {
			c := c
			eng.SpawnDaemon("peersink", func(p *sim.Proc) {
				port := net.Node(c).Port("peer")
				for {
					port.Get(p)
				}
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		ev, now, snap := eng.Events(), eng.Now(), traffic.Snapshot()
		eng.Shutdown()
		return ev, now, snap
	}
	evFast, nowFast, trFast := run(sim.EngineOpts{})
	evClassic, nowClassic, trClassic := run(sim.EngineOpts{ClassicDispatch: true, ClassicQueue: true})
	if evFast != evClassic || nowFast != nowClassic {
		t.Fatalf("fast (events %d, now %v) != classic (events %d, now %v)",
			evFast, nowFast, evClassic, nowClassic)
	}
	if !metrics.SnapshotsEqual(trFast, trClassic) {
		t.Fatalf("traffic diverged: fast %v, classic %v", trFast, trClassic)
	}
}
