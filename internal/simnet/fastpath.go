package simnet

import (
	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/sim"
)

// This file is the fast-path construction of a store-and-forward transfer:
// a pooled task chain that walks egress → latency → ingress as inline
// engine events instead of blocking a goroutine through five parks.
//
// Event parity with the classic transfer() is hop-for-hop. Each line pairs
// a classic scheduling point with the chain step that allocates the same
// (at, seq):
//
//	classic (per process p)                 fast (per chain x)
//	─────────────────────────────────────   ─────────────────────────────────
//	egress.Acquire queues p; Release        egress.AcquireTask queues x;
//	  schedules p's grant wake                Release schedules x's grant task
//	Sleep(exDur) after grant                ScheduleTask(exDur) after grant
//	wake: egress.Release, Sleep(latency)    task: egress.Release, ScheduleTask(latency)
//	wake: ingress.Acquire (as egress)       task: ingress.AcquireTask (as egress)
//	Sleep(ixDur) after grant                sync:  ResumeIn(ixDur, caller)
//	                                        async: ScheduleTask(ixDur)
//	wake: ingress.Release, traffic.Add,     sync:  caller's post-Park epilogue
//	  deliver                               async: final task does the same
//
// Sync chains (Send, Respond) end in a process event — the caller's single
// Park/resume — so the epilogue runs with the same event kind and position
// as the classic path's last wake. Async chains (SendAsync, fused Call
// request legs, RespondTask) end in a task event, standing in for the
// child or handler process's last wake.
type xfer struct {
	net      *Network
	state    int
	src, dst *Node
	size     int64
	class    metrics.TrafficClass
	exDur    sim.Time // egress serialization time
	ixDur    sim.Time // ingress serialization time

	// Completion: exactly one of resume (sync) or deliver (async) is set.
	resume  *sim.Proc
	deliver *sim.Mailbox[Message]
	msg     Message
	done    *sim.Signal[struct{}] // optional, fired after async delivery
}

// Chain states, named for what RunTask does when dispatched in that state.
const (
	xsStart         = iota // async spawn stand-in: begin the chain
	xsEgressGranted        // egress units held: schedule serialization
	xsEgressDone           // serialization over: release egress, fly the wire
	xsLatencyDone          // arrived: contend for ingress
	xsIngressGrant         // ingress held: schedule final serialization
	xsFinal                // async epilogue: release, account, deliver
)

func (x *xfer) RunTask() {
	switch x.state {
	case xsStart:
		if x.src == x.dst {
			// Loopback is free and infallible; the one start event matches
			// the classic child's only event (spawn → deliver → exit).
			x.complete()
			return
		}
		x.launch()
	case xsEgressGranted:
		x.state = xsEgressDone
		x.net.eng.ScheduleTask(x.exDur, x)
	case xsEgressDone:
		x.src.egress.Release(1)
		x.state = xsLatencyDone
		x.net.eng.ScheduleTask(x.net.cfg.Latency, x)
	case xsLatencyDone:
		x.state = xsIngressGrant
		if x.dst.ingress.AcquireTask(1, x) {
			x.RunTask()
		}
	case xsIngressGrant:
		if p := x.resume; p != nil {
			// Sync chain: hand the final serialization wait back to the
			// caller as its one resume; it runs the epilogue itself.
			eng, d := x.net.eng, x.ixDur
			x.net.xferPut(x)
			eng.ResumeIn(d, p)
			return
		}
		x.state = xsFinal
		x.net.eng.ScheduleTask(x.ixDur, x)
	case xsFinal:
		x.dst.ingress.Release(1)
		x.net.traffic.Add(x.class, x.size)
		x.complete()
	}
}

// launch contends for the egress NIC, continuing inline on an immediate
// grant. Remote chains only; loopback never reaches here.
func (x *xfer) launch() {
	x.state = xsEgressGranted
	if x.src.egress.AcquireTask(1, x) {
		x.RunTask()
	}
}

// complete delivers the payload, fires the optional signal, and returns
// the chain to the pool.
func (x *xfer) complete() {
	deliver, msg, done := x.deliver, x.msg, x.done
	x.net.xferPut(x)
	deliver.Put(msg)
	if done != nil {
		done.Fire(struct{}{})
	}
}

// startSync launches a chain that resumes p after the full pipeline; the
// caller must Park immediately and run the classic epilogue (ingress
// release, traffic accounting, delivery) after waking.
func (n *Network) startSync(p *sim.Proc, src, dst *Node, size int64) {
	x := n.xferGet()
	dur := sim.TransferTime(size, n.cfg.BytesPerSec)
	x.src, x.dst, x.size = src, dst, size
	x.exDur, x.ixDur = dur, dur
	x.resume = p
	x.launch()
}

// startAsync launches a self-completing chain that Puts msg into deliver
// after the full pipeline. Callers on a process schedule nothing extra —
// the chain's first step runs inline in their current event, exactly where
// the classic path would start serializing. Callers standing in for a
// spawned child (SendAsync) set state xsStart and schedule the chain
// instead; see SendAsync.
func (n *Network) startAsync(src, dst *Node, size int64, class metrics.TrafficClass, deliver *sim.Mailbox[Message], msg Message) {
	x := n.xferGet()
	dur := sim.TransferTime(size, n.cfg.BytesPerSec)
	x.src, x.dst, x.size, x.class = src, dst, size, class
	x.exDur, x.ixDur = dur, dur
	x.deliver, x.msg = deliver, msg
	x.launch()
}

// startSpawned is startAsync for callers standing in for a spawned child
// process (SendAsync): instead of beginning inline, the chain starts at a
// zero-delay task event occupying the exact (at, seq) of the child's spawn
// event. Loopback is resolved in that start event, as the classic child
// would in its only wake.
func (n *Network) startSpawned(src, dst *Node, size int64, class metrics.TrafficClass, deliver *sim.Mailbox[Message], msg Message, done *sim.Signal[struct{}]) {
	x := n.xferGet()
	dur := sim.TransferTime(size, n.cfg.BytesPerSec)
	x.src, x.dst, x.size, x.class = src, dst, size, class
	x.exDur, x.ixDur = dur, dur
	x.deliver, x.msg = deliver, msg
	x.done = done
	x.state = xsStart
	n.eng.ScheduleTask(0, x)
}

// Responder consumes an RPC response delivered by CallTask. An interface
// rather than a func so pooled caller state receives without allocating a
// closure per call.
type Responder interface {
	OnResponse(resp Message)
}

// callTask links one in-flight CallTask's reply mailbox to its Responder:
// when the response lands it re-pools the mailbox and itself, then hands
// the response over. Pooled per network.
type callTask struct {
	net   *Network
	reply *sim.Mailbox[Message]
	r     Responder
}

func (c *callTask) OnDelivery(resp Message) {
	n, reply, r := c.net, c.reply, c.r
	c.reply, c.r = nil, nil
	n.callFree = append(n.callFree, c)
	n.replyFree = append(n.replyFree, reply)
	r.OnResponse(resp)
}

// CallTask is the task-based construction of the fused Call: the request
// transfer runs as a task chain, and r.OnResponse runs inline in the event
// a process caller's reply wake-up would occupy — the whole RPC costs zero
// goroutine switches. Only legal under the fast path (no classic dispatch,
// no active faults); callers check FastOK and fall back to Call from a
// process otherwise.
func (n *Network) CallTask(msg Message, r Responder) {
	if !n.fastOK() {
		panic("simnet: CallTask without the fast path")
	}
	reply := n.acquireReply()
	msg.Reply = reply
	c := n.callGet()
	c.reply, c.r = reply, r
	reply.Expect(c)
	src, dst := n.Node(msg.From), n.Node(msg.To)
	if src == dst {
		dst.Port(msg.Port).Put(msg)
		return
	}
	n.startAsync(src, dst, msg.Size, msg.Class, dst.Port(msg.Port), msg)
}

func (n *Network) callGet() *callTask {
	if k := len(n.callFree); k > 0 {
		c := n.callFree[k-1]
		n.callFree[k-1] = nil
		n.callFree = n.callFree[:k-1]
		return c
	}
	return &callTask{net: n}
}

func (n *Network) xferGet() *xfer {
	if k := len(n.xferFree); k > 0 {
		x := n.xferFree[k-1]
		n.xferFree[k-1] = nil
		n.xferFree = n.xferFree[:k-1]
		return x
	}
	return &xfer{net: n}
}

// xferPut zeroes the chain (dropping payload references) and pools it.
func (n *Network) xferPut(x *xfer) {
	net := x.net
	*x = xfer{net: net}
	n.xferFree = append(n.xferFree, x)
}
