// Package simnet models the cluster interconnect for the DAS simulator.
//
// Each node has an egress and an ingress NIC, modeled as exclusive
// sim.Resources: a transfer of size S over a NIC sustaining B bytes/sec
// occupies that NIC for S/B. A message therefore costs
//
//	egress(serialize) → wire latency → ingress(serialize)
//
// in store-and-forward fashion, and concurrent transfers through the same
// node queue up on its NICs. This is the contention the paper's Normal
// Active Storage suffers from: a storage server that both computes and
// serves dependent strips to its neighbors saturates its own NICs.
//
// Loopback messages (From == To) are free: data that stays on a node does
// not cross the interconnect, which is exactly the saving DAS engineers
// for with its dependence-aware layout.
//
// Fault-free transfers on a fast-dispatch engine run as inline task chains
// (fastpath.go) instead of blocking the sender through five parks; the
// chains schedule the same events at the same (at, seq) positions, so both
// constructions simulate identically. Fault-active transfers always take
// the classic path, where the per-segment fault checks live.
package simnet

import (
	"fmt"

	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/sim"
)

// Message is one unit of traffic between nodes. Payload carries the
// protocol-level request or response defined by higher layers; Size is the
// simulated wire size in bytes, which need not match the in-memory size of
// Payload (e.g. a read request is a few bytes even though its response is
// a strip).
type Message struct {
	From, To int
	Port     string
	Size     int64
	Class    metrics.TrafficClass
	Payload  any
	// Reply, when non-nil, is where the recipient should deliver its
	// response via Network.Respond. Reply mailboxes bypass port lookup so
	// each in-flight request gets a private response channel.
	Reply *sim.Mailbox[Message]
}

// Config sets the interconnect parameters.
type Config struct {
	// BytesPerSec is the per-NIC, per-direction bandwidth.
	BytesPerSec float64
	// Latency is the one-way wire latency added to every remote message.
	Latency sim.Time
}

// FaultPolicy is the hook through which an injected fault layer perturbs
// delivery. The network consults it on every remote transfer once Active
// reports true; implementations must be cheap and engine-goroutine-safe.
type FaultPolicy interface {
	// Active reports whether any fault has ever been applied. While it
	// returns false the network takes the exact fault-free fast path.
	Active() bool
	// Down reports whether a node is crashed. Messages from or to a down
	// node are lost.
	Down(node int) bool
	// NICFactor scales a node's NIC bandwidth (1 = healthy).
	NICFactor(node int) float64
	// DropMessage decides whether one remote message is dropped, or
	// delivered late by the returned extra delay.
	DropMessage(from, to int) (drop bool, delay sim.Time)
	// NoteDropped records a message lost to a fault.
	NoteDropped(from, to int)
}

// Network is the interconnect connecting a fixed set of nodes.
type Network struct {
	eng     *sim.Engine
	cfg     Config
	traffic *metrics.Traffic
	faults  FaultPolicy

	// nodes is dense, indexed by node id: cluster ids are small contiguous
	// integers, and a slice index beats a map lookup on every Send.
	nodes []*Node

	// portNames interns port names to small integers so per-node port
	// tables are dense slices too. Clusters use a handful of distinct
	// ports, so the linear scan is effectively free. portSufs holds the
	// precomputed ":<name>" suffix for lazy mailbox naming.
	portNames []string
	portSufs  []string

	// replyFree recycles the private reply mailboxes Call creates, one per
	// in-flight request. A mailbox returns to the list once its single
	// response has been consumed, so request/response traffic allocates no
	// mailboxes at steady state.
	replyFree []*sim.Mailbox[Message]

	// xferFree recycles fast-path transfer chains (fastpath.go).
	xferFree []*xfer
	// callFree recycles CallTask bridges (fastpath.go).
	callFree []*callTask
}

// Node is one endpoint on the network.
type Node struct {
	id      int
	egress  *sim.Resource
	ingress *sim.Resource
	ports   []*sim.Mailbox[Message] // dense, indexed by interned port index
	net     *Network
}

// New creates a network with the given parameters. Traffic may be nil, in
// which case a private collector is created.
func New(eng *sim.Engine, cfg Config, traffic *metrics.Traffic) *Network {
	if traffic == nil {
		traffic = metrics.NewTraffic()
	}
	return &Network{eng: eng, cfg: cfg, traffic: traffic}
}

// Traffic returns the collector recording this network's byte counts.
func (n *Network) Traffic() *metrics.Traffic { return n.traffic }

// SetFaults installs the fault layer the network consults on every remote
// transfer. Pass nil to remove it.
func (n *Network) SetFaults(f FaultPolicy) { n.faults = f }

// Config returns the interconnect parameters.
func (n *Network) Config() Config { return n.cfg }

// fastOK reports whether transfers may run as inline task chains: the
// engine dispatches fast and no fault has ever activated. Checked once per
// transfer, at the same commit point where the classic path samples
// FaultPolicy.Active.
func (n *Network) fastOK() bool {
	return n.eng.FastDispatch() && (n.faults == nil || !n.faults.Active())
}

// FastOK reports whether fast-path dispatch is in effect. Higher layers
// (pfs) consult it to choose between inline request chains and classic
// handler processes.
func (n *Network) FastOK() bool { return n.fastOK() }

// AddNode registers a node id and returns its endpoint. Adding the same id
// twice panics: node identity is structural in the simulator.
func (n *Network) AddNode(id int) *Node {
	if id < 0 {
		panic(fmt.Sprintf("simnet: negative node id %d", id))
	}
	for len(n.nodes) <= id {
		n.nodes = append(n.nodes, nil)
	}
	if n.nodes[id] != nil {
		panic(fmt.Sprintf("simnet: duplicate node id %d", id))
	}
	node := &Node{
		id:      id,
		egress:  sim.NewResourceIndexed(n.eng, "node", id, ".egress", 1),
		ingress: sim.NewResourceIndexed(n.eng, "node", id, ".ingress", 1),
		net:     n,
	}
	n.nodes[id] = node
	return node
}

// Node returns the endpoint for id, panicking if it was never added.
func (n *Network) Node(id int) *Node {
	if id < 0 || id >= len(n.nodes) || n.nodes[id] == nil {
		panic(fmt.Sprintf("simnet: unknown node id %d", id))
	}
	return n.nodes[id]
}

// portIndex interns a port name, assigning the next index on first sight.
func (n *Network) portIndex(name string) int {
	for i, s := range n.portNames {
		if s == name {
			return i
		}
	}
	n.portNames = append(n.portNames, name)
	n.portSufs = append(n.portSufs, ":"+name)
	return len(n.portNames) - 1
}

// ID returns the node's identifier.
func (nd *Node) ID() int { return nd.id }

// Port returns the named mailbox on this node, creating it on first use.
// Servers Get from (or install a dispatcher on) their ports; the network
// Puts delivered messages.
func (nd *Node) Port(name string) *sim.Mailbox[Message] {
	idx := nd.net.portIndex(name)
	for len(nd.ports) <= idx {
		nd.ports = append(nd.ports, nil)
	}
	mb := nd.ports[idx]
	if mb == nil {
		mb = sim.NewMailboxIndexed[Message](nd.net.eng, "node", nd.id, nd.net.portSufs[idx])
		nd.ports[idx] = mb
	}
	return mb
}

// EgressBusy returns how long this node's egress NIC has been occupied.
func (nd *Node) EgressBusy() sim.Time { return nd.egress.BusyTime() }

// IngressBusy returns how long this node's ingress NIC has been occupied.
func (nd *Node) IngressBusy() sim.Time { return nd.ingress.BusyTime() }

// transfer performs the timed store-and-forward movement of size bytes
// from src to dst on behalf of process p, reporting whether the message
// survived any injected faults. Loopback transfers cost nothing and cannot
// be lost: a node always reaches itself. This is the classic construction;
// fault-free transfers on a fast engine use the task chains in fastpath.go
// instead, with identical event schedules.
func (n *Network) transfer(p *sim.Proc, src, dst *Node, size int64, class metrics.TrafficClass) bool {
	if src.id == dst.id {
		return true
	}
	f := n.faults
	if f == nil || !f.Active() {
		src.egress.Use(p, 1, sim.TransferTime(size, n.cfg.BytesPerSec))
		p.Sleep(n.cfg.Latency)
		dst.ingress.Use(p, 1, sim.TransferTime(size, n.cfg.BytesPerSec))
		n.traffic.Add(class, size)
		return true
	}
	if f.Down(src.id) {
		// The sender's node is crashed: whatever its frozen processes were
		// emitting never reaches the wire.
		f.NoteDropped(src.id, dst.id)
		return false
	}
	src.egress.Use(p, 1, sim.TransferTime(size, n.cfg.BytesPerSec*f.NICFactor(src.id)))
	p.Sleep(n.cfg.Latency)
	if drop, delay := f.DropMessage(src.id, dst.id); drop {
		f.NoteDropped(src.id, dst.id)
		return false
	} else if delay > 0 {
		p.Sleep(delay)
	}
	if f.Down(dst.id) {
		// Crashed before the message arrived: the bytes crossed the wire
		// but nobody is listening.
		f.NoteDropped(src.id, dst.id)
		return false
	}
	dst.ingress.Use(p, 1, sim.TransferTime(size, n.cfg.BytesPerSec*f.NICFactor(dst.id)))
	n.traffic.Add(class, size)
	return true
}

// Send moves msg from msg.From to msg.To, blocking p for the transfer
// time, then delivers it to the destination port. The sending process
// models the full store-and-forward pipeline, so back-to-back Sends from
// one process are serialized, as they would be through one socket. A
// message lost to an injected fault simply never arrives; senders that
// need delivery confirmation use Call with a timeout.
func (n *Network) Send(p *sim.Proc, msg Message) {
	src, dst := n.Node(msg.From), n.Node(msg.To)
	if src == dst {
		dst.Port(msg.Port).Put(msg)
		return
	}
	if n.fastOK() {
		// One park for the whole pipeline: the chain runs the NIC hops as
		// task events and resumes p at the instant the classic path's final
		// ingress sleep would wake it; the epilogue below is exactly what
		// the classic path runs in that wake event.
		n.startSync(p, src, dst, msg.Size)
		p.Park("send", nil)
		dst.ingress.Release(1)
		n.traffic.Add(msg.Class, msg.Size)
		dst.Port(msg.Port).Put(msg)
		return
	}
	if n.transfer(p, src, dst, msg.Size, msg.Class) {
		dst.Port(msg.Port).Put(msg)
	}
}

// SendAsync starts the transfer on a child process and returns a signal
// that fires after delivery. Use it to overlap independent transfers, e.g.
// a PFS client striping a file across many servers.
func (n *Network) SendAsync(p *sim.Proc, msg Message) *sim.Signal[struct{}] {
	// Static diagnostic names: this runs once per message, and per-message
	// formatted names were a dominant allocation source in read-heavy runs.
	done := sim.NewSignal[struct{}](n.eng, "send")
	if n.fastOK() {
		// The single start task stands in for the child process's spawn
		// event; the chain's final task stands in for the child's last wake,
		// where delivery and the signal fire.
		src, dst := n.Node(msg.From), n.Node(msg.To)
		n.startSpawned(src, dst, msg.Size, msg.Class, dst.Port(msg.Port), msg, done)
		return done
	}
	p.Spawn("xfer", func(c *sim.Proc) {
		n.Send(c, msg)
		done.Fire(struct{}{})
	})
	return done
}

// Call sends a request and blocks until the recipient Responds. The
// returned message is the response. The request's Reply mailbox is created
// here and is private to this call.
func (n *Network) Call(p *sim.Proc, msg Message) Message {
	reply := n.acquireReply()
	msg.Reply = reply
	if n.fastOK() {
		// Fused call: register for the reply up front, run the request
		// transfer as a task chain ending in port delivery, and park once
		// for the whole RPC. The classic path parks five times to get here.
		src, dst := n.Node(msg.From), n.Node(msg.To)
		pd := reply.Reserve(p)
		if src == dst {
			dst.Port(msg.Port).Put(msg)
		} else {
			n.startAsync(src, dst, msg.Size, msg.Class, dst.Port(msg.Port), msg)
		}
		p.Park("call", reply)
		resp := pd.Redeem()
		n.replyFree = append(n.replyFree, reply)
		return resp
	}
	n.Send(p, msg)
	resp := reply.Get(p)
	// The protocol delivers exactly one response per request, so the
	// mailbox is empty again and can serve the next Call.
	n.replyFree = append(n.replyFree, reply)
	return resp
}

// CallCancelable sends a request and waits for the response, giving up
// when deadline elapses (if deadline > 0) or when abort reports true —
// checked every quantum of simulated time. It returns ok=false on
// give-up. An abandoned reply mailbox is reclaimed when (and only when)
// the late response finally arrives: the response is dropped unobserved —
// never double-delivered into a later call — and the mailbox rejoins the
// pool.
//
// With quantum and deadline both zero and a nil abort it degenerates to
// Call.
func (n *Network) CallCancelable(p *sim.Proc, msg Message, quantum, deadline sim.Time, abort func() bool) (Message, bool) {
	reply := n.acquireReply()
	msg.Reply = reply
	n.Send(p, msg)
	start := p.Now()
	for {
		wait := quantum
		if deadline > 0 {
			remain := deadline - (p.Now() - start)
			if remain <= 0 {
				n.abandonReply(reply)
				return Message{}, false
			}
			if wait <= 0 || remain < wait {
				wait = remain
			}
		} else if wait <= 0 {
			resp := reply.Get(p)
			n.replyFree = append(n.replyFree, reply)
			return resp, true
		}
		if resp, ok := reply.GetTimeout(p, wait); ok {
			n.replyFree = append(n.replyFree, reply)
			return resp, true
		}
		if abort != nil && abort() {
			n.abandonReply(reply)
			return Message{}, false
		}
	}
}

func (n *Network) acquireReply() *sim.Mailbox[Message] {
	if k := len(n.replyFree); k > 0 {
		reply := n.replyFree[k-1]
		n.replyFree[k-1] = nil
		n.replyFree = n.replyFree[:k-1]
		return reply
	}
	return sim.NewMailbox[Message](n.eng, "reply")
}

// abandonReply arranges for a given-up call's reply mailbox to rejoin the
// pool when its late response lands (or immediately, if the response beat
// the give-up). Without this, every canceled call leaked its mailbox.
func (n *Network) abandonReply(reply *sim.Mailbox[Message]) {
	reply.Abandon(func() {
		n.replyFree = append(n.replyFree, reply)
	})
}

// Respond delivers a response to the Reply mailbox of req, charging the
// wire cost of moving size bytes from the responder back to the
// requester. It must be called by the process handling req. Responses
// from or to a crashed node are lost like any other message.
func (n *Network) Respond(p *sim.Proc, req Message, payload any, size int64, class metrics.TrafficClass) {
	if req.Reply == nil {
		panic("simnet: Respond to a message without a Reply mailbox")
	}
	src, dst := n.Node(req.To), n.Node(req.From)
	resp := Message{
		From:    req.To,
		To:      req.From,
		Port:    req.Port,
		Size:    size,
		Class:   class,
		Payload: payload,
	}
	if src == dst {
		req.Reply.Put(resp)
		return
	}
	if n.fastOK() {
		n.startSync(p, src, dst, size)
		p.Park("respond", nil)
		dst.ingress.Release(1)
		n.traffic.Add(class, size)
		req.Reply.Put(resp)
		return
	}
	if !n.transfer(p, src, dst, size, class) {
		return
	}
	req.Reply.Put(resp)
}

// RespondTask is Respond for fast-path request handlers running as task
// chains: it starts the response transfer without a process to block,
// delivering to the Reply mailbox from the chain's final task. If faults
// have activated since the request was dispatched, the response falls back
// to a classic process so the per-segment fault checks apply to it.
func (n *Network) RespondTask(req Message, payload any, size int64, class metrics.TrafficClass) {
	if req.Reply == nil {
		panic("simnet: Respond to a message without a Reply mailbox")
	}
	src, dst := n.Node(req.To), n.Node(req.From)
	resp := Message{
		From:    req.To,
		To:      req.From,
		Port:    req.Port,
		Size:    size,
		Class:   class,
		Payload: payload,
	}
	if src == dst {
		req.Reply.Put(resp)
		return
	}
	if !n.fastOK() {
		n.eng.Spawn("respond", func(p *sim.Proc) {
			if n.transfer(p, src, dst, size, class) {
				req.Reply.Put(resp)
			}
		})
		return
	}
	n.startAsync(src, dst, size, class, req.Reply, resp)
}
