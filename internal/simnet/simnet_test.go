package simnet

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/sim"
)

func newNet(t *testing.T, nodes int, bw float64, lat sim.Time) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.NewEngine()
	net := New(eng, Config{BytesPerSec: bw, Latency: lat}, nil)
	for i := 0; i < nodes; i++ {
		net.AddNode(i)
	}
	return eng, net
}

func TestSendTimingStoreAndForward(t *testing.T) {
	// 1 MB at 1 MB/s per NIC: 1s egress + 1ms latency + 1s ingress.
	eng, net := newNet(t, 2, 1e6, sim.Millisecond)
	var arrived sim.Time
	eng.Spawn("sender", func(p *sim.Proc) {
		net.Send(p, Message{From: 0, To: 1, Port: "data", Size: 1e6, Class: metrics.ClientToServer})
		arrived = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := 2*sim.Second + sim.Millisecond
	if arrived != want {
		t.Errorf("delivery at %v, want %v", arrived, want)
	}
}

func TestLoopbackIsFree(t *testing.T) {
	eng, net := newNet(t, 1, 1e6, sim.Millisecond)
	eng.Spawn("sender", func(p *sim.Proc) {
		net.Send(p, Message{From: 0, To: 0, Port: "data", Size: 1 << 30, Class: metrics.ServerToServer})
		if p.Now() != 0 {
			t.Errorf("loopback took %v, want 0", p.Now())
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if net.Traffic().NetworkBytes() != 0 {
		t.Errorf("loopback counted as network traffic: %v", net.Traffic())
	}
}

func TestNICContentionSerializesSenders(t *testing.T) {
	// Two senders pushing 1MB each through the same destination ingress:
	// egress NICs differ, so serialization happens at the receiver.
	eng, net := newNet(t, 3, 1e6, 0)
	for i := 0; i < 2; i++ {
		i := i
		eng.Spawn(fmt.Sprintf("s%d", i), func(p *sim.Proc) {
			net.Send(p, Message{From: i, To: 2, Port: "data", Size: 1e6, Class: metrics.ClientToServer})
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// First sender: 1s egress + 1s ingress = 2s. Second: its 1s egress
	// overlaps, then queues behind the first on node 2's ingress: 3s total.
	if eng.Now() != 3*sim.Second {
		t.Errorf("clock %v, want 3s (ingress contention)", eng.Now())
	}
}

func TestTrafficAccounting(t *testing.T) {
	eng, net := newNet(t, 2, 1e9, 0)
	eng.Spawn("s", func(p *sim.Proc) {
		net.Send(p, Message{From: 0, To: 1, Port: "a", Size: 100, Class: metrics.ClientToServer})
		net.Send(p, Message{From: 1, To: 0, Port: "b", Size: 200, Class: metrics.ServerToClient})
		net.Send(p, Message{From: 0, To: 1, Port: "c", Size: 300, Class: metrics.ServerToServer})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	tr := net.Traffic()
	if tr.Bytes(metrics.ClientToServer) != 100 ||
		tr.Bytes(metrics.ServerToClient) != 200 ||
		tr.Bytes(metrics.ServerToServer) != 300 {
		t.Errorf("traffic %v", tr)
	}
}

func TestPortDelivery(t *testing.T) {
	eng, net := newNet(t, 2, 1e9, 0)
	var got string
	eng.Spawn("server", func(p *sim.Proc) {
		msg := net.Node(1).Port("pfs").Get(p)
		got = msg.Payload.(string)
	})
	eng.Spawn("client", func(p *sim.Proc) {
		net.Send(p, Message{From: 0, To: 1, Port: "pfs", Size: 10, Payload: "read strip 3"})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "read strip 3" {
		t.Errorf("payload %q", got)
	}
}

func TestCallRespondRoundTrip(t *testing.T) {
	eng, net := newNet(t, 2, 1e6, sim.Millisecond)
	eng.Spawn("server", func(p *sim.Proc) {
		req := net.Node(1).Port("rpc").Get(p)
		net.Respond(p, req, "pong", 1e6, metrics.ServerToClient)
	})
	var resp Message
	var rtt sim.Time
	eng.Spawn("client", func(p *sim.Proc) {
		resp = net.Call(p, Message{From: 0, To: 1, Port: "rpc", Size: 1e6, Payload: "ping", Class: metrics.ClientToServer})
		rtt = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if resp.Payload.(string) != "pong" {
		t.Errorf("response %v", resp.Payload)
	}
	want := 2*(2*sim.Second+sim.Millisecond) + 0 // two 1MB store-and-forward legs
	if rtt != want {
		t.Errorf("rtt %v, want %v", rtt, want)
	}
	if resp.From != 1 || resp.To != 0 {
		t.Errorf("response addressing %d→%d, want 1→0", resp.From, resp.To)
	}
}

func TestSendAsyncOverlaps(t *testing.T) {
	eng, net := newNet(t, 3, 1e6, 0)
	eng.Spawn("client", func(p *sim.Proc) {
		// Two async 1MB sends to different destinations share the sender's
		// egress (serialized: 2s) but their ingress legs overlap.
		d1 := net.SendAsync(p, Message{From: 0, To: 1, Port: "a", Size: 1e6})
		d2 := net.SendAsync(p, Message{From: 0, To: 2, Port: "a", Size: 1e6})
		d1.Wait(p)
		d2.Wait(p)
		if p.Now() != 3*sim.Second {
			t.Errorf("both delivered at %v, want 3s (egress serialized, ingress overlapped)", p.Now())
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRespondWithoutReplyPanics(t *testing.T) {
	eng, net := newNet(t, 2, 1e9, 0)
	eng.Spawn("server", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic responding without Reply")
			}
		}()
		net.Respond(p, Message{From: 0, To: 1}, nil, 0, metrics.ServerToClient)
	})
	_ = eng.Run()
}

func TestDuplicateNodePanics(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, Config{BytesPerSec: 1}, nil)
	net.AddNode(0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate node")
		}
	}()
	net.AddNode(0)
}

func TestUnknownNodePanics(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, Config{BytesPerSec: 1}, nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on unknown node")
		}
	}()
	net.Node(42)
}

// Property: over any batch of random messages, the traffic collector's
// network total equals the sum of remote message sizes exactly — nothing
// double-counted, loopbacks free.
func TestTrafficConservationProperty(t *testing.T) {
	type msg struct {
		From, To uint8
		Size     uint16
	}
	prop := func(msgs []msg) bool {
		if len(msgs) > 40 {
			msgs = msgs[:40]
		}
		eng, net := newNet(t, 4, 1e9, 0)
		var want int64
		eng.Spawn("sender", func(p *sim.Proc) {
			for i, m := range msgs {
				from, to := int(m.From%4), int(m.To%4)
				size := int64(m.Size)
				if from != to {
					want += size
				}
				net.Send(p, Message{
					From: from, To: to, Port: "x", Size: size,
					Class: metrics.TrafficClass(i % 3), // the three network classes
				})
			}
		})
		if err := eng.Run(); err != nil {
			return false
		}
		return net.Traffic().NetworkBytes() == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNICBusyAccounting(t *testing.T) {
	eng, net := newNet(t, 2, 1e6, 0)
	eng.Spawn("s", func(p *sim.Proc) {
		net.Send(p, Message{From: 0, To: 1, Port: "x", Size: 5e5})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := net.Node(0).EgressBusy(); got != 500*sim.Millisecond {
		t.Errorf("egress busy %v, want 500ms", got)
	}
	if got := net.Node(1).IngressBusy(); got != 500*sim.Millisecond {
		t.Errorf("ingress busy %v, want 500ms", got)
	}
}
