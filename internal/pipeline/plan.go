// Package pipeline executes operator DAGs entirely on the storage
// servers: the client submits a DAG of registered kernels, each server
// computes its strips stage by stage, and between stages only the
// halo-boundary bands stream server-to-server — no intermediate raster is
// ever written back. A fused leading prefix evaluates several stages in
// one dispatch by reading the input with a deeper composed halo, and only
// the final grid output commits through the normal writeback path. The
// achieved halo traffic is reported against the composed-offset lower
// bound the prediction core derives from the same Minkowski composition.
package pipeline

import (
	"fmt"

	"github.com/hpcio/das/internal/features"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/predict"
)

// PlanNode is one DAG node resolved for execution, in topological
// position. Exactly one of Kernel, Combiner, Reducer is set.
type PlanNode struct {
	ID   string
	Kind kernels.NodeKind
	Op   string
	// Parents are topological positions into Plan.Nodes. Empty for a
	// kernel that reads the DAG input.
	Parents []int

	Kernel   kernels.Kernel
	Combiner kernels.Combiner
	Reducer  kernels.Reducer

	// Back and Fwd are the node's own dependence reach in flattened
	// elements against its parents; Halo is the symmetric data halo
	// (MaxAbsOffset) a band must carry so 2-D boundary clamping stays in
	// range — the same bound the active layer assembles bands with.
	Back, Fwd, Halo int64
	// CumBack, CumFwd, CumHalo are the composed (Minkowski-summed)
	// equivalents against the DAG input.
	CumBack, CumFwd, CumHalo int64
	// EvalHalo is the input-band depth a from-input evaluation of this
	// node actually reads: the recursion applies each stage's symmetric
	// Halo in turn, so the depths sum along the deepest parent path.
	// For asymmetric stage patterns this exceeds CumHalo.
	EvalHalo int64
	Weight   float64
	// Retain marks state the servers must keep after the node's round:
	// some later round reads it (locally or via a band pull).
	Retain bool
}

// Plan is a compiled DAG: nodes in deterministic topological order plus
// the execution shape (fused prefix, round count, output node). The
// client and every server compile the same DAG against the same metadata
// and registries, so they agree on the plan without shipping it.
type Plan struct {
	Name  string
	Nodes []PlanNode
	// Prefix is the number of leading nodes fused into round 0. Nodes
	// [0, Prefix) form a linear chain by construction.
	Prefix int
	// GridOut indexes the node whose raster the DAG commits; it is
	// always the last non-reduce node in topological order. Reduce
	// indexes the terminal reduce, -1 without one.
	GridOut int
	Reduce  int
	// Width is the raster width; LocalHalo the per-side elements the
	// layout's replication already holds next to every assignment run.
	Width     int
	LocalHalo int64
}

// Compile validates and resolves a DAG for pushdown execution over a
// raster of the given width on a layout granting localHalo replica-
// prepaid elements per side. The fused prefix extends along the leading
// linear chain while the composed input halo stays within the local
// replicas (the deep read is free) or the next stage adds no reach.
func Compile(d kernels.DAG, reg *kernels.Registry, combs *kernels.CombinerRegistry,
	reds *kernels.ReducerRegistry, width int, localHalo int64) (*Plan, error) {
	if err := d.Validate(reg, combs, reds); err != nil {
		return nil, err
	}
	if width <= 0 {
		return nil, fmt.Errorf("pipeline: dag %q: raster width %d", d.Name, width)
	}
	order, err := d.TopoOrder()
	if err != nil {
		return nil, err
	}
	pats, err := d.NodePatterns(reg)
	if err != nil {
		return nil, err
	}
	pos := make([]int, len(order)) // original index -> topological position
	for ti, oi := range order {
		pos[oi] = ti
	}
	origIndex := make(map[string]int, len(d.Nodes))
	for i, n := range d.Nodes {
		origIndex[n.ID] = i
	}

	pl := &Plan{Name: d.Name, Nodes: make([]PlanNode, len(order)), Reduce: -1, Width: width, LocalHalo: localHalo}
	for ti, oi := range order {
		n := d.Nodes[oi]
		pn := PlanNode{ID: n.ID, Kind: n.Kind, Op: n.Op}
		for _, pid := range n.Parents {
			pn.Parents = append(pn.Parents, pos[origIndex[pid]])
		}
		var own features.Pattern
		switch n.Kind {
		case kernels.KindKernel:
			k, _ := reg.Lookup(n.Op)
			pn.Kernel, pn.Weight = k, k.Weight()
			own = kernels.Pattern(k)
		case kernels.KindCombine:
			c, _ := combs.Lookup(n.Op)
			pn.Combiner, pn.Weight = c, c.Weight()
			own = features.Pattern{Name: n.Op, Offsets: []features.Offset{{}}}
		case kernels.KindReduce:
			r, _ := reds.Lookup(n.Op)
			pn.Reducer, pn.Weight = r, r.Weight()
			own = features.Pattern{Name: n.Op, Offsets: []features.Offset{{}}}
			pl.Reduce = ti
		}
		pn.Back, pn.Fwd = own.Reach(width)
		pn.Halo = own.MaxAbsOffset(width)
		pn.CumBack, pn.CumFwd = pats[oi].Reach(width)
		pn.CumHalo = pats[oi].MaxAbsOffset(width)
		pn.EvalHalo = pn.Halo
		for _, p := range pn.Parents {
			if h := pn.Halo + pl.Nodes[p].EvalHalo; h > pn.EvalHalo {
				pn.EvalHalo = h
			}
		}
		pl.Nodes[ti] = pn
	}

	gridOut, err := d.GridOutput()
	if err != nil {
		return nil, err
	}
	pl.GridOut = pos[gridOut]

	// Fusion rule: extend the prefix while the next node continues the
	// leading linear chain and either its composed halo fits in the
	// replica-prepaid local halo or it adds no reach of its own.
	pl.Prefix = 1
	for i := 1; i <= pl.GridOut; i++ {
		n := pl.Nodes[i]
		chained := n.Kind == kernels.KindKernel && len(n.Parents) == 1 && n.Parents[0] == i-1
		if !chained {
			break
		}
		if n.EvalHalo <= localHalo || n.Halo == 0 {
			pl.Prefix = i + 1
			continue
		}
		break
	}

	// Retention: a node's state survives its round when a strictly later
	// round consumes it. The reduce folds inline in the final round, so
	// it never forces retention on the grid output.
	for i := range pl.Nodes {
		for _, p := range pl.Nodes[i].Parents {
			if pl.Nodes[i].Kind == kernels.KindReduce {
				continue
			}
			if pl.round(i) > pl.round(p) {
				pl.Nodes[p].Retain = true
			}
		}
	}
	return pl, nil
}

// Rounds returns the number of dispatch rounds: one for the fused prefix
// plus one per remaining non-reduce node.
func (pl *Plan) Rounds() int { return 1 + pl.GridOut + 1 - pl.Prefix }

// RoundNode returns the topological position computed by a round: the
// whole prefix reports its last node for round 0.
func (pl *Plan) RoundNode(round int) int {
	if round == 0 {
		return pl.Prefix - 1
	}
	return pl.Prefix + round - 1
}

// round returns the dispatch round that computes a node (the reduce maps
// to the final round, where it folds inline).
func (pl *Plan) round(node int) int {
	if node < pl.Prefix {
		return 0
	}
	if node > pl.GridOut { // the reduce
		node = pl.GridOut
	}
	return node - pl.Prefix + 1
}

// roundTargets returns the nodes a round must materialize: the retained
// nodes it computes, plus the grid output in the final round.
func (pl *Plan) roundTargets(round int) []int {
	var lo, hi int // nodes computed this round, inclusive
	if round == 0 {
		lo, hi = 0, pl.Prefix-1
	} else {
		lo = pl.Prefix + round - 1
		hi = lo
	}
	var targets []int
	for i := lo; i <= hi; i++ {
		if pl.Nodes[i].Retain || i == pl.GridOut {
			targets = append(targets, i)
		}
	}
	return targets
}

// catchUpTargets returns the nodes a crash-reassigned strip must
// recompute from the durable input at the given round: every retained
// node up to and including the round's own targets.
func (pl *Plan) catchUpTargets(round int) []int {
	last := pl.RoundNode(round)
	var targets []int
	for i := 0; i <= last; i++ {
		if pl.Nodes[i].Retain || (i == pl.GridOut && pl.round(i) == round) {
			targets = append(targets, i)
		}
	}
	return targets
}

// inputHaloFor returns the input-band depth needed to evaluate all the
// given nodes from the input — the deepest recursion among a fused or
// catch-up evaluation's targets.
func (pl *Plan) inputHaloFor(targets []int) int64 {
	var h int64
	for _, i := range targets {
		if pl.Nodes[i].EvalHalo > h {
			h = pl.Nodes[i].EvalHalo
		}
	}
	return h
}

// Spec projects the plan into the predictor's pricing shape.
func (pl *Plan) Spec() predict.PipelineSpec {
	spec := predict.PipelineSpec{PrefixLen: pl.Prefix}
	for _, n := range pl.Nodes {
		spec.Stages = append(spec.Stages, predict.PipelineStage{
			Name:   n.ID + "/" + n.Op,
			Back:   n.Back,
			Fwd:    n.Fwd,
			Reduce: n.Kind == kernels.KindReduce,
		})
	}
	for _, n := range pl.Nodes[:pl.Prefix] {
		if n.CumBack > spec.PrefixBack {
			spec.PrefixBack = n.CumBack
		}
		if n.CumFwd > spec.PrefixFwd {
			spec.PrefixFwd = n.CumFwd
		}
	}
	sink := pl.Nodes[len(pl.Nodes)-1]
	spec.DAGBack, spec.DAGFwd = sink.CumBack, sink.CumFwd
	return spec
}

// LocalHaloOf returns the replica-prepaid halo elements per side a
// layout grants — the budget the fusion rule spends.
func LocalHaloOf(lay layout.Layout, lc layout.Locator) int64 {
	return predict.LocalHaloElems(lay, lc)
}
