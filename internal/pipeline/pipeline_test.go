package pipeline

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/hpcio/das/internal/cluster"
	"github.com/hpcio/das/internal/fault"
	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/pfs"
	"github.com/hpcio/das/internal/sim"
	"github.com/hpcio/das/internal/workload"
)

// One row per strip on a width-64 raster: every 3×3 kernel reaches
// ±(W+1) = ±65 elements, spanning two strip boundaries.
const (
	testW     = 64
	testH     = 32
	testStrip = 64 * grid.ElemSize
)

func chain3() kernels.DAG {
	return kernels.Chain("terrain3", []string{"gaussian-filter", "flow-routing", "flow-accumulation"}, "")
}

type testRig struct {
	clu *cluster.Cluster
	fs  *pfs.FileSystem
	svc *Service
	g   *grid.Grid
}

func newRig(t *testing.T, lay layout.Layout, w, h int, stripSize int64) *testRig {
	t.Helper()
	cfg := cluster.Default()
	cfg.ComputeNodes, cfg.StorageNodes = 4, 4
	clu, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs := pfs.New(clu)
	svc := Deploy(fs, kernels.Default(), nil, nil)
	g := workload.Terrain(w, h, 11)
	if _, err := fs.Create("in", g.SizeBytes(), lay, pfs.CreateOptions{
		StripSize: stripSize, Width: w, Height: h, ElemSize: grid.ElemSize,
	}); err != nil {
		t.Fatal(err)
	}
	rig := &testRig{clu: clu, fs: fs, svc: svc, g: g}
	rig.run(t, func(p *sim.Proc) error {
		return fs.NewClient(clu.ComputeID(0)).WriteAll(p, "in", g.Bytes())
	})
	return rig
}

func (r *testRig) run(t *testing.T, fn func(p *sim.Proc) error) {
	t.Helper()
	var inner error
	r.clu.Eng.Spawn("test", func(p *sim.Proc) { inner = fn(p) })
	if err := r.clu.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if inner != nil {
		t.Fatal(inner)
	}
}

func (r *testRig) createOut(t *testing.T, name string) {
	t.Helper()
	m, _ := r.fs.Meta("in")
	if _, err := r.fs.Create(name, m.Size, m.Layout, pfs.CreateOptions{
		StripSize: m.StripSize, Width: m.Width, Height: m.Height, ElemSize: m.ElemSize,
	}); err != nil {
		t.Fatal(err)
	}
}

func (r *testRig) pipeline(t *testing.T, d kernels.DAG, input, output string) (RunResult, error) {
	t.Helper()
	var res RunResult
	var err error
	r.run(t, func(p *sim.Proc) error {
		res, err = NewClient(r.fs, r.clu.ComputeID(0), kernels.Default(), nil, nil).Run(p, d, input, output)
		return nil
	})
	return res, err
}

func (r *testRig) fetch(t *testing.T, name string) *grid.Grid {
	t.Helper()
	var data []byte
	r.run(t, func(p *sim.Proc) error {
		var err error
		data, err = r.fs.NewClient(r.clu.ComputeID(0)).ReadAll(p, name)
		return err
	})
	m, _ := r.fs.Meta(name)
	g, err := grid.FromBytes(m.Width, m.Height, data)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCompileFusionRespectsLocalHalo(t *testing.T) {
	reg := kernels.Default()
	d := chain3()
	// Each 3×3 stage has Halo W+1 = 65; from-input evaluation depths sum
	// along the chain: 65, 130, 195.
	cases := []struct {
		localHalo int64
		prefix    int
	}{
		{0, 1},
		{129, 1},   // stage 2 needs 130
		{130, 2},   // exactly covers stage 2's recursion
		{10000, 3}, // whole chain fuses
	}
	for _, c := range cases {
		pl, err := Compile(d, reg, nil, nil, testW, c.localHalo)
		if err != nil {
			t.Fatal(err)
		}
		if pl.Prefix != c.prefix {
			t.Errorf("localHalo %d: prefix %d, want %d", c.localHalo, pl.Prefix, c.prefix)
		}
		if want := 1 + pl.GridOut + 1 - pl.Prefix; pl.Rounds() != want {
			t.Errorf("localHalo %d: rounds %d, want %d", c.localHalo, pl.Rounds(), want)
		}
		for i, n := range pl.Nodes {
			wantEval := int64(65 * (i + 1))
			if n.EvalHalo != wantEval {
				t.Errorf("node %d EvalHalo %d, want %d", i, n.EvalHalo, wantEval)
			}
		}
	}
	// Retention: with nothing fused, every stage but the grid output
	// feeds a strictly later round.
	pl, err := Compile(d, reg, nil, nil, testW, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range pl.Nodes {
		want := i < pl.GridOut
		if n.Retain != want {
			t.Errorf("node %d Retain %v, want %v", i, n.Retain, want)
		}
	}
	// With the whole chain fused there is nothing to retain.
	pl, err = Compile(d, reg, nil, nil, testW, 10000)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range pl.Nodes {
		if n.Retain {
			t.Errorf("fully fused plan retains node %d", i)
		}
	}
}

func TestCompileRejectsBadInput(t *testing.T) {
	reg := kernels.Default()
	if _, err := Compile(chain3(), reg, nil, nil, 0, 0); err == nil {
		t.Error("Compile accepted zero width")
	}
	bad := kernels.Chain("bad", []string{"no-such-kernel"}, "")
	if _, err := Compile(bad, reg, nil, nil, testW, 0); err == nil {
		t.Error("Compile accepted unknown kernel")
	}
}

func TestPipelineChainMatchesReference(t *testing.T) {
	rig := newRig(t, layout.NewRoundRobin(4), testW, testH, testStrip)
	rig.createOut(t, "out")
	d := chain3()
	res, err := rig.pipeline(t, d, "in", "out")
	if err != nil {
		t.Fatal(err)
	}
	want, err := kernels.ApplyDAG(d, kernels.Default(), kernels.DefaultCombiners(), rig.g)
	if err != nil {
		t.Fatal(err)
	}
	if got := rig.fetch(t, "out"); !got.Equal(want) {
		t.Error("pipelined output differs from sequential DAG reference")
	}
	// Round-robin grants no local halo: round 0 fetches input boundary
	// rows and every later stage streams halo bands server-to-server.
	if res.FetchBytes == 0 {
		t.Errorf("no input halo fetches: %+v", res)
	}
	if res.ExchangeBytes == 0 {
		t.Errorf("no inter-stage halo exchange: %+v", res)
	}
	if res.Rounds != 3 || res.Stages != 3 || res.FusedStages != 0 {
		t.Errorf("shape rounds=%d stages=%d fused=%d, want 3/3/0", res.Rounds, res.Stages, res.FusedStages)
	}
	if res.Elements != rig.g.Len()*int64(res.Rounds) {
		t.Errorf("processed %d elements, want %d per round over %d rounds", res.Elements, rig.g.Len(), res.Rounds)
	}
	if res.LowerBoundBytes <= 0 || res.AchievedHaloBytes < res.LowerBoundBytes {
		t.Errorf("achieved %d below lower bound %d", res.AchievedHaloBytes, res.LowerBoundBytes)
	}
	if rig.clu.PipelineStats.Runs() != 1 || rig.clu.PipelineStats.ExchangeBytes() != res.ExchangeBytes {
		t.Errorf("cluster pipeline stats diverge from run result: %v", rig.clu.PipelineStats)
	}
}

func TestPipelineFusedPrefixSkipsExchange(t *testing.T) {
	// Replica halo of 3 strips (192 elements) covers the two-stage
	// recursion depth 130: the first two stages fuse into round 0 and
	// only the third stage exchanges.
	rig := newRig(t, layout.NewGroupedReplicated(4, 8, 3), testW, testH, testStrip)
	rig.createOut(t, "out")
	d := chain3()
	res, err := rig.pipeline(t, d, "in", "out")
	if err != nil {
		t.Fatal(err)
	}
	want, err := kernels.ApplyDAG(d, kernels.Default(), kernels.DefaultCombiners(), rig.g)
	if err != nil {
		t.Fatal(err)
	}
	if got := rig.fetch(t, "out"); !got.Equal(want) {
		t.Error("fused output differs from sequential DAG reference")
	}
	if res.Rounds != 2 || res.FusedStages != 1 {
		t.Errorf("shape rounds=%d fused=%d, want 2/1", res.Rounds, res.FusedStages)
	}
}

func TestPipelineReduceMatchesReduceStriped(t *testing.T) {
	rig := newRig(t, layout.NewRoundRobin(4), testW, testH, testStrip)
	rig.createOut(t, "out")
	d := kernels.Chain("terrain-stats", []string{"gaussian-filter", "flow-routing"}, "stats")
	res, err := rig.pipeline(t, d, "in", "out")
	if err != nil {
		t.Fatal(err)
	}
	want, err := kernels.ApplyDAG(d, kernels.Default(), kernels.DefaultCombiners(), rig.g)
	if err != nil {
		t.Fatal(err)
	}
	if got := rig.fetch(t, "out"); !got.Equal(want) {
		t.Error("reduced DAG grid output differs from reference")
	}
	wantRed := kernels.ReduceStriped(kernels.Stats{}, want, testStrip/grid.ElemSize)
	if len(res.Reduce) != len(wantRed) {
		t.Fatalf("reduce len %d, want %d", len(res.Reduce), len(wantRed))
	}
	for i := range wantRed {
		if res.Reduce[i] != wantRed[i] {
			t.Errorf("reduce[%d] = %v, want %v (canonical strip merge)", i, res.Reduce[i], wantRed[i])
		}
	}
}

func TestPipelineDiamondMatchesReference(t *testing.T) {
	rig := newRig(t, layout.NewRoundRobin(4), testW, testH, testStrip)
	rig.createOut(t, "out")
	d := kernels.DAG{Name: "diamond", Nodes: []kernels.Node{
		{ID: "a", Kind: kernels.KindKernel, Op: "gaussian-filter"},
		{ID: "b", Kind: kernels.KindKernel, Op: "surface-slope"},
		{ID: "c", Kind: kernels.KindCombine, Op: "add", Parents: []string{"a", "b"}},
		{ID: "d", Kind: kernels.KindKernel, Op: "diffusion", Parents: []string{"c"}},
	}}
	res, err := rig.pipeline(t, d, "in", "out")
	if err != nil {
		t.Fatal(err)
	}
	want, err := kernels.ApplyDAG(d, kernels.Default(), kernels.DefaultCombiners(), rig.g)
	if err != nil {
		t.Fatal(err)
	}
	if got := rig.fetch(t, "out"); !got.Equal(want) {
		t.Error("diamond output differs from sequential DAG reference")
	}
	// The combine adds no reach and folds into its round for free.
	if res.Stages != 4 {
		t.Errorf("stages %d, want 4", res.Stages)
	}
}

func TestPipelineDeterministicReplay(t *testing.T) {
	type capture struct {
		Res   RunResult
		Bytes []byte
	}
	once := func() capture {
		rig := newRig(t, layout.NewRoundRobin(4), testW, testH, testStrip)
		rig.createOut(t, "out")
		res, err := rig.pipeline(t, chain3(), "in", "out")
		if err != nil {
			t.Fatal(err)
		}
		return capture{Res: res, Bytes: rig.fetch(t, "out").Bytes()}
	}
	a, _ := json.Marshal(once())
	b, _ := json.Marshal(once())
	if !bytes.Equal(a, b) {
		t.Error("two identical pipeline runs diverged")
	}
}

func TestPipelineSurvivesMidRunCrashByteIdentical(t *testing.T) {
	// Full mirroring (halo == r): any single crash leaves a live copy of
	// every strip, so reassignment plus catch-up can always finish.
	lay := layout.NewGroupedReplicated(4, 2, 2)
	d := chain3()
	want, err := kernels.ApplyDAG(d, kernels.Default(), kernels.DefaultCombiners(), workload.Terrain(testW, testH, 11))
	if err != nil {
		t.Fatal(err)
	}

	// Fault-free baseline to aim the crash mid-run.
	base := newRig(t, lay, testW, testH, testStrip)
	base.createOut(t, "out")
	start := base.clu.Eng.Now()
	if _, err := base.pipeline(t, d, "in", "out"); err != nil {
		t.Fatal(err)
	}
	elapsed := base.clu.Eng.Now() - start

	rig := newRig(t, lay, testW, testH, testStrip)
	rig.createOut(t, "out")
	plan := fault.Plan{Events: []fault.Event{
		{At: rig.clu.Eng.Now() + elapsed/2, Kind: fault.Crash, Server: 1},
	}}
	if err := rig.clu.InstallFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	res, err := rig.pipeline(t, d, "in", "out")
	if err != nil {
		t.Fatal(err)
	}
	if got := rig.fetch(t, "out"); !got.Equal(want) {
		t.Error("output under mid-run crash differs from sequential reference")
	}
	if res.Redispatches == 0 && res.CatchUps == 0 {
		t.Errorf("crash mid-run triggered no recovery: %+v", res)
	}
}

func TestPipelineCrashRestartPurgesStateAndCatchesUp(t *testing.T) {
	lay := layout.NewGroupedReplicated(4, 2, 2)
	d := chain3()
	want, err := kernels.ApplyDAG(d, kernels.Default(), kernels.DefaultCombiners(), workload.Terrain(testW, testH, 11))
	if err != nil {
		t.Fatal(err)
	}
	base := newRig(t, lay, testW, testH, testStrip)
	base.createOut(t, "out")
	start := base.clu.Eng.Now()
	if _, err := base.pipeline(t, d, "in", "out"); err != nil {
		t.Fatal(err)
	}
	elapsed := base.clu.Eng.Now() - start

	rig := newRig(t, lay, testW, testH, testStrip)
	rig.createOut(t, "out")
	now := rig.clu.Eng.Now()
	// Crash early, restart quickly: the server returns with a new
	// incarnation and empty memory, so its strips must be reassigned or
	// caught up, never served from ghost state.
	plan := fault.Plan{Events: []fault.Event{
		{At: now + elapsed/4, Kind: fault.Crash, Server: 2},
		{At: now + elapsed/2, Kind: fault.Restart, Server: 2},
	}}
	if err := rig.clu.InstallFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	res, err := rig.pipeline(t, d, "in", "out")
	if err != nil {
		t.Fatal(err)
	}
	if got := rig.fetch(t, "out"); !got.Equal(want) {
		t.Error("output under crash+restart differs from sequential reference")
	}
	if res.Redispatches == 0 && res.CatchUps == 0 {
		t.Errorf("crash+restart triggered no recovery: %+v", res)
	}
}

func TestPipelineReleaseDropsServerState(t *testing.T) {
	rig := newRig(t, layout.NewRoundRobin(4), testW, testH, testStrip)
	rig.createOut(t, "out")
	if _, err := rig.pipeline(t, chain3(), "in", "out"); err != nil {
		t.Fatal(err)
	}
	for s, runs := range rig.svc.runs {
		if len(runs) != 0 {
			t.Errorf("server %d still holds %d run states after release", s, len(runs))
		}
	}
}

func TestRunErrorPaths(t *testing.T) {
	rig := newRig(t, layout.NewRoundRobin(4), testW, testH, testStrip)
	rig.createOut(t, "out")
	if _, err := rig.pipeline(t, chain3(), "missing", "out"); err == nil || !strings.Contains(err.Error(), "unknown input") {
		t.Errorf("missing input error %v", err)
	}
	if _, err := rig.pipeline(t, chain3(), "in", "missing"); err == nil || !strings.Contains(err.Error(), "unknown output") {
		t.Errorf("missing output error %v", err)
	}
	m, _ := rig.fs.Meta("in")
	if _, err := rig.fs.Create("small", m.StripSize, m.Layout, pfs.CreateOptions{
		StripSize: m.StripSize, Width: m.Width, Height: 1, ElemSize: m.ElemSize,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := rig.pipeline(t, chain3(), "in", "small"); err == nil || !strings.Contains(err.Error(), "geometry") {
		t.Errorf("geometry mismatch error %v", err)
	}
	if _, err := rig.pipeline(t, kernels.Chain("bad", []string{"nope"}, ""), "in", "out"); err == nil {
		t.Error("unknown kernel accepted")
	}
}
