package pipeline

import (
	"fmt"

	"github.com/hpcio/das/internal/active"
	"github.com/hpcio/das/internal/cache"
	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/pfs"
	"github.com/hpcio/das/internal/sim"
	"github.com/hpcio/das/internal/simnet"
)

// Port is the mailbox pipeline servers listen on.
const Port = "pipe"

const headerBytes = 128

// stageReq asks one server to compute one dispatch round of a DAG over
// an explicit ascending strip set. Round 0 evaluates the fused prefix
// from the durable input; later rounds evaluate one node from parent
// state, pulling halo-boundary bands from the strips' state owners.
// CatchUp reruns the whole lineage from the input instead — the recovery
// path when a crash lost the previous owner's in-memory state.
type stageReq struct {
	Token   string
	DAG     kernels.DAG
	Input   string
	Output  string
	Round   int
	Strips  []int64
	CatchUp bool
	// Owners maps every input strip to the server whose state holds the
	// previous rounds' values for it (-1 unknown). nil in round 0.
	Owners []int32
}

// releaseReq drops a token's state on every server (one-way, best
// effort: a dead server's state died with it).
type releaseReq struct{ Token string }

// stageResp reports one server's round statistics.
type stageResp struct {
	Err string
	// Transient marks failures the coordinator can cure by reassigning
	// the strips with catch-up (lost state, aborted pulls), as opposed
	// to hard errors.
	Transient     bool
	Elements      int64
	FetchOps      int64
	FetchBytes    int64
	CacheHits     int64
	CacheHitBytes int64
	ExchangeOps   int64
	ExchangeBytes int64
	CatchUps      int64
	Wrote         int64
	// PartialStrips/Partials carry the per-strip reduce partials when
	// the round computed the grid output of a reduced DAG.
	PartialStrips []int64
	Partials      [][]float64
}

// bandSpan is a global element range [Lo, Hi) within one strip.
type bandSpan struct {
	Strip  int64
	Lo, Hi int64
}

// bandReq pulls stored node state for a set of spans from their owner.
type bandReq struct {
	Token string
	Node  int
	Spans []bandSpan
}

// bandResp returns one value slice per requested span. The slices alias
// the owner's stored state and must not be mutated.
type bandResp struct {
	Err       string
	Transient bool
	Data      [][]float64
}

// runState is one server's view of one pipeline run: the compiled plan
// and the retained per-node per-strip values. inc records the server
// incarnation the state was built under; a restart wipes it, exactly as
// a crash wipes real memory.
type runState struct {
	plan  *Plan
	in    *pfs.FileMeta
	inc   uint64
	state map[int]map[int64][]float64
}

// Service runs the pipeline helper on every storage server.
type Service struct {
	fs    *pfs.FileSystem
	reg   *kernels.Registry
	combs *kernels.CombinerRegistry
	reds  *kernels.ReducerRegistry
	cache *cache.Manager
	// runs is per-server token state; the DES engine serializes handler
	// execution, so no locking is needed.
	runs []map[string]*runState
}

// SetCache attaches the halo-strip cache manager (nil detaches): input
// halo fetches consult it and intermediate-band pulls feed file heat.
func (svc *Service) SetCache(m *cache.Manager) { svc.cache = m }

// Deploy starts a pipeline daemon on each storage node. Nil combiner or
// reducer registries install the defaults.
func Deploy(fs *pfs.FileSystem, reg *kernels.Registry, combs *kernels.CombinerRegistry, reds *kernels.ReducerRegistry) *Service {
	if combs == nil {
		combs = kernels.DefaultCombiners()
	}
	if reds == nil {
		reds = kernels.DefaultReducers()
	}
	svc := &Service{fs: fs, reg: reg, combs: combs, reds: reds, runs: make([]map[string]*runState, fs.Servers())}
	for s := 0; s < fs.Servers(); s++ {
		svc.runs[s] = make(map[string]*runState)
		srv := fs.Server(s)
		fs.Cluster().Eng.SpawnDaemon(fmt.Sprintf("pipe-server-%d", s), func(p *sim.Proc) {
			port := fs.Cluster().Net.Node(srv.NodeID()).Port(Port)
			reqs := 0
			for {
				msg := port.Get(p)
				reqs++
				p.Spawn(fmt.Sprintf("pipe-handle-%d-%d", s, reqs), func(h *sim.Proc) {
					svc.handle(h, srv, msg)
				})
			}
		})
	}
	return svc
}

func (svc *Service) handle(p *sim.Proc, srv *pfs.Server, msg simnet.Message) {
	clu := svc.fs.Cluster()
	switch req := msg.Payload.(type) {
	case stageReq:
		resp, err := svc.stage(p, srv, req)
		if err != nil {
			resp = stageResp{Err: err.Error(), Transient: transientErr(err)}
		}
		size := headerBytes + int64(len(resp.Partials))*partialBytes(resp.Partials)
		clu.Net.Respond(p, msg, resp, size, clu.ClassBetween(srv.NodeID(), msg.From))
	case bandReq:
		resp := svc.band(srv, req)
		size := int64(headerBytes)
		for _, d := range resp.Data {
			size += int64(len(d)) * grid.ElemSize
		}
		clu.Net.Respond(p, msg, resp, size, clu.ClassBetween(srv.NodeID(), msg.From))
	//das:allow replies -- releaseReq is a one-way Send (client.go releaseAll), not a Call; nothing awaits a reply
	case releaseReq:
		delete(svc.runs[srv.Index()], req.Token)
	default:
		clu.Net.Respond(p, msg, stageResp{Err: fmt.Sprintf("pipeline: unknown request %T", msg.Payload)},
			headerBytes, clu.ClassBetween(srv.NodeID(), msg.From))
	}
}

func partialBytes(partials [][]float64) int64 {
	if len(partials) == 0 {
		return 0
	}
	return int64(len(partials[0])) * grid.ElemSize
}

// transientErr reports whether the coordinator can cure the failure by
// reassigning strips with catch-up.
type transient struct{ error }

func transientErr(err error) bool {
	_, ok := err.(transient)
	return ok
}

// runStateFor returns (building if needed) this server's state for the
// request's token, purging it first when the server restarted since it
// was built: a new incarnation's memory starts empty.
func (svc *Service) runStateFor(srv *pfs.Server, req stageReq, in *pfs.FileMeta) (*runState, error) {
	clu := svc.fs.Cluster()
	inc := clu.Faults.Incarnation(srv.NodeID())
	rs, ok := svc.runs[srv.Index()][req.Token]
	if ok && rs.inc != inc {
		delete(svc.runs[srv.Index()], req.Token)
		ok = false
	}
	if !ok {
		lc := in.Locator()
		pl, err := Compile(req.DAG, svc.reg, svc.combs, svc.reds, in.Width, LocalHaloOf(in.Layout, lc))
		if err != nil {
			return nil, err
		}
		rs = &runState{plan: pl, in: in, inc: inc, state: make(map[int]map[int64][]float64)}
		svc.runs[srv.Index()][req.Token] = rs
	}
	return rs, nil
}

// stage computes one dispatch round over the request's strips.
func (svc *Service) stage(p *sim.Proc, srv *pfs.Server, req stageReq) (stageResp, error) {
	clu := svc.fs.Cluster()
	in, ok := svc.fs.Meta(req.Input)
	if !ok {
		return stageResp{}, fmt.Errorf("pipeline: unknown input %q", req.Input)
	}
	if in.Width == 0 || in.ElemSize == 0 {
		return stageResp{}, fmt.Errorf("pipeline: input %q lacks raster metadata", req.Input)
	}
	out, ok := svc.fs.Meta(req.Output)
	if !ok {
		return stageResp{}, fmt.Errorf("pipeline: unknown output %q", req.Output)
	}
	if out.Size != in.Size || out.StripSize != in.StripSize {
		return stageResp{}, fmt.Errorf("pipeline: output geometry differs from input")
	}
	rs, err := svc.runStateFor(srv, req, in)
	if err != nil {
		return stageResp{}, err
	}
	pl := rs.plan
	if req.Round < 0 || req.Round >= pl.Rounds() {
		return stageResp{}, fmt.Errorf("pipeline: round %d of %d", req.Round, pl.Rounds())
	}
	node := pl.RoundNode(req.Round)
	final := req.Round == pl.Rounds()-1

	var resp stageResp
	var forwards []*sim.Signal[error]
	var pooledOut [][]byte
	fail := func(err error) (stageResp, error) {
		sim.WaitAll(p, forwards)
		for _, b := range pooledOut {
			pfs.ReleaseBuffer(b)
		}
		pooledOut = nil
		return stageResp{}, err
	}

	for _, run := range active.StripRuns(in, req.Strips) {
		e0, e1 := run.Lo/in.ElemSize, run.Hi/in.ElemSize
		var weighted float64
		charge := func(elems int64, w float64) { weighted += float64(elems) * w }

		var vals map[int][]float64
		if req.Round == 0 || req.CatchUp {
			vals, err = svc.evalFromDurable(p, srv, rs, in, req, e0, e1, charge, &resp)
		} else {
			vals, err = svc.evalRound(p, srv, rs, in, req, node, e0, e1, charge, &resp)
		}
		if err != nil {
			return fail(err)
		}
		if req.CatchUp {
			n := run.Last - run.First + 1
			resp.CatchUps += n
			for i := int64(0); i < n; i++ {
				clu.PipelineStats.AddCatchUp()
			}
		}

		// Retain per-strip state sub-slices for later rounds' reads and
		// pulls. Slices are never mutated once stored, so pulls can alias
		// them safely.
		for ni := 0; ni <= node; ni++ {
			v, ok := vals[ni]
			if !ok || !pl.Nodes[ni].Retain {
				continue
			}
			st := rs.state[ni]
			if st == nil {
				st = make(map[int64][]float64)
				rs.state[ni] = st
			}
			for t := run.First; t <= run.Last; t++ {
				tLo, tHi := in.StripBounds(t)
				st[t] = v[tLo/in.ElemSize-e0 : tHi/in.ElemSize-e0]
			}
		}

		p.Sleep(sim.Time(weighted * clu.Cfg.ComputeNsPerElem))
		resp.Elements += e1 - e0

		if final {
			gridVals := vals[pl.GridOut]
			//das:transfer -- ownership joins pooledOut; released once the replica forwards acknowledge (fail() covers error paths)
			outBytes := grid.FloatsToBytesInto(pfs.AcquireBuffer((e1-e0)*in.ElemSize), gridVals)
			pooledOut = append(pooledOut, outBytes)
			strips := make([]int64, 0, run.Last-run.First+1)
			chunks := make([][]byte, 0, run.Last-run.First+1)
			for t := run.First; t <= run.Last; t++ {
				tLo, tHi := out.StripBounds(t)
				strips = append(strips, t)
				chunks = append(chunks, outBytes[tLo-run.Lo:tHi-run.Lo])
			}
			if err := srv.LocalWriteMany(p, req.Output, strips, chunks, false); err != nil {
				return fail(err)
			}
			done := sim.NewSignal[error](clu.Eng, fmt.Sprintf("pipe-forward-%d-%d", srv.Index(), run.First))
			forwards = append(forwards, done)
			p.Spawn(fmt.Sprintf("pipe-forward-%d-%d", srv.Index(), run.First), func(f *sim.Proc) {
				done.Fire(srv.ForwardReplicas(f, req.Output, strips, chunks))
			})
			resp.Wrote += int64(len(strips))
			clu.PipelineStats.AddWriteback()

			if pl.Reduce >= 0 {
				red := pl.Nodes[pl.Reduce].Reducer
				total := in.Size / in.ElemSize
				for t := run.First; t <= run.Last; t++ {
					tLo, tHi := in.StripBounds(t)
					se0, se1 := tLo/in.ElemSize, tHi/in.ElemSize
					b := &grid.Band{Width: in.Width, GlobalLen: total, Start: se0, End: se1, Lo: se0,
						Data: gridVals[se0-e0 : se1-e0]}
					resp.PartialStrips = append(resp.PartialStrips, t)
					resp.Partials = append(resp.Partials, red.ReduceBand(b))
				}
				p.Sleep(clu.ComputeTime(e1-e0, pl.Nodes[pl.Reduce].Weight))
			}
		}
	}
	for _, err := range sim.WaitAll(p, forwards) {
		if err != nil {
			return fail(err)
		}
	}
	for _, b := range pooledOut {
		pfs.ReleaseBuffer(b) // replica forwards acknowledged: last references gone
	}
	return resp, nil
}

// evalFromDurable evaluates the round's targets from the durable input:
// the fused-prefix round, and the catch-up path that rebuilds a
// reassigned strip's whole lineage. Returns values over [e0, e1) per
// target node.
func (svc *Service) evalFromDurable(p *sim.Proc, srv *pfs.Server, rs *runState, in *pfs.FileMeta,
	req stageReq, e0, e1 int64, charge func(int64, float64), resp *stageResp) (map[int][]float64, error) {
	pl := rs.plan
	var targets []int
	if req.CatchUp {
		targets = pl.catchUpTargets(req.Round)
	} else {
		targets = pl.roundTargets(0)
	}
	band, err := svc.inputBand(p, srv, in, e0, e1, pl.inputHaloFor(targets), resp)
	if err != nil {
		return nil, err
	}
	vals := make(map[int][]float64, len(targets))
	for _, t := range targets {
		vals[t] = pl.evalFromInput(t, e0, e1, band, charge)
	}
	band.Release()
	return vals, nil
}

// inputBand assembles the input raster over [e0, e1) plus a symmetric
// halo of depth elements: locally held strips in one batched disk pass,
// the rest fetched row-granular from their owners through the halo
// cache.
func (svc *Service) inputBand(p *sim.Proc, srv *pfs.Server, in *pfs.FileMeta, e0, e1, depth int64, resp *stageResp) (*grid.Band, error) {
	clu := svc.fs.Cluster()
	total := in.Size / in.ElemSize
	lo, hi := grid.HaloRange(e0, e1, depth, total)
	band := grid.NewBandPooled(in.Width, total, e0, e1, lo, hi)

	var localSpans []pfs.Span
	var localLo []int64
	type remote struct{ strip, needLo, needHi int64 }
	var remotes []remote
	for t := lo * in.ElemSize / in.StripSize; t*in.StripSize < hi*in.ElemSize; t++ {
		tLo, tHi := in.StripBounds(t)
		needLo, needHi := lo*in.ElemSize, hi*in.ElemSize
		if needLo < tLo {
			needLo = tLo
		}
		if needHi > tHi {
			needHi = tHi
		}
		if needHi <= needLo {
			continue
		}
		if srv.Holds(in.Name, t) {
			localSpans = append(localSpans, pfs.Span{Strip: t, Lo: needLo - tLo, Hi: needHi - tLo})
			localLo = append(localLo, needLo)
		} else {
			remotes = append(remotes, remote{strip: t, needLo: needLo, needHi: needHi})
		}
	}
	if len(localSpans) > 0 {
		chunks, err := srv.LocalReadMany(p, in.Name, localSpans)
		if err != nil {
			band.Release()
			return nil, err
		}
		for i, chunk := range chunks {
			band.FillBytes(localLo[i]/in.ElemSize, chunk)
			pfs.ReleaseBuffer(chunk)
		}
	}
	type fetched struct {
		data  []byte
		gotLo int64
		hit   bool
		err   error
	}
	sigs := make([]*sim.Signal[fetched], len(remotes))
	for i, rm := range remotes {
		rm := rm
		sig := sim.NewSignal[fetched](clu.Eng, fmt.Sprintf("pipe-fetch-%d-%d", srv.Index(), rm.strip))
		sigs[i] = sig
		p.Spawn(fmt.Sprintf("pipe-fetch-%d-%d", srv.Index(), rm.strip), func(f *sim.Proc) {
			tLo, _ := in.StripBounds(rm.strip)
			wantLo, wantHi := rm.needLo-tLo, rm.needHi-tLo
			if svc.cache != nil {
				if cached, ok := svc.cache.Get(srv.Index(), in.Name, rm.strip, wantLo, wantHi); ok {
					sig.Fire(fetched{data: cached, gotLo: rm.needLo, hit: true})
					return
				}
			}
			start := f.Now()
			data, err := svc.fs.ReadStripFrom(f, srv.NodeID(), in.Layout.Primary(rm.strip), in.Name, rm.strip, wantLo, wantHi)
			if err != nil {
				sig.Fire(fetched{err: err})
				return
			}
			if svc.cache != nil {
				svc.cache.RecordFetch(srv.Index(), in.Name, rm.strip, wantLo, data, f.Now()-start)
			}
			sig.Fire(fetched{data: data, gotLo: rm.needLo})
		})
	}
	results := sim.WaitAll(p, sigs)
	var fetchErr error
	for _, got := range results {
		if got.err != nil {
			fetchErr = got.err
		}
	}
	if fetchErr != nil {
		for _, got := range results {
			pfs.ReleaseBuffer(got.data)
		}
		band.Release()
		return nil, fetchErr
	}
	for _, got := range results {
		if got.hit {
			resp.CacheHits++
			resp.CacheHitBytes += int64(len(got.data))
		} else {
			resp.FetchOps++
			resp.FetchBytes += int64(len(got.data))
			clu.PipelineStats.AddFetch(int64(len(got.data)))
		}
		band.FillBytes(got.gotLo/in.ElemSize, got.data)
		pfs.ReleaseBuffer(got.data)
	}
	return band, nil
}

// evalRound evaluates one non-prefix node over [e0, e1) from parent
// state: local state for strips this server owns, halo-band pulls from
// the strips' state owners for the rest. A parentless kernel (a second
// DAG root) reads the durable input instead.
func (svc *Service) evalRound(p *sim.Proc, srv *pfs.Server, rs *runState, in *pfs.FileMeta,
	req stageReq, node int, e0, e1 int64, charge func(int64, float64), resp *stageResp) (map[int][]float64, error) {
	pl := rs.plan
	n := pl.Nodes[node]
	total := in.Size / in.ElemSize

	if n.Kind == kernels.KindKernel && len(n.Parents) == 0 {
		band, err := svc.inputBand(p, srv, in, e0, e1, n.Halo, resp)
		if err != nil {
			return nil, err
		}
		out := pl.applyKernel(node, e0, e1, band.Lo, band.Data, total, charge)
		band.Release()
		return map[int][]float64{node: out}, nil
	}

	plo, phi := e0, e1
	if n.Kind == kernels.KindKernel {
		plo, phi = grid.HaloRange(e0, e1, n.Halo, total)
	}
	parents := make([][]float64, len(n.Parents))
	for i, pa := range n.Parents {
		pv, err := svc.parentValues(p, srv, rs, in, req, pa, plo, phi, resp)
		if err != nil {
			return nil, err
		}
		parents[i] = pv
	}
	switch n.Kind {
	case kernels.KindKernel:
		return map[int][]float64{node: pl.applyKernel(node, e0, e1, plo, parents[0], total, charge)}, nil
	case kernels.KindCombine:
		return map[int][]float64{node: pl.applyCombine(node, parents[0], parents[1], charge)}, nil
	default:
		return nil, fmt.Errorf("pipeline: round on %v node %q", n.Kind, n.ID)
	}
}

// parentValues materializes a parent node's values over global element
// range [plo, phi): strip by strip from local state, with missing strips
// batched into per-owner band pulls.
func (svc *Service) parentValues(p *sim.Proc, srv *pfs.Server, rs *runState, in *pfs.FileMeta,
	req stageReq, parent int, plo, phi int64, resp *stageResp) ([]float64, error) {
	out := make([]float64, phi-plo)
	st := rs.state[parent]
	elemsPerStrip := in.StripSize / in.ElemSize
	type pull struct {
		owner int
		spans []bandSpan
	}
	var pulls []pull
	byOwner := make(map[int]int)
	for t := plo / elemsPerStrip; t*elemsPerStrip < phi; t++ {
		tLo, tHi := in.StripBounds(t)
		se0, se1 := tLo/in.ElemSize, tHi/in.ElemSize
		needLo, needHi := plo, phi
		if needLo < se0 {
			needLo = se0
		}
		if needHi > se1 {
			needHi = se1
		}
		if needHi <= needLo {
			continue
		}
		if v, ok := st[t]; ok {
			copy(out[needLo-plo:needHi-plo], v[needLo-se0:needHi-se0])
			continue
		}
		if req.Owners == nil || t >= int64(len(req.Owners)) || req.Owners[t] < 0 {
			return nil, transient{fmt.Errorf("pipeline: no state owner for strip %d of %q node %d", t, req.Token, parent)}
		}
		owner := int(req.Owners[t])
		if owner == srv.Index() {
			// The coordinator thinks this server owns the strip but the
			// state is gone — a restart wiped it.
			return nil, transient{fmt.Errorf("pipeline: state for strip %d of %q lost at server %d", t, req.Token, owner)}
		}
		i, ok := byOwner[owner]
		if !ok {
			i = len(pulls)
			byOwner[owner] = i
			pulls = append(pulls, pull{owner: owner})
		}
		pulls[i].spans = append(pulls[i].spans, bandSpan{Strip: t, Lo: needLo, Hi: needHi})
	}

	clu := svc.fs.Cluster()
	type pulled struct {
		idx  int
		resp bandResp
		ok   bool
	}
	sigs := make([]*sim.Signal[pulled], len(pulls))
	for i, pu := range pulls {
		i, pu := i, pu
		sig := sim.NewSignal[pulled](clu.Eng, fmt.Sprintf("pipe-pull-%d-%d", srv.Index(), pu.owner))
		sigs[i] = sig
		p.Spawn(fmt.Sprintf("pipe-pull-%d-%d", srv.Index(), pu.owner), func(f *sim.Proc) {
			toID := clu.StorageID(pu.owner)
			selfID := srv.NodeID()
			msg := simnet.Message{
				From:    selfID,
				To:      toID,
				Port:    Port,
				Size:    headerBytes,
				Class:   clu.ClassBetween(selfID, toID),
				Payload: bandReq{Token: req.Token, Node: parent, Spans: pu.spans},
			}
			var reply simnet.Message
			delivered := true
			if clu.Faults.Active() {
				// Abort on either end crashing: a down PULLER's request
				// (or the response back to it) is silently dropped, so
				// watching only the owner would poll forever. The
				// deadline is a final backstop against lost messages
				// neither liveness check explains.
				fl := clu.Faults
				toInc, selfInc := fl.Incarnation(toID), fl.Incarnation(selfID)
				dead := func() bool {
					return fl.Down(toID) || fl.Incarnation(toID) != toInc ||
						fl.Down(selfID) || fl.Incarnation(selfID) != selfInc
				}
				pol := svc.fs.Retry
				deadline := pol.Timeout * sim.Time(pol.Retries+1)
				reply, delivered = clu.Net.CallCancelable(f, msg, pol.Quantum, deadline, dead)
			} else {
				reply = clu.Net.Call(f, msg)
			}
			r := pulled{idx: i}
			if delivered {
				r.resp, r.ok = reply.Payload.(bandResp)
			}
			sig.Fire(r)
		})
	}
	var pullErr error
	for _, r := range sim.WaitAll(p, sigs) {
		if !r.ok {
			pullErr = transient{fmt.Errorf("pipeline: band pull to server %d lost", pulls[r.idx].owner)}
			continue
		}
		if r.resp.Err != "" {
			err := fmt.Errorf("pipeline: %s", r.resp.Err)
			if r.resp.Transient {
				pullErr = transient{err}
			} else {
				pullErr = err
			}
			continue
		}
		for j, span := range pulls[r.idx].spans {
			v := r.resp.Data[j]
			copy(out[span.Lo-plo:span.Hi-plo], v)
			bytes := int64(len(v)) * grid.ElemSize
			resp.ExchangeOps++
			resp.ExchangeBytes += bytes
			clu.PipelineStats.AddExchange(bytes)
			if svc.cache != nil {
				svc.cache.AddBandHeat(in.Name, bytes)
			}
		}
	}
	if pullErr != nil {
		return nil, pullErr
	}
	return out, nil
}

// band serves a pull from this server's stored state. Free on the DES
// clock beyond the wire: the values already sit in memory.
func (svc *Service) band(srv *pfs.Server, req bandReq) bandResp {
	clu := svc.fs.Cluster()
	rs, ok := svc.runs[srv.Index()][req.Token]
	if ok && rs.inc != clu.Faults.Incarnation(srv.NodeID()) {
		delete(svc.runs[srv.Index()], req.Token)
		ok = false
	}
	if !ok {
		return bandResp{Err: fmt.Sprintf("pipeline: state for %q lost at server %d", req.Token, srv.Index()), Transient: true}
	}
	st := rs.state[req.Node]
	data := make([][]float64, len(req.Spans))
	for i, span := range req.Spans {
		v, ok := st[span.Strip]
		if !ok {
			return bandResp{Err: fmt.Sprintf("pipeline: state for strip %d of %q lost at server %d", span.Strip, req.Token, srv.Index()), Transient: true}
		}
		tLo, _ := rs.in.StripBounds(span.Strip)
		data[i] = v[span.Lo-tLo/rs.in.ElemSize : span.Hi-tLo/rs.in.ElemSize]
	}
	return bandResp{Data: data}
}
