package pipeline

import (
	"fmt"
	"sort"
	"strings"

	"github.com/hpcio/das/internal/active"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/pfs"
	"github.com/hpcio/das/internal/predict"
	"github.com/hpcio/das/internal/sim"
	"github.com/hpcio/das/internal/simnet"
)

// maxAttempts bounds redispatch attempts within one round. Catch-up
// always recomputes from the durable input, so under any single-failure
// plan the second attempt completes.
const maxAttempts = 6

// RunResult summarizes one pipeline run: the execution shape the
// compiled plan chose, the achieved halo traffic against the
// composed-offset lower bound, and the merged reduce values when the DAG
// ends in a reduce.
type RunResult struct {
	Stages      int
	FusedStages int
	Rounds      int
	Elements    int64

	FetchOps      int64
	FetchBytes    int64
	CacheHits     int64
	CacheHitBytes int64
	ExchangeOps   int64
	ExchangeBytes int64
	CatchUps      int64
	Redispatches  int64
	Wrote         int64

	// AchievedHaloBytes is every byte the servers moved to satisfy
	// dependence windows (input halo fetches plus inter-stage band
	// pulls); LowerBoundBytes is the minimum the composed DAG offsets
	// admit for any schedule that never writes intermediates back.
	AchievedHaloBytes int64
	LowerBoundBytes   int64

	// Reduce holds the canonical ascending-strip merge of the terminal
	// reduce, nil when the DAG has none.
	Reduce []float64
}

// LowerBoundRatio reports achieved halo bytes over the composed-offset
// minimum (1.0 = optimal; 0 when the bound is zero).
func (r RunResult) LowerBoundRatio() float64 {
	if r.LowerBoundBytes <= 0 {
		return 0
	}
	return float64(r.AchievedHaloBytes) / float64(r.LowerBoundBytes)
}

// Client coordinates pipeline runs from a compute node: it compiles the
// DAG, drives the dispatch rounds strip-set by strip-set, reassigns
// strips with catch-up when a server crash loses in-memory state, and
// merges the terminal reduce partials in canonical strip order.
type Client struct {
	fs     *pfs.FileSystem
	nodeID int
	reg    *kernels.Registry
	combs  *kernels.CombinerRegistry
	reds   *kernels.ReducerRegistry
	seq    int
}

// NewClient builds a pipeline client on the given compute node. Nil
// combiner or reducer registries install the defaults (they must match
// the deployed service's registries: both sides compile the same plan).
func NewClient(fs *pfs.FileSystem, nodeID int, reg *kernels.Registry, combs *kernels.CombinerRegistry, reds *kernels.ReducerRegistry) *Client {
	if combs == nil {
		combs = kernels.DefaultCombiners()
	}
	if reds == nil {
		reds = kernels.DefaultReducers()
	}
	return &Client{fs: fs, nodeID: nodeID, reg: reg, combs: combs, reds: reds}
}

// Run executes the DAG over input, committing the grid output into the
// already-created output file. The output commits byte-identical to a
// sequential per-stage evaluation of the same DAG — with or without
// faults — because sub-range kernel evaluation equals slicing a
// full-raster pass and catch-up recomputes exactly the lost lineage.
func (c *Client) Run(p *sim.Proc, d kernels.DAG, input, output string) (RunResult, error) {
	clu := c.fs.Cluster()
	in, ok := c.fs.Meta(input)
	if !ok {
		return RunResult{}, fmt.Errorf("pipeline: unknown input %q", input)
	}
	if in.Width == 0 || in.ElemSize == 0 {
		return RunResult{}, fmt.Errorf("pipeline: input %q lacks raster metadata", input)
	}
	out, ok := c.fs.Meta(output)
	if !ok {
		return RunResult{}, fmt.Errorf("pipeline: unknown output %q", output)
	}
	if out.Size != in.Size || out.StripSize != in.StripSize {
		return RunResult{}, fmt.Errorf("pipeline: output geometry differs from input")
	}
	pl, err := Compile(d, c.reg, c.combs, c.reds, in.Width, LocalHaloOf(in.Layout, in.Locator()))
	if err != nil {
		return RunResult{}, err
	}
	c.seq++
	token := fmt.Sprintf("%s#%d@%d", d.Name, c.seq, c.nodeID)

	f := clu.Faults
	strips := in.Strips()
	// owner tracks which server's memory holds each strip's retained
	// state; ownerInc the incarnation it was built under, recorded
	// PRE-dispatch so a crash right after the response still reads as a
	// changed incarnation next round.
	owner := make([]int32, strips)
	ownerInc := make([]uint64, strips)
	for s := range owner {
		owner[s] = -1
	}
	ownerLost := func(s int64) bool {
		if owner[s] < 0 {
			return true
		}
		id := clu.StorageID(int(owner[s]))
		return f.Down(id) || f.Incarnation(id) != ownerInc[s]
	}

	var res RunResult
	partials := make(map[int64][]float64)
	for round := 0; round < pl.Rounds(); round++ {
		clu.PipelineStats.AddRound()
		pending := make([]int64, 0, strips)
		for s := int64(0); s < strips; s++ {
			pending = append(pending, s)
		}
		catch := make(map[int64]bool)
		if round > 0 {
			for s := int64(0); s < strips; s++ {
				if ownerLost(s) {
					catch[s] = true
				}
			}
		}
		for attempt := 0; len(pending) > 0; attempt++ {
			if attempt >= maxAttempts {
				return RunResult{}, fmt.Errorf("pipeline: %d strips unprocessed after %d attempts in round %d: %w",
					len(pending), attempt, round, pfs.ErrTimeout)
			}
			if attempt > 0 {
				clu.PipelineStats.AddRedispatch()
				clu.Recovery.AddExecRetry()
				res.Redispatches++
			}
			var catchStrips, normal []int64
			for _, s := range pending {
				if catch[s] {
					catchStrips = append(catchStrips, s)
				} else {
					normal = append(normal, s)
				}
			}
			// Wave A: catch-up strips recompute their lineage from the
			// durable input on a freshly chosen live holder. They must
			// land before wave B, whose band pulls target the new owners.
			if len(catchStrips) > 0 {
				failed, err := c.dispatch(p, pl, token, d, input, output, round, true, catchStrips, owner, ownerInc, partials, &res)
				if err != nil {
					return RunResult{}, err
				}
				if len(failed) > 0 {
					// Retry everything next attempt: wave B's owner
					// snapshot would point pulls at strips still in
					// flight.
					for _, s := range failed {
						catch[s] = true
					}
					pending = append(failed, normal...)
					sortStrips(pending)
					continue
				}
			}
			pending = pending[:0]
			if len(normal) > 0 {
				failed, err := c.dispatch(p, pl, token, d, input, output, round, false, normal, owner, ownerInc, partials, &res)
				if err != nil {
					return RunResult{}, err
				}
				for _, s := range failed {
					catch[s] = true
				}
				pending = append(pending, failed...)
				sortStrips(pending)
			}
		}
	}

	if pl.Reduce >= 0 {
		red := pl.Nodes[pl.Reduce].Reducer
		order := make([]int64, 0, len(partials))
		for s := range partials {
			order = append(order, s)
		}
		sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
		ordered := make([][]float64, len(order))
		for i, s := range order {
			ordered[i] = partials[s]
		}
		res.Reduce = red.Merge(ordered)
		clu.PipelineStats.AddReduceMerge()
	}

	c.release(p, token)

	spec := pl.Spec()
	res.Stages = len(pl.Nodes)
	res.FusedStages = fusedStages(pl)
	res.Rounds = pl.Rounds()
	res.AchievedHaloBytes = res.FetchBytes + res.ExchangeBytes
	bound, err := predict.PipelineLowerBound(predict.Params{
		ElemSize:     in.ElemSize,
		StripSize:    in.StripSize,
		FileSize:     in.Size,
		Width:        in.Width,
		OutputFactor: 1,
	}, in.Layout, spec.DAGBack, spec.DAGFwd)
	if err != nil {
		return RunResult{}, err
	}
	res.LowerBoundBytes = bound
	clu.PipelineStats.AddRun(res.Stages, res.FusedStages, res.AchievedHaloBytes, bound)
	return res, nil
}

// dispatch sends one wave of stage requests, grouped by assigned server,
// and folds successful responses into owner tracking, partials, and the
// run result. It returns the strips whose server failed transiently
// (crash mid-round, lost state) for reassignment; hard errors abort.
func (c *Client) dispatch(p *sim.Proc, pl *Plan, token string, d kernels.DAG, input, output string,
	round int, catchUp bool, strips []int64, owner []int32, ownerInc []uint64,
	partials map[int64][]float64, res *RunResult) ([]int64, error) {
	clu := c.fs.Cluster()
	f := clu.Faults
	live := func(srv int) bool { return !clu.ServerDown(srv) }
	out, _ := c.fs.Meta(output)

	assign := make(map[int][]int64)
	var order []int
	for _, s := range strips {
		var srv int
		if !catchUp && round > 0 {
			// A normal strip past round 0 must run where its state
			// lives; the caller already diverted lost owners to
			// catch-up.
			srv = int(owner[s])
		} else if !catchUp && round == 0 && owner[s] >= 0 && live(int(owner[s])) {
			// A round-0 redispatch keeps strips that already succeeded
			// on their recorded owner out of this wave entirely; fresh
			// strips fall through to holder assignment.
			srv = int(owner[s])
		} else {
			holder, ok := layout.FirstLiveHolder(out.Layout, s, live)
			if !ok {
				return nil, &active.NoLiveCopyError{File: input, Strip: s}
			}
			srv = holder
		}
		if _, seen := assign[srv]; !seen {
			order = append(order, srv)
		}
		assign[srv] = append(assign[srv], s)
	}
	sort.Ints(order)

	// Owners snapshot for wave-B pulls: current state owners, with this
	// wave's own strips pointed at their assigned server (a server's
	// pulls never target strips assigned to the same request, but a
	// concurrent peer's may).
	owners := make([]int32, len(owner))
	copy(owners, owner)
	for srv, ss := range assign {
		for _, s := range ss {
			owners[s] = int32(srv)
		}
	}

	type result struct {
		srv    int
		inc    uint64
		strips []int64
		resp   stageResp
		ok     bool
	}
	sigs := make([]*sim.Signal[result], 0, len(order))
	for _, srv := range order {
		srv, ss := srv, assign[srv]
		done := sim.NewSignal[result](clu.Eng, "pipe-dispatch")
		sigs = append(sigs, done)
		p.Spawn("pipe-dispatch", func(dp *sim.Proc) {
			toID := clu.StorageID(srv)
			inc := f.Incarnation(toID)
			msg := simnet.Message{
				From:  c.nodeID,
				To:    toID,
				Port:  Port,
				Size:  headerBytes + int64(len(ss))*8,
				Class: clu.ClassBetween(c.nodeID, toID),
				Payload: stageReq{Token: token, DAG: d, Input: input, Output: output,
					Round: round, Strips: ss, CatchUp: catchUp, Owners: owners},
			}
			r := result{srv: srv, inc: inc, strips: ss}
			if f.Active() {
				crashed := func() bool { return f.Down(toID) || f.Incarnation(toID) != inc }
				resp, delivered := clu.Net.CallCancelable(dp, msg, c.fs.Retry.Quantum, 0, crashed)
				if delivered {
					r.resp, r.ok = resp.Payload.(stageResp)
				}
			} else {
				resp := clu.Net.Call(dp, msg)
				r.resp, r.ok = resp.Payload.(stageResp)
			}
			done.Fire(r)
		})
	}
	var failed []int64
	for _, r := range sim.WaitAll(p, sigs) {
		if !r.ok || (r.resp.Err != "" && r.resp.Transient) {
			failed = append(failed, r.strips...)
			continue
		}
		if r.resp.Err != "" {
			if strings.Contains(r.resp.Err, pfs.ErrNoLiveCopy.Error()) {
				return nil, &active.NoLiveCopyError{File: input, Strip: -1}
			}
			return nil, fmt.Errorf("pipeline: %s", r.resp.Err)
		}
		for _, s := range r.strips {
			owner[s] = int32(r.srv)
			ownerInc[s] = r.inc
		}
		for i, s := range r.resp.PartialStrips {
			partials[s] = r.resp.Partials[i]
		}
		res.Elements += r.resp.Elements
		res.FetchOps += r.resp.FetchOps
		res.FetchBytes += r.resp.FetchBytes
		res.CacheHits += r.resp.CacheHits
		res.CacheHitBytes += r.resp.CacheHitBytes
		res.ExchangeOps += r.resp.ExchangeOps
		res.ExchangeBytes += r.resp.ExchangeBytes
		res.CatchUps += r.resp.CatchUps
		res.Wrote += r.resp.Wrote
	}
	sortStrips(failed)
	return failed, nil
}

// release drops the run's retained state on every live server (one-way;
// a down server's state died with it, and a restart purges by
// incarnation anyway).
func (c *Client) release(p *sim.Proc, token string) {
	clu := c.fs.Cluster()
	for s := 0; s < c.fs.Servers(); s++ {
		toID := clu.StorageID(s)
		if clu.Faults.Down(toID) {
			continue
		}
		clu.Net.Send(p, simnet.Message{
			From:    c.nodeID,
			To:      toID,
			Port:    Port,
			Size:    headerBytes,
			Class:   clu.ClassBetween(c.nodeID, toID),
			Payload: releaseReq{Token: token},
		})
	}
}

// fusedStages counts the stages a run avoids dispatching separately:
// the fused prefix beyond its first stage plus every zero-reach stage
// that folds into its parent's round — mirroring predict.DecidePipeline.
func fusedStages(pl *Plan) int {
	fused := pl.Prefix - 1
	for i := pl.Prefix; i < len(pl.Nodes); i++ {
		if pl.Nodes[i].Back == 0 && pl.Nodes[i].Fwd == 0 {
			fused++
		}
	}
	return fused
}

func sortStrips(s []int64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
