package pipeline

import (
	"fmt"

	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/kernels"
)

// evalFromInput computes node values over the owned element range
// [lo, hi) by recursing to the DAG input, which must be present in the
// band across the composed halo of every node touched. Because each
// output element depends only on its own dependence window, evaluating a
// node over a sub-range is bitwise identical to slicing a full-raster
// evaluation — the property that makes fused prefixes and crash
// catch-up recomputes reproduce the sequential reference exactly.
// charge, when non-nil, receives the weighted element count of every
// kernel/combine application for simulated CPU accounting.
func (pl *Plan) evalFromInput(node int, lo, hi int64, in *grid.Band, charge func(elems int64, weight float64)) []float64 {
	n := pl.Nodes[node]
	total := in.GlobalLen
	switch n.Kind {
	case kernels.KindKernel:
		plo, phi := grid.HaloRange(lo, hi, n.Halo, total)
		var data []float64
		if len(n.Parents) == 0 {
			data = in.Data[plo-in.Lo : phi-in.Lo]
		} else {
			data = pl.evalFromInput(n.Parents[0], plo, phi, in, charge)
		}
		return pl.applyKernel(node, lo, hi, plo, data, total, charge)
	case kernels.KindCombine:
		a := pl.evalFromInput(n.Parents[0], lo, hi, in, charge)
		b := pl.evalFromInput(n.Parents[1], lo, hi, in, charge)
		return pl.applyCombine(node, a, b, charge)
	default:
		panic(fmt.Sprintf("pipeline: evalFromInput on %v node %q", n.Kind, n.ID))
	}
}

// applyKernel runs a kernel node over owned [lo, hi) given parent values
// covering [dataLo, dataLo+len(data)).
func (pl *Plan) applyKernel(node int, lo, hi, dataLo int64, data []float64, total int64, charge func(int64, float64)) []float64 {
	n := pl.Nodes[node]
	band := &grid.Band{Width: pl.Width, GlobalLen: total, Start: lo, End: hi, Lo: dataLo, Data: data}
	out := make([]float64, hi-lo)
	n.Kernel.ApplyBand(band, out)
	if charge != nil {
		charge(hi-lo, n.Weight)
	}
	return out
}

// applyCombine joins two parent value slices element-wise.
func (pl *Plan) applyCombine(node int, a, b []float64, charge func(int64, float64)) []float64 {
	n := pl.Nodes[node]
	out := make([]float64, len(a))
	for i := range out {
		out[i] = n.Combiner.Combine(a[i], b[i])
	}
	if charge != nil {
		charge(int64(len(out)), n.Weight)
	}
	return out
}
