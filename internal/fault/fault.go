// Package fault provides deterministic, DES-clock-driven fault injection
// for the simulated cluster: storage servers crash and restart at planned
// simulated times, disks and NICs degrade by a factor, and a fraction of
// network messages is dropped or delayed. All randomness flows through one
// seeded source drawn on the single engine goroutine, so a run with the
// same seed and plan reproduces the same failures, the same recoveries,
// and the same completion times.
//
// The package deliberately knows nothing about the cluster: State tracks
// fault status per abstract node id and implements the hooks simnet and
// pfs consult; the cluster package schedules Plan events onto a State.
package fault

import (
	"math/rand"

	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/sim"
)

// State is the live fault status of a cluster. It is engine-goroutine
// state, like the rest of the simulation core: mutated only by plan events
// and consulted only by simulated processes.
//
// A zero-valued or freshly created State reports Active() == false, and
// every consumer is expected to fast-path that case so fault-free runs pay
// nothing — neither time nor allocations — for the machinery.
type State struct {
	rng *rand.Rand
	rec *metrics.Recovery
	log *metrics.FaultLog

	down        map[int]bool
	incarnation map[int]uint64
	nicFactor   map[int]float64
	lossFrac    float64
	lossDelay   sim.Time

	active bool
}

// NewState creates a healthy fault state. rec and log may be nil, in which
// case private collectors are created.
func NewState(seed int64, rec *metrics.Recovery, log *metrics.FaultLog) *State {
	if rec == nil {
		rec = metrics.NewRecovery()
	}
	if log == nil {
		log = metrics.NewFaultLog()
	}
	if seed == 0 {
		seed = 1
	}
	return &State{
		rng:         rand.New(rand.NewSource(seed)),
		rec:         rec,
		log:         log,
		down:        make(map[int]bool),
		incarnation: make(map[int]uint64),
		nicFactor:   make(map[int]float64),
	}
}

// Reseed resets the random source, e.g. when a plan carries its own seed.
func (s *State) Reseed(seed int64) {
	if seed == 0 {
		seed = 1
	}
	s.rng = rand.New(rand.NewSource(seed))
}

// Active reports whether any fault has ever been applied. Consumers use it
// to skip the fault paths entirely on healthy runs; it stays true after
// all faults heal, because timing-sensitive callers must not change
// behavior mid-run when the last fault clears.
func (s *State) Active() bool { return s.active }

// MarkActive forces Active() true. Fault kinds the State does not itself
// track (e.g. disk degradation, applied directly to the disk model) call
// it so consumers still know a faulted run is underway.
func (s *State) MarkActive() { s.active = true }

// Recovery returns the recovery-action counters faults feed.
func (s *State) Recovery() *metrics.Recovery { return s.rec }

// Log returns the applied-fault log.
func (s *State) Log() *metrics.FaultLog { return s.log }

// SetDown marks a node crashed (true) or restarted (false). A restart
// bumps the node's incarnation so in-flight watchers can tell "still the
// server I called" from "crashed and came back, my request is gone".
func (s *State) SetDown(node int, down bool) {
	s.active = true
	if s.down[node] == down {
		return
	}
	s.down[node] = down
	s.incarnation[node]++
}

// Down reports whether the node is currently crashed.
func (s *State) Down(node int) bool {
	if !s.active {
		return false
	}
	return s.down[node]
}

// Incarnation returns a counter that changes whenever the node crashes or
// restarts.
func (s *State) Incarnation(node int) uint64 {
	if !s.active {
		return 0
	}
	return s.incarnation[node]
}

// SetNICFactor scales the node's NIC bandwidth by f (0 < f <= 1 degrades,
// 1 restores). Non-positive factors are clamped to a sliver rather than
// zero so transfers still terminate.
func (s *State) SetNICFactor(node int, f float64) {
	s.active = true
	if f <= 0 {
		f = 1e-3
	}
	if f >= 1 {
		delete(s.nicFactor, node)
		return
	}
	s.nicFactor[node] = f
}

// NICFactor returns the node's current NIC bandwidth scale (1 = healthy).
func (s *State) NICFactor(node int) float64 {
	if !s.active {
		return 1
	}
	if f, ok := s.nicFactor[node]; ok {
		return f
	}
	return 1
}

// SetLoss makes every subsequent remote message independently lost with
// probability frac; when delay is positive the message is late by delay
// instead of lost. frac 0 clears the fault.
func (s *State) SetLoss(frac float64, delay sim.Time) {
	s.active = true
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	s.lossFrac = frac
	s.lossDelay = delay
}

// DropMessage decides the fate of one remote message: dropped, delayed by
// the returned extra latency, or (false, 0) delivered normally. The random
// draw happens only while a loss fault is configured, so fault plans
// without loss events consume no randomness and stay deterministic
// regardless of traffic volume.
func (s *State) DropMessage(from, to int) (bool, sim.Time) {
	if !s.active || s.lossFrac == 0 {
		return false, 0
	}
	if s.rng.Float64() >= s.lossFrac {
		return false, 0
	}
	if s.lossDelay > 0 {
		return false, s.lossDelay
	}
	return true, 0
}

// NoteDropped records a message lost to a fault (crashed endpoint or a
// DropMessage verdict); the transport calls it at the point of loss.
func (s *State) NoteDropped(from, to int) {
	s.rec.AddDroppedMessage()
}
