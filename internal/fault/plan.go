package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/hpcio/das/internal/sim"
)

// Kind enumerates the injectable fault types.
type Kind int

const (
	// Crash takes a storage server down: it stops receiving, its replies
	// are lost, and reads fail over to replicas.
	Crash Kind = iota
	// Restart brings a crashed server back with its stored strips intact
	// (the store models a persistent disk that survives the outage).
	Restart
	// SlowDisk scales a server's disk bandwidth by Factor.
	SlowDisk
	// SlowNIC scales a server's NIC bandwidth by Factor.
	SlowNIC
	// Loss drops (or, with Delay set, delays) each remote message
	// independently with probability Frac.
	Loss
)

var kindNames = [...]string{
	Crash:    "crash",
	Restart:  "restart",
	SlowDisk: "slowdisk",
	SlowNIC:  "slownic",
	Loss:     "loss",
}

// String returns the spec-syntax name of the kind.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// Event is one planned fault, applied At simulated time after the plan is
// installed. Server is a dense storage-server index (0-based, as printed
// by dasctl), or -1 for cluster-wide faults like Loss.
type Event struct {
	At     sim.Time
	Kind   Kind
	Server int
	Factor float64  // SlowDisk, SlowNIC
	Frac   float64  // Loss
	Delay  sim.Time // Loss: delay instead of drop
}

// String renders the event in spec syntax.
func (e Event) String() string {
	at := time.Duration(e.At).String()
	switch e.Kind {
	case SlowDisk, SlowNIC:
		return fmt.Sprintf("%s@%s:s%d*%g", e.Kind, at, e.Server, e.Factor)
	case Loss:
		if e.Delay > 0 {
			return fmt.Sprintf("loss@%s:%g/%s", at, e.Frac, time.Duration(e.Delay))
		}
		return fmt.Sprintf("loss@%s:%g", at, e.Frac)
	default:
		return fmt.Sprintf("%s@%s:s%d", e.Kind, at, e.Server)
	}
}

// Plan is a reproducible fault schedule. Seed, when non-zero, reseeds the
// cluster's fault randomness at installation so message-loss draws are a
// pure function of the plan.
type Plan struct {
	Seed   int64
	Events []Event
}

// Empty reports whether the plan schedules nothing.
func (p Plan) Empty() bool { return len(p.Events) == 0 }

// String renders the plan in the syntax ParsePlan accepts.
func (p Plan) String() string {
	parts := make([]string, 0, len(p.Events)+1)
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed:%d", p.Seed))
	}
	for _, e := range p.Events {
		parts = append(parts, e.String())
	}
	return strings.Join(parts, ",")
}

// Sorted returns the events ordered by time, keeping spec order for ties.
func (p Plan) Sorted() []Event {
	out := make([]Event, len(p.Events))
	copy(out, p.Events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Validate checks the plan against a cluster with the given number of
// storage servers.
func (p Plan) Validate(servers int) error {
	for _, e := range p.Events {
		if e.At < 0 {
			return fmt.Errorf("fault: event %v: negative time", e)
		}
		switch e.Kind {
		case Crash, Restart:
			if e.Server < 0 || e.Server >= servers {
				return fmt.Errorf("fault: event %v: server index out of range [0,%d)", e, servers)
			}
		case SlowDisk, SlowNIC:
			if e.Server < 0 || e.Server >= servers {
				return fmt.Errorf("fault: event %v: server index out of range [0,%d)", e, servers)
			}
			if e.Factor <= 0 || e.Factor > 1 {
				return fmt.Errorf("fault: event %v: factor must be in (0,1]", e)
			}
		case Loss:
			if e.Frac < 0 || e.Frac > 1 {
				return fmt.Errorf("fault: event %v: loss fraction must be in [0,1]", e)
			}
			if e.Delay < 0 {
				return fmt.Errorf("fault: event %v: negative delay", e)
			}
		default:
			return fmt.Errorf("fault: event %v: unknown kind", e)
		}
	}
	return nil
}

// ParsePlan parses a comma-separated fault plan, e.g.
//
//	seed:7,crash@50ms:s2,restart@120ms:s2,slowdisk@0s:s1*0.25,loss@0s:0.01/2ms
//
// Entries:
//
//	crash@DUR:sN       crash storage server N at DUR after installation
//	restart@DUR:sN     bring server N back up
//	slowdisk@DUR:sN*F  scale server N's disk bandwidth by F in (0,1]
//	slownic@DUR:sN*F   scale server N's NIC bandwidth by F in (0,1]
//	loss@DUR:F[/DUR2]  drop each message with probability F (delay by DUR2
//	                   instead of dropping when given); F=0 clears
//	seed:N             seed for the loss randomness (defaults to 1)
//
// Durations use Go syntax (50ms, 1.5s). Server indices are the dense
// storage-server indices dasctl prints, not cluster node ids.
func ParsePlan(spec string) (Plan, error) {
	var plan Plan
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(item, "seed:"); ok {
			seed, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("fault: bad seed %q: %v", item, err)
			}
			plan.Seed = seed
			continue
		}
		kindStr, rest, ok := strings.Cut(item, "@")
		if !ok {
			return Plan{}, fmt.Errorf("fault: %q: want kind@duration:arg", item)
		}
		var kind Kind = -1
		for k, name := range kindNames {
			if kindStr == name {
				kind = Kind(k)
				break
			}
		}
		if kind < 0 {
			return Plan{}, fmt.Errorf("fault: %q: unknown fault kind %q", item, kindStr)
		}
		atStr, arg, ok := strings.Cut(rest, ":")
		if !ok {
			return Plan{}, fmt.Errorf("fault: %q: want kind@duration:arg", item)
		}
		at, err := time.ParseDuration(atStr)
		if err != nil {
			return Plan{}, fmt.Errorf("fault: %q: bad time: %v", item, err)
		}
		ev := Event{At: sim.Time(at), Kind: kind, Server: -1}
		switch kind {
		case Crash, Restart:
			ev.Server, err = parseServer(arg)
			if err != nil {
				return Plan{}, fmt.Errorf("fault: %q: %v", item, err)
			}
		case SlowDisk, SlowNIC:
			srvStr, facStr, ok := strings.Cut(arg, "*")
			if !ok {
				return Plan{}, fmt.Errorf("fault: %q: want sN*factor", item)
			}
			ev.Server, err = parseServer(srvStr)
			if err != nil {
				return Plan{}, fmt.Errorf("fault: %q: %v", item, err)
			}
			ev.Factor, err = strconv.ParseFloat(facStr, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("fault: %q: bad factor: %v", item, err)
			}
		case Loss:
			fracStr, delayStr, hasDelay := strings.Cut(arg, "/")
			ev.Frac, err = strconv.ParseFloat(fracStr, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("fault: %q: bad fraction: %v", item, err)
			}
			if hasDelay {
				d, err := time.ParseDuration(delayStr)
				if err != nil {
					return Plan{}, fmt.Errorf("fault: %q: bad delay: %v", item, err)
				}
				ev.Delay = sim.Time(d)
			}
		}
		plan.Events = append(plan.Events, ev)
	}
	return plan, nil
}

func parseServer(s string) (int, error) {
	rest, ok := strings.CutPrefix(strings.TrimSpace(s), "s")
	if !ok {
		return 0, fmt.Errorf("server must look like s2, got %q", s)
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad server index %q", s)
	}
	return n, nil
}
