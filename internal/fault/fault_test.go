package fault

import (
	"testing"

	"github.com/hpcio/das/internal/sim"
)

func TestParsePlanRoundTrip(t *testing.T) {
	spec := "seed:7,crash@50ms:s2,restart@120ms:s2,slowdisk@0s:s1*0.25,slownic@1s:s0*0.5,loss@0s:0.01/2ms,loss@2s:0"
	plan, err := ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 7 {
		t.Fatalf("seed = %d, want 7", plan.Seed)
	}
	if len(plan.Events) != 6 {
		t.Fatalf("got %d events, want 6", len(plan.Events))
	}
	want := []Event{
		{At: 50 * sim.Millisecond, Kind: Crash, Server: 2},
		{At: 120 * sim.Millisecond, Kind: Restart, Server: 2},
		{At: 0, Kind: SlowDisk, Server: 1, Factor: 0.25},
		{At: sim.Second, Kind: SlowNIC, Server: 0, Factor: 0.5},
		{At: 0, Kind: Loss, Server: -1, Frac: 0.01, Delay: 2 * sim.Millisecond},
		{At: 2 * sim.Second, Kind: Loss, Server: -1},
	}
	for i, w := range want {
		if plan.Events[i] != w {
			t.Errorf("event %d = %+v, want %+v", i, plan.Events[i], w)
		}
	}
	if err := plan.Validate(4); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// String must parse back to the same plan.
	again, err := ParsePlan(plan.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", plan.String(), err)
	}
	if again.Seed != plan.Seed || len(again.Events) != len(plan.Events) {
		t.Fatalf("round trip changed the plan: %q", plan.String())
	}
	for i := range plan.Events {
		if again.Events[i] != plan.Events[i] {
			t.Errorf("round-trip event %d = %+v, want %+v", i, again.Events[i], plan.Events[i])
		}
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, spec := range []string{
		"explode@1s:s0",  // unknown kind
		"crash@1s",       // missing arg
		"crash@oops:s0",  // bad duration
		"crash@1s:2",     // server without s prefix
		"slowdisk@1s:s0", // missing factor
		"loss@1s:x",      // bad fraction
		"seed:abc",       // bad seed
		"crash:s0",       // missing @duration
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted a malformed spec", spec)
		}
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	for _, spec := range []string{
		"crash@1s:s9",        // server out of range for 4 servers
		"slowdisk@1s:s0*1.5", // factor > 1
		"slowdisk@1s:s0*0",   // factor 0 — parses, Validate rejects
		"loss@1s:1.5",        // fraction > 1
		"crash@-1s:s0",       // negative time
	} {
		plan, err := ParsePlan(spec)
		if err != nil {
			continue // some of these fail at parse time, which is fine too
		}
		if err := plan.Validate(4); err == nil {
			t.Errorf("Validate accepted %q", spec)
		}
	}
}

func TestStateCrashRestartIncarnation(t *testing.T) {
	s := NewState(1, nil, nil)
	if s.Active() {
		t.Fatal("fresh state reports Active")
	}
	if s.Down(3) {
		t.Fatal("fresh state reports a node down")
	}
	inc0 := s.Incarnation(3)
	s.SetDown(3, true)
	if !s.Active() || !s.Down(3) {
		t.Fatal("SetDown(true) not observed")
	}
	inc1 := s.Incarnation(3)
	if inc1 == inc0 {
		t.Fatal("crash did not bump incarnation")
	}
	s.SetDown(3, true) // idempotent: same state, same incarnation
	if s.Incarnation(3) != inc1 {
		t.Fatal("repeated crash bumped incarnation")
	}
	s.SetDown(3, false)
	if s.Down(3) {
		t.Fatal("restart not observed")
	}
	if s.Incarnation(3) == inc1 {
		t.Fatal("restart did not bump incarnation")
	}
	if !s.Active() {
		t.Fatal("Active must stay sticky after recovery")
	}
}

func TestStateLossDeterminism(t *testing.T) {
	draw := func(seed int64) []bool {
		s := NewState(seed, nil, nil)
		s.SetLoss(0.5, 0)
		out := make([]bool, 64)
		for i := range out {
			out[i], _ = s.DropMessage(0, 1)
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := draw(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical draws")
	}
}

func TestStateNICFactorAndLossDelay(t *testing.T) {
	s := NewState(1, nil, nil)
	if f := s.NICFactor(0); f != 1 {
		t.Fatalf("healthy NIC factor = %v, want 1", f)
	}
	s.SetNICFactor(0, 0.25)
	if f := s.NICFactor(0); f != 0.25 {
		t.Fatalf("NIC factor = %v, want 0.25", f)
	}
	s.SetNICFactor(0, 1)
	if f := s.NICFactor(0); f != 1 {
		t.Fatalf("restored NIC factor = %v, want 1", f)
	}
	s.SetLoss(1, 3*sim.Millisecond)
	drop, delay := s.DropMessage(0, 1)
	if drop || delay != 3*sim.Millisecond {
		t.Fatalf("loss with delay: got drop=%v delay=%v, want delayed delivery", drop, delay)
	}
	s.SetLoss(1, 0)
	drop, _ = s.DropMessage(0, 1)
	if !drop {
		t.Fatal("loss fraction 1 did not drop")
	}
	s.SetLoss(0, 0)
	if drop, _ := s.DropMessage(0, 1); drop {
		t.Fatal("cleared loss still dropping")
	}
}
