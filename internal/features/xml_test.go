package features

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseXMLPaperExample(t *testing.T) {
	src := `<?xml version="1.0"?>
<kernelFeatures>
  <kernel>
    <name>flow-routing</name>
    <dependence>-imgWidth+1, -imgWidth, -imgWidth-1, -1, 1,
                imgWidth-1, imgWidth, imgWidth+1</dependence>
  </kernel>
  <kernel>
    <name>stride-op</name>
    <dependence>-64, 64</dependence>
  </kernel>
</kernelFeatures>`
	pats, err := ParseXML(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) != 2 {
		t.Fatalf("got %d patterns", len(pats))
	}
	if pats[0].Name != "flow-routing" || len(pats[0].Offsets) != 8 {
		t.Errorf("first pattern %+v", pats[0])
	}
	got := pats[0].Resolve(100)
	want := []int64{-99, -100, -101, -1, 1, 99, 100, 101}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Resolve = %v, want %v", got, want)
		}
	}
}

func TestParseXMLErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"not xml", "Name:flow\nDependence: 1\n"},
		{"empty name", "<kernelFeatures><kernel><name> </name><dependence>1</dependence></kernel></kernelFeatures>"},
		{"bad offset", "<kernelFeatures><kernel><name>x</name><dependence>nope</dependence></kernel></kernelFeatures>"},
	}
	for _, c := range cases {
		if _, err := ParseXML(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestXMLRoundTripMatchesTextRoundTrip(t *testing.T) {
	prop := func(coefs, consts []int8) bool {
		n := len(coefs)
		if len(consts) < n {
			n = len(consts)
		}
		if n == 0 {
			return true
		}
		var offs []Offset
		for i := 0; i < n; i++ {
			offs = append(offs, Offset{Coef: int64(coefs[i]), Const: int64(consts[i])})
		}
		orig := []Pattern{{Name: "op", Offsets: offs}}
		x, err := FormatXML(orig)
		if err != nil {
			return false
		}
		back, err := ParseXML(strings.NewReader(x))
		if err != nil || len(back) != 1 || len(back[0].Offsets) != n {
			return false
		}
		for i := range offs {
			if back[0].Offsets[i] != offs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestFormatXMLIsValidHeaderAndIndent(t *testing.T) {
	out, err := FormatXML([]Pattern{{Name: "a", Offsets: EightNeighbor()}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "<?xml") || !strings.Contains(out, "<kernelFeatures>") {
		t.Errorf("output:\n%s", out)
	}
}
