package features

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// The paper (§III-B) allows kernel-features databases to be "a plain text
// file or an XML file". This file implements the XML form:
//
//	<kernelFeatures>
//	  <kernel>
//	    <name>flow-routing</name>
//	    <dependence>-imgWidth+1, -imgWidth, -imgWidth-1, -1, 1,
//	                imgWidth-1, imgWidth, imgWidth+1</dependence>
//	  </kernel>
//	</kernelFeatures>
//
// Offsets use the same expression syntax as the text format, so both
// formats round-trip through the same Offset parser.

type xmlDB struct {
	XMLName xml.Name    `xml:"kernelFeatures"`
	Kernels []xmlKernel `xml:"kernel"`
}

type xmlKernel struct {
	Name       string `xml:"name"`
	Dependence string `xml:"dependence"`
}

// ParseXML reads an XML kernel-features database.
func ParseXML(r io.Reader) ([]Pattern, error) {
	var db xmlDB
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&db); err != nil {
		return nil, fmt.Errorf("features: xml: %w", err)
	}
	pats := make([]Pattern, 0, len(db.Kernels))
	for i, k := range db.Kernels {
		name := strings.TrimSpace(k.Name)
		if name == "" {
			return nil, fmt.Errorf("features: xml: kernel %d has empty name", i)
		}
		p := Pattern{Name: name}
		for _, field := range strings.Split(k.Dependence, ",") {
			field = strings.TrimSpace(field)
			if field == "" {
				continue
			}
			off, err := ParseOffset(field)
			if err != nil {
				return nil, fmt.Errorf("features: xml: kernel %q: %w", name, err)
			}
			p.Offsets = append(p.Offsets, off)
		}
		pats = append(pats, p)
	}
	return pats, nil
}

// FormatXML renders patterns as an XML database.
func FormatXML(pats []Pattern) (string, error) {
	db := xmlDB{Kernels: make([]xmlKernel, 0, len(pats))}
	for _, p := range pats {
		offs := make([]string, len(p.Offsets))
		for i, o := range p.Offsets {
			offs[i] = o.String()
		}
		db.Kernels = append(db.Kernels, xmlKernel{
			Name:       p.Name,
			Dependence: strings.Join(offs, ", "),
		})
	}
	out, err := xml.MarshalIndent(db, "", "  ")
	if err != nil {
		return "", fmt.Errorf("features: xml: %w", err)
	}
	return xml.Header + string(out) + "\n", nil
}
