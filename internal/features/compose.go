package features

// Minkowski composition of dependence patterns.
//
// When operator B consumes the output of operator A, an element of B's
// output at position i reads A's output at i+ob for each ob in B's
// dependence list, and each of those reads in turn touched the original
// input at i+ob+oa for each oa in A's list (plus the element itself).
// The chain's dependence on the raw input is therefore the Minkowski sum
// of the per-stage offset sets, each augmented with the zero offset.
// Reaches add along a chain; a DAG join (two branches feeding one
// consumer) unions the branch compositions, so the composed reach is the
// per-direction maximum over paths. A zero-offset stage (a reduce or an
// element-wise combine) composes as the identity.

// Compose returns the dependence pattern of a chain of stages run in
// order: the Minkowski sum of their offset sets, deduplicated, under the
// given name. The zero offset is always included (every stage reads the
// element it produces), so composing with a pure reduce pattern is the
// identity. Offsets appear in deterministic insertion order: stage by
// stage, earlier partial sums first.
func Compose(name string, stages ...Pattern) Pattern {
	cur := []Offset{{}}
	for _, st := range stages {
		cur = minkowskiSum(cur, st.Offsets)
	}
	return Pattern{Name: name, Offsets: cur}
}

// minkowskiSum returns {a + b : a ∈ set, b ∈ add ∪ {0}} with duplicates
// removed, preserving first-seen order. Iteration is over slices only, so
// the result order is deterministic.
func minkowskiSum(set, add []Offset) []Offset {
	withZero := make([]Offset, 0, len(add)+1)
	withZero = append(withZero, Offset{})
	for _, o := range add {
		if !o.IsZero() {
			withZero = append(withZero, o)
		}
	}
	seen := make(map[Offset]bool, len(set)*len(withZero))
	out := make([]Offset, 0, len(set)*len(withZero))
	for _, a := range set {
		for _, b := range withZero {
			s := Offset{Coef: a.Coef + b.Coef, Const: a.Const + b.Const}
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	return out
}

// UnionOffsets returns the union of the two patterns' offset sets under
// the given name, preserving first-seen order — the dependence of a DAG
// join, whose consumer may read through either branch.
func UnionOffsets(name string, a, b Pattern) Pattern {
	seen := make(map[Offset]bool, len(a.Offsets)+len(b.Offsets))
	out := make([]Offset, 0, len(a.Offsets)+len(b.Offsets))
	for _, set := range [][]Offset{a.Offsets, b.Offsets} {
		for _, o := range set {
			if !seen[o] {
				seen[o] = true
				out = append(out, o)
			}
		}
	}
	return Pattern{Name: name, Offsets: out}
}

// Reach returns the backward and forward dependence reach of the pattern
// in elements for a raster of the given width: back is the magnitude of
// the most negative resolved offset and fwd the largest positive one.
// Both are ≥ 0; a pure self-reference pattern has zero reach.
func (p Pattern) Reach(width int) (back, fwd int64) {
	for _, o := range p.Offsets {
		r := o.Resolve(int64(width))
		if r < 0 && -r > back {
			back = -r
		}
		if r > fwd {
			fwd = r
		}
	}
	return back, fwd
}
