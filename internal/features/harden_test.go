package features

import (
	"fmt"
	"strings"
	"testing"
)

// TestParseRejectsDegenerateRecords covers the malformed description files
// that used to slip through (or panic downstream): duplicate offsets in a
// Dependence list, empty lists, orphan Dependence lines, and imgWidth
// coefficients far beyond any plausible raster.
func TestParseRejectsDegenerateRecords(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{
			"duplicate offsets on one line",
			"Name:a\nDependence: -1, 1, -1\n",
			"repeats offset",
		},
		{
			"duplicate symbolic offsets",
			"Name:a\nDependence: imgWidth+1, imgWidth + 1\n",
			"repeats offset",
		},
		{
			"duplicate across wrapped lines",
			"Name:a\nDependence: -imgWidth, 1,\n-imgWidth\n",
			"repeats offset",
		},
		{
			"empty dependence list",
			"Name:a\nDependence:\n",
			"empty dependence list",
		},
		{
			"dependence list of only separators",
			"Name:a\nDependence: ,,\n",
			"empty dependence list",
		},
		{
			"dependence with no preceding name",
			"Dependence: 1\n",
			"Dependence before Name",
		},
		{
			"oversized imgWidth coefficient",
			"Name:a\nDependence: 1048576*imgWidth\n",
			"rows of reach",
		},
		{
			"oversized negative coefficient",
			"Name:a\nDependence: -1048576*imgWidth\n",
			"rows of reach",
		},
		{
			"oversized constant",
			"Name:a\nDependence: 8589934592\n",
			"elements of reach",
		},
		{
			"sum of terms wraps int64",
			"Name:a\nDependence: 9223372036854775807 + 9223372036854775807\n",
			"elements of reach",
		},
	}
	for _, c := range cases {
		_, err := Parse(strings.NewReader(c.src))
		if err == nil {
			t.Errorf("%s: Parse succeeded, want error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
}

// TestParseAcceptsBoundaryMagnitudes pins the caps as inclusive: the
// largest representable reach parses, one past it does not.
func TestParseAcceptsBoundaryMagnitudes(t *testing.T) {
	if _, err := ParseOffset(fmt.Sprintf("%d*imgWidth", MaxCoef)); err != nil {
		t.Errorf("coefficient at the cap rejected: %v", err)
	}
	if _, err := ParseOffset(fmt.Sprintf("%d*imgWidth", MaxCoef+1)); err == nil {
		t.Error("coefficient one past the cap accepted")
	}
	if _, err := ParseOffset(fmt.Sprintf("-%d", MaxConst)); err != nil {
		t.Errorf("constant at the cap rejected: %v", err)
	}
	if _, err := ParseOffset(fmt.Sprintf("%d", MaxConst+1)); err == nil {
		t.Error("constant one past the cap accepted")
	}
}

// TestRegisterValidatesPatterns checks the registry applies the same
// validation to programmatic registrations as Parse does to files.
func TestRegisterValidatesPatterns(t *testing.T) {
	cases := []struct {
		name    string
		pat     Pattern
		wantSub string
	}{
		{"empty name", Pattern{Offsets: Stride(1)}, "empty name"},
		{"empty dependence list", Pattern{Name: "a"}, "empty dependence list"},
		{"duplicate offsets", Pattern{Name: "a", Offsets: []Offset{{0, 3}, {0, 3}}}, "repeats offset"},
		{"degenerate stride zero", Pattern{Name: "a", Offsets: Stride(0)}, "repeats offset"},
		{"oversized coefficient", Pattern{Name: "a", Offsets: []Offset{{MaxCoef + 1, 0}}}, "rows of reach"},
		{"oversized constant", Pattern{Name: "a", Offsets: []Offset{{0, -MaxConst - 1}}}, "elements of reach"},
	}
	for _, c := range cases {
		r := NewRegistry()
		err := r.Register(c.pat)
		if err == nil {
			t.Errorf("%s: Register succeeded, want error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
		if r.Len() != 0 {
			t.Errorf("%s: rejected pattern still stored", c.name)
		}
	}
	r := NewRegistry()
	if err := r.Register(Pattern{Name: "ok", Offsets: EightNeighbor()}); err != nil {
		t.Errorf("valid pattern rejected: %v", err)
	}
}
