// Package features implements the paper's Kernel Features component
// (§III-B): a registry of per-operator data dependence patterns that the
// active storage client consults before deciding whether to offload an
// operation.
//
// A pattern describes which elements an operator reads when processing one
// element, as signed offsets in the file's flat element space. Offsets may
// be symbolic in the raster width, exactly as in the paper's record for
// flow-routing:
//
//	Name:flow-routing
//	Dependence: -imgWidth+1, -imgWidth, -imgWidth-1, -1, 1,
//	            imgWidth-1, imgWidth, imgWidth+1
//
// Offsets are linear expressions a·imgWidth + b; Resolve substitutes the
// concrete width of the raster being processed.
package features

import (
	"fmt"
	"sort"
	"strings"
)

// Offset is a symbolic element offset Coef·imgWidth + Const.
type Offset struct {
	Coef  int64 // multiplier of imgWidth
	Const int64 // additive constant
}

// Resolve substitutes the raster width.
func (o Offset) Resolve(width int64) int64 { return o.Coef*width + o.Const }

// IsZero reports whether the offset is identically zero (a self-reference,
// which carries no dependence).
func (o Offset) IsZero() bool { return o.Coef == 0 && o.Const == 0 }

// String renders the offset in the description-file syntax.
func (o Offset) String() string {
	switch {
	case o.Coef == 0:
		return fmt.Sprintf("%d", o.Const)
	case o.Const == 0:
		return coefString(o.Coef)
	case o.Const > 0:
		return fmt.Sprintf("%s+%d", coefString(o.Coef), o.Const)
	default:
		return fmt.Sprintf("%s%d", coefString(o.Coef), o.Const)
	}
}

func coefString(c int64) string {
	switch c {
	case 1:
		return "imgWidth"
	case -1:
		return "-imgWidth"
	default:
		return fmt.Sprintf("%d*imgWidth", c)
	}
}

// Limits on offset magnitude. The coefficient is in units of whole raster
// rows, so no real dependence pattern needs more than a few of them; the
// caps keep Resolve far from int64 overflow for any plausible raster width
// and turn typo'd N*imgWidth coefficients into immediate parse errors.
const (
	MaxCoef  int64 = 1 << 16 // |Coef| bound, rows of reach
	MaxConst int64 = 1 << 32 // |Const| bound, elements of reach
)

func checkBounds(o Offset) error {
	if o.Coef > MaxCoef || o.Coef < -MaxCoef {
		return fmt.Errorf("coefficient %d*imgWidth exceeds %d rows of reach", o.Coef, MaxCoef)
	}
	if o.Const > MaxConst || o.Const < -MaxConst {
		return fmt.Errorf("constant %d exceeds %d elements of reach", o.Const, MaxConst)
	}
	return nil
}

// Pattern is a named dependence pattern: the offsets an operator reads
// relative to each element it processes.
type Pattern struct {
	Name    string
	Offsets []Offset
}

// Validate checks that the pattern is usable: named, with a non-empty
// dependence list, no repeated offsets, and every offset within the reach
// limits. Parse applies it to each record and Register to each pattern, so
// a malformed description file fails loudly instead of feeding the
// prediction model a degenerate dependence set.
func (p Pattern) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("features: pattern with empty name")
	}
	if len(p.Offsets) == 0 {
		return fmt.Errorf("features: pattern %q has an empty dependence list", p.Name)
	}
	seen := make(map[Offset]bool, len(p.Offsets))
	for _, o := range p.Offsets {
		if seen[o] {
			return fmt.Errorf("features: pattern %q repeats offset %q in its dependence list", p.Name, o.String())
		}
		seen[o] = true
		if err := checkBounds(o); err != nil {
			return fmt.Errorf("features: pattern %q: %w", p.Name, err)
		}
	}
	return nil
}

// Resolve returns the concrete offsets for a raster of the given width,
// in the order they were declared.
func (p Pattern) Resolve(width int) []int64 {
	out := make([]int64, len(p.Offsets))
	for i, o := range p.Offsets {
		out[i] = o.Resolve(int64(width))
	}
	return out
}

// MaxAbsOffset returns the farthest element the pattern reaches for a
// raster of the given width; 0 for an independence pattern.
func (p Pattern) MaxAbsOffset(width int) int64 {
	var maxAbs int64
	for _, off := range p.Resolve(width) {
		if off < 0 {
			off = -off
		}
		if off > maxAbs {
			maxAbs = off
		}
	}
	return maxAbs
}

// Independent reports whether the pattern has no dependence at all, the
// ideal case for active storage described in the paper's introduction.
func (p Pattern) Independent() bool {
	for _, o := range p.Offsets {
		if !o.IsZero() {
			return false
		}
	}
	return true
}

// String renders the pattern as a description-file record.
func (p Pattern) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Name:%s\n", p.Name)
	b.WriteString("Dependence: ")
	for i, o := range p.Offsets {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(o.String())
	}
	b.WriteString("\n")
	return b.String()
}

// EightNeighbor is the dependence of flow-routing, flow-accumulation,
// median and Gaussian filters: the 8 surrounding cells.
func EightNeighbor() []Offset {
	return []Offset{
		{-1, 1}, {-1, 0}, {-1, -1}, // row above: NE, N, NW in paper order
		{0, -1}, {0, 1}, // W, E
		{1, -1}, {1, 0}, {1, 1}, // row below
	}
}

// FourNeighbor is the von Neumann neighborhood.
func FourNeighbor() []Offset {
	return []Offset{{-1, 0}, {0, -1}, {0, 1}, {1, 0}}
}

// Stride is the paper's Fig. 6 two-dependence example: elements at
// ±stride (constant, width-independent).
func Stride(n int64) []Offset {
	return []Offset{{0, -n}, {0, n}}
}

// Union combines several patterns into one whose dependence set covers
// them all (duplicate offsets collapse). DAS uses it to plan a single
// data distribution serving a whole workflow of operators over one file:
// the layout must satisfy the widest reach any stage has.
func Union(name string, pats ...Pattern) Pattern {
	out := Pattern{Name: name}
	seen := make(map[Offset]bool)
	for _, p := range pats {
		for _, o := range p.Offsets {
			if seen[o] {
				continue
			}
			seen[o] = true
			out.Offsets = append(out.Offsets, o)
		}
	}
	return out
}

// Registry stores patterns by operator name, case-sensitively, mirroring
// the Kernel Features component embedded in the active storage client.
type Registry struct {
	byName map[string]Pattern
	order  []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Pattern)}
}

// Register adds or replaces a pattern after validating it; see
// Pattern.Validate for what is rejected.
func (r *Registry) Register(p Pattern) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if _, exists := r.byName[p.Name]; !exists {
		r.order = append(r.order, p.Name)
	}
	r.byName[p.Name] = p
	return nil
}

// Lookup returns the pattern for an operator.
func (r *Registry) Lookup(name string) (Pattern, bool) {
	p, ok := r.byName[name]
	return p, ok
}

// Names returns registered operator names in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Len returns the number of registered patterns.
func (r *Registry) Len() int { return len(r.byName) }

// Format renders the whole registry as a description file, one record per
// pattern, in registration order.
func (r *Registry) Format() string {
	var b strings.Builder
	for i, name := range r.order {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(r.byName[name].String())
	}
	return b.String()
}

// SortedResolve is a convenience for reporting: the concrete offsets of an
// operator sorted ascending.
func (r *Registry) SortedResolve(name string, width int) ([]int64, error) {
	p, ok := r.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("features: unknown operator %q", name)
	}
	offs := p.Resolve(width)
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	return offs, nil
}
