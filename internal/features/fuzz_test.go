package features

import (
	"strings"
	"testing"
)

// FuzzParseOffset checks the expression parser never panics and that any
// successfully parsed offset survives a format→parse round trip.
func FuzzParseOffset(f *testing.F) {
	for _, seed := range []string{
		"1", "-1", "imgWidth", "-imgWidth+1", "2*imgWidth-3", "imgWidth*4",
		"--5", " imgWidth - 1 ", "", "x", "1+", "*", "9999999999999999999",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		off, err := ParseOffset(s)
		if err != nil {
			return
		}
		back, err := ParseOffset(off.String())
		if err != nil {
			t.Fatalf("formatted offset %q does not re-parse: %v", off.String(), err)
		}
		if back != off {
			t.Fatalf("round trip changed offset: %+v → %q → %+v", off, off.String(), back)
		}
	})
}

// FuzzParse checks the record parser never panics and that whatever it
// accepts survives a format→parse round trip.
func FuzzParse(f *testing.F) {
	f.Add("Name:flow-routing\nDependence: -imgWidth+1, 1\n")
	f.Add("# comment\nName:a\nDependence: 1,\n2\n")
	f.Add("Name:\nDependence: 1\n")
	f.Add("Dependence: 1\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		pats, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		reg := NewRegistry()
		for _, p := range pats {
			// Registry rejects empty names; Parse must never emit one.
			if err := reg.Register(p); err != nil {
				t.Fatalf("parsed pattern unregistrable: %v", err)
			}
		}
		back, err := Parse(strings.NewReader(reg.Format()))
		if err != nil {
			t.Fatalf("formatted registry does not re-parse: %v", err)
		}
		if len(back) != reg.Len() {
			t.Fatalf("round trip changed record count: %d → %d", reg.Len(), len(back))
		}
	})
}

// FuzzParseXML checks the XML parser never panics on arbitrary input.
func FuzzParseXML(f *testing.F) {
	f.Add("<kernelFeatures><kernel><name>a</name><dependence>1</dependence></kernel></kernelFeatures>")
	f.Add("<kernelFeatures/>")
	f.Add("not xml at all")
	f.Fuzz(func(t *testing.T, src string) {
		pats, err := ParseXML(strings.NewReader(src))
		if err != nil {
			return
		}
		if _, err := FormatXML(pats); err != nil {
			t.Fatalf("accepted patterns do not format: %v", err)
		}
	})
}
