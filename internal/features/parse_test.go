package features

import (
	"strings"
	"testing"
)

func TestParseOffsetExpressions(t *testing.T) {
	cases := []struct {
		in   string
		want Offset
	}{
		{"5", Offset{0, 5}},
		{"-5", Offset{0, -5}},
		{"+5", Offset{0, 5}},
		{"imgWidth", Offset{1, 0}},
		{"-imgWidth", Offset{-1, 0}},
		{"-imgWidth+1", Offset{-1, 1}},
		{"-imgWidth - 1", Offset{-1, -1}},
		{"imgWidth - 1", Offset{1, -1}},
		{"2*imgWidth", Offset{2, 0}},
		{"-2*imgWidth+3", Offset{-2, 3}},
		{"imgWidth*3", Offset{3, 0}},
		{"--1", Offset{0, 1}}, // double negation folds
		{" imgWidth + 1 ", Offset{1, 1}},
	}
	for _, c := range cases {
		got, err := ParseOffset(c.in)
		if err != nil {
			t.Errorf("ParseOffset(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseOffset(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseOffsetErrors(t *testing.T) {
	for _, in := range []string{"", "width", "1+", "*3", "imgWidth*x", "2**3", "1 2", "imgWidth imgWidth", "3*4"} {
		if _, err := ParseOffset(in); err == nil {
			t.Errorf("ParseOffset(%q) succeeded, want error", in)
		}
	}
}

func TestParsePaperRecord(t *testing.T) {
	// Verbatim from §III-B, with the wrapped Dependence list.
	src := `Name:flow-routing
Dependence: -imgWidth + 1, -imgWidth, -imgWidth - 1, -1, 1,
imgWidth - 1, imgWidth, imgWidth + 1
`
	pats, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) != 1 || pats[0].Name != "flow-routing" {
		t.Fatalf("pats = %+v", pats)
	}
	got := pats[0].Resolve(100)
	want := []int64{-99, -100, -101, -1, 1, 99, 100, 101}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Resolve = %v, want %v", got, want)
		}
	}
}

func TestParseMultipleRecordsWithCommentsAndBlanks(t *testing.T) {
	src := `# kernel features database
Name:median-filter
Dependence: -imgWidth+1, -imgWidth, -imgWidth-1, -1, 1, imgWidth-1, imgWidth, imgWidth+1

# stride example from Fig. 6
Name:stride-op
Dependence: -64, 64
`
	pats, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) != 2 {
		t.Fatalf("got %d records", len(pats))
	}
	if pats[1].Name != "stride-op" || len(pats[1].Offsets) != 2 {
		t.Errorf("second record %+v", pats[1])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"dependence before name", "Dependence: 1\n"},
		{"missing dependence", "Name:a\nName:b\nDependence: 1\n"},
		{"trailing record missing dependence", "Name:a\n"},
		{"empty name", "Name:\nDependence: 1\n"},
		{"stray content", "x y z\n"},
		{"bad offset", "Name:a\nDependence: 1, bogus\n"},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: Parse succeeded, want error", c.name)
		}
	}
}

func TestParseEmptyInput(t *testing.T) {
	pats, err := Parse(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) != 0 {
		t.Errorf("got %d records from empty input", len(pats))
	}
}

func TestParseSkipsEmptyListEntries(t *testing.T) {
	pats, err := Parse(strings.NewReader("Name:a\nDependence: 1,, 2,\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pats[0].Offsets) != 2 {
		t.Errorf("offsets = %v", pats[0].Offsets)
	}
}
