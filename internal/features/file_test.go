package features

import (
	"os"
	"testing"
)

// The testdata files are the shipping examples of both database formats;
// they must stay parseable and semantically identical for the operators
// they share.
func TestTestdataFilesParse(t *testing.T) {
	txtF, err := os.Open("testdata/kernels.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer txtF.Close()
	txt, err := Parse(txtF)
	if err != nil {
		t.Fatalf("text db: %v", err)
	}
	if len(txt) != 3 {
		t.Fatalf("text db has %d records", len(txt))
	}

	xmlF, err := os.Open("testdata/kernels.xml")
	if err != nil {
		t.Fatal(err)
	}
	defer xmlF.Close()
	xmlPats, err := ParseXML(xmlF)
	if err != nil {
		t.Fatalf("xml db: %v", err)
	}
	if len(xmlPats) != 2 {
		t.Fatalf("xml db has %d records", len(xmlPats))
	}

	// flow-routing appears in both; the records must agree.
	var fromTxt, fromXML *Pattern
	for i := range txt {
		if txt[i].Name == "flow-routing" {
			fromTxt = &txt[i]
		}
	}
	for i := range xmlPats {
		if xmlPats[i].Name == "flow-routing" {
			fromXML = &xmlPats[i]
		}
	}
	if fromTxt == nil || fromXML == nil {
		t.Fatal("flow-routing missing from a database")
	}
	if len(fromTxt.Offsets) != len(fromXML.Offsets) {
		t.Fatalf("offset counts differ: %d vs %d", len(fromTxt.Offsets), len(fromXML.Offsets))
	}
	for i := range fromTxt.Offsets {
		if fromTxt.Offsets[i] != fromXML.Offsets[i] {
			t.Errorf("offset %d differs: %v vs %v", i, fromTxt.Offsets[i], fromXML.Offsets[i])
		}
	}
}
