package features

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parse reads a kernel-features description file: a sequence of records
//
//	Name:<operator>
//	Dependence: <offset>, <offset>, ...
//
// Offsets are integer linear expressions in imgWidth (e.g. "-imgWidth+1",
// "2*imgWidth", "-1"). The Dependence list may wrap onto following lines,
// as in the paper's flow-routing example. Blank lines and lines starting
// with '#' are ignored.
func Parse(r io.Reader) ([]Pattern, error) {
	sc := bufio.NewScanner(r)
	var (
		pats    []Pattern
		cur     *Pattern
		inDeps  bool
		lineNum int
	)
	flush := func() error {
		if cur == nil {
			return nil
		}
		if !inDeps {
			return fmt.Errorf("features: record %q has no Dependence line", cur.Name)
		}
		if err := cur.Validate(); err != nil {
			return err
		}
		pats = append(pats, *cur)
		cur, inDeps = nil, false
		return nil
	}
	for sc.Scan() {
		lineNum++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "Name:"):
			if err := flush(); err != nil {
				return nil, err
			}
			name := strings.TrimSpace(strings.TrimPrefix(line, "Name:"))
			if name == "" {
				return nil, fmt.Errorf("features: line %d: empty operator name", lineNum)
			}
			cur = &Pattern{Name: name}
		case strings.HasPrefix(line, "Dependence:"):
			if cur == nil {
				return nil, fmt.Errorf("features: line %d: Dependence before Name", lineNum)
			}
			inDeps = true
			if err := appendOffsets(cur, strings.TrimPrefix(line, "Dependence:"), lineNum); err != nil {
				return nil, err
			}
		default:
			// Continuation of a wrapped Dependence list.
			if cur == nil || !inDeps {
				return nil, fmt.Errorf("features: line %d: unexpected content %q", lineNum, line)
			}
			if err := appendOffsets(cur, line, lineNum); err != nil {
				return nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return pats, nil
}

func appendOffsets(p *Pattern, list string, lineNum int) error {
	for _, field := range strings.Split(list, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		off, err := ParseOffset(field)
		if err != nil {
			return fmt.Errorf("features: line %d: %w", lineNum, err)
		}
		p.Offsets = append(p.Offsets, off)
	}
	return nil
}

// ParseOffset parses one linear expression in imgWidth, e.g. "-imgWidth+1",
// "imgWidth - 1", "3", "2*imgWidth-5". Whitespace around operators is
// allowed.
func ParseOffset(s string) (Offset, error) {
	toks, err := tokenize(s)
	if err != nil {
		return Offset{}, err
	}
	if len(toks) == 0 {
		return Offset{}, fmt.Errorf("empty offset expression")
	}
	var out Offset
	sign := int64(1)
	expectTerm := true
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		switch {
		case t == "+" || t == "-":
			if expectTerm && t == "-" {
				sign = -sign
				continue
			}
			if expectTerm {
				continue // unary plus
			}
			sign = 1
			if t == "-" {
				sign = -1
			}
			expectTerm = true
		case expectTerm:
			coef, cons, consumed, err := parseTerm(toks[i:])
			if err != nil {
				return Offset{}, fmt.Errorf("offset %q: %w", s, err)
			}
			out.Coef += sign * coef
			out.Const += sign * cons
			// Bound the running totals, not just the result: each term can
			// be any int64, so an unchecked sum could wrap around and land
			// back in range.
			if err := checkBounds(out); err != nil {
				return Offset{}, fmt.Errorf("offset %q: %w", s, err)
			}
			sign = 1
			expectTerm = false
			i += consumed - 1
		default:
			return Offset{}, fmt.Errorf("offset %q: unexpected token %q", s, t)
		}
	}
	if expectTerm {
		return Offset{}, fmt.Errorf("offset %q: dangling operator", s)
	}
	return out, nil
}

// parseTerm parses INT, imgWidth, INT*imgWidth, or imgWidth*INT from the
// head of toks, returning the (coef, const) contribution and tokens used.
func parseTerm(toks []string) (coef, cons int64, consumed int, err error) {
	head := toks[0]
	if head == "imgWidth" {
		if len(toks) >= 3 && toks[1] == "*" {
			n, err := strconv.ParseInt(toks[2], 10, 64)
			if err != nil {
				return 0, 0, 0, fmt.Errorf("bad multiplier %q", toks[2])
			}
			return n, 0, 3, nil
		}
		return 1, 0, 1, nil
	}
	n, err := strconv.ParseInt(head, 10, 64)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("bad term %q", head)
	}
	if len(toks) >= 3 && toks[1] == "*" {
		if toks[2] != "imgWidth" {
			return 0, 0, 0, fmt.Errorf("bad multiplicand %q", toks[2])
		}
		return n, 0, 3, nil
	}
	return 0, n, 1, nil
}

func tokenize(s string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '+' || c == '-' || c == '*':
			toks = append(toks, string(c))
			i++
		case c >= '0' && c <= '9':
			j := i
			for j < len(s) && s[j] >= '0' && s[j] <= '9' {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		case isIdentStart(c):
			j := i
			for j < len(s) && isIdent(s[j]) {
				j++
			}
			word := s[i:j]
			if word != "imgWidth" {
				return nil, fmt.Errorf("unknown identifier %q (only imgWidth is defined)", word)
			}
			toks = append(toks, word)
			i = j
		default:
			return nil, fmt.Errorf("unexpected character %q", c)
		}
	}
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdent(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }
