package features

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOffsetResolve(t *testing.T) {
	cases := []struct {
		o     Offset
		width int64
		want  int64
	}{
		{Offset{0, 5}, 100, 5},
		{Offset{1, 0}, 100, 100},
		{Offset{-1, 1}, 100, -99},
		{Offset{-1, -1}, 100, -101},
		{Offset{2, -5}, 100, 195},
	}
	for _, c := range cases {
		if got := c.o.Resolve(c.width); got != c.want {
			t.Errorf("%v.Resolve(%d) = %d, want %d", c.o, c.width, got, c.want)
		}
	}
}

func TestOffsetString(t *testing.T) {
	cases := []struct {
		o    Offset
		want string
	}{
		{Offset{0, 5}, "5"},
		{Offset{0, -5}, "-5"},
		{Offset{1, 0}, "imgWidth"},
		{Offset{-1, 0}, "-imgWidth"},
		{Offset{1, 1}, "imgWidth+1"},
		{Offset{-1, -1}, "-imgWidth-1"},
		{Offset{2, -3}, "2*imgWidth-3"},
		{Offset{0, 0}, "0"},
	}
	for _, c := range cases {
		if got := c.o.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.o, got, c.want)
		}
	}
}

func TestEightNeighborResolvesToPaperOffsets(t *testing.T) {
	// The paper's flow-routing record for width W:
	// -W+1, -W, -W-1, -1, 1, W-1, W, W+1
	p := Pattern{Name: "flow-routing", Offsets: EightNeighbor()}
	got := p.Resolve(1024)
	want := []int64{-1023, -1024, -1025, -1, 1, 1023, 1024, 1025}
	if len(got) != len(want) {
		t.Fatalf("Resolve = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Resolve = %v, want %v", got, want)
		}
	}
	if p.MaxAbsOffset(1024) != 1025 {
		t.Errorf("MaxAbsOffset = %d, want 1025", p.MaxAbsOffset(1024))
	}
}

func TestFourNeighborAndStride(t *testing.T) {
	if got := (Pattern{Offsets: FourNeighbor()}).MaxAbsOffset(50); got != 50 {
		t.Errorf("four-neighbor MaxAbsOffset = %d", got)
	}
	p := Pattern{Offsets: Stride(7)}
	offs := p.Resolve(1000)
	if len(offs) != 2 || offs[0] != -7 || offs[1] != 7 {
		t.Errorf("Stride(7) = %v", offs)
	}
}

func TestIndependentPattern(t *testing.T) {
	if !(Pattern{Name: "scan"}).Independent() {
		t.Error("empty pattern should be independent")
	}
	if !(Pattern{Offsets: []Offset{{0, 0}}}).Independent() {
		t.Error("zero offsets should be independent")
	}
	if (Pattern{Offsets: []Offset{{0, 1}}}).Independent() {
		t.Error("non-zero offset reported independent")
	}
}

func TestUnionMergesAndDeduplicates(t *testing.T) {
	a := Pattern{Name: "a", Offsets: EightNeighbor()}
	b := Pattern{Name: "b", Offsets: Stride(1)} // ±1 already in the 8-neighborhood
	c := Pattern{Name: "c", Offsets: Stride(500)}
	u := Union("workflow", a, b, c)
	if u.Name != "workflow" {
		t.Errorf("name %q", u.Name)
	}
	// 8 from a, 0 new from b, 2 new from c.
	if len(u.Offsets) != 10 {
		t.Errorf("union has %d offsets, want 10: %v", len(u.Offsets), u.Offsets)
	}
	// The union's reach covers the widest member at any width.
	for _, w := range []int{10, 100, 1000} {
		want := a.MaxAbsOffset(w)
		if cw := c.MaxAbsOffset(w); cw > want {
			want = cw
		}
		if got := u.MaxAbsOffset(w); got != want {
			t.Errorf("width %d: union reach %d, want %d", w, got, want)
		}
	}
	if got := Union("empty"); len(got.Offsets) != 0 {
		t.Errorf("empty union has offsets: %v", got.Offsets)
	}
}

func TestRegistryRegisterLookup(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(Pattern{Name: "a", Offsets: Stride(1)}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(Pattern{Name: "b", Offsets: EightNeighbor()}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(Pattern{Name: ""}); err == nil {
		t.Error("empty name accepted")
	}
	if _, ok := r.Lookup("a"); !ok {
		t.Error("Lookup(a) failed")
	}
	if _, ok := r.Lookup("zzz"); ok {
		t.Error("Lookup(zzz) succeeded")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	// Re-register replaces without duplicating.
	if err := r.Register(Pattern{Name: "a", Offsets: Stride(2)}); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d after re-register", r.Len())
	}
	p, _ := r.Lookup("a")
	if p.Offsets[1].Const != 2 {
		t.Error("re-register did not replace pattern")
	}
}

func TestSortedResolve(t *testing.T) {
	r := NewRegistry()
	_ = r.Register(Pattern{Name: "f", Offsets: EightNeighbor()})
	offs, err := r.SortedResolve("f", 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(offs); i++ {
		if offs[i-1] > offs[i] {
			t.Fatalf("not sorted: %v", offs)
		}
	}
	if _, err := r.SortedResolve("nope", 10); err == nil {
		t.Error("unknown operator accepted")
	}
}

func TestPatternStringRoundTrip(t *testing.T) {
	p := Pattern{Name: "flow-routing", Offsets: EightNeighbor()}
	parsed, err := Parse(strings.NewReader(p.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 1 || parsed[0].Name != p.Name {
		t.Fatalf("parsed %v", parsed)
	}
	if len(parsed[0].Offsets) != len(p.Offsets) {
		t.Fatalf("offsets %v", parsed[0].Offsets)
	}
	for i := range p.Offsets {
		if parsed[0].Offsets[i] != p.Offsets[i] {
			t.Errorf("offset %d: %v != %v", i, parsed[0].Offsets[i], p.Offsets[i])
		}
	}
}

// Property: formatting then parsing any registry reproduces it exactly.
func TestRegistryRoundTripProperty(t *testing.T) {
	prop := func(coefs []int8, consts []int8) bool {
		n := len(coefs)
		if len(consts) < n {
			n = len(consts)
		}
		if n == 0 {
			return true
		}
		r := NewRegistry()
		var offs []Offset
		seen := map[Offset]bool{}
		for i := 0; i < n; i++ {
			o := Offset{Coef: int64(coefs[i]), Const: int64(consts[i])}
			if seen[o] {
				// Validate rejects duplicate offsets, so a draw that
				// repeats one is outside the round-trip property's domain.
				return true
			}
			seen[o] = true
			offs = append(offs, o)
		}
		_ = r.Register(Pattern{Name: "op", Offsets: offs})
		parsed, err := Parse(strings.NewReader(r.Format()))
		if err != nil || len(parsed) != 1 || len(parsed[0].Offsets) != n {
			return false
		}
		for i, o := range parsed[0].Offsets {
			if o != offs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
