package features

import (
	"math/rand"
	"testing"
)

// randPattern draws a small dependence pattern with offsets in
// [-rows..rows]·imgWidth + [-cols..cols], zero included implicitly by
// composition. Drawing from a seeded source keeps the property runs
// replayable.
func randPattern(rng *rand.Rand, name string) Pattern {
	n := 1 + rng.Intn(6)
	seen := map[Offset]bool{}
	var offs []Offset
	for len(offs) < n {
		o := Offset{
			Coef:  int64(rng.Intn(5) - 2),
			Const: int64(rng.Intn(9) - 4),
		}
		if o.IsZero() || seen[o] {
			continue
		}
		seen[o] = true
		offs = append(offs, o)
	}
	return Pattern{Name: name, Offsets: offs}
}

// Property: along a chain, the composed backward and forward reaches are
// the per-stage sums.
func TestComposeChainReachSums(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const width = 64
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(4)
		var stages []Pattern
		var wantBack, wantFwd int64
		for i := 0; i < k; i++ {
			p := randPattern(rng, "stage")
			b, f := p.Reach(width)
			wantBack += b
			wantFwd += f
			stages = append(stages, p)
		}
		comp := Compose("chain", stages...)
		if err := comp.Validate(); err != nil {
			t.Fatalf("trial %d: composed pattern invalid: %v", trial, err)
		}
		back, fwd := comp.Reach(width)
		if back != wantBack || fwd != wantFwd {
			t.Fatalf("trial %d: chain reach = (%d, %d), want per-stage sums (%d, %d)",
				trial, back, fwd, wantBack, wantFwd)
		}
	}
}

// Property: a diamond (input → A, input → B, join consumes both through
// stage C) has per-direction reach max(reach A, reach B) + reach C — the
// maximum over root-to-sink paths, not the sum over branches.
func TestComposeDiamondReachPerDirectionMax(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const width = 64
	for trial := 0; trial < 200; trial++ {
		a := randPattern(rng, "a")
		b := randPattern(rng, "b")
		c := randPattern(rng, "c")
		// Each branch composes with the tail independently; the join
		// unions the two branch compositions.
		left := Compose("left", a, c)
		right := Compose("right", b, c)
		diamond := UnionOffsets("diamond", left, right)

		ab, af := a.Reach(width)
		bb, bf := b.Reach(width)
		cb, cf := c.Reach(width)
		wantBack := max64(ab, bb) + cb
		wantFwd := max64(af, bf) + cf
		back, fwd := diamond.Reach(width)
		if back != wantBack || fwd != wantFwd {
			t.Fatalf("trial %d: diamond reach = (%d, %d), want per-direction maxima (%d, %d)",
				trial, back, fwd, wantBack, wantFwd)
		}
	}
}

// Property: a zero-offset stage (a reduce, or an element-wise combine)
// composes as the identity anywhere in the chain.
func TestComposeZeroOffsetStageIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const width = 64
	reduce := Pattern{Name: "stats", Offsets: []Offset{{}}}
	for trial := 0; trial < 100; trial++ {
		p := randPattern(rng, "p")
		q := randPattern(rng, "q")
		plain := Compose("plain", p, q)
		withReduce := Compose("with-reduce", p, reduce, q)
		tailReduce := Compose("tail-reduce", p, q, reduce)
		pb, pf := plain.Reach(width)
		for _, c := range []Pattern{withReduce, tailReduce} {
			b, f := c.Reach(width)
			if b != pb || f != pf {
				t.Fatalf("trial %d: %s reach = (%d, %d), want unchanged (%d, %d)",
					trial, c.Name, b, f, pb, pf)
			}
			if len(c.Offsets) != len(plain.Offsets) {
				t.Fatalf("trial %d: %s has %d offsets, want %d (zero stage must not add any)",
					trial, c.Name, len(c.Offsets), len(plain.Offsets))
			}
		}
	}
}

// Composition must keep the invariants Validate enforces: no duplicate
// offsets, and always at least the zero offset.
func TestComposeDeduplicatesAndValidates(t *testing.T) {
	up := Pattern{Name: "up", Offsets: []Offset{{Coef: -1}, {Const: -1}}}
	down := Pattern{Name: "down", Offsets: []Offset{{Coef: 1}, {Const: 1}}}
	comp := Compose("both", up, down)
	if err := comp.Validate(); err != nil {
		t.Fatalf("composed pattern invalid: %v", err)
	}
	// {0,-W,-1} ⊕ {0,+W,+1} = {0,W,1,-W,-W+W=0 dup,-W+1,-1,W-1,0 dup} → 7.
	if len(comp.Offsets) != 7 {
		t.Fatalf("composed offsets = %v (len %d), want 7 distinct", comp.Offsets, len(comp.Offsets))
	}
	seen := map[Offset]bool{}
	for _, o := range comp.Offsets {
		if seen[o] {
			t.Fatalf("duplicate offset %s in composition", o)
		}
		seen[o] = true
	}
	if !seen[(Offset{})] {
		t.Fatal("composition lost the zero offset")
	}
}

// Compose with no stages is the pure self-reference pattern.
func TestComposeEmptyIsSelfReference(t *testing.T) {
	p := Compose("empty")
	if len(p.Offsets) != 1 || !p.Offsets[0].IsZero() {
		t.Fatalf("empty composition = %v, want [0]", p.Offsets)
	}
	b, f := p.Reach(8192)
	if b != 0 || f != 0 {
		t.Fatalf("empty composition reach = (%d, %d), want (0, 0)", b, f)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
