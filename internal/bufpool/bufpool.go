// Package bufpool provides a size-classed free list for slices, shared by
// the strip I/O hot paths (byte buffers in pfs, float buffers in grid).
//
// sync.Pool is the obvious tool but costs one allocation per Put of a
// slice (the header escapes to the heap), which is exactly the per-strip
// garbage the pools exist to remove. A mutex-guarded free list keeps
// recycling allocation-free; classes are capacity buckets by power of two,
// so a Get is served by any buffer of its class and new buffers are
// rounded up to a class boundary to stay reusable.
package bufpool

import (
	"math/bits"
	"sync"
)

// maxPerClass bounds each class's free list so the pool tracks the
// steady-state working set rather than the high-water mark.
const maxPerClass = 128

const numClasses = 48 // up to 2^47 elements: beyond any raster here

// Pool recycles slices of E. The zero value is ready to use; it is safe
// for concurrent use.
type Pool[E any] struct {
	mu      sync.Mutex
	classes [numClasses][][]E
}

// class returns the bucket index for a capacity: the smallest c with
// 2^c >= n.
func class(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Get returns a slice of length n with arbitrary contents: callers must
// overwrite (or clear) it. The slice comes from the free list when its
// class has one, else a fresh allocation rounded up to the class capacity.
func (p *Pool[E]) Get(n int) []E {
	if n == 0 {
		return nil
	}
	c := class(n)
	p.mu.Lock()
	if free := p.classes[c]; len(free) > 0 {
		s := free[len(free)-1]
		free[len(free)-1] = nil
		p.classes[c] = free[:len(free)-1]
		p.mu.Unlock()
		return s[:n]
	}
	p.mu.Unlock()
	return make([]E, n, 1<<c)
}

// Put recycles a slice. Slices allocated elsewhere are accepted (their
// class is the largest c with 2^c <= cap); the caller must not use the
// slice afterwards.
func (p *Pool[E]) Put(s []E) {
	if cap(s) == 0 {
		return
	}
	c := bits.Len(uint(cap(s))) - 1 // floor: the class s can fully serve
	p.mu.Lock()
	if len(p.classes[c]) < maxPerClass {
		p.classes[c] = append(p.classes[c], s[:cap(s)])
	}
	p.mu.Unlock()
}
