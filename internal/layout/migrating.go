package layout

import "fmt"

// MoveSet tracks which strips of a file have been migrated to a new
// layout: a bitset over the strip index space, flipped strip by strip as
// the online restriper commits moves. It is the shared state behind the
// dual-layout read rule — a Migrating layout consults it on every
// placement query, so a flip redirects readers instantly.
type MoveSet struct {
	bits  []uint64
	n     int64
	moved int64
}

// NewMoveSet returns an empty set over n strips.
func NewMoveSet(n int64) *MoveSet {
	if n < 0 {
		panic(fmt.Sprintf("layout: move set over %d strips", n))
	}
	return &MoveSet{bits: make([]uint64, (n+63)/64), n: n}
}

// Len returns the strip count the set spans.
func (ms *MoveSet) Len() int64 { return ms.n }

// Moved reports whether strip s has been migrated. Strips outside the set
// report false, so a stale index degrades to the old placement.
func (ms *MoveSet) Moved(s int64) bool {
	if s < 0 || s >= ms.n {
		return false
	}
	return ms.bits[s/64]&(1<<uint(s%64)) != 0
}

// Set marks strip s migrated. Idempotent.
func (ms *MoveSet) Set(s int64) {
	if s < 0 || s >= ms.n {
		panic(fmt.Sprintf("layout: move set strip %d out of [0,%d)", s, ms.n))
	}
	mask := uint64(1) << uint(s%64)
	if ms.bits[s/64]&mask == 0 {
		ms.bits[s/64] |= mask
		ms.moved++
	}
}

// Clear unmarks strip s (a committed move invalidated by a concurrent
// write gets re-copied under the old placement). Idempotent.
func (ms *MoveSet) Clear(s int64) {
	if s < 0 || s >= ms.n {
		return
	}
	mask := uint64(1) << uint(s%64)
	if ms.bits[s/64]&mask != 0 {
		ms.bits[s/64] &^= mask
		ms.moved--
	}
}

// Count returns how many strips are marked migrated.
func (ms *MoveSet) Count() int64 { return ms.moved }

// Migrating is the dual-layout placement a file carries while the online
// restriper moves it between layouts: strips the migration has not reached
// resolve under the old layout, migrated strips under the new one. Every
// read path that consults Layout — client reads, failover holder scans,
// active-storage owner lookups — therefore follows each strip to wherever
// its current authoritative copy lives, with no per-callsite changes.
type Migrating struct {
	old, target Layout
	moves       *MoveSet
}

// NewMigrating wraps an old and a target layout around a move set. The
// layouts must span the same server count.
func NewMigrating(old, target Layout, moves *MoveSet) *Migrating {
	if old.Servers() != target.Servers() {
		panic(fmt.Sprintf("layout: migrating between %d and %d servers", old.Servers(), target.Servers()))
	}
	if moves == nil {
		panic("layout: migrating with nil move set")
	}
	return &Migrating{old: old, target: target, moves: moves}
}

// Name identifies the transition; it stays stable across flips so layout
// comparisons made during a migration don't see a moving target.
func (m *Migrating) Name() string {
	return fmt.Sprintf("migrating(%s -> %s)", m.old.Name(), m.target.Name())
}

// Servers returns the server count both layouts span.
func (m *Migrating) Servers() int { return m.target.Servers() }

// Primary follows the move set: old placement until the strip's move
// commits, new placement after.
func (m *Migrating) Primary(s int64) int {
	if m.moves.Moved(s) {
		return m.target.Primary(s)
	}
	return m.old.Primary(s)
}

// Replicas follows the move set like Primary.
func (m *Migrating) Replicas(s int64) []int {
	if m.moves.Moved(s) {
		return m.target.Replicas(s)
	}
	return m.old.Replicas(s)
}

// Old returns the layout un-migrated strips still resolve under.
func (m *Migrating) Old() Layout { return m.old }

// Target returns the layout the migration is converging to.
func (m *Migrating) Target() Layout { return m.target }

// Moves returns the shared move set.
func (m *Migrating) Moves() *MoveSet { return m.moves }

// Progress returns how many of the file's strips have migrated.
func (m *Migrating) Progress() (moved, total int64) {
	return m.moves.Count(), m.moves.Len()
}

// Snapshot freezes the current dual placement of the first n strips into a
// concrete Table layout. Output files produced while their input migrates
// are created with such a snapshot: the executing servers and the
// readback both follow the frozen table, so a flip committing mid-run
// cannot strand an output strip where no reader will look.
func (m *Migrating) Snapshot(n int64) *Table {
	primaries := make([]int, n)
	replicas := make([][]int, n)
	for s := int64(0); s < n; s++ {
		primaries[s] = m.Primary(s)
		replicas[s] = m.Replicas(s)
	}
	return NewTable(m.Servers(), primaries, replicas)
}

// Table is an explicit per-strip placement: strip s's holders come from a
// table rather than arithmetic. Strips beyond the table fall back to
// round-robin; in practice a table always covers its file.
type Table struct {
	d         int
	primaries []int
	replicas  [][]int
}

// NewTable builds an explicit placement over d servers.
func NewTable(d int, primaries []int, replicas [][]int) *Table {
	mustServers(d)
	if len(replicas) != len(primaries) {
		panic(fmt.Sprintf("layout: table with %d primaries, %d replica sets", len(primaries), len(replicas)))
	}
	return &Table{d: d, primaries: primaries, replicas: replicas}
}

// Name identifies the frozen placement.
func (t *Table) Name() string {
	return fmt.Sprintf("table(D=%d,strips=%d)", t.d, len(t.primaries))
}

// Servers returns the server count.
func (t *Table) Servers() int { return t.d }

// Primary returns the tabled owner of strip s.
func (t *Table) Primary(s int64) int {
	if s < 0 || s >= int64(len(t.primaries)) {
		return int(mod(s, int64(t.d)))
	}
	return t.primaries[s]
}

// Replicas returns the tabled replica holders of strip s.
func (t *Table) Replicas(s int64) []int {
	if s < 0 || s >= int64(len(t.replicas)) {
		return nil
	}
	return t.replicas[s]
}

// Concrete resolves a possibly-migrating layout to a stable one for a file
// of n strips: a frozen snapshot when the layout is mid-migration, the
// layout itself otherwise.
func Concrete(l Layout, n int64) Layout {
	if m, ok := l.(*Migrating); ok {
		return m.Snapshot(n)
	}
	return l
}
