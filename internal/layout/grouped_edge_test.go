package layout

import (
	"reflect"
	"testing"
)

// TestReplicaStripsOfTruncatedLastGroup: a file whose strip count is not a
// multiple of the group size ends mid-group. The halo replicates group
// edges, not file edges, so the truncated group's existing edge strips
// still replicate to their neighbor while its missing tail contributes
// nothing.
func TestReplicaStripsOfTruncatedLastGroup(t *testing.T) {
	l := NewGroupedReplicated(2, 3, 1)
	const strips = 8 // groups: {0,1,2}→s0, {3,4,5}→s1, {6,7}→s0 (short)

	if got, want := PrimaryStripsOf(l, 0, strips), []int64{0, 1, 2, 6, 7}; !reflect.DeepEqual(got, want) {
		t.Errorf("PrimaryStripsOf(0) = %v, want %v", got, want)
	}
	if got, want := PrimaryStripsOf(l, 1, strips), []int64{3, 4, 5}; !reflect.DeepEqual(got, want) {
		t.Errorf("PrimaryStripsOf(1) = %v, want %v", got, want)
	}
	if got, want := ReplicaStripsOf(l, 0, strips), []int64{3, 5}; !reflect.DeepEqual(got, want) {
		t.Errorf("ReplicaStripsOf(0) = %v, want %v", got, want)
	}
	// Strip 6 is the short group's leading edge and still replicates back;
	// strip 7 sits mid-group (its trailing edge, strip 8, does not exist)
	// and has no copy anywhere else.
	if got, want := ReplicaStripsOf(l, 1, strips), []int64{0, 2, 6}; !reflect.DeepEqual(got, want) {
		t.Errorf("ReplicaStripsOf(1) = %v, want %v", got, want)
	}
	if reps := l.Replicas(7); len(reps) != 0 {
		t.Errorf("Replicas(7) = %v, want none: the halo guards group edges, not file edges", reps)
	}
}

// TestHaloEqualsGroupSizeMirrorsEverything: halo == r is the
// crash-survivable configuration — every strip, interior included, is
// mirrored to both neighboring servers.
func TestHaloEqualsGroupSizeMirrorsEverything(t *testing.T) {
	l := NewGroupedReplicated(4, 2, 2)
	for s := int64(0); s < 16; s++ {
		reps := l.Replicas(s)
		if len(reps) != 2 {
			t.Fatalf("strip %d: replicas %v, want both neighbors", s, reps)
		}
		p := l.Primary(s)
		for _, r := range reps {
			if r == p {
				t.Fatalf("strip %d: replica list %v contains primary %d", s, reps, p)
			}
		}
		// Any single crash must leave a live copy.
		for down := 0; down < 4; down++ {
			if _, ok := FirstLiveHolder(l, s, func(srv int) bool { return srv != down }); !ok {
				t.Fatalf("strip %d unreachable with only server %d down", s, down)
			}
		}
	}
	// With two servers the previous and next neighbor are the same node, so
	// full mirroring collapses to a single replica rather than listing it
	// twice.
	l2 := NewGroupedReplicated(2, 2, 2)
	for s := int64(0); s < 8; s++ {
		reps := l2.Replicas(s)
		if len(reps) != 1 || reps[0] == l2.Primary(s) {
			t.Fatalf("D=2 strip %d: replicas %v, want exactly the other server", s, reps)
		}
	}
	// A single server already holds everything; no replicas at all.
	if reps := NewGroupedReplicated(1, 2, 2).Replicas(3); len(reps) != 0 {
		t.Errorf("D=1 replicas = %v, want none", reps)
	}
}

// TestSingleGroupFile: a file small enough to fit inside the first group
// lives entirely on server 0. Only its leading halo reaches another server
// (the wrap-around predecessor); nothing maps to the middle servers, and
// interior strips vanish with server 0.
func TestSingleGroupFile(t *testing.T) {
	l := NewGroupedReplicated(4, 8, 2)
	const strips = 5 // group 0 only, and even that is short

	if got, want := PrimaryStripsOf(l, 0, strips), []int64{0, 1, 2, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("PrimaryStripsOf(0) = %v, want %v", got, want)
	}
	for srv := 1; srv <= 2; srv++ {
		if got := PrimaryStripsOf(l, srv, strips); len(got) != 0 {
			t.Errorf("PrimaryStripsOf(%d) = %v, want none", srv, got)
		}
		if got := ReplicaStripsOf(l, srv, strips); len(got) != 0 {
			t.Errorf("ReplicaStripsOf(%d) = %v, want none", srv, got)
		}
	}
	// The leading halo (strips 0,1) wraps to the predecessor server 3.
	if got, want := ReplicaStripsOf(l, 3, strips), []int64{0, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("ReplicaStripsOf(3) = %v, want %v", got, want)
	}
	// Interior strip 4 has no second copy: with server 0 down it is gone.
	if _, ok := FirstLiveHolder(l, 4, func(srv int) bool { return srv != 0 }); ok {
		t.Error("interior strip of a single-group file survived its only holder")
	}
}

// TestFirstLiveHolderOrder pins the failover preference: the primary when
// it is live, otherwise replicas in Holders order, otherwise nothing.
func TestFirstLiveHolderOrder(t *testing.T) {
	l := NewReplicatedRoundRobin(4, 3) // strip 1: primary 1, replicas 2,3
	allUp := func(int) bool { return true }
	if srv, ok := FirstLiveHolder(l, 1, allUp); !ok || srv != 1 {
		t.Errorf("healthy FirstLiveHolder = %d,%v, want primary 1", srv, ok)
	}
	if srv, ok := FirstLiveHolder(l, 1, func(s int) bool { return s != 1 }); !ok || srv != 2 {
		t.Errorf("primary-down FirstLiveHolder = %d,%v, want first replica 2", srv, ok)
	}
	if srv, ok := FirstLiveHolder(l, 1, func(s int) bool { return s == 3 }); !ok || srv != 3 {
		t.Errorf("two-down FirstLiveHolder = %d,%v, want last replica 3", srv, ok)
	}
	if _, ok := FirstLiveHolder(l, 1, func(int) bool { return false }); ok {
		t.Error("FirstLiveHolder found a holder with every server down")
	}
}

// TestRequiredHaloBoundaries: exact strip multiples must not round up, and
// sub-element reaches still demand a full halo strip.
func TestRequiredHaloBoundaries(t *testing.T) {
	lc := NewLocator(8, 64, NewRoundRobin(4)) // 8 elements per strip
	cases := []struct {
		off  int64
		want int
	}{
		{-3, 0}, // negative reach means no dependence
		{0, 0},  // independence
		{7, 1},  // strictly inside one strip width
		{8, 1},  // exactly one strip: 64 bytes, no round-up
		{24, 3}, // exactly three strips
		{25, 4}, // one element past three strips rounds up
		{800, 100},
	}
	for _, c := range cases {
		if got := lc.RequiredHalo(c.off); got != c.want {
			t.Errorf("RequiredHalo(%d) = %d, want %d", c.off, got, c.want)
		}
	}
}
