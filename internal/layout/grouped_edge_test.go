package layout

import (
	"reflect"
	"testing"
)

// TestReplicaStripsOfTruncatedLastGroup: a file whose strip count is not a
// multiple of the group size ends mid-group. The halo replicates group
// edges, not file edges, so the truncated group's existing edge strips
// still replicate to their neighbor while its missing tail contributes
// nothing.
func TestReplicaStripsOfTruncatedLastGroup(t *testing.T) {
	l := NewGroupedReplicated(2, 3, 1)
	const strips = 8 // groups: {0,1,2}→s0, {3,4,5}→s1, {6,7}→s0 (short)

	if got, want := PrimaryStripsOf(l, 0, strips), []int64{0, 1, 2, 6, 7}; !reflect.DeepEqual(got, want) {
		t.Errorf("PrimaryStripsOf(0) = %v, want %v", got, want)
	}
	if got, want := PrimaryStripsOf(l, 1, strips), []int64{3, 4, 5}; !reflect.DeepEqual(got, want) {
		t.Errorf("PrimaryStripsOf(1) = %v, want %v", got, want)
	}
	if got, want := ReplicaStripsOf(l, 0, strips), []int64{3, 5}; !reflect.DeepEqual(got, want) {
		t.Errorf("ReplicaStripsOf(0) = %v, want %v", got, want)
	}
	// Strip 6 is the short group's leading edge and still replicates back;
	// strip 7 sits mid-group (its trailing edge, strip 8, does not exist)
	// and has no copy anywhere else.
	if got, want := ReplicaStripsOf(l, 1, strips), []int64{0, 2, 6}; !reflect.DeepEqual(got, want) {
		t.Errorf("ReplicaStripsOf(1) = %v, want %v", got, want)
	}
	if reps := l.Replicas(7); len(reps) != 0 {
		t.Errorf("Replicas(7) = %v, want none: the halo guards group edges, not file edges", reps)
	}
}

// TestHaloEqualsGroupSizeMirrorsEverything: halo == r is the
// crash-survivable configuration — every strip, interior included, is
// mirrored to both neighboring servers.
func TestHaloEqualsGroupSizeMirrorsEverything(t *testing.T) {
	l := NewGroupedReplicated(4, 2, 2)
	for s := int64(0); s < 16; s++ {
		reps := l.Replicas(s)
		if len(reps) != 2 {
			t.Fatalf("strip %d: replicas %v, want both neighbors", s, reps)
		}
		p := l.Primary(s)
		for _, r := range reps {
			if r == p {
				t.Fatalf("strip %d: replica list %v contains primary %d", s, reps, p)
			}
		}
		// Any single crash must leave a live copy.
		for down := 0; down < 4; down++ {
			if _, ok := FirstLiveHolder(l, s, func(srv int) bool { return srv != down }); !ok {
				t.Fatalf("strip %d unreachable with only server %d down", s, down)
			}
		}
	}
	// With two servers the previous and next neighbor are the same node, so
	// full mirroring collapses to a single replica rather than listing it
	// twice.
	l2 := NewGroupedReplicated(2, 2, 2)
	for s := int64(0); s < 8; s++ {
		reps := l2.Replicas(s)
		if len(reps) != 1 || reps[0] == l2.Primary(s) {
			t.Fatalf("D=2 strip %d: replicas %v, want exactly the other server", s, reps)
		}
	}
	// A single server already holds everything; no replicas at all.
	if reps := NewGroupedReplicated(1, 2, 2).Replicas(3); len(reps) != 0 {
		t.Errorf("D=1 replicas = %v, want none", reps)
	}
}

// TestSingleGroupFile: a file small enough to fit inside the first group
// lives entirely on server 0. Only its leading halo reaches another server
// (the wrap-around predecessor); nothing maps to the middle servers, and
// interior strips vanish with server 0.
func TestSingleGroupFile(t *testing.T) {
	l := NewGroupedReplicated(4, 8, 2)
	const strips = 5 // group 0 only, and even that is short

	if got, want := PrimaryStripsOf(l, 0, strips), []int64{0, 1, 2, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("PrimaryStripsOf(0) = %v, want %v", got, want)
	}
	for srv := 1; srv <= 2; srv++ {
		if got := PrimaryStripsOf(l, srv, strips); len(got) != 0 {
			t.Errorf("PrimaryStripsOf(%d) = %v, want none", srv, got)
		}
		if got := ReplicaStripsOf(l, srv, strips); len(got) != 0 {
			t.Errorf("ReplicaStripsOf(%d) = %v, want none", srv, got)
		}
	}
	// The leading halo (strips 0,1) wraps to the predecessor server 3.
	if got, want := ReplicaStripsOf(l, 3, strips), []int64{0, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("ReplicaStripsOf(3) = %v, want %v", got, want)
	}
	// Interior strip 4 has no second copy: with server 0 down it is gone.
	if _, ok := FirstLiveHolder(l, 4, func(srv int) bool { return srv != 0 }); ok {
		t.Error("interior strip of a single-group file survived its only holder")
	}
}

// TestFirstLiveHolderOrder pins the failover preference: the primary when
// it is live, otherwise replicas in Holders order, otherwise nothing.
func TestFirstLiveHolderOrder(t *testing.T) {
	l := NewReplicatedRoundRobin(4, 3) // strip 1: primary 1, replicas 2,3
	allUp := func(int) bool { return true }
	if srv, ok := FirstLiveHolder(l, 1, allUp); !ok || srv != 1 {
		t.Errorf("healthy FirstLiveHolder = %d,%v, want primary 1", srv, ok)
	}
	if srv, ok := FirstLiveHolder(l, 1, func(s int) bool { return s != 1 }); !ok || srv != 2 {
		t.Errorf("primary-down FirstLiveHolder = %d,%v, want first replica 2", srv, ok)
	}
	if srv, ok := FirstLiveHolder(l, 1, func(s int) bool { return s == 3 }); !ok || srv != 3 {
		t.Errorf("two-down FirstLiveHolder = %d,%v, want last replica 3", srv, ok)
	}
	if _, ok := FirstLiveHolder(l, 1, func(int) bool { return false }); ok {
		t.Error("FirstLiveHolder found a holder with every server down")
	}
}

// TestSingleStripGroups: r=1 is the degenerate grouping where grouped
// placement collapses back to round-robin and every strip is a group edge,
// so with halo=1 every strip replicates to both neighbors (one neighbor
// when D=2 folds them together).
func TestSingleStripGroups(t *testing.T) {
	l := NewGroupedReplicated(4, 1, 1)
	for s := int64(0); s < 12; s++ {
		if got, want := l.Primary(s), int(s%4); got != want {
			t.Errorf("r=1 Primary(%d) = %d, want round-robin %d", s, got, want)
		}
		if got, want := Holders(l, s), []int{int(s % 4), int(mod(s-1, 4)), int(mod(s+1, 4))}; len(got) != 3 {
			t.Errorf("r=1 Holders(%d) = %v, want primary + both neighbors %v", s, got, want)
		}
		for srv := 0; srv < 4; srv++ {
			wantHolds := srv == int(s%4) || srv == int(mod(s-1, 4)) || srv == int(mod(s+1, 4))
			if got := Holds(l, s, srv); got != wantHolds {
				t.Errorf("r=1 Holds(%d, %d) = %v, want %v", s, srv, got, wantHolds)
			}
		}
	}
	if got := OverheadRatio(l); got != 2 {
		t.Errorf("r=1 halo=1 D=4 overhead = %v, want 2 (full double mirroring)", got)
	}
	// D=2 folds prev and next into one server: one replica per strip, so
	// the overhead is 1.0 — min(2·Halo, r)/r — not the naive 2·Halo/r.
	l2 := NewGroupedReplicated(2, 1, 1)
	for s := int64(0); s < 6; s++ {
		if reps := l2.Replicas(s); len(reps) != 1 || reps[0] == l2.Primary(s) {
			t.Fatalf("D=2 r=1 strip %d: replicas %v, want exactly the other server", s, reps)
		}
	}
	if got := OverheadRatio(l2); got != 1 {
		t.Errorf("r=1 halo=1 D=2 overhead = %v, want 1 (neighbors coincide)", got)
	}
	if got := OverheadRatio(NewGroupedReplicated(1, 1, 1)); got != 0 {
		t.Errorf("D=1 overhead = %v, want 0", got)
	}
}

// TestHaloEqualsGroupOverhead: halo == r (the constructor's cap, full
// mirroring to both neighbors) and partial halos must report the storage
// they actually consume.
func TestHaloEqualsGroupOverhead(t *testing.T) {
	cases := []struct {
		d, r, halo int
		want       float64
	}{
		{4, 2, 2, 2.0}, // every strip on both neighbors
		{4, 4, 1, 0.5}, // the paper's 2/r with r=4
		{4, 3, 2, 4.0 / 3},
		{2, 2, 2, 1.0}, // D=2: both-neighbor copies fold to one
		{2, 3, 2, 1.0}, // D=2: strip 1 of each group sits in both halos
		{2, 4, 1, 0.5}, // D=2 but halos don't overlap: unaffected
		{1, 2, 2, 0},   // single server, no replicas at all
	}
	for _, c := range cases {
		l := NewGroupedReplicated(c.d, c.r, c.halo)
		if got := OverheadRatio(l); got != c.want {
			t.Errorf("OverheadRatio(D=%d,r=%d,halo=%d) = %v, want %v", c.d, c.r, c.halo, got, c.want)
		}
		// The formula must agree with the placement it summarizes: count
		// actual replica copies over one full rotation of groups.
		strips := int64(c.r * c.d * 2)
		var copies int64
		for s := int64(0); s < strips; s++ {
			copies += int64(len(l.Replicas(s)))
		}
		if got := float64(copies) / float64(strips); got != c.want {
			t.Errorf("counted overhead (D=%d,r=%d,halo=%d) = %v, want %v", c.d, c.r, c.halo, got, c.want)
		}
	}
}

// TestHoldersTruncatedGroup: strips % r != 0 leaves the last group short;
// Holders/Holds must stay consistent with Replicas there, and the short
// group's trailing edge (which exists) still mirrors forward.
func TestHoldersTruncatedGroup(t *testing.T) {
	l := NewGroupedReplicated(3, 3, 1)
	// 7 strips: groups {0,1,2}→s0, {3,4,5}→s1, {6}→s2 (short)

	// Strip 6 sits at position 0 of its nominal group: its leading halo
	// replicates back to the previous server (1), but the trailing edge of
	// the group (strip 8) does not exist — the halo guards group positions,
	// not file ends, so no copy goes forward to server 0.
	if got, want := Holders(l, 6), []int{2, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("Holders(6) = %v, want %v", got, want)
	}
	if !Holds(l, 6, 2) || !Holds(l, 6, 1) || Holds(l, 6, 0) {
		t.Errorf("Holds(6, ·) = %v,%v,%v over servers 2,1,0; want true,true,false",
			Holds(l, 6, 2), Holds(l, 6, 1), Holds(l, 6, 0))
	}
	// Mid-group strip 4 has no replicas; only its primary holds it.
	if got, want := Holders(l, 4), []int{1}; !reflect.DeepEqual(got, want) {
		t.Errorf("Holders(4) = %v, want %v", got, want)
	}
	if Holds(l, 4, 0) || Holds(l, 4, 2) {
		t.Error("mid-group strip 4 held by a non-primary server")
	}
	// Holders order is primary first, then replicas ascending.
	if got, want := Holders(l, 3), []int{1, 0}; !reflect.DeepEqual(got, want) {
		t.Errorf("Holders(3) = %v, want %v", got, want)
	}
	if got, want := Holders(l, 5), []int{1, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("Holders(5) = %v, want %v", got, want)
	}
}

// TestRequiredHaloBoundaries: exact strip multiples must not round up, and
// sub-element reaches still demand a full halo strip.
func TestRequiredHaloBoundaries(t *testing.T) {
	lc := NewLocator(8, 64, NewRoundRobin(4)) // 8 elements per strip
	cases := []struct {
		off  int64
		want int
	}{
		{-3, 0}, // negative reach means no dependence
		{0, 0},  // independence
		{7, 1},  // strictly inside one strip width
		{8, 1},  // exactly one strip: 64 bytes, no round-up
		{24, 3}, // exactly three strips
		{25, 4}, // one element past three strips rounds up
		{800, 100},
	}
	for _, c := range cases {
		if got := lc.RequiredHalo(c.off); got != c.want {
			t.Errorf("RequiredHalo(%d) = %d, want %d", c.off, got, c.want)
		}
	}
}
