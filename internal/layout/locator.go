package layout

import "fmt"

// Locator resolves element indices of a striped file to strips and
// servers, implementing the paper's Eqs. (1)–(4): for the i-th element of
// size E,
//
//	strip(i)    = i·E / strip_size
//	location(i) = Primary(strip(i))
//
// and for a dependent element at signed offset off,
//
//	strip(i+off)    = (i+off)·E / strip_size
//	location(i+off) = Primary(strip(i+off)).
type Locator struct {
	ElemSize  int64 // E, bytes per data element
	StripSize int64 // bytes per strip (64 KiB default in PVFS2)
	Layout    Layout
}

// NewLocator validates and builds a locator.
func NewLocator(elemSize, stripSize int64, l Layout) Locator {
	if elemSize <= 0 {
		panic(fmt.Sprintf("layout: element size must be positive, got %d", elemSize))
	}
	if stripSize <= 0 {
		panic(fmt.Sprintf("layout: strip size must be positive, got %d", stripSize))
	}
	if stripSize%elemSize != 0 {
		panic(fmt.Sprintf("layout: strip size %d not a multiple of element size %d", stripSize, elemSize))
	}
	return Locator{ElemSize: elemSize, StripSize: stripSize, Layout: l}
}

// ElemsPerStrip returns how many whole elements fit in one strip.
func (lc Locator) ElemsPerStrip() int64 { return lc.StripSize / lc.ElemSize }

// Strip returns the strip index containing element i (Eq. (1)). The
// element index must be non-negative; dependence offsets that fall before
// the start of the file are the caller's boundary condition to clamp.
func (lc Locator) Strip(i int64) int64 {
	if i < 0 {
		panic(fmt.Sprintf("layout: negative element index %d", i))
	}
	return i * lc.ElemSize / lc.StripSize
}

// Server returns the primary server for element i (Eq. (2)).
func (lc Locator) Server(i int64) int { return lc.Layout.Primary(lc.Strip(i)) }

// DepStrip returns the strip of the dependent element at offset off from
// element i (Eq. (3)), and whether that element exists within a file of
// totalElems elements.
func (lc Locator) DepStrip(i, off, totalElems int64) (strip int64, ok bool) {
	j := i + off
	if j < 0 || j >= totalElems {
		return 0, false
	}
	return lc.Strip(j), true
}

// LocalDep reports whether the dependent element at offset off from
// element i is resolvable on element i's primary server, counting both
// primary placement and replicas (the paper's aj = 0 condition under the
// improved distribution). Out-of-file dependencies are trivially local:
// boundary elements clamp instead of communicating.
func (lc Locator) LocalDep(i, off, totalElems int64) bool {
	depStrip, ok := lc.DepStrip(i, off, totalElems)
	if !ok {
		return true
	}
	return Holds(lc.Layout, depStrip, lc.Server(i))
}

// Strips returns the number of strips a file of size bytes occupies.
func (lc Locator) Strips(fileSize int64) int64 {
	return (fileSize + lc.StripSize - 1) / lc.StripSize
}

// StripBounds returns the byte range [lo, hi) of strip s within the file.
func (lc Locator) StripBounds(s, fileSize int64) (lo, hi int64) {
	lo = s * lc.StripSize
	hi = lo + lc.StripSize
	if hi > fileSize {
		hi = fileSize
	}
	return lo, hi
}

// RequiredHalo returns the minimum number of group-boundary strips that
// must be replicated so that a dependence reaching at most maxAbsOffset
// elements away is always locally resolvable: ceil(maxAbsOffset·E /
// strip_size). The paper's examples have dependence spans within one strip
// and use 1.
func (lc Locator) RequiredHalo(maxAbsOffset int64) int {
	if maxAbsOffset <= 0 {
		return 0
	}
	bytes := maxAbsOffset * lc.ElemSize
	return int((bytes + lc.StripSize - 1) / lc.StripSize)
}

// PrimaryStripsOf enumerates the strips whose primary is server srv for a
// file with the given number of strips, in ascending order. This is the
// work list of one active storage server.
func PrimaryStripsOf(l Layout, srv int, strips int64) []int64 {
	var out []int64
	for s := int64(0); s < strips; s++ {
		if l.Primary(s) == srv {
			out = append(out, s)
		}
	}
	return out
}

// ReplicaStripsOf enumerates the strips replicated onto server srv.
func ReplicaStripsOf(l Layout, srv int, strips int64) []int64 {
	var out []int64
	for s := int64(0); s < strips; s++ {
		for _, r := range l.Replicas(s) {
			if r == srv {
				out = append(out, s)
				break
			}
		}
	}
	return out
}
