package layout

import (
	"testing"
	"testing/quick"
)

func TestRoundRobinPrimary(t *testing.T) {
	l := NewRoundRobin(4)
	for s := int64(0); s < 16; s++ {
		if got := l.Primary(s); got != int(s%4) {
			t.Errorf("Primary(%d) = %d, want %d", s, got, s%4)
		}
	}
	if l.Replicas(3) != nil {
		t.Error("round-robin must not replicate")
	}
}

func TestGroupedPlacesRunsTogether(t *testing.T) {
	l := NewGrouped(3, 4)
	// strips 0-3 → server 0, 4-7 → server 1, 8-11 → server 2, 12-15 → server 0
	wants := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 0, 0, 0, 0}
	for s, want := range wants {
		if got := l.Primary(int64(s)); got != want {
			t.Errorf("Primary(%d) = %d, want %d", s, got, want)
		}
	}
}

func TestGroupedReplicatedBoundaries(t *testing.T) {
	// D=4, r=4, halo=1: first strip of each group also on previous server,
	// last strip also on next server (paper Fig. 9).
	l := NewGroupedReplicated(4, 4, 1)
	cases := []struct {
		strip   int64
		primary int
		reps    []int
	}{
		{0, 0, []int{3}},  // group 0 start → previous server wraps to 3
		{1, 0, nil},       // interior
		{2, 0, nil},       // interior
		{3, 0, []int{1}},  // group 0 end → next server
		{4, 1, []int{0}},  // group 1 start
		{7, 1, []int{2}},  // group 1 end
		{12, 3, []int{2}}, // group 3 start
		{15, 3, []int{0}}, // group 3 end wraps to 0
	}
	for _, c := range cases {
		if got := l.Primary(c.strip); got != c.primary {
			t.Errorf("Primary(%d) = %d, want %d", c.strip, got, c.primary)
		}
		got := l.Replicas(c.strip)
		if len(got) != len(c.reps) {
			t.Errorf("Replicas(%d) = %v, want %v", c.strip, got, c.reps)
			continue
		}
		for i := range got {
			if got[i] != c.reps[i] {
				t.Errorf("Replicas(%d) = %v, want %v", c.strip, got, c.reps)
			}
		}
	}
}

func TestGroupedReplicatedWideHalo(t *testing.T) {
	// halo=2 replicates the two strips at each group edge.
	l := NewGroupedReplicated(4, 8, 2)
	if reps := l.Replicas(0); len(reps) != 1 || reps[0] != 3 {
		t.Errorf("Replicas(0) = %v, want [3]", reps)
	}
	if reps := l.Replicas(1); len(reps) != 1 || reps[0] != 3 {
		t.Errorf("Replicas(1) = %v, want [3]", reps)
	}
	if reps := l.Replicas(2); reps != nil {
		t.Errorf("Replicas(2) = %v, want none", reps)
	}
	if reps := l.Replicas(6); len(reps) != 1 || reps[0] != 1 {
		t.Errorf("Replicas(6) = %v, want [1]", reps)
	}
}

func TestGroupedReplicatedTinyGroupBothSides(t *testing.T) {
	// r == halo: every strip is replicated to both neighbors.
	l := NewGroupedReplicated(4, 1, 1)
	reps := l.Replicas(1) // group 1 on server 1, neighbors 0 and 2
	if len(reps) != 2 || reps[0] != 0 || reps[1] != 2 {
		t.Errorf("Replicas(1) = %v, want [0 2]", reps)
	}
}

func TestGroupedReplicatedTwoServersDedup(t *testing.T) {
	// With D=2 the previous and next server coincide; no duplicates.
	l := NewGroupedReplicated(2, 1, 1)
	reps := l.Replicas(0)
	if len(reps) != 1 || reps[0] != 1 {
		t.Errorf("Replicas(0) = %v, want [1]", reps)
	}
}

func TestGroupedReplicatedSingleServerNoReplicas(t *testing.T) {
	l := NewGroupedReplicated(1, 4, 1)
	for s := int64(0); s < 8; s++ {
		if reps := l.Replicas(s); reps != nil {
			t.Errorf("Replicas(%d) = %v, want none with one server", s, reps)
		}
	}
}

func TestReplicatedRoundRobinPlacement(t *testing.T) {
	l := NewReplicatedRoundRobin(4, 3)
	if l.Primary(5) != 1 {
		t.Errorf("Primary(5) = %d, want 1", l.Primary(5))
	}
	reps := l.Replicas(5) // next two servers: 2, 3
	if len(reps) != 2 || reps[0] != 2 || reps[1] != 3 {
		t.Errorf("Replicas(5) = %v, want [2 3]", reps)
	}
	// Wrap-around: strip 3 on server 3 replicates to 0 and 1 (ascending).
	reps = l.Replicas(3)
	if len(reps) != 2 || reps[0] != 0 || reps[1] != 1 {
		t.Errorf("Replicas(3) = %v, want [0 1]", reps)
	}
	// Single copy degenerates to plain round-robin.
	if NewReplicatedRoundRobin(4, 1).Replicas(7) != nil {
		t.Error("copies=1 must not replicate")
	}
	for _, bad := range []int{0, 5} {
		bad := bad
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("copies=%d accepted", bad)
				}
			}()
			NewReplicatedRoundRobin(4, bad)
		}()
	}
}

func TestReplicatedRoundRobinWellFormed(t *testing.T) {
	l := NewReplicatedRoundRobin(5, 3)
	for s := int64(0); s < 40; s++ {
		seen := map[int]bool{l.Primary(s): true}
		for _, r := range l.Replicas(s) {
			if r < 0 || r >= 5 || seen[r] {
				t.Fatalf("strip %d: bad replica set %v (primary %d)", s, l.Replicas(s), l.Primary(s))
			}
			seen[r] = true
		}
		if len(seen) != 3 {
			t.Fatalf("strip %d: %d distinct holders, want 3", s, len(seen))
		}
	}
}

func TestHoldersAndHolds(t *testing.T) {
	l := NewGroupedReplicated(4, 4, 1)
	h := Holders(l, 3) // primary 0, replica 1
	if len(h) != 2 || h[0] != 0 || h[1] != 1 {
		t.Errorf("Holders(3) = %v, want [0 1]", h)
	}
	if !Holds(l, 3, 0) || !Holds(l, 3, 1) || Holds(l, 3, 2) {
		t.Error("Holds disagrees with Holders")
	}
}

func TestOverheadRatio(t *testing.T) {
	if got := OverheadRatio(NewRoundRobin(4)); got != 0 {
		t.Errorf("round-robin overhead %v", got)
	}
	if got := OverheadRatio(NewGroupedReplicated(4, 4, 1)); got != 0.5 {
		t.Errorf("grouped-replicated(r=4) overhead %v, want 0.5 (= 2/r)", got)
	}
	if got := OverheadRatio(NewGroupedReplicated(4, 8, 2)); got != 0.5 {
		t.Errorf("halo=2,r=8 overhead %v, want 0.5", got)
	}
	if got := OverheadRatio(NewGroupedReplicated(1, 4, 1)); got != 0 {
		t.Errorf("single-server overhead %v, want 0", got)
	}
}

func TestConstructorValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero servers", func() { NewRoundRobin(0) })
	mustPanic("zero group", func() { NewGrouped(4, 0) })
	mustPanic("zero halo", func() { NewGroupedReplicated(4, 4, 0) })
	mustPanic("halo > r", func() { NewGroupedReplicated(4, 4, 5) })
}

// Property: every strip has exactly one primary in [0, D) and replicas are
// distinct servers different from the primary, for all layouts.
func TestPlacementWellFormedProperty(t *testing.T) {
	prop := func(dRaw, rRaw, haloRaw uint8, stripRaw uint16) bool {
		d := int(dRaw%16) + 1
		r := int(rRaw%8) + 1
		halo := int(haloRaw%uint8(r)) + 1
		s := int64(stripRaw)
		for _, l := range []Layout{
			NewRoundRobin(d),
			NewGrouped(d, r),
			NewGroupedReplicated(d, r, halo),
		} {
			p := l.Primary(s)
			if p < 0 || p >= l.Servers() {
				return false
			}
			seen := map[int]bool{p: true}
			for _, rep := range l.Replicas(s) {
				if rep < 0 || rep >= l.Servers() || seen[rep] {
					return false
				}
				seen[rep] = true
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: under GroupedReplicated, replicas live only on the servers
// adjacent (mod D) to the primary.
func TestReplicasAreAdjacentProperty(t *testing.T) {
	prop := func(dRaw, rRaw uint8, stripRaw uint16) bool {
		d := int(dRaw%14) + 3 // at least 3 so adjacency is meaningful
		r := int(rRaw%8) + 1
		l := NewGroupedReplicated(d, r, 1)
		s := int64(stripRaw)
		p := l.Primary(s)
		prev, next := (p+d-1)%d, (p+1)%d
		for _, rep := range l.Replicas(s) {
			if rep != prev && rep != next {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
