// Package layout implements the strip-placement arithmetic at the heart of
// the DAS paper: which storage server holds which strip of a striped file,
// under the default round-robin policy (Eqs. (1)–(4)) and under the
// paper's improved, dependence-aware distribution that groups r successive
// strips per server and replicates group-boundary strips onto the adjacent
// servers (Eqs. (14)–(16), Figs. 7–9).
package layout

import (
	"fmt"
	"sort"
)

// Layout maps strip indices of one file onto storage servers. Server ids
// are dense indices 0..Servers()-1; callers translate them to node ids.
type Layout interface {
	// Name identifies the policy for reports and metadata.
	Name() string
	// Servers returns D, the number of storage servers strips spread over.
	Servers() int
	// Primary returns the server owning strip s. The primary is the server
	// responsible for processing the strip under active storage.
	Primary(s int64) int
	// Replicas returns the servers holding read-only copies of strip s, in
	// ascending server order, excluding the primary. Most layouts return
	// nil.
	Replicas(s int64) []int
}

// RoundRobin is the default parallel-file-system policy: strip s lives on
// server s mod D (paper Eq. (2)).
type RoundRobin struct {
	D int // number of storage servers
}

// NewRoundRobin returns the default policy over d servers.
func NewRoundRobin(d int) RoundRobin {
	mustServers(d)
	return RoundRobin{D: d}
}

func (r RoundRobin) Name() string           { return fmt.Sprintf("round-robin(D=%d)", r.D) }
func (r RoundRobin) Servers() int           { return r.D }
func (r RoundRobin) Primary(s int64) int    { return int(mod(s, int64(r.D))) }
func (r RoundRobin) Replicas(s int64) []int { return nil }

// Grouped places r successive strips on the same server: strip s lives on
// server (s/r) mod D (paper Eq. (14) without replication). It reduces but
// does not eliminate cross-server dependence: dependencies still cross at
// every group boundary.
type Grouped struct {
	D int // number of storage servers
	R int // strips per group
}

// NewGrouped returns a grouped policy with r strips per group.
func NewGrouped(d, r int) Grouped {
	mustServers(d)
	mustGroup(r)
	return Grouped{D: d, R: r}
}

func (g Grouped) Name() string           { return fmt.Sprintf("grouped(D=%d,r=%d)", g.D, g.R) }
func (g Grouped) Servers() int           { return g.D }
func (g Grouped) Primary(s int64) int    { return int(mod(s/int64(g.R), int64(g.D))) }
func (g Grouped) Replicas(s int64) []int { return nil }

// GroupedReplicated is the paper's improved data distribution: r
// successive strips per server, with the strips nearest each group
// boundary additionally replicated to the neighboring server, so that the
// dependence window of every element resolves locally (Fig. 9). The paper
// replicates exactly the first and last strip of each group (Halo = 1); we
// generalize to Halo ≥ 1 consecutive strips at each boundary, required
// when the dependence span of a kernel exceeds one strip (e.g. an
// 8-neighbor stencil on rows wider than one strip). Capacity overhead is
// 2·Halo/r relative to an unreplicated layout.
type GroupedReplicated struct {
	D    int // number of storage servers
	R    int // strips per group
	Halo int // boundary strips replicated to each adjacent server
}

// NewGroupedReplicated returns the improved distribution. Halo must be at
// least 1 and at most R: replicating more strips than a group holds would
// mean full mirroring and is almost certainly a configuration error.
func NewGroupedReplicated(d, r, halo int) GroupedReplicated {
	mustServers(d)
	mustGroup(r)
	if halo < 1 || halo > r {
		panic(fmt.Sprintf("layout: halo %d out of range [1,%d]", halo, r))
	}
	return GroupedReplicated{D: d, R: r, Halo: halo}
}

func (g GroupedReplicated) Name() string {
	return fmt.Sprintf("grouped-replicated(D=%d,r=%d,halo=%d)", g.D, g.R, g.Halo)
}
func (g GroupedReplicated) Servers() int        { return g.D }
func (g GroupedReplicated) Primary(s int64) int { return int(mod(s/int64(g.R), int64(g.D))) }

// Replicas returns the adjacent servers holding copies of strip s: the
// previous server if s is within Halo of its group's start, the next
// server if within Halo of its group's end.
func (g GroupedReplicated) Replicas(s int64) []int {
	if g.D == 1 {
		return nil // a single server already holds everything
	}
	primary := g.Primary(s)
	pos := mod(s, int64(g.R))
	var reps []int
	if pos < int64(g.Halo) {
		reps = appendServer(reps, int(mod(s/int64(g.R)-1, int64(g.D))), primary)
	}
	if pos >= int64(g.R-g.Halo) {
		reps = appendServer(reps, int(mod(s/int64(g.R)+1, int64(g.D))), primary)
	}
	if len(reps) == 2 && reps[0] > reps[1] {
		reps[0], reps[1] = reps[1], reps[0]
	}
	if len(reps) == 2 && reps[0] == reps[1] {
		reps = reps[:1]
	}
	return reps
}

func appendServer(reps []int, srv, primary int) []int {
	if srv == primary {
		return reps // tiny D can fold a neighbor onto the primary
	}
	return append(reps, srv)
}

// ReplicatedRoundRobin is HDFS-style placement: strip s's primary is
// server s mod D and Copies-1 replicas go to the following servers. It is
// not a DAS layout — dependence stays remote — but models the output
// replication a MapReduce/DFS stack pays, for the §II-C comparison.
type ReplicatedRoundRobin struct {
	D      int // number of storage servers
	Copies int // total copies per strip, including the primary
}

// NewReplicatedRoundRobin returns the policy; copies must be in [1, D].
func NewReplicatedRoundRobin(d, copies int) ReplicatedRoundRobin {
	mustServers(d)
	if copies < 1 || copies > d {
		panic(fmt.Sprintf("layout: copies %d out of range [1,%d]", copies, d))
	}
	return ReplicatedRoundRobin{D: d, Copies: copies}
}

func (r ReplicatedRoundRobin) Name() string {
	return fmt.Sprintf("replicated-round-robin(D=%d,copies=%d)", r.D, r.Copies)
}
func (r ReplicatedRoundRobin) Servers() int        { return r.D }
func (r ReplicatedRoundRobin) Primary(s int64) int { return int(mod(s, int64(r.D))) }

// Replicas places the Copies-1 following servers, ascending.
func (r ReplicatedRoundRobin) Replicas(s int64) []int {
	if r.Copies <= 1 {
		return nil
	}
	reps := make([]int, 0, r.Copies-1)
	for i := 1; i < r.Copies; i++ {
		reps = append(reps, int(mod(s+int64(i), int64(r.D))))
	}
	sort.Ints(reps)
	return reps
}

// Holders returns every server that stores strip s (primary first, then
// replicas in ascending order) under any layout.
func Holders(l Layout, s int64) []int {
	return append([]int{l.Primary(s)}, l.Replicas(s)...)
}

// FirstLiveHolder returns the first holder of strip s that live reports
// alive — the primary when it is up, otherwise the first live replica in
// Holders order — and ok = false when no copy of the strip is on a live
// server. It is the placement rule degraded reads and degraded offload
// assignment share, so both layers fail over to the same server.
func FirstLiveHolder(l Layout, s int64, live func(srv int) bool) (int, bool) {
	if p := l.Primary(s); live(p) {
		return p, true
	}
	for _, r := range l.Replicas(s) {
		if live(r) {
			return r, true
		}
	}
	return 0, false
}

// Holds reports whether server srv stores strip s, either as primary or as
// a replica.
func Holds(l Layout, s int64, srv int) bool {
	if l.Primary(s) == srv {
		return true
	}
	for _, r := range l.Replicas(s) {
		if r == srv {
			return true
		}
	}
	return false
}

// OverheadRatio returns the extra storage capacity a layout consumes as a
// fraction of the file size, averaged over many strips: 0 for
// non-replicated layouts, 2·Halo/r for GroupedReplicated (the paper's
// "2/r" with Halo = 1).
func OverheadRatio(l Layout) float64 {
	switch g := l.(type) {
	case GroupedReplicated:
		if g.D == 1 {
			return 0
		}
		// Per group the leading Halo strips copy to the previous server and
		// the trailing Halo to the next, 2·Halo copies in total — except
		// with two servers, where the neighbors coincide and a strip inside
		// both halos folds to a single copy: min(2·Halo, r) per group.
		if g.D == 2 {
			reps := 2 * g.Halo
			if reps > g.R {
				reps = g.R
			}
			return float64(reps) / float64(g.R)
		}
		return 2 * float64(g.Halo) / float64(g.R)
	default:
		return 0
	}
}

func mustServers(d int) {
	if d <= 0 {
		panic(fmt.Sprintf("layout: server count must be positive, got %d", d))
	}
}

func mustGroup(r int) {
	if r <= 0 {
		panic(fmt.Sprintf("layout: group size must be positive, got %d", r))
	}
}

// mod is the non-negative remainder, defined for negative numerators so
// that "previous server" arithmetic wraps correctly (Go's % truncates
// toward zero).
func mod(a, m int64) int64 {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}
