package layout

import (
	"reflect"
	"testing"
)

// TestMigratingFollowsMoveSet: placement queries resolve under the old
// layout until a strip's bit flips, under the target after.
func TestMigratingFollowsMoveSet(t *testing.T) {
	old := NewRoundRobin(4)
	target := NewGroupedReplicated(4, 4, 1)
	moves := NewMoveSet(16)
	m := NewMigrating(old, target, moves)

	for s := int64(0); s < 16; s++ {
		if got, want := m.Primary(s), old.Primary(s); got != want {
			t.Fatalf("unmoved Primary(%d) = %d, want old %d", s, got, want)
		}
		if got := m.Replicas(s); len(got) != 0 {
			t.Fatalf("unmoved Replicas(%d) = %v, want none (round-robin)", s, got)
		}
	}

	moves.Set(5)
	moves.Set(7)
	for s := int64(0); s < 16; s++ {
		wantLay := Layout(old)
		if s == 5 || s == 7 {
			wantLay = target
		}
		if got, want := m.Primary(s), wantLay.Primary(s); got != want {
			t.Errorf("Primary(%d) = %d, want %d", s, got, want)
		}
		if got, want := m.Replicas(s), wantLay.Replicas(s); !reflect.DeepEqual(got, want) {
			t.Errorf("Replicas(%d) = %v, want %v", s, got, want)
		}
	}
	if moved, total := m.Progress(); moved != 2 || total != 16 {
		t.Errorf("Progress = %d/%d, want 2/16", moved, total)
	}

	// Re-setting is idempotent; clearing reverts to the old placement.
	moves.Set(5)
	if moves.Count() != 2 {
		t.Errorf("Count after duplicate Set = %d, want 2", moves.Count())
	}
	moves.Clear(5)
	if got, want := m.Primary(5), old.Primary(5); got != want {
		t.Errorf("cleared Primary(5) = %d, want old %d", got, want)
	}
	if moves.Count() != 1 {
		t.Errorf("Count after Clear = %d, want 1", moves.Count())
	}
}

// TestMigratingSnapshotFreezes: a Snapshot taken mid-migration keeps
// serving the placement of that instant even as further strips flip.
func TestMigratingSnapshotFreezes(t *testing.T) {
	old := NewRoundRobin(3)
	target := NewGroupedReplicated(3, 2, 1)
	moves := NewMoveSet(6)
	m := NewMigrating(old, target, moves)
	moves.Set(2)

	snap := m.Snapshot(6)
	wantPrim := make([]int, 6)
	wantReps := make([][]int, 6)
	for s := int64(0); s < 6; s++ {
		wantPrim[s] = m.Primary(s)
		wantReps[s] = m.Replicas(s)
	}

	moves.Set(0)
	moves.Set(4)
	for s := int64(0); s < 6; s++ {
		if got := snap.Primary(s); got != wantPrim[s] {
			t.Errorf("snapshot Primary(%d) = %d, want frozen %d", s, got, wantPrim[s])
		}
		if got := snap.Replicas(s); !reflect.DeepEqual(got, wantReps[s]) {
			t.Errorf("snapshot Replicas(%d) = %v, want frozen %v", s, got, wantReps[s])
		}
	}
	// Past the table a snapshot degrades to round-robin rather than lying.
	if got, want := snap.Primary(100), 100%3; got != want {
		t.Errorf("out-of-table Primary(100) = %d, want %d", got, want)
	}
	if got := snap.Replicas(100); got != nil {
		t.Errorf("out-of-table Replicas(100) = %v, want nil", got)
	}
}

// TestConcrete: migrating layouts freeze, stable layouts pass through.
func TestConcrete(t *testing.T) {
	rr := NewRoundRobin(2)
	if got := Concrete(rr, 4); got != Layout(rr) {
		t.Errorf("Concrete(round-robin) = %v, want identity", got)
	}
	m := NewMigrating(rr, NewGroupedReplicated(2, 2, 1), NewMoveSet(4))
	if _, ok := Concrete(m, 4).(*Table); !ok {
		t.Errorf("Concrete(migrating) = %T, want *Table", Concrete(m, 4))
	}
}
