package layout

import (
	"testing"
	"testing/quick"
)

func TestStripAndServer(t *testing.T) {
	// 8-byte elements, 64-byte strips → 8 elements per strip, 4 servers.
	lc := NewLocator(8, 64, NewRoundRobin(4))
	if lc.ElemsPerStrip() != 8 {
		t.Fatalf("ElemsPerStrip = %d", lc.ElemsPerStrip())
	}
	cases := []struct {
		elem   int64
		strip  int64
		server int
	}{
		{0, 0, 0}, {7, 0, 0}, {8, 1, 1}, {15, 1, 1}, {32, 4, 0}, {33, 4, 0},
	}
	for _, c := range cases {
		if got := lc.Strip(c.elem); got != c.strip {
			t.Errorf("Strip(%d) = %d, want %d", c.elem, got, c.strip)
		}
		if got := lc.Server(c.elem); got != c.server {
			t.Errorf("Server(%d) = %d, want %d", c.elem, got, c.server)
		}
	}
}

func TestDepStripBoundsChecking(t *testing.T) {
	lc := NewLocator(8, 64, NewRoundRobin(4))
	if _, ok := lc.DepStrip(0, -1, 100); ok {
		t.Error("dependence before file start must be out of range")
	}
	if _, ok := lc.DepStrip(99, 1, 100); ok {
		t.Error("dependence past file end must be out of range")
	}
	s, ok := lc.DepStrip(8, -1, 100)
	if !ok || s != 0 {
		t.Errorf("DepStrip(8,-1) = (%d,%v), want (0,true)", s, ok)
	}
}

func TestLocalDepRoundRobinCrossesStrips(t *testing.T) {
	lc := NewLocator(8, 64, NewRoundRobin(4))
	// Element 7 is the last of strip 0 (server 0); its +1 neighbor is in
	// strip 1 (server 1): remote.
	if lc.LocalDep(7, 1, 1000) {
		t.Error("cross-strip dependence should be remote under round-robin")
	}
	// Interior dependence stays local.
	if !lc.LocalDep(3, 1, 1000) {
		t.Error("intra-strip dependence should be local")
	}
	// Out-of-file dependence clamps to local.
	if !lc.LocalDep(0, -5, 1000) {
		t.Error("out-of-file dependence must be treated as local")
	}
}

func TestLocalDepGroupedReplicated(t *testing.T) {
	// Same geometry but the improved layout, halo sized for the widest
	// offset (±9 elements = 72 bytes spans two strip boundaries → halo 2).
	offsets := []int64{-9, -8, -7, -1, 1, 7, 8, 9}
	halo := NewLocator(8, 64, NewRoundRobin(4)).RequiredHalo(9)
	if halo != 2 {
		t.Fatalf("RequiredHalo(9) = %d, want 2", halo)
	}
	lc := NewLocator(8, 64, NewGroupedReplicated(4, 4, halo))
	total := int64(4 * 4 * 8 * 2) // two full rounds of groups
	for i := int64(0); i < total; i++ {
		for _, off := range offsets {
			if !lc.LocalDep(i, off, total) {
				t.Fatalf("element %d offset %d not local under grouped-replicated", i, off)
			}
		}
	}
}

func TestStripsAndBounds(t *testing.T) {
	lc := NewLocator(8, 64, NewRoundRobin(2))
	if got := lc.Strips(0); got != 0 {
		t.Errorf("Strips(0) = %d", got)
	}
	if got := lc.Strips(1); got != 1 {
		t.Errorf("Strips(1) = %d, want 1", got)
	}
	if got := lc.Strips(64); got != 1 {
		t.Errorf("Strips(64) = %d, want 1", got)
	}
	if got := lc.Strips(65); got != 2 {
		t.Errorf("Strips(65) = %d, want 2", got)
	}
	lo, hi := lc.StripBounds(1, 100)
	if lo != 64 || hi != 100 {
		t.Errorf("StripBounds(1,100) = [%d,%d), want [64,100)", lo, hi)
	}
}

func TestRequiredHalo(t *testing.T) {
	lc := NewLocator(8, 64, NewRoundRobin(4))
	cases := []struct {
		off  int64
		want int
	}{
		{0, 0},  // no dependence
		{1, 1},  // 8 bytes, within one strip but can cross one boundary
		{8, 1},  // exactly one strip away
		{9, 2},  // 72 bytes spans two strip boundaries
		{16, 2}, // two strips
	}
	for _, c := range cases {
		if got := lc.RequiredHalo(c.off); got != c.want {
			t.Errorf("RequiredHalo(%d) = %d, want %d", c.off, got, c.want)
		}
	}
}

func TestPrimaryAndReplicaStripEnumeration(t *testing.T) {
	l := NewGroupedReplicated(2, 2, 1)
	// strips: 0,1 → server 0; 2,3 → server 1; 4,5 → server 0; ...
	prim := PrimaryStripsOf(l, 0, 6)
	want := []int64{0, 1, 4, 5}
	if len(prim) != len(want) {
		t.Fatalf("PrimaryStripsOf = %v, want %v", prim, want)
	}
	for i := range want {
		if prim[i] != want[i] {
			t.Fatalf("PrimaryStripsOf = %v, want %v", prim, want)
		}
	}
	reps := ReplicaStripsOf(l, 0, 6)
	// Server 1's group edges (strips 2 and 3) replicate to server 0.
	if len(reps) != 2 || reps[0] != 2 || reps[1] != 3 {
		t.Fatalf("ReplicaStripsOf = %v, want [2 3]", reps)
	}
}

func TestLocatorValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero elem", func() { NewLocator(0, 64, NewRoundRobin(2)) })
	mustPanic("zero strip", func() { NewLocator(8, 0, NewRoundRobin(2)) })
	mustPanic("unaligned", func() { NewLocator(8, 100, NewRoundRobin(2)) })
	mustPanic("negative elem index", func() {
		NewLocator(8, 64, NewRoundRobin(2)).Strip(-1)
	})
}

// Property (the paper's central locality theorem, §III-D): with a halo
// sized by RequiredHalo, every dependence within ±maxOff is locally
// resolvable under GroupedReplicated, provided groups are wide enough that
// the halo fits (halo ≤ r).
func TestGroupedReplicatedLocalityProperty(t *testing.T) {
	prop := func(dRaw, rRaw uint8, offRaw uint8, elemRaw uint16) bool {
		d := int(dRaw%8) + 2
		maxOff := int64(offRaw%24) + 1
		lcProbe := NewLocator(8, 64, NewRoundRobin(d))
		halo := lcProbe.RequiredHalo(maxOff)
		r := halo + int(rRaw%8) + 1 // any group size ≥ halo+1
		lc := NewLocator(8, 64, NewGroupedReplicated(d, r, halo))
		total := int64(d*r) * lc.ElemsPerStrip() * 3
		i := int64(elemRaw) % total
		for off := -maxOff; off <= maxOff; off++ {
			if !lc.LocalDep(i, off, total) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: round-robin and grouped layouts never reduce to the same
// placement unless r == 1, in which case they must agree exactly.
func TestGroupedDegeneratesToRoundRobin(t *testing.T) {
	prop := func(dRaw uint8, stripRaw uint16) bool {
		d := int(dRaw%16) + 1
		s := int64(stripRaw)
		return NewGrouped(d, 1).Primary(s) == NewRoundRobin(d).Primary(s)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
