package layout

import "testing"

// Placement lookups sit on the hot path of every strip operation; they
// must stay allocation-free for the non-replicated layouts.
func BenchmarkRoundRobinPrimary(b *testing.B) {
	l := NewRoundRobin(12)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += l.Primary(int64(i))
	}
	_ = sink
}

func BenchmarkGroupedReplicatedPrimary(b *testing.B) {
	l := NewGroupedReplicated(12, 8, 2)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += l.Primary(int64(i))
	}
	_ = sink
}

func BenchmarkGroupedReplicatedReplicas(b *testing.B) {
	l := NewGroupedReplicated(12, 8, 2)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += len(l.Replicas(int64(i)))
	}
	_ = sink
}

func BenchmarkLocatorLocalDep(b *testing.B) {
	lc := NewLocator(8, 64*1024, NewGroupedReplicated(12, 8, 2))
	const total = 1 << 22
	offs := []int64{-8193, -8192, -8191, -1, 1, 8191, 8192, 8193}
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		e := int64(i) % total
		for _, off := range offs {
			if lc.LocalDep(e, off, total) {
				sink++
			}
		}
	}
	_ = sink
}
