// Package mapred is a MapReduce-style comparator for the §II-C claim:
// the paper argues that MapReduce-family runtimes, though they also move
// computation to data, "are not designed for high performance computing
// semantics" and that DAS "is more effective than MapReduce in HPC
// environments". This package makes that claim testable by running the
// same stencil kernels the way a Hadoop-era stack would:
//
//  1. Map: every node scans its node-local strips (data-local scheduling)
//     and *materializes* its map output — the strip's own data plus copies
//     of the boundary fragments its neighboring strips will need — to
//     local disk, as MapReduce materializes intermediate key/value data.
//  2. Shuffle: after a global barrier (reduces must not start before every
//     map has finished), each reducer pulls the fragments destined for its
//     strips; fragments for co-located strips stay local, the rest cross
//     the network.
//  3. Reduce: each node re-reads its materialized inputs, runs the kernel
//     over its strips, and writes the output through the DFS with
//     HDFS-style replication (default 2 copies), paying one network copy
//     per output strip.
//
// The structural handicaps relative to DAS are exactly the ones the HPC
// literature attributes to MapReduce on these workloads: intermediate
// materialization (extra disk passes), a global barrier (straggler
// sensitivity), and replicated output (extra network), against DAS's
// read-local/compute/write-local pipeline.
package mapred

import (
	"fmt"

	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/pfs"
	"github.com/hpcio/das/internal/predict"
	"github.com/hpcio/das/internal/sim"
	"github.com/hpcio/das/internal/simnet"
)

// Job describes one MapReduce execution of a stencil kernel.
type Job struct {
	Op     string
	Input  string // existing raster, expected on a round-robin layout
	Output string // created by Run with ReplicatedRoundRobin placement
	// Replication is the DFS output replication factor (0 → 2, the
	// common HDFS minimum for intermediate datasets).
	Replication int
}

// Stats reports one job's execution.
type Stats struct {
	MapTime, ShuffleTime, ReduceTime sim.Time // barrier-to-barrier phase spans
	ShuffledBytes                    int64    // halo fragments that crossed the network
	MaterializedBytes                int64    // intermediate data written to local disks
	OutputReplicaBytes               int64    // DFS replication traffic
}

// Runner executes MapReduce jobs over an existing cluster + PFS. It is
// deployed on the storage node set; under the collocated deployment model
// (the one MapReduce assumes) those are all the nodes.
type Runner struct {
	fs       *pfs.FileSystem
	registry *kernels.Registry
}

// NewRunner builds a runner over a deployed file system.
func NewRunner(fs *pfs.FileSystem, registry *kernels.Registry) *Runner {
	return &Runner{fs: fs, registry: registry}
}

// fragment is one shuffled piece: elements [lo, hi) of the input needed by
// the reducer of strip Target.
type fragment struct {
	Target int64
	Lo, Hi int64 // element range
	Data   []float64
}

// mapOut is one mapper's materialized output.
type mapOut struct {
	fragments []fragment
	err       error
}

// Run executes the job to completion inside the calling process and
// returns its statistics. The caller drives the engine.
func (r *Runner) Run(p *sim.Proc, job Job) (Stats, error) {
	in, ok := r.fs.Meta(job.Input)
	if !ok {
		return Stats{}, fmt.Errorf("mapred: unknown input %q", job.Input)
	}
	if in.Width == 0 || in.ElemSize == 0 {
		return Stats{}, fmt.Errorf("mapred: input %q lacks raster metadata", job.Input)
	}
	k, ok := r.registry.Lookup(job.Op)
	if !ok {
		return Stats{}, fmt.Errorf("mapred: unknown operator %q", job.Op)
	}
	replication := job.Replication
	if replication == 0 {
		replication = 2
	}
	servers := r.fs.Servers()
	outLay := layout.NewReplicatedRoundRobin(servers, replication)
	out, err := r.fs.Create(job.Output, in.Size, outLay, pfs.CreateOptions{
		StripSize: in.StripSize, Width: in.Width, Height: in.Height, ElemSize: in.ElemSize,
	})
	if err != nil {
		return Stats{}, err
	}

	clu := r.fs.Cluster()
	offs := kernels.Pattern(k).Resolve(in.Width)
	lc := in.Locator()
	total := in.Size / in.ElemSize

	var stats Stats
	start := p.Now()

	// ---- Map phase: scan local strips, materialize own data + outgoing
	// halo fragments to local disk. perServer[s] collects what mapper s
	// produced; reducers pull from it during the shuffle.
	perServer := make([]mapOut, servers)
	mapSigs := make([]*sim.Signal[int], servers)
	for s := 0; s < servers; s++ {
		s := s
		mapSigs[s] = sim.NewSignal[int](clu.Eng, fmt.Sprintf("map-%d", s))
		p.Spawn(fmt.Sprintf("mapred-map-%d", s), func(mp *sim.Proc) {
			perServer[s].fragments, perServer[s].err = r.mapTask(mp, s, in, lc, offs, total, &stats)
			mapSigs[s].Fire(s)
		})
	}
	sim.WaitAll(p, mapSigs)
	for s := range perServer {
		if perServer[s].err != nil {
			return Stats{}, perServer[s].err
		}
	}
	stats.MapTime = p.Now() - start

	// ---- Shuffle + reduce: reducers (one per server, handling the
	// server's strips) pull their fragments and compute. The barrier
	// above is the MapReduce semantic: no reduce before every map ends.
	shuffleStart := p.Now()
	redSigs := make([]*sim.Signal[error], servers)
	for s := 0; s < servers; s++ {
		s := s
		redSigs[s] = sim.NewSignal[error](clu.Eng, fmt.Sprintf("reduce-%d", s))
		p.Spawn(fmt.Sprintf("mapred-reduce-%d", s), func(rp *sim.Proc) {
			redSigs[s].Fire(r.reduceTask(rp, s, in, out, k, lc, offs, total, perServer, &stats))
		})
	}
	for _, err := range sim.WaitAll(p, redSigs) {
		if err != nil {
			return Stats{}, err
		}
	}
	stats.ReduceTime = p.Now() - shuffleStart
	stats.ShuffleTime = 0 // folded into ReduceTime; kept for reporting symmetry
	return stats, nil
}

// mapTask scans server s's local strips and materializes map output.
func (r *Runner) mapTask(p *sim.Proc, s int, in *pfs.FileMeta, lc layout.Locator, offs []int64, total int64, stats *Stats) ([]fragment, error) {
	srv := r.fs.Server(s)
	var frags []fragment
	var materialized int64
	strips := in.Strips()
	var spans []pfs.Span
	var stripIdx []int64
	for t := int64(0); t < strips; t++ {
		if in.Layout.Primary(t) == s {
			spans = append(spans, pfs.Span{Strip: t})
			stripIdx = append(stripIdx, t)
		}
	}
	if len(spans) == 0 {
		return nil, nil
	}
	chunks, err := srv.LocalReadMany(p, in.Name, spans)
	if err != nil {
		return nil, err
	}
	for i, t := range stripIdx {
		vals := grid.FloatsFromBytes(chunks[i])
		lo, hi := in.StripBounds(t)
		e0, e1 := lo/in.ElemSize, hi/in.ElemSize
		// The strip's own data goes to its own reducer (local: reducers
		// are placed data-locally), and every neighbor strip that needs a
		// piece of [e0, e1) gets a fragment.
		frags = append(frags, fragment{Target: t, Lo: e0, Hi: e1, Data: vals})
		materialized += (e1 - e0) * in.ElemSize
		for _, u := range neighborsNeeding(lc, offs, t, e0, e1, total) {
			// Which part of our strip does reducer u need? The image of
			// u's dependence window intersected with our range.
			ulo, uhi := in.StripBounds(u)
			ue0, ue1 := ulo/in.ElemSize, uhi/in.ElemSize
			wlo, whi := grid.HaloRange(ue0, ue1, maxAbs(offs), total)
			if wlo < e0 {
				wlo = e0
			}
			if whi > e1 {
				whi = e1
			}
			if whi <= wlo {
				continue
			}
			frags = append(frags, fragment{Target: u, Lo: wlo, Hi: whi, Data: vals[wlo-e0 : whi-e0]})
			materialized += (whi - wlo) * in.ElemSize
		}
	}
	// Materialize the map output to local disk, MapReduce-style.
	clu := r.fs.Cluster()
	clu.Disk(srv.NodeID()).Write(p, materialized)
	stats.MaterializedBytes += materialized
	return frags, nil
}

// reduceTask pulls server s's fragments, computes its strips, and writes
// replicated output.
func (r *Runner) reduceTask(p *sim.Proc, s int, in, out *pfs.FileMeta, k kernels.Kernel, lc layout.Locator, offs []int64, total int64, mapOuts []mapOut, stats *Stats) error {
	srv := r.fs.Server(s)
	clu := r.fs.Cluster()
	strips := in.Strips()
	reach := maxAbs(offs)

	mine := make(map[int64]bool)
	for t := int64(0); t < strips; t++ {
		if in.Layout.Primary(t) == s {
			mine[t] = true
		}
	}
	if len(mine) == 0 {
		return nil
	}

	// Shuffle: pull this reducer's fragments from every mapper's
	// materialized output, one parallel segment copy per producer —
	// Hadoop's parallel fetchers. Each pull reads the producer's disk and
	// crosses the network unless producer and reducer share the node.
	var gathered []fragment
	pullSigs := make([]*sim.Signal[[]fragment], 0, len(mapOuts))
	for producer := range mapOuts {
		producer := producer
		var frags []fragment
		var bytes int64
		for _, f := range mapOuts[producer].fragments {
			if mine[f.Target] {
				frags = append(frags, f)
				bytes += (f.Hi - f.Lo) * in.ElemSize
			}
		}
		if len(frags) == 0 {
			continue
		}
		sig := sim.NewSignal[[]fragment](clu.Eng, fmt.Sprintf("shuffle-%d-%d", producer, s))
		pullSigs = append(pullSigs, sig)
		pullFrags, pullBytes := frags, bytes
		p.Spawn(fmt.Sprintf("mapred-shuffle-%d-%d", producer, s), func(sp *sim.Proc) {
			prodSrv := r.fs.Server(producer)
			clu.Disk(prodSrv.NodeID()).Read(sp, pullBytes)
			if producer != s {
				clu.Net.Send(sp, simnet.Message{
					From: prodSrv.NodeID(), To: srv.NodeID(), Port: "shuffle",
					Size: pullBytes, Class: clu.ClassBetween(prodSrv.NodeID(), srv.NodeID()),
				})
				stats.ShuffledBytes += pullBytes
			}
			sig.Fire(pullFrags)
		})
	}
	for _, frags := range sim.WaitAll(p, pullSigs) {
		gathered = append(gathered, frags...)
	}

	// Reduce: assemble each strip's band from the gathered fragments and
	// run the kernel.
	var outStrips []int64
	var outChunks [][]byte
	for t := int64(0); t < strips; t++ {
		if !mine[t] {
			continue
		}
		lo, hi := in.StripBounds(t)
		e0, e1 := lo/in.ElemSize, hi/in.ElemSize
		wlo, whi := grid.HaloRange(e0, e1, reach, total)
		band := grid.NewBand(in.Width, total, e0, e1, wlo, whi)
		for _, f := range gathered {
			if f.Target == t {
				band.Fill(f.Lo, f.Data)
			}
		}
		outVals := make([]float64, e1-e0)
		k.ApplyBand(band, outVals)
		p.Sleep(clu.ComputeTime(e1-e0, k.Weight()))
		outStrips = append(outStrips, t)
		outChunks = append(outChunks, grid.FloatsToBytes(outVals))
	}
	if len(outStrips) == 0 {
		return nil
	}
	// DFS write: local copy plus forwarded replicas (the HDFS pipeline).
	if err := srv.LocalWriteMany(p, out.Name, outStrips, outChunks, true); err != nil {
		return err
	}
	for i, t := range outStrips {
		stats.OutputReplicaBytes += int64(len(out.Layout.Replicas(t))) * int64(len(outChunks[i]))
	}
	return nil
}

// neighborsNeeding lists the strips other than t whose dependence window
// reaches into t's element range — the reducers this mapper must feed.
func neighborsNeeding(lc layout.Locator, offs []int64, t, e0, e1, total int64) []int64 {
	seen := make(map[int64]struct{})
	var need []int64
	// A strip u needs us if t is in NeededStrips(u). Equivalently, u is in
	// the image of t under negated offsets; enumerate via NeededStrips
	// with inverted offsets.
	inv := make([]int64, len(offs))
	for i, off := range offs {
		inv[i] = -off
	}
	for _, u := range predict.NeededStrips(lc, inv, e0, e1, total) {
		if u == t {
			continue
		}
		if _, dup := seen[u]; dup {
			continue
		}
		seen[u] = struct{}{}
		need = append(need, u)
	}
	return need
}

func maxAbs(offs []int64) int64 {
	var m int64
	for _, off := range offs {
		if off < 0 {
			off = -off
		}
		if off > m {
			m = off
		}
	}
	return m
}
