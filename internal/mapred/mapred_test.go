package mapred

import (
	"testing"

	"github.com/hpcio/das/internal/cluster"
	"github.com/hpcio/das/internal/grid"
	"github.com/hpcio/das/internal/kernels"
	"github.com/hpcio/das/internal/layout"
	"github.com/hpcio/das/internal/pfs"
	"github.com/hpcio/das/internal/sim"
	"github.com/hpcio/das/internal/workload"
)

const (
	testW     = 64
	testH     = 32
	testStrip = int64(testW * grid.ElemSize)
)

// rig builds a collocated platform (MapReduce's native deployment) with an
// ingested raster on the round-robin layout a DFS would use.
func rig(t *testing.T, nodes int, g *grid.Grid) (*cluster.Cluster, *pfs.FileSystem) {
	t.Helper()
	cfg := cluster.Default()
	cfg.ComputeNodes, cfg.StorageNodes = nodes, nodes
	cfg.Collocated = true
	clu, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs := pfs.New(clu)
	if _, err := fs.Create("in", g.SizeBytes(), layout.NewRoundRobin(nodes), pfs.CreateOptions{
		StripSize: testStrip, Width: g.W, Height: g.H, ElemSize: grid.ElemSize,
	}); err != nil {
		t.Fatal(err)
	}
	var inner error
	clu.Eng.Spawn("ingest", func(p *sim.Proc) {
		inner = fs.NewClient(clu.ComputeID(0)).WriteAll(p, "in", g.Bytes())
	})
	if err := clu.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if inner != nil {
		t.Fatal(inner)
	}
	return clu, fs
}

func runJob(t *testing.T, clu *cluster.Cluster, fs *pfs.FileSystem, job Job) Stats {
	t.Helper()
	runner := NewRunner(fs, kernels.Default())
	var stats Stats
	var runErr error
	clu.Eng.Spawn("mapred-job", func(p *sim.Proc) {
		stats, runErr = runner.Run(p, job)
	})
	if err := clu.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	return stats
}

func fetch(t *testing.T, clu *cluster.Cluster, fs *pfs.FileSystem, name string) *grid.Grid {
	t.Helper()
	var data []byte
	var err error
	clu.Eng.Spawn("fetch", func(p *sim.Proc) {
		data, err = fs.NewClient(clu.ComputeID(0)).ReadAll(p, name)
	})
	if e := clu.Eng.Run(); e != nil {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	m, _ := fs.Meta(name)
	g, err := grid.FromBytes(m.Width, m.Height, data)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestMapReduceMatchesReference: the MR execution of every stencil kernel
// must reproduce the sequential result exactly, halos shuffled and all.
func TestMapReduceMatchesReference(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	for _, op := range []string{"flow-routing", "gaussian-filter", "median-filter", "diffusion"} {
		op := op
		t.Run(op, func(t *testing.T) {
			clu, fs := rig(t, 4, g)
			stats := runJob(t, clu, fs, Job{Op: op, Input: "in", Output: "out"})
			k, _ := kernels.Default().Lookup(op)
			want := kernels.Apply(k, g)
			if got := fetch(t, clu, fs, "out"); !got.Equal(want) {
				t.Error("MapReduce output differs from sequential reference")
			}
			if stats.MapTime <= 0 || stats.ReduceTime <= 0 {
				t.Errorf("phase times: %+v", stats)
			}
			if stats.MaterializedBytes < g.SizeBytes() {
				t.Errorf("materialized %d bytes, want ≥ input size", stats.MaterializedBytes)
			}
			if stats.ShuffledBytes == 0 {
				t.Error("no halo bytes shuffled despite round-robin placement")
			}
		})
	}
}

func TestMapReduceOutputReplicated(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	clu, fs := rig(t, 4, g)
	stats := runJob(t, clu, fs, Job{Op: "flow-routing", Input: "in", Output: "out", Replication: 2})
	m, _ := fs.Meta("out")
	for s := int64(0); s < m.Strips(); s++ {
		holders := layout.Holders(m.Layout, s)
		if len(holders) != 2 {
			t.Fatalf("strip %d has %d holders, want 2", s, len(holders))
		}
		for _, h := range holders {
			if !fs.Server(h).Holds("out", s) {
				t.Errorf("server %d missing replica of output strip %d", h, s)
			}
		}
	}
	if stats.OutputReplicaBytes < g.SizeBytes() {
		t.Errorf("replica bytes %d, want ≥ output size at factor 2", stats.OutputReplicaBytes)
	}
	_ = clu
}

func TestMapReduceValidation(t *testing.T) {
	g := workload.Terrain(testW, testH, 5)
	clu, fs := rig(t, 4, g)
	runner := NewRunner(fs, kernels.Default())
	var err1, err2 error
	clu.Eng.Spawn("bad", func(p *sim.Proc) {
		_, err1 = runner.Run(p, Job{Op: "nope", Input: "in", Output: "o1"})
		_, err2 = runner.Run(p, Job{Op: "flow-routing", Input: "missing", Output: "o2"})
	})
	if err := clu.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if err1 == nil || err2 == nil {
		t.Error("invalid jobs accepted")
	}
}
