// Package simdisk models a storage-node disk as an exclusive resource with
// a fixed per-request positioning overhead and separate sequential read
// and write bandwidths. Requests through one disk queue up FIFO, so a
// storage server that must serve its neighbors' dependent-strip reads (the
// Normal Active Storage case from the paper) pays for them on the same
// spindle that feeds its own kernel.
package simdisk

import (
	"fmt"
	"sync/atomic"

	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/sim"
)

// Config sets the disk's performance envelope.
type Config struct {
	// ReadBytesPerSec and WriteBytesPerSec are sustained sequential rates.
	ReadBytesPerSec  float64
	WriteBytesPerSec float64
	// SeekTime is charged once per request, modeling positioning plus
	// request-handling overhead.
	SeekTime sim.Time
}

// Disk is one simulated drive.
type Disk struct {
	res     *sim.Resource
	cfg     Config
	traffic *metrics.Traffic

	// factor scales both transfer rates; fault injection degrades a drive
	// by lowering it below 1. Engine-goroutine state, like the resource.
	factor float64

	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
	reads        atomic.Int64
	writes       atomic.Int64
}

// New creates a disk owned by the given engine. Traffic may be nil to skip
// shared accounting; per-disk counters are always kept.
func New(eng *sim.Engine, name string, cfg Config, traffic *metrics.Traffic) *Disk {
	return &Disk{
		res:     sim.NewResource(eng, fmt.Sprintf("disk:%s", name), 1),
		cfg:     cfg,
		traffic: traffic,
		factor:  1,
	}
}

// SetSpeedFactor scales the disk's sequential bandwidth: 0 < f < 1
// degrades the drive, 1 restores it. Non-positive factors are clamped to
// a sliver rather than zero so in-flight requests still terminate.
func (d *Disk) SetSpeedFactor(f float64) {
	if f <= 0 {
		f = 1e-3
	}
	if f > 1 {
		f = 1
	}
	d.factor = f
}

// SpeedFactor returns the current bandwidth scale (1 = healthy).
func (d *Disk) SpeedFactor() float64 { return d.factor }

// Read charges the time to read size bytes and records the traffic.
func (d *Disk) Read(p *sim.Proc, size int64) {
	if size <= 0 {
		return
	}
	d.res.Use(p, 1, d.cfg.SeekTime+sim.TransferTime(size, d.cfg.ReadBytesPerSec*d.factor))
	d.bytesRead.Add(size)
	d.reads.Add(1)
	if d.traffic != nil {
		d.traffic.Add(metrics.DiskRead, size)
	}
}

// Write charges the time to write size bytes and records the traffic.
func (d *Disk) Write(p *sim.Proc, size int64) {
	if size <= 0 {
		return
	}
	d.res.Use(p, 1, d.cfg.SeekTime+sim.TransferTime(size, d.cfg.WriteBytesPerSec*d.factor))
	d.bytesWritten.Add(size)
	d.writes.Add(1)
	if d.traffic != nil {
		d.traffic.Add(metrics.DiskWrite, size)
	}
}

// BytesRead returns the total bytes read from this disk.
func (d *Disk) BytesRead() int64 { return d.bytesRead.Load() }

// BytesWritten returns the total bytes written to this disk.
func (d *Disk) BytesWritten() int64 { return d.bytesWritten.Load() }

// Reads returns the number of read requests served.
func (d *Disk) Reads() int64 { return d.reads.Load() }

// Writes returns the number of write requests served.
func (d *Disk) Writes() int64 { return d.writes.Load() }

// BusyTime returns the cumulative time the disk was occupied.
func (d *Disk) BusyTime() sim.Time { return d.res.BusyTime() }
