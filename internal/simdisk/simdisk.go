// Package simdisk models a storage-node disk as an exclusive resource with
// a fixed per-request positioning overhead and separate sequential read
// and write bandwidths. Requests through one disk queue up FIFO, so a
// storage server that must serve its neighbors' dependent-strip reads (the
// Normal Active Storage case from the paper) pays for them on the same
// spindle that feeds its own kernel.
package simdisk

import (
	"github.com/hpcio/das/internal/metrics"
	"github.com/hpcio/das/internal/sim"
)

// Config sets the disk's performance envelope.
type Config struct {
	// ReadBytesPerSec and WriteBytesPerSec are sustained sequential rates.
	ReadBytesPerSec  float64
	WriteBytesPerSec float64
	// SeekTime is charged once per request, modeling positioning plus
	// request-handling overhead.
	SeekTime sim.Time
}

// Disk is one simulated drive. All state is engine-goroutine state: the
// simulator is single-threaded by construction, so the counters are plain
// integers — an O(1) add per request, with no synchronization on the
// per-request path.
type Disk struct {
	res     *sim.Resource
	cfg     Config
	traffic *metrics.Traffic

	// factor scales both transfer rates; fault injection degrades a drive
	// by lowering it below 1.
	factor float64

	bytesRead    int64
	bytesWritten int64
	reads        int64
	writes       int64
}

// New creates a disk owned by the given engine. Traffic may be nil to skip
// shared accounting; per-disk counters are always kept.
func New(eng *sim.Engine, name string, cfg Config, traffic *metrics.Traffic) *Disk {
	return &Disk{
		res:     sim.NewResource(eng, "disk:"+name, 1),
		cfg:     cfg,
		traffic: traffic,
		factor:  1,
	}
}

// NewIndexed is New for per-node disks named "disk:node<idx>", with the
// name formatted lazily: building a five-thousand-node cluster should not
// pay a string allocation per drive for diagnostics-only names.
func NewIndexed(eng *sim.Engine, idx int, cfg Config, traffic *metrics.Traffic) *Disk {
	return &Disk{
		res:     sim.NewResourceIndexed(eng, "disk:node", idx, "", 1),
		cfg:     cfg,
		traffic: traffic,
		factor:  1,
	}
}

// SetSpeedFactor scales the disk's sequential bandwidth: 0 < f < 1
// degrades the drive, 1 restores it. Non-positive factors are clamped to
// a sliver rather than zero so in-flight requests still terminate.
func (d *Disk) SetSpeedFactor(f float64) {
	if f <= 0 {
		f = 1e-3
	}
	if f > 1 {
		f = 1
	}
	d.factor = f
}

// SpeedFactor returns the current bandwidth scale (1 = healthy).
func (d *Disk) SpeedFactor() float64 { return d.factor }

// Read charges the time to read size bytes and records the traffic.
func (d *Disk) Read(p *sim.Proc, size int64) {
	if size <= 0 {
		return
	}
	d.res.Use(p, 1, d.ReadTime(size))
	d.accountRead(size)
}

// Write charges the time to write size bytes and records the traffic.
func (d *Disk) Write(p *sim.Proc, size int64) {
	if size <= 0 {
		return
	}
	d.res.Use(p, 1, d.WriteTime(size))
	d.accountWrite(size)
}

// The Acquire/ReadTime/Finish trio below decomposes Read and Write for
// fast-path request chains: a handler task acquires the drive, sleeps the
// service time via a scheduled task, then finishes — releasing the drive
// and updating the counters at exactly the event where the classic Read's
// post-sleep wake would.

// AcquireTask takes the drive for a task-chain request: granted inline
// (true) or queued behind earlier requests, with t scheduled when the
// drive frees up (false). FIFO with classic Acquire callers.
func (d *Disk) AcquireTask(t sim.Tasker) bool {
	return d.res.AcquireTask(1, t)
}

// ReadTime returns the service time for reading size bytes at the drive's
// current health.
func (d *Disk) ReadTime(size int64) sim.Time {
	return d.cfg.SeekTime + sim.TransferTime(size, d.cfg.ReadBytesPerSec*d.factor)
}

// WriteTime returns the service time for writing size bytes at the drive's
// current health.
func (d *Disk) WriteTime(size int64) sim.Time {
	return d.cfg.SeekTime + sim.TransferTime(size, d.cfg.WriteBytesPerSec*d.factor)
}

// FinishRead releases the drive and accounts a completed read of size
// bytes.
func (d *Disk) FinishRead(size int64) {
	d.res.Release(1)
	d.accountRead(size)
}

// FinishWrite releases the drive and accounts a completed write of size
// bytes.
func (d *Disk) FinishWrite(size int64) {
	d.res.Release(1)
	d.accountWrite(size)
}

func (d *Disk) accountRead(size int64) {
	d.bytesRead += size
	d.reads++
	if d.traffic != nil {
		d.traffic.Add(metrics.DiskRead, size)
	}
}

func (d *Disk) accountWrite(size int64) {
	d.bytesWritten += size
	d.writes++
	if d.traffic != nil {
		d.traffic.Add(metrics.DiskWrite, size)
	}
}

// BytesRead returns the total bytes read from this disk.
func (d *Disk) BytesRead() int64 { return d.bytesRead }

// BytesWritten returns the total bytes written to this disk.
func (d *Disk) BytesWritten() int64 { return d.bytesWritten }

// Reads returns the number of read requests served.
func (d *Disk) Reads() int64 { return d.reads }

// Writes returns the number of write requests served.
func (d *Disk) Writes() int64 { return d.writes }

// BusyTime returns the cumulative time the disk was occupied.
func (d *Disk) BusyTime() sim.Time { return d.res.BusyTime() }
